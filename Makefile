GO ?= go
VET_CACHE ?= .vetcache

.PHONY: all build test race vet lint golden bench-smoke clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The invariant gate: go vet plus the repo's own analyzers (bufown,
# poolescape, lockio, atomicmix, ctxfirst). The fact cache makes re-runs
# on an unchanged tree near-instant.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/shhc-vet -cache $(VET_CACHE) ./...

# lint is vet plus the pinned external checkers when they are installed
# (CI installs them; offline dev boxes may not have them).
lint: vet
	@command -v staticcheck >/dev/null 2>&1 && staticcheck ./... || echo "staticcheck not installed; skipping"
	@command -v govulncheck >/dev/null 2>&1 && govulncheck ./... || echo "govulncheck not installed; skipping"

# The analyzer golden suites alone (they also run under `make test`).
golden:
	$(GO) test ./internal/analysis/...

bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./...

clean:
	rm -rf $(VET_CACHE) cover.out
