package shhc

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
)

func TestLocalClusterQuickstart(t *testing.T) {
	cluster, err := NewLocalCluster(ClusterOptions{Nodes: 4})
	if err != nil {
		t.Fatalf("NewLocalCluster: %v", err)
	}
	defer cluster.Close()

	chunk := []byte("some chunk of backup data")
	fp := FingerprintOf(chunk)

	res, err := cluster.LookupOrInsert(context.Background(), fp, 1)
	if err != nil {
		t.Fatalf("LookupOrInsert: %v", err)
	}
	if res.Exists {
		t.Fatal("fresh chunk reported existing")
	}
	res, err = cluster.LookupOrInsert(context.Background(), fp, 1)
	if err != nil {
		t.Fatalf("LookupOrInsert: %v", err)
	}
	if !res.Exists {
		t.Fatal("duplicate chunk not detected")
	}
}

func TestLocalClusterOnDisk(t *testing.T) {
	cluster, err := NewLocalCluster(ClusterOptions{Nodes: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("NewLocalCluster: %v", err)
	}
	defer cluster.Close()
	for i := 0; i < 100; i++ {
		fp := FingerprintOf([]byte(fmt.Sprintf("chunk-%d", i)))
		if _, err := cluster.LookupOrInsert(context.Background(), fp, Value(i)); err != nil {
			t.Fatalf("LookupOrInsert: %v", err)
		}
	}
}

func TestLocalClusterOptionValidation(t *testing.T) {
	if _, err := NewLocalCluster(ClusterOptions{DeviceModel: "tape"}); err == nil {
		t.Fatal("invalid device model accepted")
	}
}

func TestDistributedClusterAssembly(t *testing.T) {
	var servers []*NodeServer
	var backends []Backend
	for i := 0; i < 2; i++ {
		id := NodeID(fmt.Sprintf("remote-%d", i))
		srv, err := StartNodeServer("127.0.0.1:0", NodeConfig{
			ID:        id,
			Store:     newMemStoreForTest(),
			CacheSize: 64,
		})
		if err != nil {
			t.Fatalf("StartNodeServer: %v", err)
		}
		servers = append(servers, srv)
		client, err := DialNode(id, srv.Addr.String())
		if err != nil {
			t.Fatalf("DialNode: %v", err)
		}
		backends = append(backends, client)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	cluster, err := NewCluster(ClusterConfig{}, backends...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()

	fp := FingerprintOf([]byte("distributed chunk"))
	res, err := cluster.LookupOrInsert(context.Background(), fp, 9)
	if err != nil {
		t.Fatalf("LookupOrInsert: %v", err)
	}
	if res.Exists {
		t.Fatal("fresh chunk reported existing")
	}
	res, _ = cluster.LookupOrInsert(context.Background(), fp, 9)
	if !res.Exists || res.Value != 9 {
		t.Fatalf("duplicate = %+v, want exists value 9", res)
	}
}

func TestBatcherFacade(t *testing.T) {
	cluster, err := NewLocalCluster(ClusterOptions{Nodes: 2})
	if err != nil {
		t.Fatalf("NewLocalCluster: %v", err)
	}
	defer cluster.Close()
	b := NewBatcher(cluster, 16, 1)
	defer b.Close()

	fp := FingerprintOf([]byte("batched chunk"))
	res, err := b.LookupOrInsert(context.Background(), fp, 5)
	if err != nil {
		t.Fatalf("LookupOrInsert: %v", err)
	}
	if res.Exists {
		t.Fatal("fresh chunk reported existing")
	}
}

func TestEndToEndFacade(t *testing.T) {
	cluster, err := NewLocalCluster(ClusterOptions{Nodes: 2})
	if err != nil {
		t.Fatalf("NewLocalCluster: %v", err)
	}
	defer cluster.Close()
	store := NewCloudStore()
	defer store.Close()
	front, err := NewFrontend(cluster, store)
	if err != nil {
		t.Fatalf("NewFrontend: %v", err)
	}
	ts := httptest.NewServer(front.Handler())
	defer ts.Close()

	client, err := NewBackupClient(ts.URL, 4096)
	if err != nil {
		t.Fatalf("NewBackupClient: %v", err)
	}
	data := bytes.Repeat([]byte("0123456789abcdef"), 4096) // 64 KiB, repetitive
	report, err := client.Backup(context.Background(), "facade-test", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Backup: %v", err)
	}
	if report.Chunks == 0 {
		t.Fatal("no chunks processed")
	}
	// Highly repetitive data: most chunks identical -> heavy dedup.
	if report.NewChunks >= report.Chunks {
		t.Fatalf("report = %+v, expected intra-stream dedup", report)
	}

	var out bytes.Buffer
	if err := client.Restore(context.Background(), report.Manifest, &out); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("restore mismatch")
	}
}

func TestPaperWorkloadsExposed(t *testing.T) {
	specs := PaperWorkloads()
	if len(specs) != 4 {
		t.Fatalf("got %d workloads, want 4", len(specs))
	}
	g := NewWorkload(specs[0].Scaled(1024))
	n := 0
	for {
		_, ok := g.Next()
		if !ok {
			break
		}
		n++
	}
	if n == 0 {
		t.Fatal("scaled workload produced no fingerprints")
	}
}
