package shhc_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"shhc"
)

// ExampleNewLocalCluster is the package quickstart: an in-process cluster
// of hybrid hash nodes deduplicating chunks through the Figure 4 flow.
func ExampleNewLocalCluster() {
	cluster, err := shhc.NewLocalCluster(shhc.ClusterOptions{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	chunk := []byte("the quick brown fox")
	res, err := cluster.LookupOrInsert(context.Background(), shhc.FingerprintOf(chunk), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("first sight, upload needed:", !res.Exists)

	res, err = cluster.LookupOrInsert(context.Background(), shhc.FingerprintOf(chunk), 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("second sight, duplicate:", res.Exists, "locator:", res.Value)
	// Output:
	// first sight, upload needed: true
	// second sight, duplicate: true locator: 1
}

// ExampleCluster_LookupOrInsert shows the per-fingerprint dedup decision
// and which tier of the hybrid node answered each query.
func ExampleCluster_LookupOrInsert() {
	cluster, err := shhc.NewLocalCluster(shhc.ClusterOptions{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fp := shhc.FingerprintOf([]byte("a 4KB chunk of a backup stream"))

	// New fingerprint: the Bloom filter proves it absent without an SSD
	// read, and the node stores it.
	r1, err := cluster.LookupOrInsert(context.Background(), fp, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exists=%v source=%s\n", r1.Exists, r1.Source)

	// Same fingerprint again: answered from the RAM LRU cache.
	r2, err := cluster.LookupOrInsert(context.Background(), fp, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exists=%v source=%s value=%d\n", r2.Exists, r2.Source, r2.Value)
	// Output:
	// exists=false source=bloom
	// exists=true source=cache value=42
}

// ExampleCluster_Lookup_deadline bounds a lookup with a context deadline:
// a request stuck behind a slow device (here: a modeled HDD with real
// sleeps) returns context.DeadlineExceeded instead of holding the caller
// — the same context would also propagate over the wire to remote nodes.
func ExampleCluster_Lookup_deadline() {
	cluster, err := shhc.NewLocalCluster(shhc.ClusterOptions{
		Nodes:        1,
		DeviceModel:  "hdd",
		SleepDevices: true, // modeled latency is real time.Sleep
		CacheSize:    0,    // force every lookup to the slow device
		DisableBloom: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err = cluster.Lookup(ctx, shhc.FingerprintOf([]byte("cold chunk")))
	fmt.Println("deadline bounded the slow device:", errors.Is(err, context.DeadlineExceeded))
	// Output:
	// deadline bounded the slow device: true
}

// ExampleNewBackupClient assembles the paper's four tiers in one process —
// backup client → web front-end → hash cluster → cloud store — and backs
// the same data up twice to show deduplication end to end.
func ExampleNewBackupClient() {
	cluster, err := shhc.NewLocalCluster(shhc.ClusterOptions{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	cloud := shhc.NewCloudStore()
	defer cloud.Close()

	front, err := shhc.NewFrontend(cluster, cloud)
	if err != nil {
		log.Fatal(err)
	}
	addr, err := front.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer front.Close()

	client, err := shhc.NewBackupClient("http://"+addr.String(), 4096)
	if err != nil {
		log.Fatal(err)
	}

	// A deterministic 64 KiB "file": sixteen 4 KiB chunks.
	file := bytes.Repeat([]byte("0123456789abcdef"), 4096)

	gen1, err := client.Backup(context.Background(), "file-gen1", bytes.NewReader(file))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gen1: %d chunks, %d uploaded\n", gen1.Chunks, gen1.NewChunks)

	// Unchanged re-backup: everything deduplicates, nothing is uploaded.
	gen2, err := client.Backup(context.Background(), "file-gen2", bytes.NewReader(file))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gen2: %d chunks, %d uploaded\n", gen2.Chunks, gen2.NewChunks)

	// Restore from the manifest and verify.
	var restored bytes.Buffer
	if err := client.Restore(context.Background(), gen2.Manifest, &restored); err != nil {
		log.Fatal(err)
	}
	fmt.Println("restore intact:", bytes.Equal(restored.Bytes(), file))
	// Output:
	// gen1: 16 chunks, 1 uploaded
	// gen2: 16 chunks, 0 uploaded
	// restore intact: true
}
