package cloudsim

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"shhc/internal/device"
	"shhc/internal/fingerprint"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	data := []byte("chunk contents")
	fp := fingerprint.FromData(data)
	created, err := s.Put(context.Background(), fp, data)
	if err != nil || !created {
		t.Fatalf("Put = (%v, %v), want (true, nil)", created, err)
	}
	got, ok, err := s.Get(context.Background(), fp)
	if err != nil || !ok || !bytes.Equal(got, data) {
		t.Fatalf("Get = (%q, %v, %v)", got, ok, err)
	}
	if ok, _ := s.Has(fp); !ok {
		t.Fatal("Has = false after Put")
	}
}

func TestRedundantPutCounted(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	data := []byte("dup")
	fp := fingerprint.FromData(data)
	s.Put(context.Background(), fp, data)
	created, err := s.Put(context.Background(), fp, data)
	if err != nil || created {
		t.Fatalf("second Put = (%v, %v), want (false, nil)", created, err)
	}
	st := s.Stats()
	if st.Puts != 2 || st.RedundantPuts != 1 || st.Objects != 1 {
		t.Fatalf("stats = %+v, want 2 puts / 1 redundant / 1 object", st)
	}
	if st.Bytes != int64(len(data)) {
		t.Fatalf("Bytes = %d, want %d (no double count)", st.Bytes, len(data))
	}
}

func TestGetAbsent(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	_, ok, err := s.Get(context.Background(), fingerprint.FromUint64(404))
	if err != nil || ok {
		t.Fatalf("Get(absent) = (%v, %v), want (false, nil)", ok, err)
	}
}

func TestCallerCannotMutateStored(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	data := []byte("immutable")
	fp := fingerprint.FromData(data)
	s.Put(context.Background(), fp, data)
	data[0] = 'X' // caller mutates its buffer after Put

	got, _, _ := s.Get(context.Background(), fp)
	if got[0] != 'i' {
		t.Fatal("store shares memory with caller's Put buffer")
	}
	got[0] = 'Y' // mutate the returned copy
	again, _, _ := s.Get(context.Background(), fp)
	if again[0] != 'i' {
		t.Fatal("store shares memory with caller's Get buffer")
	}
}

func TestNetworkCharged(t *testing.T) {
	net := device.New(WAN, device.Account)
	s := New(Config{Network: net})
	defer s.Close()
	data := make([]byte, 8192)
	fp := fingerprint.FromData(data)
	s.Put(context.Background(), fp, data)
	s.Get(context.Background(), fp)

	st := net.Stats()
	if st.Writes != 1 || st.Reads != 1 {
		t.Fatalf("network ops = %d writes / %d reads, want 1/1", st.Writes, st.Reads)
	}
	if st.WriteBytes != 8192 {
		t.Fatalf("WriteBytes = %d, want 8192", st.WriteBytes)
	}
	if st.Busy < 40*time.Millisecond {
		t.Fatalf("Busy = %v, want >= 2 RTTs", st.Busy)
	}
}

func TestConcurrentPuts(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				data := []byte{byte(i), byte(i >> 8)}
				s.Put(context.Background(), fingerprint.FromData(data), data)
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Objects != 200 {
		t.Fatalf("Objects = %d, want 200 (each unique chunk once)", st.Objects)
	}
	if st.Puts != 1600 {
		t.Fatalf("Puts = %d, want 1600", st.Puts)
	}
}

func TestClosedErrors(t *testing.T) {
	s := New(Config{})
	s.Close()
	if _, err := s.Put(context.Background(), fingerprint.FromUint64(1), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close = %v, want ErrClosed", err)
	}
	if _, _, err := s.Get(context.Background(), fingerprint.FromUint64(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close = %v, want ErrClosed", err)
	}
	if _, err := s.Has(fingerprint.FromUint64(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Has after close = %v, want ErrClosed", err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close = %v, want ErrClosed", err)
	}
}
