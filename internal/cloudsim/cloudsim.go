// Package cloudsim simulates the cloud storage backend (the paper's
// "Cloud Storage, a back-end cloud-based storage service (e.g. Amazon S3)").
//
// SHHC treats the backend as an opaque PUT/GET object store reached over a
// WAN; only its existence and its transfer cost matter to the dedup path.
// The simulator stores chunks in memory keyed by fingerprint and charges
// WAN latency/bandwidth to a device model, so end-to-end examples can show
// how much traffic deduplication removes — the paper's stated motivation
// ("the cost of bandwidth ... must be considered").
package cloudsim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"shhc/internal/device"
	"shhc/internal/fingerprint"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("cloudsim: store is closed")

// WAN is the default network model between the data center and the cloud
// store: 20 ms RTT, ~100 MB/s sustained.
var WAN = device.Model{Name: "wan", ReadBase: 20 * time.Millisecond, WriteBase: 20 * time.Millisecond, PerByte: 10 * time.Nanosecond}

// Config configures the simulated store.
type Config struct {
	// Network charges latency per object transfer. Nil defaults to a
	// non-sleeping WAN accountant.
	Network *device.Device
}

// Store is a content-addressed object store: chunks are keyed by their
// fingerprint, so storing is idempotent. Safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	objects map[fingerprint.Fingerprint][]byte
	bytes   int64
	closed  bool

	puts          int64
	redundantPuts int64
	gets          int64
	net           *device.Device
}

// New creates an empty simulated cloud store.
func New(cfg Config) *Store {
	net := cfg.Network
	if net == nil {
		net = device.New(WAN, device.Account)
	}
	return &Store{objects: make(map[fingerprint.Fingerprint][]byte), net: net}
}

// Put stores a chunk under its fingerprint. It reports whether the object
// was new; re-putting an existing fingerprint is counted as a redundant
// upload (wasted WAN traffic the dedup layer should have prevented).
// A cancelled ctx stops the transfer before it is charged.
func (s *Store) Put(ctx context.Context, fp fingerprint.Fingerprint, data []byte) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	s.net.Write(len(data))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	s.puts++
	if _, exists := s.objects[fp]; exists {
		s.redundantPuts++
		return false, nil
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.objects[fp] = cp
	s.bytes += int64(len(data))
	return true, nil
}

// Get fetches a chunk by fingerprint. A cancelled ctx stops the transfer
// before it is charged.
func (s *Store) Get(ctx context.Context, fp fingerprint.Fingerprint) ([]byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	s.mu.RLock()
	data, ok := s.objects[fp]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, false, ErrClosed
	}
	s.net.Read(len(data))
	s.mu.Lock()
	s.gets++
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, true, nil
}

// Has reports whether a chunk is stored, without transfer cost.
func (s *Store) Has(fp fingerprint.Fingerprint) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false, ErrClosed
	}
	_, ok := s.objects[fp]
	return ok, nil
}

// Stats describes stored state and traffic counters.
type Stats struct {
	Objects       int
	Bytes         int64
	Puts          int64
	RedundantPuts int64
	Gets          int64
	Network       device.Stats
}

func (st Stats) String() string {
	return fmt.Sprintf("objects=%d bytes=%d puts=%d redundant=%d gets=%d",
		st.Objects, st.Bytes, st.Puts, st.RedundantPuts, st.Gets)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Objects:       len(s.objects),
		Bytes:         s.bytes,
		Puts:          s.puts,
		RedundantPuts: s.redundantPuts,
		Gets:          s.gets,
		Network:       s.net.Stats(),
	}
}

// Close releases the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	s.objects = nil
	return nil
}
