package fingerprint

import (
	"crypto/sha1"
	"strings"
	"testing"
	"testing/quick"
)

func TestFromDataMatchesSHA1(t *testing.T) {
	data := []byte("shhc test chunk")
	want := sha1.Sum(data)
	if got := FromData(data); got != Fingerprint(want) {
		t.Fatalf("FromData = %v, want %v", got, want)
	}
}

func TestParseRoundTrip(t *testing.T) {
	fp := FromData([]byte("round trip"))
	parsed, err := Parse(fp.String())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if parsed != fp {
		t.Fatalf("Parse(String()) = %v, want %v", parsed, fp)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "empty", give: ""},
		{name: "short", give: "abcd"},
		{name: "long", give: strings.Repeat("a", 42)},
		{name: "nonhex", give: strings.Repeat("z", 40)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.give); err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", tt.give)
			}
		})
	}
}

func TestZeroSentinel(t *testing.T) {
	if !Zero.IsZero() {
		t.Fatal("Zero.IsZero() = false")
	}
	if FromData(nil).IsZero() {
		t.Fatal("FromData(nil) should not be the zero sentinel")
	}
}

func TestShort(t *testing.T) {
	fp := FromData([]byte("x"))
	if got, want := fp.Short(), fp.String()[:8]; got != want {
		t.Fatalf("Short() = %q, want %q", got, want)
	}
}

func TestPrefix64Distinct(t *testing.T) {
	a := FromData([]byte("a"))
	b := FromData([]byte("b"))
	if a.Prefix64() == b.Prefix64() {
		t.Fatal("distinct data produced identical prefixes (astronomically unlikely)")
	}
	if a.Prefix64() == a.Bucket64() {
		t.Fatal("Prefix64 and Bucket64 must draw from different digest bytes")
	}
}

func TestCompare(t *testing.T) {
	var lo, hi Fingerprint
	hi[0] = 1
	if lo.Compare(hi) != -1 {
		t.Fatal("lo.Compare(hi) != -1")
	}
	if hi.Compare(lo) != 1 {
		t.Fatal("hi.Compare(lo) != 1")
	}
	if lo.Compare(lo) != 0 {
		t.Fatal("lo.Compare(lo) != 0")
	}
}

func TestCompareTieBreakLaterBytes(t *testing.T) {
	var a, b Fingerprint
	a[Size-1] = 1
	b[Size-1] = 2
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Fatal("Compare must order on the last byte when prefixes tie")
	}
}

func TestFromUint64Deterministic(t *testing.T) {
	if FromUint64(42) != FromUint64(42) {
		t.Fatal("FromUint64 not deterministic")
	}
	if FromUint64(42) == FromUint64(43) {
		t.Fatal("FromUint64 collided for adjacent counters")
	}
}

// Property: String/Parse round-trips for arbitrary fingerprints.
func TestQuickParseRoundTrip(t *testing.T) {
	f := func(raw [Size]byte) bool {
		fp := Fingerprint(raw)
		parsed, err := Parse(fp.String())
		return err == nil && parsed == fp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is antisymmetric and consistent with equality.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b [Size]byte) bool {
		x, y := Fingerprint(a), Fingerprint(b)
		c := x.Compare(y)
		if x == y {
			return c == 0
		}
		return c == -y.Compare(x) && c != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
