// Package fingerprint defines the chunk fingerprint type used throughout
// SHHC and helpers to derive, parse, and route fingerprints.
//
// SHHC identifies every data chunk by its SHA-1 digest, following the paper
// ("calculates a fingerprint for each chunk using a cryptographic hash
// function (e.g. SHA-1)"). A fingerprint is an opaque 20-byte value; the
// cluster routes on a 64-bit prefix of it.
package fingerprint

import (
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Size is the length of a fingerprint in bytes (SHA-1 digest size).
const Size = sha1.Size

// Fingerprint is the SHA-1 digest of a chunk's content.
type Fingerprint [Size]byte

// Zero is the all-zero fingerprint. It is never produced by hashing real
// data (probabilistically) and is used as a sentinel for "empty slot" in
// on-disk structures.
var Zero Fingerprint

// FromData computes the fingerprint of a chunk's content.
func FromData(data []byte) Fingerprint {
	return Fingerprint(sha1.Sum(data))
}

// FromUint64 derives a deterministic synthetic fingerprint from a counter.
// Workload generators use it to mint unique fingerprints cheaply while
// preserving the uniform distribution real SHA-1 values have.
func FromUint64(v uint64) Fingerprint {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return Fingerprint(sha1.Sum(buf[:]))
}

// Parse decodes a 40-character hex string into a fingerprint.
func Parse(s string) (Fingerprint, error) {
	var fp Fingerprint
	if len(s) != hex.EncodedLen(Size) {
		return fp, fmt.Errorf("fingerprint: parse %q: want %d hex chars, got %d",
			s, hex.EncodedLen(Size), len(s))
	}
	if _, err := hex.Decode(fp[:], []byte(s)); err != nil {
		return fp, fmt.Errorf("fingerprint: parse %q: %w", s, err)
	}
	return fp, nil
}

// String returns the lowercase hex encoding of the fingerprint.
func (fp Fingerprint) String() string {
	return hex.EncodeToString(fp[:])
}

// Short returns the first 8 hex characters, for logs.
func (fp Fingerprint) Short() string {
	return hex.EncodeToString(fp[:4])
}

// IsZero reports whether the fingerprint is the zero sentinel.
func (fp Fingerprint) IsZero() bool {
	return fp == Zero
}

// Prefix64 returns the first 8 bytes as a big-endian uint64. The ring
// partitioner and the on-disk hash table both key off this prefix; SHA-1
// output is uniform, so the prefix is uniform too.
func (fp Fingerprint) Prefix64() uint64 {
	return binary.BigEndian.Uint64(fp[:8])
}

// Bucket64 returns a second independent 64-bit value (bytes 8..16), used
// for double hashing in the Bloom filter and cuckoo index.
func (fp Fingerprint) Bucket64() uint64 {
	return binary.BigEndian.Uint64(fp[8:16])
}

// Compare orders fingerprints lexicographically, returning -1, 0 or +1.
func (fp Fingerprint) Compare(other Fingerprint) int {
	for i := 0; i < Size; i++ {
		switch {
		case fp[i] < other[i]:
			return -1
		case fp[i] > other[i]:
			return 1
		}
	}
	return 0
}
