package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves the statically-known function or method a call
// invokes, or nil for calls through function values, type conversions,
// and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fn.Sel] // package-qualified call
		}
	}
	f, _ := obj.(*types.Func)
	return f
}

// IsBufType reports whether t is one of the pooled-buffer shapes the
// ownership analyzers track: *[]byte (the wire pool) or []byte (the
// hashdb page pool).
func IsBufType(t types.Type) bool {
	if t == nil {
		return false
	}
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		u = p.Elem().Underlying()
	}
	s, ok := u.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// FuncHasGoto reports whether any statement in body is a goto; the
// structured path walkers bail on such functions rather than guess.
func FuncHasGoto(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok.String() == "goto" {
			found = true
		}
		return !found
	})
	return found
}
