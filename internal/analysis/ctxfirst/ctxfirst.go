// Package ctxfirst enforces the PR-3 context contract:
//
//  1. A function that takes a context.Context takes it as its FIRST
//     parameter (after the receiver) — no ctx buried mid-signature.
//  2. context.Context is never stored in a struct field: contexts are
//     call-scoped, and a stored one silently detaches cancellation from
//     the call tree. The few deliberate exceptions (a server's root
//     context, a future carrying its caller's ctx) carry //lint:ignore
//     with a justification.
//  3. An EXPORTED function or method that performs I/O or blocking work
//     (per the shared ioflow call-graph facts) must take a
//     context.Context — the compile-visible form of "every public op
//     honors cancellation". Constructors and teardown are exempt:
//     New*/Open*/Dial*/Listen*/Create*/Start* run before a request
//     exists, and Close/Flush/Shutdown run after the last one.
//
// Rule 3 binds only packages that declare the contract with a
// //shhc:ctxapi line in their package doc comment (the facade, rpc, the
// core node, the load balancer). The storage layer below them (hashdb,
// device, directio, wire) is synchronous by design — a pread against a
// local SSD cannot be cancelled, and wire framing takes its deadline
// from the net.Conn — so demanding a ctx there would add parameters
// nothing could honor. Rules 1 and 2 are unconditional.
package ctxfirst

import (
	"go/ast"
	"go/types"
	"strings"

	"shhc/internal/analysis"
	"shhc/internal/analysis/ioflow"
)

// Analyzer is the ctxfirst pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context must be the first parameter, never a struct field, and exported I/O functions must accept one",
	Run:  run,
}

// exemptNames are exported identifiers allowed to do I/O without a ctx:
// lifecycle edges that run outside any request.
var exemptNames = map[string]bool{
	"Close": true, "Shutdown": true, "Stop": true, "Sync": true, "Flush": true,
}

var exemptPrefixes = []string{"New", "Open", "Dial", "Listen", "Must", "Create", "Start"}

func run(pass *analysis.Pass) error {
	ioflow.Ensure(pass)
	ctxAPI := declaresCtxAPI(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, d, ctxAPI)
			case *ast.GenDecl:
				checkStructFields(pass, d)
			}
		}
		// Function literal signatures obey the same ordering rule.
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkParamOrder(pass, lit.Type)
			}
			return true
		})
	}
	return nil
}

func isContextType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	return isContext(tv.Type)
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkParamOrder reports a ctx parameter that is not first.
func checkParamOrder(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, fld := range ft.Params.List {
		n := len(fld.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass, fld.Type) && pos != 0 {
			pass.Reportf(fld.Pos(), "context.Context must be the first parameter")
		}
		pos += n
	}
}

// declaresCtxAPI reports whether any file's package doc carries the
// //shhc:ctxapi opt-in for rule 3.
func declaresCtxAPI(pass *analysis.Pass) bool {
	for _, file := range pass.Files {
		if file.Doc == nil {
			continue
		}
		for _, c := range file.Doc.List {
			if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "shhc:ctxapi" {
				return true
			}
		}
	}
	return false
}

func checkSignature(pass *analysis.Pass, fd *ast.FuncDecl, ctxAPI bool) {
	checkParamOrder(pass, fd.Type)

	// Rule 3 applies to exported declarations of opted-in packages that
	// the ioflow facts say reach I/O.
	if !ctxAPI || !fd.Name.IsExported() || fd.Body == nil {
		return
	}
	if exemptNames[fd.Name.Name] {
		return
	}
	for _, p := range exemptPrefixes {
		if strings.HasPrefix(fd.Name.Name, p) {
			return
		}
	}
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok || !ioflow.FuncIsIO(pass, obj) {
		return
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() > 0 && isContext(sig.Params().At(0).Type()) {
		return
	}
	pass.Reportf(fd.Name.Pos(),
		"exported %s performs I/O or blocking work but does not take a context.Context first parameter", fd.Name.Name)
}

// checkStructFields reports context.Context struct fields.
func checkStructFields(pass *analysis.Pass, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, fld := range st.Fields.List {
			if isContextType(pass, fld.Type) {
				pass.Reportf(fld.Pos(), "context.Context stored in struct field of %s: contexts are call-scoped, pass them as parameters", ts.Name.Name)
			}
		}
	}
}
