package ctxfirst_test

import (
	"testing"

	"shhc/internal/analysis/analysistest"
	"shhc/internal/analysis/ctxfirst"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", ctxfirst.Analyzer)
}
