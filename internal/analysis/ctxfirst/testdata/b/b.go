// Package b does NOT declare //shhc:ctxapi: the synchronous-storage
// default. Rules 1 and 2 still apply everywhere; rule 3 (exported I/O
// without ctx) must stay silent here.
package b

import (
	"context"
	"os"
)

// ReadBlob performs I/O without a ctx parameter — legal in a package
// that never opted into the ctx-API contract.
func ReadBlob(path string) ([]byte, error) {
	return os.ReadFile(path)
}

func BadOrder(path string, ctx context.Context) error { // want `context.Context must be the first parameter`
	_ = ctx
	_ = path
	return nil
}
