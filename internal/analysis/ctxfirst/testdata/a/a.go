// Package a opts into the ctx-API contract, so all three rules apply:
// ctx-first ordering, no ctx struct fields, and exported I/O entry
// points must accept a context.
//
//shhc:ctxapi
package a

import (
	"context"
	"os"
)

func BadOrder(path string, ctx context.Context) error { // want `context.Context must be the first parameter` `exported BadOrder performs I/O or blocking work but does not take a context.Context`
	_, err := os.ReadFile(path)
	_ = ctx
	return err
}

type Holder struct {
	ctx context.Context // want `context.Context stored in struct field of Holder`
}

func ReadBlob(path string) ([]byte, error) { // want `exported ReadBlob performs I/O or blocking work but does not take a context.Context`
	return os.ReadFile(path)
}

// ReadBlobCtx is the fixed shape: ctx first, nothing to report.
func ReadBlobCtx(ctx context.Context, path string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

// Close is on the exempt list: lifecycle teardown needs no context.
func Close() error {
	return os.Remove("state")
}

// OpenStore is prefix-exempt (Open...): constructors dial without ctx.
func OpenStore(path string) (*os.File, error) {
	return os.Open(path)
}

// hash is unexported and pure: rule 3 does not apply.
func hash(b []byte) int {
	return len(b)
}
