package lockio_test

import (
	"testing"

	"shhc/internal/analysis/analysistest"
	"shhc/internal/analysis/lockio"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", lockio.Analyzer)
}
