// Package a models the node's two-level locking: a coordinator lock
// (rank 1) ordered before RAM-only stripe locks (rank 2), with I/O
// forbidden under the stripes.
package a

import (
	"os"
	"sync"
)

type shard struct {
	mu   sync.Mutex //shhc:lock ramonly rank=2
	hits int
}

type dev struct {
	mu     sync.Mutex //shhc:lock rank=1
	shards [4]shard
	path   string
}

// ioUnderStripe reads the device while a RAM-only stripe lock is held.
func (d *dev) ioUnderStripe(i int) ([]byte, error) {
	s := &d.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits++
	return os.ReadFile(d.path) // want `may perform I/O while s\.mu \(//shhc:lock ramonly\) is held`
}

// transitiveIO reaches the filesystem through a helper: the ioflow facts
// must carry the taint across the call.
func (d *dev) transitiveIO(i int) error {
	s := &d.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return d.flush() // want `may perform I/O while s\.mu \(//shhc:lock ramonly\) is held`
}

func (d *dev) flush() error {
	return os.WriteFile(d.path, nil, 0o644)
}

// rankInversion acquires the rank-1 coordinator lock while already
// holding a rank-2 stripe — the declared order is d.mu before shards.
func (d *dev) rankInversion(i int) {
	s := &d.shards[i]
	s.mu.Lock()
	d.mu.Lock() // want `acquiring d\.mu \(rank 1\) while holding s\.mu \(rank 2\) violates the declared lock order`
	d.mu.Unlock()
	s.mu.Unlock()
}
