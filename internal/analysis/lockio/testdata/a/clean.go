// Negative cases: the disciplined flows the node actually uses.
package a

import "os"

// ramOnlyUnderStripe touches memory only while the stripe is held and
// does its I/O after the unlock.
func (d *dev) ramOnlyUnderStripe(i int) error {
	s := &d.shards[i]
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return d.flush()
}

// ioUnderCoordinator is allowed: d.mu is not RAM-only, only ordered.
func (d *dev) ioUnderCoordinator() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return os.ReadFile(d.path)
}

// correctOrder takes the coordinator first, then a stripe.
func (d *dev) correctOrder(i int) {
	d.mu.Lock()
	s := &d.shards[i]
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	d.mu.Unlock()
}

// goroutineNotCharged: a body launched with go runs after the region.
func (d *dev) goroutineNotCharged(i int) {
	s := &d.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { _ = d.flush() }()
	s.hits++
}
