module lockiotest

go 1.24
