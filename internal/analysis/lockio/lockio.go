// Package lockio enforces the hot-path locking rules PR-2 and PR-4
// established and the //shhc:lock markers now declare in source:
//
//   - ramonly: while a marked lock (node stripe, LRU stripe, destage
//     shard) is held, no call may reach device, file, or network I/O —
//     "the RAM walk runs under the stripe lock, the SSD phase outside
//     it". I/O reachability comes from the shared ioflow call-graph
//     facts, so a violation three calls deep is still caught.
//   - rank=N: locks acquire in ascending rank order (destage d.mu
//     rank=1 before shard locks rank=2); taking a lower-ranked lock
//     while holding a higher-ranked one is a deadlock-shaped violation.
//
// The analyzer walks each function's statement structure, tracking the
// set of marked locks held: x.mu.Lock()/RLock() opens a region,
// x.mu.Unlock()/RUnlock() closes it, and defer x.mu.Unlock() holds it to
// function exit. Branches are merged by intersection (a lock must be
// held on every path to count), which keeps conditional-unlock patterns
// quiet. Calls inside function literals are only charged when the
// literal is invoked or deferred in the region. goto bails.
package lockio

import (
	"go/ast"
	"go/token"
	"go/types"

	"shhc/internal/analysis"
	"shhc/internal/analysis/ioflow"
)

// Analyzer is the lockio pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockio",
	Doc:  "forbid I/O while ramonly-marked locks are held; enforce lock rank order",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	ioflow.Ensure(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				walkFunc(pass, fd.Body)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				walkFunc(pass, lit.Body)
			}
			return true
		})
	}
	return nil
}

// heldLock is one marked lock currently held on a path.
type heldLock struct {
	key     string // canonical field key
	display string // receiver-qualified name for messages
	ramonly bool
	rank    int
	pos     token.Pos // acquisition site
}

type lockState struct {
	held map[string]*heldLock
}

func newLockState() *lockState { return &lockState{held: make(map[string]*heldLock)} }

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	return c
}

// mergeIntersect keeps only locks held on both paths.
func (s *lockState) mergeIntersect(other *lockState) {
	for k := range s.held {
		if _, ok := other.held[k]; !ok {
			delete(s.held, k)
		}
	}
}

type lockWalker struct {
	pass *analysis.Pass
}

func walkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	if analysis.FuncHasGoto(body) {
		return
	}
	w := &lockWalker{pass: pass}
	w.stmts(body.List, newLockState())
}

func (w *lockWalker) stmts(list []ast.Stmt, s *lockState) {
	for _, st := range list {
		w.stmt(st, s)
	}
}

func (w *lockWalker) stmt(stmt ast.Stmt, s *lockState) {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		w.expr(st.X, s)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			w.expr(r, s)
		}
		for _, l := range st.Lhs {
			w.expr(l, s)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, s)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// defer x.mu.Unlock() holds the lock for the rest of the
		// function: nothing to close. defer of anything else charges its
		// I/O at the defer site (it will run while... actually at exit;
		// conservatively treat as running outside the region — skip).
		if w.lockEvent(st.Call, s, true) {
			return
		}
	case *ast.GoStmt:
		// The goroutine body runs concurrently, NOT under these locks;
		// only the argument expressions evaluate here.
		for _, a := range st.Call.Args {
			w.expr(a, s)
		}
	case *ast.SendStmt:
		w.expr(st.Chan, s)
		w.expr(st.Value, s)
	case *ast.IncDecStmt:
		w.expr(st.X, s)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.expr(r, s)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init, s)
		}
		w.expr(st.Cond, s)
		then := s.clone()
		els := s.clone()
		w.stmts(st.Body.List, then)
		if st.Else != nil {
			w.stmt(st.Else, els)
		}
		then.mergeIntersect(els)
		*s = *then
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init, s)
		}
		if st.Tag != nil {
			w.expr(st.Tag, s)
		}
		w.clauses(st.Body.List, s)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init, s)
		}
		w.clauses(st.Body.List, s)
	case *ast.SelectStmt:
		w.clauses(st.Body.List, s)
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init, s)
		}
		if st.Cond != nil {
			w.expr(st.Cond, s)
		}
		body := s.clone()
		w.stmts(st.Body.List, body)
		if st.Post != nil {
			w.stmt(st.Post, body)
		}
		s.mergeIntersect(body)
	case *ast.RangeStmt:
		w.expr(st.X, s)
		body := s.clone()
		w.stmts(st.Body.List, body)
		s.mergeIntersect(body)
	case *ast.BlockStmt:
		w.stmts(st.List, s)
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, s)
	}
}

func (w *lockWalker) clauses(clauses []ast.Stmt, s *lockState) {
	var arms []*lockState
	for _, c := range clauses {
		arm := s.clone()
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.expr(e, arm)
			}
			w.stmts(cc.Body, arm)
		case *ast.CommClause:
			if cc.Comm != nil {
				w.stmt(cc.Comm, arm)
			}
			w.stmts(cc.Body, arm)
		}
		arms = append(arms, arm)
	}
	out := s
	for _, arm := range arms {
		out.mergeIntersect(arm)
	}
}

// expr scans an expression for lock events and, inside ramonly regions,
// I/O calls. Function literals are skipped: their bodies run when
// invoked, and an invocation appears as its own call expression.
func (w *lockWalker) expr(e ast.Expr, s *lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if w.lockEvent(call, s, false) {
			return true
		}
		w.checkCall(call, s)
		return true
	})
}

// lockEvent handles x.f.Lock/RLock/Unlock/RUnlock where f is a
// //shhc:lock-marked field, updating state and checking rank order.
// Reports true when the call was a lock operation on a marked field.
func (w *lockWalker) lockEvent(call *ast.CallExpr, s *lockState, deferred bool) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	method := sel.Sel.Name
	switch method {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return false
	}
	// The receiver must be a selector naming a marked mutex field.
	fieldSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fsel, ok := w.pass.TypesInfo.Selections[fieldSel]
	if !ok || fsel.Kind() != types.FieldVal {
		return false
	}
	key := analysis.FieldKey(fsel.Recv(), fieldSel.Sel.Name)
	m := w.pass.Markers.Get(key)
	if m == nil || !m.Lock {
		return false
	}
	display := exprString(fieldSel)
	switch method {
	case "Lock", "RLock", "TryLock", "TryRLock":
		if m.Rank > 0 {
			for _, h := range s.held {
				if h.rank > 0 && m.Rank < h.rank {
					w.pass.Reportf(call.Pos(),
						"acquiring %s (rank %d) while holding %s (rank %d) violates the declared lock order",
						display, m.Rank, h.display, h.rank)
				}
			}
		}
		s.held[key] = &heldLock{key: key, display: display, ramonly: m.RAMOnly, rank: m.Rank, pos: call.Pos()}
	case "Unlock", "RUnlock":
		if !deferred {
			delete(s.held, key)
		}
		// A deferred unlock keeps the region open to function exit.
	}
	return true
}

// checkCall reports an I/O-reaching call made inside a ramonly region.
func (w *lockWalker) checkCall(call *ast.CallExpr, s *lockState) {
	var ramonly *heldLock
	for _, h := range s.held {
		if h.ramonly {
			ramonly = h
			break
		}
	}
	if ramonly == nil {
		return
	}
	callee := analysis.Callee(w.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	if ioflow.FuncIsIO(w.pass, callee) {
		w.pass.Reportf(call.Pos(),
			"call to %s may perform I/O while %s (//shhc:lock ramonly) is held",
			callee.FullName(), ramonly.display)
	}
}

// exprString renders a selector chain for messages (x.mu, s.stripes[i].mu
// degrades to the selector part).
func exprString(e ast.Expr) string {
	switch ex := e.(type) {
	case *ast.Ident:
		return ex.Name
	case *ast.SelectorExpr:
		return exprString(ex.X) + "." + ex.Sel.Name
	case *ast.IndexExpr:
		return exprString(ex.X) + "[...]"
	case *ast.UnaryExpr:
		return exprString(ex.X)
	case *ast.ParenExpr:
		return exprString(ex.X)
	case *ast.CallExpr:
		return exprString(ex.Fun) + "()"
	case *ast.StarExpr:
		return exprString(ex.X)
	}
	return "?"
}
