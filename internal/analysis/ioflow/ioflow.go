// Package ioflow computes "may perform I/O" facts over the static call
// graph, shared by the lockio and ctxfirst analyzers.
//
// A function performs I/O when it (transitively, through statically
// resolvable calls) reaches one of:
//
//   - a method of os.File, or an I/O-shaped function of package os;
//   - anything in net or syscall (minus pure parsers);
//   - an io/bufio interface method or helper (Read/Write by contract);
//   - time.Sleep (a deliberate block is as bad as a device access under
//     a stripe lock);
//   - a function or interface method marked //shhc:io (hashdb.Store,
//     device accounting) — the decree that seeds the graph where
//     implementations are not statically visible.
//
// //shhc:noio on a declaration overrides the inference for that
// function. Calls through plain function values (callbacks such as the
// LRU eviction hook) are not resolvable and count as non-I/O; the
// dynamic gated-store tests cover that blind spot.
//
// Facts are exported in the shared "ioflow" namespace: the first
// analyzer to run on a package computes them, later analyzers (and
// dependent packages) reuse them, and the driver's cache persists them
// between runs.
package ioflow

import (
	"go/ast"
	"go/types"

	"shhc/internal/analysis"
)

// Namespace is the shared fact namespace.
const Namespace = "ioflow"

// Fact marks one function as performing I/O.
type Fact struct {
	IO bool `json:"io"`
}

// sentinelKey marks a package whose facts are already computed, keyed by
// package path so repeated Ensure calls (one per analyzer) are cheap.
func sentinelKey(pkgPath string) string { return pkgPath + ".\x00done" }

// Ensure computes and exports I/O facts for the pass's package if no
// analyzer has done so yet in this run (or a cached run).
func Ensure(pass *analysis.Pass) {
	var done Fact
	if pass.ImportNamespacedFact(Namespace, sentinelKey(pass.Pkg.Path()), &done) {
		return
	}
	compute(pass)
	pass.ExportNamespacedFact(Namespace, sentinelKey(pass.Pkg.Path()), Fact{IO: true})
}

// FuncIsIO reports whether the resolved function performs I/O, combining
// primitives, markers, and exported facts.
func FuncIsIO(pass *analysis.Pass, fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if m := pass.Markers.ForObject(fn); m != nil {
		if m.NoIO {
			return false
		}
		if m.IO {
			return true
		}
	}
	if primitiveIO(fn) {
		return true
	}
	var f Fact
	if pass.ImportNamespacedFact(Namespace, analysis.ObjKey(fn), &f) {
		return f.IO
	}
	return false
}

// CallIsIO reports whether a call expression performs I/O.
func CallIsIO(pass *analysis.Pass, call *ast.CallExpr) bool {
	return FuncIsIO(pass, analysis.Callee(pass.TypesInfo, call))
}

// netPure lists net functions that never touch a socket.
var netPure = map[string]bool{
	"ParseIP": true, "ParseCIDR": true, "ParseMAC": true,
	"JoinHostPort": true, "SplitHostPort": true, "CIDRMask": true,
	"IPv4": true, "IPv4Mask": true,
}

// osIOFuncs lists package-level os functions that hit the filesystem.
var osIOFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true, "MkdirTemp": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Truncate": true,
	"Mkdir": true, "MkdirAll": true, "Stat": true, "Lstat": true,
	"Link": true, "Symlink": true, "Chmod": true, "Chown": true,
	"ReadLink": true, "Chtimes": true,
}

// ioPkgIONames lists io/bufio call names that move bytes through a
// reader or writer (I/O by contract, whatever the dynamic type).
var ioPkgIONames = map[string]bool{
	"Read": true, "Write": true, "ReadAt": true, "WriteAt": true,
	"ReadFull": true, "ReadAll": true, "Copy": true, "CopyN": true,
	"CopyBuffer": true, "WriteString": true, "ReadFrom": true,
	"WriteTo": true, "Flush": true, "ReadByte": true, "ReadBytes": true,
	"ReadString": true, "ReadSlice": true, "ReadRune": true, "Peek": true,
	"Discard": true, "WriteByte": true, "WriteRune": true, "Close": true,
}

// primitiveIO classifies standard-library calls.
func primitiveIO(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	name := fn.Name()
	recvBase := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recvBase = baseName(sig.Recv().Type())
	}
	switch pkg.Path() {
	case "os":
		if recvBase == "File" {
			return true
		}
		return osIOFuncs[name]
	case "net":
		return !netPure[name]
	case "syscall", "internal/poll":
		return true
	case "time":
		return name == "Sleep"
	case "io", "bufio":
		return ioPkgIONames[name]
	}
	return false
}

func baseName(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name()
		default:
			return ""
		}
	}
}

// compute runs the package-local fixpoint and exports facts.
func compute(pass *analysis.Pass) {
	info := pass.TypesInfo

	// Gather this package's function bodies.
	type fnode struct {
		obj  *types.Func
		body *ast.BlockStmt
		io   bool
	}
	var fns []*fnode
	byObj := make(map[*types.Func]*fnode)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &fnode{obj: obj, body: fd.Body}
			fns = append(fns, n)
			byObj[obj] = n
		}
	}

	// Seed: direct primitives, markers, and imported facts; then iterate
	// same-package calls to a fixpoint.
	callees := make(map[*fnode][]*types.Func)
	for _, n := range fns {
		if m := pass.Markers.ForObject(n.obj); m != nil && m.NoIO {
			continue // pinned non-I/O regardless of body
		}
		ast.Inspect(n.body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.Callee(info, call)
			if callee == nil {
				return true
			}
			if FuncIsIO(pass, callee) {
				n.io = true
			} else if callee.Pkg() == pass.Pkg {
				callees[n] = append(callees[n], callee)
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, n := range fns {
			if n.io {
				continue
			}
			for _, c := range callees[n] {
				if cn, ok := byObj[c]; ok && cn.io {
					n.io = true
					changed = true
					break
				}
			}
		}
	}
	for _, n := range fns {
		if n.io {
			pass.ExportNamespacedFact(Namespace, analysis.ObjKey(n.obj), Fact{IO: true})
		}
	}
}
