package analysis

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// frameworkVersion salts the fact/diagnostic cache: bump it when the
// framework or any analyzer changes behavior so stale cached results are
// not replayed against new rules.
const frameworkVersion = "shhc-vet-1"

// Package is one loaded package: the `go list` metadata plus, for
// packages typechecked from source, the syntax and type information the
// analyzers consume.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	Export     string // compiler export data (build cache), for importing
	DepOnly    bool   // pulled in as a dependency, not named by the patterns

	// Source packages only (everything outside GOROOT):
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Hash identifies this package's analysis inputs: its source bytes,
	// its dependencies' hashes, and the framework version. Two runs with
	// equal hashes produce equal facts and diagnostics.
	Hash string
}

// World is a loaded, typechecked package graph in dependency order.
type World struct {
	Fset *token.FileSet
	// Pkgs holds every listed package keyed by import path.
	Pkgs map[string]*Package
	// Order lists import paths with dependencies before dependents.
	Order []string

	exports map[string]string // import path -> export data file
	gcImp   types.Importer    // export-data importer for GOROOT packages
	source  map[string]*types.Package
}

// listPackage mirrors the `go list -json` fields the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates patterns (and all dependencies) from dir, typechecks
// every non-GOROOT package from source, and returns the graph in
// dependency order. The go toolchain does the package resolution, so
// build constraints, module boundaries, and the build cache all behave
// exactly as `go build` would — and no network is ever touched.
func Load(dir string, patterns ...string) (*World, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Imports,Standard,Export,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	w := &World{
		Fset:    token.NewFileSet(),
		Pkgs:    make(map[string]*Package),
		exports: make(map[string]string),
		source:  make(map[string]*types.Package),
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		p := &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			GoFiles:    lp.GoFiles,
			Imports:    lp.Imports,
			Standard:   lp.Standard,
			Export:     lp.Export,
			DepOnly:    lp.DepOnly,
		}
		if _, dup := w.Pkgs[p.ImportPath]; !dup {
			w.Pkgs[p.ImportPath] = p
			w.Order = append(w.Order, p.ImportPath)
		}
		if p.Export != "" {
			w.exports[p.ImportPath] = p.Export
		}
	}

	// One export-data importer instance serves every GOROOT import, so
	// each standard-library package has exactly one types.Package
	// identity across the whole run.
	w.gcImp = importer.ForCompiler(w.Fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := w.exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})

	// `go list -deps` emits dependencies before dependents, so one
	// forward sweep typechecks imports before importers.
	for _, path := range w.Order {
		p := w.Pkgs[path]
		if p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if err := w.typecheck(p); err != nil {
			return nil, err
		}
	}
	w.hashPackages()
	return w, nil
}

// Import implements types.Importer: source-typechecked packages resolve
// to their source identity, everything else (GOROOT) to export data.
func (w *World) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if tp, ok := w.source[path]; ok {
		return tp, nil
	}
	return w.gcImp.Import(path)
}

func (w *World) typecheck(p *Package) error {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(w.Fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("analysis: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: w,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tp, err := conf.Check(p.ImportPath, w.Fset, files, info)
	if err != nil {
		return fmt.Errorf("analysis: typecheck %s: %v", p.ImportPath, err)
	}
	p.Files = files
	p.Types = tp
	p.Info = info
	w.source[p.ImportPath] = tp
	return nil
}

// hashPackages computes each source package's analysis-input hash:
// sha256(framework version, own source bytes, dependency hashes).
// Dependencies resolve before dependents in w.Order, so one sweep
// suffices; GOROOT packages contribute their export file path + mtime
// (the build cache already content-addresses them).
func (w *World) hashPackages() {
	for _, path := range w.Order {
		p := w.Pkgs[path]
		h := sha256.New()
		io.WriteString(h, frameworkVersion+"\n"+p.ImportPath+"\n")
		if p.Standard {
			io.WriteString(h, p.Export+"\n")
		} else {
			for _, name := range p.GoFiles {
				b, err := os.ReadFile(filepath.Join(p.Dir, name))
				if err != nil {
					io.WriteString(h, "unreadable:"+name+"\n")
					continue
				}
				io.WriteString(h, name+"\n")
				h.Write(b)
			}
			deps := append([]string(nil), p.Imports...)
			sort.Strings(deps)
			for _, dep := range deps {
				if dp, ok := w.Pkgs[dep]; ok {
					io.WriteString(h, dep+":"+dp.Hash+"\n")
				}
			}
		}
		p.Hash = hex.EncodeToString(h.Sum(nil))
	}
}

// SourcePackages returns the non-GOROOT packages in dependency order.
func (w *World) SourcePackages() []*Package {
	var out []*Package
	for _, path := range w.Order {
		if p := w.Pkgs[path]; !p.Standard && p.Types != nil {
			out = append(out, p)
		}
	}
	return out
}

// ModulePath reports the module path of the module rooted at or above
// dir, per `go list -m`.
func ModulePath(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("analysis: go list -m: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}
