package analysis

import (
	"encoding/json"
	"fmt"
)

// Facts are how analyzers see across package boundaries: while analyzing
// package P, an analyzer may export a fact about one of P's objects
// (keyed by ObjKey), and when a dependent package is analyzed later the
// same analyzer imports it. lockio, for example, exports "this function
// performs I/O" facts bottom-up through the dependency order.
//
// Facts are plain JSON values, which keeps them serializable for the
// between-runs cache (cache.go) with no codec registration.

// factStore holds every exported fact of a run, grouped by the package
// that exported it (the cacheable unit) and indexed globally for import.
type factStore struct {
	byPkg map[string]pkgFacts        // exporting package -> facts
	index map[string]json.RawMessage // analyzer + "\x00" + objkey -> fact
}

// pkgFacts is one package's exports: analyzer name -> object key -> fact.
type pkgFacts map[string]map[string]json.RawMessage

func newFactStore() *factStore {
	return &factStore{
		byPkg: make(map[string]pkgFacts),
		index: make(map[string]json.RawMessage),
	}
}

func (fs *factStore) export(pkgPath, analyzer, key string, fact any) error {
	raw, err := json.Marshal(fact)
	if err != nil {
		return fmt.Errorf("analysis: marshal %s fact for %s: %v", analyzer, key, err)
	}
	pf := fs.byPkg[pkgPath]
	if pf == nil {
		pf = make(pkgFacts)
		fs.byPkg[pkgPath] = pf
	}
	af := pf[analyzer]
	if af == nil {
		af = make(map[string]json.RawMessage)
		pf[analyzer] = af
	}
	af[key] = raw
	fs.index[analyzer+"\x00"+key] = raw
	return nil
}

func (fs *factStore) importFact(analyzer, key string, out any) bool {
	raw, ok := fs.index[analyzer+"\x00"+key]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// merge installs a package's cached facts into the store.
func (fs *factStore) merge(pkgPath string, pf pkgFacts) {
	if len(pf) == 0 {
		return
	}
	fs.byPkg[pkgPath] = pf
	for analyzer, af := range pf {
		for key, raw := range af {
			fs.index[analyzer+"\x00"+key] = raw
		}
	}
}

// ExportObjectFact records a fact about the object with the given
// canonical key (ObjKey/FieldKey), visible to later passes of the same
// analyzer on dependent packages.
func (p *Pass) ExportObjectFact(key string, fact any) error {
	if key == "" {
		return fmt.Errorf("analysis: empty fact key")
	}
	return p.facts.export(p.Pkg.Path(), p.Analyzer.Name, key, fact)
}

// ImportObjectFact loads a fact previously exported under key by this
// analyzer (in this package or any dependency), reporting whether one
// existed.
func (p *Pass) ImportObjectFact(key string, out any) bool {
	if key == "" {
		return false
	}
	return p.facts.importFact(p.Analyzer.Name, key, out)
}

// ExportNamespacedFact and ImportNamespacedFact are the shared-namespace
// variants: helper fact engines used by more than one analyzer (the
// ioflow I/O call-graph facts) publish under their own namespace so
// whichever analyzer runs first computes them and the rest reuse them.
func (p *Pass) ExportNamespacedFact(ns, key string, fact any) error {
	if key == "" {
		return fmt.Errorf("analysis: empty fact key")
	}
	return p.facts.export(p.Pkg.Path(), ns, key, fact)
}

// ImportNamespacedFact loads a fact from a shared namespace.
func (p *Pass) ImportNamespacedFact(ns, key string, out any) bool {
	if key == "" {
		return false
	}
	return p.facts.importFact(ns, key, out)
}
