// Package analysis is a self-contained static-analysis framework in the
// shape of golang.org/x/tools/go/analysis, built only on the standard
// library so the repo's vet suite needs no module downloads.
//
// It provides:
//
//   - Analyzer / Pass / Diagnostic, the x/tools trio: an analyzer's Run
//     receives one typechecked package and reports findings.
//   - A loader (load.go) that enumerates packages with `go list -export
//     -deps -json`, typechecks module packages from source with go/types,
//     and imports everything else (the standard library) from compiler
//     export data — fully offline.
//   - Cross-package object facts (facts.go): a pass on package P can
//     export a fact about one of P's objects ("this function performs
//     device I/O") and a later pass on a dependent package imports it.
//     Facts are JSON, so they cache between runs (cache.go).
//   - Invariant markers (markers.go): machine-readable `//shhc:` comments
//     on declarations — the source of truth the analyzers enforce.
//   - Suppressions (suppress.go): `//lint:ignore <analyzers> <reason>`
//     silences a finding on the next line, with a mandatory reason.
//
// The concrete analyzers live in subpackages (bufown, ctxfirst, lockio,
// atomicmix, poolescape) and are driven by cmd/shhc-vet.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one analysis and its entry point.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore comments. Lowercase, no spaces.
	Name string

	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string

	// Run applies the analyzer to one package. It reports findings via
	// pass.Report and may exchange facts via pass.ExportObjectFact /
	// pass.ImportObjectFact. The error return is for operational failures
	// only — findings are diagnostics, not errors.
	Run func(pass *Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass is the interface between one analyzer and one package.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Markers holds the //shhc: invariant markers declared in this
	// package and in every module dependency (keyed by object, see
	// markers.go).
	Markers *MarkerSet

	report func(Diagnostic)
	facts  *factStore
}

// Report records a finding. Findings on lines carrying a matching
// //lint:ignore comment are filtered by the driver, not here.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Position resolves the diagnostic's position against a file set.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}
