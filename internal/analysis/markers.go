package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Invariant markers are machine-readable `//shhc:` comments on
// declarations. They turn the hot-path rules that used to live in prose
// comments into the analyzers' source of truth:
//
//	//shhc:lock ramonly [rank=N]
//	    On a mutex struct field. "ramonly" declares that no device,
//	    file, or network I/O may run while this lock is held (lockio).
//	    "rank=N" places the lock in the acquisition order: while a lock
//	    of rank N is held, acquiring a lock with rank < N is a
//	    violation (the destage d.mu→shard order).
//
//	//shhc:returns-buf
//	    On a function: its pooled-buffer result transfers ownership to
//	    the caller, who must release it on every path (bufown) and must
//	    not let it escape to long-lived storage (poolescape).
//
//	//shhc:takes-buf <param> [param...]
//	    On a function: it assumes ownership of the pooled buffer passed
//	    as the named parameter(s); passing a buffer there counts as the
//	    caller's release.
//
//	//shhc:io
//	    On a function or interface method: it performs I/O by decree,
//	    seeding lockio's transitive call-graph facts (used on interfaces
//	    like hashdb.Store whose implementations are not statically
//	    visible at call sites).
//
//	//shhc:noio
//	    On a function: overrides the I/O inference (escape hatch for
//	    provably-RAM paths that call something conservatively marked).
type Marker struct {
	Lock    bool
	RAMOnly bool
	Rank    int // 0 = unranked

	ReturnsBuf bool
	TakesBuf   []string

	IO   bool
	NoIO bool
}

// MarkerSet indexes markers by canonical object key (see ObjKey).
type MarkerSet struct {
	m map[string]*Marker
}

// NewMarkerSet returns an empty set.
func NewMarkerSet() *MarkerSet { return &MarkerSet{m: make(map[string]*Marker)} }

// Get returns the marker for a canonical key, or nil.
func (s *MarkerSet) Get(key string) *Marker {
	if s == nil || key == "" {
		return nil
	}
	return s.m[key]
}

// ForObject returns the marker attached to a function or method.
func (s *MarkerSet) ForObject(obj types.Object) *Marker { return s.Get(ObjKey(obj)) }

// ForField returns the marker attached to the named field of the (possibly
// pointer-to) named struct type recv.
func (s *MarkerSet) ForField(recv types.Type, fieldName string) *Marker {
	return s.Get(FieldKey(recv, fieldName))
}

// ObjKey builds the canonical cross-package key for a package-level
// function, method (by receiver base type), or interface method:
// "pkg/path.Name" or "pkg/path.Type.Name". Objects without a package
// (builtins) key to "".
func ObjKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	pkg := obj.Pkg().Path()
	if f, ok := obj.(*types.Func); ok {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			if base := baseTypeName(sig.Recv().Type()); base != "" {
				return pkg + "." + base + "." + f.Name()
			}
		}
	}
	return pkg + "." + obj.Name()
}

// FieldKey builds the canonical key for a struct field reached through a
// value of type recv (pointers and aliases are unwrapped).
func FieldKey(recv types.Type, fieldName string) string {
	named := namedOf(recv)
	if named == nil {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name() + "." + fieldName
}

func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

func baseTypeName(t types.Type) string {
	if n := namedOf(t); n != nil {
		return n.Obj().Name()
	}
	return ""
}

// collectMarkers scans one typechecked package for //shhc: comments and
// merges them into the set. Marker syntax errors are real errors: a typo
// in an invariant declaration must not silently disable enforcement.
func (s *MarkerSet) collectMarkers(fset *token.FileSet, files []*ast.File, info *types.Info, pkg *types.Package) error {
	addLines := func(key string, groups ...*ast.CommentGroup) error {
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				text, ok := strings.CutPrefix(c.Text, "//shhc:")
				if !ok {
					continue
				}
				if key == "" {
					return fmt.Errorf("%s: //shhc: marker on declaration without a canonical key", fset.Position(c.Pos()))
				}
				m := s.m[key]
				if m == nil {
					m = &Marker{}
					s.m[key] = m
				}
				if err := parseMarker(m, text); err != nil {
					return fmt.Errorf("%s: %v", fset.Position(c.Pos()), err)
				}
			}
		}
		return nil
	}

	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				obj := info.Defs[d.Name]
				if err := addLines(ObjKey(obj), d.Doc); err != nil {
					return err
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					switch t := ts.Type.(type) {
					case *ast.StructType:
						for _, fld := range t.Fields.List {
							for _, name := range fld.Names {
								key := pkg.Path() + "." + ts.Name.Name + "." + name.Name
								if err := addLines(key, fld.Doc, fld.Comment); err != nil {
									return err
								}
							}
						}
					case *ast.InterfaceType:
						for _, meth := range t.Methods.List {
							for _, name := range meth.Names {
								key := pkg.Path() + "." + ts.Name.Name + "." + name.Name
								if err := addLines(key, meth.Doc, meth.Comment); err != nil {
									return err
								}
							}
						}
					}
				}
			}
		}
	}
	return nil
}

func parseMarker(m *Marker, text string) error {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return fmt.Errorf("empty //shhc: marker")
	}
	switch fields[0] {
	case "lock":
		m.Lock = true
		for _, arg := range fields[1:] {
			switch {
			case arg == "ramonly":
				m.RAMOnly = true
			case strings.HasPrefix(arg, "rank="):
				n, err := strconv.Atoi(strings.TrimPrefix(arg, "rank="))
				if err != nil || n <= 0 {
					return fmt.Errorf("shhc:lock rank must be a positive integer, got %q", arg)
				}
				m.Rank = n
			default:
				return fmt.Errorf("unknown shhc:lock argument %q", arg)
			}
		}
	case "returns-buf":
		m.ReturnsBuf = true
	case "takes-buf":
		if len(fields) < 2 {
			return fmt.Errorf("shhc:takes-buf needs at least one parameter name")
		}
		m.TakesBuf = append(m.TakesBuf, fields[1:]...)
	case "io":
		m.IO = true
	case "noio":
		m.NoIO = true
	default:
		return fmt.Errorf("unknown //shhc: marker %q", fields[0])
	}
	return nil
}
