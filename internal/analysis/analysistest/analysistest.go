// Package analysistest is the golden-test driver for the vet analyzers:
// the offline counterpart of golang.org/x/tools/go/analysis/analysistest.
//
// A golden suite is a small self-contained Go module under an analyzer's
// testdata directory (its own go.mod, stdlib-only imports). Expected
// diagnostics are written inline as
//
//	expr // want `regex` `another regex`
//
// comments. Run loads the module, applies the analyzers, and fails the
// test unless findings and expectations match one-to-one: every finding
// must satisfy a want on its exact line, and every want must be hit.
// Files without want comments double as negative cases — any finding in
// them is a test failure.
package analysistest

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"shhc/internal/analysis"
)

// want is one expected diagnostic: a regex anchored to a file and line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// Run loads the testdata module rooted at dir, applies the analyzers to
// every package in it, and checks the findings against the // want
// expectations. It returns the result for tests that assert more (e.g.
// suppression counts).
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) *analysis.Result {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	res, err := analysis.Run(analysis.RunConfig{
		Dir:       abs,
		Patterns:  []string{"./..."},
		Analyzers: analyzers,
	})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	wants, err := collectWants(abs)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	for _, f := range res.Findings {
		if !claim(wants, f) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no finding matched want %s", w.file, w.line, w.raw)
		}
	}
	return res
}

// claim marks the first unmet want on the finding's line whose regex
// matches the message, reporting whether one existed.
func claim(wants []*want, f analysis.Finding) bool {
	file := filepath.Clean(f.File)
	for _, w := range wants {
		if !w.met && w.file == file && w.line == f.Line && w.re.MatchString(f.Message) {
			w.met = true
			return true
		}
	}
	return false
}

// collectWants scans every .go file under root for // want comments.
func collectWants(root string) ([]*want, error) {
	var wants []*want
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			ws, err := parseWantComment(line)
			if err != nil {
				return fmt.Errorf("%s:%d: %v", path, i+1, err)
			}
			for _, raw := range ws {
				re, err := regexp.Compile(raw)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regex %s: %v", path, i+1, raw, err)
				}
				wants = append(wants, &want{file: filepath.Clean(path), line: i + 1, re: re, raw: raw})
			}
		}
		return nil
	})
	return wants, err
}

// wantRE finds the expectation list after a "// want" comment.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWantComment extracts the quoted regexes from one source line, in
// source order. Both `backquoted` and "double-quoted" forms are accepted.
func parseWantComment(line string) ([]string, error) {
	m := wantRE.FindStringSubmatch(line)
	if m == nil {
		return nil, nil
	}
	var out []string
	rest := strings.TrimSpace(m[1])
	for rest != "" {
		prefix, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("want expectations must be quoted strings, got %q", rest)
		}
		unq, err := strconv.Unquote(prefix)
		if err != nil {
			return nil, err
		}
		out = append(out, unq)
		rest = strings.TrimSpace(rest[len(prefix):])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("// want comment carries no expectations")
	}
	return out, nil
}
