package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
)

// The between-runs cache: one JSON file per (package hash, analyzer set)
// holding the facts the package exported and the findings it produced.
// Package hashes fold in the hashes of all dependencies (load.go), so a
// change anywhere below a package invalidates it — the same shape as the
// go build cache, and safe to share across branches. CI caches this
// directory so an unchanged subtree costs one hash check per package.

type cacheEntry struct {
	Facts      pkgFacts  `json:"facts,omitempty"`
	Findings   []Finding `json:"findings"`
	Suppressed int       `json:"suppressed,omitempty"`
}

type factCache struct {
	dir string
}

func cacheKey(pkgHash, analyzerSalt string) string {
	sum := sha256.Sum256([]byte(pkgHash + "|" + analyzerSalt))
	return hex.EncodeToString(sum[:])
}

func (c *factCache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

func (c *factCache) load(key string) (*cacheEntry, bool) {
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var ent cacheEntry
	if err := json.Unmarshal(b, &ent); err != nil {
		return nil, false // corrupt entry: fall through to re-analysis
	}
	return &ent, true
}

// store writes best-effort: a read-only or full cache directory must
// never fail the analysis itself.
func (c *factCache) store(key string, ent *cacheEntry) {
	b, err := json.Marshal(ent)
	if err != nil {
		return
	}
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, p)
}
