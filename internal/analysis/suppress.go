package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppressions: a finding judged intentional is silenced in the source
// with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the offending line or on the line directly above it. The reason is
// mandatory — a suppression with no justification is itself reported.
// "all" matches every analyzer. This is the same shape staticcheck
// honors, so one comment can silence both tools where they overlap.

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	file      string
	line      int // the comment's own line; it covers line and line+1
	analyzers []string
	reason    string
	pos       token.Pos
}

func (s *suppression) matches(analyzer string, file string, line int) bool {
	if s.file != file || (line != s.line && line != s.line+1) {
		return false
	}
	for _, a := range s.analyzers {
		if a == analyzer || a == "all" {
			return true
		}
	}
	return false
}

// collectSuppressions gathers the //lint:ignore comments of a package.
// Malformed suppressions (no analyzer list or no reason) are reported as
// diagnostics so they cannot silently disable enforcement.
func collectSuppressions(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) []*suppression {
	var out []*suppression
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					report(Diagnostic{
						Analyzer: "suppress",
						Pos:      c.Pos(),
						Message:  "malformed //lint:ignore: need analyzer list and a reason",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, &suppression{
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: strings.Split(fields[0], ","),
					reason:    strings.Join(fields[1:], " "),
					pos:       c.Pos(),
				})
			}
		}
	}
	return out
}

// applySuppressions filters diagnostics covered by a matching
// suppression, returning the survivors and the number silenced.
func applySuppressions(fset *token.FileSet, diags []Diagnostic, sups []*suppression) ([]Diagnostic, int) {
	if len(sups) == 0 {
		return diags, 0
	}
	kept := diags[:0]
	suppressed := 0
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		hit := false
		for _, s := range sups {
			if s.matches(d.Analyzer, pos.Filename, pos.Line) {
				hit = true
				break
			}
		}
		if hit {
			suppressed++
		} else {
			kept = append(kept, d)
		}
	}
	return kept, suppressed
}
