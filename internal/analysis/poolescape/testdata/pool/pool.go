// Package pool is the marked acquire/release pair the escape analysis
// keys on.
package pool

import "sync"

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

//shhc:returns-buf
func GetBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

//shhc:takes-buf bp
func PutBuf(bp *[]byte) {
	bufPool.Put(bp)
}
