// Negative cases: scoped use, marked transfers, and releases.
package a

import "poolescapetest/pool"

func use([]byte) {}

// scopedUse acquires, uses, releases — nothing escapes.
func scopedUse() {
	bp := pool.GetBuf()
	defer pool.PutBuf(bp)
	use(*bp)
}

// markedReturn declares the ownership transfer, so returning is legal.
//
//shhc:returns-buf
func markedReturn() *[]byte {
	return pool.GetBuf()
}

// passedDown hands the buffer to a marked taker: a release, not an
// escape.
func passedDown() {
	pool.PutBuf(pool.GetBuf())
}
