// Positive cases: every way a pooled buffer can outlive its release.
package a

import "poolescapetest/pool"

type holder struct {
	buf *[]byte
}

var global *[]byte

func storeInField(h *holder) {
	h.buf = pool.GetBuf() // want `pooled buffer stored in field buf may outlive its release`
}

func storeInGlobal() {
	global = pool.GetBuf() // want `pooled buffer stored in package variable global may outlive its release`
}

func storeInLiteral() holder {
	return holder{buf: pool.GetBuf()} // want `pooled buffer stored in a composite literal may outlive its release`
}

func sendOnChannel(ch chan *[]byte) {
	ch <- pool.GetBuf() // want `pooled buffer sent on a channel escapes its release scope`
}

func unmarkedReturn() *[]byte {
	return pool.GetBuf() // want `pooled buffer returned from a function not marked //shhc:returns-buf hides the ownership transfer`
}

func storeInSlice(dst []*[]byte) {
	dst[0] = pool.GetBuf() // want `pooled buffer stored in a slice or map element may outlive its release`
}
