module poolescapetest

go 1.24
