package poolescape_test

import (
	"testing"

	"shhc/internal/analysis/analysistest"
	"shhc/internal/analysis/poolescape"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", poolescape.Analyzer)
}
