// Package poolescape guards the lifetime side of the zero-copy pool
// contract. bufown proves every acquired buffer is released on every
// path; poolescape proves a pooled buffer never outlives the release
// point by escaping into long-lived storage. A buffer stashed in a
// struct field, a package variable, a map, or a channel can be read
// after PutBuf recycles it — the classic use-after-free shape that the
// race detector only reports when the pool rehands the page quickly
// enough to collide.
//
// A value is "pooled" when it comes from a call to a function marked
// //shhc:returns-buf (wire.GetBuf, ReadFrameVInto, hashdb getPage, …)
// or is a parameter named by a //shhc:takes-buf marker. The analyzer
// flags, flow-insensitively:
//
//   - assignment of a pooled value to a struct field, dereference,
//     index/map slot, or package-level variable;
//   - a pooled value placed in a composite literal;
//   - a pooled value sent on a channel;
//   - a pooled value returned from a named function NOT itself marked
//     //shhc:returns-buf (an unmarked return hides the ownership
//     transfer from callers and from bufown).
//
// Deliberate hand-offs (the rpc read loop delivering a response body
// through a buffered channel to exactly one waiter) are real designs;
// they carry //lint:ignore poolescape with the justification inline.
package poolescape

import (
	"go/ast"
	"go/types"

	"shhc/internal/analysis"
)

// Analyzer is the poolescape pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolescape",
	Doc:  "pooled buffers must not escape into structs, globals, channels, or unmarked returns",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	pooled := make(map[types.Object]bool)

	// takes-buf parameters are pooled on entry.
	if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
		if m := pass.Markers.ForObject(obj); m != nil {
			for _, pname := range m.TakesBuf {
				for _, fld := range fd.Type.Params.List {
					for _, name := range fld.Names {
						if name.Name == pname {
							if p := info.Defs[name]; p != nil {
								pooled[p] = true
							}
						}
					}
				}
			}
		}
	}

	// Flow-insensitive collection: any var ever assigned from a
	// returns-buf call is pooled for the whole function (including
	// nested literals, which close over the same objects).
	ast.Inspect(fd, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) == 0 {
			return true
		}
		// x := f() / x, err := f(): pooled results map positionally for
		// the single-call form; a lone call RHS covers the common cases.
		if len(as.Rhs) == 1 {
			if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && isPooledCall(pass, call) {
				for _, l := range as.Lhs {
					if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
						if obj := objOf(info, id); obj != nil && analysis.IsBufType(obj.Type()) {
							pooled[obj] = true
						}
					}
				}
			}
			return true
		}
		for i, r := range as.Rhs {
			if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && isPooledCall(pass, call) && i < len(as.Lhs) {
				if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
					if obj := objOf(info, id); obj != nil && analysis.IsBufType(obj.Type()) {
						pooled[obj] = true
					}
				}
			}
		}
		return true
	})

	declExempt := false
	if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
		if m := pass.Markers.ForObject(obj); m != nil && m.ReturnsBuf {
			declExempt = true
		}
	}

	w := &walker{pass: pass, pooled: pooled}
	w.walk(fd.Body, declExempt)
}

type walker struct {
	pass   *analysis.Pass
	pooled map[types.Object]bool
}

// isPooled reports whether e denotes a pooled buffer: a tracked var or a
// direct returns-buf call.
func (w *walker) isPooled(e ast.Expr) bool {
	switch ex := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := objOf(w.pass.TypesInfo, ex)
		return obj != nil && w.pooled[obj]
	case *ast.CallExpr:
		return isPooledCall(w.pass, ex)
	}
	return false
}

// walk visits statements; returnsExempt tells whether a return of a
// pooled value is allowed in the current function context (the enclosing
// declaration is marked returns-buf, or we are inside a function
// literal, whose returns deliver to a same-function call site bufown
// already tracks).
func (w *walker) walk(n ast.Node, returnsExempt bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch st := node.(type) {
		case *ast.FuncLit:
			w.walk(st.Body, true)
			return false
		case *ast.AssignStmt:
			w.checkAssign(st)
		case *ast.SendStmt:
			if w.isPooled(st.Value) {
				w.pass.Reportf(st.Value.Pos(),
					"pooled buffer sent on a channel escapes its release scope")
			}
		case *ast.CompositeLit:
			for _, el := range st.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if w.isPooled(v) {
					w.pass.Reportf(v.Pos(),
						"pooled buffer stored in a composite literal may outlive its release")
				}
			}
		case *ast.ReturnStmt:
			if returnsExempt {
				return true
			}
			for _, r := range st.Results {
				if w.isPooled(r) {
					w.pass.Reportf(r.Pos(),
						"pooled buffer returned from a function not marked //shhc:returns-buf hides the ownership transfer")
				}
			}
		}
		return true
	})
}

// checkAssign reports pooled values stored into long-lived places.
func (w *walker) checkAssign(as *ast.AssignStmt) {
	for i, l := range as.Lhs {
		var r ast.Expr
		if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
			continue // multi-value call RHS: no syntactic pooled expr per LHS
		} else if i < len(as.Rhs) {
			r = as.Rhs[i]
		} else {
			continue
		}
		if !w.isPooled(r) {
			continue
		}
		switch lhs := ast.Unparen(l).(type) {
		case *ast.SelectorExpr:
			w.pass.Reportf(r.Pos(),
				"pooled buffer stored in field %s may outlive its release", lhs.Sel.Name)
		case *ast.IndexExpr:
			w.pass.Reportf(r.Pos(),
				"pooled buffer stored in a slice or map element may outlive its release")
		case *ast.StarExpr:
			w.pass.Reportf(r.Pos(),
				"pooled buffer stored through a pointer may outlive its release")
		case *ast.Ident:
			if obj := objOf(w.pass.TypesInfo, lhs); obj != nil && obj.Parent() == w.pass.Pkg.Scope() {
				w.pass.Reportf(r.Pos(),
					"pooled buffer stored in package variable %s may outlive its release", lhs.Name)
			}
		}
	}
}

// isPooledCall reports whether call's callee is marked //shhc:returns-buf.
func isPooledCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	callee := analysis.Callee(pass.TypesInfo, call)
	if callee == nil {
		return false
	}
	m := pass.Markers.ForObject(callee)
	return m != nil && m.ReturnsBuf
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
