package atomicmix_test

import (
	"testing"

	"shhc/internal/analysis/analysistest"
	"shhc/internal/analysis/atomicmix"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer)
}
