// Package atomicmix protects the lock-free structures PR-7 introduced:
// a variable or field that is EVER accessed through sync/atomic
// (atomic.AddUint64(&s.fastHits, 1), atomic.LoadUint32(&f.bits[i]), …)
// must ALWAYS be accessed that way — one plain read racing an atomic
// write is an undiagnosed data race that -race only catches if a test
// happens to interleave it.
//
// Fields of the atomic.* wrapper types (atomic.Uint64, atomic.Pointer)
// are safe by construction and outside this analyzer's scope; it exists
// for the old-style address-taken pattern, which is still what arrays
// (the Bloom filter's word slice) and padded stripe counters use.
//
// Within a package, the analyzer collects every object whose address
// flows into a sync/atomic call, then reports every other appearance of
// that object that is not itself under such a call. Initialization
// before publication is a legitimate plain access — suppress those
// sites with //lint:ignore atomicmix and a reason. For exported fields
// the atomically-accessed set is exported as facts, so a dependent
// package mixing in a plain access is caught too.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"shhc/internal/analysis"
)

// Analyzer is the atomicmix pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "variables accessed via sync/atomic must never also be accessed plainly",
	Run:  run,
}

// fact marks an exported field/var as atomically accessed somewhere.
type fact struct {
	Atomic bool `json:"atomic"`
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Pass 1: find objects whose address feeds a sync/atomic call, and
	// bless ident positions that are not value accesses:
	//
	//   - any ident under a & operand — taking an address is not reading
	//     or writing the value (the atomic call itself is the canonical
	//     case, and `w := &f.bits[i]; atomic.OrUint64(w, m)` is the same
	//     pattern split over two statements);
	//   - composite-literal field keys — `Filter{bits: make(...)}`
	//     initializes a value nobody else can see yet;
	//   - len/cap arguments and range operands — they read the immutable
	//     slice header, not the atomically-accessed elements.
	atomicObjs := make(map[types.Object]ast.Node) // object -> first atomic use
	blessed := make(map[*ast.Ident]bool)          // idents in non-access positions

	blessAll := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				blessed[id] = true
			}
			return true
		})
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.UnaryExpr:
				if e.Op == token.AND {
					blessAll(e.X)
				}
			case *ast.CompositeLit:
				for _, el := range e.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							blessed[id] = true
						}
					}
				}
			case *ast.RangeStmt:
				blessAll(e.X)
			case *ast.CallExpr:
				if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && info.Uses[id] != nil {
					if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
						for _, a := range e.Args {
							blessAll(a)
						}
					}
				}
				callee := analysis.Callee(info, e)
				if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range e.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					obj := addressedObject(info, un.X)
					if obj == nil {
						continue
					}
					if _, seen := atomicObjs[obj]; !seen {
						atomicObjs[obj] = e
					}
				}
			}
			return true
		})
	}

	// Export facts for objects visible outside the package.
	for obj := range atomicObjs {
		if obj.Exported() {
			if key := objectKey(obj, info); key != "" {
				pass.ExportObjectFact(key, fact{Atomic: true})
			}
		}
	}

	isAtomic := func(obj types.Object, id *ast.Ident) bool {
		if _, ok := atomicObjs[obj]; ok {
			return true
		}
		// Imported field accessed here: consult facts.
		if obj.Pkg() != nil && obj.Pkg() != pass.Pkg {
			var f fact
			if pass.ImportObjectFact(objectKeyAt(pass, obj, id), &f) {
				return f.Atomic
			}
		}
		return false
	}

	// Pass 2: any appearance of an atomic object outside a blessed
	// position is a plain access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || blessed[id] {
				return true
			}
			obj := info.Uses[id]
			if obj == nil {
				return true
			}
			if v, ok := obj.(*types.Var); ok && isAtomic(v, id) {
				pass.Reportf(id.Pos(),
					"%s is accessed with sync/atomic elsewhere; this plain access races it (use the atomic API, or //lint:ignore atomicmix with a reason if pre-publication)",
					id.Name)
			}
			return true
		})
	}
	return nil
}

// addressedObject resolves &x / &x.f / &x.f[i] to the underlying
// variable or field object.
func addressedObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch ex := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[ex]
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[ex]; ok && sel.Kind() == types.FieldVal {
				return sel.Obj()
			}
			return info.Uses[ex.Sel]
		case *ast.IndexExpr:
			e = ex.X // &s.words[i]: the array/slice field is the unit
		default:
			return nil
		}
	}
}

// objectKey builds the fact key for a field or package-level var found
// in this package's own declarations.
func objectKey(obj types.Object, info *types.Info) string {
	if v, ok := obj.(*types.Var); ok && !v.IsField() {
		return analysis.ObjKey(v)
	}
	// Fields need their owning struct, recovered at the use site; for
	// exports we fall back to scanning the defining package's types.
	if v, ok := obj.(*types.Var); ok && v.IsField() && v.Pkg() != nil {
		if name := owningStruct(v); name != "" {
			return v.Pkg().Path() + "." + name + "." + v.Name()
		}
	}
	return ""
}

// objectKeyAt builds a field fact key from a use site (selector
// receiver type).
func objectKeyAt(pass *analysis.Pass, obj types.Object, id *ast.Ident) string {
	// Find the enclosing selector to learn the receiver type.
	for sel, selection := range pass.TypesInfo.Selections {
		if sel.Sel == id && selection.Kind() == types.FieldVal {
			return analysis.FieldKey(selection.Recv(), id.Name)
		}
	}
	return objectKey(obj, pass.TypesInfo)
}

// owningStruct finds the named struct type declaring field v in its
// package scope.
func owningStruct(v *types.Var) string {
	scope := v.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return name
			}
		}
	}
	return ""
}
