// Package a mixes atomic and plain access to the same fields — the race
// shape atomicmix exists to catch — next to the blessed patterns that
// must stay silent.
package a

import "sync/atomic"

type counter struct {
	n     int64
	name  string
	words []uint64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) incWord(i int) {
	atomic.AddUint64(&c.words[i], 1)
}

// plainRead races inc: c.n is an atomic field everywhere else.
func (c *counter) plainRead() int64 {
	return c.n // want `n is accessed with sync/atomic elsewhere; this plain access races it`
}

// plainWrite races too, and on the store side.
func (c *counter) plainWrite() {
	c.n = 0 // want `n is accessed with sync/atomic elsewhere; this plain access races it`
}

// atomicRead is the correct access.
func (c *counter) atomicRead() int64 {
	return atomic.LoadInt64(&c.n)
}

// newCounter initializes via composite-literal keys: a fresh object is
// unpublished, so the plain field names are blessed.
func newCounter(words int) *counter {
	return &counter{n: 0, name: "c", words: make([]uint64, words)}
}

// size reads the slice header, not the atomic elements: len and range
// over c.words are blessed.
func (c *counter) size() int {
	total := 0
	for range c.words {
		total++
	}
	return total + len(c.words)
}

// label never flows into sync/atomic, so plain access is fine.
func (c *counter) label() string {
	return c.name
}
