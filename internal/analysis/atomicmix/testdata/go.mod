module atomicmixtest

go 1.24
