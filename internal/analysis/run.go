package analysis

import (
	"fmt"
	"sort"
)

// Finding is one reported, position-resolved diagnostic — the unit the
// driver prints and the cache stores.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// RunConfig configures one multichecker run.
type RunConfig struct {
	// Dir is the directory whose module is analyzed (go list runs here).
	Dir string
	// Patterns are go package patterns; default "./...".
	Patterns []string
	// Analyzers to apply, in order.
	Analyzers []*Analyzer
	// CacheDir, when non-empty, persists per-package facts and findings
	// keyed by content hash so unchanged packages are not re-analyzed.
	CacheDir string
}

// Result is the outcome of a run.
type Result struct {
	// Findings for the pattern-matched packages, position-sorted, with
	// suppressed entries already removed.
	Findings []Finding
	// Suppressed counts findings silenced by //lint:ignore comments.
	Suppressed int
	// CacheHits counts packages whose analysis was replayed from cache.
	CacheHits int
	// Packages counts source packages analyzed (including cache hits).
	Packages int
}

// Run loads the package graph and applies every analyzer to every
// non-GOROOT package in dependency order, so facts flow bottom-up.
// Findings are only collected for the packages the patterns named; the
// dependency sweep exists to compute facts and markers.
func Run(cfg RunConfig) (*Result, error) {
	world, err := Load(cfg.Dir, cfg.Patterns...)
	if err != nil {
		return nil, err
	}
	return RunWorld(world, cfg)
}

// RunWorld applies analyzers to an already-loaded world (the golden-test
// harness loads once and probes multiple analyzers).
func RunWorld(world *World, cfg RunConfig) (*Result, error) {
	srcPkgs := world.SourcePackages()

	// Markers are collected for every source package before any analyzer
	// runs: a dependent package's pass must see its dependencies' lock
	// and ownership markers, and collection is cheap (the AST is already
	// in hand).
	markers := NewMarkerSet()
	for _, p := range srcPkgs {
		if err := markers.collectMarkers(world.Fset, p.Files, p.Info, p.Types); err != nil {
			return nil, err
		}
	}

	var cache *factCache
	if cfg.CacheDir != "" {
		cache = &factCache{dir: cfg.CacheDir}
	}
	analyzerSalt := ""
	for _, a := range cfg.Analyzers {
		analyzerSalt += a.Name + ","
	}

	facts := newFactStore()
	res := &Result{}
	for _, p := range srcPkgs {
		res.Packages++
		key := cacheKey(p.Hash, analyzerSalt)
		if cache != nil {
			if ent, ok := cache.load(key); ok {
				facts.merge(p.ImportPath, ent.Facts)
				if !p.DepOnly {
					res.Findings = append(res.Findings, ent.Findings...)
					res.Suppressed += ent.Suppressed
				}
				res.CacheHits++
				continue
			}
		}

		var diags []Diagnostic
		report := func(d Diagnostic) { diags = append(diags, d) }
		sups := collectSuppressions(world.Fset, p.Files, report)
		for _, a := range cfg.Analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      world.Fset,
				Files:     p.Files,
				Pkg:       p.Types,
				TypesInfo: p.Info,
				Markers:   markers,
				report:    report,
				facts:     facts,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, p.ImportPath, err)
			}
		}
		diags, suppressed := applySuppressions(world.Fset, diags, sups)

		findings := make([]Finding, 0, len(diags))
		for _, d := range diags {
			pos := world.Fset.Position(d.Pos)
			findings = append(findings, Finding{
				Analyzer: d.Analyzer,
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Message:  d.Message,
			})
		}
		if cache != nil {
			cache.store(key, &cacheEntry{
				Facts:      facts.byPkg[p.ImportPath],
				Findings:   findings,
				Suppressed: suppressed,
			})
		}
		if !p.DepOnly {
			res.Findings = append(res.Findings, findings...)
			res.Suppressed += suppressed
		}
	}

	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}
