// Package bufown enforces the zero-copy wire layer's ownership rule:
// every pooled buffer acquisition (wire.GetBuf, wire.ReadFrameVInto,
// hashdb's page pool — any function marked //shhc:returns-buf) reaches
// exactly one release on every path. A release is passing the buffer
// where ownership is declared to move — a //shhc:takes-buf parameter
// (wire.PutBuf), sync.Pool.Put, or any call through a func value we
// cannot see into — storing it into a composite literal or channel (the
// rpc response handoff), or returning it (functions that do so must
// themselves be marked //shhc:returns-buf — poolescape checks that).
// Passing a buffer to an ordinary function is a borrow: pageCount(page)
// does not release the page.
//
// The analyzer walks each function's statement structure symbolically:
// branches fork the ownership state, merges reconcile it, and every
// return (plus the fall-off end and loop-iteration boundaries) checks
// that no owned buffer is left behind. Releasing an already-released
// buffer is reported as a double release. Functions containing goto are
// skipped. Buffers whose acquisition also yielded an error value are
// only considered owned on the error-free path, mirroring the
// "non-nil exactly when the error is nil" contract of ReadFrameVInto.
package bufown

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"shhc/internal/analysis"
)

// Analyzer is the bufown pass.
var Analyzer = &analysis.Analyzer{
	Name: "bufown",
	Doc:  "check that pooled wire/page buffers are released exactly once on every path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzeFunc(pass, fd)
		}
		// Function literals are analyzed as independent ownership
		// contexts: acquisitions inside one must be released inside it
		// (or handed off); captures of outer buffers are handled
		// conservatively by the outer function's walk.
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				w := newWalker(pass)
				w.walkBody(lit.Body, newState())
			}
			return true
		})
	}
	return nil
}

func analyzeFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	w := newWalker(pass)
	s := newState()
	// Parameters this function owns by contract (//shhc:takes-buf).
	if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		if m := pass.Markers.ForObject(obj); m != nil && len(m.TakesBuf) > 0 {
			owned := make(map[string]bool, len(m.TakesBuf))
			for _, name := range m.TakesBuf {
				owned[name] = true
			}
			for _, fld := range fd.Type.Params.List {
				for _, name := range fld.Names {
					if owned[name.Name] {
						if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
							w.track(s, v, name.Pos(), nil)
						}
					}
				}
			}
		}
	}
	w.walkBody(fd.Body, s)
}

// status is a buffer's ownership on one path.
type status uint8

const (
	stOwned    status = iota // must be released before the path ends
	stReleased               // released; a second release is a bug
	stNilSafe                // statically nil on this path (error branch); releasing or not are both fine
	stMaybe                  // paths disagree or tracking was lost; silent
)

func mergeStatus(a, b status) status {
	switch {
	case a == b:
		return a
	case a == stNilSafe:
		return b
	case b == stNilSafe:
		return a
	default:
		return stMaybe
	}
}

type trackedVar struct {
	obj        *types.Var
	acquiredAt token.Pos
	errVar     *types.Var // error result from the acquiring statement
}

type state struct {
	st         map[*types.Var]status
	deferred   map[*types.Var]bool // release registered via defer
	terminated bool
}

func newState() *state {
	return &state{st: make(map[*types.Var]status), deferred: make(map[*types.Var]bool)}
}

func (s *state) clone() *state {
	c := newState()
	for k, v := range s.st {
		c.st[k] = v
	}
	for k, v := range s.deferred {
		c.deferred[k] = v
	}
	c.terminated = s.terminated
	return c
}

// merge folds other into s (a join point where both paths continue).
func (s *state) merge(other *state) {
	if other.terminated {
		return
	}
	if s.terminated {
		s.st = other.st
		s.deferred = other.deferred
		s.terminated = false
		return
	}
	for k, v := range other.st {
		if cur, ok := s.st[k]; ok {
			s.st[k] = mergeStatus(cur, v)
		} else {
			s.st[k] = v
		}
	}
	for k := range s.st {
		if _, ok := other.st[k]; !ok {
			// Acquired on only one arm; the arm's own exits checked it.
		}
	}
	for k, v := range other.deferred {
		if s.deferred[k] != v {
			s.st[k] = stMaybe
			delete(s.deferred, k)
		}
	}
}

type loopCtx struct {
	// innerVars are buffers acquired inside the current iteration; a
	// `continue` that leaves one owned loses it.
	innerVars map[*types.Var]bool
	breaks    []*state
}

type walker struct {
	pass     *analysis.Pass
	info     *types.Info
	tracked  map[*types.Var]*trackedVar
	loops    []*loopCtx
	reported map[string]bool
}

func newWalker(pass *analysis.Pass) *walker {
	return &walker{
		pass:     pass,
		info:     pass.TypesInfo,
		tracked:  make(map[*types.Var]*trackedVar),
		reported: make(map[string]bool),
	}
}

func (w *walker) track(s *state, v *types.Var, at token.Pos, errVar *types.Var) {
	w.tracked[v] = &trackedVar{obj: v, acquiredAt: at, errVar: errVar}
	s.st[v] = stOwned
	if len(w.loops) > 0 {
		w.loops[len(w.loops)-1].innerVars[v] = true
	}
}

func (w *walker) reportOnce(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	w.pass.Reportf(pos, "%s", msg)
}

// release marks v released at pos, reporting a double release.
func (w *walker) release(s *state, v *types.Var, pos token.Pos) {
	if cur, ok := s.st[v]; ok && cur == stReleased {
		w.reportOnce(pos, "pooled buffer %q may be released twice (earlier release on this path)", v.Name())
	}
	s.st[v] = stReleased
}

// exitCheck reports owned buffers at a path exit.
func (w *walker) exitCheck(s *state, exitPos token.Pos, where string) {
	for v, st := range s.st {
		if st != stOwned || s.deferred[v] {
			continue
		}
		tv := w.tracked[v]
		line := w.pass.Fset.Position(exitPos).Line
		w.reportOnce(tv.acquiredAt, "pooled buffer %q is not released on %s at line %d (leak)", v.Name(), where, line)
	}
}

func (w *walker) walkBody(body *ast.BlockStmt, s *state) {
	if analysis.FuncHasGoto(body) {
		return
	}
	w.walkStmts(body.List, s)
	if !s.terminated {
		w.exitCheck(s, body.Rbrace, "the function's fall-through exit")
	}
}

func (w *walker) walkStmts(stmts []ast.Stmt, s *state) {
	for _, st := range stmts {
		if s.terminated {
			return
		}
		w.stmt(st, s)
	}
}

func (w *walker) stmt(stmt ast.Stmt, s *state) {
	switch st := stmt.(type) {
	case *ast.AssignStmt:
		w.assign(st, s)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					w.define(vs.Names, vs.Values, s)
				}
			}
		}
	case *ast.ExprStmt:
		w.scanExpr(st.X, s, nil)
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if w.isReturnsBuf(call) {
				w.reportOnce(call.Pos(), "pooled buffer result is discarded (leak)")
			}
			if name := calleeName(w.info, call); name == "panic" {
				s.terminated = true
			}
		}
	case *ast.SendStmt:
		w.scanExpr(st.Chan, s, nil)
		w.transferExpr(st.Value, s)
	case *ast.IncDecStmt:
		w.scanExpr(st.X, s, nil)
	case *ast.DeferStmt:
		w.deferStmt(st, s)
	case *ast.GoStmt:
		w.scanExpr(st.Call, s, nil)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.transferExpr(r, s)
		}
		w.exitCheck(s, st.Pos(), "the return")
		s.terminated = true
	case *ast.IfStmt:
		w.ifStmt(st, s)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init, s)
		}
		if st.Tag != nil {
			w.scanExpr(st.Tag, s, nil)
		}
		w.caseClauses(st.Body.List, s, hasDefaultClause(st.Body.List))
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init, s)
		}
		w.caseClauses(st.Body.List, s, hasDefaultClause(st.Body.List))
	case *ast.SelectStmt:
		w.caseClauses(st.Body.List, s, false)
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init, s)
		}
		if st.Cond != nil {
			w.scanExpr(st.Cond, s, nil)
		}
		w.loop(st.Body, st.Post, s, st.Cond == nil)
	case *ast.RangeStmt:
		w.scanExpr(st.X, s, nil)
		w.loop(st.Body, nil, s, false)
	case *ast.BlockStmt:
		w.walkStmts(st.List, s)
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, s)
	case *ast.BranchStmt:
		w.branch(st, s)
	case *ast.EmptyStmt:
	}
}

func hasDefaultClause(clauses []ast.Stmt) bool {
	for _, c := range clauses {
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				return true
			}
		case *ast.CommClause:
			if cc.Comm == nil {
				return true
			}
		}
	}
	return false
}

// caseClauses walks each clause on a clone and merges the survivors.
// When no default exists, the fall-past path (original state) joins too.
func (w *walker) caseClauses(clauses []ast.Stmt, s *state, exhaustive bool) {
	var arms []*state
	for _, c := range clauses {
		arm := s.clone()
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.scanExpr(e, arm, nil)
			}
			w.walkStmts(cc.Body, arm)
		case *ast.CommClause:
			if cc.Comm != nil {
				w.stmt(cc.Comm, arm)
			}
			w.walkStmts(cc.Body, arm)
		}
		arms = append(arms, arm)
	}
	if len(arms) == 0 {
		return
	}
	out := arms[0]
	for _, arm := range arms[1:] {
		out.merge(arm)
	}
	if exhaustive {
		*s = *out
	} else {
		s.merge(out)
	}
}

func (w *walker) loop(body *ast.BlockStmt, post ast.Stmt, s *state, infinite bool) {
	ctx := &loopCtx{innerVars: make(map[*types.Var]bool)}
	w.loops = append(w.loops, ctx)
	iter := s.clone()
	w.walkStmts(body.List, iter)
	if post != nil && !iter.terminated {
		w.stmt(post, iter)
	}
	// End of an iteration: buffers acquired inside it and still owned are
	// lost when the next iteration shadows them.
	if !iter.terminated {
		for v := range ctx.innerVars {
			if iter.st[v] == stOwned && !iter.deferred[v] {
				tv := w.tracked[v]
				w.reportOnce(tv.acquiredAt, "pooled buffer %q is not released by the end of the loop iteration (leak)", v.Name())
			}
		}
	}
	w.loops = w.loops[:len(w.loops)-1]

	// Post-loop state: the pre-state (zero iterations), the body-exit
	// state, and every break. An infinite loop is only left via break.
	var out *state
	if infinite {
		if len(ctx.breaks) == 0 {
			s.terminated = true
			return
		}
		out = ctx.breaks[0]
		for _, b := range ctx.breaks[1:] {
			out.merge(b)
		}
	} else {
		out = s.clone()
		out.merge(iter)
		for _, b := range ctx.breaks {
			out.merge(b)
		}
	}
	// Iteration-local buffers do not survive the loop.
	for v := range ctx.innerVars {
		delete(out.st, v)
		delete(out.deferred, v)
	}
	*s = *out
}

func (w *walker) branch(st *ast.BranchStmt, s *state) {
	if len(w.loops) == 0 || st.Label != nil {
		// Labeled jumps (and stray branches) lose precision: stop
		// tracking everything rather than guess.
		for v := range s.st {
			s.st[v] = stMaybe
		}
		s.terminated = true
		return
	}
	ctx := w.loops[len(w.loops)-1]
	switch st.Tok {
	case token.BREAK:
		ctx.breaks = append(ctx.breaks, s.clone())
	case token.CONTINUE:
		for v := range ctx.innerVars {
			if s.st[v] == stOwned && !s.deferred[v] {
				tv := w.tracked[v]
				line := w.pass.Fset.Position(st.Pos()).Line
				w.reportOnce(tv.acquiredAt, "pooled buffer %q is not released before the continue at line %d (leak)", v.Name(), line)
			}
		}
	}
	s.terminated = true
}

func (w *walker) ifStmt(st *ast.IfStmt, s *state) {
	if st.Init != nil {
		w.stmt(st.Init, s)
	}
	w.scanExpr(st.Cond, s, nil)

	then := s.clone()
	els := s.clone()
	// Error-correlation: on `if err != nil`, buffers acquired alongside
	// err are nil in the then-branch; on `if err == nil`, in the else.
	// Direct nil-checks of a tracked buffer behave the same way.
	if obj, isNotNil, ok := nilCheck(w.info, st.Cond); ok {
		nilArm := then
		if !isNotNil {
			nilArm = els
		}
		for v, tv := range w.tracked {
			if tv.errVar == obj || tv.obj == obj {
				if cur, okk := nilArm.st[v]; okk && cur == stOwned {
					nilArm.st[v] = stNilSafe
				}
			}
		}
	}
	w.walkStmts(st.Body.List, then)
	if st.Else != nil {
		w.stmt(st.Else, els)
	}
	then.merge(els)
	*s = *then
}

// nilCheck matches `x != nil` / `x == nil` (possibly as the left operand
// of || or && — `if bp == nil || cap(*bp) > max` still correlates).
func nilCheck(info *types.Info, cond ast.Expr) (obj types.Object, isNotNil, ok bool) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.NEQ, token.EQL:
			var id *ast.Ident
			if isNilIdent(info, e.Y) {
				id, _ = ast.Unparen(e.X).(*ast.Ident)
			} else if isNilIdent(info, e.X) {
				id, _ = ast.Unparen(e.Y).(*ast.Ident)
			}
			if id == nil {
				return nil, false, false
			}
			return info.Uses[id], e.Op == token.NEQ, true
		case token.LOR, token.LAND:
			return nilCheck(info, e.X)
		}
	}
	return nil, false, false
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

func (w *walker) deferStmt(st *ast.DeferStmt, s *state) {
	// defer release(v): v is released at every later exit — but only when
	// the deferred call actually takes ownership (deferring a borrowing
	// helper must not mask a leak).
	w.deferredReleases(st.Call, s)
	// defer func() { ... PutBuf(v) ... }(): scan the literal body for
	// releases of outer tracked buffers.
	if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				w.deferredReleases(call, s)
			}
			return true
		})
	}
}

// deferredReleases marks tracked buffers passed in owning positions of
// call as released-on-exit.
func (w *walker) deferredReleases(call *ast.CallExpr, s *state) {
	if calleeName(w.info, call) != "" || w.isConversion(call) {
		return
	}
	f := analysis.Callee(w.info, call)
	owning := w.owningParams(f)
	for i, arg := range call.Args {
		if f != nil && !owning[i] {
			continue
		}
		v := w.trackedIdent(arg)
		if v == nil {
			if conv, ok := ast.Unparen(arg).(*ast.CallExpr); ok && w.isConversion(conv) && len(conv.Args) == 1 {
				v = w.trackedIdent(conv.Args[0])
			}
		}
		if v != nil {
			s.deferred[v] = true
		}
	}
}

func (w *walker) define(names []*ast.Ident, values []ast.Expr, s *state) {
	if len(values) == 1 {
		if call, ok := ast.Unparen(values[0]).(*ast.CallExpr); ok && w.isReturnsBuf(call) {
			w.acquire(names, call, s)
			return
		}
	}
	for _, v := range values {
		w.scanExpr(v, s, nil)
	}
}

func (w *walker) assign(st *ast.AssignStmt, s *state) {
	// Acquisition: `v := GetBuf(...)` or `f, bp, err := ReadFrameVInto(...)`.
	if len(st.Rhs) == 1 {
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok && w.isReturnsBuf(call) {
			idents := make([]*ast.Ident, 0, len(st.Lhs))
			allIdents := true
			for _, l := range st.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok {
					idents = append(idents, id)
				} else {
					allIdents = false
				}
			}
			if allIdents {
				w.scanCallArgs(call, s)
				w.acquire(idents, call, s)
				return
			}
		}
	}
	for _, r := range st.Rhs {
		w.scanExpr(r, s, nil)
	}
	for i, l := range st.Lhs {
		switch lhs := ast.Unparen(l).(type) {
		case *ast.Ident:
			obj := w.info.Defs[lhs]
			if obj == nil {
				obj = w.info.Uses[lhs]
			}
			if v, ok := obj.(*types.Var); ok {
				// Reassigning a tracked buffer loses tracking; reassigning
				// an associated error var breaks its nil-correlation.
				if _, isTracked := w.tracked[v]; isTracked {
					if s.st[v] == stOwned {
						w.reportOnce(lhs.Pos(), "pooled buffer %q is overwritten while still owned (leak)", v.Name())
					}
					s.st[v] = stMaybe
				}
				for _, tv := range w.tracked {
					if tv.errVar == v {
						tv.errVar = nil
					}
				}
			}
		default:
			// Storing a tracked buffer into a field, slice, or map is an
			// ownership handoff (poolescape judges whether it is legal).
			if i < len(st.Rhs) {
				w.transferExpr(st.Rhs[i], s)
			}
			w.scanExpr(l, s, nil)
		}
	}
}

// acquire registers the buffer-typed results of a returns-buf call.
func (w *walker) acquire(names []*ast.Ident, call *ast.CallExpr, s *state) {
	sig := w.calleeSig(call)
	if sig == nil {
		return
	}
	results := sig.Results()
	var errVar *types.Var
	if len(names) == results.Len() {
		for i := 0; i < results.Len(); i++ {
			if isErrorType(results.At(i).Type()) {
				if obj, ok := w.identVar(names[i]); ok {
					errVar = obj
				}
			}
		}
	}
	for i, name := range names {
		var rt types.Type
		if results.Len() == len(names) {
			rt = results.At(i).Type()
		} else if results.Len() == 1 {
			rt = results.At(0).Type()
		}
		if rt == nil || !analysis.IsBufType(rt) {
			continue
		}
		if name.Name == "_" {
			w.reportOnce(name.Pos(), "pooled buffer result is discarded (leak)")
			continue
		}
		if v, ok := w.identVar(name); ok {
			// Re-acquiring into a variable that still owns a buffer drops
			// the old one with no release.
			if cur, tracked := s.st[v]; tracked && cur == stOwned {
				w.reportOnce(name.Pos(), "pooled buffer %q is overwritten while still owned (leak)", v.Name())
			}
			w.track(s, v, name.Pos(), errVar)
		}
	}
}

func (w *walker) identVar(id *ast.Ident) (*types.Var, bool) {
	obj := w.info.Defs[id]
	if obj == nil {
		obj = w.info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	return v, ok
}

// trackedIdent returns the tracked variable an expression names, or nil.
func (w *walker) trackedIdent(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := w.info.Uses[id].(*types.Var); ok {
		if _, tracked := w.tracked[v]; tracked {
			return v
		}
	}
	return nil
}

// transferExpr handles an expression position that takes ownership
// (return value, send value, stored RHS, owning call argument): naming a
// tracked buffer there releases it; a conversion passes the context
// through; otherwise the expression is scanned normally.
func (w *walker) transferExpr(e ast.Expr, s *state) {
	if v := w.trackedIdent(e); v != nil {
		w.release(s, v, e.Pos())
		return
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if w.isConversion(call) && len(call.Args) == 1 {
			w.transferExpr(call.Args[0], s)
			return
		}
		if w.isReturnsBuf(call) {
			// Acquired and handed off in one step — legal; the new owner
			// releases it.
			w.scanExpr(call.Fun, s, nil)
			w.scanCallArgs(call, s)
			return
		}
	}
	w.scanExpr(e, s, nil)
}

// scanCallArgs classifies each argument: passing a buffer transfers
// ownership only where the callee declares it does — a //shhc:takes-buf
// parameter, sync.Pool.Put, or a callee we cannot resolve (a func value;
// trust the hand-off rather than invent a leak). Every other argument is
// a borrow: the caller still owns the buffer afterwards, so a read-only
// helper like pageCount(page) does not count as a release.
func (w *walker) scanCallArgs(call *ast.CallExpr, s *state) {
	if calleeName(w.info, call) != "" || w.isConversion(call) {
		// Builtins and conversions never take ownership here; a conversion
		// in a transfer position is handled by transferExpr.
		for _, arg := range call.Args {
			w.scanExpr(arg, s, nil)
		}
		return
	}
	f := analysis.Callee(w.info, call)
	owning := w.owningParams(f)
	for i, arg := range call.Args {
		if f == nil || owning[i] {
			w.transferExpr(arg, s)
		} else {
			w.scanExpr(arg, s, nil)
		}
	}
}

// isConversion reports whether the "call" is actually a type conversion.
func (w *walker) isConversion(call *ast.CallExpr) bool {
	tv, ok := w.info.Types[call.Fun]
	return ok && tv.IsType()
}

// owningParams returns the set of parameter indices through which f takes
// buffer ownership.
func (w *walker) owningParams(f *types.Func) map[int]bool {
	if f == nil {
		return nil
	}
	if analysis.ObjKey(f) == "sync.Pool.Put" {
		return map[int]bool{0: true}
	}
	m := w.pass.Markers.ForObject(f)
	if m == nil || len(m.TakesBuf) == 0 {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return nil
	}
	idx := make(map[int]bool)
	for i := 0; i < sig.Params().Len(); i++ {
		for _, name := range m.TakesBuf {
			if sig.Params().At(i).Name() == name {
				idx[i] = true
			}
		}
	}
	return idx
}

// scanExpr finds transfers and drops inside an arbitrary expression.
// skip suppresses re-processing of a call already handled as an
// acquisition.
func (w *walker) scanExpr(e ast.Expr, s *state, skip *ast.CallExpr) {
	if e == nil {
		return
	}
	switch ex := e.(type) {
	case *ast.CallExpr:
		if ex == skip {
			return
		}
		w.scanExpr(ex.Fun, s, skip)
		w.scanCallArgs(ex, s)
		if w.isReturnsBuf(ex) {
			// A returns-buf call in expression position drops its result
			// unless it feeds an acquisition (handled by assign/define).
			w.reportOnce(ex.Pos(), "pooled buffer result is discarded (leak)")
		}
	case *ast.CompositeLit:
		for _, el := range ex.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.transferExpr(kv.Value, s)
			} else {
				w.transferExpr(el, s)
			}
		}
	case *ast.FuncLit:
		// A non-deferred closure capturing a tracked buffer may release
		// it at an unknowable time: stop tracking captured buffers.
		ast.Inspect(ex.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := w.info.Uses[id].(*types.Var); ok {
					if _, tracked := w.tracked[v]; tracked {
						s.st[v] = stMaybe
					}
				}
			}
			return true
		})
	case *ast.UnaryExpr:
		if ex.Op == token.AND {
			if v := w.trackedIdent(ex.X); v != nil {
				s.st[v] = stMaybe // address escapes; give up
				return
			}
		}
		w.scanExpr(ex.X, s, skip)
	case *ast.BinaryExpr:
		w.scanExpr(ex.X, s, skip)
		w.scanExpr(ex.Y, s, skip)
	case *ast.ParenExpr:
		w.scanExpr(ex.X, s, skip)
	case *ast.StarExpr:
		w.scanExpr(ex.X, s, skip)
	case *ast.SelectorExpr:
		w.scanExpr(ex.X, s, skip)
	case *ast.IndexExpr:
		w.scanExpr(ex.X, s, skip)
		w.scanExpr(ex.Index, s, skip)
	case *ast.SliceExpr:
		w.scanExpr(ex.X, s, skip)
		w.scanExpr(ex.Low, s, skip)
		w.scanExpr(ex.High, s, skip)
		w.scanExpr(ex.Max, s, skip)
	case *ast.TypeAssertExpr:
		w.scanExpr(ex.X, s, skip)
	case *ast.KeyValueExpr:
		w.scanExpr(ex.Value, s, skip)
	}
}

func (w *walker) calleeSig(call *ast.CallExpr) *types.Signature {
	if f := analysis.Callee(w.info, call); f != nil {
		if sig, ok := f.Type().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// isReturnsBuf reports whether the call's callee is marked
// //shhc:returns-buf.
func (w *walker) isReturnsBuf(call *ast.CallExpr) bool {
	f := analysis.Callee(w.info, call)
	if f == nil {
		return false
	}
	m := w.pass.Markers.ForObject(f)
	return m != nil && m.ReturnsBuf
}

func calleeName(info *types.Info, call *ast.CallExpr) string {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return id.Name
		}
	}
	return ""
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
