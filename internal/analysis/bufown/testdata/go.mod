module bufowntest

go 1.24
