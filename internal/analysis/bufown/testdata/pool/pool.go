// Package pool mirrors the wire package's pooled-buffer surface: an
// acquire marked //shhc:returns-buf, a release marked //shhc:takes-buf,
// and a ReadFrameVInto-shaped helper that acquires internally and hands
// ownership to its caller through the marked return.
package pool

import (
	"errors"
	"sync"
)

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

//shhc:returns-buf
func GetBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

//shhc:takes-buf bp
//lint:ignore bufown the nil early-return is the release for empty-handed callers, mirroring wire.PutBuf.
func PutBuf(bp *[]byte) {
	if bp == nil {
		return
	}
	bufPool.Put(bp)
}

// ReadFrameVInto decodes src into a pooled buffer the caller owns on
// success; on error no buffer is retained.
//
//shhc:returns-buf
func ReadFrameVInto(src []byte) (*[]byte, error) {
	if len(src) == 0 {
		return nil, errors.New("pool: empty frame")
	}
	bp := GetBuf()
	*bp = append((*bp)[:0], src...)
	return bp, nil
}

// Mux mirrors the wire.MuxWriter surface: Enqueue is a takes-buf METHOD —
// the frame's payload buffer transfers to the mux at the call and the
// flush goroutine releases it after the socket write.
type Mux struct{}

// Enqueue takes ownership of bp.
//
//shhc:takes-buf bp
func (m *Mux) Enqueue(frame []byte, bp *[]byte) error {
	PutBuf(bp)
	return nil
}
