// Negative cases: correct ownership flows that must stay silent.
package a

import "bufowntest/pool"

func releaseOnAllPaths(cond bool) {
	bp := pool.GetBuf()
	if cond {
		sink(*bp)
	}
	pool.PutBuf(bp)
}

func deferredRelease() {
	bp := pool.GetBuf()
	defer pool.PutBuf(bp)
	sink(*bp)
}

// frameOwnership is the ReadFrameVInto happy path: ownership transfers in
// on success only (the error branch holds nothing), and the deferred
// release settles it.
func frameOwnership(src []byte) error {
	bp, err := pool.ReadFrameVInto(src)
	if err != nil {
		return err
	}
	defer pool.PutBuf(bp)
	sink(*bp)
	return nil
}

// handOff acquires and releases in one expression: a returns-buf result
// passed directly to an owning (takes-buf) position never leaks.
func handOff() {
	pool.PutBuf(pool.GetBuf())
}

// forwardFrame re-exports ownership: a returns-buf function may hand the
// buffer to its own caller through the marked return.
//
//shhc:returns-buf
func forwardFrame(src []byte) (*[]byte, error) {
	return pool.ReadFrameVInto(src)
}

// borrowDoesNotRelease passes the buffer to a plain function: that is a
// borrow, not a transfer, so the later release is not a double release.
func borrowDoesNotRelease() {
	bp := pool.GetBuf()
	sink(*bp)
	sink(*bp)
	pool.PutBuf(bp)
}

// muxHandOff is the multiplexed write path: enqueueing a frame into the
// mux writer transfers the payload buffer's ownership through the
// takes-buf method parameter — the flusher releases it after the socket
// write, so the enqueuer must NOT release and must not be flagged for
// not releasing.
func muxHandOff(m *pool.Mux) error {
	bp := pool.GetBuf()
	return m.Enqueue(*bp, bp)
}
