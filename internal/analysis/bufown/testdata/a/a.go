// Positive cases: each want line must fire.
package a

import "bufowntest/pool"

func sink([]byte) {}

func leakOnEarlyReturn(cond bool) {
	bp := pool.GetBuf() // want `pooled buffer "bp" is not released on`
	if cond {
		return
	}
	pool.PutBuf(bp)
}

func doubleRelease() {
	bp := pool.GetBuf()
	pool.PutBuf(bp)
	pool.PutBuf(bp) // want `pooled buffer "bp" may be released twice`
}

func discardResult() {
	pool.GetBuf() // want `pooled buffer result is discarded \(leak\)`
}

// leakFromFrame drops the buffer ReadFrameVInto transferred to us: the
// marked return made this function the owner, and no path releases it.
func leakFromFrame(src []byte) error {
	bp, err := pool.ReadFrameVInto(src) // want `pooled buffer "bp" is not released on`
	if err != nil {
		return err
	}
	sink(*bp)
	return nil
}

func overwriteWhileOwned() {
	bp := pool.GetBuf()
	bp = pool.GetBuf() // want `pooled buffer "bp" is overwritten while still owned`
	pool.PutBuf(bp)
}

func leakInLoop(n int) {
	for i := 0; i < n; i++ {
		bp := pool.GetBuf() // want `pooled buffer "bp" is not released by the end of the loop iteration`
		sink(*bp)
	}
}

// releaseAfterMuxHandOff: Enqueue's takes-buf parameter already moved
// ownership to the mux; the explicit release after it is a double
// release.
func releaseAfterMuxHandOff(m *pool.Mux) {
	bp := pool.GetBuf()
	m.Enqueue(*bp, bp)
	pool.PutBuf(bp) // want `pooled buffer "bp" may be released twice`
}
