package bufown_test

import (
	"testing"

	"shhc/internal/analysis/analysistest"
	"shhc/internal/analysis/bufown"
)

func TestGolden(t *testing.T) {
	res := analysistest.Run(t, "testdata", bufown.Analyzer)
	// pool.PutBuf carries the one //lint:ignore in the suite; the count
	// proves suppressions are applied, not just that the finding vanished.
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (pool.PutBuf nil early-return)", res.Suppressed)
	}
}
