// Package webfront implements the paper's Web Front-end Cluster tier: the
// HTTP service that backup clients talk to.
//
// Per §III.A, the front-end "responds to requests from the clients and
// generates an upload plan for each back-up request by querying hash nodes
// in the hash cluster for the existence of requested data blocks", forwards
// new chunks to cloud storage, and "aggregates fingerprints from clients
// and sends them as a batch to hybrid nodes" to exploit chunk locality.
//
// Endpoints (JSON unless noted):
//
//	POST /v1/plan   {"fingerprints": ["<hex>", ...]}
//	                -> {"missing": [i, ...]}  indices the client must upload
//	POST /v1/upload raw chunk body, X-SHHC-Fingerprint header
//	GET  /v1/chunk/<hex>  raw chunk body (restore path)
//	GET  /v1/stats  cluster and storage statistics
package webfront

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	"shhc/internal/batcher"
	"shhc/internal/core"
	"shhc/internal/fingerprint"
	"shhc/internal/metrics"
)

// Index is the hash-cluster view the front-end needs (a *core.Cluster).
// Handlers pass each request's context through, so a client that hangs
// up or times out releases its hash-cluster work.
type Index interface {
	BatchLookupOrInsert(ctx context.Context, pairs []core.Pair) ([]core.LookupResult, error)
	Stats(ctx context.Context) ([]core.NodeStats, error)
}

// ChunkStore is the cloud-storage view the front-end needs
// (a *cloudsim.Store, or a real object store in production).
type ChunkStore interface {
	Put(ctx context.Context, fp fingerprint.Fingerprint, data []byte) (bool, error)
	Get(ctx context.Context, fp fingerprint.Fingerprint) ([]byte, bool, error)
}

// Config configures the front-end server.
type Config struct {
	// Index is the hash cluster. Required.
	Index Index
	// Chunks is the backing chunk store. Required.
	Chunks ChunkStore
	// MaxChunkSize bounds uploads. Default 1 MiB.
	MaxChunkSize int
	// MaxPlanSize bounds fingerprints per plan request. Default 1<<20.
	MaxPlanSize int
	// AggregateBelow enables cross-request aggregation: plan requests
	// with fewer fingerprints than this are pooled with other clients'
	// queries into shared batches (the paper's front-end "aggregates
	// fingerprints from clients and sends them as a batch to hybrid
	// nodes"). 0 disables pooling; larger plans always go out directly
	// since they already amortize the round trip.
	AggregateBelow int
	// AggregateDelay bounds how long a pooled query waits. Default 2ms.
	AggregateDelay time.Duration
	// EnablePprof registers net/http/pprof's handlers under /debug/pprof/
	// on the server's mux, so CPU and allocation profiles can be pulled
	// from a live front-end (the allocation hunt behind the zero-alloc hot
	// path used exactly these). Off by default: profiles expose internals,
	// so production deployments opt in behind their ACLs.
	EnablePprof bool
	// Logger receives request errors; nil discards.
	Logger *log.Logger
}

// Server is the web front-end.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	httpSrv *http.Server
	ln      net.Listener

	// agg pools small plan requests across clients (nil when disabled).
	agg *batcher.Batcher

	// locator is the next chunk locator to assign; the paper stores a
	// <fingerprint, location> entry per chunk.
	locator atomic.Uint64

	plans   atomic.Int64
	lookups atomic.Int64
	uploads atomic.Int64
}

// New creates a front-end server.
func New(cfg Config) (*Server, error) {
	if cfg.Index == nil {
		return nil, errors.New("webfront: Config.Index is required")
	}
	if cfg.Chunks == nil {
		return nil, errors.New("webfront: Config.Chunks is required")
	}
	if cfg.MaxChunkSize <= 0 {
		cfg.MaxChunkSize = 1 << 20
	}
	if cfg.MaxPlanSize <= 0 {
		cfg.MaxPlanSize = 1 << 20
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux()}
	if cfg.AggregateBelow > 0 {
		s.agg = batcher.New(cfg.Index.BatchLookupOrInsert, batcher.Config{
			MaxBatch: cfg.AggregateBelow,
			MaxDelay: cfg.AggregateDelay,
		})
	}
	s.mux.HandleFunc("/v1/plan", s.handlePlan)
	s.mux.HandleFunc("/v1/upload", s.handleUpload)
	s.mux.HandleFunc("/v1/chunk/", s.handleChunk)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	if cfg.EnablePprof {
		// Explicit registrations on our own mux (the blank net/http/pprof
		// import only feeds http.DefaultServeMux, which we do not serve).
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// AggregationStats reports cross-request pooling effectiveness (zero
// values when pooling is disabled).
func (s *Server) AggregationStats() batcher.Stats {
	if s.agg == nil {
		return batcher.Stats{}
	}
	return s.agg.Stats()
}

// Handler returns the HTTP handler (for tests via httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Listen binds addr and serves in the background, returning the address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("webfront: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.cfg.Logger.Printf("webfront: serve: %v", err)
		}
	}()
	return ln.Addr(), nil
}

// Close stops the HTTP server and drains the aggregator.
func (s *Server) Close() error {
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Close()
	}
	if s.agg != nil {
		if aerr := s.agg.Close(); err == nil {
			err = aerr
		}
	}
	return err
}

// PlanRequest is the client's fingerprint manifest for one backup batch.
type PlanRequest struct {
	Fingerprints []string `json:"fingerprints"`
}

// PlanResponse lists which manifest entries must be uploaded.
type PlanResponse struct {
	// Missing holds indices into the request's Fingerprints array for
	// chunks not yet in cloud storage.
	Missing []int `json:"missing"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req PlanRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 256<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Fingerprints) > s.cfg.MaxPlanSize {
		http.Error(w, "too many fingerprints", http.StatusRequestEntityTooLarge)
		return
	}
	pairs := make([]core.Pair, len(req.Fingerprints))
	for i, hexFP := range req.Fingerprints {
		fp, err := fingerprint.Parse(hexFP)
		if err != nil {
			http.Error(w, fmt.Sprintf("fingerprint %d: %v", i, err), http.StatusBadRequest)
			return
		}
		pairs[i] = core.Pair{FP: fp, Val: core.Value(s.locator.Add(1))}
	}

	// One batched query to the hash cluster — the aggregation the paper's
	// front-end performs to preserve chunk locality. Small plans from
	// chatty clients are pooled with other requests first. The request's
	// context rides along: a client that disconnects mid-plan stops its
	// cluster work instead of holding flight-table slots.
	results, err := s.executePlan(r.Context(), pairs)
	if err != nil {
		s.cfg.Logger.Printf("webfront: plan: %v", err)
		http.Error(w, "hash cluster error: "+err.Error(), statusForError(err))
		return
	}
	resp := PlanResponse{Missing: []int{}}
	for i, res := range results {
		if !res.Exists {
			resp.Missing = append(resp.Missing, i)
		}
	}
	s.plans.Add(1)
	s.lookups.Add(int64(len(pairs)))
	writeJSON(w, resp)
}

// executePlan runs the batch against the cluster, pooling small plans
// through the shared aggregator when enabled.
func (s *Server) executePlan(ctx context.Context, pairs []core.Pair) ([]core.LookupResult, error) {
	if s.agg == nil || len(pairs) >= s.cfg.AggregateBelow {
		return s.cfg.Index.BatchLookupOrInsert(ctx, pairs)
	}
	results := make([]core.LookupResult, len(pairs))
	for i, p := range pairs {
		r, err := s.agg.LookupOrInsert(ctx, p.FP, p.Val)
		if err != nil {
			return nil, err
		}
		results[i] = r
	}
	return results, nil
}

// statusForError maps context expiry to 504 (the shared-timeout idiom for
// gateways) and everything else to 502.
func statusForError(err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout
	}
	return http.StatusBadGateway
}

// FingerprintHeader carries the chunk fingerprint on upload requests.
const FingerprintHeader = "X-SHHC-Fingerprint"

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	fp, err := fingerprint.Parse(r.Header.Get(FingerprintHeader))
	if err != nil {
		http.Error(w, "bad "+FingerprintHeader+": "+err.Error(), http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, int64(s.cfg.MaxChunkSize)+1))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(data) > s.cfg.MaxChunkSize {
		http.Error(w, "chunk too large", http.StatusRequestEntityTooLarge)
		return
	}
	// Integrity: the chunk must hash to its claimed fingerprint, or the
	// store would silently corrupt every future duplicate of it.
	if fingerprint.FromData(data) != fp {
		http.Error(w, "fingerprint does not match chunk content", http.StatusUnprocessableEntity)
		return
	}
	if _, err := s.cfg.Chunks.Put(r.Context(), fp, data); err != nil {
		s.cfg.Logger.Printf("webfront: upload %s: %v", fp.Short(), err)
		http.Error(w, "store error: "+err.Error(), statusForError(err))
		return
	}
	s.uploads.Add(1)
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) handleChunk(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	hexFP := strings.TrimPrefix(r.URL.Path, "/v1/chunk/")
	fp, err := fingerprint.Parse(hexFP)
	if err != nil {
		http.Error(w, "bad fingerprint: "+err.Error(), http.StatusBadRequest)
		return
	}
	data, ok, err := s.cfg.Chunks.Get(r.Context(), fp)
	if err != nil {
		http.Error(w, "store error: "+err.Error(), statusForError(err))
		return
	}
	if !ok {
		http.Error(w, "chunk not found", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// StatsResponse reports front-end and cluster counters. Replication is
// present only when the index replicates (Replicas > 1 clusters).
type StatsResponse struct {
	Plans       int64            `json:"plans"`
	Lookups     int64            `json:"lookups"`
	Uploads     int64            `json:"uploads"`
	Replication *ReplicationJSON `json:"replication,omitempty"`
	// Transport reports the front-end's client side of the multiplexed
	// RPC transport; present only when the index talks to remote nodes
	// over protocol >= 5 connections.
	Transport *FrontTransportJSON `json:"transport,omitempty"`
	Nodes     []NodeStatsJSON     `json:"nodes"`
}

// FrontTransportJSON is the front-end's own view of the mux transport:
// counters from the RPC clients it holds, as opposed to the per-node
// server-side counters in NodeStatsJSON.Transport.
type FrontTransportJSON struct {
	RedirectsFollowed uint64 `json:"redirectsFollowed"`
	CreditStalls      uint64 `json:"creditStalls"`
}

// ReplicationJSON reports the cluster's replication machinery: quorum
// write fan-out, read-repair, the async repair queue, and anti-entropy
// sweeps.
type ReplicationJSON struct {
	FannedWrites        uint64 `json:"fannedWrites"`
	QuorumWaits         uint64 `json:"quorumWaits"`
	QuorumFailures      uint64 `json:"quorumFailures"`
	ReadRepairs         uint64 `json:"readRepairs"`
	RepairsQueued       uint64 `json:"repairsQueued"`
	RepairsApplied      uint64 `json:"repairsApplied"`
	RepairsDropped      uint64 `json:"repairsDropped"`
	AntiEntropyRuns     uint64 `json:"antiEntropyRuns"`
	AntiEntropyScanned  uint64 `json:"antiEntropyScanned"`
	AntiEntropyChecked  uint64 `json:"antiEntropyChecked"`
	AntiEntropyRepaired uint64 `json:"antiEntropyRepaired"`
}

// replicationReporter is the optional cluster surface for replication
// counters; asserted rather than added to Index so non-replicating
// indexes (and test fakes) need not implement it.
type replicationReporter interface {
	Replicated() bool
	ReplicationStats() core.ReplicationStats
}

// clientTransportReporter is the optional cluster surface for client-side
// mux transport counters (a *core.Cluster over remote RPC backends).
type clientTransportReporter interface {
	ClientTransportStats() core.ClientTransportStats
}

// PhaseSummaryJSON digests one lookup-pipeline tier's latency histogram.
// Durations are nanoseconds.
type PhaseSummaryJSON struct {
	Count     int64 `json:"count"`
	MeanNanos int64 `json:"meanNanos"`
	P50Nanos  int64 `json:"p50Nanos"`
	P90Nanos  int64 `json:"p90Nanos"`
	P99Nanos  int64 `json:"p99Nanos"`
	MaxNanos  int64 `json:"maxNanos"`
}

// PhasesJSON carries the per-tier latency of a node's two-phase pipeline:
// RAM cache probes, Bloom probes, and the SSD phase that runs outside the
// stripe locks.
type PhasesJSON struct {
	Cache PhaseSummaryJSON `json:"cache"`
	Bloom PhaseSummaryJSON `json:"bloom"`
	SSD   PhaseSummaryJSON `json:"ssd"`
}

// DestageJSON describes a write-back node's group-commit destage
// pipeline. EntriesDestaged/PagesWritten expose the write-coalescing
// ratio; WaveSizes carries plain entry counts in its "nanos" fields.
type DestageJSON struct {
	QueueDepth      uint64           `json:"queueDepth"`
	EntriesDestaged uint64           `json:"entriesDestaged"`
	PagesWritten    uint64           `json:"pagesWritten"`
	Waves           uint64           `json:"waves"`
	Coalesced       uint64           `json:"coalescedUpdates"`
	BufferHits      uint64           `json:"bufferHits"`
	WaveSizes       PhaseSummaryJSON `json:"waveSizes"`
}

// RecoveryJSON reports what a node repaired when it opened: destage
// journal replay plus the SSD hash table's own recovery pass. All zero
// after a clean open.
type RecoveryJSON struct {
	JournalReplayed  uint64 `json:"journalReplayed"`
	JournalTornBytes uint64 `json:"journalTornBytes"`
	StoreRuns        uint64 `json:"storeRecoveryRuns"`
	StorePagesScan   uint64 `json:"storePagesScanned"`
	StoreTornPages   uint64 `json:"storeTornPages"`
	StoreTailBytes   uint64 `json:"storeTailBytes"`
	StoreLinks       uint64 `json:"storeRepairedLinks"`
	StoreOrphans     uint64 `json:"storeOrphanPages"`
	StoreSalvaged    uint64 `json:"storeSalvagedEntries"`
}

// ReplicaJSON reports repair traffic a node absorbed: batches applied on
// behalf of peers (quorum mirrors, read-repair backfills, anti-entropy)
// and how many entries those batches actually created.
type ReplicaJSON struct {
	RepairBatches uint64 `json:"repairBatches"`
	RepairPairs   uint64 `json:"repairPairs"`
	RepairCreated uint64 `json:"repairCreated"`
}

// BloomJSON reports one node's in-RAM scalable Bloom filter: how far it
// has grown (slices chain on as the table outgrows its sizing) and how
// accurate it still is. saturated means the filter outgrew its
// construction estimate — an advisory capacity signal, not an accuracy
// loss.
type BloomJSON struct {
	Entries         uint64  `json:"entries"`
	SizeBytes       uint64  `json:"sizeBytes"`
	Slices          uint32  `json:"slices"`
	FillRatio       float64 `json:"fillRatio"`
	EstimatedFPRate float64 `json:"estimatedFPRate"`
	Saturated       bool    `json:"saturated"`
}

// TransportJSON reports one node's server side of the multiplexed RPC
// transport (protocol >= 5): live stream/byte gauges plus lifetime
// credit-stall, window-grant, and redirect counters.
type TransportJSON struct {
	StreamsOpen     uint64 `json:"streamsOpen"`
	CreditStalls    uint64 `json:"creditStalls"`
	BytesInFlight   uint64 `json:"bytesInFlight"`
	WindowUpdates   uint64 `json:"windowUpdates"`
	RedirectsIssued uint64 `json:"redirectsIssued"`
}

// NodeStatsJSON is the JSON shape of one node's statistics.
type NodeStatsJSON struct {
	ID           string        `json:"id"`
	Lookups      uint64        `json:"lookups"`
	Inserts      uint64        `json:"inserts"`
	CacheHits    uint64        `json:"cacheHits"`
	BloomShort   uint64        `json:"bloomShortCircuits"`
	StoreHits    uint64        `json:"storeHits"`
	StoreMisses  uint64        `json:"storeMisses"`
	Coalesced    uint64        `json:"coalescedProbes"`
	StoreEntries int           `json:"storeEntries"`
	Phases       PhasesJSON    `json:"phases"`
	Destage      DestageJSON   `json:"destage"`
	Recovery     RecoveryJSON  `json:"recovery"`
	Replica      ReplicaJSON   `json:"replica"`
	Transport    TransportJSON `json:"transport"`
	Bloom        BloomJSON     `json:"bloomFilter"`
}

func phaseJSON(s metrics.Summary) PhaseSummaryJSON {
	return PhaseSummaryJSON{
		Count:     s.Count,
		MeanNanos: int64(s.Mean),
		P50Nanos:  int64(s.P50),
		P90Nanos:  int64(s.P90),
		P99Nanos:  int64(s.P99),
		MaxNanos:  int64(s.Max),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	nodeStats, err := s.cfg.Index.Stats(r.Context())
	if err != nil {
		http.Error(w, "hash cluster error: "+err.Error(), statusForError(err))
		return
	}
	resp := StatsResponse{
		Plans:   s.plans.Load(),
		Lookups: s.lookups.Load(),
		Uploads: s.uploads.Load(),
		Nodes:   make([]NodeStatsJSON, len(nodeStats)),
	}
	if tr, ok := s.cfg.Index.(clientTransportReporter); ok {
		if ts := tr.ClientTransportStats(); ts.RedirectsFollowed != 0 || ts.CreditStalls != 0 {
			resp.Transport = &FrontTransportJSON{
				RedirectsFollowed: ts.RedirectsFollowed,
				CreditStalls:      ts.CreditStalls,
			}
		}
	}
	if rr, ok := s.cfg.Index.(replicationReporter); ok && rr.Replicated() {
		rs := rr.ReplicationStats()
		resp.Replication = &ReplicationJSON{
			FannedWrites:        rs.FannedWrites,
			QuorumWaits:         rs.QuorumWaits,
			QuorumFailures:      rs.QuorumFailures,
			ReadRepairs:         rs.ReadRepairs,
			RepairsQueued:       rs.RepairsQueued,
			RepairsApplied:      rs.RepairsApplied,
			RepairsDropped:      rs.RepairsDropped,
			AntiEntropyRuns:     rs.AntiEntropyRuns,
			AntiEntropyScanned:  rs.AntiEntropyScanned,
			AntiEntropyChecked:  rs.AntiEntropyChecked,
			AntiEntropyRepaired: rs.AntiEntropyRepaired,
		}
	}
	for i, st := range nodeStats {
		resp.Nodes[i] = NodeStatsJSON{
			ID:           string(st.ID),
			Lookups:      st.Lookups,
			Inserts:      st.Inserts,
			CacheHits:    st.CacheHits,
			BloomShort:   st.BloomShort,
			StoreHits:    st.StoreHits,
			StoreMisses:  st.StoreMisses,
			Coalesced:    st.Coalesced,
			StoreEntries: st.StoreEntries,
			Phases: PhasesJSON{
				Cache: phaseJSON(st.Phases.Cache),
				Bloom: phaseJSON(st.Phases.Bloom),
				SSD:   phaseJSON(st.Phases.SSD),
			},
			Destage: DestageJSON{
				QueueDepth:      st.Destage.QueueDepth,
				EntriesDestaged: st.Destage.Entries,
				PagesWritten:    st.Destage.Pages,
				Waves:           st.Destage.Waves,
				Coalesced:       st.Destage.Coalesced,
				BufferHits:      st.Destage.BufferHits,
				WaveSizes:       phaseJSON(st.Destage.WaveSizes),
			},
			Recovery: RecoveryJSON{
				JournalReplayed:  st.Recovery.JournalReplayed,
				JournalTornBytes: st.Recovery.JournalTornBytes,
				StoreRuns:        st.Recovery.Store.Runs,
				StorePagesScan:   st.Recovery.Store.PagesScanned,
				StoreTornPages:   st.Recovery.Store.TornPages,
				StoreTailBytes:   st.Recovery.Store.TailBytes,
				StoreLinks:       st.Recovery.Store.RepairedLinks,
				StoreOrphans:     st.Recovery.Store.OrphanPages,
				StoreSalvaged:    st.Recovery.Store.SalvagedEntries,
			},
			Replica: ReplicaJSON{
				RepairBatches: st.Replica.RepairBatches,
				RepairPairs:   st.Replica.RepairPairs,
				RepairCreated: st.Replica.RepairCreated,
			},
			Transport: TransportJSON{
				StreamsOpen:     st.Transport.StreamsOpen,
				CreditStalls:    st.Transport.CreditStalls,
				BytesInFlight:   st.Transport.BytesInFlight,
				WindowUpdates:   st.Transport.WindowUpdates,
				RedirectsIssued: st.Transport.RedirectsIssued,
			},
			Bloom: BloomJSON{
				Entries:         st.Bloom.Entries,
				SizeBytes:       st.Bloom.SizeBytes,
				Slices:          st.Bloom.Slices,
				FillRatio:       st.Bloom.FillRatio,
				EstimatedFPRate: st.Bloom.EstimatedFPRate,
				Saturated:       st.Bloom.Saturated,
			},
		}
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already written; nothing recoverable remains.
		return
	}
}
