package webfront

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"shhc/internal/cloudsim"
	"shhc/internal/core"
	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, *cloudsim.Store) {
	t.Helper()
	backends := make([]core.Backend, 2)
	for i := range backends {
		node, err := core.NewNode(core.NodeConfig{
			ID:            ring.NodeID(fmt.Sprintf("n%d", i)),
			Store:         hashdb.NewMemStore(nil),
			CacheSize:     128,
			BloomExpected: 10000,
		})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		backends[i] = node
	}
	cluster, err := core.NewCluster(core.ClusterConfig{}, backends...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	chunks := cloudsim.New(cloudsim.Config{})
	srv, err := New(Config{Index: cluster, Chunks: chunks})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		cluster.Close()
		chunks.Close()
	})
	return srv, ts, chunks
}

// newTestServerWithLimits builds a front-end with explicit plan/chunk
// limits and returns its base URL.
func newTestServerWithLimits(t *testing.T, maxPlan, maxChunk int) string {
	t.Helper()
	node, err := core.NewNode(core.NodeConfig{
		ID:            "lim",
		Store:         hashdb.NewMemStore(nil),
		CacheSize:     64,
		BloomExpected: 1024,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	cluster, err := core.NewCluster(core.ClusterConfig{}, node)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	chunks := cloudsim.New(cloudsim.Config{})
	cfg := Config{Index: cluster, Chunks: chunks}
	if maxPlan > 0 {
		cfg.MaxPlanSize = maxPlan
	} else {
		cfg.MaxPlanSize = 2
	}
	if maxChunk > 0 {
		cfg.MaxChunkSize = maxChunk
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		cluster.Close()
		chunks.Close()
	})
	return ts.URL
}

func postPlan(t *testing.T, url string, fps []string) PlanResponse {
	t.Helper()
	body, _ := json.Marshal(PlanRequest{Fingerprints: fps})
	resp, err := http.Post(url+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/plan: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status = %d", resp.StatusCode)
	}
	var plan PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
		t.Fatalf("decode plan: %v", err)
	}
	return plan
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without Index accepted")
	}
}

func TestPlanMarksNewThenDuplicate(t *testing.T) {
	_, ts, _ := newTestServer(t)

	data := []byte("hello chunk")
	fp := fingerprint.FromData(data).String()

	plan := postPlan(t, ts.URL, []string{fp})
	if len(plan.Missing) != 1 || plan.Missing[0] != 0 {
		t.Fatalf("first plan missing = %v, want [0]", plan.Missing)
	}
	plan = postPlan(t, ts.URL, []string{fp})
	if len(plan.Missing) != 0 {
		t.Fatalf("second plan missing = %v, want []", plan.Missing)
	}
}

func TestPlanRejectsBadFingerprints(t *testing.T) {
	_, ts, _ := newTestServer(t)
	body, _ := json.Marshal(PlanRequest{Fingerprints: []string{"not-hex"}})
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestUploadAndFetchChunk(t *testing.T) {
	_, ts, chunks := newTestServer(t)
	data := []byte("stored chunk bytes")
	fp := fingerprint.FromData(data)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/upload", bytes.NewReader(data))
	req.Header.Set(FingerprintHeader, fp.String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d, want 201", resp.StatusCode)
	}
	if ok, _ := chunks.Has(fp); !ok {
		t.Fatal("chunk not in store after upload")
	}

	get, err := http.Get(ts.URL + "/v1/chunk/" + fp.String())
	if err != nil {
		t.Fatalf("GET chunk: %v", err)
	}
	defer get.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(get.Body)
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("fetched chunk differs from upload")
	}
}

func TestUploadRejectsCorruptChunk(t *testing.T) {
	_, ts, _ := newTestServer(t)
	data := []byte("real content")
	wrongFP := fingerprint.FromData([]byte("other content"))

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/upload", bytes.NewReader(data))
	req.Header.Set(FingerprintHeader, wrongFP.String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
}

func TestChunkNotFound(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/chunk/" + fingerprint.FromUint64(404).String())
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	postPlan(t, ts.URL, []string{fingerprint.FromUint64(1).String(), fingerprint.FromUint64(2).String()})

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.Plans != 1 || stats.Lookups != 2 {
		t.Fatalf("stats = %+v, want 1 plan / 2 lookups", stats)
	}
	if len(stats.Nodes) != 2 {
		t.Fatalf("got %d nodes, want 2", len(stats.Nodes))
	}
	// The per-tier latency histograms of the lookup pipeline must travel
	// through the endpoint: the plan above exercised the RAM tiers on at
	// least one node.
	var bloomObs, ssdObs int64
	for _, n := range stats.Nodes {
		bloomObs += n.Phases.Bloom.Count
		ssdObs += n.Phases.SSD.Count
	}
	if bloomObs == 0 {
		t.Fatalf("no node reported bloom phase observations: %+v", stats.Nodes)
	}
	if ssdObs == 0 {
		t.Fatalf("no node reported SSD phase observations (the two inserts were write-through): %+v", stats.Nodes)
	}
	// The Bloom-filter capacity block must travel through the endpoint:
	// the two inserts above were added to some node's filter.
	var bloomEntries, bloomBytes uint64
	for _, n := range stats.Nodes {
		bloomEntries += n.Bloom.Entries
		bloomBytes += n.Bloom.SizeBytes
		if n.Bloom.Slices == 0 {
			t.Fatalf("node %s reports a filter with no slices: %+v", n.ID, n.Bloom)
		}
		if n.Bloom.Saturated {
			t.Fatalf("node %s reports a saturated filter after two inserts: %+v", n.ID, n.Bloom)
		}
	}
	if bloomEntries != 2 {
		t.Fatalf("nodes report %d bloom entries, want 2", bloomEntries)
	}
	if bloomBytes == 0 {
		t.Fatal("no node reported bloom filter size")
	}
}

// TestStatsReplicationBlock: a replicated cluster surfaces its quorum and
// repair counters at /v1/stats; the default single-copy cluster omits the
// block entirely.
func TestStatsReplicationBlock(t *testing.T) {
	// The default newTestServer cluster has Replicas = 1: no block.
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	var stats StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.Replication != nil {
		t.Fatalf("unreplicated cluster reported a replication block: %+v", stats.Replication)
	}

	// A Replicas = 2 cluster reports fanned writes after a plan.
	backends := make([]core.Backend, 2)
	for i := range backends {
		node, err := core.NewNode(core.NodeConfig{
			ID:            ring.NodeID(fmt.Sprintf("r%d", i)),
			Store:         hashdb.NewMemStore(nil),
			CacheSize:     128,
			BloomExpected: 10000,
		})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		backends[i] = node
	}
	cluster, err := core.NewCluster(core.ClusterConfig{Replicas: 2}, backends...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	chunks := cloudsim.New(cloudsim.Config{})
	srv, err := New(Config{Index: cluster, Chunks: chunks})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		rts.Close()
		cluster.Close()
		chunks.Close()
	})

	postPlan(t, rts.URL, []string{fingerprint.FromUint64(1).String(), fingerprint.FromUint64(2).String()})
	resp, err = http.Get(rts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.Replication == nil {
		t.Fatal("replicated cluster reported no replication block")
	}
	if stats.Replication.FannedWrites == 0 {
		t.Fatalf("replication block shows no fanned writes: %+v", stats.Replication)
	}
	// The mirror writes land as repair batches on the receiving nodes.
	var repairPairs uint64
	for _, n := range stats.Nodes {
		repairPairs += n.Replica.RepairPairs
	}
	if repairPairs == 0 {
		t.Fatalf("no node reported absorbed repair pairs: %+v", stats.Nodes)
	}
}

func TestMethodEnforcement(t *testing.T) {
	_, ts, _ := newTestServer(t)
	tests := []struct {
		method, path string
	}{
		{method: http.MethodGet, path: "/v1/plan"},
		{method: http.MethodGet, path: "/v1/upload"},
		{method: http.MethodPost, path: "/v1/chunk/" + strings.Repeat("0", 40)},
		{method: http.MethodPost, path: "/v1/stats"},
	}
	for _, tt := range tests {
		req, _ := http.NewRequest(tt.method, ts.URL+tt.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tt.method, tt.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s status = %d, want 405", tt.method, tt.path, resp.StatusCode)
		}
	}
}
