package webfront

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"shhc/internal/fingerprint"
)

func TestListenAndClose(t *testing.T) {
	srv, _, _ := newTestServer(t)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	resp, err := http.Get("http://" + addr.String() + "/v1/stats")
	if err != nil {
		t.Fatalf("GET via listener: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr.String() + "/v1/stats"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

func TestListenBadAddress(t *testing.T) {
	srv, _, _ := newTestServer(t)
	if _, err := srv.Listen("256.256.256.256:99999"); err == nil {
		t.Fatal("Listen accepted invalid address")
	}
}

func TestPlanRejectsBadJSON(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestPlanRejectsOversizedPlan(t *testing.T) {
	backends := newTestServerWithLimits(t, 4, 0)
	fps := make([]string, 5)
	for i := range fps {
		fps[i] = fingerprint.FromUint64(uint64(i)).String()
	}
	body, _ := json.Marshal(PlanRequest{Fingerprints: fps})
	resp, err := http.Post(backends+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

func TestUploadRejectsOversizedChunk(t *testing.T) {
	url := newTestServerWithLimits(t, 1<<20, 1024)
	data := make([]byte, 2048)
	req, _ := http.NewRequest(http.MethodPost, url+"/v1/upload", bytes.NewReader(data))
	req.Header.Set(FingerprintHeader, fingerprint.FromData(data).String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

func TestUploadRejectsMissingHeader(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/upload", "application/octet-stream", bytes.NewReader([]byte("x")))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestChunkRejectsBadFingerprint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/chunk/nothex")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}
