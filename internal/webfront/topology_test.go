package webfront

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"shhc/internal/cloudsim"
	"shhc/internal/core"
	"shhc/internal/hashdb"
)

// TestCrossRequestAggregation verifies that small plan requests from many
// clients are pooled into shared batches.
func TestCrossRequestAggregation(t *testing.T) {
	node, err := core.NewNode(core.NodeConfig{
		ID:            "agg",
		Store:         hashdb.NewMemStore(nil),
		CacheSize:     1 << 10,
		BloomExpected: 1 << 14,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	cluster, err := core.NewCluster(core.ClusterConfig{}, node)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()
	chunks := cloudsim.New(cloudsim.Config{})
	defer chunks.Close()

	front, err := New(Config{
		Index:          cluster,
		Chunks:         chunks,
		AggregateBelow: 64,
		AggregateDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(front.Handler())
	defer ts.Close()
	defer front.Close()

	// 32 concurrent single-fingerprint plans (chatty mobile clients).
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fp := fmt.Sprintf("%040x", i+1)
			postPlan(t, ts.URL, []string{fp})
		}(i)
	}
	wg.Wait()

	agg := front.AggregationStats()
	if agg.Queries != 32 {
		t.Fatalf("aggregator saw %d queries, want 32", agg.Queries)
	}
	if agg.MeanBatchSize() < 2 {
		t.Fatalf("mean pooled batch size %.1f; cross-request aggregation not happening", agg.MeanBatchSize())
	}

	// Large plans must bypass the aggregator.
	fps := make([]string, 128)
	for i := range fps {
		fps[i] = fmt.Sprintf("%040x", 1000+i)
	}
	postPlan(t, ts.URL, fps)
	if got := front.AggregationStats().Queries; got != 32 {
		t.Fatalf("large plan went through the aggregator (queries=%d)", got)
	}
}
