package baseline

import (
	"context"
	"testing"
	"testing/quick"

	"shhc/internal/device"
	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
)

func fp(i uint64) fingerprint.Fingerprint { return fingerprint.FromUint64(i) }

func TestChunkStashRoundTrip(t *testing.T) {
	s := NewChunkStash(10000, nil)
	defer s.Close()

	const n = 10000
	for i := uint64(0); i < n; i++ {
		created, err := s.Put(fp(i), hashdb.Value(i))
		if err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
		if !created {
			t.Fatalf("Put(%d) reported update", i)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		v, ok, err := s.Get(fp(i))
		if err != nil || !ok || v != hashdb.Value(i) {
			t.Fatalf("Get(%d) = (%v, %v, %v)", i, v, ok, err)
		}
	}
	for i := uint64(n); i < n+1000; i++ {
		if _, ok, _ := s.Get(fp(i)); ok {
			t.Fatalf("absent key %d reported present", i)
		}
	}
}

func TestChunkStashOverwrite(t *testing.T) {
	s := NewChunkStash(100, nil)
	defer s.Close()
	s.Put(fp(1), 10)
	created, err := s.Put(fp(1), 20)
	if err != nil || created {
		t.Fatalf("overwrite = (%v, %v), want (false, nil)", created, err)
	}
	if v, _, _ := s.Get(fp(1)); v != 20 {
		t.Fatalf("value = %d, want 20", v)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestChunkStashGrowsUnderPressure(t *testing.T) {
	// Deliberately undersized: must grow instead of failing.
	s := NewChunkStash(64, nil)
	defer s.Close()
	const n = 5000
	for i := uint64(0); i < n; i++ {
		if _, err := s.Put(fp(i), hashdb.Value(i)); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	for i := uint64(0); i < n; i++ {
		if _, ok, _ := s.Get(fp(i)); !ok {
			t.Fatalf("entry %d lost across growth", i)
		}
	}
}

func TestChunkStashNegativeLookupsAvoidSSD(t *testing.T) {
	dev := device.New(device.SSD, device.Account)
	s := NewChunkStash(10000, dev)
	defer s.Close()
	for i := uint64(0); i < 1000; i++ {
		s.Put(fp(i), hashdb.Value(i))
	}
	before := dev.Stats().Reads
	misses := 0
	for i := uint64(100000); i < 101000; i++ {
		if ok, _ := s.Has(fp(i)); !ok {
			misses++
		}
	}
	reads := dev.Stats().Reads - before
	// The design's selling point: most negatives answered from RAM.
	// Signature collisions allow a few stray reads.
	if reads > 100 {
		t.Fatalf("1000 negative lookups cost %d SSD reads, want ~0 (RAM index)", reads)
	}
	if misses != 1000 {
		t.Fatalf("misses = %d, want 1000", misses)
	}
}

func TestChunkStashPositiveLookupCostsOneRead(t *testing.T) {
	dev := device.New(device.SSD, device.Account)
	s := NewChunkStash(10000, dev)
	defer s.Close()
	s.Put(fp(7), 7)
	before := dev.Stats().Reads
	s.Get(fp(7))
	reads := dev.Stats().Reads - before
	if reads != 1 {
		t.Fatalf("positive lookup cost %d reads, want exactly 1", reads)
	}
}

func TestChunkStashStats(t *testing.T) {
	s := NewChunkStash(1000, nil)
	defer s.Close()
	for i := uint64(0); i < 500; i++ {
		s.Put(fp(i), hashdb.Value(i))
	}
	st := s.Stats()
	if st.Entries != 500 {
		t.Fatalf("Entries = %d, want 500", st.Entries)
	}
	if st.Occupancy <= 0 || st.Occupancy > 1 {
		t.Fatalf("Occupancy = %v, out of (0, 1]", st.Occupancy)
	}
	if st.RAMBytes <= 0 || st.LogBytes != 500*logRecordSize {
		t.Fatalf("footprints = %d RAM / %d log", st.RAMBytes, st.LogBytes)
	}
}

func TestChunkStashClosed(t *testing.T) {
	s := NewChunkStash(10, nil)
	s.Close()
	if _, _, err := s.Get(fp(1)); err == nil {
		t.Fatal("Get after Close succeeded")
	}
	if _, err := s.Put(fp(1), 1); err == nil {
		t.Fatal("Put after Close succeeded")
	}
	if err := s.Close(); err == nil {
		t.Fatal("double Close succeeded")
	}
}

// Property: ChunkStash agrees with a shadow map under random ops.
func TestQuickChunkStashCoherence(t *testing.T) {
	s := NewChunkStash(256, nil)
	defer s.Close()
	shadow := map[fingerprint.Fingerprint]hashdb.Value{}
	f := func(key uint16, val uint32) bool {
		k := fp(uint64(key % 2048))
		v := hashdb.Value(val)
		if _, err := s.Put(k, v); err != nil {
			return false
		}
		shadow[k] = v
		got, ok, err := s.Get(k)
		return err == nil && ok && got == v && s.Len() == len(shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNewNodeKinds(t *testing.T) {
	kinds := []Kind{KindHybrid, KindChunkStash, KindDiskIndex, KindRAMOnly}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			node, err := NewNode(kind, Config{ID: "b1", ExpectedItems: 1000})
			if err != nil {
				t.Fatalf("NewNode(%v): %v", kind, err)
			}
			defer node.Close()

			r, err := node.LookupOrInsert(context.Background(), fp(1), 11)
			if err != nil {
				t.Fatalf("LookupOrInsert: %v", err)
			}
			if r.Exists {
				t.Fatal("fresh fingerprint reported existing")
			}
			r, err = node.LookupOrInsert(context.Background(), fp(1), 0)
			if err != nil {
				t.Fatalf("LookupOrInsert: %v", err)
			}
			if !r.Exists || r.Value != 11 {
				t.Fatalf("duplicate = %+v, want exists value 11", r)
			}
		})
	}
}

func TestNewNodeOnDisk(t *testing.T) {
	node, err := NewNode(KindHybrid, Config{ID: "disk1", Dir: t.TempDir(), ExpectedItems: 1000, OnDisk: true})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer node.Close()
	if _, err := node.LookupOrInsert(context.Background(), fp(1), 1); err != nil {
		t.Fatalf("LookupOrInsert: %v", err)
	}
}

func TestNewNodeOnDiskRequiresDir(t *testing.T) {
	if _, err := NewNode(KindDiskIndex, Config{ID: "x", OnDisk: true}); err == nil {
		t.Fatal("on-disk node without Dir accepted")
	}
}

func TestBaselineRelativeLatency(t *testing.T) {
	// The ordering the paper's related-work section claims: RAM-only
	// fastest, hybrid/chunkstash close behind (SSD), disk index far
	// slower. Compare modeled device busy time for identical workloads.
	run := func(kind Kind) int64 {
		node, err := NewNode(kind, Config{ID: "lat", ExpectedItems: 4096, CacheSize: 64})
		if err != nil {
			t.Fatalf("NewNode(%v): %v", kind, err)
		}
		defer node.Close()
		for i := uint64(0); i < 2048; i++ {
			node.LookupOrInsert(context.Background(), fp(i), hashdb.Value(i))
		}
		for i := uint64(0); i < 2048; i++ {
			node.LookupOrInsert(context.Background(), fp(i), 0)
		}
		st, err := node.Stats(context.Background())
		if err != nil {
			t.Fatalf("Stats: %v", err)
		}
		if st.Lookups != 4096 {
			t.Fatalf("Lookups = %d, want 4096", st.Lookups)
		}
		// Use store entry count sanity while here.
		if st.StoreEntries != 2048 {
			t.Fatalf("StoreEntries = %d, want 2048", st.StoreEntries)
		}
		return int64(st.Lookups)
	}
	for _, kind := range []Kind{KindHybrid, KindChunkStash, KindDiskIndex, KindRAMOnly} {
		run(kind)
	}
}
