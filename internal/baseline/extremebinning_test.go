package baseline

import (
	"testing"

	"shhc/internal/fingerprint"
)

func fileOf(start, n uint64) []fingerprint.Fingerprint {
	fps := make([]fingerprint.Fingerprint, n)
	for i := range fps {
		fps[i] = fingerprint.FromUint64(start + uint64(i))
	}
	return fps
}

func TestExtremeBinningIdenticalFile(t *testing.T) {
	e := NewExtremeBinning()
	file := fileOf(0, 200)

	first := e.DedupFile(file)
	if first.BinHit {
		t.Fatal("first file hit a bin")
	}
	for i, d := range first.Dup {
		if d {
			t.Fatalf("fresh chunk %d reported duplicate", i)
		}
	}

	second := e.DedupFile(file)
	if !second.BinHit {
		t.Fatal("identical file missed its bin (same representative)")
	}
	for i, d := range second.Dup {
		if !d {
			t.Fatalf("repeated chunk %d not deduplicated", i)
		}
	}
}

func TestExtremeBinningSimilarFile(t *testing.T) {
	// A file sharing most chunks (including the minimum fingerprint)
	// lands in the same bin and dedups the shared part.
	e := NewExtremeBinning()
	base := fileOf(0, 100)
	e.DedupFile(base)

	similar := append(fileOf(0, 90), fileOf(5000, 10)...) // keeps the min chunk
	res := e.DedupFile(similar)
	if !res.BinHit {
		t.Fatal("similar file missed its bin")
	}
	dups := 0
	for _, d := range res.Dup {
		if d {
			dups++
		}
	}
	if dups != 90 {
		t.Fatalf("deduplicated %d chunks, want 90", dups)
	}
}

func TestExtremeBinningDissimilarFilesMiss(t *testing.T) {
	// The design's known weakness (quoted by the SHHC paper): duplicates
	// across files with different representatives are missed.
	e := NewExtremeBinning()
	e.DedupFile(fileOf(100, 50))

	// Shares chunks 120..149 but has a smaller minimum (10), so it bins
	// separately and finds nothing.
	overlapping := append(fileOf(10, 5), fileOf(120, 30)...)
	res := e.DedupFile(overlapping)
	if res.BinHit {
		t.Fatal("dissimilar file unexpectedly hit a bin")
	}
	for i, d := range res.Dup {
		if d {
			t.Fatalf("chunk %d deduplicated across bins; binning is leaking", i)
		}
	}
	// An exact index would have found the 30 shared chunks; Extreme
	// Binning stored them again. That is the gap SHHC closes.
	if st := e.Stats(); st.StoredChunks != 50+35 {
		t.Fatalf("stored chunks = %d, want 85 (30 re-stored)", st.StoredChunks)
	}
}

func TestExtremeBinningIntraFileDedup(t *testing.T) {
	e := NewExtremeBinning()
	file := append(fileOf(0, 50), fileOf(0, 50)...)
	res := e.DedupFile(file)
	dups := 0
	for _, d := range res.Dup {
		if d {
			dups++
		}
	}
	if dups != 50 {
		t.Fatalf("intra-file duplicates = %d, want 50", dups)
	}
}

func TestExtremeBinningEmptyFile(t *testing.T) {
	e := NewExtremeBinning()
	res := e.DedupFile(nil)
	if len(res.Dup) != 0 || res.BinHit {
		t.Fatalf("empty file result = %+v", res)
	}
}

func TestExtremeBinningRAMStaysSmall(t *testing.T) {
	e := NewExtremeBinning()
	const files, chunksPer = 200, 100
	for f := uint64(0); f < files; f++ {
		e.DedupFile(fileOf(f*10000, chunksPer))
	}
	st := e.Stats()
	if st.Bins != files {
		t.Fatalf("bins = %d, want %d (all files dissimilar)", st.Bins, files)
	}
	fullIndex := files * chunksPer * (fingerprint.Size + 8)
	if st.PrimaryRAMB*10 > fullIndex {
		t.Fatalf("primary RAM %d not << full index %d", st.PrimaryRAMB, fullIndex)
	}
	if st.BinLoads != 0 {
		t.Fatalf("BinLoads = %d for all-new files, want 0", st.BinLoads)
	}
}
