package baseline

import (
	"fmt"
	"path/filepath"

	"shhc/internal/core"
	"shhc/internal/device"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

// Kind selects a baseline index design for comparative benchmarks.
type Kind int

const (
	// KindHybrid is SHHC's own node design: RAM LRU + Bloom + SSD page
	// hash table (the paper's contribution, included for side-by-side
	// numbers).
	KindHybrid Kind = iota + 1
	// KindChunkStash is the RAM-cuckoo-index + SSD-log design.
	KindChunkStash
	// KindDiskIndex is the naive HDD-resident index with no RAM tiers:
	// every lookup is a disk seek. This is the "slow seek time ...
	// degrades the performance of hash lookup operations" strawman of
	// the paper's abstract.
	KindDiskIndex
	// KindRAMOnly keeps everything in DRAM — an upper bound (and cost
	// strawman: RAM capacity cannot hold exabyte-scale indexes).
	KindRAMOnly
)

func (k Kind) String() string {
	switch k {
	case KindHybrid:
		return "shhc-hybrid"
	case KindChunkStash:
		return "chunkstash"
	case KindDiskIndex:
		return "disk-index"
	case KindRAMOnly:
		return "ram-only"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Config parameterizes baseline node construction.
type Config struct {
	// ID names the node.
	ID ring.NodeID
	// Dir is where file-backed stores live (required for KindHybrid and
	// KindDiskIndex when OnDisk is set).
	Dir string
	// ExpectedItems sizes indexes and filters.
	ExpectedItems int
	// CacheSize is the RAM LRU size for KindHybrid. Default 1/16 of
	// ExpectedItems.
	CacheSize int
	// Mode selects latency realization for modeled devices.
	Mode device.Mode
	// OnDisk stores KindHybrid/KindDiskIndex tables in real files;
	// otherwise a MemStore charged with the same device model is used
	// (faster for unit tests, identical latency accounting).
	OnDisk bool
}

func (c *Config) fill() {
	if c.ID == "" {
		c.ID = ring.NodeID(string(rune('a')) + "-baseline")
	}
	if c.ExpectedItems <= 0 {
		c.ExpectedItems = 1 << 20
	}
	if c.CacheSize <= 0 {
		c.CacheSize = c.ExpectedItems / 16
		if c.CacheSize < 16 {
			c.CacheSize = 16
		}
	}
	if c.Mode == 0 {
		c.Mode = device.Account
	}
}

// NewNode builds a node of the given baseline kind. The returned Backend
// is ready to serve lookups; Close releases its store.
func NewNode(kind Kind, cfg Config) (core.Backend, error) {
	cfg.fill()
	switch kind {
	case KindHybrid:
		store, err := newStore(cfg, device.SSD, "hybrid")
		if err != nil {
			return nil, err
		}
		return core.NewNode(core.NodeConfig{
			ID:            cfg.ID,
			Store:         store,
			CacheSize:     cfg.CacheSize,
			BloomExpected: cfg.ExpectedItems,
		})

	case KindChunkStash:
		stash := NewChunkStash(cfg.ExpectedItems, device.New(device.SSD, cfg.Mode))
		// ChunkStash keeps only the compact index in RAM: no LRU tier, no
		// separate Bloom filter (the cuckoo index itself answers
		// negatives from RAM).
		return core.NewNode(core.NodeConfig{
			ID:           cfg.ID,
			Store:        stash,
			DisableBloom: true,
		})

	case KindDiskIndex:
		store, err := newStore(cfg, device.HDD, "diskidx")
		if err != nil {
			return nil, err
		}
		// No cache, no Bloom: every lookup pays the disk seek, as in the
		// pre-ChunkStash baseline the paper describes.
		return core.NewNode(core.NodeConfig{
			ID:           cfg.ID,
			Store:        store,
			DisableBloom: true,
		})

	case KindRAMOnly:
		return core.NewNode(core.NodeConfig{
			ID:           cfg.ID,
			Store:        hashdb.NewMemStore(device.New(device.RAM, cfg.Mode)),
			DisableBloom: true,
		})
	}
	return nil, fmt.Errorf("baseline: unknown kind %v", kind)
}

func newStore(cfg Config, model device.Model, tag string) (hashdb.Store, error) {
	dev := device.New(model, cfg.Mode)
	if !cfg.OnDisk {
		return hashdb.NewMemStore(dev), nil
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("baseline: Config.Dir required for on-disk %s store", tag)
	}
	path := filepath.Join(cfg.Dir, fmt.Sprintf("%s-%s.shdb", tag, cfg.ID))
	return hashdb.Create(path, hashdb.Options{ExpectedItems: cfg.ExpectedItems, Device: dev})
}
