package baseline

import (
	"sort"
	"sync"

	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
)

// SparseIndex implements a Sparse-Indexing-style deduplicator (Lillibridge
// et al., FAST'09), the second related-work system the paper discusses:
// instead of indexing every fingerprint, it samples "hooks" (fingerprints
// whose low bits are zero), keeps only hooks in RAM, and deduplicates an
// incoming *segment* against the few stored segments ("champions") that
// share the most hooks with it. The full fingerprint lists of champions
// are loaded from disk per segment.
//
// The design trades a little deduplication (it misses duplicates that land
// in unsampled, unchampioned segments) for a tiny RAM index — the paper's
// point of contrast: SHHC keeps exact answers by distributing the full
// index instead of approximating it on one machine.
type SparseIndex struct {
	mu sync.Mutex

	// sampleShift selects hooks: fp.Prefix64() with sampleShift low zero
	// bits. 2^sampleShift fingerprints per hook on average.
	sampleShift uint
	// maxChampions bounds how many candidate segments are consulted.
	maxChampions int

	// hookToSegments is the sparse RAM index: hook -> segment IDs.
	hookToSegments map[uint64][]int
	// segments holds each stored segment's full fingerprint set ("on
	// disk" in the original system; the per-segment load is charged
	// below through segmentLoads).
	segments []map[fingerprint.Fingerprint]hashdb.Value

	segmentLoads uint64 // champion manifests fetched (disk I/Os saved vs full index)
	dedupHits    uint64
	misses       uint64 // duplicates stored again because sampling missed them
}

// SparseConfig tunes the sampler.
type SparseConfig struct {
	// SampleShift is log2 of the sampling rate (default 6: 1 in 64).
	SampleShift uint
	// MaxChampions is the number of candidate segments consulted per
	// incoming segment (default 4, mirroring the original paper).
	MaxChampions int
}

// NewSparseIndex creates an empty sparse deduplicator.
func NewSparseIndex(cfg SparseConfig) *SparseIndex {
	if cfg.SampleShift == 0 {
		cfg.SampleShift = 6
	}
	if cfg.MaxChampions <= 0 {
		cfg.MaxChampions = 4
	}
	return &SparseIndex{
		sampleShift:    cfg.SampleShift,
		maxChampions:   cfg.MaxChampions,
		hookToSegments: make(map[uint64][]int),
	}
}

func (s *SparseIndex) isHook(fp fingerprint.Fingerprint) (uint64, bool) {
	h := fp.Prefix64()
	return h, h&((1<<s.sampleShift)-1) == 0
}

// SegmentResult reports one segment's dedup outcome.
type SegmentResult struct {
	// Dup[i] is true when segment fingerprint i was found in a champion.
	Dup []bool
	// Champions is how many stored segments were consulted.
	Champions int
}

// DedupSegment deduplicates one segment (an ordered run of fingerprints,
// typically ~1000 chunks) against the champions sharing its hooks, then
// stores the segment. Returns per-fingerprint duplicate verdicts.
func (s *SparseIndex) DedupSegment(fps []fingerprint.Fingerprint) SegmentResult {
	s.mu.Lock()
	defer s.mu.Unlock()

	// Vote for champions by shared hooks.
	votes := make(map[int]int)
	for _, fp := range fps {
		if hook, ok := s.isHook(fp); ok {
			for _, seg := range s.hookToSegments[hook] {
				votes[seg]++
			}
		}
	}
	type cand struct{ seg, votes int }
	cands := make([]cand, 0, len(votes))
	for seg, v := range votes {
		cands = append(cands, cand{seg, v})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].votes != cands[j].votes {
			return cands[i].votes > cands[j].votes
		}
		return cands[i].seg > cands[j].seg // prefer recent segments on ties
	})
	if len(cands) > s.maxChampions {
		cands = cands[:s.maxChampions]
	}

	// "Load" each champion's manifest and dedup against the union.
	known := make(map[fingerprint.Fingerprint]struct{})
	for _, c := range cands {
		s.segmentLoads++
		for fp := range s.segments[c.seg] {
			known[fp] = struct{}{}
		}
	}
	res := SegmentResult{Dup: make([]bool, len(fps)), Champions: len(cands)}
	seg := make(map[fingerprint.Fingerprint]hashdb.Value, len(fps))
	for i, fp := range fps {
		if _, dup := known[fp]; dup {
			res.Dup[i] = true
			s.dedupHits++
		} else if _, intra := seg[fp]; intra {
			res.Dup[i] = true
			s.dedupHits++
		} else {
			s.misses++ // counts fresh + sampling-missed duplicates
		}
		seg[fp] = hashdb.Value(i)
	}

	// Store the segment and index its hooks.
	id := len(s.segments)
	s.segments = append(s.segments, seg)
	for fp := range seg {
		if hook, ok := s.isHook(fp); ok {
			s.hookToSegments[hook] = append(s.hookToSegments[hook], id)
		}
	}
	return res
}

// SparseStats describe index size and dedup effectiveness.
type SparseStats struct {
	Segments     int
	Hooks        int
	DedupHits    uint64
	StoredChunks uint64 // chunks written because no champion matched
	SegmentLoads uint64
	// RAMBytes approximates the sparse index footprint (hooks only).
	RAMBytes int
}

// Stats returns a snapshot of the index.
func (s *SparseIndex) Stats() SparseStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := 0
	for _, segs := range s.hookToSegments {
		entries += len(segs)
	}
	return SparseStats{
		Segments:     len(s.segments),
		Hooks:        len(s.hookToSegments),
		DedupHits:    s.dedupHits,
		StoredChunks: s.misses,
		SegmentLoads: s.segmentLoads,
		RAMBytes:     len(s.hookToSegments)*8 + entries*8,
	}
}
