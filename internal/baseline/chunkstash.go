// Package baseline implements the comparison systems the paper positions
// SHHC against, so the benchmark harness can reproduce the "who wins"
// relationships in the evaluation:
//
//   - ChunkStash (Debnath et al., USENIX ATC'10): a centralized single-node
//     design keeping a compact cuckoo-hash index in RAM with full
//     <fingerprint, locator> records in an SSD log — one flash read per
//     positive lookup, RAM-only negatives. Implemented here as a
//     hashdb.Store so it can be benchmarked under the same node harness.
//   - A naive disk-index server (the hard-disk baseline ChunkStash reports
//     7x-60x wins over): the same page hash table as SHHC's SSD store but
//     charged with HDD seek latency and no RAM tiers in front.
//   - The centralized single-server deployment (SHHC with N=1), which is
//     the paper's own 1-node column in Figures 1 and 5.
package baseline

import (
	"errors"
	"fmt"
	"sync"

	"shhc/internal/device"
	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
)

// chunkStash entry layout constants.
const (
	// stashAssoc is slots per cuckoo bucket (4-way set associative).
	stashAssoc = 4
	// stashMaxKicks bounds displacement chains before growing the table.
	stashMaxKicks = 64
	// logRecordSize is one <fingerprint, value> record in the SSD log.
	logRecordSize = fingerprint.Size + 8
)

type stashSlot struct {
	used bool
	sig  uint16
	ptr  uint32 // index into the log
}

type logRecord struct {
	fp  fingerprint.Fingerprint
	val hashdb.Value
}

// ChunkStash is a compact-RAM-index + SSD-log fingerprint store.
// It implements hashdb.Store. Safe for concurrent use.
type ChunkStash struct {
	mu      sync.RWMutex
	dev     *device.Device
	buckets [][stashAssoc]stashSlot
	log     []logRecord
	n       int
	kicks   uint64 // total cuckoo displacements (diagnostics)
	closed  bool
}

var _ hashdb.Store = (*ChunkStash)(nil)

// NewChunkStash creates a store sized for expectedItems. dev charges the
// SSD log accesses; nil defaults to a non-sleeping SSD accountant.
func NewChunkStash(expectedItems int, dev *device.Device) *ChunkStash {
	if expectedItems <= 0 {
		expectedItems = 1 << 20
	}
	if dev == nil {
		dev = device.New(device.SSD, device.Account)
	}
	// Size for ~50% occupancy so cuckoo inserts rarely cascade.
	buckets := nextPow2((expectedItems*2)/stashAssoc + 1)
	return &ChunkStash{
		dev:     dev,
		buckets: make([][stashAssoc]stashSlot, buckets),
		log:     make([]logRecord, 0, expectedItems),
	}
}

func nextPow2(v int) int {
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

// hash positions and compact signature for a fingerprint. The signature
// comes from digest bytes not used for bucket addressing, as in the paper.
func (s *ChunkStash) positions(fp fingerprint.Fingerprint) (uint64, uint64, uint16) {
	mask := uint64(len(s.buckets) - 1)
	h1 := fp.Prefix64() & mask
	sig := uint16(fp[16])<<8 | uint16(fp[17])
	// Cuckoo's partial-key alternate: h2 = h1 XOR hash(sig), always
	// recomputable from the slot alone.
	h2 := (h1 ^ (uint64(sig)*0x5bd1e995 + 1)) & mask
	return h1, h2, sig
}

// Get returns the value stored for fp: a RAM probe plus, on signature
// match, one SSD log read to confirm the full fingerprint.
func (s *ChunkStash) Get(fp fingerprint.Fingerprint) (hashdb.Value, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, false, hashdb.ErrClosed
	}
	h1, h2, sig := s.positions(fp)
	for _, h := range [2]uint64{h1, h2} {
		for i := 0; i < stashAssoc; i++ {
			slot := s.buckets[h][i]
			if !slot.used || slot.sig != sig {
				continue
			}
			// Signature hit: one flash read to fetch the full record.
			s.dev.Read(logRecordSize)
			rec := s.log[slot.ptr]
			if rec.fp == fp {
				return rec.val, true, nil
			}
			// Signature collision; keep scanning.
		}
	}
	return 0, false, nil
}

// Has reports whether fp is stored.
func (s *ChunkStash) Has(fp fingerprint.Fingerprint) (bool, error) {
	_, ok, err := s.Get(fp)
	return ok, err
}

// Put appends the record to the SSD log and inserts its compact entry into
// the RAM cuckoo index, displacing entries as needed.
func (s *ChunkStash) Put(fp fingerprint.Fingerprint, v hashdb.Value) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, hashdb.ErrClosed
	}
	h1, h2, sig := s.positions(fp)

	// Update in place if present (needs the same confirm read as Get).
	for _, h := range [2]uint64{h1, h2} {
		for i := 0; i < stashAssoc; i++ {
			slot := s.buckets[h][i]
			if !slot.used || slot.sig != sig {
				continue
			}
			s.dev.Read(logRecordSize)
			if s.log[slot.ptr].fp == fp {
				s.dev.Write(logRecordSize)
				s.log[slot.ptr].val = v
				return false, nil
			}
		}
	}

	// Append to the SSD log.
	s.dev.Write(logRecordSize)
	ptr := uint32(len(s.log))
	s.log = append(s.log, logRecord{fp: fp, val: v})

	if !s.insertSlot(h1, h2, sig, ptr, 0) {
		// Displacement chain too long: grow and rehash the RAM index
		// (pure RAM work; the log is untouched).
		if err := s.grow(); err != nil {
			return false, err
		}
		nh1, nh2, nsig := s.positions(fp)
		if !s.insertSlot(nh1, nh2, nsig, ptr, 0) {
			return false, errors.New("baseline: chunkstash: insert failed after grow")
		}
	}
	s.n++
	return true, nil
}

// insertSlot places (sig, ptr) in bucket h1 or h2, kicking residents if
// both are full, up to stashMaxKicks displacements.
func (s *ChunkStash) insertSlot(h1, h2 uint64, sig uint16, ptr uint32, depth int) bool {
	for _, h := range [2]uint64{h1, h2} {
		for i := 0; i < stashAssoc; i++ {
			if !s.buckets[h][i].used {
				s.buckets[h][i] = stashSlot{used: true, sig: sig, ptr: ptr}
				return true
			}
		}
	}
	if depth >= stashMaxKicks {
		return false
	}
	// Kick a resident of h1 to its alternate bucket.
	victim := s.buckets[h1][int(ptr)%stashAssoc]
	s.buckets[h1][int(ptr)%stashAssoc] = stashSlot{used: true, sig: sig, ptr: ptr}
	s.kicks++
	mask := uint64(len(s.buckets) - 1)
	alt := (h1 ^ (uint64(victim.sig)*0x5bd1e995 + 1)) & mask
	return s.insertSlot(alt, h1, victim.sig, victim.ptr, depth+1)
}

// grow doubles the RAM index and reinserts every log record's entry.
func (s *ChunkStash) grow() error {
	old := s.buckets
	for {
		s.buckets = make([][stashAssoc]stashSlot, len(s.buckets)*2)
		ok := true
		for ptr, rec := range s.log {
			h1, h2, sig := s.positions(rec.fp)
			if !s.insertSlot(h1, h2, sig, uint32(ptr), 0) {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if len(s.buckets) > 1<<28 {
			s.buckets = old
			return fmt.Errorf("baseline: chunkstash: cannot rehash %d entries", len(s.log))
		}
	}
}

// Len returns the number of stored entries.
func (s *ChunkStash) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// Sync is a no-op: the log is append-only and modeled as durable.
func (s *ChunkStash) Sync() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return hashdb.ErrClosed
	}
	return nil
}

// Close releases the store.
func (s *ChunkStash) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return hashdb.ErrClosed
	}
	s.closed = true
	s.buckets = nil
	s.log = nil
	return nil
}

// Stats describes the index shape.
type ChunkStashStats struct {
	Entries   int
	Buckets   int
	Kicks     uint64
	RAMBytes  int // compact index footprint
	LogBytes  int // SSD log footprint
	Occupancy float64
	Device    device.Stats
}

// Stats returns a snapshot of the index shape and device usage.
func (s *ChunkStash) Stats() ChunkStashStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	slots := len(s.buckets) * stashAssoc
	occ := 0.0
	if slots > 0 {
		occ = float64(s.n) / float64(slots)
	}
	return ChunkStashStats{
		Entries:   s.n,
		Buckets:   len(s.buckets),
		Kicks:     s.kicks,
		RAMBytes:  slots * 8,
		LogBytes:  len(s.log) * logRecordSize,
		Occupancy: occ,
		Device:    s.dev.Stats(),
	}
}

// Device returns the device charged for SSD log I/O.
func (s *ChunkStash) Device() *device.Device { return s.dev }
