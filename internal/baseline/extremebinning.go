package baseline

import (
	"sync"

	"shhc/internal/fingerprint"
)

// ExtremeBinning implements the file-level two-tier dedup index of Bhagwat
// et al. (Extreme Binning, MASCOTS'09), the fourth related-work system the
// paper discusses: for workloads of individual files with no inter-file
// locality, keep only one *representative chunk ID* per file in RAM
// (the minimum fingerprint, by Broder's theorem a good file-similarity
// proxy), binning each file's full fingerprint list on disk. An incoming
// file is deduplicated only against the single bin its representative
// selects — one disk access per file, tiny RAM, but duplicates across
// dissimilar files are missed (the paper: "a miss in RAM leads to a seek
// on the disk").
type ExtremeBinning struct {
	mu sync.Mutex

	// primary is the RAM tier: representative chunk ID -> bin.
	primary map[fingerprint.Fingerprint]int
	// bins is the disk tier: each bin holds full fingerprint sets of the
	// files filed under one representative.
	bins []map[fingerprint.Fingerprint]struct{}

	binLoads  uint64
	dedupHits uint64
	stored    uint64
}

// NewExtremeBinning creates an empty two-tier index.
func NewExtremeBinning() *ExtremeBinning {
	return &ExtremeBinning{primary: make(map[fingerprint.Fingerprint]int)}
}

// representative returns the file's minimum fingerprint.
func representative(fps []fingerprint.Fingerprint) fingerprint.Fingerprint {
	min := fps[0]
	for _, fp := range fps[1:] {
		if fp.Compare(min) < 0 {
			min = fp
		}
	}
	return min
}

// FileResult reports one file's dedup outcome.
type FileResult struct {
	// Dup[i] is true when chunk i was found in the selected bin.
	Dup []bool
	// BinHit reports whether the representative matched an existing bin.
	BinHit bool
}

// DedupFile deduplicates one file's chunk fingerprints against the bin its
// representative chunk selects, then files the fingerprints there.
func (e *ExtremeBinning) DedupFile(fps []fingerprint.Fingerprint) FileResult {
	if len(fps) == 0 {
		return FileResult{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	rep := representative(fps)
	res := FileResult{Dup: make([]bool, len(fps))}

	binID, hit := e.primary[rep]
	if hit {
		res.BinHit = true
		e.binLoads++ // one disk access to load the bin
	} else {
		binID = len(e.bins)
		e.bins = append(e.bins, make(map[fingerprint.Fingerprint]struct{}))
		e.primary[rep] = binID
	}
	bin := e.bins[binID]

	seen := make(map[fingerprint.Fingerprint]struct{}, len(fps))
	for i, fp := range fps {
		if _, dup := bin[fp]; dup {
			res.Dup[i] = true
			e.dedupHits++
			continue
		}
		if _, intra := seen[fp]; intra {
			res.Dup[i] = true
			e.dedupHits++
			continue
		}
		seen[fp] = struct{}{}
		e.stored++
	}
	for fp := range seen {
		bin[fp] = struct{}{}
	}
	return res
}

// BinningStats describe index shape and effectiveness.
type BinningStats struct {
	Bins         int
	PrimaryRAMB  int // RAM tier footprint (one entry per bin)
	DedupHits    uint64
	StoredChunks uint64
	BinLoads     uint64
}

// Stats returns a snapshot of the index.
func (e *ExtremeBinning) Stats() BinningStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return BinningStats{
		Bins:         len(e.bins),
		PrimaryRAMB:  len(e.primary) * (fingerprint.Size + 8),
		DedupHits:    e.dedupHits,
		StoredChunks: e.stored,
		BinLoads:     e.binLoads,
	}
}
