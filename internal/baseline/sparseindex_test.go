package baseline

import (
	"testing"

	"shhc/internal/fingerprint"
	"shhc/internal/trace"
)

func segmentOf(start, n uint64) []fingerprint.Fingerprint {
	fps := make([]fingerprint.Fingerprint, n)
	for i := range fps {
		fps[i] = fingerprint.FromUint64(start + uint64(i))
	}
	return fps
}

func TestSparseIndexExactRepeatSegment(t *testing.T) {
	s := NewSparseIndex(SparseConfig{SampleShift: 4})
	seg := segmentOf(0, 1000)

	first := s.DedupSegment(seg)
	for i, dup := range first.Dup {
		if dup {
			t.Fatalf("fresh segment chunk %d reported duplicate", i)
		}
	}

	// An identical segment shares all hooks, so its champion is the
	// original and every chunk deduplicates.
	second := s.DedupSegment(seg)
	if second.Champions == 0 {
		t.Fatal("repeat segment found no champions")
	}
	for i, dup := range second.Dup {
		if !dup {
			t.Fatalf("repeated chunk %d not deduplicated", i)
		}
	}
}

func TestSparseIndexPartialOverlap(t *testing.T) {
	s := NewSparseIndex(SparseConfig{SampleShift: 4})
	s.DedupSegment(segmentOf(0, 1000))

	// 50% overlap with the stored segment.
	mixed := append(segmentOf(500, 500), segmentOf(100000, 500)...)
	res := s.DedupSegment(mixed)
	dups := 0
	for _, d := range res.Dup {
		if d {
			dups++
		}
	}
	if dups < 400 || dups > 600 {
		t.Fatalf("deduplicated %d of 500 overlapping chunks", dups)
	}
}

func TestSparseIndexIntraSegmentDedup(t *testing.T) {
	s := NewSparseIndex(SparseConfig{})
	seg := append(segmentOf(0, 100), segmentOf(0, 100)...) // each fp twice
	res := s.DedupSegment(seg)
	dups := 0
	for _, d := range res.Dup {
		if d {
			dups++
		}
	}
	if dups != 100 {
		t.Fatalf("intra-segment duplicates detected = %d, want 100", dups)
	}
}

func TestSparseIndexChampionBound(t *testing.T) {
	s := NewSparseIndex(SparseConfig{SampleShift: 2, MaxChampions: 2})
	seg := segmentOf(0, 500)
	// Store the same content several times under different segment IDs.
	for i := 0; i < 5; i++ {
		s.DedupSegment(seg)
	}
	res := s.DedupSegment(seg)
	if res.Champions > 2 {
		t.Fatalf("consulted %d champions, cap is 2", res.Champions)
	}
}

func TestSparseIndexRAMFootprintSmall(t *testing.T) {
	// The design premise: the RAM index is a small fraction of a full
	// index. With 1-in-64 sampling, hooks ~ n/64.
	s := NewSparseIndex(SparseConfig{SampleShift: 6})
	const n = 64000
	for start := uint64(0); start < n; start += 1000 {
		s.DedupSegment(segmentOf(start, 1000))
	}
	st := s.Stats()
	if st.Hooks > n/32 {
		t.Fatalf("hooks = %d, want about n/64 = %d", st.Hooks, n/64)
	}
	fullIndexBytes := n * (fingerprint.Size + 8)
	if st.RAMBytes*4 > fullIndexBytes {
		t.Fatalf("sparse RAM %d not << full index %d", st.RAMBytes, fullIndexBytes)
	}
}

func TestSparseIndexMissesSomeDuplicatesVsExactSHHC(t *testing.T) {
	// The comparison the paper implies: sparse indexing trades dedup
	// completeness for RAM; SHHC's exact distributed index catches every
	// duplicate. Feed both the Home Dir workload and compare.
	spec := trace.HomeDir.Scaled(512)
	g := trace.NewGenerator(spec)

	sparse := NewSparseIndex(SparseConfig{SampleShift: 6, MaxChampions: 2})
	exactSeen := make(map[fingerprint.Fingerprint]bool)
	exactDups, sparseDups, total := 0, 0, 0

	const segSize = 512
	seg := make([]fingerprint.Fingerprint, 0, segSize)
	flush := func() {
		if len(seg) == 0 {
			return
		}
		res := sparse.DedupSegment(seg)
		for _, d := range res.Dup {
			if d {
				sparseDups++
			}
		}
		seg = seg[:0]
	}
	for {
		fp, ok := g.Next()
		if !ok {
			break
		}
		total++
		if exactSeen[fp] {
			exactDups++
		}
		exactSeen[fp] = true
		seg = append(seg, fp)
		if len(seg) == segSize {
			flush()
		}
	}
	flush()

	if sparseDups > exactDups {
		t.Fatalf("sparse dedup (%d) cannot exceed exact dedup (%d)", sparseDups, exactDups)
	}
	// It should still find a good share of duplicates via locality.
	if float64(sparseDups) < 0.3*float64(exactDups) {
		t.Fatalf("sparse found only %d of %d duplicates; champion selection broken", sparseDups, exactDups)
	}
	t.Logf("total=%d exact dups=%d sparse dups=%d (%.1f%% of exact)",
		total, exactDups, sparseDups, float64(sparseDups)/float64(exactDups)*100)
}
