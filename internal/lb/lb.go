// Package lb implements the HTTP load balancer that fronts the web
// front-end cluster in the paper's architecture (Figure 2 places an
// "HTTP Load Balancer (HAProxy)" between clients and the web servers).
//
// It is a round-robin reverse proxy with active health checking: requests
// go only to backends whose health endpoint answered recently, and a
// backend that fails its check is taken out of rotation until it recovers
// — enough of HAProxy's behavior for the architecture to be complete and
// testable end to end.
//
//shhc:ctxapi
package lb

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// Config configures the load balancer.
type Config struct {
	// Backends are the web front-end base URLs, e.g. "http://10.0.0.2:8080".
	Backends []string
	// HealthPath is probed on each backend; any 2xx marks it healthy.
	// Default "/v1/stats".
	HealthPath string
	// HealthInterval is the probe period. Default 1s.
	HealthInterval time.Duration
	// HealthTimeout bounds one probe. Default 500ms.
	HealthTimeout time.Duration
}

func (c *Config) fill() error {
	if len(c.Backends) == 0 {
		return errors.New("lb: at least one backend is required")
	}
	if c.HealthPath == "" {
		c.HealthPath = "/v1/stats"
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 500 * time.Millisecond
	}
	return nil
}

type backend struct {
	rawURL  string
	proxy   *httputil.ReverseProxy
	healthy atomic.Bool
	served  atomic.Int64
}

// Balancer is a round-robin reverse proxy over web front-ends.
type Balancer struct {
	cfg      Config
	backends []*backend
	next     atomic.Uint64
	client   *http.Client

	httpSrv *http.Server

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// New creates a balancer. All backends start unhealthy until the first
// probe round completes; call WaitHealthy (or serve traffic and accept a
// brief 503 window) after Start.
func New(cfg Config) (*Balancer, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	b := &Balancer{
		cfg:    cfg,
		client: &http.Client{Timeout: cfg.HealthTimeout},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, raw := range cfg.Backends {
		u, err := url.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("lb: backend %q: %w", raw, err)
		}
		if u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("lb: backend %q: need absolute URL", raw)
		}
		b.backends = append(b.backends, &backend{
			rawURL: raw,
			proxy:  httputil.NewSingleHostReverseProxy(u),
		})
	}
	go b.healthLoop()
	return b, nil
}

// healthLoop probes every backend until Close. The first round runs
// immediately so healthy backends enter rotation fast.
func (b *Balancer) healthLoop() {
	defer close(b.done)
	ticker := time.NewTicker(b.cfg.HealthInterval)
	defer ticker.Stop()
	b.probeAll()
	for {
		select {
		case <-ticker.C:
			b.probeAll()
		case <-b.stop:
			return
		}
	}
}

func (b *Balancer) probeAll() {
	var wg sync.WaitGroup
	for _, be := range b.backends {
		be := be
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := b.client.Get(be.rawURL + b.cfg.HealthPath)
			healthy := err == nil && resp.StatusCode >= 200 && resp.StatusCode < 300
			if resp != nil {
				resp.Body.Close()
			}
			be.healthy.Store(healthy)
		}()
	}
	wg.Wait()
}

// WaitHealthy blocks until at least one backend is healthy, the timeout
// elapses, or ctx is cancelled, reporting whether one became healthy.
func (b *Balancer) WaitHealthy(ctx context.Context, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()
	for time.Now().Before(deadline) {
		for _, be := range b.backends {
			if be.healthy.Load() {
				return true
			}
		}
		select {
		case <-ctx.Done():
			return false
		case <-ticker.C:
		}
	}
	return false
}

// ServeHTTP proxies the request to the next healthy backend.
func (b *Balancer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Try each backend at most once, starting from the round-robin point.
	n := len(b.backends)
	start := int(b.next.Add(1))
	for i := 0; i < n; i++ {
		be := b.backends[(start+i)%n]
		if !be.healthy.Load() {
			continue
		}
		be.served.Add(1)
		be.proxy.ServeHTTP(w, r)
		return
	}
	http.Error(w, "lb: no healthy backends", http.StatusServiceUnavailable)
}

// BackendStats describes one backend's state.
type BackendStats struct {
	URL     string
	Healthy bool
	Served  int64
}

// Stats returns a snapshot of all backends.
func (b *Balancer) Stats() []BackendStats {
	out := make([]BackendStats, 0, len(b.backends))
	for _, be := range b.backends {
		out = append(out, BackendStats{
			URL:     be.rawURL,
			Healthy: be.healthy.Load(),
			Served:  be.served.Load(),
		})
	}
	return out
}

// Listen binds addr and serves the balancer in the background.
func (b *Balancer) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("lb: listen %s: %w", addr, err)
	}
	b.httpSrv = &http.Server{Handler: b, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		_ = b.httpSrv.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Close stops the health checker (waiting for it to exit) and the HTTP
// server, if one was started.
func (b *Balancer) Close() error {
	b.stopOnce.Do(func() { close(b.stop) })
	<-b.done
	if b.httpSrv != nil {
		return b.httpSrv.Close()
	}
	return nil
}
