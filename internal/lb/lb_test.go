package lb

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// newBackendServer returns a front-end-ish test server that identifies
// itself in responses and counts hits.
func newBackendServer(t *testing.T, name string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/work", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		fmt.Fprint(w, name)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &hits
}

func newBalancer(t *testing.T, backends ...string) *Balancer {
	t.Helper()
	b, err := New(Config{
		Backends:       backends,
		HealthInterval: 20 * time.Millisecond,
		HealthTimeout:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { b.Close() })
	if !b.WaitHealthy(context.Background(), 2*time.Second) {
		t.Fatal("no backend became healthy")
	}
	return b
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty backend list accepted")
	}
	if _, err := New(Config{Backends: []string{"not a url at all\x00"}}); err == nil {
		t.Fatal("invalid URL accepted")
	}
	if _, err := New(Config{Backends: []string{"relative/path"}}); err == nil {
		t.Fatal("relative URL accepted")
	}
}

func TestRoundRobinDistribution(t *testing.T) {
	ts1, hits1 := newBackendServer(t, "one")
	ts2, hits2 := newBackendServer(t, "two")
	b := newBalancer(t, ts1.URL, ts2.URL)

	front := httptest.NewServer(b)
	defer front.Close()

	const n = 100
	for i := 0; i < n; i++ {
		resp, err := http.Get(front.URL + "/work")
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	h1, h2 := hits1.Load(), hits2.Load()
	if h1+h2 != n {
		t.Fatalf("hits = %d + %d, want %d total", h1, h2, n)
	}
	if h1 < n/4 || h2 < n/4 {
		t.Fatalf("distribution skewed: %d vs %d", h1, h2)
	}
}

func TestFailoverOnUnhealthyBackend(t *testing.T) {
	ts1, hits1 := newBackendServer(t, "one")
	ts2, hits2 := newBackendServer(t, "two")
	b := newBalancer(t, ts1.URL, ts2.URL)
	front := httptest.NewServer(b)
	defer front.Close()

	// Kill backend two and wait for the health checker to notice.
	ts2.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		healthy := 0
		for _, st := range b.Stats() {
			if st.Healthy {
				healthy++
			}
		}
		if healthy == 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	before2 := hits2.Load()
	for i := 0; i < 20; i++ {
		resp, err := http.Get(front.URL + "/work")
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d after failover", resp.StatusCode)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if hits2.Load() != before2 {
		t.Fatal("dead backend still receiving traffic")
	}
	if hits1.Load() < 20 {
		t.Fatal("surviving backend did not absorb the load")
	}
}

func TestAllBackendsDown(t *testing.T) {
	ts1, _ := newBackendServer(t, "one")
	b := newBalancer(t, ts1.URL)
	front := httptest.NewServer(b)
	defer front.Close()

	ts1.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if !b.Stats()[0].Healthy {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(front.URL + "/work")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}

func TestStatsSnapshot(t *testing.T) {
	ts1, _ := newBackendServer(t, "one")
	b := newBalancer(t, ts1.URL)
	stats := b.Stats()
	if len(stats) != 1 || stats[0].URL != ts1.URL {
		t.Fatalf("stats = %+v", stats)
	}
	if !stats[0].Healthy {
		t.Fatal("backend not healthy after WaitHealthy")
	}
}

func TestListenServesTraffic(t *testing.T) {
	ts1, _ := newBackendServer(t, "one")
	b := newBalancer(t, ts1.URL)
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	resp, err := http.Get("http://" + addr.String() + "/work")
	if err != nil {
		t.Fatalf("GET via listener: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "one" {
		t.Fatalf("body = %q, want proxied response", body)
	}
}

func TestCloseStopsHealthLoop(t *testing.T) {
	ts1, _ := newBackendServer(t, "one")
	b, err := New(Config{Backends: []string{ts1.URL}, HealthInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Close must be idempotent-safe for the health loop (stopOnce).
	if err := b.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
