package lru

import (
	"sync"

	"shhc/internal/fingerprint"
	"shhc/internal/pow2"
)

// Striped is a fingerprint cache split into power-of-two stripes, each an
// independent Cache guarded by its own mutex. A fingerprint always maps to
// the same stripe (by a hash independent of the ring and bucket hashes), so
// per-fingerprint recency is exact while eviction is only stripe-local:
// inserting into a full stripe evicts that stripe's LRU entry even if
// another stripe holds a globally older one. With the uniform fingerprints
// SHA-1 produces, stripes fill evenly and the approximation costs a few
// percent of hit rate at most — in exchange, Get/Put throughput scales with
// cores instead of serializing behind one lock.
//
// All methods are safe for concurrent use. The eviction callback runs with
// the evicting stripe's lock held, so a destage (store write) is atomic
// with the eviction as seen by any other operation on that fingerprint.
type Striped struct {
	stripes []cacheStripe
	mask    uint64
}

type cacheStripe struct {
	// The paper's "no device I/O under any cache-stripe lock" invariant
	// lives here; lockio enforces it for statically resolvable calls.
	// The eviction callback runs under this lock by design — it is a
	// func value lockio cannot see through, and the dynamic gated-store
	// tests cover that blind spot.
	mu sync.Mutex //shhc:lock ramonly
	c  *Cache
	// Pad stripes apart so neighboring locks do not share a cache line.
	_ [48]byte
}

// NewStriped creates a striped cache with total capacity split across at
// most the requested number of stripes. stripes is rounded down to a power
// of two and clamped so every stripe holds at least one entry; 1 stripe
// degenerates to a plain (exact-LRU) cache behind a lock. onEvict may be
// nil; it observes destaged entries exactly like Cache's callback.
func NewStriped(stripes, capacity int, onEvict EvictFunc) *Striped {
	if capacity <= 0 {
		panic("lru: capacity must be positive")
	}
	if stripes > capacity {
		stripes = capacity
	}
	stripes = pow2.Floor(stripes)
	s := &Striped{
		stripes: make([]cacheStripe, stripes),
		mask:    uint64(stripes - 1),
	}
	base, extra := capacity/stripes, capacity%stripes
	for i := range s.stripes {
		c := base
		if i < extra {
			c++
		}
		s.stripes[i].c = New(c, onEvict)
	}
	return s
}

// Stripes returns the number of stripes.
func (s *Striped) Stripes() int { return len(s.stripes) }

// StripeFor returns the index of the stripe owning fp.
func (s *Striped) StripeFor(fp fingerprint.Fingerprint) int {
	// Bucket64 (bytes 8..16) is independent of the ring prefix (bytes 0..8),
	// so one node's share of the key space still spreads over all stripes.
	return int(fp.Bucket64() & s.mask)
}

func (s *Striped) stripe(fp fingerprint.Fingerprint) *cacheStripe {
	return &s.stripes[fp.Bucket64()&s.mask]
}

// Get looks up a fingerprint, promoting it within its stripe on a hit.
func (s *Striped) Get(fp fingerprint.Fingerprint) (Value, bool) {
	st := s.stripe(fp)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.c.Get(fp)
}

// GetFast looks up a fingerprint without taking the stripe mutex. This is
// the zero-alloc, lock-free cache-hit path: it walks the stripe's atomic
// index (see Cache.GetFast), recording recency as a clock bit that the
// next locked eviction sweep folds into the exact LRU order. A miss says
// nothing definitive — callers fall through to the locked walk, which
// re-checks under the stripe lock and counts the miss exactly once.
func (s *Striped) GetFast(fp fingerprint.Fingerprint) (Value, bool) {
	return s.stripe(fp).c.GetFast(fp)
}

// Peek looks up a fingerprint without updating recency or statistics.
func (s *Striped) Peek(fp fingerprint.Fingerprint) (Value, bool) {
	st := s.stripe(fp)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.c.Peek(fp)
}

// Put inserts or updates a clean entry, reporting whether the stripe
// evicted an older entry to make room.
func (s *Striped) Put(fp fingerprint.Fingerprint, val Value) bool {
	st := s.stripe(fp)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.c.Put(fp, val)
}

// PutDirty inserts or updates a not-yet-persisted entry.
func (s *Striped) PutDirty(fp fingerprint.Fingerprint, val Value) bool {
	st := s.stripe(fp)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.c.PutDirty(fp, val)
}

// PutIfAbsent inserts a clean entry only when the fingerprint is not
// already cached, leaving any existing entry (including its dirty flag)
// untouched. See Cache.PutIfAbsent.
func (s *Striped) PutIfAbsent(fp fingerprint.Fingerprint, val Value) bool {
	st := s.stripe(fp)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.c.PutIfAbsent(fp, val)
}

// MarkClean clears the dirty flag after the owner has flushed the entry.
func (s *Striped) MarkClean(fp fingerprint.Fingerprint) {
	st := s.stripe(fp)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.c.MarkClean(fp)
}

// Remove deletes an entry without invoking the eviction callback.
func (s *Striped) Remove(fp fingerprint.Fingerprint) bool {
	st := s.stripe(fp)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.c.Remove(fp)
}

// Len returns the total number of cached entries across stripes.
func (s *Striped) Len() int {
	n := 0
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
		n += s.stripes[i].c.Len()
		s.stripes[i].mu.Unlock()
	}
	return n
}

// Capacity returns the total capacity across stripes.
func (s *Striped) Capacity() int {
	n := 0
	for i := range s.stripes {
		n += s.stripes[i].c.Capacity()
	}
	return n
}

// Keys returns every cached fingerprint, stripe by stripe and most- to
// least-recently-used within each stripe.
func (s *Striped) Keys() []fingerprint.Fingerprint {
	var keys []fingerprint.Fingerprint
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
		keys = append(keys, s.stripes[i].c.Keys()...)
		s.stripes[i].mu.Unlock()
	}
	return keys
}

// DirtyKeys returns every cached fingerprint whose dirty flag is set,
// stripe by stripe and most- to least-recently-used within each stripe.
func (s *Striped) DirtyKeys() []fingerprint.Fingerprint {
	var keys []fingerprint.Fingerprint
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
		keys = append(keys, s.stripes[i].c.DirtyKeys()...)
		s.stripes[i].mu.Unlock()
	}
	return keys
}

// Stats sums the per-stripe counters. Each stripe is snapshotted under its
// own lock; concurrent mutators may land between stripes, so the aggregate
// is only loosely consistent (exact when the caller has quiesced writers).
func (s *Striped) Stats() Stats {
	var total Stats
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
		st := s.stripes[i].c.Stats()
		s.stripes[i].mu.Unlock()
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Evictions += st.Evictions
		total.Len += st.Len
		total.Capacity += st.Capacity
	}
	return total
}
