package lru

import (
	"sync"
	"testing"

	"shhc/internal/fingerprint"
)

func TestStripedSingleStripeIsExactLRU(t *testing.T) {
	s := NewStriped(1, 2, nil)
	if s.Stripes() != 1 {
		t.Fatalf("Stripes() = %d, want 1", s.Stripes())
	}
	s.Put(fp(1), 1)
	s.Put(fp(2), 2)
	s.Put(fp(3), 3) // evicts fp(1)
	if _, ok := s.Get(fp(1)); ok {
		t.Fatal("fp(1) survived eviction in a capacity-2 single-stripe cache")
	}
	if v, ok := s.Get(fp(3)); !ok || v != 3 {
		t.Fatalf("Get(fp(3)) = (%v,%v), want (3,true)", v, ok)
	}
}

func TestStripedClampsStripesToCapacity(t *testing.T) {
	s := NewStriped(16, 3, nil)
	if s.Stripes() > 3 {
		t.Fatalf("Stripes() = %d, want <= capacity 3", s.Stripes())
	}
	if s.Stripes()&(s.Stripes()-1) != 0 {
		t.Fatalf("Stripes() = %d, want a power of two", s.Stripes())
	}
	if s.Capacity() != 3 {
		t.Fatalf("Capacity() = %d, want 3", s.Capacity())
	}
}

func TestStripedFingerprintAlwaysSameStripe(t *testing.T) {
	s := NewStriped(8, 64, nil)
	for i := uint64(0); i < 100; i++ {
		a, b := s.StripeFor(fp(i)), s.StripeFor(fp(i))
		if a != b {
			t.Fatalf("StripeFor(fp(%d)) unstable: %d then %d", i, a, b)
		}
		if a < 0 || a >= s.Stripes() {
			t.Fatalf("StripeFor(fp(%d)) = %d out of range", i, a)
		}
	}
}

func TestStripedDirtyEvictionCallback(t *testing.T) {
	var mu sync.Mutex
	destaged := map[fingerprint.Fingerprint]Value{}
	s := NewStriped(4, 4, func(f fingerprint.Fingerprint, v Value, dirty bool) {
		if dirty {
			mu.Lock()
			destaged[f] = v
			mu.Unlock()
		}
	})
	// Overfill: every stripe holds 1 entry, so each stripe's second insert
	// destages its first.
	const n = 32
	for i := uint64(0); i < n; i++ {
		s.PutDirty(fp(i), Value(i))
	}
	if s.Len() != s.Capacity() {
		t.Fatalf("Len() = %d, want full capacity %d", s.Len(), s.Capacity())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(destaged)+s.Len() != n {
		t.Fatalf("destaged %d + cached %d != inserted %d", len(destaged), s.Len(), n)
	}
	for f, v := range destaged {
		if Value(fpIndex(t, f)) != v {
			t.Fatalf("destaged %s with value %d", f.Short(), v)
		}
	}
}

// fpIndex recovers i from fp(i) by brute force (test-sized spaces only).
func fpIndex(t *testing.T, f fingerprint.Fingerprint) uint64 {
	t.Helper()
	for i := uint64(0); i < 1000; i++ {
		if fp(i) == f {
			return i
		}
	}
	t.Fatalf("unknown fingerprint %s", f.Short())
	return 0
}

func TestStripedConcurrentCoherence(t *testing.T) {
	s := NewStriped(8, 256, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := uint64(0); i < 2000; i++ {
				f := fp(i % 512)
				if v, ok := s.Get(f); ok && v != Value(i%512) {
					t.Errorf("Get(%s) = %d, want %d", f.Short(), v, i%512)
					return
				}
				s.Put(f, Value(i%512))
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Len > st.Capacity {
		t.Fatalf("Len %d exceeds capacity %d", st.Len, st.Capacity)
	}
	if st.Hits+st.Misses != 8*2000 {
		t.Fatalf("hits %d + misses %d != %d gets", st.Hits, st.Misses, 8*2000)
	}
}

func TestStripedPutIfAbsent(t *testing.T) {
	s := NewStriped(4, 64, nil)
	if !s.PutIfAbsent(fp(1), 10) {
		t.Fatal("PutIfAbsent into empty striped cache reported no insert")
	}
	if s.PutIfAbsent(fp(1), 20) {
		t.Fatal("PutIfAbsent over an existing striped entry reported an insert")
	}
	if v, ok := s.Peek(fp(1)); !ok || v != 10 {
		t.Fatalf("Peek = (%v, %v), want (10, true)", v, ok)
	}
}
