package lru

import (
	"sync"
	"testing"

	"shhc/internal/fingerprint"
)

// TestGetFastHitPath: GetFast sees what Put published, misses what Remove
// unpublished, and folds its hits into Stats.
func TestGetFastHitPath(t *testing.T) {
	c := New(8, nil)
	fp := fingerprint.FromUint64(1)
	if _, ok := c.GetFast(fp); ok {
		t.Fatal("GetFast hit on empty cache")
	}
	c.Put(fp, 42)
	v, ok := c.GetFast(fp)
	if !ok || v != 42 {
		t.Fatalf("GetFast = %v,%v want 42,true", v, ok)
	}
	c.Put(fp, 43) // in-place update, same entry
	if v, ok := c.GetFast(fp); !ok || v != 43 {
		t.Fatalf("GetFast after update = %v,%v want 43,true", v, ok)
	}
	c.Remove(fp)
	if _, ok := c.GetFast(fp); ok {
		t.Fatal("GetFast hit after Remove")
	}
	st := c.Stats()
	if st.Hits != 2 {
		t.Fatalf("Stats.Hits = %d want 2 (fast hits folded in)", st.Hits)
	}
}

// TestGetFastReinsert: a remove-then-reinsert of the same fingerprint must
// serve the new value, never the dead entry's.
func TestGetFastReinsert(t *testing.T) {
	c := New(4, nil)
	fp := fingerprint.FromUint64(7)
	c.Put(fp, 1)
	c.Remove(fp)
	c.Put(fp, 2)
	if v, ok := c.GetFast(fp); !ok || v != 2 {
		t.Fatalf("GetFast after reinsert = %v,%v want 2,true", v, ok)
	}
}

// TestSecondChanceEviction: an entry touched only by GetFast survives one
// eviction pass (its clock bit buys a second chance), while untouched
// entries go first — and with no fast reads at all, eviction stays exact
// LRU so the deterministic crash-harness assumptions still hold.
func TestSecondChanceEviction(t *testing.T) {
	var evicted []fingerprint.Fingerprint
	c := New(3, func(fp fingerprint.Fingerprint, _ Value, _ bool) {
		evicted = append(evicted, fp)
	})
	a, b, d := fingerprint.FromUint64(1), fingerprint.FromUint64(2), fingerprint.FromUint64(3)
	c.Put(a, 1)
	c.Put(b, 2)
	c.Put(d, 3)
	// Touch the LRU entry (a) via the lock-free path only.
	if _, ok := c.GetFast(a); !ok {
		t.Fatal("GetFast(a) missed")
	}
	c.Put(fingerprint.FromUint64(4), 4)
	if len(evicted) != 1 || evicted[0] != b {
		t.Fatalf("evicted %v; want [b]: clock bit should spare a and evict b", evicted)
	}
	if _, ok := c.Peek(a); !ok {
		t.Fatal("a evicted despite second chance")
	}
	// With the bit consumed, a is now MRU; next eviction is exact LRU (d).
	c.Put(fingerprint.FromUint64(5), 5)
	if len(evicted) != 2 || evicted[1] != d {
		t.Fatalf("second eviction %v; want d", evicted)
	}
}

// TestSecondChanceAllReferenced: when every entry's clock bit is set the
// sweep must still terminate and evict something.
func TestSecondChanceAllReferenced(t *testing.T) {
	c := New(3, nil)
	for i := 1; i <= 3; i++ {
		c.Put(fingerprint.FromUint64(uint64(i)), Value(i))
	}
	for i := 1; i <= 3; i++ {
		if _, ok := c.GetFast(fingerprint.FromUint64(uint64(i))); !ok {
			t.Fatalf("GetFast(%d) missed", i)
		}
	}
	c.Put(fingerprint.FromUint64(9), 9)
	if c.Len() != 3 {
		t.Fatalf("Len = %d want 3", c.Len())
	}
}

// TestGetFastConcurrent hammers lock-free readers against a serialized
// mutator doing puts, updates, removals, and evictions. Run under -race
// this is the memory-model proof for the published-entry protocol; the
// assertion is that a hit never returns a value the fingerprint never had.
func TestGetFastConcurrent(t *testing.T) {
	s := NewStriped(4, 256, nil)
	const keys = 512
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(i)%keys + seed
				fp := fingerprint.FromUint64(k % keys)
				if v, ok := s.GetFast(fp); ok && uint64(v) != k%keys {
					t.Errorf("GetFast(%d) = %d", k%keys, v)
					return
				}
			}
		}(uint64(r))
	}
	for i := 0; i < 50_000; i++ {
		k := uint64(i) % keys
		fp := fingerprint.FromUint64(k)
		switch i % 7 {
		case 5:
			s.Remove(fp)
		case 6:
			s.Get(fp)
		default:
			s.Put(fp, Value(k))
		}
	}
	close(stop)
	wg.Wait()
}

// TestAllocGetFast pins the lock-free hit path at zero allocations.
func TestAllocGetFast(t *testing.T) {
	s := NewStriped(4, 1024, nil)
	fp := fingerprint.FromUint64(99)
	s.Put(fp, 7)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := s.GetFast(fp); !ok {
			t.Fatal("miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("GetFast allocates %v/op; want 0", allocs)
	}
}
