// Package lru implements the least-recently-used fingerprint cache each
// SHHC hash node keeps in RAM (paper Figure 4: "Node N maintains a least
// recently used (LRU) cache list in RAM. If the LRU is full, it discards
// the least recently used fingerprints").
//
// RAM "serves as the cache for SSDs to absorb requests for frequent queries
// and hide the latency of SSD accesses" (paper §III.B). On a hit the entry
// moves to the MRU end; on insertion into a full cache the LRU entry is
// destaged (evicted) — optionally notifying the owner, which the hybrid
// node uses to flush dirty entries to the SSD hash table.
package lru

import (
	"shhc/internal/fingerprint"
)

// Value is the metadata cached per fingerprint: where the chunk lives.
// SHHC stores a location token; 8 bytes matches the paper's <fingerprint,
// locator> entries and keeps cache accounting simple.
type Value uint64

type entry struct {
	fp         fingerprint.Fingerprint
	val        Value
	dirty      bool
	prev, next *entry
}

// EvictFunc observes a destaged entry. dirty reports whether the entry was
// inserted (or updated) through PutDirty and never flushed.
type EvictFunc func(fp fingerprint.Fingerprint, val Value, dirty bool)

// Cache is a fixed-capacity LRU map from fingerprint to Value.
// It is not safe for concurrent use; the owning node serializes access.
type Cache struct {
	capacity int
	items    map[fingerprint.Fingerprint]*entry
	// head is most recently used, tail is least recently used.
	head, tail *entry
	onEvict    EvictFunc

	hits, misses, evictions uint64
}

// New creates a cache holding at most capacity entries. onEvict may be nil.
// It panics if capacity is not positive: a node without cache RAM is
// configured by disabling the cache, not by a zero capacity.
func New(capacity int, onEvict EvictFunc) *Cache {
	if capacity <= 0 {
		panic("lru: capacity must be positive")
	}
	return &Cache{
		capacity: capacity,
		items:    make(map[fingerprint.Fingerprint]*entry, capacity),
		onEvict:  onEvict,
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int { return len(c.items) }

// Capacity returns the maximum number of entries.
func (c *Cache) Capacity() int { return c.capacity }

// Get looks up a fingerprint, promoting it to most-recently-used on a hit.
func (c *Cache) Get(fp fingerprint.Fingerprint) (Value, bool) {
	e, ok := c.items[fp]
	if !ok {
		c.misses++
		return 0, false
	}
	c.hits++
	c.moveToFront(e)
	return e.val, true
}

// Peek looks up a fingerprint without updating recency or statistics.
func (c *Cache) Peek(fp fingerprint.Fingerprint) (Value, bool) {
	e, ok := c.items[fp]
	if !ok {
		return 0, false
	}
	return e.val, true
}

// Put inserts or updates a clean entry (one already persisted on SSD),
// promoting it to most-recently-used. It reports whether an older entry was
// evicted to make room.
func (c *Cache) Put(fp fingerprint.Fingerprint, val Value) bool {
	return c.put(fp, val, false)
}

// PutDirty inserts or updates an entry that has not been persisted yet.
// The eviction callback sees dirty=true unless MarkClean is called first.
func (c *Cache) PutDirty(fp fingerprint.Fingerprint, val Value) bool {
	return c.put(fp, val, true)
}

// PutIfAbsent inserts a clean entry only when the fingerprint is not
// already cached, reporting whether it inserted. An existing entry — its
// value, dirty flag, and recency — is left untouched, so a speculative
// install (e.g. of a stale probe result) can never overwrite a fresher or
// dirty entry.
func (c *Cache) PutIfAbsent(fp fingerprint.Fingerprint, val Value) bool {
	if _, ok := c.items[fp]; ok {
		return false
	}
	c.put(fp, val, false)
	return true
}

func (c *Cache) put(fp fingerprint.Fingerprint, val Value, dirty bool) bool {
	if e, ok := c.items[fp]; ok {
		e.val = val
		e.dirty = e.dirty || dirty
		c.moveToFront(e)
		return false
	}
	evicted := false
	if len(c.items) >= c.capacity {
		c.evictTail()
		evicted = true
	}
	e := &entry{fp: fp, val: val, dirty: dirty}
	c.items[fp] = e
	c.pushFront(e)
	return evicted
}

// MarkClean clears the dirty flag after the owner has flushed the entry.
func (c *Cache) MarkClean(fp fingerprint.Fingerprint) {
	if e, ok := c.items[fp]; ok {
		e.dirty = false
	}
}

// Remove deletes an entry without invoking the eviction callback.
// It reports whether the entry existed.
func (c *Cache) Remove(fp fingerprint.Fingerprint) bool {
	e, ok := c.items[fp]
	if !ok {
		return false
	}
	c.unlink(e)
	delete(c.items, fp)
	return true
}

// Oldest returns the least-recently-used fingerprint, if any.
func (c *Cache) Oldest() (fingerprint.Fingerprint, bool) {
	if c.tail == nil {
		return fingerprint.Zero, false
	}
	return c.tail.fp, true
}

// Keys returns fingerprints from most- to least-recently-used. It allocates
// a fresh slice; mutation by the caller cannot corrupt the cache.
func (c *Cache) Keys() []fingerprint.Fingerprint {
	keys := make([]fingerprint.Fingerprint, 0, len(c.items))
	for e := c.head; e != nil; e = e.next {
		keys = append(keys, e.fp)
	}
	return keys
}

// DirtyKeys returns the fingerprints of entries whose dirty flag is set,
// most- to least-recently-used. The write-back node flushes exactly these
// instead of rewriting every cached entry.
func (c *Cache) DirtyKeys() []fingerprint.Fingerprint {
	var keys []fingerprint.Fingerprint
	for e := c.head; e != nil; e = e.next {
		if e.dirty {
			keys = append(keys, e.fp)
		}
	}
	return keys
}

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Len       int
	Capacity  int
}

// HitRate returns hits / (hits + misses), or 0 for an unused cache.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Len: len(c.items), Capacity: c.capacity}
}

func (c *Cache) evictTail() {
	e := c.tail
	if e == nil {
		return
	}
	c.unlink(e)
	delete(c.items, e.fp)
	c.evictions++
	if c.onEvict != nil {
		c.onEvict(e.fp, e.val, e.dirty)
	}
}

func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveToFront(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
