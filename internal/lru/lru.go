// Package lru implements the least-recently-used fingerprint cache each
// SHHC hash node keeps in RAM (paper Figure 4: "Node N maintains a least
// recently used (LRU) cache list in RAM. If the LRU is full, it discards
// the least recently used fingerprints").
//
// RAM "serves as the cache for SSDs to absorb requests for frequent queries
// and hide the latency of SSD accesses" (paper §III.B). On a hit the entry
// moves to the MRU end; on insertion into a full cache the LRU entry is
// destaged (evicted) — optionally notifying the owner, which the hybrid
// node uses to flush dirty entries to the SSD hash table.
package lru

import (
	"sync/atomic"

	"shhc/internal/fingerprint"
)

// Value is the metadata cached per fingerprint: where the chunk lives.
// SHHC stores a location token; 8 bytes matches the paper's <fingerprint,
// locator> entries and keeps cache accounting simple.
type Value uint64

// entry is one cached fingerprint. The recency list (prev/next), the map,
// and dirty are owned by the cache's single writer (the stripe lock). The
// remaining fields form the lock-free read protocol: fp is written once
// before the entry is published through an atomic pointer (index bucket or
// hnext), val/dead/ref are atomics, so GetFast can walk an index chain and
// read a value with no lock at all.
type entry struct {
	fp         fingerprint.Fingerprint
	val        atomic.Uint64
	dirty      bool
	prev, next *entry

	// hnext chains entries within one index bucket, newest first.
	hnext atomic.Pointer[entry]
	// dead is set (before unlinking) when the entry leaves the cache, so a
	// reader that still holds a pointer to it reports a miss instead of a
	// value that may since have been superseded by a re-insert.
	dead atomic.Bool
	// ref is the lossy clock bit: GetFast sets it instead of touching the
	// recency list; evictTail's second-chance sweep consumes it under the
	// lock. When no lock-free reads occur the bit stays clear and eviction
	// order is the exact LRU order.
	ref atomic.Bool
}

// EvictFunc observes a destaged entry. dirty reports whether the entry was
// inserted (or updated) through PutDirty and never flushed.
type EvictFunc func(fp fingerprint.Fingerprint, val Value, dirty bool)

// Cache is a fixed-capacity LRU map from fingerprint to Value.
// Mutators are not safe for concurrent use — the owning node serializes
// them — but GetFast may run concurrently with any of them: it touches
// only the atomic index published by the single writer.
type Cache struct {
	capacity int
	items    map[fingerprint.Fingerprint]*entry
	// head is most recently used, tail is least recently used.
	head, tail *entry
	onEvict    EvictFunc

	// index is a chained hash table over the live entries, readable with
	// no lock. Buckets and chain links are atomic pointers; only the
	// (serialized) mutators write them.
	index   []atomic.Pointer[entry]
	idxMask uint64

	hits, misses, evictions uint64
	// fastHits counts GetFast hits; it is the only counter written without
	// the owner's serialization, so it is atomic and folded in by Stats.
	fastHits atomic.Uint64
}

// New creates a cache holding at most capacity entries. onEvict may be nil.
// It panics if capacity is not positive: a node without cache RAM is
// configured by disabling the cache, not by a zero capacity.
func New(capacity int, onEvict EvictFunc) *Cache {
	if capacity <= 0 {
		panic("lru: capacity must be positive")
	}
	buckets := 1
	for buckets < capacity {
		buckets <<= 1
	}
	return &Cache{
		capacity: capacity,
		items:    make(map[fingerprint.Fingerprint]*entry, capacity),
		onEvict:  onEvict,
		index:    make([]atomic.Pointer[entry], buckets),
		idxMask:  uint64(buckets - 1),
	}
}

// idxBucket picks an index bucket from bits independent of the stripe
// selector: Striped routes on the low bits of Bucket64, so within one
// stripe those bits are constant and only the high half spreads.
func (c *Cache) idxBucket(fp fingerprint.Fingerprint) uint64 {
	return (fp.Bucket64() >> 32) & c.idxMask
}

// Len returns the number of cached entries.
func (c *Cache) Len() int { return len(c.items) }

// Capacity returns the maximum number of entries.
func (c *Cache) Capacity() int { return c.capacity }

// Get looks up a fingerprint, promoting it to most-recently-used on a hit.
func (c *Cache) Get(fp fingerprint.Fingerprint) (Value, bool) {
	e, ok := c.items[fp]
	if !ok {
		c.misses++
		return 0, false
	}
	c.hits++
	c.moveToFront(e)
	return Value(e.val.Load()), true
}

// GetFast looks up a fingerprint without taking any lock. It may run
// concurrently with the (serialized) mutators. Recency is recorded as a
// clock bit instead of a list move; a hit on an entry being concurrently
// removed linearizes before the removal, and a miss is always safe — the
// caller's locked slow path re-checks. GetFast never counts misses (the
// slow path will), so hits+misses still sum to lookups.
func (c *Cache) GetFast(fp fingerprint.Fingerprint) (Value, bool) {
	for e := c.index[c.idxBucket(fp)].Load(); e != nil; e = e.hnext.Load() {
		if e.fp != fp {
			continue
		}
		if e.dead.Load() {
			// A re-insert of fp publishes ahead of this corpse; missing
			// here (rather than scanning on) can only send the caller to
			// the slow path, never return a stale value.
			return 0, false
		}
		v := Value(e.val.Load())
		if !e.ref.Load() {
			e.ref.Store(true)
		}
		c.fastHits.Add(1)
		return v, true
	}
	return 0, false
}

// Peek looks up a fingerprint without updating recency or statistics.
func (c *Cache) Peek(fp fingerprint.Fingerprint) (Value, bool) {
	e, ok := c.items[fp]
	if !ok {
		return 0, false
	}
	return Value(e.val.Load()), true
}

// Put inserts or updates a clean entry (one already persisted on SSD),
// promoting it to most-recently-used. It reports whether an older entry was
// evicted to make room.
func (c *Cache) Put(fp fingerprint.Fingerprint, val Value) bool {
	return c.put(fp, val, false)
}

// PutDirty inserts or updates an entry that has not been persisted yet.
// The eviction callback sees dirty=true unless MarkClean is called first.
func (c *Cache) PutDirty(fp fingerprint.Fingerprint, val Value) bool {
	return c.put(fp, val, true)
}

// PutIfAbsent inserts a clean entry only when the fingerprint is not
// already cached, reporting whether it inserted. An existing entry — its
// value, dirty flag, and recency — is left untouched, so a speculative
// install (e.g. of a stale probe result) can never overwrite a fresher or
// dirty entry.
func (c *Cache) PutIfAbsent(fp fingerprint.Fingerprint, val Value) bool {
	if _, ok := c.items[fp]; ok {
		return false
	}
	c.put(fp, val, false)
	return true
}

func (c *Cache) put(fp fingerprint.Fingerprint, val Value, dirty bool) bool {
	if e, ok := c.items[fp]; ok {
		e.val.Store(uint64(val))
		e.dirty = e.dirty || dirty
		c.moveToFront(e)
		return false
	}
	evicted := false
	if len(c.items) >= c.capacity {
		c.evictTail()
		evicted = true
	}
	e := &entry{fp: fp, dirty: dirty}
	e.val.Store(uint64(val))
	c.items[fp] = e
	c.pushFront(e)
	c.indexInsert(e)
	return evicted
}

// indexInsert publishes e at the head of its index chain. The store into
// the bucket is the release point: every field written above it is visible
// to a GetFast that loads the pointer.
func (c *Cache) indexInsert(e *entry) {
	b := c.idxBucket(e.fp)
	e.hnext.Store(c.index[b].Load())
	c.index[b].Store(e)
}

// indexRemove marks e dead, then unlinks it from its chain. Readers that
// already hold e keep a valid (GC-protected) snapshot; readers that reach
// it after the dead store report a miss.
func (c *Cache) indexRemove(e *entry) {
	e.dead.Store(true)
	b := c.idxBucket(e.fp)
	if c.index[b].Load() == e {
		c.index[b].Store(e.hnext.Load())
		return
	}
	for p := c.index[b].Load(); p != nil; p = p.hnext.Load() {
		if p.hnext.Load() == e {
			p.hnext.Store(e.hnext.Load())
			return
		}
	}
}

// MarkClean clears the dirty flag after the owner has flushed the entry.
func (c *Cache) MarkClean(fp fingerprint.Fingerprint) {
	if e, ok := c.items[fp]; ok {
		e.dirty = false
	}
}

// Remove deletes an entry without invoking the eviction callback.
// It reports whether the entry existed.
func (c *Cache) Remove(fp fingerprint.Fingerprint) bool {
	e, ok := c.items[fp]
	if !ok {
		return false
	}
	c.unlink(e)
	delete(c.items, fp)
	c.indexRemove(e)
	return true
}

// Oldest returns the least-recently-used fingerprint, if any.
func (c *Cache) Oldest() (fingerprint.Fingerprint, bool) {
	if c.tail == nil {
		return fingerprint.Zero, false
	}
	return c.tail.fp, true
}

// Keys returns fingerprints from most- to least-recently-used. It allocates
// a fresh slice; mutation by the caller cannot corrupt the cache.
func (c *Cache) Keys() []fingerprint.Fingerprint {
	keys := make([]fingerprint.Fingerprint, 0, len(c.items))
	for e := c.head; e != nil; e = e.next {
		keys = append(keys, e.fp)
	}
	return keys
}

// DirtyKeys returns the fingerprints of entries whose dirty flag is set,
// most- to least-recently-used. The write-back node flushes exactly these
// instead of rewriting every cached entry.
func (c *Cache) DirtyKeys() []fingerprint.Fingerprint {
	var keys []fingerprint.Fingerprint
	for e := c.head; e != nil; e = e.next {
		if e.dirty {
			keys = append(keys, e.fp)
		}
	}
	return keys
}

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Len       int
	Capacity  int
}

// HitRate returns hits / (hits + misses), or 0 for an unused cache.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the counters. Lock-free GetFast hits are
// folded into Hits.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits + c.fastHits.Load(),
		Misses:    c.misses,
		Evictions: c.evictions,
		Len:       len(c.items),
		Capacity:  c.capacity,
	}
}

func (c *Cache) evictTail() {
	// Second-chance sweep: a tail entry whose clock bit was set by GetFast
	// gets promoted (its lossy recency batched into the exact list, here,
	// under the lock) instead of evicted. Bounded by one full rotation so a
	// pathological all-referenced cache still evicts.
	for i := 0; i <= len(c.items); i++ {
		e := c.tail
		if e == nil {
			return
		}
		if e.ref.Load() && i < len(c.items) {
			e.ref.Store(false)
			c.moveToFront(e)
			continue
		}
		c.unlink(e)
		delete(c.items, e.fp)
		c.indexRemove(e)
		c.evictions++
		if c.onEvict != nil {
			c.onEvict(e.fp, Value(e.val.Load()), e.dirty)
		}
		return
	}
}

func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveToFront(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
