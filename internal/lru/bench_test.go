package lru

import (
	"testing"

	"shhc/internal/fingerprint"
)

func BenchmarkPutEvicting(b *testing.B) {
	c := New(1<<14, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(fingerprint.FromUint64(uint64(i)), Value(i))
	}
}

func BenchmarkGetHit(b *testing.B) {
	const working = 1 << 12
	c := New(working, nil)
	for i := 0; i < working; i++ {
		c.Put(fingerprint.FromUint64(uint64(i)), Value(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(fingerprint.FromUint64(uint64(i % working))); !ok {
			b.Fatal("unexpected miss")
		}
	}
}

func BenchmarkGetMiss(b *testing.B) {
	c := New(1<<10, nil)
	for i := 0; i < 1<<10; i++ {
		c.Put(fingerprint.FromUint64(uint64(i)), Value(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(fingerprint.FromUint64(uint64(1<<40 + i)))
	}
}
