package lru

import (
	"testing"
	"testing/quick"

	"shhc/internal/fingerprint"
)

func fp(i uint64) fingerprint.Fingerprint { return fingerprint.FromUint64(i) }

func TestGetPut(t *testing.T) {
	c := New(4, nil)
	c.Put(fp(1), 100)
	if v, ok := c.Get(fp(1)); !ok || v != 100 {
		t.Fatalf("Get = (%v, %v), want (100, true)", v, ok)
	}
	if _, ok := c.Get(fp(2)); ok {
		t.Fatal("Get of absent key succeeded")
	}
}

func TestEvictionOrder(t *testing.T) {
	var evicted []fingerprint.Fingerprint
	c := New(3, func(f fingerprint.Fingerprint, _ Value, _ bool) {
		evicted = append(evicted, f)
	})
	c.Put(fp(1), 1)
	c.Put(fp(2), 2)
	c.Put(fp(3), 3)
	c.Get(fp(1)) // promote 1; LRU order now 2,3,1
	c.Put(fp(4), 4)
	c.Put(fp(5), 5)

	want := []fingerprint.Fingerprint{fp(2), fp(3)}
	if len(evicted) != len(want) {
		t.Fatalf("evicted %d entries, want %d", len(evicted), len(want))
	}
	for i := range want {
		if evicted[i] != want[i] {
			t.Fatalf("eviction[%d] = %s, want %s", i, evicted[i].Short(), want[i].Short())
		}
	}
	if _, ok := c.Peek(fp(1)); !ok {
		t.Fatal("promoted entry 1 was evicted")
	}
}

func TestUpdateExistingDoesNotEvict(t *testing.T) {
	c := New(2, nil)
	c.Put(fp(1), 1)
	c.Put(fp(2), 2)
	if evicted := c.Put(fp(1), 10); evicted {
		t.Fatal("updating existing key reported eviction")
	}
	if v, _ := c.Get(fp(1)); v != 10 {
		t.Fatalf("updated value = %v, want 10", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestDirtyTracking(t *testing.T) {
	var gotDirty []bool
	c := New(1, func(_ fingerprint.Fingerprint, _ Value, dirty bool) {
		gotDirty = append(gotDirty, dirty)
	})
	c.PutDirty(fp(1), 1)
	c.Put(fp(2), 2) // evicts dirty 1
	c.PutDirty(fp(3), 3)
	c.MarkClean(fp(3))
	c.Put(fp(4), 4) // evicts fp(3), which MarkClean made clean

	// Evictions: fp(1) dirty, fp(2) clean, fp(3) cleaned via MarkClean.
	want := []bool{true, false, false}
	if len(gotDirty) != len(want) {
		t.Fatalf("dirty flags = %v, want %v", gotDirty, want)
	}
	for i := range want {
		if gotDirty[i] != want[i] {
			t.Fatalf("dirty flags = %v, want %v", gotDirty, want)
		}
	}
}

func TestDirtyStickyAcrossCleanUpdate(t *testing.T) {
	var dirtyAtEvict bool
	c := New(1, func(_ fingerprint.Fingerprint, _ Value, dirty bool) { dirtyAtEvict = dirty })
	c.PutDirty(fp(1), 1)
	c.Put(fp(1), 2) // clean update must not clear dirtiness
	c.Put(fp(9), 9) // evict
	if !dirtyAtEvict {
		t.Fatal("dirty flag was lost on clean update of a dirty entry")
	}
}

func TestPeekDoesNotPromote(t *testing.T) {
	c := New(2, nil)
	c.Put(fp(1), 1)
	c.Put(fp(2), 2)
	c.Peek(fp(1)) // must NOT promote
	c.Put(fp(3), 3)
	if _, ok := c.Peek(fp(1)); ok {
		t.Fatal("Peek promoted entry 1")
	}
	if _, ok := c.Peek(fp(2)); !ok {
		t.Fatal("entry 2 should have survived")
	}
}

func TestRemove(t *testing.T) {
	evictions := 0
	c := New(2, func(fingerprint.Fingerprint, Value, bool) { evictions++ })
	c.Put(fp(1), 1)
	if !c.Remove(fp(1)) {
		t.Fatal("Remove of present key = false")
	}
	if c.Remove(fp(1)) {
		t.Fatal("Remove of absent key = true")
	}
	if evictions != 0 {
		t.Fatal("Remove must not fire the eviction callback")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

func TestOldestAndKeys(t *testing.T) {
	c := New(3, nil)
	if _, ok := c.Oldest(); ok {
		t.Fatal("Oldest on empty cache = true")
	}
	c.Put(fp(1), 1)
	c.Put(fp(2), 2)
	c.Put(fp(3), 3)
	c.Get(fp(1))
	if oldest, _ := c.Oldest(); oldest != fp(2) {
		t.Fatalf("Oldest = %s, want %s", oldest.Short(), fp(2).Short())
	}
	keys := c.Keys()
	want := []fingerprint.Fingerprint{fp(1), fp(3), fp(2)}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys[%d] = %s, want %s", i, keys[i].Short(), want[i].Short())
		}
	}
}

func TestStats(t *testing.T) {
	c := New(2, nil)
	c.Put(fp(1), 1)
	c.Get(fp(1))
	c.Get(fp(2))
	c.Put(fp(2), 2)
	c.Put(fp(3), 3)

	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 eviction", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", got)
	}
	var empty Stats
	if empty.HitRate() != 0 {
		t.Fatal("empty HitRate must be 0")
	}
}

func TestPanicOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, nil)
}

// Property: the cache never exceeds capacity, and a Get immediately after
// Put returns the value, for arbitrary operation sequences.
func TestQuickCapacityAndCoherence(t *testing.T) {
	f := func(ops []uint16, capSeed uint8) bool {
		capacity := int(capSeed%32) + 1
		c := New(capacity, nil)
		for _, op := range ops {
			key := fp(uint64(op % 64))
			if op%3 == 0 {
				c.Get(key)
			} else {
				c.Put(key, Value(op))
				if v, ok := c.Peek(key); !ok || v != Value(op) {
					return false
				}
			}
			if c.Len() > capacity {
				return false
			}
		}
		return len(c.Keys()) == c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPutIfAbsent(t *testing.T) {
	c := New(4, nil)
	if !c.PutIfAbsent(fp(1), 100) {
		t.Fatal("PutIfAbsent into empty cache reported no insert")
	}
	if v, ok := c.Peek(fp(1)); !ok || v != 100 {
		t.Fatalf("Peek after PutIfAbsent = (%v, %v), want (100, true)", v, ok)
	}
	if c.PutIfAbsent(fp(1), 200) {
		t.Fatal("PutIfAbsent over an existing entry reported an insert")
	}
	if v, _ := c.Peek(fp(1)); v != 100 {
		t.Fatalf("PutIfAbsent overwrote value: got %v, want 100", v)
	}
}

// TestPutIfAbsentPreservesDirty is the invariant the hybrid node's async
// SSD phase relies on: a probe result installed after a concurrent dirty
// insert must not launder the entry clean (which would lose the destage).
func TestPutIfAbsentPreservesDirty(t *testing.T) {
	var destaged []fingerprint.Fingerprint
	c := New(2, func(f fingerprint.Fingerprint, _ Value, dirty bool) {
		if dirty {
			destaged = append(destaged, f)
		}
	})
	c.PutDirty(fp(1), 1)
	if c.PutIfAbsent(fp(1), 9) {
		t.Fatal("PutIfAbsent replaced a dirty entry")
	}
	// Force fp(1) out: it must still destage as dirty.
	c.Put(fp(2), 2)
	c.Put(fp(3), 3)
	c.Put(fp(4), 4)
	if len(destaged) != 1 || destaged[0] != fp(1) {
		t.Fatalf("dirty entry destaged = %v, want [fp(1)]", destaged)
	}
}

// TestPutIfAbsentDoesNotPromote: an install must not perturb recency of an
// existing entry (the probe completion is not a use).
func TestPutIfAbsentDoesNotPromote(t *testing.T) {
	c := New(2, nil)
	c.Put(fp(1), 1)
	c.Put(fp(2), 2)
	c.PutIfAbsent(fp(1), 1) // no-op: fp(1) stays LRU
	c.Put(fp(3), 3)         // evicts fp(1), not fp(2)
	if _, ok := c.Peek(fp(1)); ok {
		t.Fatal("fp(1) survived eviction after a no-op PutIfAbsent promotion")
	}
	if _, ok := c.Peek(fp(2)); !ok {
		t.Fatal("fp(2) evicted instead of the older fp(1)")
	}
}
