package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(time.Microsecond, 40)
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Summarize()
	if s.Count != 100 {
		t.Fatalf("Count = %d, want 100", s.Count)
	}
	if s.Min != time.Microsecond {
		t.Fatalf("Min = %v, want 1us", s.Min)
	}
	if s.Max != 100*time.Microsecond {
		t.Fatalf("Max = %v, want 100us", s.Max)
	}
	wantMean := 50500 * time.Nanosecond
	if s.Mean != wantMean {
		t.Fatalf("Mean = %v, want %v", s.Mean, wantMean)
	}
	if s.P50 < 32*time.Microsecond || s.P50 > 100*time.Microsecond {
		t.Fatalf("P50 = %v, out of plausible bucket range", s.P50)
	}
	if s.P99 < s.P50 {
		t.Fatalf("P99 (%v) < P50 (%v)", s.P99, s.P50)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(time.Microsecond, 10)
	s := h.Summarize()
	if s.Count != 0 || s.Mean != 0 || s.P99 != 0 {
		t.Fatalf("empty summary = %+v, want zeros", s)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram(time.Microsecond, 10)
	h.Observe(-time.Second)
	s := h.Summarize()
	if s.Min != 0 || s.Count != 1 {
		t.Fatalf("negative observation handled badly: %+v", s)
	}
}

func TestHistogramOverflowClampsToLastBucket(t *testing.T) {
	h := NewHistogram(time.Microsecond, 4) // buckets up to 8us
	h.Observe(time.Hour)
	s := h.Summarize()
	if s.Max != time.Hour {
		t.Fatalf("Max = %v, want 1h", s.Max)
	}
	// Percentile clamps to observed max rather than bucket bound.
	if s.P99 != time.Hour {
		t.Fatalf("P99 = %v, want clamp to max", s.P99)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(time.Microsecond, 40)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Summarize().Count; got != 8000 {
		t.Fatalf("Count = %d, want 8000", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("Value = %d, want 10", c.Value())
	}
}

func TestMeterRate(t *testing.T) {
	m := NewMeter()
	base := time.Now()
	m.now = func() time.Time { return base.Add(2 * time.Second) }
	m.start = base
	m.Mark(100)
	if got := m.Rate(); got != 50 {
		t.Fatalf("Rate = %v, want 50", got)
	}
	if m.Count() != 100 {
		t.Fatalf("Count = %d, want 100", m.Count())
	}
	m.Reset()
	if m.Count() != 0 {
		t.Fatal("Reset did not zero the count")
	}
}

func TestPercentileExact(t *testing.T) {
	samples := []time.Duration{5, 1, 4, 2, 3}
	tests := []struct {
		q    float64
		want time.Duration
	}{
		{q: 0, want: 1},
		{q: 0.2, want: 1},
		{q: 0.5, want: 3},
		{q: 0.8, want: 4},
		{q: 1.0, want: 5},
	}
	for _, tt := range tests {
		if got := Percentile(samples, tt.q); got != tt.want {
			t.Fatalf("Percentile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("Percentile(nil) = %v, want 0", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(time.Microsecond, 10)
	b := NewHistogram(time.Microsecond, 10)
	for i := 1; i <= 100; i++ {
		a.Observe(time.Duration(i) * time.Microsecond)
	}
	for i := 101; i <= 200; i++ {
		b.Observe(time.Duration(i) * time.Microsecond)
	}
	m := NewHistogram(time.Microsecond, 10)
	m.Merge(a)
	m.Merge(b)
	m.Merge(NewHistogram(time.Microsecond, 10)) // empty merge is a no-op

	got := m.Summarize()
	if got.Count != 200 {
		t.Fatalf("merged Count = %d, want 200", got.Count)
	}
	if got.Min != time.Microsecond {
		t.Fatalf("merged Min = %v, want 1µs", got.Min)
	}
	if got.Max != 200*time.Microsecond {
		t.Fatalf("merged Max = %v, want 200µs", got.Max)
	}
	wantSum := a.Summarize().Sum + b.Summarize().Sum
	if got.Sum != wantSum {
		t.Fatalf("merged Sum = %v, want %v", got.Sum, wantSum)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("merging incompatible histograms did not panic")
		}
	}()
	m.Merge(NewHistogram(time.Millisecond, 10))
}
