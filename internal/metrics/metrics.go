// Package metrics provides the latency histograms and throughput meters the
// benchmark harness uses to reproduce the paper's measurements (execution
// time in Figure 1, chunks/second in Figure 5).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram records durations in logarithmic buckets (powers of two of a
// base resolution), supporting approximate percentiles with bounded memory.
// It is safe for concurrent use.
type Histogram struct {
	base    time.Duration
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; math.MaxInt64 when empty
	max     atomic.Int64
}

// NewHistogram creates a histogram with the given base resolution (the
// width of the first bucket). Durations up to base<<(buckets-1) resolve
// into distinct buckets; larger values clamp into the last bucket.
func NewHistogram(base time.Duration, buckets int) *Histogram {
	if base <= 0 {
		base = time.Microsecond
	}
	if buckets <= 0 {
		buckets = 40
	}
	h := &Histogram{base: base, buckets: make([]atomic.Int64, buckets)}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	idx := h.bucketIndex(d)
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.min.Load()
		if int64(d) >= cur || h.min.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

func (h *Histogram) bucketIndex(d time.Duration) int {
	if d < h.base {
		return 0
	}
	idx := 0
	v := d / h.base
	for v > 0 && idx < len(h.buckets)-1 {
		v >>= 1
		idx++
	}
	return idx
}

// bucketUpper returns the inclusive upper bound of bucket i.
func (h *Histogram) bucketUpper(i int) time.Duration {
	return h.base << uint(i)
}

// Merge adds src's observations into h. Both histograms must share the
// same base resolution and bucket count (it panics otherwise). The hybrid
// node folds its per-stripe phase histograms into one digest with it, so
// the hot path only ever touches stripe-local counters.
func (h *Histogram) Merge(src *Histogram) {
	if h.base != src.base || len(h.buckets) != len(src.buckets) {
		panic("metrics: merging incompatible histograms")
	}
	count := src.count.Load()
	if count == 0 {
		return
	}
	for i := range src.buckets {
		if n := src.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(count)
	h.sum.Add(src.sum.Load())
	for {
		cur := h.min.Load()
		v := src.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		v := src.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Summary is a point-in-time digest of a histogram.
type Summary struct {
	Count int64
	Sum   time.Duration
	Min   time.Duration
	Max   time.Duration
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
}

// Summarize digests the histogram. Percentiles are upper bounds of the
// containing bucket (conservative).
func (h *Histogram) Summarize() Summary {
	count := h.count.Load()
	s := Summary{Count: count, Sum: time.Duration(h.sum.Load())}
	if count == 0 {
		return s
	}
	s.Min = time.Duration(h.min.Load())
	s.Max = time.Duration(h.max.Load())
	s.Mean = s.Sum / time.Duration(count)
	s.P50 = h.percentile(count, 0.50)
	s.P90 = h.percentile(count, 0.90)
	s.P99 = h.percentile(count, 0.99)
	return s
}

func (h *Histogram) percentile(count int64, q float64) time.Duration {
	target := int64(math.Ceil(q * float64(count)))
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i == len(h.buckets)-1 {
				// Overflow bucket: its only honest bound is the observed max.
				return time.Duration(h.max.Load())
			}
			up := h.bucketUpper(i)
			if max := time.Duration(h.max.Load()); up > max {
				return max
			}
			return up
		}
	}
	return time.Duration(h.max.Load())
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v max=%v",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// Counter is a monotonically increasing event counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Meter measures throughput over a wall-clock window.
type Meter struct {
	mu    sync.Mutex
	count int64
	start time.Time
	now   func() time.Time
}

// NewMeter creates a meter that starts counting immediately.
func NewMeter() *Meter {
	m := &Meter{now: time.Now}
	m.start = m.now()
	return m
}

// Mark records n events.
func (m *Meter) Mark(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.count += n
}

// Rate returns events per second since the meter started.
func (m *Meter) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	elapsed := m.now().Sub(m.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.count) / elapsed
}

// Count returns the number of marked events.
func (m *Meter) Count() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.count
}

// Reset zeroes the meter and restarts the clock.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.count = 0
	m.start = m.now()
}

// Percentile computes the q-quantile (0..1) of raw duration samples.
// Used by tests and offline analysis where exactness matters more than
// memory. The input slice is sorted in place.
func Percentile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	if q <= 0 {
		return samples[0]
	}
	if q >= 1 {
		return samples[len(samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return samples[idx]
}
