package container

import (
	"bytes"
	"testing"
	"testing/quick"

	"shhc/internal/fingerprint"
)

func chunkBytes(i, size int) []byte {
	b := make([]byte, size)
	for j := range b {
		b[j] = byte(i + j)
	}
	return b
}

func newPacker(t *testing.T, capacity, maxChunks int) (*Packer, *MemSink) {
	t.Helper()
	sink := NewMemSink()
	p, err := NewPacker(Config{Capacity: capacity, MaxChunks: maxChunks, Sink: sink})
	if err != nil {
		t.Fatalf("NewPacker: %v", err)
	}
	return p, sink
}

func TestLocatorPacking(t *testing.T) {
	loc := MakeLocator(123456, 789)
	if loc.Container() != 123456 || loc.Slot() != 789 {
		t.Fatalf("locator round trip = (%d, %d)", loc.Container(), loc.Slot())
	}
}

func TestAddReadRoundTrip(t *testing.T) {
	p, sink := newPacker(t, 1<<20, 0)
	type stored struct {
		loc  Locator
		data []byte
	}
	var all []stored
	for i := 0; i < 100; i++ {
		data := chunkBytes(i, 1000)
		loc, err := p.Add(fingerprint.FromData(data), data)
		if err != nil {
			t.Fatalf("Add: %v", err)
		}
		all = append(all, stored{loc, data})
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for i, s := range all {
		got, err := sink.ReadChunk(s.loc)
		if err != nil {
			t.Fatalf("ReadChunk(%d): %v", i, err)
		}
		if !bytes.Equal(got, s.data) {
			t.Fatalf("chunk %d differs after container round trip", i)
		}
	}
}

func TestSealsOnCapacity(t *testing.T) {
	p, sink := newPacker(t, 4096, 0)
	for i := 0; i < 10; i++ {
		data := chunkBytes(i, 1000)
		if _, err := p.Add(fingerprint.FromData(data), data); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	// 4 chunks of 1000B fit per 4096B container: after 10 adds, two
	// containers sealed, two chunks open.
	st := p.Stats()
	if st.Sealed != 2 {
		t.Fatalf("Sealed = %d, want 2", st.Sealed)
	}
	if st.OpenChunks != 2 {
		t.Fatalf("OpenChunks = %d, want 2", st.OpenChunks)
	}
	if sink.Containers() != 2 {
		t.Fatalf("sink holds %d containers, want 2", sink.Containers())
	}
}

func TestSealsOnMaxChunks(t *testing.T) {
	p, _ := newPacker(t, 1<<20, 4)
	for i := 0; i < 9; i++ {
		data := chunkBytes(i, 10)
		if _, err := p.Add(fingerprint.FromData(data), data); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if st := p.Stats(); st.Sealed != 2 || st.OpenChunks != 1 {
		t.Fatalf("stats = %+v, want 2 sealed + 1 open", st)
	}
}

func TestAddValidation(t *testing.T) {
	p, _ := newPacker(t, 1024, 0)
	if _, err := p.Add(fingerprint.Fingerprint{}, nil); err == nil {
		t.Fatal("empty chunk accepted")
	}
	if _, err := p.Add(fingerprint.Fingerprint{}, make([]byte, 2048)); err == nil {
		t.Fatal("oversized chunk accepted")
	}
	if _, err := NewPacker(Config{}); err == nil {
		t.Fatal("packer without sink accepted")
	}
}

func TestFlushEmptyIsNoop(t *testing.T) {
	p, sink := newPacker(t, 1024, 0)
	if err := p.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if sink.Containers() != 0 {
		t.Fatal("empty flush created a container")
	}
}

func TestReadChunkErrors(t *testing.T) {
	p, sink := newPacker(t, 1<<20, 0)
	data := chunkBytes(1, 100)
	loc, _ := p.Add(fingerprint.FromData(data), data)
	p.Flush()

	if _, err := sink.ReadChunk(MakeLocator(999, 0)); err == nil {
		t.Fatal("read of missing container succeeded")
	}
	if _, err := sink.ReadChunk(MakeLocator(loc.Container(), 99)); err == nil {
		t.Fatal("read of out-of-range slot succeeded")
	}
}

func TestCorruptContainerDetected(t *testing.T) {
	p, sink := newPacker(t, 1<<20, 0)
	data := chunkBytes(7, 100)
	loc, _ := p.Add(fingerprint.FromData(data), data)
	p.Flush()

	// Corrupt the stored container in place.
	sink.mu.Lock()
	sink.containers[loc.Container()][10] ^= 0xFF
	sink.mu.Unlock()

	if _, err := sink.ReadChunk(loc); err == nil {
		t.Fatal("corrupt chunk passed fingerprint verification")
	}
}

func TestDuplicateContainerIDRejected(t *testing.T) {
	sink := NewMemSink()
	if err := sink.StoreContainer(1, []byte("a"), nil); err != nil {
		t.Fatalf("StoreContainer: %v", err)
	}
	if err := sink.StoreContainer(1, []byte("b"), nil); err == nil {
		t.Fatal("duplicate container ID accepted")
	}
}

// Property: any sequence of chunk sizes round-trips through pack/seal/read.
func TestQuickPackReadRoundTrip(t *testing.T) {
	f := func(sizes []uint8) bool {
		sink := NewMemSink()
		p, err := NewPacker(Config{Capacity: 512, MaxChunks: 8, Sink: sink})
		if err != nil {
			return false
		}
		type stored struct {
			loc  Locator
			data []byte
		}
		var all []stored
		for i, s := range sizes {
			size := int(s)%200 + 1
			data := chunkBytes(i, size)
			loc, err := p.Add(fingerprint.FromData(data), data)
			if err != nil {
				return false
			}
			all = append(all, stored{loc, data})
		}
		if err := p.Flush(); err != nil {
			return false
		}
		for _, s := range all {
			got, err := sink.ReadChunk(s.loc)
			if err != nil || !bytes.Equal(got, s.data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLocatorsUniqueAcrossSeals(t *testing.T) {
	p, _ := newPacker(t, 256, 4)
	seen := map[Locator]bool{}
	for i := 0; i < 100; i++ {
		data := chunkBytes(i, 50)
		loc, err := p.Add(fingerprint.FromData(data), data)
		if err != nil {
			t.Fatalf("Add: %v", err)
		}
		if seen[loc] {
			t.Fatalf("locator %v (%d/%d) reused", loc, loc.Container(), loc.Slot())
		}
		seen[loc] = true
	}
}
