// Package container packs chunks into fixed-capacity containers, the
// storage layout of DDFS-lineage dedup systems the paper builds on: chunks
// are appended to an open container; when full it is sealed and shipped to
// cloud storage as one object. The index's Value locator then encodes
// (container ID, slot), so a duplicate's data is addressable without any
// per-chunk object overhead, and restore reads amortize over container
// fetches — the paper's "stores a reference to the existing data".
package container

import (
	"errors"
	"fmt"
	"sync"

	"shhc/internal/fingerprint"
)

// Locator addresses a chunk inside a container: containerID<<16 | slot.
type Locator uint64

// MakeLocator packs a container ID and slot into a Locator.
func MakeLocator(containerID uint64, slot uint16) Locator {
	return Locator(containerID<<16 | uint64(slot))
}

// Container returns the container ID.
func (l Locator) Container() uint64 { return uint64(l) >> 16 }

// Slot returns the chunk's position within its container.
func (l Locator) Slot() uint16 { return uint16(l) }

// Sink receives sealed containers (cloud storage in SHHC).
type Sink interface {
	// StoreContainer persists one sealed container under its ID.
	StoreContainer(id uint64, data []byte, index []Entry) error
}

// Entry describes one chunk inside a sealed container.
type Entry struct {
	FP     fingerprint.Fingerprint
	Offset uint32
	Length uint32
}

// Config tunes the packer.
type Config struct {
	// Capacity is the target container payload size. Default 4 MiB.
	Capacity int
	// MaxChunks bounds chunks per container (slot is 16-bit).
	// Default 4096.
	MaxChunks int
	// Sink receives sealed containers. Required.
	Sink Sink
}

// Packer accumulates chunks into the open container and seals full ones.
// Safe for concurrent use.
type Packer struct {
	mu  sync.Mutex
	cfg Config

	nextID uint64
	buf    []byte
	index  []Entry

	sealed   uint64
	chunksIn uint64
	bytesIn  uint64
}

// NewPacker creates a packer.
func NewPacker(cfg Config) (*Packer, error) {
	if cfg.Sink == nil {
		return nil, errors.New("container: Config.Sink is required")
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4 << 20
	}
	if cfg.MaxChunks <= 0 || cfg.MaxChunks > 65536 {
		cfg.MaxChunks = 4096
	}
	return &Packer{cfg: cfg, buf: make([]byte, 0, cfg.Capacity)}, nil
}

// Add appends one chunk, returning the locator it will be addressable by.
// The container seals automatically when capacity or chunk count is hit.
func (p *Packer) Add(fp fingerprint.Fingerprint, data []byte) (Locator, error) {
	if len(data) == 0 {
		return 0, errors.New("container: empty chunk")
	}
	if len(data) > p.cfg.Capacity {
		return 0, fmt.Errorf("container: chunk of %d bytes exceeds capacity %d", len(data), p.cfg.Capacity)
	}
	p.mu.Lock()
	defer p.mu.Unlock()

	// Seal first if this chunk would overflow.
	if len(p.buf)+len(data) > p.cfg.Capacity || len(p.index) >= p.cfg.MaxChunks {
		if err := p.sealLocked(); err != nil {
			return 0, err
		}
	}
	slot := uint16(len(p.index))
	loc := MakeLocator(p.nextID, slot)
	p.index = append(p.index, Entry{
		FP:     fp,
		Offset: uint32(len(p.buf)),
		Length: uint32(len(data)),
	})
	p.buf = append(p.buf, data...)
	p.chunksIn++
	p.bytesIn += uint64(len(data))
	return loc, nil
}

// sealLocked ships the open container to the sink and starts a new one.
func (p *Packer) sealLocked() error {
	if len(p.index) == 0 {
		return nil
	}
	data := make([]byte, len(p.buf))
	copy(data, p.buf)
	index := make([]Entry, len(p.index))
	copy(index, p.index)
	if err := p.cfg.Sink.StoreContainer(p.nextID, data, index); err != nil {
		return fmt.Errorf("container: seal %d: %w", p.nextID, err)
	}
	p.sealed++
	p.nextID++
	p.buf = p.buf[:0]
	p.index = p.index[:0]
	return nil
}

// Flush seals the open container, if any.
func (p *Packer) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sealLocked()
}

// Stats describe packer progress.
type Stats struct {
	Sealed   uint64
	ChunksIn uint64
	BytesIn  uint64
	// OpenChunks / OpenBytes describe the unsealed container.
	OpenChunks int
	OpenBytes  int
}

// Stats returns a snapshot of the packer.
func (p *Packer) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Sealed:     p.sealed,
		ChunksIn:   p.chunksIn,
		BytesIn:    p.bytesIn,
		OpenChunks: len(p.index),
		OpenBytes:  len(p.buf),
	}
}

// MemSink is an in-memory Sink with chunk retrieval, for tests and the
// simulated cloud store.
type MemSink struct {
	mu         sync.Mutex
	containers map[uint64][]byte
	indexes    map[uint64][]Entry
}

// NewMemSink creates an empty in-memory sink.
func NewMemSink() *MemSink {
	return &MemSink{containers: make(map[uint64][]byte), indexes: make(map[uint64][]Entry)}
}

// StoreContainer implements Sink.
func (s *MemSink) StoreContainer(id uint64, data []byte, index []Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.containers[id]; dup {
		return fmt.Errorf("container: duplicate container id %d", id)
	}
	s.containers[id] = data
	s.indexes[id] = index
	return nil
}

// ReadChunk fetches one chunk by locator, verifying its fingerprint.
func (s *MemSink) ReadChunk(loc Locator) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, ok := s.indexes[loc.Container()]
	if !ok {
		return nil, fmt.Errorf("container: container %d not found", loc.Container())
	}
	slot := int(loc.Slot())
	if slot >= len(idx) {
		return nil, fmt.Errorf("container: slot %d out of range in container %d", slot, loc.Container())
	}
	e := idx[slot]
	data := s.containers[loc.Container()][e.Offset : e.Offset+e.Length]
	out := make([]byte, len(data))
	copy(out, data)
	if fingerprint.FromData(out) != e.FP {
		return nil, fmt.Errorf("container: chunk at %d/%d fails fingerprint check", loc.Container(), slot)
	}
	return out, nil
}

// Containers returns how many containers are stored.
func (s *MemSink) Containers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.containers)
}
