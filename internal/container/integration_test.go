package container

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"shhc/internal/core"
	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
)

// TestContainerBackedDedupStore wires the packer to an SHHC node the way a
// production deployment would: new chunks get packed into containers and
// their locators stored in the fingerprint index; duplicates return the
// original locator, which addresses the original bytes.
func TestContainerBackedDedupStore(t *testing.T) {
	node, err := core.NewNode(core.NodeConfig{
		ID:            "container-int",
		Store:         hashdb.NewMemStore(nil),
		CacheSize:     256,
		BloomExpected: 1 << 14,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer node.Close()

	sink := NewMemSink()
	packer, err := NewPacker(Config{Capacity: 8192, MaxChunks: 16, Sink: sink})
	if err != nil {
		t.Fatalf("NewPacker: %v", err)
	}

	// store runs the dedup write path: pack only chunks the index has
	// not seen, and record their locators.
	store := func(data []byte) (Locator, bool, error) {
		fpr := fingerprint.FromData(data)
		// Reserve a locator by packing ONLY if the index says new. Probe
		// first with a read-only lookup so no bogus locator is stored.
		r, err := node.Lookup(context.Background(), fpr)
		if err != nil {
			return 0, false, err
		}
		if r.Exists {
			return Locator(r.Value), true, nil
		}
		loc, err := packer.Add(fpr, data)
		if err != nil {
			return 0, false, err
		}
		if err := node.Insert(context.Background(), fpr, core.Value(loc)); err != nil {
			return 0, false, err
		}
		return loc, false, nil
	}

	// Write 40 unique chunks, each twice.
	type rec struct {
		data []byte
		loc  Locator
	}
	var recs []rec
	for i := 0; i < 40; i++ {
		data := []byte(fmt.Sprintf("container chunk payload %04d padded to some length", i))
		loc, dup, err := store(data)
		if err != nil {
			t.Fatalf("store(%d): %v", i, err)
		}
		if dup {
			t.Fatalf("fresh chunk %d reported duplicate", i)
		}
		recs = append(recs, rec{data, loc})

		loc2, dup2, err := store(data)
		if err != nil {
			t.Fatalf("re-store(%d): %v", i, err)
		}
		if !dup2 {
			t.Fatalf("duplicate chunk %d not detected", i)
		}
		if loc2 != loc {
			t.Fatalf("duplicate chunk %d locator %v != original %v", i, loc2, loc)
		}
	}
	if err := packer.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	// Every locator stored in the index addresses the original bytes.
	for i, r := range recs {
		got, err := sink.ReadChunk(r.loc)
		if err != nil {
			t.Fatalf("ReadChunk(%d): %v", i, err)
		}
		if !bytes.Equal(got, r.data) {
			t.Fatalf("chunk %d bytes differ through index+container path", i)
		}
	}
	// Dedup really packed each chunk once: container count matches
	// unique payload volume, not write volume.
	if st := packer.Stats(); st.ChunksIn != 40 {
		t.Fatalf("packed %d chunks, want 40 (duplicates must not be packed)", st.ChunksIn)
	}
}
