package core

import (
	"context"
	"fmt"
	"testing"

	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

func newNamedNode(t *testing.T, id string) *Node {
	t.Helper()
	n, err := NewNode(NodeConfig{
		ID:            ring.NodeID(id),
		Store:         hashdb.NewMemStore(nil),
		CacheSize:     128,
		BloomExpected: 1 << 16,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	return n
}

func TestNodeEntriesAndRemove(t *testing.T) {
	n := newNamedNode(t, "m")
	defer n.Close()
	for i := uint64(0); i < 100; i++ {
		n.Insert(context.Background(), fp(i), Value(i))
	}
	seen := map[fingerprint.Fingerprint]Value{}
	err := n.Entries(context.Background(), func(f fingerprint.Fingerprint, v Value) bool {
		seen[f] = v
		return true
	})
	if err != nil {
		t.Fatalf("Entries: %v", err)
	}
	if len(seen) != 100 {
		t.Fatalf("Entries visited %d, want 100", len(seen))
	}
	removed, err := n.Remove(fp(5))
	if err != nil || !removed {
		t.Fatalf("Remove = (%v, %v)", removed, err)
	}
	if removed, _ := n.Remove(fp(5)); removed {
		t.Fatal("double Remove reported true")
	}
	r, _ := n.Lookup(context.Background(), fp(5))
	if r.Exists {
		t.Fatal("removed fingerprint still found")
	}
}

func TestEntriesIncludesWriteBackState(t *testing.T) {
	store := hashdb.NewMemStore(nil)
	n, err := NewNode(NodeConfig{ID: "wb", Store: store, CacheSize: 1024, WriteBack: true, BloomExpected: 4096})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer n.Close()
	for i := uint64(0); i < 50; i++ {
		n.LookupOrInsert(context.Background(), fp(i), Value(i))
	}
	count := 0
	if err := n.Entries(context.Background(), func(fingerprint.Fingerprint, Value) bool { count++; return true }); err != nil {
		t.Fatalf("Entries: %v", err)
	}
	if count != 50 {
		t.Fatalf("Entries visited %d dirty-cached inserts, want 50", count)
	}
}

func TestRebalanceAfterAddNode(t *testing.T) {
	nodes := make([]*Node, 3)
	backends := make([]Backend, 3)
	for i := range nodes {
		nodes[i] = newNamedNode(t, fmt.Sprintf("node-%d", i))
		backends[i] = nodes[i]
	}
	c, err := NewCluster(ClusterConfig{}, backends...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()

	const n = 3000
	for i := uint64(0); i < n; i++ {
		if _, err := c.LookupOrInsert(context.Background(), fp(i), Value(i)); err != nil {
			t.Fatalf("LookupOrInsert: %v", err)
		}
	}

	extra := newNamedNode(t, "node-extra")
	if err := c.AddNode(extra); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	stats, err := c.Rebalance(context.Background())
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if stats.Scanned < n {
		t.Fatalf("Scanned = %d, want >= %d", stats.Scanned, n)
	}
	// With 4 nodes, ~1/4 of keys should have moved to the new node.
	if stats.Moved < n/10 || stats.Moved > n/2 {
		t.Fatalf("Moved = %d, want roughly n/4 = %d", stats.Moved, n/4)
	}

	// Every fingerprint must be owned-and-stored: look it up directly on
	// its owner node.
	byID := map[ring.NodeID]*Node{}
	for _, node := range nodes {
		byID[node.ID()] = node
	}
	byID[extra.ID()] = extra
	for i := uint64(0); i < n; i++ {
		owner, err := c.Owner(fp(i))
		if err != nil {
			t.Fatalf("Owner: %v", err)
		}
		r, err := byID[owner].Lookup(context.Background(), fp(i))
		if err != nil {
			t.Fatalf("owner lookup: %v", err)
		}
		if !r.Exists {
			t.Fatalf("fingerprint %d not on its owner %s after rebalance", i, owner)
		}
		if r.Value != Value(i) {
			t.Fatalf("fingerprint %d value = %d after move, want %d", i, r.Value, i)
		}
	}
	// The new node actually holds entries.
	st, _ := extra.Stats(context.Background())
	if st.StoreEntries == 0 {
		t.Fatal("new node holds nothing after rebalance")
	}
	// Cluster-level dedup still intact: nothing re-inserted.
	for i := uint64(0); i < n; i++ {
		r, err := c.LookupOrInsert(context.Background(), fp(i), 999)
		if err != nil {
			t.Fatalf("post-rebalance LookupOrInsert: %v", err)
		}
		if !r.Exists {
			t.Fatalf("fingerprint %d lost by rebalance", i)
		}
	}
}

func TestRebalanceNoMovesWhenStable(t *testing.T) {
	c := newTestCluster(t, 3, ClusterConfig{})
	for i := uint64(0); i < 500; i++ {
		c.LookupOrInsert(context.Background(), fp(i), Value(i))
	}
	stats, err := c.Rebalance(context.Background())
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if stats.Moved != 0 {
		t.Fatalf("stable cluster moved %d entries, want 0", stats.Moved)
	}
}

func TestDrainNode(t *testing.T) {
	nodes := make([]*Node, 3)
	backends := make([]Backend, 3)
	for i := range nodes {
		nodes[i] = newNamedNode(t, fmt.Sprintf("node-%d", i))
		backends[i] = nodes[i]
	}
	c, err := NewCluster(ClusterConfig{}, backends...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()

	const n = 2000
	for i := uint64(0); i < n; i++ {
		c.LookupOrInsert(context.Background(), fp(i), Value(i))
	}
	victimStats, _ := nodes[1].Stats(context.Background())
	if victimStats.StoreEntries == 0 {
		t.Fatal("victim node empty before drain; test is vacuous")
	}

	stats, err := c.DrainNode(context.Background(), "node-1")
	if err != nil {
		t.Fatalf("DrainNode: %v", err)
	}
	if stats.Moved != victimStats.StoreEntries {
		t.Fatalf("Moved = %d, want all %d victim entries", stats.Moved, victimStats.StoreEntries)
	}
	if c.Size() != 2 {
		t.Fatalf("Size = %d after drain, want 2", c.Size())
	}

	// All fingerprints still dedup correctly through the smaller cluster.
	for i := uint64(0); i < n; i++ {
		r, err := c.LookupOrInsert(context.Background(), fp(i), 999)
		if err != nil {
			t.Fatalf("LookupOrInsert after drain: %v", err)
		}
		if !r.Exists {
			t.Fatalf("fingerprint %d lost by drain", i)
		}
	}
	// The drained node is empty and can be closed by its owner.
	drained, _ := nodes[1].Stats(context.Background())
	if drained.StoreEntries != 0 {
		t.Fatalf("drained node still holds %d entries", drained.StoreEntries)
	}
	nodes[1].Close()
}

func TestDrainLastNodeRefused(t *testing.T) {
	node := newNamedNode(t, "only")
	c, err := NewCluster(ClusterConfig{}, node)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	if _, err := c.DrainNode(context.Background(), "only"); err == nil {
		t.Fatal("draining the last node succeeded")
	}
	if _, err := c.DrainNode(context.Background(), "ghost"); err == nil {
		t.Fatal("draining an unknown node succeeded")
	}
}
