package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/lru"
	"shhc/internal/parallel"
)

// This file implements the node's two-phase asynchronous lookup pipeline.
//
// Phase 1 (the RAM walk) runs the Figure 4 RAM tiers — LRU cache, Bloom
// filter — under the fingerprint's stripe lock, exactly as the fully
// locked design does. Phase 2 (the SSD phase) releases the stripe lock
// before touching the store, so one modeled SSD round-trip no longer
// stalls every other fingerprint on the stripe.
//
// What used to be guaranteed by "the whole walk holds the stripe lock" —
// per-fingerprint serialization, hence exactly-once inserts — is instead
// guaranteed by a per-stripe in-flight table: before its SSD phase starts,
// an operation registers its fingerprint; any later operation on the same
// fingerprint finds the entry and waits for the flight to land instead of
// issuing a second probe or a second insert. The invariant becomes:
//
//	a fingerprint's RAM walk runs under its stripe lock; its SSD phase
//	is serialized by the stripe's in-flight table.
//
// Cancellation. Every operation takes a context, and a flight's device
// work is decoupled from the caller that started it:
//
//   - When the caller's context can be cancelled, the SSD phase runs in a
//     prober goroutine that also completes the flight (counters, cache
//     install, retirement). The owner merely waits — so a cancelled owner
//     hands the flight off: it returns ctx.Err() immediately while the
//     prober lands the flight for any waiting riders.
//   - Each flight carries an interest count (the owner plus every rider).
//     When the last interested party abandons, the flight's abort flag is
//     raised, and the prober aborts before issuing the next device
//     operation (I/O already issued completes; it is never revoked).
//   - A rider whose context is cancelled stops waiting and returns
//     ctx.Err() without touching the flight table. A rider that waited
//     out a flight which landed with a context error (its owner was
//     cancelled and nobody stayed interested) does not adopt that error:
//     it re-runs the walk and claims the fingerprint itself, so an
//     abandoned flight never poisons later operations.
//   - When the caller's context can never be cancelled (ctx.Done() ==
//     nil, e.g. context.Background()), the prober goroutine is skipped
//     and the SSD phase runs inline in the caller — the exact PR-2 fast
//     path, with zero added overhead.
//
// Lock ordering: an operation holds at most one stripe lock at a time and
// never sleeps on a flight while holding it (it unlocks, waits on
// flight.done, then relocks). Flight completion re-acquires the stripe
// lock, re-validates nothing was torn down (closed), installs the result
// into the cache, updates the stripe counters, removes the in-flight
// entry, and only then wakes waiters — so a woken waiter re-running its
// RAM walk finds the installed cache entry.

// flight is one in-progress SSD phase for a fingerprint: a probe,
// optionally followed by the insert the probe's miss calls for. Outcome
// fields are written by the prober before done is closed and read by
// waiters only after <-done.
type flight struct {
	done chan struct{}
	// exists reports whether the fingerprint is present in the index when
	// the flight lands — true both for a probe hit and after a successful
	// insert, so a waiter always reads its answer as "duplicate, with
	// val".
	exists bool
	val    Value
	err    error
	// ownerRes is the owner-role result (SourceStore/SourceNew/...); a
	// cancelled owner's result is simply never read.
	ownerRes LookupResult

	// interest counts parties awaiting the flight's outcome: the owner
	// plus every rider. Guarded by the owning stripe's mutex. When the
	// last interested party abandons (cancellation), aborted is raised so
	// the prober stops issuing device I/O. A plain atomic flag — not a
	// context — because the prober only ever polls it between device
	// operations; this keeps flight registration allocation-free on the
	// hot path.
	interest int
	aborted  atomic.Bool
}

// abortErr is the error an aborted flight lands with when every
// interested party left before the next device operation.
var abortErr = context.Canceled

// isCtxErr reports whether err is a context cancellation or deadline
// error — the class of flight failures a waiting rider must not adopt.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// registerFlightLocked creates and registers a flight for fp. Caller holds
// s.mu, owns the stripe for fp, and must have checked fp is not in flight.
func (n *Node) registerFlightLocked(s *nodeStripe, fp fingerprint.Fingerprint) *flight {
	f := &flight{done: make(chan struct{}), interest: 1}
	s.inflight[fp] = f
	n.flights.Add(1)
	return f
}

// abandonFlight is called by an interested party (owner or rider) whose
// context was cancelled while the flight was in the air: it withdraws its
// interest and, when it was the last one, aborts the probe. Harmless on a
// flight that already landed. Caller must not hold s.mu.
func (n *Node) abandonFlight(s *nodeStripe, f *flight) {
	s.mu.Lock()
	f.interest--
	if f.interest <= 0 {
		f.aborted.Store(true)
	}
	s.mu.Unlock()
}

// failFlight publishes err to any waiters, retires the flight, and returns
// err for the owner. Caller must not hold s.mu.
func (n *Node) failFlight(s *nodeStripe, fp fingerprint.Fingerprint, f *flight, err error) error {
	f.err = err
	s.mu.Lock()
	delete(s.inflight, fp)
	s.mu.Unlock()
	close(f.done)
	n.flights.Done()
	return err
}

// lookupAsync runs the two-phase Figure 4 flow for one fingerprint.
// insert selects LookupOrInsert semantics (insert on miss) over read-only
// Lookup semantics.
func (n *Node) lookupAsync(ctx context.Context, fp fingerprint.Fingerprint, val Value, insert bool) (LookupResult, error) {
	s := &n.stripes[n.stripeIndex(fp)]
	cancellable := ctx.Done() != nil
	// Phase 0 — the lock-free cache-hit fast path: no stripe mutex, no
	// allocation, no phase-timing observation (the histograms are lock-
	// guarded). The cache is the top Figure 4 tier, so a hit here can never
	// shadow a fresher destage-buffer or SSD answer; a miss proves nothing
	// and falls through to the locked walk, which re-checks the cache.
	if n.cache != nil && !n.lockedReads && !n.closedFast.Load() {
		if cancellable {
			if err := ctx.Err(); err != nil {
				return LookupResult{}, err
			}
		}
		if v, ok := n.cache.GetFast(fp); ok {
			s.fastHits.Add(1)
			return LookupResult{Exists: true, Value: Value(v), Source: SourceCache}, nil
		}
	}
	for {
		if cancellable {
			if err := ctx.Err(); err != nil {
				return LookupResult{}, err
			}
		}
		s.mu.Lock()
		if n.closed {
			s.mu.Unlock()
			return LookupResult{}, errNodeClosed
		}

		// Phase 1 — RAM tiers, under the stripe lock.
		if n.cache != nil {
			t0 := time.Now()
			v, ok := n.cache.Get(fp)
			s.histCache.Observe(time.Since(t0))
			if ok {
				s.cacheHits++
				s.lookups++
				s.mu.Unlock()
				return LookupResult{Exists: true, Value: Value(v), Source: SourceCache}, nil
			}
		}
		if n.bloom != nil {
			t0 := time.Now()
			neg := !n.bloom.MayContain(fp)
			s.histBloom.Observe(time.Since(t0))
			if neg {
				if !insert {
					s.bloomShort++
					s.lookups++
					s.mu.Unlock()
					return LookupResult{Exists: false, Source: SourceBloom}, nil
				}
				return n.bloomInsert(ctx, s, fp, val)
			}
		}
		// Destage dirty buffer: an entry evicted from the cache but not
		// yet group-committed to the SSD is still part of the logical
		// store; answering it here (under the stripe lock, before the SSD
		// arm) keeps the Figure 4 tier ordering exact per fingerprint.
		if n.dst != nil {
			if v, ok := n.dst.peek(fp); ok {
				s.destageHits++
				s.storeHits++
				s.lookups++
				s.mu.Unlock()
				return LookupResult{Exists: true, Value: v, Source: SourceStore}, nil
			}
		}

		// Phase 2 — the SSD arm. Join an in-flight operation on the same
		// fingerprint as a rider, or run our own probe with the stripe
		// lock released.
		if f, ok := s.inflight[fp]; ok {
			f.interest++
			s.mu.Unlock()
			if cancellable {
				select {
				case <-f.done:
				case <-ctx.Done():
					n.abandonFlight(s, f)
					return LookupResult{}, ctx.Err()
				}
			} else {
				<-f.done
			}
			if f.err != nil {
				if isCtxErr(f.err) {
					// The flight's owner was cancelled and nobody stayed
					// interested; its abandonment is not our failure.
					// Re-run the walk and claim the fingerprint ourselves.
					continue
				}
				return LookupResult{}, f.err
			}
			if f.exists {
				// No cache install here: only the flight's prober writes
				// the cache, inside the critical section that retires the
				// flight. A waiter installing after re-locking could race
				// a Remove (migration) that ran between the flight's
				// completion and this wake-up and resurrect the entry —
				// Remove's wait-out-the-flight guard cannot see waiters.
				s.mu.Lock()
				s.coalesced++
				s.storeHits++
				s.lookups++
				s.mu.Unlock()
				return LookupResult{Exists: true, Value: f.val, Source: SourceStore}, nil
			}
			if !insert {
				s.mu.Lock()
				s.coalesced++
				s.storeMiss++
				if n.bloom != nil {
					s.bloomFalse++
				}
				s.lookups++
				s.mu.Unlock()
				return LookupResult{Exists: false, Source: SourceNew}, nil
			}
			// The flight we joined was a read-only probe that missed; we
			// still owe the insert. Re-run the walk and claim the
			// fingerprint ourselves.
			continue
		}
		f := n.registerFlightLocked(s, fp)
		s.mu.Unlock()
		if !cancellable {
			// Background-context fast path: no prober goroutine, the SSD
			// phase runs inline exactly as before contexts existed.
			return n.ssdPhase(s, fp, val, insert, f, false)
		}
		go n.ssdPhase(s, fp, val, insert, f, true)
		select {
		case <-f.done:
			if f.err != nil {
				return LookupResult{}, f.err
			}
			// The wb destage-error drain happens here, on the waiting
			// owner, not in the prober: a prober's return value is
			// discarded, and a drain there would swallow the failure
			// (or lose it entirely if the owner had abandoned). The
			// !Exists guard mirrors the inline path exactly — only the
			// miss-with-insert branch drains, so a duplicate answer is
			// never displaced by an unrelated destage failure.
			if insert && n.wb && !f.ownerRes.Exists {
				if derr := n.takeDestageErr(); derr != nil {
					return LookupResult{}, derr
				}
			}
			return f.ownerRes, nil
		case <-ctx.Done():
			// Ownership handoff: the prober keeps flying and completes
			// the flight for any riders; we only stop waiting. If no
			// rider is interested the probe is aborted instead.
			n.abandonFlight(s, f)
			return LookupResult{}, ctx.Err()
		}
	}
}

// bloomInsert handles the Bloom-negative insert arm: the filter proved fp
// new, so no probe is needed. Caller holds s.mu; bloomInsert releases it.
// The filter add happens before the stripe lock drops, which steers every
// later lookup of fp into the SSD arm where the in-flight entry (for the
// write-through store put) serializes it — this is what keeps the insert
// exactly-once without holding the lock across the SSD write. A cancelled
// owner abandons the flight like any other: if the put had not started it
// is aborted (the filter stays conservatively stale — one extra probe
// later, never a wrong answer); once started, it runs to completion.
func (n *Node) bloomInsert(ctx context.Context, s *nodeStripe, fp fingerprint.Fingerprint, val Value) (LookupResult, error) {
	n.bloom.Add(fp)
	if n.wb {
		// Write-back: the insert is pure RAM (destage happens on
		// eviction), so it completes inside phase 1 — except that an
		// eviction it displaced must be journal-durable before the ack
		// (the barrier runs with no locks held and is a no-op when
		// nothing evicted).
		s.bloomShort++
		s.lookups++
		s.inserts++
		before := n.journalLSN()
		n.cache.PutDirty(fp, lru.Value(val))
		s.mu.Unlock()
		n.journalBarrierFrom(before)
		if derr := n.takeDestageErr(); derr != nil {
			return LookupResult{}, derr
		}
		return LookupResult{Exists: false, Source: SourceBloom}, nil
	}
	f := n.registerFlightLocked(s, fp)
	s.mu.Unlock()
	if ctx.Done() == nil {
		return n.directInsert(s, fp, val, f)
	}
	go n.directInsert(s, fp, val, f)
	select {
	case <-f.done:
		if f.err != nil {
			return LookupResult{}, f.err
		}
		return f.ownerRes, nil
	case <-ctx.Done():
		n.abandonFlight(s, f)
		return LookupResult{}, ctx.Err()
	}
}

// directInsert performs the Bloom-negative write-through store put with no
// locks held, then completes the flight. It is the prober for bloomInsert
// flights.
func (n *Node) directInsert(s *nodeStripe, fp fingerprint.Fingerprint, val Value, f *flight) (LookupResult, error) {
	if f.aborted.Load() {
		// Every interested party left before the write started.
		return LookupResult{}, n.failFlight(s, fp, f, abortErr)
	}
	t0 := time.Now()
	_, perr := n.store.Put(fp, val)
	s.histSSD.Observe(time.Since(t0))
	if perr != nil {
		return LookupResult{}, n.failFlight(s, fp, f, fmt.Errorf("core: node %s: insert %s: %w", n.id, fp.Short(), perr))
	}
	f.exists, f.val = true, val
	f.ownerRes = LookupResult{Exists: false, Source: SourceBloom}
	s.mu.Lock()
	s.bloomShort++
	s.lookups++
	s.inserts++
	if n.cache != nil {
		n.cache.Put(fp, lru.Value(val))
	}
	delete(s.inflight, fp)
	s.mu.Unlock()
	close(f.done)
	n.flights.Done()
	return LookupResult{Exists: false, Source: SourceBloom}, nil
}

// ssdPhase runs fp's probe — and, on a miss with insert semantics, the
// insert — with no locks held, then completes the flight: counters and
// cache install land under one stripe-lock hold together with the
// in-flight entry's removal, and waiters wake only after that. It is the
// prober for lookup flights: when the owner's context is cancellable it
// runs in its own goroutine and survives the owner's departure. The
// flight's abort flag gates each device operation — once every interested
// party has abandoned, the next device operation is skipped and the
// flight lands with the cancellation error (which riders never adopt).
// detached marks the prober-goroutine mode, where the return value is
// discarded and the waiting owner reads the flight instead.
func (n *Node) ssdPhase(s *nodeStripe, fp fingerprint.Fingerprint, val Value, insert bool, f *flight, detached bool) (LookupResult, error) {
	if f.aborted.Load() {
		return LookupResult{}, n.failFlight(s, fp, f, abortErr)
	}
	t0 := time.Now()
	v, ok, err := n.store.Get(fp)
	if err != nil {
		s.histSSD.Observe(time.Since(t0))
		return LookupResult{}, n.failFlight(s, fp, f, fmt.Errorf("core: node %s: lookup: %w", n.id, err))
	}
	if ok {
		s.histSSD.Observe(time.Since(t0))
		f.exists, f.val = true, v
		f.ownerRes = LookupResult{Exists: true, Value: v, Source: SourceStore}
		s.mu.Lock()
		s.storeHits++
		s.lookups++
		if n.cache != nil {
			n.cache.Put(fp, lru.Value(v))
		}
		delete(s.inflight, fp)
		s.mu.Unlock()
		close(f.done)
		n.flights.Done()
		return f.ownerRes, nil
	}
	if !insert {
		s.histSSD.Observe(time.Since(t0))
		f.ownerRes = LookupResult{Exists: false, Source: SourceNew}
		s.mu.Lock()
		s.storeMiss++
		if n.bloom != nil {
			s.bloomFalse++
		}
		s.lookups++
		delete(s.inflight, fp)
		s.mu.Unlock()
		close(f.done)
		n.flights.Done()
		return f.ownerRes, nil
	}
	// Miss with insert semantics. Write-through pays the store write out
	// here with no locks held; write-back parks the entry dirty in the
	// cache during completion. The write is skipped if everyone lost
	// interest while the probe was in the air — the fingerprint simply
	// stays unrecorded, which is what a caller that got ctx.Err() must
	// assume anyway.
	if !n.wb {
		if f.aborted.Load() {
			s.histSSD.Observe(time.Since(t0))
			return LookupResult{}, n.failFlight(s, fp, f, abortErr)
		}
		if _, perr := n.store.Put(fp, val); perr != nil {
			s.histSSD.Observe(time.Since(t0))
			return LookupResult{}, n.failFlight(s, fp, f, fmt.Errorf("core: node %s: insert %s: %w", n.id, fp.Short(), perr))
		}
	}
	s.histSSD.Observe(time.Since(t0))
	f.exists, f.val = true, val // waiters read our insert as their duplicate
	f.ownerRes = LookupResult{Exists: false, Source: SourceNew}
	before := n.journalLSN()
	s.mu.Lock()
	s.storeMiss++
	if n.bloom != nil {
		s.bloomFalse++
		n.bloom.Add(fp)
	}
	s.lookups++
	s.inserts++
	if n.cache != nil {
		if n.wb {
			n.cache.PutDirty(fp, lru.Value(val))
		} else {
			n.cache.Put(fp, lru.Value(val))
		}
	}
	delete(s.inflight, fp)
	s.mu.Unlock()
	// An eviction the write-back install displaced must be journal-durable
	// before anyone reads this flight as complete.
	n.journalBarrierFrom(before)
	close(f.done)
	n.flights.Done()
	// The drain must only happen where the return value is read: inline
	// mode drains here; in detached (prober-goroutine) mode the waiting
	// owner drains after f.done instead — a drain here would consume the
	// failure and throw it away with the ignored return value.
	if n.wb && !detached {
		if derr := n.takeDestageErr(); derr != nil {
			return LookupResult{}, derr
		}
	}
	return f.ownerRes, nil
}

// ownedFlight is one flight a batch registered for itself during its RAM
// pass, resolved by the batch's single coalesced SSD phase.
type ownedFlight struct {
	idx    int  // input index of the item that owns the flight
	si     int  // stripe index
	direct bool // Bloom-negative insert: no probe needed, just the put
	f      *flight
	// Probe outcome (valid after the SSD phase; direct inserts skip it).
	exists bool
	val    Value
	// joiners are later items of this batch with the same fingerprint;
	// they resolve as duplicates of the owner, costing no extra I/O.
	joiners []int
}

// foreignJoin is a batch item whose fingerprint is in flight on behalf of
// some other caller; the batch waits for that flight and adopts its
// outcome.
type foreignJoin struct {
	idx int
	f   *flight
}

// batchAsync runs a batch through the two-phase pipeline: one RAM pass per
// stripe under its lock, a single coalesced SSD phase with no stripe locks
// held (each distinct hash-table page is read once, reads and writes
// overlap up to the store's batch parallelism), then a per-stripe
// completion pass. Results are in input order; a fingerprint appearing
// twice resolves in input order, the second occurrence seeing the first as
// a duplicate.
//
// Cancelling ctx mid-batch stops the coalesced SSD phase from issuing
// further device operations and fails the batch with ctx.Err(). The
// batch's own flights are failed with the context error — riders from
// other operations waiting on them observe a cancellation, never adopt
// it, and re-run their own walks (no handoff on the batch path; the
// batch's whole wave is cancelled together).
func (n *Node) batchAsync(ctx context.Context, count int, fpOf func(int) fingerprint.Fingerprint, valOf func(int) Value, insert bool) ([]LookupResult, error) {
	results := make([]LookupResult, count)
	// One journal barrier covers the whole batch: every eviction its RAM
	// pass and SSD-phase installs displaced is durable before the batch
	// acknowledges, at the cost of a single shared group commit.
	journalBefore := n.journalLSN()

	// Phase 0 — lock-free prepass: resolve cache hits with no stripe lock
	// before grouping. A resolved item (Source is set; the zero Source
	// marks unresolved) never enters the locked RAM pass, so a cache-
	// resident batch touches no mutex at all.
	remaining := count
	if n.cache != nil && !n.lockedReads && !n.closedFast.Load() {
		for i := 0; i < count; i++ {
			fp := fpOf(i)
			if v, ok := n.cache.GetFast(fp); ok {
				n.stripes[n.stripeIndex(fp)].fastHits.Add(1)
				results[i] = LookupResult{Exists: true, Value: Value(v), Source: SourceCache}
				remaining--
			}
		}
	}
	if remaining == 0 {
		return results, nil
	}

	groups := make(map[int][]int, len(n.stripes))
	for i := 0; i < count; i++ {
		if results[i].Source != 0 {
			continue
		}
		groups[n.stripeIndex(fpOf(i))] = append(groups[n.stripeIndex(fpOf(i))], i)
	}

	var (
		owned     []ownedFlight
		ownedByFP = make(map[fingerprint.Fingerprint]int)
		foreign   []foreignJoin
	)
	// leaveForeigns withdraws interest from foreign flights not yet
	// waited out, starting at index from.
	leaveForeigns := func(from int) {
		for _, fj := range foreign[from:] {
			n.abandonFlight(&n.stripes[n.stripeIndex(fpOf(fj.idx))], fj.f)
		}
	}
	// abort fails every flight this batch registered so waiters in other
	// goroutines never hang on a batch that errored out.
	abort := func(err error) ([]LookupResult, error) {
		for i := range owned {
			n.failFlight(&n.stripes[owned[i].si], fpOf(owned[i].idx), owned[i].f, err)
		}
		leaveForeigns(0)
		return nil, err
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase A — RAM pass, one stripe-lock hold per stripe group.
	for si, idxs := range groups {
		s := &n.stripes[si]
		s.mu.Lock()
		for _, i := range idxs {
			if n.closed {
				s.mu.Unlock()
				return abort(errNodeClosed)
			}
			fp := fpOf(i)
			if n.cache != nil {
				t0 := time.Now()
				v, ok := n.cache.Get(fp)
				s.histCache.Observe(time.Since(t0))
				if ok {
					s.cacheHits++
					s.lookups++
					results[i] = LookupResult{Exists: true, Value: Value(v), Source: SourceCache}
					continue
				}
			}
			if n.bloom != nil {
				t0 := time.Now()
				neg := !n.bloom.MayContain(fp)
				s.histBloom.Observe(time.Since(t0))
				if neg {
					if !insert {
						s.bloomShort++
						s.lookups++
						results[i] = LookupResult{Exists: false, Source: SourceBloom}
						continue
					}
					n.bloom.Add(fp)
					if n.wb {
						s.bloomShort++
						s.lookups++
						s.inserts++
						n.cache.PutDirty(fp, lru.Value(valOf(i)))
						results[i] = LookupResult{Exists: false, Source: SourceBloom}
						continue
					}
					// Write-through: register a direct-insert flight; the
					// put itself joins the coalesced SSD phase.
					ownedByFP[fp] = len(owned)
					owned = append(owned, ownedFlight{idx: i, si: si, direct: true, f: n.registerFlightLocked(s, fp)})
					continue
				}
			}
			if n.dst != nil {
				if v, ok := n.dst.peek(fp); ok {
					s.destageHits++
					s.storeHits++
					s.lookups++
					results[i] = LookupResult{Exists: true, Value: v, Source: SourceStore}
					continue
				}
			}
			if oi, ok := ownedByFP[fp]; ok {
				owned[oi].joiners = append(owned[oi].joiners, i)
				continue
			}
			if f, ok := s.inflight[fp]; ok {
				f.interest++
				foreign = append(foreign, foreignJoin{idx: i, f: f})
				continue
			}
			ownedByFP[fp] = len(owned)
			owned = append(owned, ownedFlight{idx: i, si: si, f: n.registerFlightLocked(s, fp)})
		}
		s.mu.Unlock()
	}

	if err := ctx.Err(); err != nil {
		return abort(err)
	}

	// Phase B — the coalesced SSD phase, no stripe locks held. The whole
	// wave is observed as one SSD-phase sample, attributed to the first
	// owned flight's stripe (per-stripe attribution of a cross-stripe
	// wave is an approximation; the merged digest in Stats is what
	// matters).
	observeWave := func(t0 time.Time) {
		if len(owned) > 0 {
			n.stripes[owned[0].si].histSSD.Observe(time.Since(t0))
		}
	}
	var probes []int // indices into owned that need a store read
	for oi := range owned {
		if !owned[oi].direct {
			probes = append(probes, oi)
		}
	}
	t0 := time.Now()
	if len(probes) > 0 {
		fps := make([]fingerprint.Fingerprint, len(probes))
		for k, oi := range probes {
			fps[k] = fpOf(owned[oi].idx)
		}
		if bg, ok := n.store.(hashdb.BatchGetter); ok {
			vals, found, err := bg.GetBatch(ctx, fps)
			if err != nil {
				observeWave(t0)
				if isCtxErr(err) {
					return abort(err)
				}
				return abort(fmt.Errorf("core: node %s: batch lookup: %w", n.id, err))
			}
			for k, oi := range probes {
				owned[oi].exists, owned[oi].val = found[k], vals[k]
			}
		} else {
			err := parallel.Do(ctx, len(probes), parallel.IODepth, func(k int) error {
				oi := probes[k]
				v, ok, gerr := n.store.Get(fps[k])
				if gerr != nil {
					return gerr
				}
				owned[oi].exists, owned[oi].val = ok, v
				return nil
			})
			if err != nil {
				observeWave(t0)
				if isCtxErr(err) {
					return abort(err)
				}
				return abort(fmt.Errorf("core: node %s: batch lookup: %w", n.id, err))
			}
		}
	}
	if insert && !n.wb {
		// Write-through inserts: direct (Bloom-negative) flights plus
		// probe misses. Stores with a batched write path coalesce them
		// into one read-modify-write per bucket page (the group-committed
		// twin of GetBatch); otherwise per-key puts overlap like the
		// reads.
		var puts []int
		for oi := range owned {
			if owned[oi].direct || !owned[oi].exists {
				puts = append(puts, oi)
			}
		}
		if len(puts) > 0 {
			var err error
			if bp, ok := n.store.(hashdb.BatchPutter); ok {
				pairs := make([]hashdb.Pair, len(puts))
				for k, oi := range puts {
					pairs[k] = hashdb.Pair{FP: fpOf(owned[oi].idx), Val: valOf(owned[oi].idx)}
				}
				_, _, err = bp.PutBatch(ctx, pairs)
			} else {
				err = parallel.Do(ctx, len(puts), parallel.IODepth, func(k int) error {
					oi := puts[k]
					_, perr := n.store.Put(fpOf(owned[oi].idx), valOf(owned[oi].idx))
					return perr
				})
			}
			if err != nil {
				observeWave(t0)
				if isCtxErr(err) {
					return abort(err)
				}
				return abort(fmt.Errorf("core: node %s: batch insert: %w", n.id, err))
			}
		}
	}
	observeWave(t0)

	// Phase C — completion, one stripe-lock hold per stripe, waking
	// waiters only after the stripe's results are installed.
	byStripe := make(map[int][]int, len(groups))
	for oi := range owned {
		byStripe[owned[oi].si] = append(byStripe[owned[oi].si], oi)
	}
	for si, ois := range byStripe {
		s := &n.stripes[si]
		s.mu.Lock()
		for _, oi := range ois {
			o := &owned[oi]
			fp := fpOf(o.idx)
			val := valOf(o.idx)
			switch {
			case o.direct:
				s.bloomShort++
				s.lookups++
				s.inserts++
				if n.cache != nil {
					n.cache.Put(fp, lru.Value(val))
				}
				o.f.exists, o.f.val = true, val
				results[o.idx] = LookupResult{Exists: false, Source: SourceBloom}
			case o.exists:
				s.storeHits++
				s.lookups++
				if n.cache != nil {
					n.cache.Put(fp, lru.Value(o.val))
				}
				o.f.exists, o.f.val = true, o.val
				results[o.idx] = LookupResult{Exists: true, Value: o.val, Source: SourceStore}
			case insert:
				s.storeMiss++
				if n.bloom != nil {
					s.bloomFalse++
					n.bloom.Add(fp)
				}
				s.lookups++
				s.inserts++
				if n.cache != nil {
					if n.wb {
						n.cache.PutDirty(fp, lru.Value(val))
					} else {
						n.cache.Put(fp, lru.Value(val))
					}
				}
				o.f.exists, o.f.val = true, val
				results[o.idx] = LookupResult{Exists: false, Source: SourceNew}
			default:
				s.storeMiss++
				if n.bloom != nil {
					s.bloomFalse++
				}
				s.lookups++
				results[o.idx] = LookupResult{Exists: false, Source: SourceNew}
			}
			// Same-batch duplicates: later occurrences see the owner's
			// outcome as their duplicate (or its miss, for read-only
			// batches), exactly as sequential processing would.
			for _, j := range o.joiners {
				s.coalesced++
				s.lookups++
				if o.f.exists {
					s.storeHits++
					results[j] = LookupResult{Exists: true, Value: o.f.val, Source: SourceStore}
				} else {
					s.storeMiss++
					if n.bloom != nil {
						s.bloomFalse++
					}
					results[j] = LookupResult{Exists: false, Source: SourceNew}
				}
			}
			delete(s.inflight, fp)
		}
		s.mu.Unlock()
		for _, oi := range ois {
			close(owned[oi].f.done)
			n.flights.Done()
		}
	}

	// Foreign flights: adopt the outcome another caller's SSD phase
	// produced. The rare read-only-miss + insert case re-runs the full
	// per-item pipeline.
	cancellable := ctx.Done() != nil
	for fi, fj := range foreign {
		if cancellable {
			select {
			case <-fj.f.done:
			case <-ctx.Done():
				n.abandonFlight(&n.stripes[n.stripeIndex(fpOf(fj.idx))], fj.f)
				leaveForeigns(fi + 1)
				return nil, ctx.Err()
			}
		} else {
			<-fj.f.done
		}
		if fj.f.err != nil {
			if isCtxErr(fj.f.err) {
				// The foreign flight's owner was cancelled; re-run this
				// item through the per-item pipeline instead of adopting
				// the abandonment.
				r, err := n.lookupAsync(ctx, fpOf(fj.idx), valOf(fj.idx), insert)
				if err != nil {
					leaveForeigns(fi + 1)
					return nil, fmt.Errorf("core: batch item %d: %w", fj.idx, err)
				}
				results[fj.idx] = r
				continue
			}
			leaveForeigns(fi + 1)
			return nil, fmt.Errorf("core: batch item %d: %w", fj.idx, fj.f.err)
		}
		fp := fpOf(fj.idx)
		s := &n.stripes[n.stripeIndex(fp)]
		if fj.f.exists {
			// Like the single-item waiter: adopt the outcome but do not
			// install into the cache (a Remove may have run since the
			// foreign flight landed).
			s.mu.Lock()
			s.coalesced++
			s.storeHits++
			s.lookups++
			s.mu.Unlock()
			results[fj.idx] = LookupResult{Exists: true, Value: fj.f.val, Source: SourceStore}
			continue
		}
		if !insert {
			s.mu.Lock()
			s.coalesced++
			s.storeMiss++
			if n.bloom != nil {
				s.bloomFalse++
			}
			s.lookups++
			s.mu.Unlock()
			results[fj.idx] = LookupResult{Exists: false, Source: SourceNew}
			continue
		}
		r, err := n.lookupAsync(ctx, fp, valOf(fj.idx), true)
		if err != nil {
			leaveForeigns(fi + 1)
			return nil, fmt.Errorf("core: batch item %d: %w", fj.idx, err)
		}
		results[fj.idx] = r
	}

	if n.wb {
		n.journalBarrierFrom(journalBefore)
		if derr := n.takeDestageErr(); derr != nil {
			return nil, derr
		}
	}
	return results, nil
}
