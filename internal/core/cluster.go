package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"shhc/internal/fingerprint"
	"shhc/internal/ring"
)

// Backend is one hash node as seen by the cluster router: either a local
// *Node or an RPC client talking to a remote node. Implementations must be
// safe for concurrent use, and every operation must honor its context:
// return promptly with ctx.Err() once the context is cancelled or its
// deadline passes.
type Backend interface {
	// ID returns the node's ring identity.
	ID() ring.NodeID
	// Lookup answers whether the fingerprint is stored, without inserting.
	Lookup(ctx context.Context, fp fingerprint.Fingerprint) (LookupResult, error)
	// LookupOrInsert runs the Figure 4 flow.
	LookupOrInsert(ctx context.Context, fp fingerprint.Fingerprint, val Value) (LookupResult, error)
	// BatchLookupOrInsert runs the flow for each pair, in order.
	BatchLookupOrInsert(ctx context.Context, pairs []Pair) ([]LookupResult, error)
	// Insert unconditionally records fp -> val.
	Insert(ctx context.Context, fp fingerprint.Fingerprint, val Value) error
	// Stats snapshots the node's counters.
	Stats(ctx context.Context) (NodeStats, error)
	// Close releases the backend.
	Close() error
}

var _ Backend = (*Node)(nil)

// ClusterConfig configures the cluster router.
type ClusterConfig struct {
	// VirtualNodes per backend on the ring; 0 selects the default.
	VirtualNodes int
	// Replicas is the number of nodes each fingerprint is written to.
	// 1 (default) reproduces the paper; >1 enables the fault-tolerance
	// extension: inserts fan out to the owner's successor set with quorum
	// acknowledgment (see WriteQuorum), reads fail over to successor
	// replicas, divergent replicas are healed by read-repair, and the
	// anti-entropy sweep re-replicates under-replicated ranges.
	Replicas int
	// WriteQuorum is the number of replicas (the deciding node included)
	// that must durably acknowledge an insert before it returns. 0 selects
	// a majority (Replicas/2 + 1); values are clamped to [1, Replicas].
	// With WriteQuorum == Replicas every acked insert is on every replica;
	// below that, stragglers are completed asynchronously via the repair
	// queue. An insert that cannot reach the quorum (mirrors down) does
	// not fail — the deciding node's copy is already durable, so it
	// degrades to the safe "new" answer (the client uploads the chunk)
	// with ReplicationStats.QuorumFailures counting the under-replicated
	// ack and the repair queue / anti-entropy converging it. Ignored when
	// Replicas is 1.
	WriteQuorum int
	// DisableReadRepair turns off miss verification and read-repair on the
	// lookup paths (Replicas > 1 only): a lookup then returns the first
	// answer — hit or miss — from any replica, which restores the fastest
	// possible miss at the cost of trusting a single replica's "new". Keep
	// it off (the default) where a spurious "new" for a stored fingerprint
	// is not acceptable, e.g. when a replica could have lost its disk.
	DisableReadRepair bool
	// AntiEntropyInterval adds a periodic tick to the background
	// anti-entropy sweeper (Replicas > 1 only). The sweeper itself always
	// runs with replication on — membership changes (AddNode, RemoveNode,
	// JoinNode, DrainNode) trigger a sweep regardless, because the repair
	// queue drops overflow and failed repairs on the promise that a sweep
	// heals them. 0 keeps only the membership-triggered sweeps;
	// AntiEntropy can also be called manually at any time.
	AntiEntropyInterval time.Duration
	// HedgeAfter enables hedged reads on Lookup when Replicas > 1: if the
	// owner has not answered after this long, the same read is issued to
	// the next replica and the first hit wins — the loser's probe is
	// cancelled. Zero disables hedging. This bounds tail latency for
	// duplicate lookups (one slow device or node no longer defines p99) at
	// the cost of a small amount of duplicate read load. A miss, by
	// contrast, does not win the race: replicas are durable copies now, so
	// a single successor's "new" for a fingerprint the slow owner holds is
	// a divergence, not an answer — the race waits for a hit (repairing
	// the missing replica) or for every replica to confirm the miss. With
	// DisableReadRepair the old first-answer-wins behavior returns.
	HedgeAfter time.Duration
}

// Cluster routes fingerprint operations across hash nodes. It is the
// client-side view of SHHC: the web front-end holds one Cluster and sends
// each fingerprint (or batch) to the node owning its hash range.
type Cluster struct {
	mu       sync.RWMutex
	ring     *ring.Ring
	vnodes   int
	backends map[ring.NodeID]Backend
	replicas int
	hedge    time.Duration
	// quorum is the resolved write quorum (acks required per insert,
	// deciding node included); noReadRepair disables miss verification
	// and read-repair on the lookup paths. See ClusterConfig.
	quorum       int
	noReadRepair bool
	// gen counts ring membership changes. Batches capture it with their
	// routing decision as a cheap filter: only when it moved can any
	// miss need reconciliation (see ownerMoved/reconcileMiss), closing
	// the window where an entry migrates away between routing and
	// execution.
	gen uint64

	// repl holds the replication counters (see ReplicationStats).
	repl replCounters

	// The coalesced repair queue (see replication.go). repairWake is nil
	// when Replicas is 1 — enqueueRepair is then a no-op.
	repairMu    sync.Mutex
	repairTasks map[repairKey]Value
	repairOrder []repairKey
	repairBusy  bool
	repairWake  chan struct{}
	// aeWake nudges the background anti-entropy sweeper after membership
	// changes (nil unless the sweeper runs).
	aeWake chan struct{}

	// bgCancel stops the background goroutines (repair worker, sweeper);
	// Close cancels and waits for bgWg before closing backends.
	bgCancel context.CancelFunc
	bgWg     sync.WaitGroup
}

// NewCluster creates a cluster over the given backends.
func NewCluster(cfg ClusterConfig, backends ...Backend) (*Cluster, error) {
	if len(backends) == 0 {
		return nil, errors.New("core: cluster needs at least one backend")
	}
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	quorum := cfg.WriteQuorum
	if quorum <= 0 {
		quorum = replicas/2 + 1 // majority
	}
	if quorum > replicas {
		quorum = replicas
	}
	c := &Cluster{
		ring:         ring.New(cfg.VirtualNodes),
		vnodes:       cfg.VirtualNodes,
		backends:     make(map[ring.NodeID]Backend, len(backends)),
		replicas:     replicas,
		quorum:       quorum,
		noReadRepair: cfg.DisableReadRepair,
		hedge:        cfg.HedgeAfter,
	}
	for _, b := range backends {
		if err := c.addLocked(b); err != nil {
			return nil, err
		}
	}
	if replicas > 1 {
		bgctx, cancel := context.WithCancel(context.Background())
		c.bgCancel = cancel
		c.repairTasks = make(map[repairKey]Value)
		c.repairWake = make(chan struct{}, 1)
		c.bgWg.Add(1)
		go c.repairWorker(bgctx)
		// The sweeper always runs with replication on: dropped repairs
		// rely on the membership-triggered sweeps as their backstop. The
		// interval only adds a periodic tick.
		c.aeWake = make(chan struct{}, 1)
		c.bgWg.Add(1)
		go c.antiEntropyLoop(bgctx, cfg.AntiEntropyInterval)
	}
	return c, nil
}

func (c *Cluster) addLocked(b Backend) error {
	id := b.ID()
	if _, dup := c.backends[id]; dup {
		return fmt.Errorf("core: duplicate backend %q", id)
	}
	if err := c.ring.Add(id); err != nil {
		return err
	}
	c.backends[id] = b
	c.gen++
	c.signalMembershipChange()
	return nil
}

// AddNode joins a new backend to the ring (dynamic scaling extension).
// Existing entries are not migrated; fingerprints that move ranges will be
// re-inserted on their next lookup, which is safe for a dedup index
// (a moved entry only costs one redundant chunk upload).
func (c *Cluster) AddNode(b Backend) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addLocked(b)
}

// RemoveNode detaches a backend from the ring without closing it.
func (c *Cluster) RemoveNode(id ring.NodeID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.backends[id]; !ok {
		return fmt.Errorf("core: unknown backend %q", id)
	}
	if err := c.ring.Remove(id); err != nil {
		return err
	}
	delete(c.backends, id)
	c.gen++
	c.signalMembershipChange()
	return nil
}

// Size returns the number of member nodes.
func (c *Cluster) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.backends)
}

// NodeIDs returns the member node IDs, sorted for stable output.
func (c *Cluster) NodeIDs() []ring.NodeID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]ring.NodeID, 0, len(c.backends))
	for id := range c.backends {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Owner returns the node responsible for a fingerprint.
func (c *Cluster) Owner(fp fingerprint.Fingerprint) (ring.NodeID, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.Lookup(fp)
}

// replicasFor returns the backends holding fp, owner first.
func (c *Cluster) replicasFor(fp fingerprint.Fingerprint) ([]Backend, error) {
	ids, err := c.ring.LookupN(fp, c.replicas)
	if err != nil {
		return nil, err
	}
	backends := make([]Backend, 0, len(ids))
	for _, id := range ids {
		b, ok := c.backends[id]
		if !ok {
			return nil, fmt.Errorf("core: ring references unknown backend %q", id)
		}
		backends = append(backends, b)
	}
	return backends, nil
}

// routeRetries bounds how many times a miss is replayed after the queried
// fingerprint's owner changed mid-flight. Two ownership changes landing
// inside one lookup's flight time is already vanishingly rare; three
// retries is effectively "until stable".
const routeRetries = 3

// routingFor snapshots the replica set for fp under the ring lock.
func (c *Cluster) routingFor(fp fingerprint.Fingerprint) ([]Backend, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.replicasFor(fp)
}

// routingChanged reports whether membership changed since gen.
func (c *Cluster) routingChanged(gen uint64) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gen != gen
}

// ownerMoved reports whether fp's owner is now a different node than the
// one the caller just queried. This — not a bare generation bump — is the
// retry condition for a miss: if the owner is unchanged, a miss (or the
// caller's own fresh insert) on that owner is the authoritative answer,
// and replaying would read back the caller's own insert as a spurious
// "duplicate". Only when ownership actually moved can the current owner
// know something the queried node did not (a migrated entry).
func (c *Cluster) ownerMoved(fp fingerprint.Fingerprint, queried ring.NodeID) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	owner, err := c.ring.Lookup(fp)
	return err == nil && owner != queried
}

// Lookup queries the owner node, failing over to successor replicas when
// the owner errors (only useful with Replicas > 1). With
// ClusterConfig.HedgeAfter set, a slow owner is raced against the next
// replica (see LookupHedged). A miss that raced an ownership change (the
// entry may have just migrated to a new owner) is retried against the
// current ring.
func (c *Cluster) Lookup(ctx context.Context, fp fingerprint.Fingerprint) (LookupResult, error) {
	return c.LookupHedged(ctx, fp, c.hedge)
}

// LookupHedged is Lookup with a per-call hedging delay: if the owner has
// not answered after `after`, the read is also issued to the next replica
// and the first successful answer wins; the loser's probe is cancelled
// through its context. after <= 0 disables hedging for this call.
// Hedging needs Replicas > 1 (reads are only hedged against nodes that
// hold the same entries).
func (c *Cluster) LookupHedged(ctx context.Context, fp fingerprint.Fingerprint, after time.Duration) (LookupResult, error) {
	var (
		res LookupResult
		err error
	)
	for attempt := 0; attempt < routeRetries; attempt++ {
		var owner ring.NodeID
		res, owner, err = c.lookupOnce(ctx, fp, after)
		if err != nil || res.Exists || !c.ownerMoved(fp, owner) {
			return res, err
		}
	}
	return res, err
}

// lookupOnce consults the replica set sequentially. A hit from any replica
// answers immediately and read-repairs the replicas observed missing it. A
// miss is verified: with read-repair enabled the remaining replicas are
// probed too, so a single replica that lost its entries (a wiped disk, a
// node that rejoined empty) cannot turn a stored fingerprint into a
// spurious "new" — only when every reachable replica misses is the miss
// returned. With DisableReadRepair (or Replicas == 1) the first answer,
// hit or miss, wins.
func (c *Cluster) lookupOnce(ctx context.Context, fp fingerprint.Fingerprint, hedge time.Duration) (LookupResult, ring.NodeID, error) {
	targets, err := c.routingFor(fp)
	if err != nil {
		return LookupResult{}, "", err
	}
	owner := targets[0].ID()
	if hedge > 0 && len(targets) > 1 {
		r, herr := c.raceReplicas(ctx, fp, targets, hedge)
		return r, owner, herr
	}
	verifyMiss := len(targets) > 1 && !c.noReadRepair
	var (
		lastErr   error
		missSeen  bool
		firstMiss LookupResult
		missers   []Backend
	)
	for _, b := range targets {
		if cerr := ctx.Err(); cerr != nil {
			return LookupResult{}, owner, cerr
		}
		r, err := b.Lookup(ctx, fp)
		if err != nil {
			lastErr = err
			continue
		}
		if r.Exists {
			c.readRepair(missers, fp, r.Value)
			return r, owner, nil
		}
		if !verifyMiss {
			return r, owner, nil
		}
		if !missSeen {
			missSeen, firstMiss = true, r
		}
		missers = append(missers, b)
	}
	if missSeen {
		return firstMiss, owner, nil
	}
	return LookupResult{}, owner, fmt.Errorf("core: lookup %s: all replicas failed: %w", fp.Short(), lastErr)
}

// raceReplicas implements the hedged read: the owner is queried first;
// every `hedge` without an answer brings the next replica into the race.
// The first hit wins and the losers' probes are cancelled (hctx). A
// replica that fails outright is replaced immediately — an error is a
// faster signal than the hedge timer. A miss does not win (unless
// read-repair is disabled): it is a possible divergence, so the misser is
// recorded, the next replica joins the race immediately, and the race
// continues until a hit arrives — which read-repairs the recorded missers
// — or every replica has answered, at which point the confirmed miss (or
// the last error) is returned.
func (c *Cluster) raceReplicas(ctx context.Context, fp fingerprint.Fingerprint, targets []Backend, hedge time.Duration) (LookupResult, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels every probe still in the air once a winner returns

	type outcome struct {
		b   Backend
		res LookupResult
		err error
	}
	ch := make(chan outcome, len(targets)) // buffered: losers never block or leak
	launch := func(b Backend) {
		go func() {
			r, err := b.Lookup(hctx, fp)
			ch <- outcome{b, r, err}
		}()
	}
	launch(targets[0])
	launched, outstanding := 1, 1
	timer := time.NewTimer(hedge)
	defer timer.Stop()
	var (
		lastErr   error
		missSeen  bool
		firstMiss LookupResult
		missers   []Backend
	)
	for {
		select {
		case o := <-ch:
			outstanding--
			if o.err == nil && o.res.Exists {
				c.readRepair(missers, fp, o.res.Value)
				return o.res, nil
			}
			if o.err == nil {
				if c.noReadRepair {
					return o.res, nil
				}
				if !missSeen {
					missSeen, firstMiss = true, o.res
				}
				missers = append(missers, o.b)
			} else {
				lastErr = o.err
			}
			if launched < len(targets) {
				launch(targets[launched])
				launched++
				outstanding++
				// The replacement restarts the hedge clock: without the
				// reset, a timer armed long before this answer would fire
				// almost immediately and launch yet another replica far
				// inside the configured delay.
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(hedge)
			} else if outstanding == 0 {
				if missSeen {
					return firstMiss, nil
				}
				return LookupResult{}, fmt.Errorf("core: lookup %s: all replicas failed: %w", fp.Short(), lastErr)
			}
		case <-timer.C:
			if launched < len(targets) {
				launch(targets[launched])
				launched++
				outstanding++
				timer.Reset(hedge)
			}
		case <-ctx.Done():
			return LookupResult{}, ctx.Err()
		}
	}
}

// LookupOrInsert runs the Figure 4 flow on the owner and, when the
// fingerprint is new, replicates the insert to the remaining replicas with
// quorum acknowledgment (see ClusterConfig.WriteQuorum and
// replicateInsert): the call does not return until WriteQuorum replicas
// durably hold the entry, so an acked insert survives the loss of any
// WriteQuorum-1 nodes. Mirrors beyond the quorum complete asynchronously;
// a failed mirror is backfilled by the repair queue. A quorum that cannot
// be met does not fail the call — once the entry is durably created,
// erroring would make a retried insert look like a stored duplicate and
// lose the upload; the call degrades to the safe "new" answer instead
// (see replicateInsert). A
// miss whose owner changed mid-flight is reconciled against the current
// owner (see reconcileMiss): a fingerprint that had already migrated is
// reported as a duplicate instead of "new", while a genuinely new
// fingerprint keeps its "new" answer so the client still uploads the
// chunk. A miss whose owner did NOT change is final: probing again would
// find this call's own insert and misreport a new chunk as a duplicate the
// client then never uploads.
func (c *Cluster) LookupOrInsert(ctx context.Context, fp fingerprint.Fingerprint, val Value) (LookupResult, error) {
	res, owner, err := c.lookupOrInsertOnce(ctx, fp, val)
	if err != nil || res.Exists || !c.ownerMoved(fp, owner) {
		return res, err
	}
	return c.reconcileMiss(ctx, fp, val, res), nil
}

// reconcileMiss re-examines a LookupOrInsert miss whose owner moved while
// the call was in flight. The insert already happened on the old owner, so
// only a read-only probe of the current owner is safe; the probe's result
// is interpreted with a bias toward "new", because the failure modes are
// asymmetric — a wrong "new" costs one redundant upload, a wrong
// "duplicate" drops the chunk from the upload plan and loses data:
//
//   - found with a different value: a pre-existing entry migrated here —
//     report the duplicate.
//   - found with our own value: indistinguishable between our own insert
//     migrated over and an old entry that stored the same locator; "new"
//     is consistent either way (the upload lands on the same locator).
//   - still missing: keep "new" and heal placement by inserting on the
//     current owner, so future lookups find the entry where routing looks.
func (c *Cluster) reconcileMiss(ctx context.Context, fp fingerprint.Fingerprint, val Value, miss LookupResult) LookupResult {
	for attempt := 0; attempt < routeRetries; attempt++ {
		if ctx.Err() != nil {
			// The caller is leaving; the biased-toward-"new" miss is the
			// safe answer to leave behind.
			return miss
		}
		targets, err := c.routingFor(fp)
		if err != nil {
			return miss
		}
		owner := targets[0]
		r, err := owner.Lookup(ctx, fp)
		if err != nil {
			return miss
		}
		if r.Exists {
			if r.Value != val {
				return r
			}
			return miss
		}
		if !c.ownerMoved(fp, owner.ID()) {
			_ = owner.Insert(ctx, fp, val)
			return miss
		}
	}
	return miss
}

func (c *Cluster) lookupOrInsertOnce(ctx context.Context, fp fingerprint.Fingerprint, val Value) (LookupResult, ring.NodeID, error) {
	targets, err := c.routingFor(fp)
	if err != nil {
		return LookupResult{}, "", err
	}
	owner := targets[0].ID()
	var (
		res     LookupResult
		resErr  error
		decided = -1
	)
	for i, b := range targets {
		res, resErr = b.LookupOrInsert(ctx, fp, val)
		if resErr != nil {
			if ctx.Err() != nil {
				// Cancellation is the caller's decision, not a node
				// failure: do not fail over.
				return LookupResult{}, owner, ctx.Err()
			}
			continue // fail over to the next replica for the decision
		}
		decided = i
		break
	}
	if decided < 0 {
		return LookupResult{}, owner, fmt.Errorf("core: lookup-or-insert %s: all replicas failed: %w", fp.Short(), resErr)
	}
	if res.Exists || len(targets) == 1 {
		// Duplicate: the entry was already quorum-replicated when it was
		// first inserted; nothing to fan out.
		return res, owner, nil
	}
	// New entry: replicate to the co-replicas and wait for the quorum.
	c.replicateInsert(ctx, fp, val, targets, decided, &res)
	return res, owner, nil
}

// BatchLookupOrInsert routes each pair to its owner node, issues one batch
// per node in parallel, and reassembles results in input order. This is the
// batching path the web front-end uses (paper §IV: batch sizes 1/128/2048).
// Misses — the pairs the owner's batch created — are then replicated as one
// ApplyRepair wave per mirror node (piggybacking on the mirror's own
// group-commit destage batching), so replication costs one extra batched
// round per replica rather than a per-key fan-out; the batch does not
// return until every created pair reached its write quorum (a quorum that
// cannot be met degrades to the safe "new" answers instead of failing —
// see replicateBatch). A group whose owner node is down fails over to the
// single-key path per pair, so one dead node does not fail the batch when
// its ranges have live replicas.
// A cancelled ctx fails the whole batch with ctx.Err(); per-node batches
// already in flight stop issuing device reads.
func (c *Cluster) BatchLookupOrInsert(ctx context.Context, pairs []Pair) ([]LookupResult, error) {
	if len(pairs) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.RLock()
	type routed struct {
		backend Backend
		pairs   []Pair
		indices []int
		// mirrors[k] holds the successor replicas for pairs[k]; replica
		// sets differ per fingerprint even within one owner's group.
		mirrors [][]Backend
	}
	groups := make(map[ring.NodeID]*routed)
	gen := c.gen
	owners := make([]ring.NodeID, len(pairs))
	for i, p := range pairs {
		targets, err := c.replicasFor(p.FP)
		if err != nil {
			c.mu.RUnlock()
			return nil, err
		}
		owner := targets[0]
		owners[i] = owner.ID()
		g, ok := groups[owner.ID()]
		if !ok {
			g = &routed{backend: owner}
			groups[owner.ID()] = g
		}
		g.pairs = append(g.pairs, p)
		g.indices = append(g.indices, i)
		g.mirrors = append(g.mirrors, targets[1:])
	}
	c.mu.RUnlock()

	results := make([]LookupResult, len(pairs))
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for _, g := range groups {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs, err := g.backend.BatchLookupOrInsert(ctx, g.pairs)
			if err != nil {
				// A dead owner fails its whole group's decision. With
				// replication the successors hold the same ranges, so fail
				// each pair over to the single-key path, which decides on
				// the next reachable replica and replicates from there.
				// Erroring the batch instead would strand the groups that
				// DID decide: their entries are already durable, so a
				// retried plan would call them duplicates for chunks the
				// client never uploaded (the same poison the degraded
				// quorum path avoids — see replicateInsert). Cancellation
				// is the caller's decision, not a node failure: no failover.
				if ctx.Err() == nil && c.replicas > 1 {
					err = nil
					for k, p := range g.pairs {
						r, _, perr := c.lookupOrInsertOnce(ctx, p.FP, p.Val)
						if perr != nil {
							err = perr
							break
						}
						results[g.indices[k]] = r
					}
				}
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
				return
			}
			for k, r := range rs {
				results[g.indices[k]] = r
			}
			c.replicateBatch(ctx, g.pairs, g.indices, g.mirrors, rs, results)
		}()
	}
	wg.Wait()
	if firstErr != nil {
		if isCtxErr(firstErr) {
			return nil, firstErr
		}
		return nil, fmt.Errorf("core: batch: %w", firstErr)
	}
	// Reconcile only the misses whose owner moved mid-batch (see
	// reconcileMiss): a miss whose owner is unchanged is final, and
	// probing again would read back this batch's own insert as a spurious
	// duplicate, dropping the chunk from the upload plan.
	if c.routingChanged(gen) {
		for i, r := range results {
			if r.Exists || !c.ownerMoved(pairs[i].FP, owners[i]) {
				continue
			}
			results[i] = c.reconcileMiss(ctx, pairs[i].FP, pairs[i].Val, r)
		}
	}
	return results, nil
}

// Migrator is implemented by backends whose entries can be enumerated and
// removed locally — in-process *Node implements it; RPC clients do not
// (migration of remote nodes runs on the node's own machine).
type Migrator interface {
	Entries(ctx context.Context, fn func(fp fingerprint.Fingerprint, val Value) bool) error
	Remove(fp fingerprint.Fingerprint) (bool, error)
}

// RebalanceStats summarizes a migration pass.
type RebalanceStats struct {
	// Scanned is the number of entries examined. An entry relocated early
	// in the pass is examined again when its new home is scanned, so
	// Scanned can exceed the cluster's entry count.
	Scanned int
	// Moved is the number of entries relocated to a new owner.
	Moved int
	// Skipped counts backends that do not support migration.
	Skipped int
}

// Rebalance moves every entry to its current owner node. Call it after
// AddNode to spread existing fingerprints onto the new member (the paper's
// "dynamic resource scaling" future work). Lookups remain correct during
// the pass: an entry is inserted at its new owner before it is removed
// from the old one. ctx is checked between entries, so a cancelled
// rebalance stops promptly and leaves the index consistent (entries moved
// so far are complete; the rest stay where they were).
func (c *Cluster) Rebalance(ctx context.Context) (RebalanceStats, error) {
	c.mu.RLock()
	backends := make([]Backend, 0, len(c.backends))
	for _, b := range c.backends {
		backends = append(backends, b)
	}
	c.mu.RUnlock()

	var stats RebalanceStats
	for _, b := range backends {
		m, ok := b.(Migrator)
		if !ok {
			stats.Skipped++
			continue
		}
		moved, scanned, err := c.migrateFrom(ctx, b.ID(), m, false)
		if err != nil {
			return stats, err
		}
		stats.Moved += moved
		stats.Scanned += scanned
	}
	return stats, nil
}

// JoinNode adds a backend with minimal duplicate-detection disruption: it
// first copies the entries the new node will own onto it (computed against
// a shadow ring), then flips routing, then cleans relocated entries off
// their old owners. Unlike AddNode+Rebalance, fingerprints already stored
// are continuously detected as duplicates throughout the join (only
// entries inserted during the copy window can be re-uploaded once).
//
// Cancelling ctx before routing flips aborts the join (the joiner holds
// copies that are simply never routed to); after the flip, the cleanup
// pass stops early and the leftover duplicates cost at most redundant
// storage, never wrong answers.
func (c *Cluster) JoinNode(ctx context.Context, b Backend) (RebalanceStats, error) {
	newID := b.ID()

	// Build the shadow ring: current members plus the joiner.
	c.mu.RLock()
	if _, dup := c.backends[newID]; dup {
		c.mu.RUnlock()
		return RebalanceStats{}, fmt.Errorf("core: duplicate backend %q", newID)
	}
	shadow := ring.New(c.vnodes)
	for id := range c.backends {
		if err := shadow.Add(id); err != nil {
			c.mu.RUnlock()
			return RebalanceStats{}, err
		}
	}
	members := make([]Backend, 0, len(c.backends))
	for _, m := range c.backends {
		members = append(members, m)
	}
	c.mu.RUnlock()
	if err := shadow.Add(newID); err != nil {
		return RebalanceStats{}, err
	}

	// Phase 1: copy soon-to-move entries to the joiner while routing is
	// untouched (lookups still find them on their current owners).
	var stats RebalanceStats
	for _, m := range members {
		mig, ok := m.(Migrator)
		if !ok {
			stats.Skipped++
			continue
		}
		type entry struct {
			fp  fingerprint.Fingerprint
			val Value
		}
		var moving []entry
		var lookupErr error
		err := mig.Entries(ctx, func(fp fingerprint.Fingerprint, val Value) bool {
			stats.Scanned++
			if lookupErr = ctx.Err(); lookupErr != nil {
				return false
			}
			owner, lerr := shadow.Lookup(fp)
			if lerr != nil {
				lookupErr = lerr
				return false
			}
			if owner == newID {
				moving = append(moving, entry{fp, val})
			}
			return true
		})
		if err == nil {
			err = lookupErr
		}
		if err != nil {
			return stats, fmt.Errorf("core: join copy from %s: %w", m.ID(), err)
		}
		for _, e := range moving {
			if err := b.Insert(ctx, e.fp, e.val); err != nil {
				return stats, fmt.Errorf("core: join copy %s: %w", e.fp.Short(), err)
			}
			stats.Moved++
		}
	}

	// Phase 2: flip routing.
	c.mu.Lock()
	err := c.addLocked(b)
	c.mu.Unlock()
	if err != nil {
		return stats, err
	}

	// Phase 3: remove relocated entries from their old owners (and pick
	// up anything inserted during the copy window).
	for _, m := range members {
		mig, ok := m.(Migrator)
		if !ok {
			continue
		}
		moved, scanned, err := c.migrateFrom(ctx, m.ID(), mig, false)
		if err != nil {
			return stats, err
		}
		stats.Scanned += scanned
		_ = moved // already counted in phase 1 for pre-copied entries
	}
	return stats, nil
}

// DrainNode migrates every entry off the named node and detaches it from
// the cluster (graceful decommission). The backend itself is not closed;
// its owner closes it after the drain. A cancelled ctx stops the copy
// mid-pass: the node is already out of the ring (routing flips first) but
// stays attached until every entry has moved, so un-migrated entries are
// never orphaned and a later Rebalance can finish the job.
func (c *Cluster) DrainNode(ctx context.Context, id ring.NodeID) (RebalanceStats, error) {
	c.mu.Lock()
	b, ok := c.backends[id]
	if !ok {
		c.mu.Unlock()
		return RebalanceStats{}, fmt.Errorf("core: unknown backend %q", id)
	}
	m, isMigrator := b.(Migrator)
	if !isMigrator {
		c.mu.Unlock()
		return RebalanceStats{}, fmt.Errorf("core: backend %q does not support migration", id)
	}
	if len(c.backends) == 1 {
		c.mu.Unlock()
		return RebalanceStats{}, errors.New("core: cannot drain the last node")
	}
	// Take the node out of the ring first so migrated entries route to
	// the surviving members; keep the backend reachable for the copy.
	if err := c.ring.Remove(id); err != nil {
		c.mu.Unlock()
		return RebalanceStats{}, err
	}
	c.gen++
	c.signalMembershipChange()
	c.mu.Unlock()

	moved, scanned, err := c.migrateFrom(ctx, id, m, true)
	stats := RebalanceStats{Moved: moved, Scanned: scanned}
	if err != nil {
		return stats, err
	}
	c.mu.Lock()
	delete(c.backends, id)
	c.mu.Unlock()
	return stats, nil
}

// migrateFrom moves entries off one backend. When all is true every entry
// moves (drain); otherwise only entries whose owner is no longer source.
// ctx is checked between entries.
func (c *Cluster) migrateFrom(ctx context.Context, source ring.NodeID, m Migrator, all bool) (moved, scanned int, err error) {
	// Collect first: inserting into peers while ranging the same store
	// would mutate it mid-iteration.
	type entry struct {
		fp  fingerprint.Fingerprint
		val Value
	}
	var toMove []entry
	rangeErr := m.Entries(ctx, func(fp fingerprint.Fingerprint, val Value) bool {
		scanned++
		if err = ctx.Err(); err != nil {
			return false
		}
		if all {
			toMove = append(toMove, entry{fp, val})
			return true
		}
		c.mu.RLock()
		owner, lerr := c.ring.Lookup(fp)
		c.mu.RUnlock()
		if lerr != nil {
			err = lerr
			return false
		}
		if owner != source {
			toMove = append(toMove, entry{fp, val})
		}
		return true
	})
	if err == nil {
		err = rangeErr
	}
	if err != nil {
		return moved, scanned, fmt.Errorf("core: migrate from %s: %w", source, err)
	}

	for _, e := range toMove {
		if cerr := ctx.Err(); cerr != nil {
			return moved, scanned, fmt.Errorf("core: migrate from %s: %w", source, cerr)
		}
		c.mu.RLock()
		targets, terr := c.replicasFor(e.fp)
		c.mu.RUnlock()
		if terr != nil {
			return moved, scanned, terr
		}
		for _, t := range targets {
			if t.ID() == source {
				continue
			}
			if ierr := t.Insert(ctx, e.fp, e.val); ierr != nil {
				return moved, scanned, fmt.Errorf("core: migrate %s to %s: %w", e.fp.Short(), t.ID(), ierr)
			}
		}
		if _, rerr := m.Remove(e.fp); rerr != nil {
			return moved, scanned, fmt.Errorf("core: migrate %s off %s: %w", e.fp.Short(), source, rerr)
		}
		moved++
	}
	return moved, scanned, nil
}

// ClientTransportStats aggregates the client-side transport counters of
// the cluster's remote backends: how many NOT_OWNER redirects their
// clients followed and how often a caller stalled waiting for stream
// send credit. In-process backends contribute nothing.
type ClientTransportStats struct {
	RedirectsFollowed uint64
	CreditStalls      uint64
}

// clientTransportReporter is the optional backend surface for client-side
// transport counters (implemented by rpc.Client); asserted rather than
// added to Backend so in-process nodes need not carry it.
type clientTransportReporter interface {
	RedirectsFollowed() uint64
	CreditStalls() uint64
}

// ClientTransportStats sums transport counters across backends that have
// them (remote RPC clients on multiplexed connections).
func (c *Cluster) ClientTransportStats() ClientTransportStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var ts ClientTransportStats
	for _, b := range c.backends {
		if r, ok := b.(clientTransportReporter); ok {
			ts.RedirectsFollowed += r.RedirectsFollowed()
			ts.CreditStalls += r.CreditStalls()
		}
	}
	return ts
}

// Stats gathers per-node statistics, sorted by node ID.
func (c *Cluster) Stats(ctx context.Context) ([]NodeStats, error) {
	c.mu.RLock()
	backends := make([]Backend, 0, len(c.backends))
	for _, b := range c.backends {
		backends = append(backends, b)
	}
	c.mu.RUnlock()

	stats := make([]NodeStats, 0, len(backends))
	for _, b := range backends {
		st, err := b.Stats(ctx)
		if err != nil {
			return nil, fmt.Errorf("core: stats from %s: %w", b.ID(), err)
		}
		stats = append(stats, st)
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].ID < stats[j].ID })
	return stats, nil
}

// Close stops the background repair worker and anti-entropy sweeper, then
// closes every backend, returning the first error.
func (c *Cluster) Close() error {
	if c.bgCancel != nil {
		c.bgCancel()
	}
	c.bgWg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, b := range c.backends {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.backends = map[ring.NodeID]Backend{}
	return first
}
