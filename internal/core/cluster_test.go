package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

func newTestCluster(t *testing.T, n int, cfg ClusterConfig) *Cluster {
	t.Helper()
	backends := make([]Backend, n)
	for i := 0; i < n; i++ {
		node, err := NewNode(NodeConfig{
			ID:            ring.NodeID(fmt.Sprintf("node-%d", i)),
			Store:         hashdb.NewMemStore(nil),
			CacheSize:     256,
			BloomExpected: 100000,
		})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		backends[i] = node
	}
	c, err := NewCluster(cfg, backends...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{}); err == nil {
		t.Fatal("empty cluster accepted")
	}
	n1, _ := NewNode(NodeConfig{ID: "dup", Store: hashdb.NewMemStore(nil)})
	n2, _ := NewNode(NodeConfig{ID: "dup", Store: hashdb.NewMemStore(nil)})
	if _, err := NewCluster(ClusterConfig{}, n1, n2); err == nil {
		t.Fatal("duplicate backend IDs accepted")
	}
}

func TestClusterDedupAcrossNodes(t *testing.T) {
	c := newTestCluster(t, 4, ClusterConfig{})
	const n = 2000

	// First pass: everything new.
	for i := uint64(0); i < n; i++ {
		r, err := c.LookupOrInsert(context.Background(), fp(i), Value(i))
		if err != nil {
			t.Fatalf("LookupOrInsert: %v", err)
		}
		if r.Exists {
			t.Fatalf("fresh fingerprint %d reported existing", i)
		}
	}
	// Second pass: everything duplicate, with the stored value.
	for i := uint64(0); i < n; i++ {
		r, err := c.LookupOrInsert(context.Background(), fp(i), 0)
		if err != nil {
			t.Fatalf("LookupOrInsert: %v", err)
		}
		if !r.Exists || r.Value != Value(i) {
			t.Fatalf("duplicate %d = %+v, want exists with value %d", i, r, i)
		}
	}
}

func TestClusterRoutingIsStable(t *testing.T) {
	c := newTestCluster(t, 4, ClusterConfig{})
	for i := uint64(0); i < 100; i++ {
		owner1, err := c.Owner(fp(i))
		if err != nil {
			t.Fatalf("Owner: %v", err)
		}
		owner2, _ := c.Owner(fp(i))
		if owner1 != owner2 {
			t.Fatalf("owner changed between calls for fp %d", i)
		}
	}
}

func TestClusterLoadBalance(t *testing.T) {
	// Figure 6: at N=4 each node stores ~25% of the hash entries.
	c := newTestCluster(t, 4, ClusterConfig{})
	const n = 20000
	for i := uint64(0); i < n; i++ {
		if _, err := c.LookupOrInsert(context.Background(), fp(i), Value(i)); err != nil {
			t.Fatalf("LookupOrInsert: %v", err)
		}
	}
	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	total := 0
	for _, st := range stats {
		total += st.StoreEntries
	}
	if total != n {
		t.Fatalf("total entries = %d, want %d", total, n)
	}
	for _, st := range stats {
		share := float64(st.StoreEntries) / n
		if share < 0.15 || share > 0.35 {
			t.Fatalf("node %s holds %.1f%%, want 25%% +/- 10", st.ID, share*100)
		}
	}
}

func TestClusterBatchOrderPreserved(t *testing.T) {
	c := newTestCluster(t, 3, ClusterConfig{})
	pairs := make([]Pair, 500)
	for i := range pairs {
		pairs[i] = Pair{FP: fp(uint64(i % 100)), Val: Value(i % 100)}
	}
	rs, err := c.BatchLookupOrInsert(context.Background(), pairs)
	if err != nil {
		t.Fatalf("BatchLookupOrInsert: %v", err)
	}
	if len(rs) != len(pairs) {
		t.Fatalf("got %d results, want %d", len(rs), len(pairs))
	}
	// First 100 are new, the remaining 400 duplicates (in order).
	for i, r := range rs {
		wantExists := i >= 100
		if r.Exists != wantExists {
			t.Fatalf("result[%d].Exists = %v, want %v", i, r.Exists, wantExists)
		}
		if r.Exists && r.Value != Value(i%100) {
			t.Fatalf("result[%d].Value = %d, want %d", i, r.Value, i%100)
		}
	}
}

func TestClusterBatchEmpty(t *testing.T) {
	c := newTestCluster(t, 2, ClusterConfig{})
	rs, err := c.BatchLookupOrInsert(context.Background(), nil)
	if err != nil || rs != nil {
		t.Fatalf("empty batch = (%v, %v), want (nil, nil)", rs, err)
	}
}

func TestClusterConcurrentClients(t *testing.T) {
	// The paper's target scenario: many concurrent clients sending
	// overlapping fingerprint streams. Correctness requirement: every
	// fingerprint is counted as new at most once across all clients.
	c := newTestCluster(t, 4, ClusterConfig{})
	const clients = 8
	const perClient = 1000

	var newCount Counter
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); i < perClient; i++ {
				r, err := c.LookupOrInsert(context.Background(), fp(i), Value(i))
				if err != nil {
					t.Errorf("LookupOrInsert: %v", err)
					return
				}
				if !r.Exists {
					newCount.Inc()
				}
			}
		}()
	}
	wg.Wait()
	if got := newCount.Value(); got != perClient {
		t.Fatalf("new fingerprints = %d, want exactly %d", got, perClient)
	}
}

// Counter is a tiny atomic counter local to the test.
type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Value() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// flakyBackend wraps a Backend and fails all operations when tripped.
type flakyBackend struct {
	Backend
	mu   sync.Mutex
	dead bool
}

func (f *flakyBackend) kill() {
	f.mu.Lock()
	f.dead = true
	f.mu.Unlock()
}

func (f *flakyBackend) isDead() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead
}

var errInjected = errors.New("injected failure")

func (f *flakyBackend) Lookup(ctx context.Context, p fingerprint.Fingerprint) (LookupResult, error) {
	if f.isDead() {
		return LookupResult{}, errInjected
	}
	return f.Backend.Lookup(context.Background(), p)
}

func (f *flakyBackend) LookupOrInsert(ctx context.Context, p fingerprint.Fingerprint, v Value) (LookupResult, error) {
	if f.isDead() {
		return LookupResult{}, errInjected
	}
	return f.Backend.LookupOrInsert(context.Background(), p, v)
}

func (f *flakyBackend) BatchLookupOrInsert(ctx context.Context, pairs []Pair) ([]LookupResult, error) {
	if f.isDead() {
		return nil, errInjected
	}
	return f.Backend.BatchLookupOrInsert(context.Background(), pairs)
}

func (f *flakyBackend) Insert(ctx context.Context, p fingerprint.Fingerprint, v Value) error {
	if f.isDead() {
		return errInjected
	}
	return f.Backend.Insert(context.Background(), p, v)
}

func TestReplicationFailover(t *testing.T) {
	// Fault-tolerance extension: with Replicas=2, killing one node must
	// not lose duplicate detection for fingerprints it owned.
	flakies := make([]*flakyBackend, 3)
	backends := make([]Backend, 3)
	for i := range backends {
		node, err := NewNode(NodeConfig{
			ID:            ring.NodeID(fmt.Sprintf("node-%d", i)),
			Store:         hashdb.NewMemStore(nil),
			CacheSize:     64,
			BloomExpected: 10000,
		})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		flakies[i] = &flakyBackend{Backend: node}
		backends[i] = flakies[i]
	}
	c, err := NewCluster(ClusterConfig{Replicas: 2}, backends...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()

	const n = 300
	for i := uint64(0); i < n; i++ {
		if _, err := c.LookupOrInsert(context.Background(), fp(i), Value(i)); err != nil {
			t.Fatalf("insert pass: %v", err)
		}
	}

	flakies[1].kill()

	// Every fingerprint must still be recognized as a duplicate via the
	// surviving replica.
	for i := uint64(0); i < n; i++ {
		r, err := c.Lookup(context.Background(), fp(i))
		if err != nil {
			t.Fatalf("Lookup(%d) after node death: %v", i, err)
		}
		if !r.Exists {
			t.Fatalf("fingerprint %d lost after single node failure", i)
		}
	}
	// LookupOrInsert must also fail over rather than double-insert.
	for i := uint64(0); i < n; i++ {
		r, err := c.LookupOrInsert(context.Background(), fp(i), 999)
		if err != nil {
			t.Fatalf("LookupOrInsert(%d) after node death: %v", i, err)
		}
		if !r.Exists {
			t.Fatalf("fingerprint %d re-inserted after node failure", i)
		}
	}
}

func TestNoReplicationLosesDataOnFailure(t *testing.T) {
	// Control for the failover test: with Replicas=1 a dead owner makes
	// its fingerprints unavailable (errors), proving the replication
	// extension is what provides the tolerance.
	flaky := &flakyBackend{}
	node, err := NewNode(NodeConfig{ID: "only", Store: hashdb.NewMemStore(nil), CacheSize: 8})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	flaky.Backend = node
	c, err := NewCluster(ClusterConfig{Replicas: 1}, flaky)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()

	c.LookupOrInsert(context.Background(), fp(1), 1)
	flaky.kill()
	if _, err := c.Lookup(context.Background(), fp(1)); err == nil {
		t.Fatal("Lookup succeeded with the only replica dead")
	}
}

func TestAddRemoveNode(t *testing.T) {
	c := newTestCluster(t, 2, ClusterConfig{})
	extra, err := NewNode(NodeConfig{ID: "node-extra", Store: hashdb.NewMemStore(nil), CacheSize: 8})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	if err := c.AddNode(extra); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if c.Size() != 3 {
		t.Fatalf("Size = %d, want 3", c.Size())
	}
	if err := c.AddNode(extra); err == nil {
		t.Fatal("duplicate AddNode succeeded")
	}
	if err := c.RemoveNode("node-extra"); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if err := c.RemoveNode("node-extra"); err == nil {
		t.Fatal("double RemoveNode succeeded")
	}
	if c.Size() != 2 {
		t.Fatalf("Size = %d, want 2", c.Size())
	}
	// Cluster still functional after membership churn.
	if _, err := c.LookupOrInsert(context.Background(), fp(42), 42); err != nil {
		t.Fatalf("LookupOrInsert after churn: %v", err)
	}
	extra.Close()
}
