package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"shhc/internal/fingerprint"
	"shhc/internal/ring"
)

// scriptedBackend is a minimal Backend whose Lookup behavior is scripted:
// it can answer instantly or block until its context is cancelled,
// recording what happened to it.
type scriptedBackend struct {
	id ring.NodeID
	// answer is returned by Lookup when slow is false.
	answer LookupResult
	// slow makes Lookup block until ctx is done.
	slow bool

	lookups   atomic.Int64
	cancelled atomic.Int64
}

func (s *scriptedBackend) ID() ring.NodeID { return s.id }

func (s *scriptedBackend) Lookup(ctx context.Context, fp fingerprint.Fingerprint) (LookupResult, error) {
	s.lookups.Add(1)
	if s.slow {
		<-ctx.Done()
		s.cancelled.Add(1)
		return LookupResult{}, ctx.Err()
	}
	return s.answer, nil
}

func (s *scriptedBackend) LookupOrInsert(ctx context.Context, fp fingerprint.Fingerprint, val Value) (LookupResult, error) {
	return s.Lookup(ctx, fp)
}

func (s *scriptedBackend) BatchLookupOrInsert(ctx context.Context, pairs []Pair) ([]LookupResult, error) {
	out := make([]LookupResult, len(pairs))
	for i := range pairs {
		r, err := s.Lookup(ctx, pairs[i].FP)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func (s *scriptedBackend) Insert(ctx context.Context, fp fingerprint.Fingerprint, val Value) error {
	return nil
}

func (s *scriptedBackend) Stats(ctx context.Context) (NodeStats, error) {
	return NodeStats{ID: s.id}, nil
}

func (s *scriptedBackend) Close() error { return nil }

// fpOwnedBy searches for a fingerprint whose ring owner is the wanted
// node.
func fpOwnedBy(t *testing.T, c *Cluster, want ring.NodeID) fingerprint.Fingerprint {
	t.Helper()
	for i := uint64(0); i < 10_000; i++ {
		fp := fingerprint.FromUint64(i)
		owner, err := c.Owner(fp)
		if err != nil {
			t.Fatalf("Owner: %v", err)
		}
		if owner == want {
			return fp
		}
	}
	t.Fatalf("no fingerprint owned by %s in 10k tries", want)
	return fingerprint.Fingerprint{}
}

// TestHedgeReturnsFastReplicaAndCancelsSlowOwner: with HedgeAfter set and
// a stuck owner, Cluster.Lookup must answer from the successor replica
// within roughly the hedge delay, and the owner's probe must be cancelled
// once the winner returns.
func TestHedgeReturnsFastReplicaAndCancelsSlowOwner(t *testing.T) {
	slow := &scriptedBackend{id: "slow", slow: true}
	fast := &scriptedBackend{id: "fast", answer: LookupResult{Exists: true, Value: 11, Source: SourceStore}}
	c, err := NewCluster(ClusterConfig{Replicas: 2, HedgeAfter: 5 * time.Millisecond}, slow, fast)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()

	fp := fpOwnedBy(t, c, "slow")
	start := time.Now()
	r, err := c.Lookup(context.Background(), fp)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hedged Lookup: %v", err)
	}
	if !r.Exists || r.Value != 11 {
		t.Fatalf("hedged Lookup = %+v, want the fast replica's answer (Exists=true Value=11)", r)
	}
	if elapsed > time.Second {
		t.Fatalf("hedged Lookup took %v; hedge after 5ms should have answered far sooner", elapsed)
	}
	if slow.lookups.Load() != 1 {
		t.Fatalf("slow owner saw %d lookups, want 1", slow.lookups.Load())
	}
	waitCond(t, "slow owner's probe to be cancelled", func() bool {
		return slow.cancelled.Load() == 1
	})
}

// TestHedgeDisabledWaitsForOwner: without HedgeAfter the owner's answer is
// waited for — the successor is never consulted on a healthy (if slow)
// owner. Cancellation still frees the caller.
func TestHedgeDisabledWaitsForOwner(t *testing.T) {
	slow := &scriptedBackend{id: "slow", slow: true}
	fast := &scriptedBackend{id: "fast", answer: LookupResult{Exists: true, Value: 11, Source: SourceStore}}
	c, err := NewCluster(ClusterConfig{Replicas: 2}, slow, fast)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()

	fp := fpOwnedBy(t, c, "slow")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = c.Lookup(ctx, fp)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("unhedged Lookup on stuck owner = %v, want context.DeadlineExceeded", err)
	}
	if fast.lookups.Load() != 0 {
		t.Fatalf("successor was consulted %d times without hedging or owner failure", fast.lookups.Load())
	}
}

// TestHedgePerCallOverride: LookupHedged hedges a single call on a cluster
// configured without hedging.
func TestHedgePerCallOverride(t *testing.T) {
	slow := &scriptedBackend{id: "slow", slow: true}
	fast := &scriptedBackend{id: "fast", answer: LookupResult{Exists: true, Value: 4, Source: SourceCache}}
	c, err := NewCluster(ClusterConfig{Replicas: 2}, slow, fast)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()

	fp := fpOwnedBy(t, c, "slow")
	r, err := c.LookupHedged(context.Background(), fp, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("LookupHedged: %v", err)
	}
	if !r.Exists || r.Value != 4 {
		t.Fatalf("LookupHedged = %+v, want fast replica's answer", r)
	}
}

// TestHedgeFailedReplicaFailsOver: a hedged lookup whose first replica
// errors outright brings in the next replica immediately (no hedge-delay
// wait) and still answers.
func TestHedgeFailedReplicaFailsOver(t *testing.T) {
	fast := &scriptedBackend{id: "fast", answer: LookupResult{Exists: true, Value: 9, Source: SourceStore}}
	failing := &failingBackend{
		scriptedBackend: &scriptedBackend{id: "dead"},
		err:             errors.New("node down"),
	}
	c2, err := NewCluster(ClusterConfig{Replicas: 2, HedgeAfter: time.Hour}, failing, fast)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c2.Close()

	fp := fpOwnedBy(t, c2, "dead")
	start := time.Now()
	r, err := c2.Lookup(context.Background(), fp)
	if err != nil {
		t.Fatalf("Lookup with failed owner: %v", err)
	}
	if !r.Exists || r.Value != 9 {
		t.Fatalf("Lookup = %+v, want failover answer", r)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("failover took %v; an owner error must not wait out the hedge delay", elapsed)
	}
}

type failingBackend struct {
	*scriptedBackend
	err error
}

func (f *failingBackend) Lookup(ctx context.Context, fp fingerprint.Fingerprint) (LookupResult, error) {
	return LookupResult{}, f.err
}
