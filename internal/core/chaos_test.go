package core

import (
	"fmt"
	"sync"
	"testing"

	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

// TestConcurrentLookupsDuringRebalance hammers the cluster with lookups
// while a two-phase JoinNode migrates entries under it. Requirements: no
// errors, no seeded fingerprint ever reported as new (JoinNode pre-copies
// entries before flipping routing), and the final state is consistent.
func TestConcurrentLookupsDuringRebalance(t *testing.T) {
	nodes := make([]*Node, 3)
	backends := make([]Backend, 3)
	for i := range nodes {
		var err error
		nodes[i], err = NewNode(NodeConfig{
			ID:            ring.NodeID(fmt.Sprintf("node-%d", i)),
			Store:         hashdb.NewMemStore(nil),
			CacheSize:     256,
			BloomExpected: 1 << 16,
		})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		backends[i] = nodes[i]
	}
	c, err := NewCluster(ClusterConfig{}, backends...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()

	const n = 5000
	for i := uint64(0); i < n; i++ {
		if _, err := c.LookupOrInsert(fp(i), Value(i)); err != nil {
			t.Fatalf("seed insert: %v", err)
		}
	}

	extra, err := NewNode(NodeConfig{
		ID:            "node-new",
		Store:         hashdb.NewMemStore(nil),
		CacheSize:     256,
		BloomExpected: 1 << 16,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		errCount  int
		ghostNews int
	)
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := uint64(g)
			for {
				select {
				case <-stop:
					return
				default:
				}
				r, err := c.LookupOrInsert(fp(i%n), 0)
				if err != nil {
					mu.Lock()
					errCount++
					mu.Unlock()
					return
				}
				if !r.Exists {
					// A seeded fingerprint must never be seen as new.
					mu.Lock()
					ghostNews++
					mu.Unlock()
				}
				i += 7
			}
		}(g)
	}

	if _, err := c.JoinNode(extra); err != nil {
		t.Fatalf("JoinNode under load: %v", err)
	}
	close(stop)
	wg.Wait()

	if errCount > 0 {
		t.Fatalf("%d lookup errors during rebalance", errCount)
	}
	if ghostNews > 0 {
		t.Fatalf("%d seeded fingerprints reported as new during rebalance", ghostNews)
	}

	// Final state: everything still deduplicates.
	for i := uint64(0); i < n; i++ {
		r, err := c.LookupOrInsert(fp(i), 0)
		if err != nil {
			t.Fatalf("final check: %v", err)
		}
		if !r.Exists {
			t.Fatalf("fingerprint %d lost", i)
		}
	}
}

// TestConcurrentMembershipAndTraffic exercises AddNode/RemoveNode while
// batch lookups are in flight: the router must never panic or misroute to
// a detached backend.
func TestConcurrentMembershipAndTraffic(t *testing.T) {
	c := newTestCluster(t, 3, ClusterConfig{})
	const n = 1000
	for i := uint64(0); i < n; i++ {
		c.LookupOrInsert(fp(i), Value(i))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pairs := make([]Pair, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for j := range pairs {
					pairs[j] = Pair{FP: fp(uint64(j) % n), Val: 0}
				}
				// Errors are tolerated (a batch may race a member
				// leaving), and so is Exists=false: a key whose range
				// momentarily moved to the scratch node is re-inserted
				// there — the documented "one redundant upload" cost of
				// membership change without Rebalance. Panics and lost
				// entries are what this test must catch.
				_, _ = c.BatchLookupOrInsert(pairs)
			}
		}()
	}

	// Membership churn: repeatedly add and remove a scratch node (no
	// rebalance, so no data moves onto it before removal).
	for round := 0; round < 20; round++ {
		scratch, err := NewNode(NodeConfig{
			ID:            ring.NodeID(fmt.Sprintf("scratch-%d", round)),
			Store:         hashdb.NewMemStore(nil),
			CacheSize:     16,
			BloomExpected: 1024,
		})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		if err := c.AddNode(scratch); err != nil {
			t.Fatalf("AddNode: %v", err)
		}
		if err := c.RemoveNode(scratch.ID()); err != nil {
			t.Fatalf("RemoveNode: %v", err)
		}
		scratch.Close()
	}
	close(stop)
	wg.Wait()

	// With the ring back to the original members, every seeded entry is
	// on its original node: nothing was lost by the churn.
	for i := uint64(0); i < n; i++ {
		r, err := c.Lookup(fp(i))
		if err != nil {
			t.Fatalf("final Lookup: %v", err)
		}
		if !r.Exists {
			t.Fatalf("fingerprint %d lost across membership churn", i)
		}
	}
}
