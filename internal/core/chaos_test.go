package core

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

// TestConcurrentLookupsDuringRebalance hammers the cluster with lookups
// while a two-phase JoinNode migrates entries under it. Requirements: no
// errors, no seeded fingerprint ever reported as new (JoinNode pre-copies
// entries before flipping routing), and the final state is consistent.
func TestConcurrentLookupsDuringRebalance(t *testing.T) {
	nodes := make([]*Node, 3)
	backends := make([]Backend, 3)
	for i := range nodes {
		var err error
		nodes[i], err = NewNode(NodeConfig{
			ID:            ring.NodeID(fmt.Sprintf("node-%d", i)),
			Store:         hashdb.NewMemStore(nil),
			CacheSize:     256,
			BloomExpected: 1 << 16,
		})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		backends[i] = nodes[i]
	}
	c, err := NewCluster(ClusterConfig{}, backends...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()

	const n = 5000
	for i := uint64(0); i < n; i++ {
		if _, err := c.LookupOrInsert(context.Background(), fp(i), Value(i)); err != nil {
			t.Fatalf("seed insert: %v", err)
		}
	}

	extra, err := NewNode(NodeConfig{
		ID:            "node-new",
		Store:         hashdb.NewMemStore(nil),
		CacheSize:     256,
		BloomExpected: 1 << 16,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		errCount  int
		ghostNews int
	)
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := uint64(g)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Propose a value no seeded entry stores (seeds use
				// Value(0..n-1)): if a lookup races a migration, the
				// reconciliation path tells "migrated duplicate" from
				// "own racing insert" by value, and a colliding value
				// would be (safely, but test-visibly) reported as new.
				r, err := c.LookupOrInsert(context.Background(), fp(i%n), Value(n))
				if err != nil {
					mu.Lock()
					errCount++
					mu.Unlock()
					return
				}
				if !r.Exists {
					// A seeded fingerprint must never be seen as new.
					mu.Lock()
					ghostNews++
					mu.Unlock()
				}
				i += 7
			}
		}(g)
	}

	if _, err := c.JoinNode(context.Background(), extra); err != nil {
		t.Fatalf("JoinNode under load: %v", err)
	}
	close(stop)
	wg.Wait()

	if errCount > 0 {
		t.Fatalf("%d lookup errors during rebalance", errCount)
	}
	if ghostNews > 0 {
		t.Fatalf("%d seeded fingerprints reported as new during rebalance", ghostNews)
	}

	// Final state: everything still deduplicates.
	for i := uint64(0); i < n; i++ {
		r, err := c.LookupOrInsert(context.Background(), fp(i), 0)
		if err != nil {
			t.Fatalf("final check: %v", err)
		}
		if !r.Exists {
			t.Fatalf("fingerprint %d lost", i)
		}
	}
}

// TestFreshInsertsNeverReportedDuplicateDuringMigration guards the other
// direction of the rebalance race: while JoinNode/DrainNode migrations (and
// their membership-generation bumps) run continuously, a fingerprint seen
// for the very first time must always be reported as new — reporting it as
// a duplicate would drop the chunk from the upload plan and lose data. A
// reconciliation that re-reads its own insert (instead of checking whether
// the fingerprint's owner actually moved) fails this test.
func TestFreshInsertsNeverReportedDuplicateDuringMigration(t *testing.T) {
	c := newTestCluster(t, 3, ClusterConfig{})
	for i := uint64(0); i < 2000; i++ {
		if _, err := c.LookupOrInsert(context.Background(), fp(i), Value(i)); err != nil {
			t.Fatalf("seed insert: %v", err)
		}
	}

	stop := make(chan struct{})
	churnDone := make(chan error, 1)
	go func() {
		// Continuous migration traffic: join a scratch node (pre-copy +
		// routing flip + cleanup), then drain it back out. Drained nodes
		// stay open until the workers finish: a worker that resolved
		// routing just before the drain may still probe one, which must
		// answer, not error.
		var drained []*Node
		defer func() {
			for _, n := range drained {
				n.Close()
			}
		}()
		for round := 0; ; round++ {
			select {
			case <-stop:
				churnDone <- nil
				return
			default:
			}
			scratch, err := NewNode(NodeConfig{
				ID:            ring.NodeID(fmt.Sprintf("churn-%d", round)),
				Store:         hashdb.NewMemStore(nil),
				CacheSize:     256,
				BloomExpected: 1 << 16,
			})
			if err != nil {
				churnDone <- err
				return
			}
			if _, err := c.JoinNode(context.Background(), scratch); err != nil {
				churnDone <- err
				return
			}
			if _, err := c.DrainNode(context.Background(), scratch.ID()); err != nil {
				churnDone <- err
				return
			}
			drained = append(drained, scratch)
		}
	}()

	// Fresh fingerprints, never inserted before, each with a unique value.
	var next atomic.Uint64
	next.Store(1 << 20)
	var wg sync.WaitGroup
	var spuriousDups atomic.Uint64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 2000; k++ {
				i := next.Add(1)
				r, err := c.LookupOrInsert(context.Background(), fp(i), Value(i))
				if err != nil {
					t.Errorf("LookupOrInsert: %v", err)
					return
				}
				if r.Exists {
					spuriousDups.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	if err := <-churnDone; err != nil {
		t.Fatalf("membership churn: %v", err)
	}
	if t.Failed() {
		t.FailNow()
	}
	if d := spuriousDups.Load(); d > 0 {
		t.Fatalf("%d fresh fingerprints reported as duplicates during migration (chunks would never be uploaded)", d)
	}
}

// TestConcurrentMembershipAndTraffic exercises AddNode/RemoveNode while
// batch lookups are in flight: the router must never panic or misroute to
// a detached backend.
func TestConcurrentMembershipAndTraffic(t *testing.T) {
	c := newTestCluster(t, 3, ClusterConfig{})
	const n = 1000
	for i := uint64(0); i < n; i++ {
		c.LookupOrInsert(context.Background(), fp(i), Value(i))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pairs := make([]Pair, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for j := range pairs {
					pairs[j] = Pair{FP: fp(uint64(j) % n), Val: 0}
				}
				// Errors are tolerated (a batch may race a member
				// leaving), and so is Exists=false: a key whose range
				// momentarily moved to the scratch node is re-inserted
				// there — the documented "one redundant upload" cost of
				// membership change without Rebalance. Panics and lost
				// entries are what this test must catch.
				_, _ = c.BatchLookupOrInsert(context.Background(), pairs)
			}
		}()
	}

	// Membership churn: repeatedly add and remove a scratch node (no
	// rebalance, so no data moves onto it before removal).
	for round := 0; round < 20; round++ {
		scratch, err := NewNode(NodeConfig{
			ID:            ring.NodeID(fmt.Sprintf("scratch-%d", round)),
			Store:         hashdb.NewMemStore(nil),
			CacheSize:     16,
			BloomExpected: 1024,
		})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		if err := c.AddNode(scratch); err != nil {
			t.Fatalf("AddNode: %v", err)
		}
		if err := c.RemoveNode(scratch.ID()); err != nil {
			t.Fatalf("RemoveNode: %v", err)
		}
		scratch.Close()
	}
	close(stop)
	wg.Wait()

	// With the ring back to the original members, every seeded entry is
	// on its original node: nothing was lost by the churn.
	for i := uint64(0); i < n; i++ {
		r, err := c.Lookup(context.Background(), fp(i))
		if err != nil {
			t.Fatalf("final Lookup: %v", err)
		}
		if !r.Exists {
			t.Fatalf("fingerprint %d lost across membership churn", i)
		}
	}
}

// TestChaosDestageKillAndReopenDuringChurn extends the chaos suite with
// the durability dimension: while destage waves run on a journaled
// write-back node and JoinNode/DrainNode churn the membership, the node is
// killed mid-wave, reborn from its durable state (store + journal), and
// swapped back into the ring — and throughout all of it the cluster must
// never report a seeded fingerprint as new. Errors during the dead window
// are tolerated (callers retry); wrong answers are not.
func TestChaosDestageKillAndReopenDuringChurn(t *testing.T) {
	const (
		nodes  = 3
		seeded = 2000
	)
	dir := t.TempDir()
	backends := make([]Backend, nodes)
	hybrids := make([]*Node, nodes)
	inner := hashdb.NewMemStore(nil) // the killed node's durable medium
	var failpoint *hashdb.Failpoint
	victimJournal := filepath.Join(dir, "victim.wal")
	for i := range hybrids {
		var store hashdb.Store = hashdb.NewMemStore(nil)
		jpath := filepath.Join(dir, fmt.Sprintf("node-%d.wal", i))
		if i == nodes-1 {
			failpoint = hashdb.NewFailpoint(inner, math.MaxInt64, nil)
			store = failpoint
			jpath = victimJournal
		}
		n, err := NewNode(NodeConfig{
			ID:              ring.NodeID(fmt.Sprintf("node-%d", i)),
			Store:           store,
			CacheSize:       64,
			BloomExpected:   1 << 16,
			WriteBack:       true,
			JournalPath:     jpath,
			DestageBatch:    8,
			DestageInterval: 100 * time.Microsecond,
		})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		hybrids[i] = n
		backends[i] = n
	}
	victim := hybrids[nodes-1]
	c, err := NewCluster(ClusterConfig{}, backends...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()

	for i := uint64(0); i < seeded; i++ {
		if _, err := c.LookupOrInsert(context.Background(), fp(i), Value(i)); err != nil {
			t.Fatalf("seed insert: %v", err)
		}
	}
	// Make the seeds durable everywhere: after this, "reported as new"
	// can only come from lost state or routing bugs, never from the
	// write-back window.
	for _, n := range hybrids {
		if err := n.Flush(); err != nil {
			t.Fatalf("seed Flush: %v", err)
		}
	}

	// gate pauses workers and churn while the dead node is swapped out.
	var gate sync.RWMutex
	stop := make(chan struct{})
	var (
		wg        sync.WaitGroup
		ghostNews atomic.Uint64
	)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := uint64(g)
			for {
				select {
				case <-stop:
					return
				default:
				}
				gate.RLock()
				r, err := c.LookupOrInsert(context.Background(), fp(i%seeded), Value(seeded))
				gate.RUnlock()
				if err == nil && !r.Exists {
					ghostNews.Add(1)
				}
				i += 13
			}
		}(g)
	}
	// Fresh-insert traffic keeps destage waves in flight on every node.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := uint64(1 << 30)
		for {
			select {
			case <-stop:
				return
			default:
			}
			gate.RLock()
			c.LookupOrInsert(context.Background(), fp(i), Value(i))
			gate.RUnlock()
			i++
		}
	}()
	// Membership churn, one Join+Drain round per gate hold.
	churnDone := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var drained []*Node
		defer func() {
			for _, n := range drained {
				n.Close()
			}
		}()
		for round := 0; ; round++ {
			select {
			case <-stop:
				churnDone <- nil
				return
			default:
			}
			gate.RLock()
			scratch, err := NewNode(NodeConfig{
				ID:            ring.NodeID(fmt.Sprintf("churn-%d", round)),
				Store:         hashdb.NewMemStore(nil),
				CacheSize:     256,
				BloomExpected: 1 << 16,
			})
			if err == nil {
				if _, jerr := c.JoinNode(context.Background(), scratch); jerr == nil {
					if _, derr := c.DrainNode(context.Background(), scratch.ID()); derr != nil {
						err = derr
					}
				} else {
					err = jerr
				}
				drained = append(drained, scratch)
			}
			gate.RUnlock()
			if err != nil {
				churnDone <- err
				return
			}
		}
	}()

	// Let traffic and churn overlap, then kill the victim. The gate is
	// taken first so no worker or churn round spans the dead window — but
	// the destager keeps draining the dirty buffer the traffic left
	// behind, so the kill still lands against in-flight destage waves.
	time.Sleep(20 * time.Millisecond)
	gate.Lock()
	failpoint.Kill()
	time.Sleep(2 * time.Millisecond) // let in-flight waves fail against the dead store
	victim.Close()                   // error expected: the store is dead
	reborn, err := NewNode(NodeConfig{
		ID:              victim.ID(),
		Store:           inner, // the durable medium as the kill froze it
		CacheSize:       64,
		BloomExpected:   1 << 16,
		WriteBack:       true,
		JournalPath:     victimJournal,
		DestageBatch:    8,
		DestageInterval: 100 * time.Microsecond,
	})
	if err != nil {
		gate.Unlock()
		t.Fatalf("rebirth NewNode: %v", err)
	}
	if err := c.RemoveNode(victim.ID()); err != nil {
		gate.Unlock()
		t.Fatalf("RemoveNode: %v", err)
	}
	if err := c.AddNode(reborn); err != nil {
		gate.Unlock()
		t.Fatalf("AddNode: %v", err)
	}
	gate.Unlock()

	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := <-churnDone; err != nil {
		t.Fatalf("membership churn: %v", err)
	}
	if g := ghostNews.Load(); g > 0 {
		t.Fatalf("%d seeded fingerprints reported as new across kill-and-reopen", g)
	}
	// Final sweep: every seeded fingerprint is still a duplicate.
	for i := uint64(0); i < seeded; i++ {
		r, err := c.LookupOrInsert(context.Background(), fp(i), Value(seeded))
		if err != nil {
			t.Fatalf("final sweep Lookup(%d): %v", i, err)
		}
		if !r.Exists {
			t.Fatalf("seeded fingerprint %d lost across kill-and-reopen", i)
		}
	}
}
