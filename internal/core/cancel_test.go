package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shhc/internal/device"
	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

// gatedStore wraps a MemStore, parking every Get on a gate channel so
// tests can hold an SSD probe in the air at will. Close the gate to let
// probes through. Puts are counted but not gated.
type gatedStore struct {
	*hashdb.MemStore
	gate chan struct{} // receive one token per Get allowed through

	mu      sync.Mutex
	gets    int
	puts    int
	getting chan struct{} // closed once the first Get has started
	once    sync.Once
}

func newGatedStore() *gatedStore {
	return &gatedStore{
		MemStore: hashdb.NewMemStore(nil),
		gate:     make(chan struct{}),
		getting:  make(chan struct{}),
	}
}

func (g *gatedStore) Get(fp fingerprint.Fingerprint) (hashdb.Value, bool, error) {
	g.once.Do(func() { close(g.getting) })
	g.mu.Lock()
	g.gets++
	g.mu.Unlock()
	<-g.gate
	return g.MemStore.Get(fp)
}

func (g *gatedStore) Put(fp fingerprint.Fingerprint, v hashdb.Value) (bool, error) {
	g.mu.Lock()
	g.puts++
	g.mu.Unlock()
	return g.MemStore.Put(fp, v)
}

func (g *gatedStore) counts() (gets, puts int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.gets, g.puts
}

func newGatedNode(t *testing.T, store hashdb.Store) *Node {
	t.Helper()
	n, err := NewNode(NodeConfig{
		ID:    ring.NodeID("gated"),
		Store: store,
		// No cache and no bloom filter: every lookup reaches the SSD arm,
		// which is the phase under test.
		CacheSize:    0,
		DisableBloom: true,
		Stripes:      1,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	return n
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestCancelOwnerHandsFlightToRider: the owner of an in-flight SSD probe
// is cancelled while a rider waits on the same fingerprint. The owner must
// return ctx.Err() immediately; the probe must keep flying and answer the
// rider.
func TestCancelOwnerHandsFlightToRider(t *testing.T) {
	gs := newGatedStore()
	n := newGatedNode(t, gs)
	defer n.Close()

	fp := fingerprint.FromUint64(42)
	if _, err := gs.MemStore.Put(fp, 7); err != nil {
		t.Fatalf("seed store: %v", err)
	}

	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	ownerDone := make(chan error, 1)
	go func() {
		_, err := n.Lookup(ownerCtx, fp)
		ownerDone <- err
	}()
	<-gs.getting // owner's probe is in the air

	riderDone := make(chan LookupResult, 1)
	go func() {
		r, err := n.Lookup(context.Background(), fp)
		if err != nil {
			t.Errorf("rider: %v", err)
		}
		riderDone <- r
	}()
	// The rider has joined once it is counted as interested; the only
	// observable proxy without poking internals is a short settle plus the
	// final assertion that it got the flying probe's answer.
	waitCond(t, "rider to join the flight", func() bool {
		n.stripes[0].mu.Lock()
		defer n.stripes[0].mu.Unlock()
		f, ok := n.stripes[0].inflight[fp]
		return ok && f.interest >= 2
	})

	cancelOwner()
	select {
	case err := <-ownerDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled owner returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled owner did not return while its probe was gated")
	}

	// Let the probe land: the rider must get the stored answer.
	close(gs.gate)
	select {
	case r := <-riderDone:
		if !r.Exists || r.Value != 7 {
			t.Fatalf("rider result = %+v, want Exists=true Value=7", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("rider never got the handed-off flight's answer")
	}
	if gets, _ := gs.counts(); gets != 1 {
		t.Fatalf("store saw %d probes, want 1 (rider must adopt the owner's probe)", gets)
	}
}

// TestCancelOwnerWithoutRidersAbortsInsert: an owner cancelled with nobody
// else interested must abort the flight — in particular the insert its
// probe miss would have performed must not happen once the cancellation
// lands before the write is issued.
func TestCancelOwnerWithoutRidersAbortsInsert(t *testing.T) {
	gs := newGatedStore()
	n := newGatedNode(t, gs)
	defer n.Close()

	fp := fingerprint.FromUint64(99)
	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	ownerDone := make(chan error, 1)
	go func() {
		_, err := n.LookupOrInsert(ownerCtx, fp, 5)
		ownerDone <- err
	}()
	<-gs.getting

	cancelOwner()
	if err := <-ownerDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled owner returned %v, want context.Canceled", err)
	}

	// Release the gated probe; with interest zero the prober must skip
	// the insert and retire the flight as cancelled.
	close(gs.gate)
	waitCond(t, "flight retirement", func() bool {
		n.stripes[0].mu.Lock()
		defer n.stripes[0].mu.Unlock()
		_, ok := n.stripes[0].inflight[fp]
		return !ok
	})
	if _, puts := gs.counts(); puts != 0 {
		t.Fatalf("store saw %d puts after aborted insert, want 0", puts)
	}
	if got := gs.Len(); got != 0 {
		t.Fatalf("store holds %d entries after aborted insert, want 0", got)
	}

	// The abandoned flight must not poison later operations: a fresh
	// LookupOrInsert must succeed and insert.
	r, err := n.LookupOrInsert(context.Background(), fp, 5)
	if err != nil {
		t.Fatalf("post-abort LookupOrInsert: %v", err)
	}
	if r.Exists {
		t.Fatalf("post-abort LookupOrInsert reported duplicate; the aborted insert leaked")
	}
	if got := gs.Len(); got != 1 {
		t.Fatalf("store holds %d entries, want 1", got)
	}
}

// TestCancelRiderLeavesFlightIntact: a rider whose context is cancelled
// stops waiting without disturbing the owner's flight.
func TestCancelRiderLeavesFlightIntact(t *testing.T) {
	gs := newGatedStore()
	n := newGatedNode(t, gs)
	defer n.Close()

	fp := fingerprint.FromUint64(7)
	if _, err := gs.MemStore.Put(fp, 3); err != nil {
		t.Fatalf("seed store: %v", err)
	}

	// Owner with a cancellable context that is never cancelled (so the
	// prober runs detached but completes normally).
	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	defer cancelOwner()
	ownerDone := make(chan LookupResult, 1)
	go func() {
		r, err := n.Lookup(ownerCtx, fp)
		if err != nil {
			t.Errorf("owner: %v", err)
		}
		ownerDone <- r
	}()
	<-gs.getting

	riderCtx, cancelRider := context.WithCancel(context.Background())
	riderDone := make(chan error, 1)
	go func() {
		_, err := n.Lookup(riderCtx, fp)
		riderDone <- err
	}()
	waitCond(t, "rider to join the flight", func() bool {
		n.stripes[0].mu.Lock()
		defer n.stripes[0].mu.Unlock()
		f, ok := n.stripes[0].inflight[fp]
		return ok && f.interest >= 2
	})

	cancelRider()
	if err := <-riderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled rider returned %v, want context.Canceled", err)
	}

	close(gs.gate)
	select {
	case r := <-ownerDone:
		if !r.Exists || r.Value != 3 {
			t.Fatalf("owner result = %+v, want Exists=true Value=3", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("owner never completed after its rider left")
	}
}

// TestCancelBatchStopsDeviceReads: cancelling a batch mid-SSD-phase stops
// the store from being asked for further reads; the batch fails with the
// context error and the node remains usable.
func TestCancelBatchStopsDeviceReads(t *testing.T) {
	dev := device.New(device.Model{Name: "slow", ReadBase: 20 * time.Millisecond}, device.Sleep)
	store := hashdb.NewMemStore(dev)
	n, err := NewNode(NodeConfig{
		ID:           ring.NodeID("batch-cancel"),
		Store:        store,
		CacheSize:    0,
		DisableBloom: true,
		Stripes:      1,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer n.Close()

	const batch = 256
	fps := make([]fingerprint.Fingerprint, batch)
	for i := range fps {
		fps[i] = fingerprint.FromUint64(uint64(i))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = n.LookupBatch(ctx, fps)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled batch returned %v, want context.DeadlineExceeded", err)
	}
	// 256 reads at 20ms each over 16-way parallelism is ~320ms of modeled
	// time; hitting the 30ms deadline must abandon most of it.
	if elapsed > 200*time.Millisecond {
		t.Fatalf("cancelled batch took %v; device reads were not abandoned", elapsed)
	}
	reads := store.Device().Stats().Reads
	if reads >= batch {
		t.Fatalf("store issued all %d reads despite cancellation", reads)
	}

	// The node must stay usable afterwards.
	if _, err := n.LookupOrInsert(context.Background(), fps[0], 1); err != nil {
		t.Fatalf("post-cancel LookupOrInsert: %v", err)
	}
}

// failingPutStore fails every Put and PutBatch once armed; Gets pass
// through. PutBatch must be overridden too: the destager prefers the
// batched write path, and the promoted MemStore method would dodge the
// injected failure.
type failingPutStore struct {
	*hashdb.MemStore
	failPuts atomic.Bool
}

func (f *failingPutStore) Put(fp fingerprint.Fingerprint, v hashdb.Value) (bool, error) {
	if f.failPuts.Load() {
		return false, errors.New("injected put failure")
	}
	return f.MemStore.Put(fp, v)
}

func (f *failingPutStore) PutBatch(ctx context.Context, pairs []hashdb.Pair) ([]bool, int, error) {
	if f.failPuts.Load() {
		return nil, 0, errors.New("injected put failure")
	}
	return f.MemStore.PutBatch(ctx, pairs)
}

// TestCancelPathSurfacesDestageError: on a write-back node, a destage
// failure parked by an eviction must surface on the next insert even when
// that insert runs with a cancellable context (the prober-goroutine mode,
// whose discarded return value must not swallow the drained error).
func TestCancelPathSurfacesDestageError(t *testing.T) {
	fs := &failingPutStore{MemStore: hashdb.NewMemStore(nil)}
	n, err := NewNode(NodeConfig{
		ID:           ring.NodeID("wb"),
		Store:        fs,
		CacheSize:    2,
		DisableBloom: true, // force the flight-based insert arm
		WriteBack:    true,
		Stripes:      1,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer n.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel() // cancellable but never cancelled: prober mode
	fs.failPuts.Store(true)
	var lastErr error
	// Overflow the 2-entry cache: evictions feed the asynchronous
	// destager, its waves fail, and the parked failure must come back
	// out of a later LookupOrInsert. The destage is asynchronous, so
	// keep inserting until the error surfaces.
	deadline := time.Now().Add(5 * time.Second)
	for i := uint64(0); lastErr == nil && time.Now().Before(deadline); i++ {
		_, lastErr = n.LookupOrInsert(ctx, fingerprint.FromUint64(i), Value(i+1))
	}
	if lastErr == nil {
		t.Fatal("destage failure from write-back eviction was swallowed on the cancellable path")
	}
	if !strings.Contains(lastErr.Error(), "destage") {
		t.Fatalf("surfaced error %v does not identify the destage failure", lastErr)
	}
	fs.failPuts.Store(false)
}

// TestCancelStormNoGoroutineLeak hammers a slow node with lookups that are
// all cancelled and checks the goroutine count returns to baseline: no
// prober, owner, or rider may be left behind.
func TestCancelStormNoGoroutineLeak(t *testing.T) {
	dev := device.New(device.Model{Name: "slow", ReadBase: 2 * time.Millisecond}, device.Sleep)
	store := hashdb.NewMemStore(dev)
	n, err := NewNode(NodeConfig{
		ID:           ring.NodeID("storm"),
		Store:        store,
		CacheSize:    0,
		DisableBloom: true,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}

	before := runtime.NumGoroutine()
	const storm = 200
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*time.Millisecond)
			defer cancel()
			_, _ = n.LookupOrInsert(ctx, fingerprint.FromUint64(uint64(i%50)), Value(i))
		}(i)
	}
	wg.Wait()
	if err := n.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Probers may still be draining for a moment after Close returns
	// (Close waits for flights, so they should not be, but give the
	// runtime a beat to reap).
	waitCond(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+5
	})
}
