package core

// Replication: the machinery that makes Replicas > 1 mean durable copies.
//
// Three paths keep the owner's successor set converged on the same entries:
//
//   - Quorum fan-out (replicateInsert / the batch mirror waves in
//     cluster.go): every insert that creates an entry on its deciding node
//     is replicated to the remaining replicas as one ApplyRepair batch per
//     mirror, and the insert does not acknowledge until WriteQuorum
//     replicas hold it. On a write-back node with a journal, a replica's
//     ack is a durable ack (the batch does not return before the journal
//     group-commit fsync), so a quorum-acked insert survives the loss of
//     any quorum-minus-one nodes. An insert that cannot reach its quorum
//     (mirrors down) does NOT fail: the deciding node's copy is already
//     durable, so failing would poison the index — a retry would be
//     answered "duplicate" and the client would skip uploading a chunk no
//     one stored. Instead the insert degrades to the safe "new" answer
//     (counted in QuorumFailures), the client uploads, and the repair
//     queue / anti-entropy converge replication.
//   - Read-repair (enqueueRepair from the lookup paths): when a failover
//     or hedged lookup observes divergent answers — one replica hits while
//     another missed — the missing replicas are backfilled asynchronously
//     through the repair queue.
//   - Anti-entropy (AntiEntropy / the background sweeper): a full sweep
//     that enumerates every node's entries and re-replicates each to its
//     current successor set, healing under-replicated ranges after a
//     membership change or a wiped disk.
//
// Repair traffic is isolated from foreground load: it runs on a single
// background worker in coalesced batches, so a burst of read-repairs
// cannot multiply foreground latency.

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"shhc/internal/fingerprint"
	"shhc/internal/ring"
)

// replCounters holds the cluster's replication counters as atomics: the
// fan-out and repair paths bump them from many goroutines without taking
// the cluster lock.
type replCounters struct {
	fannedWrites        atomic.Uint64
	quorumWaits         atomic.Uint64
	quorumFailures      atomic.Uint64
	readRepairs         atomic.Uint64
	repairsQueued       atomic.Uint64
	repairsApplied      atomic.Uint64
	repairsDropped      atomic.Uint64
	antiEntropyRuns     atomic.Uint64
	antiEntropyScanned  atomic.Uint64
	antiEntropyChecked  atomic.Uint64
	antiEntropyRepaired atomic.Uint64
}

// RepairApplier is implemented by backends that support the dedicated
// repair/backfill verb (local *Node, and RPC clients whose peer negotiated
// protocol >= 4). ApplyRepair has exactly BatchLookupOrInsert semantics —
// existing entries keep their stored value, missing ones are created, and
// the per-pair results report which was which — but the receiver accounts
// the traffic as replication repair rather than foreground lookups.
type RepairApplier interface {
	ApplyRepair(ctx context.Context, pairs []Pair) ([]LookupResult, error)
}

var _ RepairApplier = (*Node)(nil)

// applyRepair sends a repair batch to a backend, using the dedicated verb
// when the backend supports it and falling back to BatchLookupOrInsert
// (identical presence semantics) for plain backends and pre-4 peers.
func applyRepair(ctx context.Context, b Backend, pairs []Pair) ([]LookupResult, error) {
	if ra, ok := b.(RepairApplier); ok {
		return ra.ApplyRepair(ctx, pairs)
	}
	return b.BatchLookupOrInsert(ctx, pairs)
}

// ReplicationStats snapshots the cluster's replication counters.
type ReplicationStats struct {
	// FannedWrites counts replica writes fanned out by inserts (one per
	// pair per mirror).
	FannedWrites uint64
	// QuorumWaits counts inserts that waited for mirror acks to reach the
	// write quorum; QuorumFailures counts inserts that could not meet the
	// quorum and degraded to the safe "new" answer (under-replicated until
	// the repair queue or anti-entropy converges them).
	QuorumWaits    uint64
	QuorumFailures uint64
	// ReadRepairs counts divergences observed by lookups (a replica
	// missing an entry another replica holds) that triggered a backfill.
	ReadRepairs uint64
	// RepairsQueued/Applied/Dropped track the async repair queue. Dropped
	// covers overflow, repair errors, and tasks invalidated by membership
	// changes; the anti-entropy sweep is the backstop for all of them.
	RepairsQueued  uint64
	RepairsApplied uint64
	RepairsDropped uint64
	// AntiEntropy* describe completed sweeps: entries enumerated, replica
	// checks issued, and entries that were actually missing on a replica
	// and got re-replicated.
	AntiEntropyRuns     uint64
	AntiEntropyScanned  uint64
	AntiEntropyChecked  uint64
	AntiEntropyRepaired uint64
}

// Replicated reports whether the cluster keeps more than one copy of
// each entry — i.e. whether the quorum/repair machinery is active.
func (c *Cluster) Replicated() bool { return c.replicas > 1 }

// ReplicationStats returns the cluster's replication counters.
func (c *Cluster) ReplicationStats() ReplicationStats {
	return ReplicationStats{
		FannedWrites:        c.repl.fannedWrites.Load(),
		QuorumWaits:         c.repl.quorumWaits.Load(),
		QuorumFailures:      c.repl.quorumFailures.Load(),
		ReadRepairs:         c.repl.readRepairs.Load(),
		RepairsQueued:       c.repl.repairsQueued.Load(),
		RepairsApplied:      c.repl.repairsApplied.Load(),
		RepairsDropped:      c.repl.repairsDropped.Load(),
		AntiEntropyRuns:     c.repl.antiEntropyRuns.Load(),
		AntiEntropyScanned:  c.repl.antiEntropyScanned.Load(),
		AntiEntropyChecked:  c.repl.antiEntropyChecked.Load(),
		AntiEntropyRepaired: c.repl.antiEntropyRepaired.Load(),
	}
}

const (
	// repairQueueCap bounds the coalesced repair queue; beyond it new
	// tasks are dropped (and counted) — anti-entropy heals what a dropped
	// repair would have.
	repairQueueCap = 8192
	// repairBatchSize is the largest ApplyRepair batch the worker sends
	// per target per drain round.
	repairBatchSize = 256
)

// repairKey coalesces repair tasks: at most one pending backfill per
// (target, fingerprint), carrying the latest value.
type repairKey struct {
	target ring.NodeID
	fp     fingerprint.Fingerprint
}

// enqueueRepair schedules an async backfill of fp -> val onto target.
// No-op when replication is off (no worker). Duplicate tasks coalesce.
func (c *Cluster) enqueueRepair(target ring.NodeID, fp fingerprint.Fingerprint, val Value) {
	if c.repairWake == nil {
		return
	}
	c.repairMu.Lock()
	k := repairKey{target, fp}
	if _, dup := c.repairTasks[k]; !dup {
		if len(c.repairOrder) >= repairQueueCap {
			c.repairMu.Unlock()
			c.repl.repairsDropped.Add(1)
			return
		}
		c.repairOrder = append(c.repairOrder, k)
		c.repl.repairsQueued.Add(1)
	}
	c.repairTasks[k] = val
	c.repairMu.Unlock()
	select {
	case c.repairWake <- struct{}{}:
	default:
	}
}

// FlushRepairs blocks until the repair queue is empty and the worker is
// idle (or ctx is done). Tests use it to make async read-repair
// deterministic; it is also a reasonable pre-shutdown barrier.
func (c *Cluster) FlushRepairs(ctx context.Context) error {
	if c.repairWake == nil {
		return nil
	}
	for {
		c.repairMu.Lock()
		idle := len(c.repairOrder) == 0 && !c.repairBusy
		c.repairMu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// repairWorker is the single background goroutine that drains the repair
// queue in coalesced per-target batches, keeping repair I/O off the
// foreground paths.
func (c *Cluster) repairWorker(ctx context.Context) {
	defer c.bgWg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.repairWake:
		}
		for c.drainRepairBatch(ctx) {
			if ctx.Err() != nil {
				return
			}
		}
	}
}

// drainRepairBatch pops up to repairBatchSize tasks, validates each against
// the current ring, and applies them grouped per target. Returns true if
// tasks remain queued.
func (c *Cluster) drainRepairBatch(ctx context.Context) bool {
	c.repairMu.Lock()
	n := len(c.repairOrder)
	if n == 0 {
		c.repairMu.Unlock()
		return false
	}
	if n > repairBatchSize {
		n = repairBatchSize
	}
	type task struct {
		key repairKey
		val Value
	}
	tasks := make([]task, 0, n)
	for _, k := range c.repairOrder[:n] {
		tasks = append(tasks, task{k, c.repairTasks[k]})
		delete(c.repairTasks, k)
	}
	c.repairOrder = append(c.repairOrder[:0:0], c.repairOrder[n:]...)
	c.repairBusy = true
	c.repairMu.Unlock()

	// Group valid tasks per target. A task whose target left the cluster,
	// or is no longer in the fingerprint's replica set (the entry's range
	// moved — e.g. the key was migrated or removed), is dropped: applying
	// it could resurrect an entry on a node that just migrated it off.
	groups := make(map[ring.NodeID][]Pair)
	var dropped uint64
	c.mu.RLock()
	for _, t := range tasks {
		if _, ok := c.backends[t.key.target]; !ok {
			dropped++
			continue
		}
		ids, err := c.ring.LookupN(t.key.fp, c.replicas)
		if err != nil {
			dropped++
			continue
		}
		valid := false
		for _, id := range ids {
			if id == t.key.target {
				valid = true
				break
			}
		}
		if !valid {
			dropped++
			continue
		}
		groups[t.key.target] = append(groups[t.key.target], Pair{FP: t.key.fp, Val: t.val})
	}
	backends := make(map[ring.NodeID]Backend, len(groups))
	for id := range groups {
		backends[id] = c.backends[id]
	}
	c.mu.RUnlock()

	for id, pairs := range groups {
		if _, err := applyRepair(ctx, backends[id], pairs); err != nil {
			// Best-effort: a failed repair is dropped, not retried — the
			// anti-entropy sweep is the backstop.
			dropped += uint64(len(pairs))
			continue
		}
		c.repl.repairsApplied.Add(uint64(len(pairs)))
	}
	if dropped > 0 {
		c.repl.repairsDropped.Add(dropped)
	}

	c.repairMu.Lock()
	c.repairBusy = false
	more := len(c.repairOrder) > 0
	c.repairMu.Unlock()
	return more
}

// readRepair backfills fp -> val onto the replicas observed missing it.
func (c *Cluster) readRepair(missers []Backend, fp fingerprint.Fingerprint, val Value) {
	if len(missers) == 0 || c.noReadRepair {
		return
	}
	for _, m := range missers {
		c.enqueueRepair(m.ID(), fp, val)
	}
	c.repl.readRepairs.Add(uint64(len(missers)))
}

// replicateInsert fans a freshly created entry to the deciding node's
// co-replicas and waits for the write quorum. targets is the full replica
// set (owner first); decided indexes the node whose LookupOrInsert created
// the entry (it counts as the first ack). A mirror that reports the entry
// already present under a different locator reveals a divergence: the
// mirror's copy predates this insert, so the result is flipped to its
// duplicate answer — the same safe bias as reconcileMiss (a wrong "new"
// costs one redundant upload; a wrong "duplicate" would lose data, and
// here the mirror's copy proves the chunk is stored). Mirrors that fail
// are queued for async repair; stragglers past the quorum keep running and
// account for themselves.
//
// replicateInsert never fails the insert: by the time it runs, the
// deciding node holds the entry durably, and an error here would be
// indistinguishable — on retry — from a stored duplicate, making the
// client skip the upload of a chunk that was never stored. When the
// quorum cannot be met (or the caller cancels mid-wait), the insert
// degrades: QuorumFailures is bumped, the safe "new" answer stands, and
// the missing mirrors converge through the repair queue / anti-entropy.
func (c *Cluster) replicateInsert(ctx context.Context, fp fingerprint.Fingerprint, val Value, targets []Backend, decided int, res *LookupResult) {
	required := c.quorum
	if required > len(targets) {
		required = len(targets)
	}
	type outcome struct {
		r  LookupResult
		ok bool
	}
	ch := make(chan outcome, len(targets)-1)
	fanned := 0
	for i, m := range targets {
		if i == decided {
			continue
		}
		fanned++
		go func(m Backend) {
			rs, err := applyRepair(ctx, m, []Pair{{FP: fp, Val: val}})
			if err != nil || len(rs) != 1 {
				c.enqueueRepair(m.ID(), fp, val)
				ch <- outcome{ok: false}
				return
			}
			ch <- outcome{r: rs[0], ok: true}
		}(m)
	}
	c.repl.fannedWrites.Add(uint64(fanned))
	if required > 1 {
		c.repl.quorumWaits.Add(1)
	}
	acks, done := 1, 0 // the deciding node's ack is durable already
	for acks < required {
		if done == fanned {
			// Quorum unmet: every failed mirror is already queued for
			// repair. Degrade to the "new" answer instead of erroring —
			// see the function comment.
			c.repl.quorumFailures.Add(1)
			return
		}
		select {
		case o := <-ch:
			done++
			if !o.ok {
				continue
			}
			acks++
			// A mirror that already held the pair means the fingerprint
			// existed before this insert — the decider's miss was a
			// divergence (e.g. a wiped disk), not a first sighting. Flip
			// the answer to the duplicate the mirror preserved; the
			// decider's own insert just backfilled itself.
			if o.r.Exists && !res.Exists {
				*res = o.r
				c.repl.readRepairs.Add(1)
			}
		case <-ctx.Done():
			// The caller is leaving, but the decider's insert is durable:
			// degrade rather than error (the in-flight mirrors enqueue
			// their own repairs when the cancellation reaches them).
			c.repl.quorumFailures.Add(1)
			return
		}
	}
}

// replicateBatch fans one owner group's freshly created pairs (the misses
// in rs) to their mirror replicas as a single ApplyRepair wave per mirror
// node — the batched analogue of replicateInsert, and the reason batch
// replication costs one extra group-commit wave per replica instead of a
// per-key fan-out. indices maps group-local positions to the caller's
// results slice; a mirror that reports a pair already present flips that
// pair's result to the duplicate answer (see replicateInsert for the
// bias). The call returns as soon as every created pair has met its write
// quorum — waves still in the air past that point complete asynchronously
// and account for themselves, so batch latency is set by the quorum, not
// the slowest replica. Failed waves are queued for async repair, and —
// like replicateInsert — a pair left below its quorum never fails the
// batch: the owner's copies are durable, so the batch degrades to the
// safe "new" answers (counted in QuorumFailures) and replication
// converges through repair.
func (c *Cluster) replicateBatch(ctx context.Context, pairs []Pair, indices []int, mirrors [][]Backend, rs []LookupResult, results []LookupResult) {
	type wave struct {
		backend Backend
		pairs   []Pair
		ks      []int // group-local pair positions
	}
	// requiredFor clamps the write quorum to the pair's reachable replica
	// set (the cluster may be smaller than Replicas).
	requiredFor := func(k int) int {
		required := c.quorum
		if lim := 1 + len(mirrors[k]); required > lim {
			required = lim
		}
		return required
	}
	waves := make(map[ring.NodeID]*wave)
	var fanned, waited uint64
	missCount := 0
	for k, r := range rs {
		if r.Exists || len(mirrors[k]) == 0 {
			continue
		}
		missCount++
		if requiredFor(k) > 1 {
			waited++
		}
		for _, m := range mirrors[k] {
			w := waves[m.ID()]
			if w == nil {
				w = &wave{backend: m}
				waves[m.ID()] = w
			}
			w.pairs = append(w.pairs, pairs[k])
			w.ks = append(w.ks, k)
			fanned++
		}
	}
	if missCount == 0 {
		return
	}
	c.repl.fannedWrites.Add(fanned)
	c.repl.quorumWaits.Add(waited)

	// Wave goroutines never touch acks or results — both are owned by this
	// goroutine, which may hand results back to the caller while straggler
	// waves are still in flight. Outcomes flow through a channel buffered
	// for every wave, so stragglers never block or leak.
	type outcome struct {
		w   *wave
		out []LookupResult // nil when the wave failed
	}
	ch := make(chan outcome, len(waves))
	for _, w := range waves {
		w := w
		go func() {
			out, err := applyRepair(ctx, w.backend, w.pairs)
			if err != nil || len(out) != len(w.pairs) {
				for _, p := range w.pairs {
					c.enqueueRepair(w.backend.ID(), p.FP, p.Val)
				}
				ch <- outcome{w: w}
				return
			}
			ch <- outcome{w: w, out: out}
		}()
	}

	// pending counts the created pairs still short of their write quorum;
	// once it reaches zero the batch is acked and the remaining waves are
	// stragglers (their duplicate-flips are dropped — the safe direction).
	acks := make([]int, len(pairs)) // mirror acks per group-local pair
	pending := 0
	for k, r := range rs {
		if r.Exists || len(mirrors[k]) == 0 {
			continue
		}
		if requiredFor(k) > 1 {
			pending++
		}
	}
	for seen := 0; pending > 0 && seen < len(waves); seen++ {
		o := <-ch
		if o.out == nil {
			continue
		}
		for i, r2 := range o.out {
			k := o.w.ks[i]
			acks[k]++
			if 1+acks[k] == requiredFor(k) {
				pending--
			}
			// Same flip as replicateInsert: a mirror that already held
			// the pair proves the decider's miss was divergence.
			if r2.Exists && !results[indices[k]].Exists {
				results[indices[k]] = r2
				c.repl.readRepairs.Add(1)
			}
		}
	}
	// Every wave answered and some pairs are still below quorum: degrade
	// instead of failing (see replicateInsert) — their repairs are queued.
	if pending > 0 {
		c.repl.quorumFailures.Add(uint64(pending))
	}
}

// AntiEntropyStats summarizes one anti-entropy sweep.
type AntiEntropyStats struct {
	// Sources is the number of backends whose entries were enumerated;
	// Skipped counts backends that cannot enumerate (e.g. RPC clients —
	// their node's own cluster view sweeps them).
	Sources int
	Skipped int
	// Scanned is the number of entries enumerated across sources; Checked
	// the number of (entry, replica) checks issued; Repaired the number of
	// checks that found the entry missing and re-replicated it.
	Scanned  int
	Checked  int
	Repaired int
}

// entrySource is the slice of Migrator anti-entropy needs: enumeration
// only, never removal.
type entrySource interface {
	Entries(ctx context.Context, fn func(fp fingerprint.Fingerprint, val Value) bool) error
}

// antiEntropyChunk bounds one ApplyRepair batch issued by the sweep.
const antiEntropyChunk = 512

// AntiEntropy walks the ring and re-replicates under-replicated ranges:
// every entry on every enumerable backend is pushed (with keep-existing
// semantics) to the replicas its current ring placement names, so a
// cluster that shrank, grew, or had a disk wiped converges back to full
// replication. The background sweeper (always running when Replicas > 1)
// calls this after membership changes, and on a periodic tick when
// ClusterConfig.AntiEntropyInterval is set; it is also safe to call
// manually at any time. ctx cancels the sweep between batches.
func (c *Cluster) AntiEntropy(ctx context.Context) (AntiEntropyStats, error) {
	var st AntiEntropyStats
	if c.replicas <= 1 {
		return st, nil
	}
	c.mu.RLock()
	sources := make([]Backend, 0, len(c.backends))
	for _, b := range c.backends {
		sources = append(sources, b)
	}
	c.mu.RUnlock()

	for _, src := range sources {
		es, ok := src.(entrySource)
		if !ok {
			st.Skipped++
			continue
		}
		st.Sources++
		// Collect first: Entries holds the node's stripe locks, and
		// issuing repairs (which insert) from inside the callback would
		// deadlock or mutate the store mid-iteration.
		var entries []Pair
		if err := es.Entries(ctx, func(fp fingerprint.Fingerprint, val Value) bool {
			entries = append(entries, Pair{FP: fp, Val: val})
			return ctx.Err() == nil
		}); err != nil {
			return st, fmt.Errorf("core: anti-entropy: enumerate %s: %w", src.ID(), err)
		}
		if err := ctx.Err(); err != nil {
			return st, err
		}
		st.Scanned += len(entries)

		// Bucket each entry to the replicas its current placement names.
		srcID := src.ID()
		buckets := make(map[ring.NodeID][]Pair)
		c.mu.RLock()
		for _, e := range entries {
			ids, err := c.ring.LookupN(e.FP, c.replicas)
			if err != nil {
				continue
			}
			for _, id := range ids {
				if id == srcID {
					continue
				}
				if _, ok := c.backends[id]; !ok {
					continue
				}
				buckets[id] = append(buckets[id], e)
			}
		}
		targets := make(map[ring.NodeID]Backend, len(buckets))
		for id := range buckets {
			targets[id] = c.backends[id]
		}
		c.mu.RUnlock()

		for id, pairs := range buckets {
			for len(pairs) > 0 {
				if err := ctx.Err(); err != nil {
					return st, err
				}
				chunk := pairs
				if len(chunk) > antiEntropyChunk {
					chunk = chunk[:antiEntropyChunk]
				}
				pairs = pairs[len(chunk):]
				rs, err := applyRepair(ctx, targets[id], chunk)
				if err != nil {
					return st, fmt.Errorf("core: anti-entropy: repair %s: %w", id, err)
				}
				st.Checked += len(chunk)
				for _, r := range rs {
					if !r.Exists {
						st.Repaired++
					}
				}
			}
		}
	}
	c.repl.antiEntropyRuns.Add(1)
	c.repl.antiEntropyScanned.Add(uint64(st.Scanned))
	c.repl.antiEntropyChecked.Add(uint64(st.Checked))
	c.repl.antiEntropyRepaired.Add(uint64(st.Repaired))
	return st, nil
}

// antiEntropyLoop is the background sweeper: it runs AntiEntropy
// immediately after a membership change (AddNode, RemoveNode, JoinNode,
// DrainNode signal aeWake), so a shrunk cluster starts healing without
// waiting out the interval, and — when an interval is configured — on
// every periodic tick. It runs whenever Replicas > 1: the repair queue
// drops overflow and failed repairs on the promise that a sweep will
// heal them, so at minimum the membership-triggered sweeps must exist.
func (c *Cluster) antiEntropyLoop(ctx context.Context, interval time.Duration) {
	defer c.bgWg.Done()
	var tick <-chan time.Time // nil (blocks forever) without an interval
	if interval > 0 {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick:
		case <-c.aeWake:
		}
		// Sweep errors are not fatal to the loop: the next trigger retries.
		_, _ = c.AntiEntropy(ctx)
	}
}

// signalMembershipChange wakes the anti-entropy sweeper (if running).
// Callers hold c.mu.
func (c *Cluster) signalMembershipChange() {
	if c.aeWake == nil {
		return
	}
	select {
	case c.aeWake <- struct{}{}:
	default:
	}
}
