package core

// The wipe-disk chaos harness — the PR's headline scenario. A 3-node
// replicated cluster (file-backed stores, journaled write-back, majority
// quorum) is seeded, then one node is killed, its disk WIPED (hash table
// and journal deleted), and an empty node with the same identity rejoins
// the ring — all while reader and writer goroutines hammer the seeded
// fingerprints. The invariants:
//
//   - No ghost news, ever: at no point — owner dead, owner wiped-empty,
//     mid-repair — may the cluster report a seeded fingerprint as new.
//     A wiped replica's miss is a divergence to repair, not an answer.
//   - Anti-entropy heals the wipe: after one sweep plus queue drain,
//     every seeded fingerprint is present on its full replica set with
//     its original value, and the sweep's own accounting (and the
//     cluster's replication counters) show the repairs happened.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

const (
	wipeSeeds   = 1500 // seeded fingerprints
	wipeHotSet  = 300  // prefix the chaos workers hammer (the rest is left for anti-entropy)
	wipeWorkers = 4
)

func wipeVal(i uint64) Value { return Value(i + 1) }

// newWipeNode builds one journaled write-back node over a file-backed
// hash table under dir.
func newWipeNode(t *testing.T, dir string, id ring.NodeID) *Node {
	t.Helper()
	db, err := hashdb.Create(filepath.Join(dir, string(id)+".shdb"), hashdb.Options{ExpectedItems: 1 << 12})
	if err != nil {
		t.Fatalf("hashdb.Create(%s): %v", id, err)
	}
	n, err := NewNode(NodeConfig{
		ID:              id,
		Store:           db,
		CacheSize:       64,
		BloomExpected:   1 << 12,
		WriteBack:       true,
		JournalPath:     filepath.Join(dir, string(id)+".wal"),
		DestageBatch:    8,
		DestageInterval: 200 * time.Microsecond,
		DestageQueue:    32,
	})
	if err != nil {
		t.Fatalf("NewNode(%s): %v", id, err)
	}
	return n
}

func TestChaosWipeDiskRejoinAndAntiEntropy(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	nodes := make([]*Node, 3)
	backends := make([]Backend, 3)
	for i := range nodes {
		nodes[i] = newWipeNode(t, dir, ring.NodeID(fmt.Sprintf("node-%d", i)))
		backends[i] = nodes[i]
	}
	c, err := NewCluster(ClusterConfig{Replicas: 2}, backends...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()

	// Seed. Every ack is quorum-backed: two durable copies.
	pairs := make([]Pair, wipeSeeds)
	for i := range pairs {
		pairs[i] = Pair{FP: fingerprint.FromUint64(uint64(i)), Val: wipeVal(uint64(i))}
	}
	rs, err := c.BatchLookupOrInsert(ctx, pairs)
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	for i, r := range rs {
		if r.Exists {
			t.Fatalf("seed %d reported existing", i)
		}
	}

	// Chaos workers: readers and re-inserters over the hot set. A ghost
	// new — a seeded fingerprint reported as not existing — is the
	// dedup-correctness violation this harness exists to catch. Write
	// workers re-propose the ORIGINAL value, as a backup client
	// re-uploading a chunk would; transport errors (the victim dies mid
	// chaos) are tolerated and counted separately.
	var (
		ghostNews atomic.Int64
		softErrs  atomic.Int64
		stop      = make(chan struct{})
		wg        sync.WaitGroup
	)
	for w := 0; w < wipeWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := uint64(rng.Intn(wipeHotSet))
				fp := fingerprint.FromUint64(i)
				var r LookupResult
				var err error
				if w%2 == 0 {
					r, err = c.Lookup(ctx, fp)
				} else {
					r, err = c.LookupOrInsert(ctx, fp, wipeVal(i))
				}
				if err != nil {
					softErrs.Add(1)
					continue
				}
				if !r.Exists {
					ghostNews.Add(1)
					t.Errorf("ghost new: seeded fingerprint %d reported as new", i)
					return
				}
				if r.Value != wipeVal(i) {
					t.Errorf("seeded fingerprint %d answered with value %d, want %d", i, r.Value, wipeVal(i))
					return
				}
			}
		}(w)
	}

	victim := nodes[1]
	victimID := victim.ID()

	// Kill: the victim stops answering while still a ring member, so
	// lookups exercise failover and miss-verification against a dead
	// replica.
	time.Sleep(5 * time.Millisecond)
	victim.Close()
	time.Sleep(5 * time.Millisecond)

	// Wipe: the disk is gone — hash table file and destage journal both.
	if err := c.RemoveNode(victimID); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if err := os.Remove(filepath.Join(dir, string(victimID)+".shdb")); err != nil {
		t.Fatalf("wipe store: %v", err)
	}
	if err := os.Remove(filepath.Join(dir, string(victimID)+".wal")); err != nil {
		t.Fatalf("wipe journal: %v", err)
	}

	// Rejoin: same identity, empty disks. From here every lookup that
	// routes to the reborn node sees a miss it must not trust.
	reborn := newWipeNode(t, dir, victimID)
	nodes[1] = reborn
	if err := c.AddNode(reborn); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	time.Sleep(10 * time.Millisecond) // chaos window: workers vs. empty rejoined owner

	// Heal: one sweep re-replicates everything the wipe lost (the hot
	// set may already have been partially backfilled by read-repair; the
	// cold majority of the key space has only anti-entropy). The
	// membership changes above also woke the background sweeper, which
	// races this manual sweep — some sweep must have repaired entries,
	// but it may be either one, so poll the cumulative counter.
	if _, err := c.AntiEntropy(ctx); err != nil {
		t.Fatalf("AntiEntropy: %v", err)
	}
	healDeadline := time.Now().Add(5 * time.Second)
	for c.ReplicationStats().AntiEntropyRepaired == 0 {
		if time.Now().After(healDeadline) {
			t.Fatal("no sweep repaired anything after the wipe")
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.FlushRepairs(ctx); err != nil {
		t.Fatalf("FlushRepairs: %v", err)
	}

	close(stop)
	wg.Wait()
	if n := ghostNews.Load(); n != 0 {
		t.Fatalf("%d ghost news during chaos (soft errors: %d)", n, softErrs.Load())
	}

	// Replication restored: every seeded fingerprint is on its full
	// replica set with its original value.
	for i := uint64(0); i < wipeSeeds; i++ {
		fp := fingerprint.FromUint64(i)
		replicas, err := c.routingFor(fp)
		if err != nil {
			t.Fatalf("routingFor: %v", err)
		}
		if len(replicas) != 2 {
			t.Fatalf("fingerprint %d has %d replicas, want 2", i, len(replicas))
		}
		for _, b := range replicas {
			r, err := b.Lookup(ctx, fp)
			if err != nil {
				t.Fatalf("replica %s lookup %d after heal: %v", b.ID(), i, err)
			}
			if !r.Exists || r.Value != wipeVal(i) {
				t.Fatalf("replica %s of fingerprint %d = %+v, want exists value %d", b.ID(), i, r, wipeVal(i))
			}
		}
	}

	// Full client-visible sweep: re-proposing every seeded fingerprint
	// must report duplicates across the board — zero ghost news after a
	// wipe, kill, and rejoin.
	rs, err = c.BatchLookupOrInsert(ctx, pairs)
	if err != nil {
		t.Fatalf("final sweep: %v", err)
	}
	for i, r := range rs {
		if !r.Exists || r.Value != wipeVal(uint64(i)) {
			t.Fatalf("final sweep: seeded fingerprint %d = %+v, want exists value %d", i, r, wipeVal(uint64(i)))
		}
	}

	// The counters that webfront surfaces must show the healing happened.
	repl := c.ReplicationStats()
	if repl.AntiEntropyRuns == 0 || repl.AntiEntropyRepaired == 0 {
		t.Fatalf("replication counters missed the sweep: %+v", repl)
	}
}
