package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

func benchNode(b *testing.B, cacheSize int, disableBloom bool) *Node {
	b.Helper()
	n, err := NewNode(NodeConfig{
		ID:            "bench",
		Store:         hashdb.NewMemStore(nil),
		CacheSize:     cacheSize,
		DisableBloom:  disableBloom,
		BloomExpected: 1 << 21,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { n.Close() })
	return n
}

func BenchmarkNodeInsertUnique(b *testing.B) {
	n := benchNode(b, 1<<16, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.LookupOrInsert(context.Background(), fp(uint64(i)), Value(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNodeLookupCacheHit(b *testing.B) {
	n := benchNode(b, 1<<16, false)
	const working = 1 << 10 // fits in cache
	for i := 0; i < working; i++ {
		n.LookupOrInsert(context.Background(), fp(uint64(i)), Value(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.LookupOrInsert(context.Background(), fp(uint64(i%working)), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNodeLookupStoreHit(b *testing.B) {
	n := benchNode(b, 16, false) // tiny cache: force store path
	const working = 1 << 16
	for i := 0; i < working; i++ {
		n.LookupOrInsert(context.Background(), fp(uint64(i)), Value(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.LookupOrInsert(context.Background(), fp(uint64(i%working)), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNodeBatch(b *testing.B) {
	for _, size := range []int{128, 2048} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			n := benchNode(b, 1<<16, false)
			pairs := make([]Pair, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range pairs {
					pairs[j] = Pair{FP: fp(uint64(i*size + j)), Val: Value(j)}
				}
				if _, err := n.BatchLookupOrInsert(context.Background(), pairs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(size), "pairs/op")
		})
	}
}

// BenchmarkNodeLookupParallel measures lookup throughput under concurrent
// load, before (stripes=1, the seed's single-lock node) and after (striped)
// the hot-path sharding. Run with -cpu 1,8 to see the scaling:
//
//	go test -bench BenchmarkNodeLookupParallel -cpu 1,8 ./internal/core
func BenchmarkNodeLookupParallel(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		stripes int
	}{
		{"striped", 0},   // after: GOMAXPROCS-based stripe count
		{"stripes=1", 1}, // before: fully serialized node
	} {
		b.Run(cfg.name, func(b *testing.B) {
			n, err := NewNode(NodeConfig{
				ID:            "parallel",
				Store:         hashdb.NewMemStore(nil),
				CacheSize:     1 << 16,
				BloomExpected: 1 << 17,
				Stripes:       cfg.stripes,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { n.Close() })
			const working = 1 << 15 // fits in cache: measures the RAM tier
			for i := uint64(0); i < working; i++ {
				if _, err := n.LookupOrInsert(context.Background(), fp(i), Value(i)); err != nil {
					b.Fatal(err)
				}
			}
			var offset atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := offset.Add(working / 8)
				for pb.Next() {
					if _, err := n.LookupOrInsert(context.Background(), fp(i%working), 0); err != nil {
						b.Fatal(err)
					}
					i += 7
				}
			})
		})
	}
}

// BenchmarkNodeBatchParallel measures one big batch partitioned across
// stripes (the LookupBatch/BatchLookupOrInsert fan-out path).
func BenchmarkNodeBatchParallel(b *testing.B) {
	n := benchNode(b, 1<<16, false)
	const size = 2048
	pairs := make([]Pair, size)
	for j := range pairs {
		pairs[j] = Pair{FP: fp(uint64(j)), Val: Value(j)}
	}
	if _, err := n.BatchLookupOrInsert(context.Background(), pairs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.BatchLookupOrInsert(context.Background(), pairs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(size), "pairs/op")
}

func BenchmarkClusterRoutingOverhead(b *testing.B) {
	backends := make([]Backend, 4)
	for i := range backends {
		n, err := NewNode(NodeConfig{
			ID:            ring.NodeID(fmt.Sprintf("n%d", i)),
			Store:         hashdb.NewMemStore(nil),
			CacheSize:     1 << 12,
			BloomExpected: 1 << 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		backends[i] = n
	}
	c, err := NewCluster(ClusterConfig{}, backends...)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.LookupOrInsert(context.Background(), fp(uint64(i)), Value(i)); err != nil {
			b.Fatal(err)
		}
	}
}
