package core

import (
	"context"
	"sync"
	"testing"

	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
)

// TestConcurrentLookupStatsConsistency hammers one striped node from many
// goroutines with an overlapping key set and asserts the invariants the
// stripe design must preserve:
//
//   - every lookup is answered by exactly one tier, so the per-source
//     counters sum to Lookups across all stripes;
//   - each unique fingerprint is inserted exactly once (per-fingerprint
//     serialization), never duplicated by a racing pair of lookups;
//   - a duplicate always returns the value the first insert assigned.
//
// Run under -race this also proves the cache/bloom/store sharing is sound.
func TestConcurrentLookupStatsConsistency(t *testing.T) {
	n := newMemNode(t, NodeConfig{CacheSize: 1 << 12, BloomExpected: 1 << 16})
	if n.Stripes() < 2 {
		t.Fatalf("default Stripes() = %d, want >= 2 for a meaningful test", n.Stripes())
	}

	const (
		goroutines = 8
		opsPer     = 4000
		uniques    = 3000 // < goroutines*opsPer: heavy cross-goroutine overlap
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				key := uint64((g*opsPer + i*13) % uniques)
				r, err := n.LookupOrInsert(context.Background(), fp(key), Value(key))
				if err != nil {
					errs <- err
					return
				}
				if r.Exists && r.Value != Value(key) {
					t.Errorf("fp(%d) returned value %d, want %d", key, r.Value, key)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("LookupOrInsert: %v", err)
	}

	st, err := n.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Lookups != goroutines*opsPer {
		t.Fatalf("Lookups = %d, want %d", st.Lookups, goroutines*opsPer)
	}
	answered := st.CacheHits + st.BloomShort + st.StoreHits + st.StoreMisses
	if answered != st.Lookups {
		t.Fatalf("tier counters sum to %d (cache %d + bloom %d + store hits %d + store misses %d), want Lookups = %d",
			answered, st.CacheHits, st.BloomShort, st.StoreHits, st.StoreMisses, st.Lookups)
	}
	if st.Inserts != uniques {
		t.Fatalf("Inserts = %d, want exactly %d (one per unique fingerprint)", st.Inserts, uniques)
	}
	if st.StoreEntries != uniques {
		t.Fatalf("StoreEntries = %d, want %d", st.StoreEntries, uniques)
	}
}

// TestConcurrentBatchesAcrossStripes runs overlapping batches from many
// goroutines and verifies the partitioned batch path keeps the same
// exactly-once insert semantics as single lookups.
func TestConcurrentBatchesAcrossStripes(t *testing.T) {
	n := newMemNode(t, NodeConfig{CacheSize: 1 << 12, BloomExpected: 1 << 16})

	const (
		goroutines = 6
		batches    = 40
		batchSize  = 128
		uniques    = 1000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pairs := make([]Pair, batchSize)
			for r := 0; r < batches; r++ {
				for j := range pairs {
					key := uint64((g + r*batchSize + j*7) % uniques)
					pairs[j] = Pair{FP: fp(key), Val: Value(key)}
				}
				rs, err := n.BatchLookupOrInsert(context.Background(), pairs)
				if err != nil {
					t.Errorf("BatchLookupOrInsert: %v", err)
					return
				}
				for j, r := range rs {
					if r.Exists && r.Value != pairs[j].Val {
						t.Errorf("batch item %d: value %d, want %d", j, r.Value, pairs[j].Val)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	st, err := n.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Inserts != uniques {
		t.Fatalf("Inserts = %d, want %d", st.Inserts, uniques)
	}
	if got := st.CacheHits + st.BloomShort + st.StoreHits + st.StoreMisses; got != st.Lookups {
		t.Fatalf("tier counters sum to %d, want Lookups = %d", got, st.Lookups)
	}
	if st.StoreEntries != uniques {
		t.Fatalf("StoreEntries = %d, want %d", st.StoreEntries, uniques)
	}
}

// TestLookupBatchReadOnly verifies the read-only batch path: it partitions
// like BatchLookupOrInsert but never creates entries.
func TestLookupBatchReadOnly(t *testing.T) {
	n := newMemNode(t, NodeConfig{CacheSize: 64})
	for i := uint64(0); i < 10; i++ {
		if _, err := n.LookupOrInsert(context.Background(), fp(i), Value(i)); err != nil {
			t.Fatalf("seed: %v", err)
		}
	}
	query := make([]fingerprint.Fingerprint, 20)
	for i := range query {
		query[i] = fp(uint64(i))
	}
	rs, err := n.LookupBatch(context.Background(), query)
	if err != nil {
		t.Fatalf("LookupBatch: %v", err)
	}
	for i, r := range rs {
		if i < 10 && (!r.Exists || r.Value != Value(i)) {
			t.Fatalf("seeded item %d = %+v, want exists value %d", i, r, i)
		}
		if i >= 10 && r.Exists {
			t.Fatalf("absent item %d reported as existing", i)
		}
	}
	st, _ := n.Stats(context.Background())
	if st.Inserts != 10 {
		t.Fatalf("Inserts = %d after read-only batch, want 10", st.Inserts)
	}
}

// TestWriteBackConcurrentDestage drives a small write-back cache hard
// enough to destage continuously and checks no entry is lost between the
// cache and the store.
func TestWriteBackConcurrentDestage(t *testing.T) {
	store := hashdb.NewMemStore(nil)
	n := newMemNode(t, NodeConfig{Store: store, CacheSize: 64, WriteBack: true, BloomExpected: 1 << 16})

	const (
		goroutines = 8
		uniques    = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < uniques; i++ {
				key := uint64((i*goroutines + g) % uniques)
				if _, err := n.LookupOrInsert(context.Background(), fp(key), Value(key)); err != nil {
					t.Errorf("LookupOrInsert: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := n.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if store.Len() != uniques {
		t.Fatalf("store has %d entries after flush, want %d", store.Len(), uniques)
	}
	for i := uint64(0); i < uniques; i++ {
		v, ok, err := store.Get(fp(i))
		if err != nil || !ok || v != hashdb.Value(i) {
			t.Fatalf("entry %d = (%v,%v,%v) after concurrent write-back", i, v, ok, err)
		}
	}
}
