package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/metrics"
)

// This file implements the write-back node's asynchronous destage pipeline.
//
// Before it existed, evicting a dirty entry performed the store write
// inside the LRU eviction callback — with the evicted entry's cache-stripe
// lock held, so one modeled SSD write stalled every cache operation on
// that stripe. Now an eviction only moves the entry into a bounded
// per-node dirty buffer (pure RAM, O(1)) and a dedicated destager
// goroutine drains the buffer in group-commit waves: it waits until
// DestageBatch entries are pending or the oldest has waited
// DestageInterval, then writes the whole wave through the store's batched
// write path (hashdb.BatchPutter), paying one page read-modify-write per
// dirtied bucket page instead of one device round-trip per entry.
//
// Correctness invariants:
//
//   - An entry is findable at every instant between eviction and durable
//     store write: it stays in the buffer's index until the wave that
//     wrote it completes, and every lookup path consults the buffer
//     (under the fingerprint's node-stripe lock) after the RAM tiers and
//     before the SSD tier, so the Figure-4 cache→bloom→SSD ordering stays
//     exact per fingerprint.
//   - At most one pending value per fingerprint: re-dirtying an already
//     pending fingerprint overwrites its buffered value in place (write
//     coalescing — the duplicate-heavy-trace win). A value overwritten
//     while its wave is in flight is detected by a generation counter and
//     re-queued, so the newest value is never lost.
//   - The buffer is bounded: an eviction into a full buffer blocks until
//     the destager frees space (backpressure). The destager needs only
//     its own locks and the store to make progress, never a cache or
//     node-stripe lock, so blocked enqueuers cannot deadlock it.
//   - A failed wave re-queues its entries — falling back to per-key
//     writes so only entries whose own write fails accrue retries — and
//     gives up on an entry only after maxDestageRetries, parking the
//     error (the pre-existing delivery path: next insert, Flush, or
//     Close), so a transient error never forfeits acknowledged inserts
//     and a permanently broken store cannot wedge drain/Close.
//   - Remove (migration) calls forget, which waits out a wave that has
//     already picked the fingerprint up — otherwise the wave's store
//     write could resurrect an entry deleted right after it.
//
// Locking. The entry index is sharded (destageShard) so the hot-path
// peek — which every SSD-bound lookup performs inside its stripe-locked
// walk — contends only with operations on fingerprints of the same
// shard, never across stripes. Every dirtyEntry field access holds its
// shard's mutex. The group-commit state (FIFO queue, backpressure and
// settle conditions, drain/stop flags) lives under the global d.mu; the
// lock order is d.mu → shard.mu, never the reverse, and peek takes only
// the shard lock.

// Default destage tuning. A 256-entry wave over a table sized for ~50%
// full bucket pages dirties an order of magnitude fewer pages than
// entries; 2ms bounds how long a dirty entry can sit in RAM only.
const (
	defaultDestageBatch    = 256
	defaultDestageInterval = 2 * time.Millisecond
)

// maxDestageRetries bounds how many failed writes one entry may see
// before it is abandoned.
const maxDestageRetries = 2

// journalCheckpointBytes bounds the destage journal under sustained
// eviction load. Quiesce truncation alone only fires when a wave leaves
// the buffer empty — which steady pressure can postpone forever, growing
// the journal without bound and making the next replay arbitrarily long.
// Past this size the destager checkpoints: new enqueues briefly block
// (the same backpressure path as a full buffer), waves fire immediately
// until the buffer drains, and the quiesce truncation resets the file.
// A var, not a const, so tests can trigger it at toy sizes.
var journalCheckpointBytes int64 = 4 << 20

// dirtyEntry is one evicted-but-not-yet-destaged cache entry. All fields
// are guarded by the owning shard's mutex.
type dirtyEntry struct {
	val Value
	// gen increments on every overwrite; a wave only retires the entry if
	// the generation it captured is still current.
	gen uint64
	// queued reports the fingerprint is in the FIFO queue (false while a
	// wave holds it in flight).
	queued bool
	// at is when the entry (re-)entered the queue, driving the
	// DestageInterval group-commit trigger.
	at time.Time
	// retries counts this entry's own failed writes; past
	// maxDestageRetries it is dropped (the parked error already reports
	// the failure) so a permanently broken store cannot wedge drain.
	retries int
}

// destageShard is one slice of the buffer's entry index. peek, the
// lookup-hot-path operation, touches exactly one shard.
type destageShard struct {
	mu      sync.Mutex //shhc:lock ramonly rank=2
	pending map[fingerprint.Fingerprint]*dirtyEntry
	_       [40]byte // keep neighboring shard locks off one cache line
}

// destager is the bounded dirty buffer plus the goroutine that drains it.
type destager struct {
	n *Node

	// shards index the pending entries by fingerprint. Shard locks nest
	// inside d.mu (d.mu → shard.mu) and are never held while sleeping.
	shards    []destageShard
	shardMask uint64
	// pendingN mirrors the total entry count atomically so peek can skip
	// even the shard lock whenever the buffer is empty (read-heavy
	// phases). A zero read is exact for the looked-up fingerprint: its
	// eviction's enqueue completed — increment included — before the
	// cache-stripe mutex the reader's cache miss just synchronized with
	// was released.
	pendingN atomic.Int64

	mu      sync.Mutex //shhc:lock rank=1
	space   sync.Cond  // signaled when buffer occupancy drops
	settled sync.Cond  // broadcast when a wave lands (forget/drain waiters)
	queue   []fingerprint.Fingerprint
	head    int // queue[:head] already popped
	// queuedCount tracks entries with queued=true (the queue slice may
	// hold stale fingerprints forget already dropped).
	queuedCount int
	draining    int // drain() callers wanting waves fired immediately
	stopping    bool
	// checkpointing blocks new enqueues and fires waves immediately until
	// the buffer empties, so the journal's quiesce truncation can run;
	// set by maybeCheckpointJournal when the journal outgrows
	// journalCheckpointBytes.
	checkpointing bool

	batch    int
	capacity int
	interval time.Duration

	kick chan struct{} // wakes the loop; buffered, non-blocking sends
	done chan struct{} // closed when the loop exits

	// keepJournal latches once a wave drops an entry after exhausting its
	// write retries: from then on the journal is that entry's only copy,
	// so it is never truncated again in this process (replay against a
	// repaired store can still recover the entry).
	keepJournal atomic.Bool

	// Counters, read by Stats without any lock.
	entries   atomic.Uint64
	pages     atomic.Uint64
	waves     atomic.Uint64
	coalesced atomic.Uint64
	waveHist  *metrics.Histogram
}

// waveItem is one buffer entry captured into a group-commit wave.
type waveItem struct {
	fp  fingerprint.Fingerprint
	val Value
	gen uint64
}

func newDestager(n *Node, batch, capacity int, interval time.Duration) *destager {
	if batch <= 0 {
		batch = defaultDestageBatch
	}
	if interval <= 0 {
		interval = defaultDestageInterval
	}
	if capacity <= 0 {
		capacity = 4 * batch
	}
	if capacity < batch {
		capacity = batch
	}
	d := &destager{
		n: n,
		// One index shard per node stripe: a shard's entries are exactly
		// the fingerprints whose stripe-locked walks can peek for them.
		shards:    make([]destageShard, len(n.stripes)),
		shardMask: n.mask,
		batch:     batch,
		capacity:  capacity,
		interval:  interval,
		kick:      make(chan struct{}, 1),
		done:      make(chan struct{}),
		// Wave sizes are plain counts; 1ns base makes bucket i hold
		// sizes in [2^(i-1), 2^i).
		waveHist: metrics.NewHistogram(1, 16),
	}
	for i := range d.shards {
		d.shards[i].pending = make(map[fingerprint.Fingerprint]*dirtyEntry)
	}
	d.space.L = &d.mu
	d.settled.L = &d.mu
	go d.loop()
	return d
}

func (d *destager) shard(fp fingerprint.Fingerprint) *destageShard {
	return &d.shards[fp.Bucket64()&d.shardMask]
}

func (d *destager) wake() {
	select {
	case d.kick <- struct{}{}:
	default:
	}
}

// enqueue parks an evicted dirty entry for group-committed destage. It is
// called from the LRU eviction callback with the evicted entry's
// cache-stripe lock (and the evicting caller's node-stripe lock) held —
// which is safe precisely because it does no device I/O: it either
// overwrites an already-pending value or appends to the in-RAM queue,
// blocking only when the buffer is at capacity (backpressure) until the
// destager — which takes no cache or node-stripe locks — frees space.
//
// With a journal, the entry is also appended to it — under the shard lock,
// so per-fingerprint record order matches buffer order — and, when
// waitDurable is set (the eviction path), enqueue blocks until the record
// is fsynced before returning: that wait is the group-commit durability
// barrier the eviction acknowledges through. The journal syncer takes no
// cache, node, or destager locks, so waiting here cannot deadlock; it only
// stalls the evicting stripe for (a share of) one fsync.
func (d *destager) enqueue(fp fingerprint.Fingerprint, val Value, waitDurable bool) {
	sh := d.shard(fp)
	j := d.n.jnl
	var lsn uint64
	d.mu.Lock()
	for {
		sh.mu.Lock()
		if e, ok := sh.pending[fp]; ok {
			// Coalesce: newest value wins; a wave in flight re-queues on
			// the generation mismatch.
			e.val = val
			e.gen++
			e.retries = 0
			if j != nil {
				lsn = j.append(journalPut, fp, val)
			}
			sh.mu.Unlock()
			d.mu.Unlock()
			d.coalesced.Add(1)
			d.journalWait(j, lsn, waitDurable)
			return
		}
		if (int(d.pendingN.Load()) < d.capacity && !d.checkpointing) || d.stopping {
			sh.pending[fp] = &dirtyEntry{val: val, queued: true, at: time.Now()}
			d.pendingN.Add(1)
			if j != nil {
				lsn = j.append(journalPut, fp, val)
			}
			sh.mu.Unlock()
			d.queue = append(d.queue, fp)
			d.queuedCount++
			d.mu.Unlock()
			d.wake() // the loop derives the group-commit deadline from entry.at
			d.journalWait(j, lsn, waitDurable)
			return
		}
		sh.mu.Unlock()
		d.space.Wait()
	}
}

// journalWait blocks until the journal record at lsn is durable, parking
// a dead journal's error for the usual delivery path (next insert, Flush,
// or Close) — an eviction callback has no error return of its own.
func (d *destager) journalWait(j *journal, lsn uint64, wait bool) {
	if j == nil || !wait {
		return
	}
	if err := j.wait(lsn); err != nil {
		d.n.recordDestageErr(fmt.Errorf("core: node %s: destage journal: %w", d.n.id, err))
	}
}

// peek returns the pending value for fp, if any. Lookup paths call it
// under fp's node-stripe lock after the RAM tiers miss, which keeps the
// tier ordering exact: an entry leaves the buffer only after its wave's
// store write completed, so a miss here means the SSD probe will see it.
// It takes only fp's shard lock (or no lock at all when the buffer is
// empty), so lookups on different stripes never serialize here.
func (d *destager) peek(fp fingerprint.Fingerprint) (Value, bool) {
	if d.pendingN.Load() == 0 {
		return 0, false
	}
	sh := d.shard(fp)
	sh.mu.Lock()
	e, ok := sh.pending[fp]
	var v Value
	if ok {
		v = e.val
	}
	sh.mu.Unlock()
	return v, ok
}

// forget drops any pending destage of fp. If a wave already holds fp in
// flight it waits for that wave to land first, so after forget returns no
// buffered write of fp can reach the store. Called by Remove under fp's
// node-stripe lock (the destager never takes those, so waiting here is
// deadlock-free).
func (d *destager) forget(fp fingerprint.Fingerprint) {
	sh := d.shard(fp)
	d.mu.Lock()
	for {
		sh.mu.Lock()
		e, ok := sh.pending[fp]
		if !ok {
			sh.mu.Unlock()
			break
		}
		if e.queued {
			// Still only queued: drop it. Its fingerprint stays in the
			// queue slice; the pop skips entries no longer pending.
			delete(sh.pending, fp)
			d.pendingN.Add(-1)
			sh.mu.Unlock()
			d.queuedCount--
			d.space.Broadcast()
			break
		}
		sh.mu.Unlock()
		d.settled.Wait()
	}
	d.mu.Unlock()
}

// drain blocks until the buffer is empty, firing waves immediately
// (ignoring the batch/interval group-commit triggers) while it waits.
func (d *destager) drain() {
	d.mu.Lock()
	d.draining++
	d.mu.Unlock()
	d.wake()
	d.mu.Lock()
	for d.pendingN.Load() > 0 {
		d.settled.Wait()
	}
	d.draining--
	d.mu.Unlock()
}

// depth reports the current number of pending entries.
func (d *destager) depth() int {
	return int(d.pendingN.Load())
}

// stop shuts the destager down after draining whatever is still queued.
// The node calls it with the buffer already drained and the node closed,
// so no new entries can arrive.
func (d *destager) stop() {
	d.mu.Lock()
	d.stopping = true
	d.space.Broadcast()
	d.mu.Unlock()
	d.wake()
	<-d.done
}

// advanceHeadLocked skips queue positions whose entry was forgotten or
// already popped, returning whether a queued entry is at the head and its
// enqueue time (copied under the shard lock). Caller holds d.mu.
func (d *destager) advanceHeadLocked() (time.Time, bool) {
	for d.head < len(d.queue) {
		fp := d.queue[d.head]
		sh := d.shard(fp)
		sh.mu.Lock()
		e, ok := sh.pending[fp]
		if ok && e.queued {
			at := e.at
			sh.mu.Unlock()
			return at, true
		}
		sh.mu.Unlock()
		d.head++
	}
	d.queue = d.queue[:0]
	d.head = 0
	return time.Time{}, false
}

// popWaveLocked captures up to batch queued entries into a wave, leaving
// them in the index (marked in flight) so lookups still find them. Caller
// holds d.mu.
func (d *destager) popWaveLocked() []waveItem {
	n := d.batch
	if n > d.queuedCount {
		n = d.queuedCount
	}
	wave := make([]waveItem, 0, n)
	for len(wave) < d.batch && d.head < len(d.queue) {
		fp := d.queue[d.head]
		d.head++
		sh := d.shard(fp)
		sh.mu.Lock()
		e, ok := sh.pending[fp]
		if !ok || !e.queued {
			sh.mu.Unlock()
			continue
		}
		e.queued = false
		wave = append(wave, waveItem{fp: fp, val: e.val, gen: e.gen})
		sh.mu.Unlock()
		d.queuedCount--
	}
	if d.head == len(d.queue) {
		d.queue = d.queue[:0]
		d.head = 0
	}
	return wave
}

// loop is the destager goroutine: group-commit scheduling plus wave
// execution.
func (d *destager) loop() {
	defer close(d.done)
	for {
		d.maybeCheckpointJournal()
		d.mu.Lock()
		headAt, ok := d.advanceHeadLocked()
		if !ok {
			if d.stopping {
				d.mu.Unlock()
				return
			}
			d.mu.Unlock()
			<-d.kick
			continue
		}
		if d.queuedCount < d.batch && d.draining == 0 && !d.stopping && !d.checkpointing {
			if wait := d.interval - time.Since(headAt); wait > 0 {
				d.mu.Unlock()
				t := time.NewTimer(wait)
				select {
				case <-d.kick:
				case <-t.C:
				}
				t.Stop()
				continue
			}
		}
		wave := d.popWaveLocked()
		d.mu.Unlock()
		d.runWave(wave)
	}
}

// runWave writes one group-commit wave through the store — batched when
// the store supports it — then retires the written entries. Entries
// overwritten while the wave was in flight are re-queued with their newer
// value. When the batched write fails, the wave falls back to per-key
// writes so each entry's fate depends on its *own* write (a batch error
// may cover chains that were never attempted): entries whose write
// succeeded retire normally, entries whose write failed are re-queued —
// still findable in the buffer — and dropped only after
// maxDestageRetries of their own failures. The wave runs under no
// context: caller cancellation must never abandon dirty data the cache
// has already forgotten.
func (d *destager) runWave(wave []waveItem) {
	if len(wave) == 0 {
		return
	}
	pairs := make([]hashdb.Pair, len(wave))
	for i, it := range wave {
		pairs[i] = hashdb.Pair{FP: it.fp, Val: it.val}
	}
	var (
		pages     int
		succeeded = len(wave)
		failed    []bool // per-entry write failure; nil = all succeeded
		// lastErr is this wave's most recent write failure. It is NOT
		// parked here: a transient error the fallback or a retry absorbs
		// is not data loss, and parking it would make Flush/Close report
		// failure for fully durable data. It surfaces only if an entry is
		// actually dropped below.
		lastErr error
	)
	bp, batchable := d.n.store.(hashdb.BatchPutter)
	if batchable {
		_, pages, lastErr = bp.PutBatch(context.Background(), pairs)
	}
	if !batchable || lastErr != nil {
		failed = make([]bool, len(pairs))
		pages, succeeded = 0, 0
		for i, p := range pairs {
			if _, perr := d.n.store.Put(p.FP, p.Val); perr != nil {
				failed[i] = true
				lastErr = perr
				continue
			}
			pages++
			succeeded++
		}
	}
	d.entries.Add(uint64(succeeded))
	d.pages.Add(uint64(pages))
	d.waves.Add(1)
	d.waveHist.Observe(time.Duration(len(wave)))

	d.mu.Lock()
	dropped := 0
	for i, it := range wave {
		sh := d.shard(it.fp)
		sh.mu.Lock()
		e, ok := sh.pending[it.fp]
		if !ok {
			sh.mu.Unlock()
			continue // forgotten (Remove) while in flight
		}
		requeue := false
		switch {
		case e.gen != it.gen:
			// Overwritten mid-flight: the newer value still owes a write
			// regardless of how this wave fared.
			e.retries = 0
			requeue = true
		case failed != nil && failed[i]:
			// This entry's own write failed and its value reached nothing
			// durable: keep it findable and retry, up to the cap.
			e.retries++
			if e.retries > maxDestageRetries {
				dropped++
			} else {
				requeue = true
			}
		}
		if requeue {
			e.queued = true
			e.at = time.Now()
			sh.mu.Unlock()
			d.queue = append(d.queue, it.fp)
			d.queuedCount++
			continue
		}
		delete(sh.pending, it.fp)
		d.pendingN.Add(-1)
		sh.mu.Unlock()
	}
	d.space.Broadcast()
	d.settled.Broadcast()
	d.mu.Unlock()
	if dropped > 0 {
		d.keepJournal.Store(true)
		d.n.recordDestageErr(fmt.Errorf("core: node %s: destage: dropped %d entries after %d failed writes each: %w", d.n.id, dropped, maxDestageRetries+1, lastErr))
	}
	d.maybeTruncateJournal()
}

// maybeTruncateJournal empties the journal once a wave has left the
// buffer empty: every record it holds then describes an entry the store
// has already absorbed, so after one store fsync the records are
// redundant. The truncation re-checks, under the journal lock, that
// nothing was appended since the LSN captured *before* the store sync and
// that the buffer is still empty — any record a concurrent eviction or
// Remove appends is thereby kept, because its store mutation may postdate
// the sync. Once keepJournal latches (an entry was dropped after
// exhausting its write retries), truncation stops entirely: the journal
// is that entry's only copy.
func (d *destager) maybeTruncateJournal() {
	j := d.n.jnl
	if j == nil || d.keepJournal.Load() || d.pendingN.Load() != 0 || j.size() == 0 {
		return
	}
	a := j.appendedLSN()
	if err := d.n.store.Sync(); err != nil {
		return // keep the journal; the wave path already surfaces store errors
	}
	if err := j.truncateIf(func() bool {
		return j.appended == a && d.pendingN.Load() == 0
	}); err != nil {
		d.n.recordDestageErr(err)
	}
}

// maybeCheckpointJournal enters or leaves checkpoint mode. Entering
// requires pending entries (otherwise there is no wave to drive the drain
// and quiesce truncation either already ran or is blocked on a store
// error — blocking enqueues would then deadlock the node for nothing);
// leaving happens as soon as the buffer is empty, after the post-wave
// quiesce truncation had its chance to reset the file.
func (d *destager) maybeCheckpointJournal() {
	j := d.n.jnl
	if j == nil || d.keepJournal.Load() {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.checkpointing {
		if d.pendingN.Load() == 0 {
			d.checkpointing = false
			d.space.Broadcast()
		}
		return
	}
	if d.pendingN.Load() > 0 && j.size() > journalCheckpointBytes {
		d.checkpointing = true
	}
}
