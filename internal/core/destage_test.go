package core

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

// TestDestageDurabilityCloseReopen is the end-to-end write-back durability
// check: every insert a write-back node acknowledged must be on disk after
// Close, including entries that were sitting in the destage buffer.
func TestDestageDurabilityCloseReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wb.shdb")
	db, err := hashdb.Create(path, hashdb.Options{ExpectedItems: 4096})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	n, err := NewNode(NodeConfig{
		ID:            "wb-durability",
		Store:         db,
		CacheSize:     64, // far smaller than the insert count: constant eviction pressure
		WriteBack:     true,
		BloomExpected: 8192,
		DestageBatch:  32,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	const total = 2000
	for i := uint64(0); i < total; i++ {
		if _, err := n.LookupOrInsert(context.Background(), fp(i), Value(i+1)); err != nil {
			t.Fatalf("LookupOrInsert(%d): %v", i, err)
		}
	}
	if err := n.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2, err := hashdb.Open(path, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db2.Close()
	if db2.Len() != total {
		t.Fatalf("persisted entries = %d, want %d", db2.Len(), total)
	}
	for i := uint64(0); i < total; i++ {
		v, ok, err := db2.Get(fp(i))
		if err != nil || !ok || v != hashdb.Value(i+1) {
			t.Fatalf("reopened Get(%d) = (%v,%v,%v), want (%v,true,nil)", i, v, ok, err, i+1)
		}
	}
}

// TestDestageDurabilityFlush checks Flush (the node's Sync) drains the
// destage buffer fully: after it returns, every entry is in the store.
func TestDestageDurabilityFlush(t *testing.T) {
	store := hashdb.NewMemStore(nil)
	n := newMemNode(t, NodeConfig{
		Store:         store,
		CacheSize:     32,
		WriteBack:     true,
		BloomExpected: 4096,
		DestageBatch:  16,
		// A long interval: only Flush's drain (not the timer) can have
		// destaged the tail of the buffer.
		DestageInterval: time.Hour,
	})
	const total = 500
	for i := uint64(0); i < total; i++ {
		if _, err := n.LookupOrInsert(context.Background(), fp(i), Value(i+1)); err != nil {
			t.Fatalf("LookupOrInsert(%d): %v", i, err)
		}
	}
	if err := n.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if store.Len() != total {
		t.Fatalf("store len after Flush = %d, want %d", store.Len(), total)
	}
	for i := uint64(0); i < total; i++ {
		v, ok, _ := store.Get(fp(i))
		if !ok || v != hashdb.Value(i+1) {
			t.Fatalf("Get(%d) = (%v,%v), want (%v,true)", i, v, ok, i+1)
		}
	}
	st, err := n.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Destage.QueueDepth != 0 {
		t.Fatalf("QueueDepth after Flush = %d, want 0", st.Destage.QueueDepth)
	}
	if st.Destage.Waves == 0 || st.Destage.Entries == 0 {
		t.Fatalf("destage counters empty after flush: %+v", st.Destage)
	}
	if st.Destage.WaveSizes.Count != int64(st.Destage.Waves) {
		t.Fatalf("WaveSizes.Count = %d, want %d", st.Destage.WaveSizes.Count, st.Destage.Waves)
	}
}

// gatedWriteStore blocks every store write until the gate is opened. If an
// eviction performed device I/O under a cache-stripe lock, inserts would
// wedge behind it; with the async pipeline they must complete while the
// store write is still parked.
type gatedWriteStore struct {
	*hashdb.MemStore
	gate chan struct{}
}

func (g *gatedWriteStore) Put(f fingerprint.Fingerprint, v hashdb.Value) (bool, error) {
	<-g.gate
	return g.MemStore.Put(f, v)
}

func (g *gatedWriteStore) PutBatch(ctx context.Context, pairs []hashdb.Pair) ([]bool, int, error) {
	<-g.gate
	return g.MemStore.PutBatch(ctx, pairs)
}

// TestDestageNoDeviceIOUnderCacheLock proves the acceptance property: an
// eviction's destage issues no device I/O while holding the cache-stripe
// lock. All store writes are gated shut; inserts that trigger evictions
// must still complete, with the evicted entries answerable from the dirty
// buffer, and only a later drain performs the writes.
func TestDestageNoDeviceIOUnderCacheLock(t *testing.T) {
	gs := &gatedWriteStore{MemStore: hashdb.NewMemStore(nil), gate: make(chan struct{})}
	n, err := NewNode(NodeConfig{
		ID:            ring.NodeID("gated"),
		Store:         gs,
		CacheSize:     2,
		WriteBack:     true,
		BloomExpected: 1024,
		DestageBatch:  4,
		DestageQueue:  64,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		// 8 inserts through a 2-entry cache: 6 evictions enqueue while
		// every store write is blocked.
		for i := uint64(0); i < 8; i++ {
			if _, err := n.LookupOrInsert(context.Background(), fp(i), Value(i+1)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("inserts: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("inserts blocked: eviction destage is doing device I/O under a cache-stripe lock")
	}
	if gs.MemStore.Len() != 0 {
		t.Fatalf("store len = %d while writes gated, want 0", gs.MemStore.Len())
	}
	// Evicted-but-undestaged entries still answer through the buffer.
	for i := uint64(0); i < 8; i++ {
		r, err := n.Lookup(context.Background(), fp(i))
		if err != nil || !r.Exists || r.Value != Value(i+1) {
			t.Fatalf("Lookup(%d) with gated store = (%+v, %v), want exists", i, r, err)
		}
	}

	close(gs.gate)
	if err := n.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if gs.MemStore.Len() != 8 {
		t.Fatalf("store len after drain = %d, want 8", gs.MemStore.Len())
	}
	if err := n.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestDestageMidDrainCancellation: cancelling a caller's context must
// never abandon dirty data the cache already evicted — the destager runs
// waves under no caller context. Every insert that was acknowledged before
// the cancellation must be durable after Flush.
func TestDestageMidDrainCancellation(t *testing.T) {
	store := hashdb.NewMemStore(nil)
	n := newMemNode(t, NodeConfig{
		Store:           store,
		CacheSize:       16,
		WriteBack:       true,
		BloomExpected:   8192,
		DestageBatch:    8,
		DestageInterval: 100 * time.Microsecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var acked []uint64
	for i := uint64(0); i < 1000; i++ {
		if i == 500 {
			cancel() // mid-stream: drains and waves are already in motion
		}
		if _, err := n.LookupOrInsert(ctx, fp(i), Value(i+1)); err == nil {
			acked = append(acked, i)
		}
	}
	if len(acked) < 500 {
		t.Fatalf("only %d inserts acknowledged before cancellation", len(acked))
	}
	if err := n.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for _, i := range acked {
		v, ok, _ := store.Get(fp(i))
		if !ok || v != hashdb.Value(i+1) {
			t.Fatalf("acknowledged insert %d not durable after cancel+flush: (%v,%v)", i, v, ok)
		}
	}
}

// TestDestageCoalescing drives a duplicate-heavy update stream through the
// write-back path: repeated updates of the same keys must coalesce in the
// dirty buffer, and group commit must write fewer pages than entries.
func TestDestageCoalescing(t *testing.T) {
	dir := t.TempDir()
	db, err := hashdb.Create(filepath.Join(dir, "coalesce.shdb"), hashdb.Options{ExpectedItems: 2048})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	n, err := NewNode(NodeConfig{
		ID:              "coalesce",
		Store:           db,
		CacheSize:       32,
		WriteBack:       true,
		BloomExpected:   4096,
		DestageBatch:    64,
		DestageInterval: 50 * time.Millisecond, // let waves fill instead of firing early
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	const keys = 512
	// Three passes of updates over the same key space; later passes bump
	// the value, so buffered entries get overwritten while pending.
	for pass := uint64(0); pass < 3; pass++ {
		for i := uint64(0); i < keys; i++ {
			if err := n.Insert(context.Background(), fp(i), Value(1000*pass+i)); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
	}
	if err := n.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	st, err := n.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Destage.Entries == 0 || st.Destage.Pages == 0 {
		t.Fatalf("no destage activity: %+v", st.Destage)
	}
	if ratio := float64(st.Destage.Entries) / float64(st.Destage.Pages); ratio <= 1 {
		t.Fatalf("write-coalescing ratio = %.2f (entries %d / pages %d), want > 1",
			ratio, st.Destage.Entries, st.Destage.Pages)
	}
	// Every key must end at its final (pass-2) value.
	for i := uint64(0); i < keys; i++ {
		r, err := n.Lookup(context.Background(), fp(i))
		if err != nil || !r.Exists || r.Value != Value(2000+i) {
			t.Fatalf("final Lookup(%d) = (%+v, %v), want value %d", i, r, err, 2000+i)
		}
	}
	if err := n.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// flakyPutStore fails the first `failures` batched writes, then recovers.
type flakyPutStore struct {
	*hashdb.MemStore
	remaining atomic.Int64
}

func (f *flakyPutStore) PutBatch(ctx context.Context, pairs []hashdb.Pair) ([]bool, int, error) {
	if f.remaining.Add(-1) >= 0 {
		return nil, 0, fmt.Errorf("injected transient wave failure")
	}
	return f.MemStore.PutBatch(ctx, pairs)
}

// TestDestageTransientFailureRetries: one failed wave must not forfeit
// its entries — they are re-queued (still answerable from the buffer) and
// land durably once the store recovers. The parked error still surfaces.
func TestDestageTransientFailureRetries(t *testing.T) {
	fs := &flakyPutStore{MemStore: hashdb.NewMemStore(nil)}
	fs.remaining.Store(1) // exactly the first wave fails
	n, err := NewNode(NodeConfig{
		ID:              ring.NodeID("flaky"),
		Store:           fs,
		CacheSize:       8,
		WriteBack:       true,
		BloomExpected:   4096,
		DestageBatch:    16,
		DestageInterval: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	const total = 200
	for i := uint64(0); i < total; i++ {
		// The parked wave error may surface on any later insert; keep
		// going — durability is what this test asserts.
		n.LookupOrInsert(context.Background(), fp(i), Value(i+1))
	}
	if err := n.Flush(); err != nil {
		// The injected failure may surface here; that is the error
		// delivery contract, not a durability failure.
		t.Logf("Flush surfaced parked error (expected): %v", err)
		if err := n.Flush(); err != nil {
			t.Fatalf("second Flush: %v", err)
		}
	}
	for i := uint64(0); i < total; i++ {
		v, ok, _ := fs.MemStore.Get(fp(i))
		if !ok || v != hashdb.Value(i+1) {
			t.Fatalf("entry %d lost to a transient wave failure: (%v,%v)", i, v, ok)
		}
	}
	if err := n.Close(); err != nil && err != errNodeClosed {
		t.Logf("Close: %v", err)
	}
}

// TestDestageBackpressure bounds the buffer tightly and hammers it: no
// insert may be lost even when evictions must repeatedly block for space.
func TestDestageBackpressure(t *testing.T) {
	store := hashdb.NewMemStore(nil)
	n := newMemNode(t, NodeConfig{
		Store:           store,
		CacheSize:       8,
		WriteBack:       true,
		BloomExpected:   16384,
		DestageBatch:    4,
		DestageQueue:    4, // clamped to the batch size: constant backpressure
		DestageInterval: time.Millisecond,
	})
	const total = 3000
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < total/4; i++ {
				k := uint64(g*(total/4) + i)
				if _, err := n.LookupOrInsert(context.Background(), fp(k), Value(k+1)); err != nil {
					errs <- fmt.Errorf("insert %d: %w", k, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := n.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if store.Len() != total {
		t.Fatalf("store len = %d, want %d", store.Len(), total)
	}
}

// TestDestageConcurrentLookupsRace races lookups and batch lookups against
// eviction-driven destage waves under -race: once an insert is
// acknowledged, the fingerprint must answer as a duplicate from whichever
// tier currently holds it (cache, dirty buffer, or store).
func TestDestageConcurrentLookupsRace(t *testing.T) {
	store := hashdb.NewMemStore(nil)
	n := newMemNode(t, NodeConfig{
		Store:           store,
		CacheSize:       16,
		WriteBack:       true,
		BloomExpected:   16384,
		DestageBatch:    8,
		DestageInterval: 200 * time.Microsecond,
	})
	const total = 1500
	var inserted atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < total; i++ {
			if _, err := n.LookupOrInsert(context.Background(), fp(i), Value(i+1)); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
			inserted.Store(i + 1)
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for k := 0; k < 400; k++ {
				hi := inserted.Load()
				if hi == 0 {
					continue
				}
				i := uint64((k*31 + r*17) % int(hi))
				res, err := n.Lookup(context.Background(), fp(i))
				if err != nil {
					t.Errorf("lookup %d: %v", i, err)
					return
				}
				if !res.Exists || res.Value != Value(i+1) {
					t.Errorf("lookup %d = %+v, want exists with %d", i, res, i+1)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if err := n.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if store.Len() != total {
		t.Fatalf("store len = %d, want %d", store.Len(), total)
	}
}

func BenchmarkNodeWriteBackDestage(b *testing.B) {
	n, err := NewNode(NodeConfig{
		ID:            "bench-wb",
		Store:         hashdb.NewMemStore(nil),
		CacheSize:     1 << 10,
		WriteBack:     true,
		BloomExpected: 1 << 21,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { n.Close() })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.LookupOrInsert(context.Background(), fp(uint64(i)), Value(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}
