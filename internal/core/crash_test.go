package core

// The node-level crash-injection property harness. A write-back node with
// a journal runs a deterministic insert schedule over a store that dies at
// the Nth entry write (hashdb.Failpoint). At the instant of death the
// harness snapshots the journal file and the count of fully acknowledged
// inserts; the node is then torn down and rebuilt from exactly the durable
// state — the store's contents at the kill plus the journal snapshot — and
// two properties are asserted for every kill point:
//
//   - No acked eviction is lost. The cache (capacity C, single exact-LRU
//     stripe) evicts strictly in insert order, so after a acked inserts,
//     inserts 0..a-1-C have all been evicted — and an eviction does not
//     acknowledge until its journal record is fsynced. Every one of them
//     must be found after recovery, via the store or the journal replay.
//   - No corrupt data is served: every surviving fingerprint carries the
//     exact value it was inserted with.
//
// A second flavor runs the same schedule over an on-disk hashdb.DB, so a
// kill additionally leaves the store's own file dirty and the reopen
// exercises hashdb's recovery pass under the node's replay.

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

const (
	crashCache   = 8
	crashInserts = 48
)

func crashVal(i uint64) Value { return Value(i + 1000) }

// crashNodeConfig builds the write-back node under test: small cache,
// small fast waves so destage I/O interleaves the schedule densely.
func crashNodeConfig(store hashdb.Store, journalPath string) NodeConfig {
	return NodeConfig{
		ID:              ring.NodeID("crash-node"),
		Store:           store,
		CacheSize:       crashCache,
		BloomExpected:   1 << 12,
		WriteBack:       true,
		JournalPath:     journalPath,
		DestageBatch:    4,
		DestageInterval: 200 * time.Microsecond,
		DestageQueue:    16,
	}
}

// runCrashSchedule drives the insert schedule, counting fully
// acknowledged inserts in acked. It stops early only on errors that are
// not the injected kill (the kill surfaces asynchronously through parked
// destage errors; inserts themselves are RAM-speed and keep succeeding).
func runCrashSchedule(t *testing.T, n *Node, acked *atomic.Uint64) {
	t.Helper()
	for i := uint64(0); i < crashInserts; i++ {
		_, err := n.LookupOrInsert(context.Background(), fp(i), crashVal(i))
		if err != nil {
			if errors.Is(err, hashdb.ErrKilled) {
				return // parked destage error delivered: the store is dead
			}
			t.Fatalf("insert %d failed with non-kill error: %v", i, err)
		}
		acked.Add(1)
	}
	// Fully scheduled: force the rest out (dies mid-flush when the kill
	// point lies in the tail).
	n.Flush()
}

func TestCrashEveryKillPointRecoversAckedEvictions(t *testing.T) {
	// Probe the schedule's total store-write count with an unreachable
	// kill point.
	dir := t.TempDir()
	probeStore := hashdb.NewFailpoint(hashdb.NewMemStore(nil), math.MaxInt64, nil)
	pn, err := NewNode(crashNodeConfig(probeStore, filepath.Join(dir, "probe.wal")))
	if err != nil {
		t.Fatalf("probe NewNode: %v", err)
	}
	var probeAcked atomic.Uint64
	runCrashSchedule(t, pn, &probeAcked)
	if err := pn.Close(); err != nil {
		t.Fatalf("probe Close: %v", err)
	}
	total := probeStore.Writes()
	if total < int64(crashInserts)/2 {
		t.Fatalf("schedule issued only %d store writes; harness too weak", total)
	}

	for k := int64(1); k <= total; k++ {
		runNodeCrashPoint(t, k)
	}
}

func runNodeCrashPoint(t *testing.T, killAt int64) {
	t.Helper()
	dir := t.TempDir()
	jpath := filepath.Join(dir, "node.wal")
	inner := hashdb.NewMemStore(nil)

	var (
		ackedAtKill atomic.Int64
		snapshot    atomic.Pointer[[]byte]
		acked       atomic.Uint64
	)
	// onKill runs synchronously at the killing write: capture the ack
	// count first, then the journal bytes — every insert counted below
	// completed its eviction's journal fsync before the capture, so its
	// records must be inside the snapshot.
	store := hashdb.NewFailpoint(inner, killAt, func() {
		ackedAtKill.Store(int64(acked.Load()))
		b, err := os.ReadFile(jpath)
		if err != nil {
			b = nil
		}
		snapshot.Store(&b)
	})

	n, err := NewNode(crashNodeConfig(store, jpath))
	if err != nil {
		t.Fatalf("kill=%d: NewNode: %v", killAt, err)
	}
	runCrashSchedule(t, n, &acked)
	killed := store.Killed()
	n.Close() // tears down goroutines; errors expected after a kill

	journalPath := jpath
	a := int64(acked.Load())
	if killed {
		snap := snapshot.Load()
		if snap == nil || *snap == nil {
			t.Fatalf("kill=%d: no journal snapshot captured", killAt)
		}
		journalPath = filepath.Join(dir, "crash.wal")
		if err := os.WriteFile(journalPath, *snap, 0o644); err != nil {
			t.Fatal(err)
		}
		a = ackedAtKill.Load()
	}

	// Rebirth from durable state only: the store as the kill froze it
	// plus the journal snapshot.
	n2, err := NewNode(crashNodeConfig(inner, journalPath))
	if err != nil {
		t.Fatalf("kill=%d: NewNode after crash: %v", killAt, err)
	}
	defer n2.Close()

	// Durability floor: after a acked inserts, inserts 0..a-1-C were all
	// evicted and acknowledged, so they must survive. (Without a kill,
	// the Flush+Close made everything durable.)
	mustSurvive := int64(crashInserts)
	if killed {
		mustSurvive = a - crashCache
	}
	for i := int64(0); i < mustSurvive; i++ {
		r, err := n2.Lookup(context.Background(), fp(uint64(i)))
		if err != nil {
			t.Fatalf("kill=%d: Lookup(%d) after recovery: %v", killAt, i, err)
		}
		if !r.Exists {
			t.Fatalf("kill=%d: acked eviction %d lost (acked=%d, cache=%d)", killAt, i, a, crashCache)
		}
		if r.Value != crashVal(uint64(i)) {
			t.Fatalf("kill=%d: Lookup(%d) = %d, want %d (corrupt data served)", killAt, i, r.Value, crashVal(uint64(i)))
		}
	}
	// No garbage anywhere: whatever else survived must carry its exact
	// value.
	for i := uint64(0); i < crashInserts; i++ {
		r, err := n2.Lookup(context.Background(), fp(i))
		if err != nil {
			t.Fatalf("kill=%d: Lookup(%d): %v", killAt, i, err)
		}
		if r.Exists && r.Value != crashVal(i) {
			t.Fatalf("kill=%d: Lookup(%d) = %d, want %d (corrupt data served)", killAt, i, r.Value, crashVal(i))
		}
	}
}

// TestCrashKillPointsOnDiskStore runs the same property over an on-disk
// hashdb.DB: the kill leaves the store's file unclean, so the reopen path
// is hashdb recovery plus journal replay stacked. A sparse sample of kill
// points keeps the file churn affordable; the MemStore harness above
// covers every point.
func TestCrashKillPointsOnDiskStore(t *testing.T) {
	dir := t.TempDir()
	probePath := filepath.Join(dir, "probe.shdb")
	pdb, err := hashdb.Create(probePath, hashdb.Options{Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	probeStore := hashdb.NewFailpoint(pdb, math.MaxInt64, nil)
	pn, err := NewNode(crashNodeConfig(probeStore, filepath.Join(dir, "probe.wal")))
	if err != nil {
		t.Fatalf("probe NewNode: %v", err)
	}
	var probeAcked atomic.Uint64
	runCrashSchedule(t, pn, &probeAcked)
	if err := pn.Close(); err != nil {
		t.Fatalf("probe Close: %v", err)
	}
	total := probeStore.Writes()

	for k := int64(1); k <= total; k += 3 {
		runDiskCrashPoint(t, k)
	}
}

func runDiskCrashPoint(t *testing.T, killAt int64) {
	t.Helper()
	dir := t.TempDir()
	jpath := filepath.Join(dir, "node.wal")
	dbPath := filepath.Join(dir, "node.shdb")
	db, err := hashdb.Create(dbPath, hashdb.Options{Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}

	var (
		ackedAtKill atomic.Int64
		snapshot    atomic.Pointer[[]byte]
		acked       atomic.Uint64
	)
	store := hashdb.NewFailpoint(db, killAt, func() {
		ackedAtKill.Store(int64(acked.Load()))
		b, err := os.ReadFile(jpath)
		if err != nil {
			b = nil
		}
		snapshot.Store(&b)
	})
	n, err := NewNode(crashNodeConfig(store, jpath))
	if err != nil {
		t.Fatalf("kill=%d: NewNode: %v", killAt, err)
	}
	runCrashSchedule(t, n, &acked)
	killed := store.Killed()
	n.Close()

	journalPath := jpath
	a := int64(acked.Load())
	if killed {
		// The process died: the DB was never closed cleanly. Drop the
		// fd and reopen from the file — hashdb recovery runs.
		if err := db.CloseWithoutSync(); err != nil {
			t.Fatalf("kill=%d: CloseWithoutSync: %v", killAt, err)
		}
		snap := snapshot.Load()
		if snap == nil || *snap == nil {
			t.Fatalf("kill=%d: no journal snapshot captured", killAt)
		}
		journalPath = filepath.Join(dir, "crash.wal")
		if err := os.WriteFile(journalPath, *snap, 0o644); err != nil {
			t.Fatal(err)
		}
		a = ackedAtKill.Load()
	}
	db2, err := hashdb.Open(dbPath, nil)
	if err != nil {
		t.Fatalf("kill=%d: hashdb.Open after crash: %v", killAt, err)
	}
	n2, err := NewNode(crashNodeConfig(db2, journalPath))
	if err != nil {
		t.Fatalf("kill=%d: NewNode after crash: %v", killAt, err)
	}
	defer n2.Close()

	mustSurvive := int64(crashInserts)
	if killed {
		mustSurvive = a - crashCache
	}
	for i := int64(0); i < mustSurvive; i++ {
		r, err := n2.Lookup(context.Background(), fp(uint64(i)))
		if err != nil {
			t.Fatalf("kill=%d: Lookup(%d) after recovery: %v", killAt, i, err)
		}
		if !r.Exists || r.Value != crashVal(uint64(i)) {
			t.Fatalf("kill=%d: acked eviction %d = %+v, want value %d", killAt, i, r, crashVal(uint64(i)))
		}
	}
}
