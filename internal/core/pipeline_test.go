package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shhc/internal/device"
	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

// hookStore wraps a Store, counting point operations and optionally gating
// them, so tests can hold an SSD phase open while concurrent lookups pile
// onto its in-flight entry. It deliberately does not implement
// hashdb.BatchGetter, which also exercises the batch path's point-probe
// fallback.
type hookStore struct {
	hashdb.Store
	gets     atomic.Int64
	puts     atomic.Int64
	getGate  chan struct{} // nil = ungated; Get blocks until closed
	putGate  chan struct{} // nil = ungated; Put blocks until closed
	failGets atomic.Bool
}

var errHookInjected = errors.New("injected store failure")

func (h *hookStore) Get(fp fingerprint.Fingerprint) (hashdb.Value, bool, error) {
	if h.getGate != nil {
		<-h.getGate
	}
	h.gets.Add(1)
	if h.failGets.Load() {
		return 0, false, errHookInjected
	}
	return h.Store.Get(fp)
}

func (h *hookStore) Put(fp fingerprint.Fingerprint, v hashdb.Value) (bool, error) {
	if h.putGate != nil {
		<-h.putGate
	}
	h.puts.Add(1)
	return h.Store.Put(fp, v)
}

func assertStatsInvariant(t *testing.T, n *Node) NodeStats {
	t.Helper()
	st, err := n.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if got := st.CacheHits + st.BloomShort + st.StoreHits + st.StoreMisses; got != st.Lookups {
		t.Fatalf("tier counters sum to %d (cache %d + bloom %d + hits %d + misses %d), want Lookups = %d",
			got, st.CacheHits, st.BloomShort, st.StoreHits, st.StoreMisses, st.Lookups)
	}
	return st
}

// TestAsyncProbeCoalescing holds one SSD probe open while more lookups of
// the same fingerprint arrive: they must join the in-flight probe (or hit
// the cache it installs) rather than issue their own — one device read
// total.
func TestAsyncProbeCoalescing(t *testing.T) {
	hs := &hookStore{Store: hashdb.NewMemStore(nil), getGate: make(chan struct{})}
	if _, err := hs.Store.Put(fp(1), 42); err != nil {
		t.Fatalf("seed: %v", err)
	}
	n := newMemNode(t, NodeConfig{Store: hs, CacheSize: 16, DisableBloom: true})

	const readers = 8
	var wg sync.WaitGroup
	results := make([]LookupResult, readers)
	errs := make([]error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = n.Lookup(context.Background(), fp(1))
		}(g)
		if g == 0 {
			time.Sleep(20 * time.Millisecond) // let the first own the flight
		}
	}
	time.Sleep(20 * time.Millisecond) // let the rest join it
	close(hs.getGate)
	wg.Wait()

	for g := 0; g < readers; g++ {
		if errs[g] != nil {
			t.Fatalf("reader %d: %v", g, errs[g])
		}
		if !results[g].Exists || results[g].Value != 42 {
			t.Fatalf("reader %d = %+v, want exists value 42", g, results[g])
		}
	}
	if got := hs.gets.Load(); got != 1 {
		t.Fatalf("store served %d reads for %d concurrent lookups, want 1 (coalesced)", got, readers)
	}
	st := assertStatsInvariant(t, n)
	if st.Lookups != readers {
		t.Fatalf("Lookups = %d, want %d", st.Lookups, readers)
	}
	if st.Coalesced+st.CacheHits != readers-1 {
		t.Fatalf("coalesced %d + cache hits %d, want %d lookups riding the one probe", st.Coalesced, st.CacheHits, readers-1)
	}
}

// TestAsyncExactlyOnceInsert holds the SSD write of a Bloom-proven-new
// fingerprint open while concurrent LookupOrInserts of the same
// fingerprint arrive: exactly one insert may happen, every other caller
// must see a duplicate with the winner's value.
func TestAsyncExactlyOnceInsert(t *testing.T) {
	hs := &hookStore{Store: hashdb.NewMemStore(nil), putGate: make(chan struct{})}
	n := newMemNode(t, NodeConfig{Store: hs, CacheSize: 16})

	const writers = 8
	var wg sync.WaitGroup
	results := make([]LookupResult, writers)
	errs := make([]error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = n.LookupOrInsert(context.Background(), fp(7), Value(100+g))
		}(g)
		if g == 0 {
			time.Sleep(20 * time.Millisecond)
		}
	}
	time.Sleep(20 * time.Millisecond)
	close(hs.putGate)
	wg.Wait()

	var news, winnerVal = 0, Value(0)
	for g := 0; g < writers; g++ {
		if errs[g] != nil {
			t.Fatalf("writer %d: %v", g, errs[g])
		}
		if !results[g].Exists {
			news++
			winnerVal = Value(100 + g)
		}
	}
	if news != 1 {
		t.Fatalf("%d callers saw \"new\", want exactly 1", news)
	}
	for g := 0; g < writers; g++ {
		if results[g].Exists && results[g].Value != winnerVal {
			t.Fatalf("writer %d adopted value %d, want the winner's %d", g, results[g].Value, winnerVal)
		}
	}
	if got := hs.puts.Load(); got != 1 {
		t.Fatalf("store served %d writes, want 1", got)
	}
	st := assertStatsInvariant(t, n)
	if st.Inserts != 1 {
		t.Fatalf("Inserts = %d, want 1", st.Inserts)
	}
}

// TestAsyncReadOnlyMissThenInsert: a LookupOrInsert that joins a read-only
// probe's miss still owes the insert; it must re-run the walk, claim the
// fingerprint, and insert exactly once.
func TestAsyncReadOnlyMissThenInsert(t *testing.T) {
	gate := make(chan struct{})
	hs := &hookStore{Store: hashdb.NewMemStore(nil), getGate: gate}
	n := newMemNode(t, NodeConfig{Store: hs, CacheSize: 16, DisableBloom: true})

	var (
		wg                sync.WaitGroup
		readRes, writeRes LookupResult
		readErr, writeErr error
	)
	wg.Add(2)
	go func() { defer wg.Done(); readRes, readErr = n.Lookup(context.Background(), fp(3)) }()
	time.Sleep(20 * time.Millisecond)
	go func() { defer wg.Done(); writeRes, writeErr = n.LookupOrInsert(context.Background(), fp(3), 33) }()
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()

	if readErr != nil || writeErr != nil {
		t.Fatalf("errors: read %v, write %v", readErr, writeErr)
	}
	if readRes.Exists {
		t.Fatalf("read-only lookup = %+v, want miss", readRes)
	}
	if writeRes.Exists {
		t.Fatalf("LookupOrInsert = %+v, want \"new\" (it performed the insert)", writeRes)
	}
	if got := hs.puts.Load(); got != 1 {
		t.Fatalf("store served %d writes, want 1", got)
	}
	if v, ok, _ := hs.Store.Get(fp(3)); !ok || v != 33 {
		t.Fatalf("store entry = (%v, %v), want (33, true)", v, ok)
	}
	st := assertStatsInvariant(t, n)
	if st.Inserts != 1 {
		t.Fatalf("Inserts = %d, want 1", st.Inserts)
	}
}

// TestAsyncStoreErrorPropagates: a failed SSD phase must surface its error
// to the owner and to every waiter that joined the flight, and count no
// lookup.
func TestAsyncStoreErrorPropagates(t *testing.T) {
	hs := &hookStore{Store: hashdb.NewMemStore(nil), getGate: make(chan struct{})}
	hs.failGets.Store(true)
	n := newMemNode(t, NodeConfig{Store: hs, CacheSize: 16, DisableBloom: true})

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = n.Lookup(context.Background(), fp(9))
		}(g)
		if g == 0 {
			time.Sleep(20 * time.Millisecond)
		}
	}
	time.Sleep(20 * time.Millisecond)
	close(hs.getGate)
	wg.Wait()
	for g, err := range errs {
		if err == nil || !errors.Is(err, errHookInjected) {
			t.Fatalf("lookup %d error = %v, want wrapped injected failure", g, err)
		}
	}
	st := assertStatsInvariant(t, n)
	if st.Lookups != 0 {
		t.Fatalf("Lookups = %d after pure failures, want 0", st.Lookups)
	}
}

// TestCloseWaitsForInflightProbes: Close must let SSD phases already in
// flight land against the open store; the probing caller gets its answer,
// later callers get the closed error.
func TestCloseWaitsForInflightProbes(t *testing.T) {
	hs := &hookStore{Store: hashdb.NewMemStore(nil), getGate: make(chan struct{})}
	if _, err := hs.Store.Put(fp(5), 55); err != nil {
		t.Fatalf("seed: %v", err)
	}
	n, err := NewNode(NodeConfig{ID: "close-test", Store: hs, CacheSize: 16, DisableBloom: true})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}

	var (
		wg      sync.WaitGroup
		res     LookupResult
		lookErr error
	)
	wg.Add(1)
	go func() { defer wg.Done(); res, lookErr = n.Lookup(context.Background(), fp(5)) }()
	time.Sleep(20 * time.Millisecond)

	closeDone := make(chan error, 1)
	go func() { closeDone <- n.Close() }()
	select {
	case err := <-closeDone:
		t.Fatalf("Close returned (%v) while a probe was still in flight", err)
	case <-time.After(30 * time.Millisecond):
	}
	close(hs.getGate)
	wg.Wait()
	if err := <-closeDone; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if lookErr != nil || !res.Exists || res.Value != 55 {
		t.Fatalf("in-flight lookup = (%+v, %v), want (exists 55, nil)", res, lookErr)
	}
	if _, err := n.Lookup(context.Background(), fp(5)); err == nil {
		t.Fatal("Lookup after Close succeeded")
	}
}

// TestBatchAsyncDuplicateFingerprints: a batch carrying the same new
// fingerprint twice resolves in input order — first "new", second a
// duplicate with the first's value — through the coalesced SSD phase.
func TestBatchAsyncDuplicateFingerprints(t *testing.T) {
	n := newMemNode(t, NodeConfig{CacheSize: 16, DisableBloom: true})
	pairs := []Pair{
		{FP: fp(1), Val: 10},
		{FP: fp(2), Val: 20},
		{FP: fp(1), Val: 11}, // duplicate of item 0
		{FP: fp(1), Val: 12}, // and again
	}
	rs, err := n.BatchLookupOrInsert(context.Background(), pairs)
	if err != nil {
		t.Fatalf("BatchLookupOrInsert: %v", err)
	}
	if rs[0].Exists || rs[1].Exists {
		t.Fatalf("first occurrences = %+v, %+v, want new", rs[0], rs[1])
	}
	for _, i := range []int{2, 3} {
		if !rs[i].Exists || rs[i].Value != 10 {
			t.Fatalf("duplicate item %d = %+v, want exists with value 10", i, rs[i])
		}
	}
	st := assertStatsInvariant(t, n)
	if st.Inserts != 2 {
		t.Fatalf("Inserts = %d, want 2", st.Inserts)
	}
	if st.Coalesced != 2 {
		t.Fatalf("Coalesced = %d, want 2 (the same-batch duplicates)", st.Coalesced)
	}
}

// TestBatchAsyncCoalescesDeviceReads runs a cold-cache batch against the
// on-disk hash table and checks the device was charged roughly one read
// per bucket page, not one per fingerprint — the payoff of GetBatch.
func TestBatchAsyncCoalescesDeviceReads(t *testing.T) {
	dev := device.New(device.SSD, device.Account)
	db, err := hashdb.Create(filepath.Join(t.TempDir(), "batch.db"), hashdb.Options{Buckets: 32, Device: dev})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	n, err := NewNode(NodeConfig{ID: "coalesce", Store: db, CacheSize: 64, BloomExpected: 4096})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer n.Close()

	const count = 1024
	pairs := make([]Pair, count)
	for i := range pairs {
		pairs[i] = Pair{FP: fp(uint64(i)), Val: Value(i + 1)}
	}
	if _, err := n.BatchLookupOrInsert(context.Background(), pairs); err != nil {
		t.Fatalf("seed batch: %v", err)
	}

	// Cold lookups: the 64-entry cache holds almost nothing of the 1024.
	fps := make([]fingerprint.Fingerprint, count)
	for i := range fps {
		fps[i] = fp(uint64(i))
	}
	before := dev.Stats().Reads
	rs, err := n.LookupBatch(context.Background(), fps)
	if err != nil {
		t.Fatalf("LookupBatch: %v", err)
	}
	reads := dev.Stats().Reads - before
	for i, r := range rs {
		if !r.Exists || r.Value != Value(i+1) {
			t.Fatalf("item %d = %+v, want exists value %d", i, r, i+1)
		}
	}
	pages := int64(db.Stats().Pages)
	if reads > pages {
		t.Fatalf("batch charged %d device reads for a %d-page table; want one read per page at most", reads, pages)
	}
	if reads*4 > count {
		t.Fatalf("batch charged %d reads for %d fingerprints; want at least 4x coalescing", reads, count)
	}
	assertStatsInvariant(t, n)
}

// TestAsyncWriteBackBatch drives the write-back arm through the batch
// pipeline and checks nothing is lost between cache and store.
func TestAsyncWriteBackBatch(t *testing.T) {
	store := hashdb.NewMemStore(nil)
	n := newMemNode(t, NodeConfig{Store: store, CacheSize: 64, WriteBack: true, BloomExpected: 1 << 12})
	const count = 1000
	pairs := make([]Pair, count)
	for i := range pairs {
		pairs[i] = Pair{FP: fp(uint64(i)), Val: Value(i)}
	}
	if _, err := n.BatchLookupOrInsert(context.Background(), pairs); err != nil {
		t.Fatalf("BatchLookupOrInsert: %v", err)
	}
	if err := n.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if store.Len() != count {
		t.Fatalf("store has %d entries after flush, want %d", store.Len(), count)
	}
	st := assertStatsInvariant(t, n)
	if st.Inserts != count {
		t.Fatalf("Inserts = %d, want %d", st.Inserts, count)
	}
}

// TestLockedIOBaselineEquivalence runs the same workload through the
// LockedIO baseline and the async pipeline and checks they agree on every
// answer and on the stats invariant — the ablation must compare equals.
func TestLockedIOBaselineEquivalence(t *testing.T) {
	for _, locked := range []bool{true, false} {
		n := newMemNode(t, NodeConfig{CacheSize: 32, BloomExpected: 1 << 12, LockedIO: locked, Stripes: 4})
		const count = 2000
		for i := 0; i < count; i++ {
			key := uint64(i % 700) // repeats: mix of new and duplicate
			r, err := n.LookupOrInsert(context.Background(), fp(key), Value(key))
			if err != nil {
				t.Fatalf("locked=%v: LookupOrInsert: %v", locked, err)
			}
			wantExists := i >= 700
			if r.Exists != wantExists {
				t.Fatalf("locked=%v op %d: Exists = %v, want %v", locked, i, r.Exists, wantExists)
			}
			if r.Exists && r.Value != Value(key) {
				t.Fatalf("locked=%v op %d: Value = %d, want %d", locked, i, r.Value, key)
			}
		}
		st := assertStatsInvariant(t, n)
		if st.Inserts != 700 {
			t.Fatalf("locked=%v: Inserts = %d, want 700", locked, st.Inserts)
		}
	}
}

// TestPhaseTimingsPopulated: the per-tier histograms must see every tier
// the workload exercises.
func TestPhaseTimingsPopulated(t *testing.T) {
	n := newMemNode(t, NodeConfig{CacheSize: 32, BloomExpected: 1 << 12})
	for i := 0; i < 200; i++ {
		if _, err := n.LookupOrInsert(context.Background(), fp(uint64(i%50)), Value(i)); err != nil {
			t.Fatalf("LookupOrInsert: %v", err)
		}
	}
	st, err := n.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Phases.Cache.Count == 0 {
		t.Fatal("cache phase histogram empty")
	}
	if st.Phases.Bloom.Count == 0 {
		t.Fatal("bloom phase histogram empty")
	}
	// Every insert was a Bloom short-circuit (no SSD probes in this
	// workload), but the write-through puts run as SSD phases.
	if st.Phases.SSD.Count == 0 {
		t.Fatal("ssd phase histogram empty")
	}
	if st.Phases.Cache.Max == 0 {
		t.Fatal("cache phase recorded no time at all")
	}
}

// TestAsyncLookupsDuringRebalanceChaos is the in-flight-table-under-
// rebalance regression test: JoinNode and DrainNode churn membership while
// lookups are mid-SSD-probe (the Sleep-mode device guarantees probes dwell
// outside the stripe locks), and no seeded fingerprint may ever be
// reported "new" — the PR 1 guarantee must survive the async pipeline.
func TestAsyncLookupsDuringRebalanceChaos(t *testing.T) {
	newSleepNode := func(id string) *Node {
		n, err := NewNode(NodeConfig{
			ID:            ring.NodeID(id),
			Store:         hashdb.NewMemStore(device.New(device.SSD, device.Sleep)),
			CacheSize:     64, // tiny: most lookups reach the SSD tier
			BloomExpected: 1 << 14,
			Stripes:       4,
		})
		if err != nil {
			t.Fatalf("NewNode(%s): %v", id, err)
		}
		return n
	}
	nodes := []*Node{newSleepNode("chaos-0"), newSleepNode("chaos-1"), newSleepNode("chaos-2")}
	backends := make([]Backend, len(nodes))
	for i, n := range nodes {
		backends[i] = n
	}
	c, err := NewCluster(ClusterConfig{}, backends...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()

	const seeded = 1200
	seedPairs := make([]Pair, seeded)
	for i := range seedPairs {
		seedPairs[i] = Pair{FP: fp(uint64(i)), Val: Value(i)}
	}
	if _, err := c.BatchLookupOrInsert(context.Background(), seedPairs); err != nil {
		t.Fatalf("seed: %v", err)
	}

	stop := make(chan struct{})
	churnDone := make(chan error, 1)
	go func() {
		var drained []*Node
		defer func() {
			for _, n := range drained {
				n.Close()
			}
		}()
		for round := 0; ; round++ {
			select {
			case <-stop:
				churnDone <- nil
				return
			default:
			}
			scratch := newSleepNode(fmt.Sprintf("chaos-scratch-%d", round))
			if _, err := c.JoinNode(context.Background(), scratch); err != nil {
				churnDone <- err
				return
			}
			if _, err := c.DrainNode(context.Background(), scratch.ID()); err != nil {
				churnDone <- err
				return
			}
			drained = append(drained, scratch)
		}
	}()

	var ghostNews atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := uint64(g)
			for k := 0; k < 250; k++ {
				// A value no seeded entry stores, so reconciliation can
				// tell a migrated duplicate from our own racing insert.
				r, err := c.LookupOrInsert(context.Background(), fp(i%seeded), Value(seeded))
				if err != nil {
					t.Errorf("LookupOrInsert: %v", err)
					return
				}
				if !r.Exists {
					ghostNews.Add(1)
				}
				i += 13
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	if err := <-churnDone; err != nil {
		t.Fatalf("membership churn: %v", err)
	}
	if t.Failed() {
		t.FailNow()
	}
	if d := ghostNews.Load(); d > 0 {
		t.Fatalf("%d seeded fingerprints reported as new while JoinNode/DrainNode raced async probes", d)
	}
	for _, n := range nodes {
		assertStatsInvariant(t, n)
	}
}
