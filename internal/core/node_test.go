package core

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
)

func fp(i uint64) fingerprint.Fingerprint { return fingerprint.FromUint64(i) }

func newMemNode(t *testing.T, cfg NodeConfig) *Node {
	t.Helper()
	if cfg.ID == "" {
		cfg.ID = "test-node"
	}
	if cfg.Store == nil {
		cfg.Store = hashdb.NewMemStore(nil)
	}
	if cfg.BloomExpected == 0 {
		cfg.BloomExpected = 10000
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(NodeConfig{ID: "x"}); err == nil {
		t.Fatal("NewNode without store succeeded")
	}
	if _, err := NewNode(NodeConfig{Store: hashdb.NewMemStore(nil)}); err == nil {
		t.Fatal("NewNode without ID succeeded")
	}
	if _, err := NewNode(NodeConfig{ID: "x", Store: hashdb.NewMemStore(nil), WriteBack: true}); err == nil {
		t.Fatal("NewNode with WriteBack but no cache succeeded")
	}
}

func TestLookupOrInsertFlow(t *testing.T) {
	n := newMemNode(t, NodeConfig{CacheSize: 8})

	// First sight: new fingerprint. With the Bloom filter on, the miss is
	// short-circuited without an SSD read.
	r, err := n.LookupOrInsert(context.Background(), fp(1), 100)
	if err != nil {
		t.Fatalf("LookupOrInsert: %v", err)
	}
	if r.Exists {
		t.Fatal("first lookup reported exists")
	}
	if r.Source != SourceBloom {
		t.Fatalf("first lookup source = %v, want bloom", r.Source)
	}

	// Second sight: cache hit (it was just inserted and cached).
	r, err = n.LookupOrInsert(context.Background(), fp(1), 999)
	if err != nil {
		t.Fatalf("LookupOrInsert: %v", err)
	}
	if !r.Exists || r.Value != 100 || r.Source != SourceCache {
		t.Fatalf("second lookup = %+v, want exists via cache with value 100", r)
	}
}

func TestLookupFromStoreAfterCacheEviction(t *testing.T) {
	n := newMemNode(t, NodeConfig{CacheSize: 2})
	n.LookupOrInsert(context.Background(), fp(1), 1)
	n.LookupOrInsert(context.Background(), fp(2), 2)
	n.LookupOrInsert(context.Background(), fp(3), 3) // evicts fp(1)

	r, err := n.LookupOrInsert(context.Background(), fp(1), 999)
	if err != nil {
		t.Fatalf("LookupOrInsert: %v", err)
	}
	if !r.Exists || r.Value != 1 {
		t.Fatalf("evicted entry lookup = %+v, want exists value 1", r)
	}
	if r.Source != SourceStore {
		t.Fatalf("source = %v, want store (cache was evicted)", r.Source)
	}
}

func TestBloomDisabledGoesToStore(t *testing.T) {
	n := newMemNode(t, NodeConfig{DisableBloom: true, CacheSize: 4})
	r, err := n.LookupOrInsert(context.Background(), fp(1), 1)
	if err != nil {
		t.Fatalf("LookupOrInsert: %v", err)
	}
	if r.Source != SourceNew {
		t.Fatalf("source = %v, want new (store miss without bloom)", r.Source)
	}
	st, _ := n.Stats(context.Background())
	if st.BloomShort != 0 {
		t.Fatal("bloom counters advanced with bloom disabled")
	}
	if st.StoreMisses != 1 {
		t.Fatalf("StoreMisses = %d, want 1", st.StoreMisses)
	}
}

func TestNoCacheStillCorrect(t *testing.T) {
	n := newMemNode(t, NodeConfig{CacheSize: 0})
	n.LookupOrInsert(context.Background(), fp(1), 42)
	r, err := n.LookupOrInsert(context.Background(), fp(1), 0)
	if err != nil {
		t.Fatalf("LookupOrInsert: %v", err)
	}
	if !r.Exists || r.Value != 42 || r.Source != SourceStore {
		t.Fatalf("cacheless lookup = %+v, want exists 42 via store", r)
	}
}

func TestReadOnlyLookupDoesNotInsert(t *testing.T) {
	n := newMemNode(t, NodeConfig{CacheSize: 4})
	r, err := n.Lookup(context.Background(), fp(1))
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if r.Exists {
		t.Fatal("Lookup of absent fp reported exists")
	}
	// Still absent afterwards.
	r, _ = n.Lookup(context.Background(), fp(1))
	if r.Exists {
		t.Fatal("read-only Lookup inserted the fingerprint")
	}
	st, _ := n.Stats(context.Background())
	if st.Inserts != 0 {
		t.Fatalf("Inserts = %d, want 0", st.Inserts)
	}
}

func TestInsertThenLookup(t *testing.T) {
	n := newMemNode(t, NodeConfig{CacheSize: 4})
	if err := n.Insert(context.Background(), fp(9), 90); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	r, _ := n.Lookup(context.Background(), fp(9))
	if !r.Exists || r.Value != 90 {
		t.Fatalf("Lookup after Insert = %+v", r)
	}
}

func TestBatchPreservesOrderAndDetectsIntraBatchDuplicates(t *testing.T) {
	n := newMemNode(t, NodeConfig{CacheSize: 16})
	pairs := []Pair{
		{FP: fp(1), Val: 1},
		{FP: fp(2), Val: 2},
		{FP: fp(1), Val: 3}, // duplicate within the batch
	}
	rs, err := n.BatchLookupOrInsert(context.Background(), pairs)
	if err != nil {
		t.Fatalf("BatchLookupOrInsert: %v", err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d results, want 3", len(rs))
	}
	if rs[0].Exists || rs[1].Exists {
		t.Fatal("fresh fingerprints reported as existing")
	}
	if !rs[2].Exists || rs[2].Value != 1 {
		t.Fatalf("intra-batch duplicate = %+v, want exists with value 1", rs[2])
	}
}

func TestWriteBackDestagesOnEviction(t *testing.T) {
	store := hashdb.NewMemStore(nil)
	// A tiny DestageInterval keeps the asynchronous group-commit prompt
	// even though one eviction never fills a wave.
	n := newMemNode(t, NodeConfig{Store: store, CacheSize: 2, WriteBack: true,
		DestageInterval: 100 * time.Microsecond})

	n.LookupOrInsert(context.Background(), fp(1), 1)
	if store.Len() != 0 {
		t.Fatalf("write-back inserted to store immediately (len=%d)", store.Len())
	}
	n.LookupOrInsert(context.Background(), fp(2), 2)
	n.LookupOrInsert(context.Background(), fp(3), 3) // evicts fp(1) -> async destage

	// The eviction itself does no store I/O; the destager group-commits
	// the entry shortly after. Whether the wave has landed yet or not,
	// the lookup path must answer fp(1) — from the dirty buffer before,
	// from the SSD after.
	if r, err := n.Lookup(context.Background(), fp(1)); err != nil || !r.Exists || r.Value != 1 {
		t.Fatalf("evicted entry lookup = (%+v, %v), want exists with value 1", r, err)
	}
	// Only fp(1) is asserted: the Lookup above may itself have promoted
	// fp(1) back into the 2-entry cache and evicted another dirty entry,
	// so the store's total length is racy by design.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok, _ := store.Get(fp(1)); ok && v == 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("evicted entry fp(1) never destaged to the store")
}

func TestWriteBackFlush(t *testing.T) {
	store := hashdb.NewMemStore(nil)
	n := newMemNode(t, NodeConfig{Store: store, CacheSize: 16, WriteBack: true})
	for i := uint64(1); i <= 5; i++ {
		n.LookupOrInsert(context.Background(), fp(i), Value(i))
	}
	if err := n.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if store.Len() != 5 {
		t.Fatalf("store len after flush = %d, want 5", store.Len())
	}
}

func TestWriteBackCloseFlushes(t *testing.T) {
	dir := t.TempDir()
	db, err := hashdb.Create(filepath.Join(dir, "wb.shdb"), hashdb.Options{ExpectedItems: 100})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	n, err := NewNode(NodeConfig{ID: "wb", Store: db, CacheSize: 64, WriteBack: true, BloomExpected: 1000})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	for i := uint64(0); i < 20; i++ {
		n.LookupOrInsert(context.Background(), fp(i), Value(i))
	}
	if err := n.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2, err := hashdb.Open(filepath.Join(dir, "wb.shdb"), nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db2.Close()
	if db2.Len() != 20 {
		t.Fatalf("persisted entries = %d, want 20", db2.Len())
	}
}

func TestStatsCounters(t *testing.T) {
	n := newMemNode(t, NodeConfig{CacheSize: 8})
	n.LookupOrInsert(context.Background(), fp(1), 1) // bloom short-circuit insert
	n.LookupOrInsert(context.Background(), fp(1), 1) // cache hit
	n.Lookup(context.Background(), fp(2))            // bloom negative, no insert

	st, err := n.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Lookups != 3 {
		t.Fatalf("Lookups = %d, want 3", st.Lookups)
	}
	if st.CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1", st.CacheHits)
	}
	if st.BloomShort != 2 {
		t.Fatalf("BloomShort = %d, want 2", st.BloomShort)
	}
	if st.Inserts != 1 {
		t.Fatalf("Inserts = %d, want 1", st.Inserts)
	}
	if st.StoreEntries != 1 {
		t.Fatalf("StoreEntries = %d, want 1", st.StoreEntries)
	}
}

func TestClosedNodeErrors(t *testing.T) {
	n := newMemNode(t, NodeConfig{CacheSize: 4})
	n.Close()
	if _, err := n.Lookup(context.Background(), fp(1)); err == nil {
		t.Fatal("Lookup after Close succeeded")
	}
	if _, err := n.LookupOrInsert(context.Background(), fp(1), 1); err == nil {
		t.Fatal("LookupOrInsert after Close succeeded")
	}
	if err := n.Insert(context.Background(), fp(1), 1); err == nil {
		t.Fatal("Insert after Close succeeded")
	}
	if err := n.Flush(); err == nil {
		t.Fatal("Flush after Close succeeded")
	}
}

func TestNodeRestartPreservesDedup(t *testing.T) {
	// A node restarting on its persistent hash table must rebuild its
	// Bloom filter, or every stored fingerprint would be misreported as
	// new (the filter would short-circuit to "absent").
	dir := t.TempDir()
	path := filepath.Join(dir, "restart.shdb")
	db, err := hashdb.Create(path, hashdb.Options{ExpectedItems: 1000})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	n1, err := NewNode(NodeConfig{ID: "r", Store: db, CacheSize: 64, BloomExpected: 2000})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	for i := uint64(0); i < 500; i++ {
		n1.LookupOrInsert(context.Background(), fp(i), Value(i))
	}
	if err := n1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2, err := hashdb.Open(path, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	n2, err := NewNode(NodeConfig{ID: "r", Store: db2, CacheSize: 64, BloomExpected: 2000})
	if err != nil {
		t.Fatalf("NewNode after restart: %v", err)
	}
	defer n2.Close()

	for i := uint64(0); i < 500; i++ {
		r, err := n2.LookupOrInsert(context.Background(), fp(i), 999)
		if err != nil {
			t.Fatalf("LookupOrInsert: %v", err)
		}
		if !r.Exists {
			t.Fatalf("fingerprint %d forgotten across restart", i)
		}
		if r.Value != Value(i) {
			t.Fatalf("fingerprint %d value = %d, want %d", i, r.Value, i)
		}
	}
	// New fingerprints still insert normally.
	r, _ := n2.LookupOrInsert(context.Background(), fp(10000), 1)
	if r.Exists {
		t.Fatal("fresh fingerprint reported existing after restart")
	}
}

func TestNodeRestartBloomSizedForExistingData(t *testing.T) {
	// Restarting on a store larger than BloomExpected must not create an
	// undersized (useless) filter.
	store := hashdb.NewMemStore(nil)
	for i := uint64(0); i < 5000; i++ {
		store.Put(fp(i), hashdb.Value(i))
	}
	n, err := NewNode(NodeConfig{ID: "big", Store: store, CacheSize: 16, BloomExpected: 100})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer n.Close()
	for i := uint64(0); i < 5000; i++ {
		r, err := n.Lookup(context.Background(), fp(i))
		if err != nil || !r.Exists {
			t.Fatalf("fingerprint %d lost (%v)", i, err)
		}
	}
}

func TestDedupCorrectnessOnPersistentStore(t *testing.T) {
	// End-to-end node property on the real page store: every unique
	// fingerprint is created exactly once; every duplicate is detected.
	dir := t.TempDir()
	db, err := hashdb.Create(filepath.Join(dir, "dedup.shdb"), hashdb.Options{ExpectedItems: 2000})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	n, err := NewNode(NodeConfig{ID: "d", Store: db, CacheSize: 128, BloomExpected: 4000})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer n.Close()

	const uniques = 1000
	news, dups := 0, 0
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < uniques; i++ {
			r, err := n.LookupOrInsert(context.Background(), fp(i), Value(i))
			if err != nil {
				t.Fatalf("LookupOrInsert: %v", err)
			}
			if r.Exists {
				dups++
			} else {
				news++
			}
		}
	}
	if news != uniques {
		t.Fatalf("unique inserts = %d, want %d", news, uniques)
	}
	if dups != 2*uniques {
		t.Fatalf("duplicates detected = %d, want %d", dups, 2*uniques)
	}
	if db.Len() != uniques {
		t.Fatalf("store entries = %d, want %d", db.Len(), uniques)
	}
}
