package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"shhc/internal/hashdb"
)

// stalledJournalNode builds a write-back node whose destager never fires
// on its own (huge batch/interval), so every evicted entry stays in the
// dirty buffer — and therefore in the journal — until Flush or Close.
func stalledJournalNode(t *testing.T, store hashdb.Store, journalPath string, cacheSize int) *Node {
	t.Helper()
	n, err := NewNode(NodeConfig{
		ID:              "jnl-node",
		Store:           store,
		CacheSize:       cacheSize,
		BloomExpected:   1 << 12,
		WriteBack:       true,
		JournalPath:     journalPath,
		DestageBatch:    1 << 20,
		DestageInterval: time.Hour,
		DestageQueue:    1 << 20,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	return n
}

// TestJournalReplayRecoversBufferedEvictions is the core durability claim:
// entries evicted from the cache but never destaged are rebuilt into the
// store by open-time replay of the journal alone.
func TestJournalReplayRecoversBufferedEvictions(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "node.wal")
	const cache, inserts = 8, 64

	n := stalledJournalNode(t, hashdb.NewMemStore(nil), jpath, cache)
	for i := uint64(0); i < inserts; i++ {
		if _, err := n.LookupOrInsert(context.Background(), fp(i), Value(i+7)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// Crash: snapshot the journal as it stands — evictions are journaled
	// before they acknowledge, so every evicted entry must be in it — and
	// abandon the node's RAM state entirely.
	snap, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	n.Close()

	crashJournal := filepath.Join(dir, "crash.wal")
	if err := os.WriteFile(crashJournal, snap, 0o644); err != nil {
		t.Fatal(err)
	}
	// A brand-new store: what survives can only come from the journal.
	n2 := stalledJournalNode(t, hashdb.NewMemStore(nil), crashJournal, cache)
	defer n2.Close()

	st, err := n2.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	const evicted = inserts - cache
	if st.Recovery.JournalReplayed != evicted {
		t.Fatalf("Recovery.JournalReplayed = %d, want %d", st.Recovery.JournalReplayed, evicted)
	}
	for i := uint64(0); i < evicted; i++ {
		r, err := n2.Lookup(context.Background(), fp(i))
		if err != nil {
			t.Fatalf("Lookup(%d) after replay: %v", i, err)
		}
		if !r.Exists || r.Value != Value(i+7) {
			t.Fatalf("Lookup(%d) after replay = %+v, want Exists with value %d (acked eviction lost)", i, r, i+7)
		}
	}
}

// TestJournalTruncatesAfterQuiesce pins the fsync discipline: once destage
// waves drain the buffer, the journal is truncated (after a store sync),
// and a clean Close leaves nothing to replay.
func TestJournalTruncatesAfterQuiesce(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "node.wal")
	store := hashdb.NewMemStore(nil)
	n, err := NewNode(NodeConfig{
		ID:            "jnl-node",
		Store:         store,
		CacheSize:     8,
		BloomExpected: 1 << 12,
		WriteBack:     true,
		JournalPath:   jpath,
		DestageBatch:  4,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	for i := uint64(0); i < 128; i++ {
		if _, err := n.LookupOrInsert(context.Background(), fp(i), Value(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := n.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// The buffer is empty after Flush; the quiesce truncation has run.
	fi, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 64 {
		t.Fatalf("journal still %d bytes after a drained Flush, want truncated to its header", fi.Size())
	}
	if err := n.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	n2 := stalledJournalNode(t, store, jpath, 8)
	defer n2.Close()
	st, err := n2.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovery.JournalReplayed != 0 {
		t.Fatalf("clean shutdown left %d journal records to replay", st.Recovery.JournalReplayed)
	}
}

// TestJournalTombstoneStopsResurrection: a Remove after an eviction leaves
// a tombstone in the journal, so replay of put-then-tombstone must not
// bring the entry back.
func TestJournalTombstoneStopsResurrection(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "node.wal")
	const cache = 4

	n := stalledJournalNode(t, hashdb.NewMemStore(nil), jpath, cache)
	// Insert the victim, then enough to evict it into the buffer/journal.
	victim := fp(1000)
	if _, err := n.LookupOrInsert(context.Background(), victim, Value(42)); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 2*cache; i++ {
		if _, err := n.LookupOrInsert(context.Background(), fp(i), Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.Remove(victim); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	snap, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	n.Close()

	crashJournal := filepath.Join(dir, "crash.wal")
	if err := os.WriteFile(crashJournal, snap, 0o644); err != nil {
		t.Fatal(err)
	}
	n2 := stalledJournalNode(t, hashdb.NewMemStore(nil), crashJournal, cache)
	defer n2.Close()
	r, err := n2.Lookup(context.Background(), victim)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if r.Exists {
		t.Fatalf("removed entry resurrected by journal replay: %+v", r)
	}
}

// TestJournalTornTailTolerated: replay stops at a torn record and reports
// the dropped bytes; everything before the tear is recovered.
func TestJournalTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "node.wal")
	const cache, inserts = 8, 40

	n := stalledJournalNode(t, hashdb.NewMemStore(nil), jpath, cache)
	for i := uint64(0); i < inserts; i++ {
		if _, err := n.LookupOrInsert(context.Background(), fp(i), Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	n.Close()

	// Tear the tail mid-record: half of the last record survives.
	const torn = 17
	if len(snap) < 8+2*torn {
		t.Fatalf("journal too small to tear: %d bytes", len(snap))
	}
	crashJournal := filepath.Join(dir, "crash.wal")
	if err := os.WriteFile(crashJournal, snap[:len(snap)-torn], 0o644); err != nil {
		t.Fatal(err)
	}

	n2 := stalledJournalNode(t, hashdb.NewMemStore(nil), crashJournal, cache)
	defer n2.Close()
	st, err := n2.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	const evicted = inserts - cache
	if st.Recovery.JournalReplayed != evicted-1 {
		t.Fatalf("JournalReplayed = %d, want %d (all but the torn record)", st.Recovery.JournalReplayed, evicted-1)
	}
	wantTorn := uint64(journalRecSize - torn)
	if st.Recovery.JournalTornBytes != wantTorn {
		t.Fatalf("JournalTornBytes = %d, want %d", st.Recovery.JournalTornBytes, wantTorn)
	}
	for i := uint64(0); i < evicted-1; i++ {
		r, err := n2.Lookup(context.Background(), fp(i))
		if err != nil || !r.Exists || r.Value != Value(i) {
			t.Fatalf("Lookup(%d) = (%+v, %v), want intact prefix recovered", i, r, err)
		}
	}
}

// TestJournalCoalescedOverwriteKeepsNewest: re-dirtying an entry already
// in the buffer journals the newer value after the older one, so replay
// lands on the newest acknowledged value.
func TestJournalCoalescedOverwriteKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "node.wal")
	const cache = 4

	n := stalledJournalNode(t, hashdb.NewMemStore(nil), jpath, cache)
	target := fp(5000)
	if err := n.Insert(context.Background(), target, Value(1)); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 2*cache; i++ { // evict target with Value(1)
		if _, err := n.LookupOrInsert(context.Background(), fp(i), Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Insert(context.Background(), target, Value(2)); err != nil { // re-dirty
		t.Fatal(err)
	}
	for i := uint64(100); i < 100+2*cache; i++ { // evict target again: coalesces in buffer
		if _, err := n.LookupOrInsert(context.Background(), fp(i), Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	n.Close()

	crashJournal := filepath.Join(dir, "crash.wal")
	if err := os.WriteFile(crashJournal, snap, 0o644); err != nil {
		t.Fatal(err)
	}
	n2 := stalledJournalNode(t, hashdb.NewMemStore(nil), crashJournal, cache)
	defer n2.Close()
	r, err := n2.Lookup(context.Background(), target)
	if err != nil || !r.Exists {
		t.Fatalf("Lookup(target) = (%+v, %v), want found", r, err)
	}
	if r.Value != Value(2) {
		t.Fatalf("replayed value = %d, want the newest acknowledged value 2", r.Value)
	}
}

// TestJournalCheckpointBoundsGrowth: when quiesce truncation never fires
// (a destager stalled mid-pressure), the size-triggered checkpoint drains
// the buffer and truncates anyway, so the journal cannot grow without
// bound — and nothing is lost in the process.
func TestJournalCheckpointBoundsGrowth(t *testing.T) {
	old := journalCheckpointBytes
	journalCheckpointBytes = 1024
	defer func() { journalCheckpointBytes = old }()

	dir := t.TempDir()
	jpath := filepath.Join(dir, "node.wal")
	store := hashdb.NewMemStore(nil)
	// Waves would normally never fire (huge batch, huge interval): only
	// the checkpoint can truncate.
	n := stalledJournalNode(t, store, jpath, 8)
	defer n.Close()

	const inserts = 400 // ~392 evictions ≈ 12.9 KB of records without the bound
	for i := uint64(0); i < inserts; i++ {
		if _, err := n.LookupOrInsert(context.Background(), fp(i), Value(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// The checkpoint runs on the destager goroutine; give it a bounded
	// moment to drain and truncate.
	deadline := time.Now().Add(5 * time.Second)
	for {
		fi, err := os.Stat(jpath)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() <= journalCheckpointBytes {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal still %d bytes, checkpoint never bounded it (threshold %d)", fi.Size(), journalCheckpointBytes)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Checkpointed entries were destaged, not dropped.
	for i := uint64(0); i < inserts; i++ {
		r, err := n.Lookup(context.Background(), fp(i))
		if err != nil || !r.Exists || r.Value != Value(i) {
			t.Fatalf("Lookup(%d) after checkpoint = (%+v, %v), want found with exact value", i, r, err)
		}
	}
}
