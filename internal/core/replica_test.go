package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

// fpOwnedBy2 is fpOwnedBy excluding one fingerprint already in use.
func fpOwnedBy2(t *testing.T, c *Cluster, want ring.NodeID, not fingerprint.Fingerprint) fingerprint.Fingerprint {
	t.Helper()
	for i := uint64(0); i < 10_000; i++ {
		fp := fingerprint.FromUint64(i)
		if fp == not {
			continue
		}
		if owner, err := c.Owner(fp); err == nil && owner == want {
			return fp
		}
	}
	t.Fatalf("no spare fingerprint owned by %s in 10k tries", want)
	return fingerprint.Fingerprint{}
}

// revive undoes kill: the backend answers again.
func (f *flakyBackend) revive() {
	f.mu.Lock()
	f.dead = false
	f.mu.Unlock()
}

// TestReplicatedInsertReachesAllReplicas: with Replicas=2 every acked
// insert must be present on both the owner and its successor — the write
// path's core durability invariant.
func TestReplicatedInsertReachesAllReplicas(t *testing.T) {
	c := newTestCluster(t, 3, ClusterConfig{Replicas: 2})
	ctx := context.Background()

	const n = 200
	for i := 0; i < n; i++ {
		r, err := c.LookupOrInsert(ctx, fingerprint.FromUint64(uint64(i)), Value(i+1))
		if err != nil {
			t.Fatalf("LookupOrInsert %d: %v", i, err)
		}
		if r.Exists {
			t.Fatalf("fresh fingerprint %d reported existing", i)
		}
	}
	for i := 0; i < n; i++ {
		fp := fingerprint.FromUint64(uint64(i))
		replicas, err := c.routingFor(fp)
		if err != nil {
			t.Fatalf("routingFor: %v", err)
		}
		if len(replicas) != 2 {
			t.Fatalf("fingerprint %d has %d replicas, want 2", i, len(replicas))
		}
		for _, b := range replicas {
			r, err := b.Lookup(ctx, fp)
			if err != nil {
				t.Fatalf("replica %s lookup %d: %v", b.ID(), i, err)
			}
			if !r.Exists || r.Value != Value(i+1) {
				t.Fatalf("replica %s of fingerprint %d = %+v, want exists value %d", b.ID(), i, r, i+1)
			}
		}
	}

	rs := c.ReplicationStats()
	if rs.FannedWrites != n {
		t.Fatalf("FannedWrites = %d, want %d (one mirror per insert)", rs.FannedWrites, n)
	}
	if rs.QuorumWaits != n || rs.QuorumFailures != 0 {
		t.Fatalf("quorum stats = %d waits / %d failures, want %d / 0", rs.QuorumWaits, rs.QuorumFailures, n)
	}
}

// TestBatchReplicatedInsertReachesAllReplicas exercises the batched write
// path: mirror writes ride one repair wave per mirror node, and every
// acked pair lands on its full replica set.
func TestBatchReplicatedInsertReachesAllReplicas(t *testing.T) {
	c := newTestCluster(t, 3, ClusterConfig{Replicas: 2})
	ctx := context.Background()

	const n = 300
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = Pair{FP: fingerprint.FromUint64(uint64(i)), Val: Value(i + 1)}
	}
	rs, err := c.BatchLookupOrInsert(ctx, pairs)
	if err != nil {
		t.Fatalf("BatchLookupOrInsert: %v", err)
	}
	for i, r := range rs {
		if r.Exists {
			t.Fatalf("fresh pair %d reported existing", i)
		}
	}
	for _, p := range pairs {
		replicas, err := c.routingFor(p.FP)
		if err != nil {
			t.Fatalf("routingFor: %v", err)
		}
		for _, b := range replicas {
			r, err := b.Lookup(ctx, p.FP)
			if err != nil {
				t.Fatalf("replica %s lookup: %v", b.ID(), err)
			}
			if !r.Exists || r.Value != p.Val {
				t.Fatalf("replica %s of %s = %+v, want exists value %d", b.ID(), p.FP.Short(), r, p.Val)
			}
		}
	}
	// A second pass is pure duplicates, answered with the original values
	// and without any further fan-out.
	fanned := c.ReplicationStats().FannedWrites
	rs, err = c.BatchLookupOrInsert(ctx, pairs)
	if err != nil {
		t.Fatalf("duplicate batch: %v", err)
	}
	for i, r := range rs {
		if !r.Exists || r.Value != Value(i+1) {
			t.Fatalf("duplicate %d = %+v, want exists value %d", i, r, i+1)
		}
	}
	if got := c.ReplicationStats().FannedWrites; got != fanned {
		t.Fatalf("duplicate batch fanned %d extra writes", got-fanned)
	}
}

// newReplicatedPair builds a 2-node Replicas=2 cluster where the second
// node can be killed and revived, returning the cluster, the live inner
// nodes, and the kill switch.
func newReplicatedPair(t *testing.T, cfg ClusterConfig) (*Cluster, [2]*Node, *flakyBackend) {
	t.Helper()
	nodes := [2]*Node{}
	for i := range nodes {
		node, err := NewNode(NodeConfig{
			ID:            ring.NodeID(fmt.Sprintf("node-%d", i)),
			Store:         hashdb.NewMemStore(nil),
			CacheSize:     256,
			BloomExpected: 100000,
		})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		nodes[i] = node
	}
	flaky := &flakyBackend{Backend: nodes[1]}
	cfg.Replicas = 2
	c, err := NewCluster(cfg, nodes[0], flaky)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c, nodes, flaky
}

// TestWriteQuorumFailureDegradesToSafeNew: with the default majority
// quorum (2 of 2), an insert whose mirror is down cannot fail — the
// decider's copy is already durable, so an error would make a retry look
// like a stored duplicate and the client would skip the upload of a chunk
// no one stored. The insert must instead ack with the safe "new" answer
// (the client uploads), count a QuorumFailure, and converge the missing
// mirror once it is back.
func TestWriteQuorumFailureDegradesToSafeNew(t *testing.T) {
	c, _, flaky := newReplicatedPair(t, ClusterConfig{})
	ctx := context.Background()
	fp := fpOwnedBy(t, c, "node-0")

	flaky.kill()
	r, err := c.LookupOrInsert(ctx, fp, 1)
	if err != nil {
		t.Fatalf("insert with dead mirror errored after the durable decider insert: %v", err)
	}
	if r.Exists {
		t.Fatalf("degraded insert = %+v, want the safe 'new' answer", r)
	}
	if got := c.ReplicationStats().QuorumFailures; got == 0 {
		t.Fatal("quorum failure not counted")
	}
	// A retry is answered "duplicate" — safe, because the first call
	// already told the client to upload. This consistency (never an error
	// in between) is exactly why the degraded path must not fail.
	if r, err := c.LookupOrInsert(ctx, fp, 1); err != nil || !r.Exists || r.Value != 1 {
		t.Fatalf("retry of degraded insert = %+v, %v, want exists value 1", r, err)
	}

	// The batched path degrades the same way, pair by pair.
	fp2 := fpOwnedBy2(t, c, "node-0", fp)
	failures := c.ReplicationStats().QuorumFailures
	rs, err := c.BatchLookupOrInsert(ctx, []Pair{{FP: fp2, Val: 1}})
	if err != nil {
		t.Fatalf("batch insert with dead mirror errored: %v", err)
	}
	if len(rs) != 1 || rs[0].Exists {
		t.Fatalf("degraded batch insert = %+v, want the safe 'new' answer", rs)
	}
	if got := c.ReplicationStats().QuorumFailures; got <= failures {
		t.Fatal("batch quorum failure not counted")
	}

	// With the mirror back, anti-entropy converges the degraded inserts:
	// the repair queued while the mirror was dead may itself have failed
	// and been dropped — the sweep is the backstop.
	flaky.revive()
	if _, err := c.AntiEntropy(ctx); err != nil {
		t.Fatalf("AntiEntropy: %v", err)
	}
	if err := c.FlushRepairs(ctx); err != nil {
		t.Fatalf("FlushRepairs: %v", err)
	}
	for _, f := range []fingerprint.Fingerprint{fp, fp2} {
		replicas, err := c.routingFor(f)
		if err != nil {
			t.Fatalf("routingFor: %v", err)
		}
		for _, b := range replicas {
			if r, err := b.Lookup(ctx, f); err != nil || !r.Exists || r.Value != 1 {
				t.Fatalf("replica %s of %s after revive = %+v, %v, want exists value 1", b.ID(), f.Short(), r, err)
			}
		}
	}
}

// TestBatchQuorumFailoverWhenOwnerDown: a batch group whose OWNER is down
// must not fail the batch — its pairs fail over to the single-key path,
// where the surviving replica decides and the insert degrades to the safe
// "new" answer. Erroring instead would strand the batch's other groups:
// their entries are already durable, so a retried plan would report them
// as duplicates for chunks the client never uploaded.
func TestBatchQuorumFailoverWhenOwnerDown(t *testing.T) {
	c, nodes, flaky := newReplicatedPair(t, ClusterConfig{})
	ctx := context.Background()
	deadOwned := fpOwnedBy(t, c, "node-1") // group decided by the dead node
	liveOwned := fpOwnedBy(t, c, "node-0") // group that decides fine
	pairs := []Pair{{FP: deadOwned, Val: 7}, {FP: liveOwned, Val: 8}}

	flaky.kill()
	rs, err := c.BatchLookupOrInsert(ctx, pairs)
	if err != nil {
		t.Fatalf("batch with dead owner errored instead of failing over: %v", err)
	}
	for i, r := range rs {
		if r.Exists {
			t.Fatalf("degraded batch pair %d = %+v, want the safe 'new' answer", i, r)
		}
	}
	if got := c.ReplicationStats().QuorumFailures; got == 0 {
		t.Fatal("failed-over inserts did not count their quorum failures")
	}
	// Both entries are durable on the survivor, so a retried batch answers
	// "duplicate" — safe, the first batch already told the client to upload.
	rs, err = c.BatchLookupOrInsert(ctx, pairs)
	if err != nil {
		t.Fatalf("retry batch: %v", err)
	}
	for i, r := range rs {
		if !r.Exists || r.Value != pairs[i].Val {
			t.Fatalf("retry pair %d = %+v, want exists value %d", i, r, pairs[i].Val)
		}
	}

	// Once the owner is back, the sweep restores full replication.
	flaky.revive()
	if _, err := c.AntiEntropy(ctx); err != nil {
		t.Fatalf("AntiEntropy: %v", err)
	}
	if err := c.FlushRepairs(ctx); err != nil {
		t.Fatalf("FlushRepairs: %v", err)
	}
	for i, p := range pairs {
		for _, n := range nodes {
			if r, err := n.Lookup(ctx, p.FP); err != nil || !r.Exists || r.Value != p.Val {
				t.Fatalf("node %s pair %d after revive = %+v, %v, want exists value %d", n.ID(), i, r, err, p.Val)
			}
		}
	}
}

// TestWriteQuorumOneTradesDurabilityForAvailability: WriteQuorum=1 keeps
// accepting inserts with the mirror down, queues the missed replica
// writes, and anti-entropy restores full replication once the mirror is
// back.
func TestWriteQuorumOneTradesDurabilityForAvailability(t *testing.T) {
	c, nodes, flaky := newReplicatedPair(t, ClusterConfig{WriteQuorum: 1})
	ctx := context.Background()

	flaky.kill()
	var fps []fingerprint.Fingerprint
	for i := uint64(0); len(fps) < 50; i++ {
		fp := fingerprint.FromUint64(i)
		if owner, _ := c.Owner(fp); owner != "node-0" {
			continue
		}
		if _, err := c.LookupOrInsert(ctx, fp, Value(i+1)); err != nil {
			t.Fatalf("quorum-1 insert with dead mirror: %v", err)
		}
		fps = append(fps, fp)
	}
	// Quorum 1 means the insert acks before the mirror write resolves;
	// the failed fan-out enqueues its repair asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for c.ReplicationStats().RepairsQueued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no repairs queued for the unreachable mirror")
		}
		time.Sleep(time.Millisecond)
	}

	flaky.revive()
	if _, err := c.AntiEntropy(ctx); err != nil {
		t.Fatalf("AntiEntropy: %v", err)
	}
	if err := c.FlushRepairs(ctx); err != nil {
		t.Fatalf("FlushRepairs: %v", err)
	}
	for _, fp := range fps {
		if r, err := nodes[1].Lookup(ctx, fp); err != nil || !r.Exists {
			t.Fatalf("mirror missing %s after anti-entropy: %+v, %v", fp.Short(), r, err)
		}
	}
}

// TestDuplicateInsertDoesNotRefan: a duplicate was already replicated
// when it was first acked; answering it again must not generate mirror
// traffic.
func TestDuplicateInsertDoesNotRefan(t *testing.T) {
	c := newTestCluster(t, 2, ClusterConfig{Replicas: 2})
	ctx := context.Background()
	fp := fingerprint.FromUint64(42)

	if _, err := c.LookupOrInsert(ctx, fp, 1); err != nil {
		t.Fatalf("LookupOrInsert: %v", err)
	}
	fanned := c.ReplicationStats().FannedWrites
	for i := 0; i < 5; i++ {
		r, err := c.LookupOrInsert(ctx, fp, Value(100+i))
		if err != nil {
			t.Fatalf("duplicate insert: %v", err)
		}
		if !r.Exists || r.Value != 1 {
			t.Fatalf("duplicate = %+v, want exists value 1", r)
		}
	}
	if got := c.ReplicationStats().FannedWrites; got != fanned {
		t.Fatalf("duplicates fanned %d extra writes", got-fanned)
	}
}
