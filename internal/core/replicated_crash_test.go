package core

// The replicated flavor of the crash-injection harness: a 2-node cluster
// with Replicas=2 and the default majority quorum (2 of 2) runs an insert
// schedule whose fingerprints are all owned by node A, while node A's
// store dies at the Nth write (hashdb.Failpoint) — every write point, one
// run per point. The property under test is the replication contract, not
// node A's own recovery (crash_test.go proves that): an acked insert
// either met the 2-of-2 quorum (B durably acknowledged the mirror write)
// or degraded below quorum — which in this topology only happens when
// healthy B itself decided the insert after failover and dead A was the
// unreachable mirror. Either way every acked fingerprint must remain
// servable from the surviving replica B, at its exact value, no matter
// where in the write stream A died.

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

// replCrashFPs returns crashInserts fingerprints all owned by node-0 in a
// 2-node ring — the ring layout depends only on the IDs, so a throwaway
// cluster computes the same ownership the real runs will see.
func replCrashFPs(t *testing.T) []fingerprint.Fingerprint {
	t.Helper()
	probe := newTestCluster(t, 2, ClusterConfig{Replicas: 2})
	fps := make([]fingerprint.Fingerprint, 0, crashInserts)
	for i := uint64(0); len(fps) < crashInserts; i++ {
		if i > 100_000 {
			t.Fatal("could not collect node-0-owned fingerprints")
		}
		f := fingerprint.FromUint64(i)
		if owner, err := probe.Owner(f); err == nil && owner == "node-0" {
			fps = append(fps, f)
		}
	}
	return fps
}

// buildReplicatedPair assembles owner A (write-back, journaled, over the
// given store) and survivor B (plain write-through), replicated 2×2.
func buildReplicatedPair(t *testing.T, storeA hashdb.Store, journalA string) (*Cluster, *Node) {
	t.Helper()
	cfgA := crashNodeConfig(storeA, journalA)
	cfgA.ID = ring.NodeID("node-0")
	a, err := NewNode(cfgA)
	if err != nil {
		t.Fatalf("NewNode A: %v", err)
	}
	b, err := NewNode(NodeConfig{
		ID:            ring.NodeID("node-1"),
		Store:         hashdb.NewMemStore(nil),
		CacheSize:     256,
		BloomExpected: 1 << 12,
	})
	if err != nil {
		t.Fatalf("NewNode B: %v", err)
	}
	c, err := NewCluster(ClusterConfig{Replicas: 2}, a, b)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c, b
}

func TestReplicatedCrashKillOwnerAtEveryWrite(t *testing.T) {
	fps := replCrashFPs(t)

	// Probe the schedule's total store-write count on owner A with an
	// unreachable kill point.
	probeStore := hashdb.NewFailpoint(hashdb.NewMemStore(nil), math.MaxInt64, nil)
	pc, _ := buildReplicatedPair(t, probeStore, filepath.Join(t.TempDir(), "probe.wal"))
	for i, f := range fps {
		if _, err := pc.LookupOrInsert(context.Background(), f, crashVal(uint64(i))); err != nil {
			t.Fatalf("probe insert %d: %v", i, err)
		}
	}
	pc.Close() // flushes A's destage tail through the probe store
	total := probeStore.Writes()
	if total < int64(crashInserts)/2 {
		t.Fatalf("schedule issued only %d store writes on the owner; harness too weak", total)
	}

	for k := int64(1); k <= total; k++ {
		runReplicatedCrashPoint(t, k, fps)
	}
}

func runReplicatedCrashPoint(t *testing.T, killAt int64, fps []fingerprint.Fingerprint) {
	t.Helper()
	store := hashdb.NewFailpoint(hashdb.NewMemStore(nil), killAt, nil)
	c, b := buildReplicatedPair(t, store, filepath.Join(t.TempDir(), "node.wal"))

	// Drive the schedule to the end, tolerating failures once the kill
	// fires: a failed insert simply is not acked. Acked inserts may keep
	// happening after the store dies (A's write-back inserts are RAM-speed
	// until the parked destage error surfaces, and failover can make B the
	// decider) — the invariant below covers them all the same.
	acked := make([]int, 0, len(fps))
	for i, f := range fps {
		if _, err := c.LookupOrInsert(context.Background(), f, crashVal(uint64(i))); err == nil {
			acked = append(acked, i)
		}
	}
	// The replication contract: an ack put the entry durably on B (as the
	// quorum mirror, or as the failover decider of a degraded insert), so
	// the surviving replica B must serve every acked fingerprint with its
	// exact value — before any repair or recovery machinery runs.
	for _, i := range acked {
		r, err := b.Lookup(context.Background(), fps[i])
		if err != nil {
			t.Fatalf("kill=%d: survivor lookup %d: %v", killAt, i, err)
		}
		if !r.Exists {
			t.Fatalf("kill=%d: acked insert %d lost from the surviving replica", killAt, i)
		}
		if r.Value != crashVal(uint64(i)) {
			t.Fatalf("kill=%d: survivor serves %d for insert %d, want %d (corrupt data)", killAt, r.Value, i, crashVal(uint64(i)))
		}
	}
	c.Close() // errors expected after a kill; the invariant was checked above
}
