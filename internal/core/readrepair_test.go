package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

// slowNode wraps a node and delays read lookups; writes pass straight
// through. It hides the node's ApplyRepair on purpose, so repair traffic
// to it takes the generic batch path.
type slowNode struct {
	Backend
	delay time.Duration
}

func (s *slowNode) Lookup(ctx context.Context, fp fingerprint.Fingerprint) (LookupResult, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return LookupResult{}, ctx.Err()
	}
	return s.Backend.Lookup(ctx, fp)
}

// TestLookupRepairsMissingOwner: the owner lost an entry its successor
// holds (the wipe-disk shape). A plain Lookup must answer with the
// replica's copy — a single replica's miss never wins — and one lookup
// must converge the owner via read-repair.
func TestLookupRepairsMissingOwner(t *testing.T) {
	nodes := make([]*Node, 2)
	backends := make([]Backend, 2)
	for i := range nodes {
		node, err := NewNode(NodeConfig{
			ID:            ring.NodeID(fmt.Sprintf("node-%d", i)),
			Store:         hashdb.NewMemStore(nil),
			CacheSize:     256,
			BloomExpected: 100000,
		})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		nodes[i] = node
		backends[i] = node
	}
	c, err := NewCluster(ClusterConfig{Replicas: 2}, backends...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	ctx := context.Background()

	fp := fpOwnedBy(t, c, "node-0")
	// Seed only the successor: the owner diverged (lost the entry).
	if err := nodes[1].Insert(ctx, fp, 7); err != nil {
		t.Fatalf("Insert: %v", err)
	}

	r, err := c.Lookup(ctx, fp)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if !r.Exists || r.Value != 7 {
		t.Fatalf("lookup with diverged owner = %+v, want exists value 7 (ghost new!)", r)
	}
	if got := c.ReplicationStats().ReadRepairs; got == 0 {
		t.Fatal("divergence observed but no read-repair recorded")
	}
	if err := c.FlushRepairs(ctx); err != nil {
		t.Fatalf("FlushRepairs: %v", err)
	}
	or, err := nodes[0].Lookup(ctx, fp)
	if err != nil || !or.Exists || or.Value != 7 {
		t.Fatalf("owner after read-repair = %+v, %v, want exists value 7", or, err)
	}
}

// TestHedgedLookupRepairsMissingReplica: the owner holds the entry but is
// slow; the hedged race gets a fast miss from the successor. The miss
// must not win the race, and the lookup must backfill the successor.
func TestHedgedLookupRepairsMissingReplica(t *testing.T) {
	nodes := make([]*Node, 2)
	backends := make([]Backend, 2)
	for i := range nodes {
		node, err := NewNode(NodeConfig{
			ID:            ring.NodeID(fmt.Sprintf("node-%d", i)),
			Store:         hashdb.NewMemStore(nil),
			CacheSize:     256,
			BloomExpected: 100000,
		})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		nodes[i] = node
		backends[i] = node
	}
	// Delay only node-0's lookups so the successor always answers first.
	backends[0] = &slowNode{Backend: nodes[0], delay: 30 * time.Millisecond}
	c, err := NewCluster(ClusterConfig{Replicas: 2}, backends...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	ctx := context.Background()

	fp := fpOwnedBy(t, c, "node-0")
	// Seed only the (slow) owner: the successor is under-replicated.
	if err := nodes[0].Insert(ctx, fp, 9); err != nil {
		t.Fatalf("Insert: %v", err)
	}

	r, err := c.LookupHedged(ctx, fp, time.Millisecond)
	if err != nil {
		t.Fatalf("LookupHedged: %v", err)
	}
	if !r.Exists || r.Value != 9 {
		t.Fatalf("hedged lookup = %+v, want exists value 9 (the replica's fast miss must not win)", r)
	}
	if err := c.FlushRepairs(ctx); err != nil {
		t.Fatalf("FlushRepairs: %v", err)
	}
	sr, err := nodes[1].Lookup(ctx, fp)
	if err != nil || !sr.Exists || sr.Value != 9 {
		t.Fatalf("successor after read-repair = %+v, %v, want exists value 9", sr, err)
	}
}

// TestRepairDroppedForNonReplicaTarget: a queued repair whose target is
// not in the fingerprint's replica set by the time the worker pops it
// must be dropped, not applied — the guard that keeps stale repairs from
// resurrecting entries onto nodes that no longer own them.
func TestRepairDroppedForNonReplicaTarget(t *testing.T) {
	c := newTestCluster(t, 3, ClusterConfig{Replicas: 2})
	ctx := context.Background()

	fp := fingerprint.FromUint64(1)
	replicas, err := c.routingFor(fp)
	if err != nil {
		t.Fatalf("routingFor: %v", err)
	}
	inSet := map[ring.NodeID]bool{}
	for _, b := range replicas {
		inSet[b.ID()] = true
	}
	var outsider Backend
	c.mu.RLock()
	for id, b := range c.backends {
		if !inSet[id] {
			outsider = b
		}
	}
	c.mu.RUnlock()
	if outsider == nil {
		t.Fatal("no node outside the replica set (ring degenerate?)")
	}

	c.enqueueRepair(outsider.ID(), fp, 5)
	if err := c.FlushRepairs(ctx); err != nil {
		t.Fatalf("FlushRepairs: %v", err)
	}
	if r, err := outsider.Lookup(ctx, fp); err != nil || r.Exists {
		t.Fatalf("stale repair resurrected %s on non-replica %s: %+v, %v", fp.Short(), outsider.ID(), r, err)
	}
	if got := c.ReplicationStats().RepairsDropped; got == 0 {
		t.Fatal("stale repair was not counted as dropped")
	}
}

// TestRepairDroppedForRemovedNode: repairs already queued for a node when
// it leaves the ring must not land on it afterwards.
func TestRepairDroppedForRemovedNode(t *testing.T) {
	nodes := make([]*Node, 3)
	backends := make([]Backend, 3)
	for i := range nodes {
		node, err := NewNode(NodeConfig{
			ID:            ring.NodeID(fmt.Sprintf("node-%d", i)),
			Store:         hashdb.NewMemStore(nil),
			CacheSize:     256,
			BloomExpected: 100000,
		})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		nodes[i] = node
		backends[i] = node
	}
	c, err := NewCluster(ClusterConfig{Replicas: 2}, backends...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	defer nodes[2].Close() // detached below; the cluster no longer closes it
	ctx := context.Background()

	if err := c.RemoveNode("node-2"); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	for i := uint64(0); i < 50; i++ {
		c.enqueueRepair("node-2", fingerprint.FromUint64(i), Value(i+1))
	}
	if err := c.FlushRepairs(ctx); err != nil {
		t.Fatalf("FlushRepairs: %v", err)
	}
	for i := uint64(0); i < 50; i++ {
		fp := fingerprint.FromUint64(i)
		if r, err := nodes[2].Lookup(ctx, fp); err != nil || r.Exists {
			t.Fatalf("repair landed on removed node: %s = %+v, %v", fp.Short(), r, err)
		}
	}
}

// TestRepairChurnUnderMembershipChanges races the repair queue against
// membership churn: concurrent inserts, explicit repair enqueues, and a
// node leaving and rejoining the ring. Run under -race; the invariant is
// no crash, no deadlock, and every insert remains servable.
func TestRepairChurnUnderMembershipChanges(t *testing.T) {
	nodes := make([]*Node, 3)
	backends := make([]Backend, 3)
	for i := range nodes {
		node, err := NewNode(NodeConfig{
			ID:            ring.NodeID(fmt.Sprintf("node-%d", i)),
			Store:         hashdb.NewMemStore(nil),
			CacheSize:     512,
			BloomExpected: 100000,
		})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		nodes[i] = node
		backends[i] = node
	}
	// WriteQuorum 1 so inserts keep succeeding while a replica is out.
	c, err := NewCluster(ClusterConfig{Replicas: 2, WriteQuorum: 1}, backends...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	ctx := context.Background()

	const inserts = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Churner: node-2 leaves and rejoins until the writers finish.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.RemoveNode("node-2"); err != nil {
				continue
			}
			time.Sleep(time.Millisecond)
			if err := c.AddNode(nodes[2]); err != nil {
				t.Errorf("AddNode: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// Repair-spammer: enqueues repairs for targets that may be mid-churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.enqueueRepair(ring.NodeID(fmt.Sprintf("node-%d", i%3)), fingerprint.FromUint64(uint64(i%inserts)), Value(i%inserts+1))
		}
	}()

	for i := 0; i < inserts; i++ {
		if _, err := c.LookupOrInsert(ctx, fingerprint.FromUint64(uint64(i)), Value(i+1)); err != nil {
			t.Fatalf("LookupOrInsert %d during churn: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if err := c.FlushRepairs(ctx); err != nil {
		t.Fatalf("FlushRepairs: %v", err)
	}

	for i := 0; i < inserts; i++ {
		r, err := c.Lookup(ctx, fingerprint.FromUint64(uint64(i)))
		if err != nil {
			t.Fatalf("Lookup %d after churn: %v", i, err)
		}
		if !r.Exists {
			t.Fatalf("insert %d vanished after churn", i)
		}
	}
}
