package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

// TestAntiEntropyRestoresReplicationAfterJoin: a node joining the ring
// takes over replica ranges it holds no data for; the sweep must walk the
// surviving copies and re-replicate every entry the newcomer now owes.
func TestAntiEntropyRestoresReplicationAfterJoin(t *testing.T) {
	nodes := make([]*Node, 3)
	for i := range nodes {
		node, err := NewNode(NodeConfig{
			ID:            ring.NodeID(fmt.Sprintf("node-%d", i)),
			Store:         hashdb.NewMemStore(nil),
			CacheSize:     512,
			BloomExpected: 100000,
		})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		nodes[i] = node
	}
	c, err := NewCluster(ClusterConfig{Replicas: 2}, nodes[0], nodes[1])
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	ctx := context.Background()

	const n = 300
	for i := 0; i < n; i++ {
		if _, err := c.LookupOrInsert(ctx, fingerprint.FromUint64(uint64(i)), Value(i+1)); err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
	}

	if err := c.AddNode(nodes[2]); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	st, err := c.AntiEntropy(ctx)
	if err != nil {
		t.Fatalf("AntiEntropy: %v", err)
	}
	if st.Scanned < n {
		t.Fatalf("sweep scanned %d entries, want >= %d", st.Scanned, n)
	}
	// AddNode woke the background sweeper, which races this manual sweep —
	// either may find the other already did the repairs, so assert the
	// cumulative counter (polling: the background sweep posts its counters
	// only when it finishes).
	deadline := time.Now().Add(5 * time.Second)
	for c.ReplicationStats().AntiEntropyRepaired == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no sweep repaired anything after the join")
		}
		time.Sleep(time.Millisecond)
	}

	// Every seeded fingerprint must now be present on its full (current)
	// replica set, with its original value.
	for i := 0; i < n; i++ {
		fp := fingerprint.FromUint64(uint64(i))
		replicas, err := c.routingFor(fp)
		if err != nil {
			t.Fatalf("routingFor: %v", err)
		}
		if len(replicas) != 2 {
			t.Fatalf("fingerprint %d has %d replicas, want 2", i, len(replicas))
		}
		for _, b := range replicas {
			r, err := b.Lookup(ctx, fp)
			if err != nil || !r.Exists || r.Value != Value(i+1) {
				t.Fatalf("replica %s of fingerprint %d = %+v, %v, want exists value %d", b.ID(), i, r, err, i+1)
			}
		}
	}

	// A second sweep over a healthy cluster finds nothing to do.
	st, err = c.AntiEntropy(ctx)
	if err != nil {
		t.Fatalf("second AntiEntropy: %v", err)
	}
	if st.Repaired != 0 {
		t.Fatalf("sweep over a healthy cluster repaired %d entries", st.Repaired)
	}

	rs := c.ReplicationStats()
	if rs.AntiEntropyRuns < 2 || rs.AntiEntropyRepaired == 0 {
		t.Fatalf("replication stats did not mirror the sweeps: %+v", rs)
	}
}

// TestAntiEntropyNoopWithoutReplication: with Replicas=1 there is nothing
// to re-replicate and the sweep must be a free no-op.
func TestAntiEntropyNoopWithoutReplication(t *testing.T) {
	c := newTestCluster(t, 3, ClusterConfig{})
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if _, err := c.LookupOrInsert(ctx, fingerprint.FromUint64(uint64(i)), Value(i+1)); err != nil {
			t.Fatalf("seed: %v", err)
		}
	}
	st, err := c.AntiEntropy(ctx)
	if err != nil {
		t.Fatalf("AntiEntropy: %v", err)
	}
	if st != (AntiEntropyStats{}) {
		t.Fatalf("unreplicated sweep did work: %+v", st)
	}
}

// TestAntiEntropyLoopHealsAfterMembershipChange: with a periodic interval
// configured, divergence introduced by a membership change heals without
// anyone calling AntiEntropy explicitly.
func TestAntiEntropyLoopHealsAfterMembershipChange(t *testing.T) {
	nodes := make([]*Node, 3)
	for i := range nodes {
		node, err := NewNode(NodeConfig{
			ID:            ring.NodeID(fmt.Sprintf("node-%d", i)),
			Store:         hashdb.NewMemStore(nil),
			CacheSize:     512,
			BloomExpected: 100000,
		})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		nodes[i] = node
	}
	c, err := NewCluster(ClusterConfig{Replicas: 2, AntiEntropyInterval: 5 * time.Millisecond}, nodes[0], nodes[1])
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	ctx := context.Background()

	const n = 100
	for i := 0; i < n; i++ {
		if _, err := c.LookupOrInsert(ctx, fingerprint.FromUint64(uint64(i)), Value(i+1)); err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
	}
	if err := c.AddNode(nodes[2]); err != nil {
		t.Fatalf("AddNode: %v", err)
	}

	// The loop (woken by the membership change, and ticking every 5ms)
	// must converge the newcomer without an explicit sweep.
	deadline := time.Now().Add(10 * time.Second)
	for {
		healthy := true
	check:
		for i := 0; i < n; i++ {
			fp := fingerprint.FromUint64(uint64(i))
			replicas, err := c.routingFor(fp)
			if err != nil {
				t.Fatalf("routingFor: %v", err)
			}
			for _, b := range replicas {
				if r, err := b.Lookup(ctx, fp); err != nil || !r.Exists {
					healthy = false
					break check
				}
			}
		}
		if healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("anti-entropy loop did not restore replication within 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
