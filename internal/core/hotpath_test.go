package core

import (
	"context"
	"sync"
	"testing"

	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

func newHotPathNode(t *testing.T, cfg NodeConfig) *Node {
	t.Helper()
	if cfg.ID == "" {
		cfg.ID = ring.NodeID("hotpath")
	}
	if cfg.Store == nil {
		cfg.Store = hashdb.NewMemStore(nil)
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// TestHotPathCacheHitStats: lock-free cache hits must keep the Stats
// invariant (per-source counters sum to Lookups) and land under CacheHits.
func TestHotPathCacheHitStats(t *testing.T) {
	n := newHotPathNode(t, NodeConfig{CacheSize: 4096, Stripes: 4})
	ctx := context.Background()
	fps := make([]fingerprint.Fingerprint, 64)
	for i := range fps {
		fps[i] = fingerprint.FromUint64(uint64(i))
		if _, err := n.LookupOrInsert(ctx, fps[i], Value(i+1)); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	const rounds = 10
	for r := 0; r < rounds; r++ {
		for i, fp := range fps {
			res, err := n.Lookup(ctx, fp)
			if err != nil {
				t.Fatalf("lookup: %v", err)
			}
			if !res.Exists || res.Value != Value(i+1) || res.Source != SourceCache {
				t.Fatalf("lookup %d = %+v; want cache hit with value %d", i, res, i+1)
			}
		}
	}
	st, err := n.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if want := uint64(rounds * len(fps)); st.CacheHits != want {
		t.Fatalf("CacheHits = %d want %d", st.CacheHits, want)
	}
	sum := st.CacheHits + st.BloomShort + st.StoreHits + st.StoreMisses
	if sum != st.Lookups {
		t.Fatalf("sources sum %d != Lookups %d", sum, st.Lookups)
	}
}

// TestHotPathBatchPrepass: a fully cache-resident batch resolves through
// the lock-free prepass with every result a cache hit.
func TestHotPathBatchPrepass(t *testing.T) {
	n := newHotPathNode(t, NodeConfig{CacheSize: 4096, Stripes: 4})
	ctx := context.Background()
	pairs := make([]Pair, 128)
	for i := range pairs {
		pairs[i] = Pair{FP: fingerprint.FromUint64(uint64(i)), Val: Value(i + 1)}
	}
	if _, err := n.BatchLookupOrInsert(ctx, pairs); err != nil {
		t.Fatalf("seed batch: %v", err)
	}
	fps := make([]fingerprint.Fingerprint, len(pairs))
	for i := range pairs {
		fps[i] = pairs[i].FP
	}
	rs, err := n.LookupBatch(ctx, fps)
	if err != nil {
		t.Fatalf("LookupBatch: %v", err)
	}
	for i, r := range rs {
		if !r.Exists || r.Value != Value(i+1) || r.Source != SourceCache {
			t.Fatalf("result %d = %+v; want cache hit value %d", i, r, i+1)
		}
	}
	// Mixed batch: half cached, half new — the prepass resolves the cached
	// half, the pipeline the rest, in one call.
	mixed := make([]Pair, 0, len(pairs)*2)
	for i := range pairs {
		mixed = append(mixed, pairs[i], Pair{FP: fingerprint.FromUint64(uint64(1000 + i)), Val: Value(i)})
	}
	mrs, err := n.BatchLookupOrInsert(ctx, mixed)
	if err != nil {
		t.Fatalf("mixed batch: %v", err)
	}
	for i, r := range mrs {
		wantExists := i%2 == 0
		if r.Exists != wantExists {
			t.Fatalf("mixed result %d = %+v; want Exists=%v", i, r, wantExists)
		}
	}
}

// TestHotPathLockedReadsAblation: with the ablation knob the fast path is
// off but answers are identical.
func TestHotPathLockedReadsAblation(t *testing.T) {
	n := newHotPathNode(t, NodeConfig{CacheSize: 4096, Stripes: 4, LockedReads: true})
	ctx := context.Background()
	fp := fingerprint.FromUint64(7)
	if _, err := n.LookupOrInsert(ctx, fp, 9); err != nil {
		t.Fatal(err)
	}
	res, err := n.Lookup(ctx, fp)
	if err != nil || !res.Exists || res.Value != 9 || res.Source != SourceCache {
		t.Fatalf("locked-reads lookup = %+v, %v; want cache hit 9", res, err)
	}
	st, _ := n.Stats(ctx)
	if st.CacheHits != 1 || st.Lookups != 2 {
		t.Fatalf("stats = hits %d lookups %d; want 1, 2", st.CacheHits, st.Lookups)
	}
}

// TestHotPathClosedNode: the fast path must not answer from the cache of a
// closed node.
func TestHotPathClosedNode(t *testing.T) {
	n := newHotPathNode(t, NodeConfig{CacheSize: 4096})
	ctx := context.Background()
	fp := fingerprint.FromUint64(3)
	if _, err := n.LookupOrInsert(ctx, fp, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Lookup(ctx, fp); err == nil {
		t.Fatal("Lookup on closed node succeeded via fast path")
	}
}

// TestHotPathConcurrentReadWrite hammers lock-free readers against
// concurrent inserts and removals through the full node API; under -race
// this exercises the publication protocol end to end.
func TestHotPathConcurrentReadWrite(t *testing.T) {
	n := newHotPathNode(t, NodeConfig{CacheSize: 8192, Stripes: 4})
	ctx := context.Background()
	const keys = 512
	for i := 0; i < keys; i++ {
		if _, err := n.LookupOrInsert(ctx, fingerprint.FromUint64(uint64(i)), Value(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				fp := fingerprint.FromUint64(uint64(i % keys))
				res, err := n.Lookup(ctx, fp)
				if err != nil {
					t.Errorf("lookup: %v", err)
					return
				}
				if res.Exists && res.Value != Value(i%keys+1) {
					t.Errorf("lookup %d = %+v", i%keys, res)
					return
				}
			}
		}()
	}
	for i := 0; i < 20_000; i++ {
		k := uint64(i % keys)
		fp := fingerprint.FromUint64(k)
		if i%5 == 4 {
			if _, err := n.Remove(fp); err != nil {
				t.Fatalf("remove: %v", err)
			}
		}
		if _, err := n.LookupOrInsert(ctx, fp, Value(k+1)); err != nil {
			t.Fatalf("reinsert: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestAllocCacheHitLookup pins the cache-hit Node.Lookup path at zero
// allocations per operation.
func TestAllocCacheHitLookup(t *testing.T) {
	n := newHotPathNode(t, NodeConfig{CacheSize: 4096})
	ctx := context.Background()
	fp := fingerprint.FromUint64(42)
	if _, err := n.LookupOrInsert(ctx, fp, 7); err != nil {
		t.Fatal(err)
	}
	if res, err := n.Lookup(ctx, fp); err != nil || res.Source != SourceCache {
		t.Fatalf("warmup lookup = %+v, %v; want cache hit", res, err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		res, err := n.Lookup(ctx, fp)
		if err != nil || !res.Exists {
			t.Fatal("lookup failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("cache-hit Lookup allocates %v/op; want 0", allocs)
	}
}
