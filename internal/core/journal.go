package core

// This file implements the destage journal: the write-ahead log that makes
// the asynchronous destage pipeline crash-consistent.
//
// Since destage became asynchronous, an acknowledged insert can live in
// three places: dirty in the cache, parked in the destage dirty buffer, or
// durable in the store. The first is the write-back bargain the caller
// opted into; the second used to be a silent durability hole — the cache
// had already forgotten the entry, the store had not yet seen it, and a
// crash lost it. The journal closes that hole:
//
//   - every entry entering the dirty buffer (eviction or coalescing
//     overwrite) is appended to the journal *under its index-shard lock*,
//     so per-fingerprint record order matches buffer order, and the
//     eviction does not acknowledge until its record is fsynced;
//   - fsyncs are group-committed: a dedicated syncer goroutine batches
//     every record appended while the previous fsync was in flight into
//     one write+fsync, the same wave-accumulation idea the destager's
//     group-commit clock uses, so concurrent evictors share one fsync
//     instead of paying one each;
//   - Remove appends a tombstone (after the store delete, before the
//     remove acknowledges), so replay cannot resurrect a migrated entry;
//   - after a destage wave leaves the buffer empty, the store is fsynced
//     and the journal truncated — every record it held described an entry
//     the sync just made durable (the truncate re-checks, under the
//     journal lock, that nothing was appended since, so a record for a
//     not-yet-synced entry can never be dropped);
//   - NewNode replays the journal into the store before anything else
//     (dropping a torn tail record, tolerating records the store already
//     has — replay is idempotent), so a crash anywhere between eviction
//     and destage loses nothing.
//
// File format: an 8-byte header ("SHJL" + version), then fixed-size
// records: crc32(4) kind(1) fingerprint(20) value(8). The CRC covers
// everything after itself; replay stops at the first record that fails it
// (a torn append) and truncates the tail.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
)

const (
	journalMagic   = "SHJL"
	journalVersion = 1
	journalHdrSize = 8

	// journal record: crc32(4) kind(1) fp(20) val(8).
	journalRecSize = 4 + 1 + fingerprint.Size + 8

	journalPut    = byte(1)
	journalDelete = byte(2)
)

// jrec is one decoded journal record.
type jrec struct {
	kind byte
	fp   fingerprint.Fingerprint
	val  Value
}

// journal is the destage write-ahead log plus its group-commit syncer.
type journal struct {
	path string
	f    *os.File

	mu   sync.Mutex
	cond sync.Cond // broadcast when durable advances, err is set, or buf fills

	// buf holds encoded records not yet handed to the syncer's write.
	buf []byte
	// appended and durable are record LSNs: appended counts records ever
	// accepted, durable counts records whose fsync completed (or whose
	// truncation proved them redundant).
	appended uint64
	durable  uint64
	// off is the file offset the next write lands at.
	off int64
	// syncing marks a write+fsync in flight outside the lock; truncate
	// waits it out so the two never race on off.
	syncing bool
	err     error
	closed  bool
	done    chan struct{}
}

// openJournal opens (or creates) the journal at path, returning the valid
// records already in it and the number of torn tail bytes dropped. A file
// that does not start with the journal header is treated as fully torn and
// reinitialized.
func openJournal(path string) (*journal, []jrec, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("core: journal %s: %w", path, err)
	}
	j := &journal{path: path, f: f, done: make(chan struct{})}
	j.cond.L = &j.mu

	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("core: journal %s: %w", path, err)
	}
	size := fi.Size()

	var recs []jrec
	var torn int64
	if size == 0 {
		var hdr [journalHdrSize]byte
		copy(hdr[0:4], journalMagic)
		binary.BigEndian.PutUint32(hdr[4:8], journalVersion)
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("core: journal %s: write header: %w", path, err)
		}
		j.off = journalHdrSize
	} else {
		var hdr [journalHdrSize]byte
		if _, err := f.ReadAt(hdr[:], 0); err != nil && !errors.Is(err, io.EOF) {
			f.Close()
			return nil, nil, 0, fmt.Errorf("core: journal %s: read header: %w", path, err)
		}
		if string(hdr[0:4]) != journalMagic || binary.BigEndian.Uint32(hdr[4:8]) != journalVersion {
			// Torn during its own creation (or not a journal): nothing in
			// it can be trusted; start over.
			torn = size
			recs = nil
			copy(hdr[0:4], journalMagic)
			binary.BigEndian.PutUint32(hdr[4:8], journalVersion)
			if err := f.Truncate(0); err == nil {
				_, err = f.WriteAt(hdr[:], 0)
			}
			if err != nil {
				f.Close()
				return nil, nil, 0, fmt.Errorf("core: journal %s: reinit: %w", path, err)
			}
			j.off = journalHdrSize
		} else {
			recs, j.off, torn, err = readJournalRecords(f, size)
			if err != nil {
				f.Close()
				return nil, nil, 0, fmt.Errorf("core: journal %s: %w", path, err)
			}
			if torn > 0 {
				// Drop the torn tail so later appends start on a clean
				// record boundary.
				if err := f.Truncate(j.off); err != nil {
					f.Close()
					return nil, nil, 0, fmt.Errorf("core: journal %s: truncate torn tail: %w", path, err)
				}
			}
		}
	}
	go j.loop()
	return j, recs, torn, nil
}

// readJournalRecords parses records until EOF or the first record that is
// short or fails its CRC (a torn append), returning the valid records, the
// offset of the first invalid byte, and how many tail bytes are torn.
func readJournalRecords(f *os.File, size int64) ([]jrec, int64, int64, error) {
	body := make([]byte, size-journalHdrSize)
	if _, err := f.ReadAt(body, journalHdrSize); err != nil && !errors.Is(err, io.EOF) {
		return nil, 0, 0, fmt.Errorf("read records: %w", err)
	}
	var recs []jrec
	off := 0
	for off+journalRecSize <= len(body) {
		rec := body[off : off+journalRecSize]
		if crc32.ChecksumIEEE(rec[4:]) != binary.BigEndian.Uint32(rec[0:4]) {
			break
		}
		r := jrec{kind: rec[4]}
		copy(r.fp[:], rec[5:5+fingerprint.Size])
		r.val = Value(binary.BigEndian.Uint64(rec[5+fingerprint.Size:]))
		if r.kind != journalPut && r.kind != journalDelete {
			break
		}
		recs = append(recs, r)
		off += journalRecSize
	}
	valid := int64(journalHdrSize + off)
	return recs, valid, size - valid, nil
}

// append encodes one record into the commit buffer and returns its LSN to
// pass to wait. It never blocks on I/O. Callers that need per-fingerprint
// record order must serialize appends for that fingerprint externally (the
// destager appends under the fingerprint's index-shard lock). A dead
// journal absorbs appends and returns 0 (wait(0) reports the error).
func (j *journal) append(kind byte, fp fingerprint.Fingerprint, val Value) uint64 {
	var rec [journalRecSize]byte
	rec[4] = kind
	copy(rec[5:], fp[:])
	binary.BigEndian.PutUint64(rec[5+fingerprint.Size:], uint64(val))
	binary.BigEndian.PutUint32(rec[0:4], crc32.ChecksumIEEE(rec[4:]))

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil || j.closed {
		return 0
	}
	j.buf = append(j.buf, rec[:]...)
	j.appended++
	lsn := j.appended
	j.cond.Broadcast() // wake the syncer
	return lsn
}

// wait blocks until the record at lsn is durable (fsynced, or proven
// redundant by a truncation), returning the journal's terminal error if it
// died first.
func (j *journal) wait(lsn uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.durable < lsn && j.err == nil && !j.closed {
		j.cond.Wait()
	}
	if j.err != nil {
		return j.err
	}
	if j.durable < lsn {
		return errors.New("core: journal closed before record became durable")
	}
	return nil
}

// appendedLSN returns the LSN of the newest accepted record.
func (j *journal) appendedLSN() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// size reports the journal's logical size in bytes (file + commit buffer).
func (j *journal) size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.off + int64(len(j.buf)) - journalHdrSize
}

// truncateIf empties the journal if pred still holds under the journal
// lock (with no write+fsync in flight). Callers prove, via pred, that
// every record currently in the journal describes state the store has
// already made durable; the pending commit buffer is dropped and its
// waiters released, since a truncation makes their records redundant.
func (j *journal) truncateIf(pred func() bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.syncing {
		j.cond.Wait()
	}
	if j.err != nil || j.closed {
		return j.err
	}
	if pred != nil && !pred() {
		return nil
	}
	if j.off == journalHdrSize && len(j.buf) == 0 {
		return nil
	}
	if err := j.f.Truncate(journalHdrSize); err != nil {
		j.fail(fmt.Errorf("core: journal %s: truncate: %w", j.path, err))
		return j.err
	}
	if err := j.f.Sync(); err != nil {
		j.fail(fmt.Errorf("core: journal %s: sync truncate: %w", j.path, err))
		return j.err
	}
	j.off = journalHdrSize
	j.buf = j.buf[:0]
	j.durable = j.appended
	j.cond.Broadcast()
	return nil
}

// fail records the journal's terminal error and releases every waiter.
// Caller holds j.mu.
func (j *journal) fail(err error) {
	if j.err == nil {
		j.err = err
	}
	j.cond.Broadcast()
}

// loop is the group-commit syncer: it writes and fsyncs whatever
// accumulated in the commit buffer while the previous fsync was in flight,
// then publishes the new durable LSN. One fsync covers every record that
// joined the batch.
func (j *journal) loop() {
	defer close(j.done)
	j.mu.Lock()
	for {
		for len(j.buf) == 0 && !j.closed && j.err == nil {
			j.cond.Wait()
		}
		if j.err != nil || (j.closed && len(j.buf) == 0) {
			j.mu.Unlock()
			return
		}
		batch := j.buf
		j.buf = nil
		target := j.appended
		off := j.off
		j.off += int64(len(batch))
		j.syncing = true
		j.mu.Unlock()

		_, werr := j.f.WriteAt(batch, off)
		if werr == nil {
			werr = j.f.Sync()
		}

		j.mu.Lock()
		j.syncing = false
		if werr != nil {
			j.fail(fmt.Errorf("core: journal %s: commit: %w", j.path, werr))
			j.mu.Unlock()
			return
		}
		if target > j.durable {
			j.durable = target
		}
		j.cond.Broadcast()
	}
}

// close flushes any buffered records, stops the syncer, and closes the
// file.
func (j *journal) close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	j.cond.Broadcast()
	j.mu.Unlock()
	<-j.done
	err := j.err
	if cerr := j.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("core: journal %s: close: %w", j.path, cerr)
	}
	return err
}

// RecoveryStats describes what a node repaired when it opened: destage
// journal replay plus the store's own open-time recovery (see
// hashdb.RecoveryStats). All zero for a node that opened cleanly or runs
// without a journal.
type RecoveryStats struct {
	// JournalReplayed counts journal records replayed into the store at
	// open (entries the previous process evicted but never destaged).
	JournalReplayed uint64
	// JournalTornBytes counts bytes dropped from a torn journal tail.
	JournalTornBytes uint64
	// Store summarizes the hash table's own recovery pass (zero for
	// stores without one, e.g. the in-RAM store).
	Store hashdb.RecoveryStats
}

// journalLSN snapshots the journal's append cursor (0 without a journal).
// Pair with journalBarrierFrom around a write-back cache insert: any
// eviction the insert triggers appends its record between the two.
func (n *Node) journalLSN() uint64 {
	if n.jnl == nil {
		return 0
	}
	return n.jnl.appendedLSN()
}

// journalBarrierFrom blocks until every journal record appended since the
// paired journalLSN snapshot is durable, and is a no-op when nothing was
// appended anywhere in the window (the common non-evicting insert). It
// runs with no cache-stripe lock held — that is the point: evictions from
// every cache stripe append without waiting, concurrent barriers share
// one group-commit fsync, and only the operations that actually evicted
// pay for it. A dead journal's error is parked for the usual delivery
// path.
func (n *Node) journalBarrierFrom(before uint64) {
	if n.jnl == nil {
		return
	}
	after := n.jnl.appendedLSN()
	if after == before {
		return
	}
	if err := n.jnl.wait(after); err != nil {
		n.recordDestageErr(fmt.Errorf("core: node %s: destage journal: %w", n.id, err))
	}
}

// storeRecoveryReporter is the optional store surface that exposes an
// open-time recovery summary (*hashdb.DB implements it).
type storeRecoveryReporter interface {
	Recovery() hashdb.RecoveryStats
}

// replayJournal applies the journal's records to the store. Records fold
// to one final state per fingerprint first — the last record wins, exactly
// as buffer coalescing ordered the live run — then the surviving puts go
// through one page-coalesced PutBatch (when the store has one) and the
// surviving tombstones through Delete. Replay is idempotent: re-putting an
// entry the store already holds is an update to the same value.
func (n *Node) replayJournal(recs []jrec) error {
	type final struct {
		deleted bool
		val     Value
	}
	last := make(map[fingerprint.Fingerprint]*final, len(recs))
	order := make([]fingerprint.Fingerprint, 0, len(recs))
	for _, r := range recs {
		f, ok := last[r.fp]
		if !ok {
			f = &final{}
			last[r.fp] = f
			order = append(order, r.fp)
		}
		f.deleted = r.kind == journalDelete
		f.val = r.val
	}
	var puts []hashdb.Pair
	var dels []fingerprint.Fingerprint
	for _, fp := range order {
		if f := last[fp]; f.deleted {
			dels = append(dels, fp)
		} else {
			puts = append(puts, hashdb.Pair{FP: fp, Val: f.val})
		}
	}

	if len(puts) > 0 {
		if bp, ok := n.store.(hashdb.BatchPutter); ok {
			if _, _, err := bp.PutBatch(context.Background(), puts); err != nil {
				return fmt.Errorf("core: node %s: journal replay: %w", n.id, err)
			}
		} else {
			for _, p := range puts {
				if _, err := n.store.Put(p.FP, p.Val); err != nil {
					return fmt.Errorf("core: node %s: journal replay %s: %w", n.id, p.FP.Short(), err)
				}
			}
		}
	}
	for _, fp := range dels {
		d, ok := n.store.(Deleter)
		if !ok {
			return fmt.Errorf("core: node %s: journal replay: store cannot delete", n.id)
		}
		if _, err := d.Delete(fp); err != nil {
			return fmt.Errorf("core: node %s: journal replay delete %s: %w", n.id, fp.Short(), err)
		}
	}
	return nil
}
