package core

import (
	"context"
	"fmt"
	"testing"

	"shhc/internal/hashdb"
)

func TestJoinNodeBasic(t *testing.T) {
	nodes := make([]*Node, 2)
	backends := make([]Backend, 2)
	for i := range nodes {
		nodes[i] = newNamedNode(t, fmt.Sprintf("node-%d", i))
		backends[i] = nodes[i]
	}
	c, err := NewCluster(ClusterConfig{}, backends...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()

	const n = 2000
	for i := uint64(0); i < n; i++ {
		c.LookupOrInsert(context.Background(), fp(i), Value(i))
	}

	joiner := newNamedNode(t, "node-join")
	stats, err := c.JoinNode(context.Background(), joiner)
	if err != nil {
		t.Fatalf("JoinNode: %v", err)
	}
	if c.Size() != 3 {
		t.Fatalf("Size = %d, want 3", c.Size())
	}
	if stats.Moved == 0 {
		t.Fatal("JoinNode moved nothing")
	}
	// The joiner owns and holds its share.
	jst, _ := joiner.Stats(context.Background())
	if jst.StoreEntries == 0 {
		t.Fatal("joiner holds no entries")
	}
	// Relocated entries were cleaned off old owners: total entries == n.
	all, _ := c.Stats(context.Background())
	total := 0
	for _, st := range all {
		total += st.StoreEntries
	}
	if total != n {
		t.Fatalf("total entries after join = %d, want %d (no duplicates left behind)", total, n)
	}
	// Dedup intact.
	for i := uint64(0); i < n; i++ {
		r, err := c.LookupOrInsert(context.Background(), fp(i), 999)
		if err != nil || !r.Exists {
			t.Fatalf("fingerprint %d lost by join (%v)", i, err)
		}
	}
}

func TestJoinNodeDuplicateRejected(t *testing.T) {
	c := newTestCluster(t, 2, ClusterConfig{})
	dup, err := NewNode(NodeConfig{ID: "node-0", Store: hashdb.NewMemStore(nil), CacheSize: 8})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer dup.Close()
	if _, err := c.JoinNode(context.Background(), dup); err == nil {
		t.Fatal("JoinNode accepted duplicate ID")
	}
}

func TestJoinNodePreservesValues(t *testing.T) {
	nodes := make([]*Node, 2)
	backends := make([]Backend, 2)
	for i := range nodes {
		nodes[i] = newNamedNode(t, fmt.Sprintf("node-%d", i))
		backends[i] = nodes[i]
	}
	c, err := NewCluster(ClusterConfig{}, backends...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	for i := uint64(0); i < 500; i++ {
		c.LookupOrInsert(context.Background(), fp(i), Value(i*3))
	}
	joiner := newNamedNode(t, "node-join")
	if _, err := c.JoinNode(context.Background(), joiner); err != nil {
		t.Fatalf("JoinNode: %v", err)
	}
	for i := uint64(0); i < 500; i++ {
		r, err := c.Lookup(context.Background(), fp(i))
		if err != nil || !r.Exists {
			t.Fatalf("fingerprint %d missing (%v)", i, err)
		}
		if r.Value != Value(i*3) {
			t.Fatalf("fingerprint %d value = %d after join, want %d", i, r.Value, i*3)
		}
	}
}
