// Package core implements SHHC itself: the hybrid (RAM+SSD) hash node and
// the cluster that distributes the fingerprint index across nodes.
//
// A Node realizes the paper's Figure 4 lookup flow:
//
//  1. Try the in-RAM LRU cache; a hit answers immediately and promotes the
//     entry to most-recently-used.
//  2. On a read miss, consult the in-RAM Bloom filter; a negative answer
//     proves the fingerprint is new, so the node inserts it (SSD hash
//     table) without any SSD read.
//  3. Otherwise probe the SSD hash table. Present: load the entry into the
//     LRU and answer "duplicate". Absent: insert the new entry and answer
//     "new — send the data".
//
// A Cluster (cluster.go) routes fingerprints to nodes with consistent
// hashing and fans batches out in parallel.
//
//shhc:ctxapi
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"shhc/internal/bloom"
	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/lru"
	"shhc/internal/metrics"
	"shhc/internal/pow2"
	"shhc/internal/ring"
)

// errNodeClosed is returned by every operation on a closed node.
var errNodeClosed = errors.New("core: node is closed")

// Value is the chunk locator stored per fingerprint.
type Value = hashdb.Value

// Source identifies which tier of the hybrid node answered a lookup.
type Source int

const (
	// SourceCache means the RAM LRU answered (fast path).
	SourceCache Source = iota + 1
	// SourceBloom means the Bloom filter proved the fingerprint new
	// without touching the SSD.
	SourceBloom
	// SourceStore means the SSD hash table answered.
	SourceStore
	// SourceNew means the fingerprint was not found anywhere and a new
	// entry was created.
	SourceNew
)

func (s Source) String() string {
	switch s {
	case SourceCache:
		return "cache"
	case SourceBloom:
		return "bloom"
	case SourceStore:
		return "store"
	case SourceNew:
		return "new"
	}
	return fmt.Sprintf("source(%d)", int(s))
}

// LookupResult is a node's answer to one fingerprint query.
type LookupResult struct {
	// Exists reports whether the chunk is already stored in the cloud;
	// the client must upload the chunk when Exists is false.
	Exists bool
	// Value is the stored locator when Exists is true.
	Value Value
	// Source is the tier that produced the answer.
	Source Source
}

// Pair couples a fingerprint with the locator to assign if it is new.
type Pair struct {
	FP  fingerprint.Fingerprint
	Val Value
}

// NodeConfig configures a hybrid hash node.
type NodeConfig struct {
	// ID names the node in the ring.
	ID ring.NodeID
	// Store is the persistent hash table (SSD in the paper). Required;
	// must be safe for concurrent use (both hashdb stores are).
	Store hashdb.Store
	// CacheSize is the LRU capacity in entries; 0 disables the cache.
	CacheSize int
	// DisableBloom turns the Bloom filter off (ablation).
	DisableBloom bool
	// BloomExpected sizes the filter; default 1<<20 entries.
	BloomExpected int
	// BloomFPRate is the filter's target false-positive rate; default 1%.
	BloomFPRate float64
	// WriteBack delays SSD inserts until cache eviction (destage),
	// trading durability for insert latency — the paper's Figure 4
	// "LRU full? → Destage" arm and dedupv1's delayed-write idea.
	// Evicted dirty entries are parked in a bounded dirty buffer and
	// destaged asynchronously in page-coalesced group-commit waves (see
	// destage.go); no device I/O ever runs under a cache-stripe lock.
	WriteBack bool
	// DestageBatch is the largest group-commit wave (entries) the
	// write-back destager writes at once. 0 selects the default (256).
	DestageBatch int
	// DestageInterval bounds how long an evicted dirty entry waits in the
	// destage buffer before a wave is forced even if DestageBatch entries
	// have not accumulated. 0 selects the default (2ms).
	DestageInterval time.Duration
	// DestageQueue bounds the dirty destage buffer (entries); evictions
	// into a full buffer block until the destager frees space
	// (backpressure). 0 selects the default (4 × DestageBatch).
	DestageQueue int
	// JournalPath enables the durable destage journal (WriteBack only):
	// every entry entering the dirty buffer is appended here and
	// group-commit fsynced before the eviction acknowledges, the journal
	// is truncated once a destage wave leaves the buffer empty (after an
	// fsync of the store), and NewNode replays it into the store — so a
	// crash between eviction and destage loses nothing. Empty disables
	// the journal (the pre-journal write-back behavior: entries in the
	// dirty buffer survive only until a crash).
	JournalPath string
	// Stripes is the number of hot-path lock stripes (rounded down to a
	// power of two). Operations on fingerprints in different stripes run
	// concurrently; operations on one fingerprint always serialize, which
	// is what keeps the Figure 4 cache→bloom→SSD ordering exact per
	// fingerprint. 0 selects a GOMAXPROCS-based default; 1 recovers the
	// original fully-serialized node.
	Stripes int
	// LockedIO holds the stripe lock across SSD probes and inserts (the
	// pre-pipeline behavior): one Bloom false positive or genuine
	// duplicate then stalls every other fingerprint on its stripe for a
	// full device round-trip. Kept as the ablation baseline for the
	// asynchronous two-phase pipeline, which is the default.
	LockedIO bool
	// LockedReads disables the lock-free cache-hit fast path, forcing
	// every lookup to take its stripe mutex even when the answer is a RAM
	// cache hit (the pre-zero-alloc behavior). Kept as the ablation
	// baseline for the lock-free read protocol, which is the default.
	// LockedIO implies LockedReads.
	LockedReads bool
}

// PhaseTimings are per-tier latency digests of the lookup pipeline: how
// long the RAM LRU probes, Bloom filter probes, and SSD phases took. The
// SSD phase is one probe plus the insert its miss called for (for batches:
// one coalesced read/write wave), timed outside the stripe lock.
type PhaseTimings struct {
	Cache metrics.Summary
	Bloom metrics.Summary
	SSD   metrics.Summary
}

// newPhaseHistogram sizes one per-stripe phase histogram. Cache and Bloom
// probes resolve in tens of nanoseconds, SSD phases in tens of
// microseconds to milliseconds; a 100ns base with 40 doubling buckets
// digests both ends.
func newPhaseHistogram() *metrics.Histogram {
	return metrics.NewHistogram(100*time.Nanosecond, 40)
}

// DestageStats snapshots the write-back destage pipeline (all zero unless
// the node runs WriteBack).
type DestageStats struct {
	// QueueDepth is the number of evicted dirty entries currently waiting
	// in the destage buffer.
	QueueDepth uint64
	// Entries counts entries durably destaged by group-commit waves;
	// Pages counts the device page writes those waves cost. Their ratio
	// is the write-coalescing factor (>1 means batching paid off).
	Entries uint64
	Pages   uint64
	// Waves counts group-commit waves issued.
	Waves uint64
	// Coalesced counts enqueues absorbed by overwriting an entry already
	// pending in the buffer (duplicate-update coalescing).
	Coalesced uint64
	// BufferHits counts lookups answered from the dirty buffer — entries
	// evicted from the cache but not yet on the SSD (they also count
	// under StoreHits, since the buffer is logically the store's write
	// staging area).
	BufferHits uint64
	// WaveSizes digests entries-per-wave; the Summary's durations carry
	// plain counts (1ns == one entry).
	WaveSizes metrics.Summary
}

// ReplicaStats counts the replication repair/backfill traffic a node
// absorbed as a replica target: ApplyRepair batches from quorum fan-out,
// read-repair, and anti-entropy sweeps. RepairCreated is the number of
// entries that were actually missing (the rest were already present and
// kept their stored value).
type ReplicaStats struct {
	RepairBatches uint64
	RepairPairs   uint64
	RepairCreated uint64
}

// TransportStats snapshots a node's RPC transport: the stream-multiplexed
// connections (protocol >= 5) serving it. An in-process node has none;
// the RPC server overlays these onto the stats it returns, and clients
// carry them back through the wire stats payload.
type TransportStats struct {
	// StreamsOpen is the number of logical streams currently holding
	// queued frames or charged credit across all live connections.
	StreamsOpen uint64
	// CreditStalls counts the times a stream's send window hit empty with
	// frames still queued — a consumer falling behind its own traffic.
	CreditStalls uint64
	// BytesInFlight is the payload bytes queued in mux writers but not
	// yet flushed to a socket.
	BytesInFlight uint64
	// WindowUpdates counts WINDOW_UPDATE credit grants sent to peers.
	WindowUpdates uint64
	// RedirectsIssued counts NOT_OWNER answers sent to clients whose ring
	// view routed a key to the wrong node.
	RedirectsIssued uint64
}

// NodeStats snapshots a node's counters.
type NodeStats struct {
	ID          ring.NodeID
	Lookups     uint64
	Inserts     uint64
	CacheHits   uint64
	BloomShort  uint64 // lookups short-circuited by a Bloom negative
	StoreHits   uint64
	StoreMisses uint64
	BloomFalse  uint64 // Bloom said maybe, store said no
	// Coalesced counts lookups answered by joining another lookup's
	// in-flight SSD phase instead of issuing their own probe (they still
	// count once under StoreHits or StoreMisses).
	Coalesced    uint64
	StoreEntries int
	Cache        lru.Stats
	// Phases digests per-tier latency (see PhaseTimings).
	Phases PhaseTimings
	// Destage snapshots the write-back group-commit pipeline.
	Destage DestageStats
	// Recovery is what the node repaired when it opened: destage-journal
	// replay plus the store's own recovery pass (all zero after a clean
	// open).
	Recovery RecoveryStats
	// Replica counts repair/backfill traffic applied to this node as a
	// replication target (see ReplicaStats).
	Replica ReplicaStats
	// Transport snapshots the RPC mux layer serving this node (zero for
	// in-process nodes; see TransportStats).
	Transport TransportStats
	// Bloom snapshots the in-RAM filter's shape and accuracy (zero when
	// the filter is disabled; see BloomStats).
	Bloom BloomStats
}

// BloomStats snapshots the node's scalable Bloom filter: how big it has
// grown and how accurate it still is. Before the filter could grow, the
// only symptom of outrunning its sizing was BloomFalse creeping up;
// EstimatedFPRate and Saturated make that capacity story observable
// directly.
type BloomStats struct {
	// Entries is the number of fingerprints added across all slices.
	Entries uint64
	// SizeBytes is the total RAM the slices' bit arrays occupy.
	SizeBytes uint64
	// Slices is the number of chained filters (1 until the filter first
	// outgrows its construction sizing).
	Slices uint32
	// FillRatio is the newest slice's adds / capacity; 1.0 means the
	// next add chains a new slice.
	FillRatio float64
	// EstimatedFPRate is the compounded false-positive probability at
	// the current fill, bounded by the construction rate no matter how
	// far the filter has grown.
	EstimatedFPRate float64
	// Saturated reports the filter outgrew its construction sizing and
	// chained at least one extra slice — an advisory capacity signal
	// (accuracy is preserved through growth).
	Saturated bool
}

// minCachePerStripe is the smallest LRU capacity worth splitting into an
// extra stripe. Below it the cache stays a single exact-LRU stripe, which
// keeps eviction order deterministic for the small caches tests use.
const minCachePerStripe = 1024

// defaultStripeCount sizes the stripe space to comfortably exceed the
// number of threads that can contend, so two concurrent lookups rarely
// share a lock.
func defaultStripeCount() int {
	n := 4 * runtime.GOMAXPROCS(0)
	// Round up to a power of two, clamped to [1, 256].
	p := 1
	for p < n && p < 256 {
		p <<= 1
	}
	return p
}

// nodeStripe is one slice of a node's fingerprint space: a lock plus the
// counters it guards. A fingerprint always maps to the same stripe, so the
// whole Figure 4 flow for one fingerprint runs under one lock while flows
// for other fingerprints proceed in parallel.
type nodeStripe struct {
	// mu serializes the stripe's RAM walk. The SSD phase runs outside it
	// (pipeline.go); only the LockedIO ablation deliberately violates
	// that, with inline suppressions where it does.
	mu sync.Mutex //shhc:lock ramonly

	// inflight holds the stripe's fingerprints whose SSD phase is running
	// outside the lock (see pipeline.go). Guarded by mu.
	inflight map[fingerprint.Fingerprint]*flight

	// Per-stripe phase histograms, like the counters: observations touch
	// only stripe-local memory (no cross-core contention on the hot
	// path); Stats() merges them into one digest.
	histCache *metrics.Histogram
	histBloom *metrics.Histogram
	histSSD   *metrics.Histogram

	lookups     uint64
	inserts     uint64
	cacheHits   uint64
	bloomShort  uint64
	storeHits   uint64
	storeMiss   uint64
	bloomFalse  uint64
	coalesced   uint64
	destageHits uint64 // lookups answered from the destage dirty buffer

	// fastHits counts cache hits answered by the lock-free fast path,
	// which by construction cannot take mu; Stats folds it into both
	// CacheHits and Lookups, preserving the sources-sum-to-Lookups
	// invariant. Atomic, padded apart from mu by the fields above.
	fastHits atomic.Uint64
}

// Node is a hybrid RAM+SSD hash node. All methods are safe for concurrent
// use. The fingerprint space is split over power-of-two lock stripes:
// per-fingerprint operations serialize (preserving the paper's Figure 4
// tier ordering exactly as a single-lock node would), while lookups of
// different fingerprints scale with cores.
type Node struct {
	id          ring.NodeID
	store       hashdb.Store
	cache       *lru.Striped // nil when disabled
	bloom       *bloom.Scalable
	wb          bool
	lockedIO    bool
	lockedReads bool
	stripes     []nodeStripe
	mask        uint64

	// dst is the asynchronous destage pipeline (write-back nodes only):
	// evictions enqueue dirty entries here and a dedicated goroutine
	// group-commits them to the store. See destage.go.
	dst *destager

	// jnl is the durable destage journal (nil unless JournalPath is set);
	// recovery summarizes what open-time replay and the store's own
	// recovery pass repaired (immutable after NewNode). See journal.go.
	jnl      *journal
	recovery RecoveryStats

	// flights tracks SSD phases running outside the stripe locks; Close
	// waits for them before flushing and closing the store.
	flights sync.WaitGroup

	// Replication repair accounting (see ApplyRepair). Atomics, not
	// stripe counters: repair batches are cold-path and cross-stripe.
	replRepairBatches atomic.Uint64
	replRepairPairs   atomic.Uint64
	replRepairCreated atomic.Uint64

	// destageMu guards destageErr, the first write-back destage failure,
	// surfaced on the next insert or on Close.
	destageMu  sync.Mutex
	destageErr error

	// closed is written with every stripe locked and read under any
	// single stripe lock. closedFast mirrors it for the lock-free read
	// path, which holds no lock to read closed under.
	closed     bool
	closedFast atomic.Bool
}

// Ranger is implemented by stores that can enumerate their entries;
// NewNode uses it to rebuild the Bloom filter when a node restarts on an
// existing hash table. Both *hashdb.DB and *hashdb.MemStore implement it.
type Ranger interface {
	Range(fn func(fp fingerprint.Fingerprint, v hashdb.Value) bool) error //shhc:io
}

// NewNode creates a hybrid hash node. If the store already holds entries
// (a node restarting on its persistent hash table), the Bloom filter is
// rebuilt from the store so duplicate detection survives restarts.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Store == nil {
		return nil, errors.New("core: NodeConfig.Store is required")
	}
	if cfg.ID == "" {
		return nil, errors.New("core: NodeConfig.ID is required")
	}
	nstripes := cfg.Stripes
	if nstripes <= 0 {
		nstripes = defaultStripeCount()
	}
	nstripes = pow2.Floor(nstripes)
	n := &Node{
		id:          cfg.ID,
		store:       cfg.Store,
		wb:          cfg.WriteBack,
		lockedIO:    cfg.LockedIO,
		lockedReads: cfg.LockedReads || cfg.LockedIO,
		stripes:     make([]nodeStripe, nstripes),
		mask:        uint64(nstripes - 1),
	}
	for i := range n.stripes {
		n.stripes[i].inflight = make(map[fingerprint.Fingerprint]*flight)
		n.stripes[i].histCache = newPhaseHistogram()
		n.stripes[i].histBloom = newPhaseHistogram()
		n.stripes[i].histSSD = newPhaseHistogram()
	}
	// fail closes whatever NewNode opened before an error unwinds it.
	fail := func(err error) (*Node, error) {
		if n.jnl != nil {
			n.jnl.close()
		}
		return nil, err
	}
	// The destage journal opens — and replays — before the Bloom filter is
	// built, so entries a crashed process evicted but never destaged are
	// back in the store when the filter rebuild enumerates it.
	if cfg.JournalPath != "" {
		if !cfg.WriteBack {
			return nil, errors.New("core: JournalPath requires WriteBack")
		}
		j, recs, torn, err := openJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		n.jnl = j
		n.recovery.JournalTornBytes = uint64(torn)
		if len(recs) > 0 {
			if err := n.replayJournal(recs); err != nil {
				return fail(err)
			}
			n.recovery.JournalReplayed = uint64(len(recs))
			if err := cfg.Store.Sync(); err != nil {
				return fail(fmt.Errorf("core: node %s: sync replayed journal: %w", cfg.ID, err))
			}
		}
		// Everything the journal held is durable in the store now; later
		// truncations use the same sync-then-truncate order.
		if err := j.truncateIf(nil); err != nil {
			return fail(err)
		}
	}
	if rr, ok := cfg.Store.(storeRecoveryReporter); ok {
		n.recovery.Store = rr.Recovery()
	}
	if !cfg.DisableBloom {
		expected := cfg.BloomExpected
		if expected <= 0 {
			expected = 1 << 20
		}
		if existing := cfg.Store.Len(); existing > expected {
			// Keep the false-positive rate honest for the data already
			// present.
			expected = existing * 2
		}
		rate := cfg.BloomFPRate
		if rate <= 0 || rate >= 1 {
			rate = 0.01
		}
		n.bloom = bloom.NewScalable(expected, rate)
		if cfg.Store.Len() > 0 {
			r, ok := cfg.Store.(Ranger)
			if !ok {
				return fail(fmt.Errorf("core: node %s: store holds %d entries but cannot enumerate them to rebuild the Bloom filter; disable the filter or use a Ranger store", cfg.ID, cfg.Store.Len()))
			}
			if err := r.Range(func(fp fingerprint.Fingerprint, _ hashdb.Value) bool {
				n.bloom.Add(fp)
				return true
			}); err != nil {
				return fail(fmt.Errorf("core: node %s: rebuild bloom: %w", cfg.ID, err))
			}
		}
	}
	if cfg.CacheSize > 0 {
		cacheStripes := cfg.CacheSize / minCachePerStripe
		if cacheStripes > nstripes {
			cacheStripes = nstripes
		}
		if cacheStripes < 1 {
			cacheStripes = 1
		}
		n.cache = lru.NewStriped(cacheStripes, cfg.CacheSize, n.onEvict)
	} else if cfg.WriteBack {
		return fail(errors.New("core: WriteBack requires a cache"))
	}
	if cfg.WriteBack {
		n.dst = newDestager(n, cfg.DestageBatch, cfg.DestageQueue, cfg.DestageInterval)
	}
	return n, nil
}

// onEvict hands dirty evicted entries to the destage pipeline (Figure 4's
// "Destage" box). The striped cache invokes it with the evicted entry's
// cache-stripe lock held, which is why it must not touch the device: it
// only parks the entry in the bounded dirty buffer (pure RAM, blocking
// solely on buffer-full backpressure); the destager goroutine performs the
// actual store writes in group-commit waves with no cache or node-stripe
// locks held. Lookups of the evicted fingerprint find it in the buffer
// until the destage lands, so the eviction is still atomic as observed
// through the Figure 4 walk.
func (n *Node) onEvict(fp fingerprint.Fingerprint, val lru.Value, dirty bool) {
	if !dirty {
		return
	}
	// The entry's journal record is appended here (under the shard lock,
	// inside enqueue) but NOT waited durable: onEvict runs with the
	// evicted entry's cache-stripe lock held, and an fsync wait here
	// would serialize every eviction on that stripe behind one fsync.
	// The write-back insert paths run a journalBarrierFrom after the
	// cache put returns — with no cache lock held — so the insert that
	// triggered the eviction still does not acknowledge until the record
	// is durable, while concurrent evictors share one group commit.
	n.dst.enqueue(fp, Value(val), false)
}

// recordDestageErr parks the first destage failure for delivery on the
// next insert, Flush, or Close (see takeDestageErr).
func (n *Node) recordDestageErr(err error) {
	n.destageMu.Lock()
	if n.destageErr == nil {
		n.destageErr = err
	}
	n.destageMu.Unlock()
}

// takeDestageErr returns and clears the pending destage failure, if any.
func (n *Node) takeDestageErr() error {
	n.destageMu.Lock()
	defer n.destageMu.Unlock()
	err := n.destageErr
	n.destageErr = nil
	return err
}

// ID returns the node's identity.
func (n *Node) ID() ring.NodeID { return n.id }

// Stripes returns the number of hot-path lock stripes.
func (n *Node) Stripes() int { return len(n.stripes) }

func (n *Node) stripeIndex(fp fingerprint.Fingerprint) int {
	// Bucket64 (bytes 8..16 of the digest) is independent of the ring
	// prefix (bytes 0..8), so the slice of the key space this node owns
	// still spreads uniformly over its stripes.
	return int(fp.Bucket64() & n.mask)
}

// lockAll acquires every stripe lock in index order; single-stripe
// operations take exactly one, so the orderings can never deadlock.
func (n *Node) lockAll() {
	for i := range n.stripes {
		n.stripes[i].mu.Lock()
	}
}

func (n *Node) unlockAll() {
	for i := len(n.stripes) - 1; i >= 0; i-- {
		n.stripes[i].mu.Unlock()
	}
}

// Lookup answers whether the fingerprint is stored, without inserting. By
// default the SSD probe runs outside the stripe lock (see pipeline.go) and
// honors ctx: a cancelled caller stops waiting immediately and its probe
// is handed to a waiting rider or aborted. With LockedIO the whole walk
// holds the lock and ctx is only checked before it starts.
func (n *Node) Lookup(ctx context.Context, fp fingerprint.Fingerprint) (LookupResult, error) {
	if !n.lockedIO {
		return n.lookupAsync(ctx, fp, 0, false)
	}
	if err := ctx.Err(); err != nil {
		return LookupResult{}, err
	}
	s := &n.stripes[n.stripeIndex(fp)]
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockio LockedIO is the paper's ablation baseline: it deliberately holds the stripe lock across the SSD read to measure what the async pipeline buys.
	return n.lookupLocked(s, fp)
}

// LookupOrInsert runs the full Figure 4 flow: answer whether the
// fingerprint exists, inserting it with val when it does not. By default
// the SSD phase runs outside the stripe lock, serialized per fingerprint
// by the in-flight table (see pipeline.go), and honors ctx (see Lookup);
// with LockedIO the whole flow holds the lock.
func (n *Node) LookupOrInsert(ctx context.Context, fp fingerprint.Fingerprint, val Value) (LookupResult, error) {
	if !n.lockedIO {
		return n.lookupAsync(ctx, fp, val, true)
	}
	if err := ctx.Err(); err != nil {
		return LookupResult{}, err
	}
	s := &n.stripes[n.stripeIndex(fp)]
	s.mu.Lock()
	before := n.journalLSN()
	//lint:ignore lockio LockedIO is the paper's ablation baseline: it deliberately holds the stripe lock across the SSD phase to measure what the async pipeline buys.
	r, err := n.lookupOrInsertLocked(s, fp, val)
	s.mu.Unlock()
	// An eviction the insert displaced must be journal-durable before the
	// ack; waiting here, with the lock released, lets concurrent stripes
	// share one group commit.
	n.journalBarrierFrom(before)
	return r, err
}

// lookupOrInsertLocked runs the Figure 4 flow with the SSD tier probed
// under the stripe lock (the LockedIO baseline). Caller holds s.mu, and s
// is the stripe owning fp.
func (n *Node) lookupOrInsertLocked(s *nodeStripe, fp fingerprint.Fingerprint, val Value) (LookupResult, error) {
	if n.closed {
		return LookupResult{}, errNodeClosed
	}
	s.lookups++

	// 1. RAM cache.
	if n.cache != nil {
		t0 := time.Now()
		v, ok := n.cache.Get(fp)
		s.histCache.Observe(time.Since(t0))
		if ok {
			s.cacheHits++
			return LookupResult{Exists: true, Value: Value(v), Source: SourceCache}, nil
		}
	}

	// 2. Bloom filter: a negative proves the fingerprint is new.
	if n.bloom != nil {
		t0 := time.Now()
		neg := !n.bloom.MayContain(fp)
		s.histBloom.Observe(time.Since(t0))
		if neg {
			s.bloomShort++
			if err := n.insertLocked(s, fp, val); err != nil {
				return LookupResult{}, err
			}
			return LookupResult{Exists: false, Source: SourceBloom}, nil
		}
	}

	// 2b. Destage dirty buffer: an entry evicted from the cache but not
	// yet group-committed to the SSD is still part of the logical store.
	if n.dst != nil {
		if v, ok := n.dst.peek(fp); ok {
			s.destageHits++
			s.storeHits++
			return LookupResult{Exists: true, Value: v, Source: SourceStore}, nil
		}
	}

	// 3. SSD hash table.
	t0 := time.Now()
	v, ok, err := n.store.Get(fp)
	if err != nil {
		s.histSSD.Observe(time.Since(t0))
		return LookupResult{}, fmt.Errorf("core: node %s: lookup: %w", n.id, err)
	}
	if ok {
		s.histSSD.Observe(time.Since(t0))
		s.storeHits++
		if n.cache != nil {
			n.cache.Put(fp, lru.Value(v))
		}
		return LookupResult{Exists: true, Value: v, Source: SourceStore}, nil
	}
	s.storeMiss++
	if n.bloom != nil {
		s.bloomFalse++
	}
	err = n.insertLocked(s, fp, val)
	s.histSSD.Observe(time.Since(t0))
	if err != nil {
		return LookupResult{}, err
	}
	return LookupResult{Exists: false, Source: SourceNew}, nil
}

// insertLocked records a new fingerprint in bloom, cache and store
// according to the write policy. Caller holds the stripe lock owning fp.
func (n *Node) insertLocked(s *nodeStripe, fp fingerprint.Fingerprint, val Value) error {
	s.inserts++
	if n.bloom != nil {
		n.bloom.Add(fp)
	}
	if n.wb {
		// Write-back: park dirty in the cache; destage on eviction. Any
		// eviction this displaced appended its journal record inside
		// PutDirty; the *callers* run journalBarrierFrom after releasing
		// the stripe lock, so the fsync wait never stalls the stripe.
		n.cache.PutDirty(fp, lru.Value(val))
		return n.takeDestageErr()
	}
	if _, err := n.store.Put(fp, val); err != nil {
		return fmt.Errorf("core: node %s: insert %s: %w", n.id, fp.Short(), err)
	}
	if n.cache != nil {
		n.cache.Put(fp, lru.Value(val))
	}
	return nil
}

// Insert unconditionally records fp -> val (used when uploads complete
// out-of-band from lookups, and by cluster mirroring and migration). It
// first waits out any in-flight SSD phase for fp, so it can never race a
// pipelined lookup's insert; the store write itself runs under the stripe
// lock — Insert is a cold path and keeping it fully serialized makes the
// migration callers trivially correct. A cancelled ctx stops the wait
// (the insert then never starts); Insert is not a result-waiter, so
// giving up never aborts the flight it was waiting out.
func (n *Node) Insert(ctx context.Context, fp fingerprint.Fingerprint, val Value) error {
	s := &n.stripes[n.stripeIndex(fp)]
	cancellable := ctx.Done() != nil
	for {
		if cancellable {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		s.mu.Lock()
		if n.closed {
			s.mu.Unlock()
			return errNodeClosed
		}
		f, inflight := s.inflight[fp]
		if !inflight {
			before := n.journalLSN()
			err := n.insertLocked(s, fp, val)
			s.mu.Unlock()
			// Journal-durability wait for any displaced eviction runs
			// with the stripe lock released.
			n.journalBarrierFrom(before)
			return err
		}
		s.mu.Unlock()
		if cancellable {
			select {
			case <-f.done:
			case <-ctx.Done():
				return ctx.Err()
			}
		} else {
			<-f.done
		}
	}
}

// BatchLookupOrInsert processes pairs through the Figure 4 flow. The
// default pipeline makes one RAM pass per stripe under its lock, then
// resolves every fingerprint that reached the SSD tier in a single
// coalesced SSD phase with no stripe locks held: the store reads each
// distinct bucket page once and overlaps page reads and inserts up to the
// device's modeled parallelism, so batch throughput under SSD latency is
// bounded by the device, not by the stripe count. With LockedIO the batch
// is instead partitioned by stripe and each stripe's share runs
// sequentially under its lock (the pre-pipeline behavior).
//
// Results are returned in input order, and a fingerprint appearing twice
// in one batch resolves in input order, so the second occurrence sees the
// first as a duplicate.
//
// Cancelling ctx stops the coalesced SSD phase from issuing further
// device reads and fails the whole batch with ctx.Err().
func (n *Node) BatchLookupOrInsert(ctx context.Context, pairs []Pair) ([]LookupResult, error) {
	if len(pairs) == 0 {
		return nil, nil
	}
	if !n.lockedIO {
		return n.batchAsync(ctx, len(pairs),
			func(i int) fingerprint.Fingerprint { return pairs[i].FP },
			func(i int) Value { return pairs[i].Val }, true)
	}
	return n.batchLocked(ctx, len(pairs), func(i int) fingerprint.Fingerprint { return pairs[i].FP },
		func(s *nodeStripe, i int) (LookupResult, error) {
			return n.lookupOrInsertLocked(s, pairs[i].FP, pairs[i].Val)
		})
}

// ApplyRepair applies a replication backfill batch. Each pair runs through
// the normal lookup-or-insert flow — an entry already present keeps its
// stored value, a missing one is created — so repair is idempotent and can
// never clobber a newer locator. The per-pair results report what was
// found (Exists) versus created, which lets the sender detect divergence.
// The traffic is accounted in the Replica stats block on top of the
// foreground counters the underlying batch already bumps.
func (n *Node) ApplyRepair(ctx context.Context, pairs []Pair) ([]LookupResult, error) {
	rs, err := n.BatchLookupOrInsert(ctx, pairs)
	if err != nil {
		return nil, err
	}
	var created uint64
	for _, r := range rs {
		if !r.Exists {
			created++
		}
	}
	n.replRepairBatches.Add(1)
	n.replRepairPairs.Add(uint64(len(pairs)))
	n.replRepairCreated.Add(created)
	return rs, nil
}

// LookupBatch answers a batch of read-only lookups through the same
// pipeline as BatchLookupOrInsert, without inserting missing fingerprints.
func (n *Node) LookupBatch(ctx context.Context, fps []fingerprint.Fingerprint) ([]LookupResult, error) {
	if len(fps) == 0 {
		return nil, nil
	}
	if !n.lockedIO {
		return n.batchAsync(ctx, len(fps),
			func(i int) fingerprint.Fingerprint { return fps[i] },
			func(int) Value { return 0 }, false)
	}
	return n.batchLocked(ctx, len(fps), func(i int) fingerprint.Fingerprint { return fps[i] },
		func(s *nodeStripe, i int) (LookupResult, error) {
			return n.lookupLocked(s, fps[i])
		})
}

// lookupLocked is the read-only Figure 4 flow with the SSD tier probed
// under the stripe lock (the LockedIO baseline). Caller holds s.mu, and s
// is the stripe owning fp.
func (n *Node) lookupLocked(s *nodeStripe, fp fingerprint.Fingerprint) (LookupResult, error) {
	if n.closed {
		return LookupResult{}, errNodeClosed
	}
	s.lookups++
	if n.cache != nil {
		t0 := time.Now()
		v, ok := n.cache.Get(fp)
		s.histCache.Observe(time.Since(t0))
		if ok {
			s.cacheHits++
			return LookupResult{Exists: true, Value: Value(v), Source: SourceCache}, nil
		}
	}
	if n.bloom != nil {
		t0 := time.Now()
		neg := !n.bloom.MayContain(fp)
		s.histBloom.Observe(time.Since(t0))
		if neg {
			s.bloomShort++
			return LookupResult{Exists: false, Source: SourceBloom}, nil
		}
	}
	if n.dst != nil {
		if v, ok := n.dst.peek(fp); ok {
			s.destageHits++
			s.storeHits++
			return LookupResult{Exists: true, Value: v, Source: SourceStore}, nil
		}
	}
	t0 := time.Now()
	v, ok, err := n.store.Get(fp)
	s.histSSD.Observe(time.Since(t0))
	if err != nil {
		return LookupResult{}, fmt.Errorf("core: node %s: lookup: %w", n.id, err)
	}
	if !ok {
		s.storeMiss++
		if n.bloom != nil {
			s.bloomFalse++
		}
		return LookupResult{Exists: false, Source: SourceNew}, nil
	}
	s.storeHits++
	if n.cache != nil {
		n.cache.Put(fp, lru.Value(v))
	}
	return LookupResult{Exists: true, Value: v, Source: SourceStore}, nil
}

// batchLocked partitions item indices by stripe and runs each stripe's
// share under its lock, concurrently across stripes, reassembling results
// in input order. This is the LockedIO baseline batch path: concurrency is
// capped at the stripe count because every SSD probe holds its stripe
// lock. ctx is checked between items (probes themselves are not
// interruptible under the lock).
func (n *Node) batchLocked(ctx context.Context, count int, fpOf func(int) fingerprint.Fingerprint,
	run func(s *nodeStripe, i int) (LookupResult, error)) ([]LookupResult, error) {
	if count == 0 {
		return nil, nil
	}
	results := make([]LookupResult, count)

	done := ctx.Done()
	runGroup := func(si int, idxs []int) error {
		s := &n.stripes[si]
		before := n.journalLSN()
		s.mu.Lock()
		err := func() error {
			for _, i := range idxs {
				if done != nil {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
				r, err := run(s, i)
				if err != nil {
					return fmt.Errorf("core: batch item %d: %w", i, err)
				}
				results[i] = r
			}
			return nil
		}()
		s.mu.Unlock()
		// One journal barrier per stripe group: every eviction the
		// group's inserts displaced is durable before the batch acks.
		n.journalBarrierFrom(before)
		return err
	}

	if count == 1 {
		if err := runGroup(n.stripeIndex(fpOf(0)), []int{0}); err != nil {
			return nil, err
		}
		return results, nil
	}

	groups := make(map[int][]int, len(n.stripes))
	for i := 0; i < count; i++ {
		si := n.stripeIndex(fpOf(i))
		groups[si] = append(groups[si], i)
	}
	if len(groups) == 1 {
		for si, idxs := range groups {
			if err := runGroup(si, idxs); err != nil {
				return nil, err
			}
		}
		return results, nil
	}

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for si, idxs := range groups {
		wg.Add(1)
		go func(si int, idxs []int) {
			defer wg.Done()
			if err := runGroup(si, idxs); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}(si, idxs)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// Flush destages every dirty cache entry to the store, drains the destage
// buffer fully, and syncs the store.
func (n *Node) Flush() error {
	n.lockAll()
	defer n.unlockAll()
	if n.closed {
		return errNodeClosed
	}
	if err := n.flushLocked(); err != nil {
		return err
	}
	return n.store.Sync()
}

// flushLocked routes every dirty cache entry through the destage pipeline
// and drains it, so the flush itself benefits from group-committed,
// page-coalesced writes. Caller holds every stripe lock (the destager
// takes none of them, so the drain always progresses). Entries are marked
// clean only after the drain succeeded, keeping a failed flush retryable.
func (n *Node) flushLocked() error {
	if n.cache == nil || !n.wb {
		return nil
	}
	dirty := n.cache.DirtyKeys()
	for _, fp := range dirty {
		if v, ok := n.cache.Peek(fp); ok {
			// No per-entry journal wait: the drain below plus the caller's
			// store sync are this path's durability barrier, so the flush
			// is not serialized on one fsync per entry.
			n.dst.enqueue(fp, Value(v), false)
		}
	}
	n.dst.drain()
	if err := n.takeDestageErr(); err != nil {
		return fmt.Errorf("core: node %s: flush: %w", n.id, err)
	}
	// The drain emptied the buffer, so the journal owes nothing; truncate
	// it here (not just from the destager's wave tail) so a returned
	// Flush means the quiesce truncation has actually happened.
	n.dst.maybeTruncateJournal()
	for _, fp := range dirty {
		n.cache.MarkClean(fp)
	}
	return nil
}

// Entries enumerates the node's stored fingerprints (flushing write-back
// state first so the enumeration is complete). Used by cluster rebalancing.
// The enumeration holds every stripe lock, so ctx is checked between
// entries: a cancelled caller stops the walk and releases the node.
func (n *Node) Entries(ctx context.Context, fn func(fp fingerprint.Fingerprint, val Value) bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n.lockAll()
	defer n.unlockAll()
	if n.closed {
		return errNodeClosed
	}
	if err := n.flushLocked(); err != nil {
		return err
	}
	r, ok := n.store.(Ranger)
	if !ok {
		return fmt.Errorf("core: node %s: store cannot enumerate entries", n.id)
	}
	var ctxErr error
	err := r.Range(func(fp fingerprint.Fingerprint, v hashdb.Value) bool {
		if ctxErr = ctx.Err(); ctxErr != nil {
			return false
		}
		return fn(fp, Value(v))
	})
	if ctxErr != nil {
		return ctxErr
	}
	return err
}

// Deleter is implemented by stores that can remove entries (both hashdb
// stores implement it; the ChunkStash log does not).
type Deleter interface {
	Delete(fp fingerprint.Fingerprint) (bool, error)
}

// Remove deletes a fingerprint from the node's cache and store. The Bloom
// filter cannot forget, so it stays conservatively stale: a later lookup
// of the removed fingerprint may pay one extra SSD probe, never a wrong
// answer. Used by cluster rebalancing. Like Insert, Remove first waits out
// any in-flight SSD phase for fp — otherwise a pipelined insert landing
// after the delete would resurrect the entry on a node it just migrated
// off.
func (n *Node) Remove(fp fingerprint.Fingerprint) (bool, error) {
	s := &n.stripes[n.stripeIndex(fp)]
	for {
		s.mu.Lock()
		if n.closed {
			s.mu.Unlock()
			return false, errNodeClosed
		}
		f, inflight := s.inflight[fp]
		if !inflight {
			break
		}
		s.mu.Unlock()
		<-f.done
	}
	d, ok := n.store.(Deleter)
	if !ok {
		s.mu.Unlock()
		return false, fmt.Errorf("core: node %s: store cannot delete entries", n.id)
	}
	if n.cache != nil {
		n.cache.Remove(fp)
	}
	if n.dst != nil {
		// Drop any pending destage (waiting out a wave that already holds
		// it), or the buffered write would resurrect the entry after the
		// delete below.
		n.dst.forget(fp)
	}
	removed, err := d.Delete(fp)
	var lsn uint64
	if err == nil && n.jnl != nil {
		// Tombstone the journal while still holding the stripe lock — a
		// later re-insert of fp must journal *after* this record, or
		// replay would apply the tombstone over the newer value. It sits
		// after the store delete so a truncation's store sync always
		// covers the delete the tombstone describes.
		lsn = n.jnl.append(journalDelete, fp, 0)
	}
	s.mu.Unlock()
	if err != nil {
		return false, fmt.Errorf("core: node %s: remove %s: %w", n.id, fp.Short(), err)
	}
	if n.jnl != nil {
		// Wait the tombstone durable with the stripe lock released, so a
		// migration removing many keys shares group commits with other
		// stripes instead of blocking this one per fsync. Replay must
		// never resurrect a migrated entry, so the wait itself stays.
		if jerr := n.jnl.wait(lsn); jerr != nil {
			n.recordDestageErr(fmt.Errorf("core: node %s: remove %s: journal: %w", n.id, fp.Short(), jerr))
		}
	}
	return removed, nil
}

// Stats snapshots the node's counters. Every stripe is locked for the
// snapshot, so the aggregate is exactly consistent: the per-source counters
// always sum to Lookups. The snapshot itself is pure RAM; ctx is only
// checked before it starts (it matters for the remote implementation).
func (n *Node) Stats(ctx context.Context) (NodeStats, error) {
	if err := ctx.Err(); err != nil {
		return NodeStats{}, err
	}
	n.lockAll()
	defer n.unlockAll()
	st := NodeStats{
		ID:           n.id,
		StoreEntries: n.store.Len(),
		Recovery:     n.recovery,
		Replica: ReplicaStats{
			RepairBatches: n.replRepairBatches.Load(),
			RepairPairs:   n.replRepairPairs.Load(),
			RepairCreated: n.replRepairCreated.Load(),
		},
	}
	for i := range n.stripes {
		s := &n.stripes[i]
		// Lock-free cache hits are counted once and folded into both
		// Lookups and CacheHits, so the per-source sum stays exact even
		// though the fast path never takes the stripe lock.
		fh := s.fastHits.Load()
		st.Lookups += s.lookups + fh
		st.Inserts += s.inserts
		st.CacheHits += s.cacheHits + fh
		st.BloomShort += s.bloomShort
		st.StoreHits += s.storeHits
		st.StoreMisses += s.storeMiss
		st.BloomFalse += s.bloomFalse
		st.Coalesced += s.coalesced
		st.Destage.BufferHits += s.destageHits
	}
	if n.dst != nil {
		st.Destage.QueueDepth = uint64(n.dst.depth())
		st.Destage.Entries = n.dst.entries.Load()
		st.Destage.Pages = n.dst.pages.Load()
		st.Destage.Waves = n.dst.waves.Load()
		st.Destage.Coalesced = n.dst.coalesced.Load()
		st.Destage.WaveSizes = n.dst.waveHist.Summarize()
	}
	mergedPhase := func(get func(*nodeStripe) *metrics.Histogram) metrics.Summary {
		m := newPhaseHistogram()
		for i := range n.stripes {
			m.Merge(get(&n.stripes[i]))
		}
		return m.Summarize()
	}
	st.Phases = PhaseTimings{
		Cache: mergedPhase(func(s *nodeStripe) *metrics.Histogram { return s.histCache }),
		Bloom: mergedPhase(func(s *nodeStripe) *metrics.Histogram { return s.histBloom }),
		SSD:   mergedPhase(func(s *nodeStripe) *metrics.Histogram { return s.histSSD }),
	}
	if n.cache != nil {
		st.Cache = n.cache.Stats()
	}
	if n.bloom != nil {
		st.Bloom = BloomStats{
			Entries:         uint64(n.bloom.Len()),
			SizeBytes:       uint64(n.bloom.SizeBytes()),
			Slices:          uint32(n.bloom.Slices()),
			FillRatio:       n.bloom.FillRatio(),
			EstimatedFPRate: n.bloom.EstimatedFPRate(),
			Saturated:       n.bloom.Saturated(),
		}
	}
	if n.wb {
		// Dirty cache entries are part of the logical index even though
		// they have not been destaged yet.
		st.StoreEntries = int(st.Inserts)
	}
	return st, nil
}

// Close flushes dirty state and closes the store. Setting closed (under
// every stripe lock) stops new operations from starting SSD phases; Close
// then waits for the phases already in flight to land — they complete
// normally against the still-open store — before flushing and closing it.
func (n *Node) Close() error {
	n.lockAll()
	if n.closed {
		n.unlockAll()
		return errNodeClosed
	}
	n.closed = true
	n.closedFast.Store(true)
	n.unlockAll()
	n.flights.Wait()

	n.lockAll()
	defer n.unlockAll()
	err := n.flushLocked()
	if n.dst != nil {
		// The buffer is drained; stop the destager before closing the
		// store so no wave can race the close.
		n.dst.stop()
	}
	if cerr := n.store.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = n.takeDestageErr()
	}
	if n.jnl != nil {
		if err == nil {
			// Clean shutdown: the store closed (and synced) holding
			// everything, so the journal owes nothing to the next open —
			// unless an entry was ever dropped to the journal (keepJournal),
			// or on error: then it is kept intact for replay instead.
			err = n.jnl.truncateIf(func() bool { return !n.dst.keepJournal.Load() })
		}
		if cerr := n.jnl.close(); err == nil {
			err = cerr
		}
	}
	return err
}
