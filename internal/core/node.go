// Package core implements SHHC itself: the hybrid (RAM+SSD) hash node and
// the cluster that distributes the fingerprint index across nodes.
//
// A Node realizes the paper's Figure 4 lookup flow:
//
//  1. Try the in-RAM LRU cache; a hit answers immediately and promotes the
//     entry to most-recently-used.
//  2. On a read miss, consult the in-RAM Bloom filter; a negative answer
//     proves the fingerprint is new, so the node inserts it (SSD hash
//     table) without any SSD read.
//  3. Otherwise probe the SSD hash table. Present: load the entry into the
//     LRU and answer "duplicate". Absent: insert the new entry and answer
//     "new — send the data".
//
// A Cluster (cluster.go) routes fingerprints to nodes with consistent
// hashing and fans batches out in parallel.
package core

import (
	"errors"
	"fmt"
	"sync"

	"shhc/internal/bloom"
	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/lru"
	"shhc/internal/ring"
)

// Value is the chunk locator stored per fingerprint.
type Value = hashdb.Value

// Source identifies which tier of the hybrid node answered a lookup.
type Source int

const (
	// SourceCache means the RAM LRU answered (fast path).
	SourceCache Source = iota + 1
	// SourceBloom means the Bloom filter proved the fingerprint new
	// without touching the SSD.
	SourceBloom
	// SourceStore means the SSD hash table answered.
	SourceStore
	// SourceNew means the fingerprint was not found anywhere and a new
	// entry was created.
	SourceNew
)

func (s Source) String() string {
	switch s {
	case SourceCache:
		return "cache"
	case SourceBloom:
		return "bloom"
	case SourceStore:
		return "store"
	case SourceNew:
		return "new"
	}
	return fmt.Sprintf("source(%d)", int(s))
}

// LookupResult is a node's answer to one fingerprint query.
type LookupResult struct {
	// Exists reports whether the chunk is already stored in the cloud;
	// the client must upload the chunk when Exists is false.
	Exists bool
	// Value is the stored locator when Exists is true.
	Value Value
	// Source is the tier that produced the answer.
	Source Source
}

// Pair couples a fingerprint with the locator to assign if it is new.
type Pair struct {
	FP  fingerprint.Fingerprint
	Val Value
}

// NodeConfig configures a hybrid hash node.
type NodeConfig struct {
	// ID names the node in the ring.
	ID ring.NodeID
	// Store is the persistent hash table (SSD in the paper). Required.
	Store hashdb.Store
	// CacheSize is the LRU capacity in entries; 0 disables the cache.
	CacheSize int
	// DisableBloom turns the Bloom filter off (ablation).
	DisableBloom bool
	// BloomExpected sizes the filter; default 1<<20 entries.
	BloomExpected int
	// BloomFPRate is the filter's target false-positive rate; default 1%.
	BloomFPRate float64
	// WriteBack delays SSD inserts until cache eviction (destage),
	// trading durability for insert latency — the paper's Figure 4
	// "LRU full? → Destage" arm and dedupv1's delayed-write idea.
	WriteBack bool
}

// NodeStats snapshots a node's counters.
type NodeStats struct {
	ID           ring.NodeID
	Lookups      uint64
	Inserts      uint64
	CacheHits    uint64
	BloomShort   uint64 // lookups short-circuited by a Bloom negative
	StoreHits    uint64
	StoreMisses  uint64
	BloomFalse   uint64 // Bloom said maybe, store said no
	StoreEntries int
	Cache        lru.Stats
}

// Node is a hybrid RAM+SSD hash node. All methods are safe for concurrent
// use; operations on a single node are serialized, matching a single
// index device per machine.
type Node struct {
	id    ring.NodeID
	mu    sync.Mutex
	store hashdb.Store
	cache *lru.Cache // nil when disabled
	bloom *bloom.Filter
	wb    bool

	lookups    uint64
	inserts    uint64
	cacheHits  uint64
	bloomShort uint64
	storeHits  uint64
	storeMiss  uint64
	bloomFalse uint64

	destageErr error // first write-back destage failure, surfaced on Close
	closed     bool
}

// Ranger is implemented by stores that can enumerate their entries;
// NewNode uses it to rebuild the Bloom filter when a node restarts on an
// existing hash table. Both *hashdb.DB and *hashdb.MemStore implement it.
type Ranger interface {
	Range(fn func(fp fingerprint.Fingerprint, v hashdb.Value) bool) error
}

// NewNode creates a hybrid hash node. If the store already holds entries
// (a node restarting on its persistent hash table), the Bloom filter is
// rebuilt from the store so duplicate detection survives restarts.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Store == nil {
		return nil, errors.New("core: NodeConfig.Store is required")
	}
	if cfg.ID == "" {
		return nil, errors.New("core: NodeConfig.ID is required")
	}
	n := &Node{id: cfg.ID, store: cfg.Store, wb: cfg.WriteBack}
	if !cfg.DisableBloom {
		expected := cfg.BloomExpected
		if expected <= 0 {
			expected = 1 << 20
		}
		if existing := cfg.Store.Len(); existing > expected {
			// Keep the false-positive rate honest for the data already
			// present.
			expected = existing * 2
		}
		rate := cfg.BloomFPRate
		if rate <= 0 || rate >= 1 {
			rate = 0.01
		}
		n.bloom = bloom.New(expected, rate)
		if cfg.Store.Len() > 0 {
			r, ok := cfg.Store.(Ranger)
			if !ok {
				return nil, fmt.Errorf("core: node %s: store holds %d entries but cannot enumerate them to rebuild the Bloom filter; disable the filter or use a Ranger store", cfg.ID, cfg.Store.Len())
			}
			if err := r.Range(func(fp fingerprint.Fingerprint, _ hashdb.Value) bool {
				n.bloom.Add(fp)
				return true
			}); err != nil {
				return nil, fmt.Errorf("core: node %s: rebuild bloom: %w", cfg.ID, err)
			}
		}
	}
	if cfg.CacheSize > 0 {
		n.cache = lru.New(cfg.CacheSize, n.onEvict)
	} else if cfg.WriteBack {
		return nil, errors.New("core: WriteBack requires a cache")
	}
	return n, nil
}

// onEvict destages dirty entries to the persistent store (Figure 4's
// "Destage" box). It runs under the node mutex via cache mutations.
func (n *Node) onEvict(fp fingerprint.Fingerprint, val lru.Value, dirty bool) {
	if !dirty {
		return
	}
	if _, err := n.store.Put(fp, Value(val)); err != nil && n.destageErr == nil {
		n.destageErr = fmt.Errorf("core: node %s: destage %s: %w", n.id, fp.Short(), err)
	}
}

// ID returns the node's identity.
func (n *Node) ID() ring.NodeID { return n.id }

// Lookup answers whether the fingerprint is stored, without inserting.
func (n *Node) Lookup(fp fingerprint.Fingerprint) (LookupResult, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return LookupResult{}, errors.New("core: node is closed")
	}
	n.lookups++

	if n.cache != nil {
		if v, ok := n.cache.Get(fp); ok {
			n.cacheHits++
			return LookupResult{Exists: true, Value: Value(v), Source: SourceCache}, nil
		}
	}
	if n.bloom != nil && !n.bloom.MayContain(fp) {
		n.bloomShort++
		return LookupResult{Exists: false, Source: SourceBloom}, nil
	}
	v, ok, err := n.store.Get(fp)
	if err != nil {
		return LookupResult{}, fmt.Errorf("core: node %s: lookup: %w", n.id, err)
	}
	if !ok {
		n.storeMiss++
		if n.bloom != nil {
			n.bloomFalse++
		}
		return LookupResult{Exists: false, Source: SourceNew}, nil
	}
	n.storeHits++
	if n.cache != nil {
		n.cache.Put(fp, lru.Value(v))
	}
	return LookupResult{Exists: true, Value: v, Source: SourceStore}, nil
}

// LookupOrInsert runs the full Figure 4 flow: answer whether the
// fingerprint exists, inserting it with val when it does not.
func (n *Node) LookupOrInsert(fp fingerprint.Fingerprint, val Value) (LookupResult, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lookupOrInsertLocked(fp, val)
}

func (n *Node) lookupOrInsertLocked(fp fingerprint.Fingerprint, val Value) (LookupResult, error) {
	if n.closed {
		return LookupResult{}, errors.New("core: node is closed")
	}
	n.lookups++

	// 1. RAM cache.
	if n.cache != nil {
		if v, ok := n.cache.Get(fp); ok {
			n.cacheHits++
			return LookupResult{Exists: true, Value: Value(v), Source: SourceCache}, nil
		}
	}

	// 2. Bloom filter: a negative proves the fingerprint is new.
	if n.bloom != nil && !n.bloom.MayContain(fp) {
		n.bloomShort++
		if err := n.insertLocked(fp, val); err != nil {
			return LookupResult{}, err
		}
		return LookupResult{Exists: false, Source: SourceBloom}, nil
	}

	// 3. SSD hash table.
	v, ok, err := n.store.Get(fp)
	if err != nil {
		return LookupResult{}, fmt.Errorf("core: node %s: lookup: %w", n.id, err)
	}
	if ok {
		n.storeHits++
		if n.cache != nil {
			n.cache.Put(fp, lru.Value(v))
		}
		return LookupResult{Exists: true, Value: v, Source: SourceStore}, nil
	}
	n.storeMiss++
	if n.bloom != nil {
		n.bloomFalse++
	}
	if err := n.insertLocked(fp, val); err != nil {
		return LookupResult{}, err
	}
	return LookupResult{Exists: false, Source: SourceNew}, nil
}

// insertLocked records a new fingerprint in bloom, cache and store
// according to the write policy. Caller holds n.mu.
func (n *Node) insertLocked(fp fingerprint.Fingerprint, val Value) error {
	n.inserts++
	if n.bloom != nil {
		n.bloom.Add(fp)
	}
	if n.wb {
		// Write-back: park dirty in the cache; destage on eviction.
		n.cache.PutDirty(fp, lru.Value(val))
		if n.destageErr != nil {
			err := n.destageErr
			n.destageErr = nil
			return err
		}
		return nil
	}
	if _, err := n.store.Put(fp, val); err != nil {
		return fmt.Errorf("core: node %s: insert %s: %w", n.id, fp.Short(), err)
	}
	if n.cache != nil {
		n.cache.Put(fp, lru.Value(val))
	}
	return nil
}

// Insert unconditionally records fp -> val (used when uploads complete
// out-of-band from lookups).
func (n *Node) Insert(fp fingerprint.Fingerprint, val Value) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return errors.New("core: node is closed")
	}
	return n.insertLocked(fp, val)
}

// BatchLookupOrInsert processes pairs in order through the Figure 4 flow,
// holding the node for the whole batch — this is what preserves the
// spatial locality benefit of batched queries (paper §IV.B).
func (n *Node) BatchLookupOrInsert(pairs []Pair) ([]LookupResult, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	results := make([]LookupResult, len(pairs))
	for i, p := range pairs {
		r, err := n.lookupOrInsertLocked(p.FP, p.Val)
		if err != nil {
			return nil, fmt.Errorf("core: batch item %d: %w", i, err)
		}
		results[i] = r
	}
	return results, nil
}

// Flush destages every dirty cache entry to the store and syncs it.
func (n *Node) Flush() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return errors.New("core: node is closed")
	}
	if err := n.flushLocked(); err != nil {
		return err
	}
	return n.store.Sync()
}

func (n *Node) flushLocked() error {
	if n.cache == nil || !n.wb {
		return nil
	}
	for _, fp := range n.cache.Keys() {
		v, ok := n.cache.Peek(fp)
		if !ok {
			continue
		}
		if _, err := n.store.Put(fp, Value(v)); err != nil {
			return fmt.Errorf("core: node %s: flush %s: %w", n.id, fp.Short(), err)
		}
		n.cache.MarkClean(fp)
	}
	return nil
}

// Entries enumerates the node's stored fingerprints (flushing write-back
// state first so the enumeration is complete). Used by cluster rebalancing.
func (n *Node) Entries(fn func(fp fingerprint.Fingerprint, val Value) bool) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return errors.New("core: node is closed")
	}
	if err := n.flushLocked(); err != nil {
		return err
	}
	r, ok := n.store.(Ranger)
	if !ok {
		return fmt.Errorf("core: node %s: store cannot enumerate entries", n.id)
	}
	return r.Range(func(fp fingerprint.Fingerprint, v hashdb.Value) bool {
		return fn(fp, Value(v))
	})
}

// Deleter is implemented by stores that can remove entries (both hashdb
// stores implement it; the ChunkStash log does not).
type Deleter interface {
	Delete(fp fingerprint.Fingerprint) (bool, error)
}

// Remove deletes a fingerprint from the node's cache and store. The Bloom
// filter cannot forget, so it stays conservatively stale: a later lookup
// of the removed fingerprint may pay one extra SSD probe, never a wrong
// answer. Used by cluster rebalancing.
func (n *Node) Remove(fp fingerprint.Fingerprint) (bool, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false, errors.New("core: node is closed")
	}
	d, ok := n.store.(Deleter)
	if !ok {
		return false, fmt.Errorf("core: node %s: store cannot delete entries", n.id)
	}
	if n.cache != nil {
		n.cache.Remove(fp)
	}
	removed, err := d.Delete(fp)
	if err != nil {
		return false, fmt.Errorf("core: node %s: remove %s: %w", n.id, fp.Short(), err)
	}
	return removed, nil
}

// Stats snapshots the node's counters.
func (n *Node) Stats() (NodeStats, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := NodeStats{
		ID:           n.id,
		Lookups:      n.lookups,
		Inserts:      n.inserts,
		CacheHits:    n.cacheHits,
		BloomShort:   n.bloomShort,
		StoreHits:    n.storeHits,
		StoreMisses:  n.storeMiss,
		BloomFalse:   n.bloomFalse,
		StoreEntries: n.store.Len(),
	}
	if n.cache != nil {
		st.Cache = n.cache.Stats()
	}
	if n.wb {
		// Dirty cache entries are part of the logical index even though
		// they have not been destaged yet.
		st.StoreEntries = int(n.inserts)
	}
	return st, nil
}

// Close flushes dirty state and closes the store.
func (n *Node) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return errors.New("core: node is closed")
	}
	n.closed = true
	err := n.flushLocked()
	if cerr := n.store.Close(); err == nil {
		err = cerr
	}
	if err == nil && n.destageErr != nil {
		err = n.destageErr
	}
	return err
}
