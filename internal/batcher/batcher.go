// Package batcher aggregates single fingerprint queries into batches.
//
// The paper's web front-end "aggregates fingerprints from clients and sends
// them as a batch to hybrid nodes" (§III.A), and the evaluation (§IV.B)
// shows batch mode is worth an order of magnitude of throughput at the cost
// of queueing latency — the tradeoff this package's MaxBatch/MaxDelay knobs
// expose (batch sizes 1/128/2048 in Figure 5).
package batcher

import (
	"context"
	"errors"
	"sync"
	"time"

	"shhc/internal/core"
	"shhc/internal/fingerprint"
	"shhc/internal/pow2"
)

// Func executes one aggregated batch, returning results in input order.
// A core.Cluster's BatchLookupOrInsert is the usual implementation. The
// batcher invokes it with a background-derived context, never any single
// caller's: a batch aggregates queries from many callers, and one
// caller's cancellation must not take its batch-mates' results down.
type Func func(ctx context.Context, pairs []core.Pair) ([]core.LookupResult, error)

// Config tunes the aggregation window.
type Config struct {
	// MaxBatch flushes when this many queries are pending. Default 128.
	// With Stripes > 1 the limit applies per stripe.
	MaxBatch int
	// MaxDelay flushes a non-empty partial batch after this long,
	// bounding the latency a query can spend queued. Default 2ms.
	MaxDelay time.Duration
	// Stripes splits the aggregation queue into independent stripes
	// (rounded down to a power of two), each with its own lock, pending
	// batch, and flush timer. A fingerprint always joins the same stripe,
	// so stripe batches arrive pre-partitioned for the striped node's
	// batch fan-out. Raise it when tens of client goroutines contend on
	// one front-end batcher. Default 1 (a single shared queue — maximal
	// aggregation, exactly the paper's behavior).
	Stripes int
}

func (c *Config) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 128
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	c.Stripes = pow2.Floor(c.Stripes)
}

// ErrClosed is returned for queries submitted after Close.
var ErrClosed = errors.New("batcher: closed")

type waiter struct {
	pair core.Pair
	ch   chan outcome
}

type outcome struct {
	res core.LookupResult
	err error
}

// batcherStripe is one independent aggregation queue.
type batcherStripe struct {
	mu      sync.Mutex
	pending []waiter
	timer   *time.Timer
	// timerGen invalidates stale timer callbacks: a timer that fired
	// after its batch was already flushed (by MaxBatch or Close) must not
	// flush the next, younger partial batch before its MaxDelay elapsed.
	// Incremented by every flush; armed timers capture the value.
	timerGen uint64
	closed   bool

	batches uint64
	queries uint64
}

// Batcher coalesces concurrent LookupOrInsert calls into batches.
// It is safe for concurrent use.
type Batcher struct {
	do      Func
	cfg     Config
	stripes []batcherStripe
	mask    uint64
	flushWG sync.WaitGroup
}

// New creates a batcher around the given batch executor.
func New(do Func, cfg Config) *Batcher {
	cfg.fill()
	return &Batcher{
		do:      do,
		cfg:     cfg,
		stripes: make([]batcherStripe, cfg.Stripes),
		mask:    uint64(cfg.Stripes - 1),
	}
}

// Stripes returns the number of aggregation stripes.
func (b *Batcher) Stripes() int { return len(b.stripes) }

func (b *Batcher) stripe(fp fingerprint.Fingerprint) *batcherStripe {
	return &b.stripes[fp.Bucket64()&b.mask]
}

// LookupOrInsert enqueues one query and blocks until its batch completes
// or ctx is cancelled. A cancelled caller returns ctx.Err() immediately
// and abandons its slot without stranding batch-mates: the batch still
// executes (the waiter's channel is buffered, so the flush goroutine
// never blocks on a departed caller) and every other query in it gets its
// result. The abandoned query may or may not have reached the cluster —
// exactly the guarantee (none) a cancelled caller must assume.
func (b *Batcher) LookupOrInsert(ctx context.Context, fp fingerprint.Fingerprint, val core.Value) (core.LookupResult, error) {
	if err := ctx.Err(); err != nil {
		return core.LookupResult{}, err
	}
	w := waiter{pair: core.Pair{FP: fp, Val: val}, ch: make(chan outcome, 1)}
	s := b.stripe(fp)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return core.LookupResult{}, ErrClosed
	}
	s.pending = append(s.pending, w)
	s.queries++
	if len(s.pending) >= b.cfg.MaxBatch {
		b.flushLocked(s)
	} else if s.timer == nil {
		gen := s.timerGen
		s.timer = time.AfterFunc(b.cfg.MaxDelay, func() { b.flushTimer(s, gen) })
	}
	s.mu.Unlock()

	if ctx.Done() == nil {
		out := <-w.ch
		return out.res, out.err
	}
	select {
	case out := <-w.ch:
		return out.res, out.err
	case <-ctx.Done():
		return core.LookupResult{}, ctx.Err()
	}
}

// flushTimer is the MaxDelay expiry path. gen guards against a callback
// that lost the race with a MaxBatch flush or Close: by the time it runs,
// its batch is gone and the pending queue (if any) belongs to a younger
// timer.
func (b *Batcher) flushTimer(s *batcherStripe, gen uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.timerGen != gen {
		return
	}
	b.flushLocked(s)
}

// flushLocked dispatches the stripe's pending batch. Caller holds s.mu.
func (b *Batcher) flushLocked(s *batcherStripe) {
	s.timerGen++
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	if len(s.pending) == 0 {
		return
	}
	batch := s.pending
	s.pending = nil
	s.batches++

	b.flushWG.Add(1)
	go func() {
		defer b.flushWG.Done()
		pairs := make([]core.Pair, len(batch))
		for i, w := range batch {
			pairs[i] = w.pair
		}
		// The batch runs detached from any one caller's context (see
		// Func): batch-mates that are still waiting get their results
		// even if the caller that happened to trigger the flush is gone.
		results, err := b.do(context.Background(), pairs)
		if err == nil && len(results) != len(batch) {
			err = errors.New("batcher: executor returned wrong result count")
		}
		for i, w := range batch {
			if err != nil {
				w.ch <- outcome{err: err}
			} else {
				w.ch <- outcome{res: results[i]}
			}
		}
	}()
}

// Stats reports aggregation effectiveness.
type Stats struct {
	Queries uint64
	Batches uint64
}

// MeanBatchSize is queries per dispatched batch.
func (s Stats) MeanBatchSize() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Queries) / float64(s.Batches)
}

// Stats returns a snapshot of the counters summed over stripes.
func (b *Batcher) Stats() Stats {
	var st Stats
	for i := range b.stripes {
		s := &b.stripes[i]
		s.mu.Lock()
		st.Queries += s.queries
		st.Batches += s.batches
		s.mu.Unlock()
	}
	return st
}

// Close flushes any partial batches, waits for in-flight batches, and
// rejects further queries.
func (b *Batcher) Close() error {
	alreadyClosed := true
	for i := range b.stripes {
		s := &b.stripes[i]
		s.mu.Lock()
		if !s.closed {
			alreadyClosed = false
			s.closed = true
			b.flushLocked(s)
		}
		s.mu.Unlock()
	}
	if alreadyClosed {
		return ErrClosed
	}
	b.flushWG.Wait()
	return nil
}
