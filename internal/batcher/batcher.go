// Package batcher aggregates single fingerprint queries into batches.
//
// The paper's web front-end "aggregates fingerprints from clients and sends
// them as a batch to hybrid nodes" (§III.A), and the evaluation (§IV.B)
// shows batch mode is worth an order of magnitude of throughput at the cost
// of queueing latency — the tradeoff this package's MaxBatch/MaxDelay knobs
// expose (batch sizes 1/128/2048 in Figure 5).
package batcher

import (
	"errors"
	"sync"
	"time"

	"shhc/internal/core"
	"shhc/internal/fingerprint"
)

// Func executes one aggregated batch, returning results in input order.
// A core.Cluster's BatchLookupOrInsert is the usual implementation.
type Func func(pairs []core.Pair) ([]core.LookupResult, error)

// Config tunes the aggregation window.
type Config struct {
	// MaxBatch flushes when this many queries are pending. Default 128.
	MaxBatch int
	// MaxDelay flushes a non-empty partial batch after this long,
	// bounding the latency a query can spend queued. Default 2ms.
	MaxDelay time.Duration
}

func (c *Config) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 128
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
}

// ErrClosed is returned for queries submitted after Close.
var ErrClosed = errors.New("batcher: closed")

type waiter struct {
	pair core.Pair
	ch   chan outcome
}

type outcome struct {
	res core.LookupResult
	err error
}

// Batcher coalesces concurrent LookupOrInsert calls into batches.
// It is safe for concurrent use.
type Batcher struct {
	do  Func
	cfg Config

	mu      sync.Mutex
	pending []waiter
	timer   *time.Timer
	closed  bool
	flushWG sync.WaitGroup

	batches uint64
	queries uint64
}

// New creates a batcher around the given batch executor.
func New(do Func, cfg Config) *Batcher {
	cfg.fill()
	return &Batcher{do: do, cfg: cfg}
}

// LookupOrInsert enqueues one query and blocks until its batch completes.
func (b *Batcher) LookupOrInsert(fp fingerprint.Fingerprint, val core.Value) (core.LookupResult, error) {
	w := waiter{pair: core.Pair{FP: fp, Val: val}, ch: make(chan outcome, 1)}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return core.LookupResult{}, ErrClosed
	}
	b.pending = append(b.pending, w)
	b.queries++
	if len(b.pending) >= b.cfg.MaxBatch {
		b.flushLocked()
	} else if b.timer == nil {
		b.timer = time.AfterFunc(b.cfg.MaxDelay, b.flushTimer)
	}
	b.mu.Unlock()

	out := <-w.ch
	return out.res, out.err
}

func (b *Batcher) flushTimer() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.flushLocked()
}

// flushLocked dispatches the pending batch. Caller holds b.mu.
func (b *Batcher) flushLocked() {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	if len(b.pending) == 0 {
		return
	}
	batch := b.pending
	b.pending = nil
	b.batches++

	b.flushWG.Add(1)
	go func() {
		defer b.flushWG.Done()
		pairs := make([]core.Pair, len(batch))
		for i, w := range batch {
			pairs[i] = w.pair
		}
		results, err := b.do(pairs)
		if err == nil && len(results) != len(batch) {
			err = errors.New("batcher: executor returned wrong result count")
		}
		for i, w := range batch {
			if err != nil {
				w.ch <- outcome{err: err}
			} else {
				w.ch <- outcome{res: results[i]}
			}
		}
	}()
}

// Stats reports aggregation effectiveness.
type Stats struct {
	Queries uint64
	Batches uint64
}

// MeanBatchSize is queries per dispatched batch.
func (s Stats) MeanBatchSize() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Queries) / float64(s.Batches)
}

// Stats returns a snapshot of the counters.
func (b *Batcher) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{Queries: b.queries, Batches: b.batches}
}

// Close flushes any partial batch, waits for in-flight batches, and
// rejects further queries.
func (b *Batcher) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.closed = true
	b.flushLocked()
	b.mu.Unlock()

	b.flushWG.Wait()
	return nil
}
