package batcher

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shhc/internal/core"
	"shhc/internal/fingerprint"
)

func fp(i uint64) fingerprint.Fingerprint { return fingerprint.FromUint64(i) }

// echoExec answers every pair with Exists=false and Value=pair value,
// recording batch sizes.
type echoExec struct {
	mu     sync.Mutex
	sizes  []int
	delay  time.Duration
	failOn func([]core.Pair) error
}

func (e *echoExec) do(pairs []core.Pair) ([]core.LookupResult, error) {
	e.mu.Lock()
	e.sizes = append(e.sizes, len(pairs))
	e.mu.Unlock()
	if e.delay > 0 {
		time.Sleep(e.delay)
	}
	if e.failOn != nil {
		if err := e.failOn(pairs); err != nil {
			return nil, err
		}
	}
	out := make([]core.LookupResult, len(pairs))
	for i, p := range pairs {
		out[i] = core.LookupResult{Exists: false, Value: p.Val, Source: core.SourceNew}
	}
	return out, nil
}

func (e *echoExec) batchSizes() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]int(nil), e.sizes...)
}

func TestFlushOnMaxBatch(t *testing.T) {
	exec := &echoExec{}
	b := New(exec.do, Config{MaxBatch: 4, MaxDelay: time.Hour})
	defer b.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := b.LookupOrInsert(fp(uint64(i)), core.Value(i))
			if err != nil {
				t.Errorf("LookupOrInsert: %v", err)
				return
			}
			if r.Value != core.Value(i) {
				t.Errorf("result value = %d, want %d", r.Value, i)
			}
		}(i)
	}
	wg.Wait()

	sizes := exec.batchSizes()
	if len(sizes) != 1 || sizes[0] != 4 {
		t.Fatalf("batch sizes = %v, want [4]", sizes)
	}
}

func TestFlushOnDelay(t *testing.T) {
	exec := &echoExec{}
	b := New(exec.do, Config{MaxBatch: 1000, MaxDelay: 5 * time.Millisecond})
	defer b.Close()

	start := time.Now()
	if _, err := b.LookupOrInsert(fp(1), 1); err != nil {
		t.Fatalf("LookupOrInsert: %v", err)
	}
	elapsed := time.Since(start)
	if elapsed < 4*time.Millisecond {
		t.Fatalf("flushed after %v, before the delay window", elapsed)
	}
	sizes := exec.batchSizes()
	if len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("batch sizes = %v, want [1]", sizes)
	}
}

func TestResultsRouteToCorrectWaiters(t *testing.T) {
	exec := &echoExec{}
	b := New(exec.do, Config{MaxBatch: 64, MaxDelay: time.Millisecond})
	defer b.Close()

	const n = 512
	var wg sync.WaitGroup
	var wrong atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := b.LookupOrInsert(fp(uint64(i)), core.Value(i))
			if err != nil || r.Value != core.Value(i) {
				wrong.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if wrong.Load() != 0 {
		t.Fatalf("%d waiters got wrong results", wrong.Load())
	}
	st := b.Stats()
	if st.Queries != n {
		t.Fatalf("Queries = %d, want %d", st.Queries, n)
	}
	if st.MeanBatchSize() < 2 {
		t.Fatalf("MeanBatchSize = %v; aggregation did not happen", st.MeanBatchSize())
	}
}

func TestExecutorErrorPropagates(t *testing.T) {
	wantErr := errors.New("node down")
	exec := &echoExec{failOn: func([]core.Pair) error { return wantErr }}
	b := New(exec.do, Config{MaxBatch: 2, MaxDelay: time.Millisecond})
	defer b.Close()

	if _, err := b.LookupOrInsert(fp(1), 1); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func TestWrongResultCountIsError(t *testing.T) {
	bad := func(pairs []core.Pair) ([]core.LookupResult, error) {
		return make([]core.LookupResult, len(pairs)+1), nil
	}
	b := New(bad, Config{MaxBatch: 1, MaxDelay: time.Millisecond})
	defer b.Close()
	if _, err := b.LookupOrInsert(fp(1), 1); err == nil {
		t.Fatal("mismatched result count not reported")
	}
}

func TestCloseFlushesPartialBatch(t *testing.T) {
	exec := &echoExec{}
	b := New(exec.do, Config{MaxBatch: 1000, MaxDelay: time.Hour})

	done := make(chan error, 1)
	go func() {
		_, err := b.LookupOrInsert(fp(1), 1)
		done <- err
	}()
	// Wait until the query is enqueued.
	for {
		if b.Stats().Queries == 1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("query stranded by Close: %v", err)
	}
	if err := b.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close = %v, want ErrClosed", err)
	}
	if _, err := b.LookupOrInsert(fp(2), 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close query = %v, want ErrClosed", err)
	}
}

func TestDelayBoundsLatency(t *testing.T) {
	// A lone query must not wait for MaxBatch companions.
	exec := &echoExec{}
	b := New(exec.do, Config{MaxBatch: 1 << 20, MaxDelay: 3 * time.Millisecond})
	defer b.Close()
	start := time.Now()
	if _, err := b.LookupOrInsert(fp(1), 1); err != nil {
		t.Fatalf("LookupOrInsert: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("lone query took %v; delay flush broken", elapsed)
	}
}

func TestStripedBatcherRoutesAndAggregates(t *testing.T) {
	exec := &echoExec{}
	b := New(exec.do, Config{MaxBatch: 8, MaxDelay: 5 * time.Millisecond, Stripes: 4})
	defer b.Close()
	if b.Stripes() != 4 {
		t.Fatalf("Stripes() = %d, want 4", b.Stripes())
	}

	const queries = 256
	var wg sync.WaitGroup
	var wrong atomic.Uint64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < queries/8; i++ {
				key := uint64(g*(queries/8) + i)
				res, err := b.LookupOrInsert(fp(key), core.Value(key))
				if err != nil {
					t.Errorf("LookupOrInsert: %v", err)
					return
				}
				if res.Value != core.Value(key) {
					wrong.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if w := wrong.Load(); w > 0 {
		t.Fatalf("%d queries answered with another query's result", w)
	}
	st := b.Stats()
	if st.Queries != queries {
		t.Fatalf("Queries = %d, want %d", st.Queries, queries)
	}
	if st.Batches == 0 || st.Batches > queries {
		t.Fatalf("Batches = %d, want within (0, %d]", st.Batches, queries)
	}
}

func TestStripedBatcherCloseRejectsAndDrains(t *testing.T) {
	exec := &echoExec{delay: time.Millisecond}
	b := New(exec.do, Config{MaxBatch: 100, MaxDelay: time.Hour, Stripes: 4})

	var wg sync.WaitGroup
	for i := uint64(0); i < 16; i++ {
		wg.Add(1)
		go func(i uint64) {
			defer wg.Done()
			// Either outcome is valid depending on Close timing; what must
			// hold is that no call hangs and post-Close calls error.
			_, _ = b.LookupOrInsert(fp(i), 0)
		}(i)
	}
	time.Sleep(2 * time.Millisecond)
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	if _, err := b.LookupOrInsert(fp(99), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close error = %v, want ErrClosed", err)
	}
	if err := b.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}
