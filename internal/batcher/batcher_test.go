package batcher

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shhc/internal/core"
	"shhc/internal/fingerprint"
)

func fp(i uint64) fingerprint.Fingerprint { return fingerprint.FromUint64(i) }

// echoExec answers every pair with Exists=false and Value=pair value,
// recording batch sizes.
type echoExec struct {
	mu     sync.Mutex
	sizes  []int
	delay  time.Duration
	failOn func([]core.Pair) error
}

func (e *echoExec) do(_ context.Context, pairs []core.Pair) ([]core.LookupResult, error) {
	e.mu.Lock()
	e.sizes = append(e.sizes, len(pairs))
	e.mu.Unlock()
	if e.delay > 0 {
		time.Sleep(e.delay)
	}
	if e.failOn != nil {
		if err := e.failOn(pairs); err != nil {
			return nil, err
		}
	}
	out := make([]core.LookupResult, len(pairs))
	for i, p := range pairs {
		out[i] = core.LookupResult{Exists: false, Value: p.Val, Source: core.SourceNew}
	}
	return out, nil
}

func (e *echoExec) batchSizes() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]int(nil), e.sizes...)
}

func TestFlushOnMaxBatch(t *testing.T) {
	exec := &echoExec{}
	b := New(exec.do, Config{MaxBatch: 4, MaxDelay: time.Hour})
	defer b.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := b.LookupOrInsert(context.Background(), fp(uint64(i)), core.Value(i))
			if err != nil {
				t.Errorf("LookupOrInsert: %v", err)
				return
			}
			if r.Value != core.Value(i) {
				t.Errorf("result value = %d, want %d", r.Value, i)
			}
		}(i)
	}
	wg.Wait()

	sizes := exec.batchSizes()
	if len(sizes) != 1 || sizes[0] != 4 {
		t.Fatalf("batch sizes = %v, want [4]", sizes)
	}
}

func TestFlushOnDelay(t *testing.T) {
	exec := &echoExec{}
	b := New(exec.do, Config{MaxBatch: 1000, MaxDelay: 5 * time.Millisecond})
	defer b.Close()

	start := time.Now()
	if _, err := b.LookupOrInsert(context.Background(), fp(1), 1); err != nil {
		t.Fatalf("LookupOrInsert: %v", err)
	}
	elapsed := time.Since(start)
	if elapsed < 4*time.Millisecond {
		t.Fatalf("flushed after %v, before the delay window", elapsed)
	}
	sizes := exec.batchSizes()
	if len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("batch sizes = %v, want [1]", sizes)
	}
}

func TestResultsRouteToCorrectWaiters(t *testing.T) {
	exec := &echoExec{}
	b := New(exec.do, Config{MaxBatch: 64, MaxDelay: time.Millisecond})
	defer b.Close()

	const n = 512
	var wg sync.WaitGroup
	var wrong atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := b.LookupOrInsert(context.Background(), fp(uint64(i)), core.Value(i))
			if err != nil || r.Value != core.Value(i) {
				wrong.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if wrong.Load() != 0 {
		t.Fatalf("%d waiters got wrong results", wrong.Load())
	}
	st := b.Stats()
	if st.Queries != n {
		t.Fatalf("Queries = %d, want %d", st.Queries, n)
	}
	if st.MeanBatchSize() < 2 {
		t.Fatalf("MeanBatchSize = %v; aggregation did not happen", st.MeanBatchSize())
	}
}

func TestExecutorErrorPropagates(t *testing.T) {
	wantErr := errors.New("node down")
	exec := &echoExec{failOn: func([]core.Pair) error { return wantErr }}
	b := New(exec.do, Config{MaxBatch: 2, MaxDelay: time.Millisecond})
	defer b.Close()

	if _, err := b.LookupOrInsert(context.Background(), fp(1), 1); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func TestWrongResultCountIsError(t *testing.T) {
	bad := func(_ context.Context, pairs []core.Pair) ([]core.LookupResult, error) {
		return make([]core.LookupResult, len(pairs)+1), nil
	}
	b := New(bad, Config{MaxBatch: 1, MaxDelay: time.Millisecond})
	defer b.Close()
	if _, err := b.LookupOrInsert(context.Background(), fp(1), 1); err == nil {
		t.Fatal("mismatched result count not reported")
	}
}

func TestCloseFlushesPartialBatch(t *testing.T) {
	exec := &echoExec{}
	b := New(exec.do, Config{MaxBatch: 1000, MaxDelay: time.Hour})

	done := make(chan error, 1)
	go func() {
		_, err := b.LookupOrInsert(context.Background(), fp(1), 1)
		done <- err
	}()
	// Wait until the query is enqueued.
	for {
		if b.Stats().Queries == 1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("query stranded by Close: %v", err)
	}
	if err := b.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close = %v, want ErrClosed", err)
	}
	if _, err := b.LookupOrInsert(context.Background(), fp(2), 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close query = %v, want ErrClosed", err)
	}
}

func TestDelayBoundsLatency(t *testing.T) {
	// A lone query must not wait for MaxBatch companions.
	exec := &echoExec{}
	b := New(exec.do, Config{MaxBatch: 1 << 20, MaxDelay: 3 * time.Millisecond})
	defer b.Close()
	start := time.Now()
	if _, err := b.LookupOrInsert(context.Background(), fp(1), 1); err != nil {
		t.Fatalf("LookupOrInsert: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("lone query took %v; delay flush broken", elapsed)
	}
}

func TestStripedBatcherRoutesAndAggregates(t *testing.T) {
	exec := &echoExec{}
	b := New(exec.do, Config{MaxBatch: 8, MaxDelay: 5 * time.Millisecond, Stripes: 4})
	defer b.Close()
	if b.Stripes() != 4 {
		t.Fatalf("Stripes() = %d, want 4", b.Stripes())
	}

	const queries = 256
	var wg sync.WaitGroup
	var wrong atomic.Uint64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < queries/8; i++ {
				key := uint64(g*(queries/8) + i)
				res, err := b.LookupOrInsert(context.Background(), fp(key), core.Value(key))
				if err != nil {
					t.Errorf("LookupOrInsert: %v", err)
					return
				}
				if res.Value != core.Value(key) {
					wrong.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if w := wrong.Load(); w > 0 {
		t.Fatalf("%d queries answered with another query's result", w)
	}
	st := b.Stats()
	if st.Queries != queries {
		t.Fatalf("Queries = %d, want %d", st.Queries, queries)
	}
	if st.Batches == 0 || st.Batches > queries {
		t.Fatalf("Batches = %d, want within (0, %d]", st.Batches, queries)
	}
}

func TestStripedBatcherCloseRejectsAndDrains(t *testing.T) {
	exec := &echoExec{delay: time.Millisecond}
	b := New(exec.do, Config{MaxBatch: 100, MaxDelay: time.Hour, Stripes: 4})

	var wg sync.WaitGroup
	for i := uint64(0); i < 16; i++ {
		wg.Add(1)
		go func(i uint64) {
			defer wg.Done()
			// Either outcome is valid depending on Close timing; what must
			// hold is that no call hangs and post-Close calls error.
			_, _ = b.LookupOrInsert(context.Background(), fp(i), 0)
		}(i)
	}
	time.Sleep(2 * time.Millisecond)
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	if _, err := b.LookupOrInsert(context.Background(), fp(99), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close error = %v, want ErrClosed", err)
	}
	if err := b.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}

// TestCloseNeverDropsQueries hammers LookupOrInsert from many goroutines
// while Close runs in the middle: every query must either be flushed
// through the executor (and get its result) or be rejected with ErrClosed.
// A query that hangs or vanishes fails the test; executed vs. answered
// accounting must agree exactly.
func TestCloseNeverDropsQueries(t *testing.T) {
	var executed atomic.Int64
	b := New(func(_ context.Context, pairs []core.Pair) ([]core.LookupResult, error) {
		executed.Add(int64(len(pairs)))
		out := make([]core.LookupResult, len(pairs))
		for i := range out {
			out[i] = core.LookupResult{Exists: true, Value: pairs[i].Val}
		}
		return out, nil
	}, Config{MaxBatch: 8, MaxDelay: 100 * time.Microsecond, Stripes: 4})

	const goroutines = 8
	var (
		wg       sync.WaitGroup
		answered atomic.Int64
		rejected atomic.Int64
	)
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				key := uint64(g*1_000_000 + i)
				res, err := b.LookupOrInsert(context.Background(), fingerprint.FromUint64(key), core.Value(key))
				if errors.Is(err, ErrClosed) {
					rejected.Add(1)
					return
				}
				if err != nil {
					t.Errorf("goroutine %d query %d: %v", g, i, err)
					return
				}
				if res.Value != core.Value(key) {
					t.Errorf("goroutine %d query %d: value %d, want %d (crossed results)", g, i, res.Value, key)
					return
				}
				answered.Add(1)
			}
		}(g)
	}
	close(start)
	time.Sleep(5 * time.Millisecond) // let the enqueue/flush machinery heat up
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if got, want := executed.Load(), answered.Load(); got != want {
		t.Fatalf("executor processed %d queries, callers got %d answers: %d dropped or duplicated", got, want, want-got)
	}
	if rejected.Load() != goroutines {
		t.Fatalf("%d goroutines saw ErrClosed, want all %d", rejected.Load(), goroutines)
	}
	if answered.Load() == 0 {
		t.Fatal("no query was answered before Close; the race window was never exercised")
	}
}

// TestEnqueueRacingCloseIsFlushedOrRejected pins the exact window the
// audit was about: a pair enqueued just as Close runs. Repeat the race
// many times; in every round the single in-flight query must resolve.
func TestEnqueueRacingCloseIsFlushedOrRejected(t *testing.T) {
	for round := 0; round < 200; round++ {
		var executed atomic.Int64
		b := New(func(_ context.Context, pairs []core.Pair) ([]core.LookupResult, error) {
			executed.Add(int64(len(pairs)))
			return make([]core.LookupResult, len(pairs)), nil
		}, Config{MaxBatch: 64, MaxDelay: time.Hour}) // only Close can flush

		type outcome struct {
			err error
		}
		res := make(chan outcome, 1)
		go func() {
			_, err := b.LookupOrInsert(context.Background(), fingerprint.FromUint64(uint64(round)), 1)
			res <- outcome{err: err}
		}()
		b.Close()

		select {
		case out := <-res:
			if out.err == nil && executed.Load() != 1 {
				t.Fatalf("round %d: query answered but executor saw %d queries", round, executed.Load())
			}
			if out.err != nil && !errors.Is(out.err, ErrClosed) {
				t.Fatalf("round %d: unexpected error %v", round, out.err)
			}
			if out.err != nil && executed.Load() != 0 {
				t.Fatalf("round %d: query rejected with ErrClosed but executor still saw it", round)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d: query neither flushed nor rejected (hung)", round)
		}
	}
}

// TestStaleTimerDoesNotFlushYoungerBatch simulates a MaxDelay timer that
// fired for a batch already flushed by MaxBatch: when its callback finally
// runs, a younger partial batch is pending, and the stale callback must
// leave it alone (its own MaxDelay has not elapsed).
func TestStaleTimerDoesNotFlushYoungerBatch(t *testing.T) {
	var flushes atomic.Int64
	b := New(func(_ context.Context, pairs []core.Pair) ([]core.LookupResult, error) {
		flushes.Add(1)
		return make([]core.LookupResult, len(pairs)), nil
	}, Config{MaxBatch: 2, MaxDelay: time.Hour})
	s := &b.stripes[0]

	done := make(chan struct{})
	go func() { // first pair arms the gen-0 timer
		b.LookupOrInsert(context.Background(), fingerprint.FromUint64(1), 1)
		done <- struct{}{}
	}()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.pending) == 1
	})
	staleGen := func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.timerGen
	}()
	go func() { // second pair reaches MaxBatch: flushes, invalidating gen 0
		b.LookupOrInsert(context.Background(), fingerprint.FromUint64(2), 2)
		done <- struct{}{}
	}()
	<-done
	<-done
	if flushes.Load() != 1 {
		t.Fatalf("MaxBatch flush count = %d, want 1", flushes.Load())
	}

	// Third pair: a younger partial batch with an hour of delay budget.
	go func() {
		b.LookupOrInsert(context.Background(), fingerprint.FromUint64(3), 3)
		done <- struct{}{}
	}()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.pending) == 1
	})

	// The stale gen-0 callback finally runs: it must not flush.
	b.flushTimer(s, staleGen)
	s.mu.Lock()
	pending := len(s.pending)
	s.mu.Unlock()
	if pending != 1 || flushes.Load() != 1 {
		t.Fatalf("stale timer flushed the younger batch (pending=%d, flushes=%d)", pending, flushes.Load())
	}

	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	<-done
	if flushes.Load() != 2 {
		t.Fatalf("final flush count = %d, want 2 (MaxBatch + Close)", flushes.Load())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
