package batcher

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shhc/internal/core"
	"shhc/internal/fingerprint"
)

// TestCancelledCallerDoesNotStrandBatchMates is the regression test for
// the abandoned-slot bug class: a caller that gives up mid-batch must get
// ctx.Err() promptly, while its batch-mates — flushed in the same batch —
// still receive their results.
func TestCancelledCallerDoesNotStrandBatchMates(t *testing.T) {
	gate := make(chan struct{})
	var executed atomic.Int64
	b := New(func(_ context.Context, pairs []core.Pair) ([]core.LookupResult, error) {
		<-gate // hold the batch in flight while the caller cancels
		executed.Add(int64(len(pairs)))
		out := make([]core.LookupResult, len(pairs))
		for i, p := range pairs {
			out[i] = core.LookupResult{Exists: true, Value: p.Val, Source: core.SourceStore}
		}
		return out, nil
	}, Config{MaxBatch: 2, MaxDelay: time.Hour})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer b.Close()  // after the gate opens, so Close's drain cannot hang
	defer openGate() // runs first (LIFO)

	ctx, cancel := context.WithCancel(context.Background())
	abandoned := make(chan error, 1)
	go func() {
		_, err := b.LookupOrInsert(ctx, fingerprint.FromUint64(1), 1)
		abandoned <- err
	}()
	mate := make(chan core.LookupResult, 1)
	go func() {
		// Second query completes the MaxBatch=2 batch and triggers the
		// flush; it waits under a background context.
		r, err := b.LookupOrInsert(context.Background(), fingerprint.FromUint64(2), 2)
		if err != nil {
			t.Errorf("batch-mate: %v", err)
		}
		mate <- r
	}()

	// Wait for both queries to be in the dispatched batch.
	waitFor(t, func() bool { return b.Stats().Batches == 1 })

	// Cancel the first caller while the executor is gated: it must return
	// immediately, well before the batch completes.
	cancel()
	select {
	case err := <-abandoned:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("abandoned caller got %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled caller stayed blocked on its flushed batch")
	}

	// Release the batch: the surviving batch-mate must get its result.
	openGate()
	select {
	case r := <-mate:
		if !r.Exists || r.Value != 2 {
			t.Fatalf("batch-mate result = %+v, want Exists=true Value=2", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("batch-mate never got its result after a mate abandoned the batch")
	}
	if executed.Load() != 2 {
		t.Fatalf("executor saw %d queries, want 2 (abandonment must not shrink the batch)", executed.Load())
	}
}

// TestCancelledBeforeEnqueue: a context dead on arrival is rejected
// without ever occupying a batch slot.
func TestCancelledBeforeEnqueue(t *testing.T) {
	b := New(func(_ context.Context, pairs []core.Pair) ([]core.LookupResult, error) {
		return make([]core.LookupResult, len(pairs)), nil
	}, Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.LookupOrInsert(ctx, fingerprint.FromUint64(1), 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-on-arrival query = %v, want context.Canceled", err)
	}
	if q := b.Stats().Queries; q != 0 {
		t.Fatalf("dead-on-arrival query occupied a slot (Queries=%d)", q)
	}
}
