package wire

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"time"
)

// FuzzDecodeFrame feeds arbitrary bytes to the frame reader at every
// protocol layout and to every payload decoder. Nothing may panic; a
// frame that decodes must re-encode and decode back to itself (the codec
// is its own round-trip oracle).
func FuzzDecodeFrame(f *testing.F) {
	// Seeds: one well-formed frame per layout, plus payload shapes.
	var v0, v1, v5 bytes.Buffer
	WriteFrameV(&v0, Frame{Type: TypeLookup, ID: 7, Payload: EncodeFP([20]byte{1, 2})}, Version0)
	WriteFrameV(&v1, Frame{Type: TypeBatch, ID: 9, Timeout: time.Second, Payload: EncodeBatch([]PairPayload{{Val: 3}})}, Version1)
	WriteFrameV(&v5, Frame{Type: TypeWindowUpdate, ID: 3, Stream: 12, Payload: AppendWindowUpdate(nil, 4096)}, Version5)
	f.Add(v0.Bytes())
	f.Add(v1.Bytes())
	f.Add(v5.Bytes())
	f.Add(EncodeStats(StatsPayload{ID: "node", Lookups: 1}))
	f.Add(EncodeError("boom"))
	f.Add(EncodeErrorCoded(ErrorPayload{Code: CodeNotOwner, Msg: "moved", OwnerID: "n2", OwnerAddr: "127.0.0.1:9"}))
	f.Add([]byte{0, 0, 0, 2, 1})    // length shorter than header
	f.Add([]byte{0xff, 0xff, 0xff}) // truncated length prefix

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, version := range []int{Version0, Version1, Version5} {
			fr, err := ReadFrameV(bytes.NewReader(data), version)
			if err != nil {
				continue
			}
			var buf bytes.Buffer
			if err := WriteFrameV(&buf, fr, version); err != nil {
				t.Fatalf("v%d: re-encode of decoded frame failed: %v", version, err)
			}
			fr2, err := ReadFrameV(&buf, version)
			if err != nil {
				t.Fatalf("v%d: re-decode failed: %v", version, err)
			}
			if fr2.Type != fr.Type || fr2.ID != fr.ID || fr2.Timeout != fr.Timeout || fr2.Stream != fr.Stream || !bytes.Equal(fr2.Payload, fr.Payload) {
				t.Fatalf("v%d: round trip mutated frame: %+v -> %+v", version, fr, fr2)
			}
		}
		// Payload decoders must never panic on arbitrary input.
		DecodeHello(data)
		DecodePair(data)
		DecodeFP(data)
		DecodeBatch(data)
		DecodeResult(data)
		DecodeBatchResult(data)
		DecodeStats(data)
		DecodeError(data)
		DecodeErrorPayload(data)
		DecodeWindowUpdate(data)
	})
}

// FuzzMuxControl focuses the fuzzer on the protocol-5 control payloads —
// coded errors, window updates, the extended hello. None may panic on
// arbitrary bytes; anything that decodes must survive a re-encode/decode
// round trip.
func FuzzMuxControl(f *testing.F) {
	f.Add(EncodeErrorCoded(ErrorPayload{Code: CodeNotOwner, Msg: "moved", OwnerID: "n2", OwnerAddr: "127.0.0.1:9"}))
	f.Add(EncodeErrorCoded(ErrorPayload{Code: CodeDeadline, Msg: "context deadline exceeded"}))
	f.Add(EncodeError("legacy error"))
	f.Add(AppendWindowUpdate(nil, 1<<18))
	f.Add(AppendHelloWindow(nil, Version5, DefaultWindow))
	f.Add(EncodeHello(Version1))
	f.Add([]byte{0xff, 0xff, 4}) // sentinel + code, truncated fields

	f.Fuzz(func(t *testing.T, data []byte) {
		if e, err := DecodeErrorPayload(data); err == nil &&
			len(e.Msg) <= 65534 && len(e.OwnerID) <= 65534 && len(e.OwnerAddr) <= 65534 {
			// (the encoder truncates fields past 65534 bytes, which a
			// legacy 65535-byte message would trip — not a round-trip bug)
			e2, err := DecodeErrorPayload(EncodeErrorCoded(e))
			if err != nil {
				t.Fatalf("re-decode of coded error failed: %v", err)
			}
			if e2 != e {
				t.Fatalf("coded error round trip mutated payload: %+v -> %+v", e, e2)
			}
		}
		if n, err := DecodeWindowUpdate(data); err == nil {
			m, err := DecodeWindowUpdate(AppendWindowUpdate(nil, n))
			if err != nil || m != n {
				t.Fatalf("window update round trip: %d -> %d, %v", n, m, err)
			}
		}
		if v, err := DecodeHello(data); err == nil {
			win := HelloWindow(data)
			rt := AppendHelloWindow(nil, v, win)
			v2, err := DecodeHello(rt)
			if err != nil || v2 != v || HelloWindow(rt) != win {
				t.Fatalf("hello round trip: (%d,%d) -> (%d,%d), %v", v, win, v2, HelloWindow(rt), err)
			}
		}
	})
}

// FuzzStatsRoundTrip encodes a fuzzed StatsPayload at every protocol
// version and asserts the decoder recovers exactly the fields that
// version carries, with the rest zero.
func FuzzStatsRoundTrip(f *testing.F) {
	f.Add("node-a", []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add("", []byte{})
	f.Add(strings.Repeat("x", 300), bytes.Repeat([]byte{0xab}, 400))

	f.Fuzz(func(t *testing.T, id string, data []byte) {
		var s StatsPayload
		s.ID = id
		next := func() uint64 {
			if len(data) == 0 {
				return 0
			}
			var b [8]byte
			n := copy(b[:], data)
			data = data[n:]
			return binary.BigEndian.Uint64(b[:])
		}
		for _, c := range s.counters() {
			*c = next()
		}
		for _, sum := range s.summaries() {
			for _, field := range sum.fields() {
				*field = next()
			}
		}

		for _, version := range []int{Version0, Version1, Version2, Version3, Version4, Version5} {
			enc := EncodeStatsV(s, version)
			dec, err := DecodeStats(enc)
			if err != nil {
				t.Fatalf("v%d: DecodeStats of own encoding failed: %v", version, err)
			}
			wantID := id
			if len(wantID) > 65535 {
				wantID = wantID[:65535]
			}
			if dec.ID != wantID {
				t.Fatalf("v%d: id %q -> %q", version, wantID, dec.ID)
			}
			nc, ns := statsLayout(version)
			for i, c := range s.counters() {
				got := *dec.counters()[i]
				want := *c
				if i >= nc {
					want = 0 // not carried at this version
				}
				if got != want {
					t.Fatalf("v%d: counter %d = %d, want %d", version, i, got, want)
				}
			}
			for i, sum := range s.summaries() {
				for j, field := range sum.fields() {
					got := *dec.summaries()[i].fields()[j]
					want := *field
					if i >= ns {
						want = 0
					}
					if got != want {
						t.Fatalf("v%d: summary %d field %d = %d, want %d", version, i, j, got, want)
					}
				}
			}
		}
	})
}

// TestMalformedFrames is the deterministic companion to the fuzzers: a
// table of hostile inputs the codec must reject with an error — never a
// panic, never a garbage frame.
func TestMalformedFrames(t *testing.T) {
	frame := func(version int, f Frame) []byte {
		var buf bytes.Buffer
		if err := WriteFrameV(&buf, f, version); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	good := frame(Version1, Frame{Type: TypeLookup, ID: 1, Payload: EncodeFP([20]byte{9})})

	cases := []struct {
		name    string
		data    []byte
		version int
	}{
		{"empty", nil, Version0},
		{"truncated length prefix", []byte{0, 0, 1}, Version0},
		{"length below v0 header", []byte{0, 0, 0, 8, 1, 2, 3, 4, 5, 6, 7, 8}, Version0},
		{"length below v1 header", frame(Version0, Frame{Type: TypePing, ID: 1}), Version1},
		{"length above MaxFrameSize", []byte{0xff, 0xff, 0xff, 0xff}, Version0},
		{"body shorter than length", good[:len(good)-3], Version1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadFrameV(bytes.NewReader(tc.data), tc.version); err == nil {
				t.Fatalf("ReadFrameV accepted malformed input")
			}
		})
	}

	payloadCases := []struct {
		name   string
		decode func([]byte) error
		data   []byte
	}{
		{"hello wrong size", func(b []byte) error { _, err := DecodeHello(b); return err }, []byte{1, 2, 3}},
		{"pair short", func(b []byte) error { _, err := DecodePair(b); return err }, make([]byte, pairSize-1)},
		{"fp long", func(b []byte) error { _, err := DecodeFP(b); return err }, make([]byte, 21)},
		{"batch count lies", func(b []byte) error { _, err := DecodeBatch(b); return err },
			append([]byte{0, 0, 0, 9}, make([]byte, pairSize)...)},
		{"batch missing count", func(b []byte) error { _, err := DecodeBatch(b); return err }, []byte{1}},
		{"result short", func(b []byte) error { _, err := DecodeResult(b); return err }, make([]byte, resultSize-1)},
		{"batch result count lies", func(b []byte) error { _, err := DecodeBatchResult(b); return err },
			append([]byte{0, 0, 0, 2}, make([]byte, resultSize)...)},
		{"stats id length lies", func(b []byte) error { _, err := DecodeStats(b); return err },
			[]byte{0xff, 0xff, 1, 2, 3}},
		{"stats truncated counters", func(b []byte) error { _, err := DecodeStats(b); return err },
			EncodeStats(StatsPayload{ID: "n"})[:40]},
		{"error length lies", func(b []byte) error { _, err := DecodeError(b); return err },
			[]byte{0, 10, 'h', 'i'}},
		{"window update short", func(b []byte) error { _, err := DecodeWindowUpdate(b); return err },
			[]byte{1, 2, 3}},
		{"coded error truncated owner", func(b []byte) error { _, err := DecodeErrorPayload(b); return err },
			EncodeErrorCoded(ErrorPayload{Code: CodeNotOwner, OwnerID: "n2", OwnerAddr: "a:1"})[:9]},
		{"coded error trailing bytes", func(b []byte) error { _, err := DecodeErrorPayload(b); return err },
			append(EncodeErrorCoded(ErrorPayload{Code: CodeInternal, Msg: "x"}), 0)},
	}
	for _, tc := range payloadCases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.decode(tc.data); err == nil {
				t.Fatalf("decoder accepted malformed payload")
			}
		})
	}
}

// TestStatsVersionSkewInterop pins the cross-version stats contract
// directly: a Version2 encoding (no recovery counters) decodes on a
// Version3 reader with recovery fields zero, and the Version3 encoding
// carries them through.
func TestStatsVersionSkewInterop(t *testing.T) {
	s := StatsPayload{
		ID:                      "skew",
		Lookups:                 11,
		DestageEntries:          22,
		RecoveryJournalReplayed: 33,
		RecoveryStoreTornPages:  44,
	}
	dec2, err := DecodeStats(EncodeStatsV(s, Version2))
	if err != nil {
		t.Fatalf("decode v2: %v", err)
	}
	if dec2.Lookups != 11 || dec2.DestageEntries != 22 {
		t.Fatalf("v2 lost pre-recovery fields: %+v", dec2)
	}
	if dec2.RecoveryJournalReplayed != 0 || dec2.RecoveryStoreTornPages != 0 {
		t.Fatalf("v2 encoding carried recovery fields it should not have: %+v", dec2)
	}
	dec3, err := DecodeStats(EncodeStatsV(s, Version3))
	if err != nil {
		t.Fatalf("decode v3: %v", err)
	}
	if dec3.RecoveryJournalReplayed != 33 || dec3.RecoveryStoreTornPages != 44 {
		t.Fatalf("v3 encoding dropped recovery fields: %+v", dec3)
	}
}
