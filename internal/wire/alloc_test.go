package wire

import (
	"io"
	"testing"

	"shhc/internal/fingerprint"
)

// Zero-allocation pins for the wire hot path. These are the regression
// fences behind the zero-copy rework: an accidental fmt.Sprintf, interface
// boxing, or slice escape on any of these paths fails the suite, not just
// a benchmark chart.

func allocFP(i uint64) [20]byte { return fingerprint.FromUint64(i) }

func TestAllocAppendPair(t *testing.T) {
	buf := make([]byte, 0, 64)
	p := PairPayload{FP: allocFP(7), Val: 42}
	allocs := testing.AllocsPerRun(1000, func() {
		buf = AppendPair(buf[:0], p)
	})
	if allocs != 0 {
		t.Fatalf("AppendPair allocates %v/op into a reused buffer; want 0", allocs)
	}
}

func TestAllocAppendBatch(t *testing.T) {
	pairs := make([]PairPayload, 64)
	for i := range pairs {
		pairs[i] = PairPayload{FP: allocFP(uint64(i)), Val: uint64(i)}
	}
	buf := make([]byte, 0, 4+len(pairs)*pairSize)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = AppendBatch(buf[:0], pairs)
	})
	if allocs != 0 {
		t.Fatalf("AppendBatch allocates %v/op into a reused buffer; want 0", allocs)
	}
}

func TestAllocDecodeResult(t *testing.T) {
	payload := EncodeResult(ResultPayload{Exists: true, Source: 2, Val: 99})
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := DecodeResult(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeResult allocates %v/op; want 0", allocs)
	}
}

func TestAllocGetPutBuf(t *testing.T) {
	// Steady-state pool round-trips must not allocate: the pool stores
	// *[]byte precisely so Put does not box a slice header.
	allocs := testing.AllocsPerRun(1000, func() {
		bp := GetBuf(512)
		*bp = AppendPair((*bp)[:0], PairPayload{FP: allocFP(1), Val: 2})
		PutBuf(bp)
	})
	if allocs != 0 {
		t.Fatalf("GetBuf/Append/PutBuf allocates %v/op at steady state; want 0", allocs)
	}
}

func TestAllocFrameWriterWriteFrame(t *testing.T) {
	fw := NewFrameWriter(io.Discard)
	payload := EncodeResult(ResultPayload{Exists: true, Source: 1, Val: 7})
	f := Frame{Type: TypeResult, ID: 9, Payload: payload}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := fw.WriteFrame(f, MaxVersion); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("FrameWriter.WriteFrame allocates %v/op; want 0", allocs)
	}
}
