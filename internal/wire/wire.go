// Package wire defines SHHC's binary protocol between the web front-end
// (or any client) and the hash nodes.
//
// Frames are length-prefixed so a connection can carry pipelined,
// out-of-order responses, which the batching design of the paper relies on:
//
//	uint32  payload length (excluding this prefix, including type+id)
//	uint8   message type
//	uint64  request id (echoed in the response)
//	uint64  timeout, nanoseconds remaining, 0 = none (protocol >= 1 only)
//	...     type-specific payload
//
// All integers are big-endian. Fingerprints travel as raw 20-byte values.
//
// # Versioning
//
// Version 0 is the original frame layout with no deadline field and no
// Hello/Cancel frames. Version 1 adds:
//
//   - a Hello/HelloAck handshake: the client's first frame is a v0-layout
//     TypeHello carrying its highest supported version; the server answers
//     TypeHelloAck (v0 layout) with the negotiated version, and both sides
//     switch to that version's layout for every later frame. A v0 server
//     answers Hello with TypeError ("unsupported request type"), which a
//     v1 client treats as "peer speaks version 0" — old peers interoperate
//     with no configuration.
//   - a per-request deadline in the frame header, carried as the
//     *relative* time remaining (nanoseconds) rather than an absolute
//     timestamp, so clock skew between client and server cannot shrink
//     or extend it (the same reasoning as gRPC's wire timeouts); the
//     server derives a context.WithTimeout for the handler.
//   - TypeCancel: the ID names an in-flight request to abandon; the server
//     cancels that request's context. Cancel has no response frame (the
//     cancelled request itself answers with an error, or with its result
//     if it won the race).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"shhc/internal/fingerprint"
)

// Type identifies a frame's payload.
type Type uint8

// Request and response frame types.
const (
	// TypeLookup asks whether a fingerprint exists (no insert).
	TypeLookup Type = iota + 1
	// TypeLookupOrInsert runs the Figure 4 flow for one fingerprint.
	TypeLookupOrInsert
	// TypeBatch runs the flow for a batch of fingerprints.
	TypeBatch
	// TypeInsert unconditionally records a fingerprint.
	TypeInsert
	// TypeStats requests node statistics.
	TypeStats
	// TypePing checks liveness.
	TypePing

	// TypeResult answers TypeLookup / TypeLookupOrInsert / TypeInsert.
	TypeResult
	// TypeBatchResult answers TypeBatch.
	TypeBatchResult
	// TypeStatsResult answers TypeStats.
	TypeStatsResult
	// TypePong answers TypePing.
	TypePong
	// TypeError reports a server-side failure for the echoed request id.
	TypeError

	// TypeHello opens version negotiation (payload: highest supported
	// version). Always sent and answered in the version-0 frame layout.
	TypeHello
	// TypeHelloAck answers TypeHello with the negotiated version.
	TypeHelloAck
	// TypeCancel abandons the in-flight request whose id it echoes.
	// No response frame. Protocol >= 1 only.
	TypeCancel

	// TypeRepair carries a replication backfill batch (protocol >= 4).
	// The payload is the same pair batch as TypeBatch and the answer is a
	// TypeBatchResult, but the verb marks the traffic as repair — the
	// receiving node applies it with lookup-or-insert semantics (existing
	// entries keep their stored value) and accounts it in the replication
	// stats block rather than the foreground counters.
	TypeRepair

	// TypeWindowUpdate grants flow-control credit (protocol >= 5): the
	// header's stream field names the stream and the payload carries the
	// number of bytes the receiver has consumed and returns to the
	// sender's window. Control traffic — never itself credit-charged.
	TypeWindowUpdate
)

// Protocol versions. Version 0 is the original deadline-less protocol;
// Version1 adds the deadline header field and the Hello/Cancel frames;
// Version2 keeps the frame layout of Version1 and extends the stats
// payload with the write-back destage counters; Version3 extends it again
// with the crash-recovery counters (journal replay plus the hash table's
// open-time repair pass); Version4 adds the TypeRepair backfill verb and
// the replication counters in the stats payload. Version5 is the
// multiplexed transport: frames gain a 4-byte stream id in the header,
// TypeWindowUpdate carries per-stream credit grants, TypeError payloads
// gain a compact error code (including the NOT_OWNER redirect carrying
// the true owner's id and address), and the stats payload grows the
// transport counters. Old peers negotiate down and receive/send their
// version's layouts (a pre-5 peer runs the legacy single-stream path; a
// pre-4 peer is repaired via plain TypeBatch instead of TypeRepair).
// Version6 keeps Version5's frame layout and extends the stats payload
// with the scalable Bloom filter's shape and accuracy counters (rates
// travel as fixed-point parts-per-billion; see StatsPayload).
const (
	Version0   = 0
	Version1   = 1
	Version2   = 2
	Version3   = 3
	Version4   = 4
	Version5   = 5
	Version6   = 6
	MaxVersion = Version6
)

func (t Type) String() string {
	switch t {
	case TypeLookup:
		return "lookup"
	case TypeLookupOrInsert:
		return "lookup-or-insert"
	case TypeBatch:
		return "batch"
	case TypeInsert:
		return "insert"
	case TypeStats:
		return "stats"
	case TypePing:
		return "ping"
	case TypeResult:
		return "result"
	case TypeBatchResult:
		return "batch-result"
	case TypeStatsResult:
		return "stats-result"
	case TypePong:
		return "pong"
	case TypeError:
		return "error"
	case TypeHello:
		return "hello"
	case TypeHelloAck:
		return "hello-ack"
	case TypeCancel:
		return "cancel"
	case TypeRepair:
		return "repair"
	case TypeWindowUpdate:
		return "window-update"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

const (
	headerSize = 1 + 8 // type + request id (length prefix not included)
	// headerSizeV1 adds the 8-byte timeout field.
	headerSizeV1 = headerSize + 8
	// headerSizeV5 adds the 4-byte stream id. Stream 0 is the legacy
	// single-stream path; nonzero ids name multiplexed logical streams.
	headerSizeV5 = headerSizeV1 + 4

	// MaxFrameSize bounds a frame to keep a misbehaving peer from forcing
	// huge allocations. 64 MiB admits batches of >2M fingerprints.
	MaxFrameSize = 64 << 20

	// pairSize is fingerprint + value on the wire.
	pairSize = fingerprint.Size + 8
	// resultSize is one lookup result on the wire: flags + source + value.
	resultSize = 1 + 1 + 8
)

// Frame errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrShortPayload  = errors.New("wire: payload shorter than its header claims")
)

// Frame is a decoded message envelope.
type Frame struct {
	Type Type
	ID   uint64
	// Timeout is the time remaining until the request's deadline; 0
	// means none. It travels as a relative duration — never an absolute
	// timestamp — so peer clock skew cannot shrink or extend it. Carried
	// on the wire only at protocol version >= 1.
	Timeout time.Duration
	// Stream names the logical stream this frame belongs to. Carried on
	// the wire only at protocol version >= 5; 0 is the legacy
	// single-stream path that pre-5 peers implicitly use.
	Stream  uint32
	Payload []byte
}

// WriteFrame encodes and writes one frame in the version-0 layout.
func WriteFrame(w io.Writer, f Frame) error {
	return WriteFrameV(w, f, Version0)
}

// WriteFrameV encodes and writes one frame in the given protocol
// version's layout.
func WriteFrameV(w io.Writer, f Frame, version int) error {
	hs := headerSizeFor(version)
	n := hs + len(f.Payload)
	if n > MaxFrameSize {
		return ErrFrameTooLarge
	}
	// Stack header: the old per-call make was the hot path's top allocator.
	var hdr [4 + headerSizeV5]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(n))
	hdr[4] = byte(f.Type)
	binary.BigEndian.PutUint64(hdr[5:13], f.ID)
	if version >= Version1 {
		binary.BigEndian.PutUint64(hdr[13:21], uint64(f.Timeout))
	}
	if version >= Version5 {
		binary.BigEndian.PutUint32(hdr[21:25], f.Stream)
	}
	if _, err := w.Write(hdr[:4+hs]); err != nil {
		return fmt.Errorf("wire: write frame header: %w", err)
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return fmt.Errorf("wire: write frame payload: %w", err)
		}
	}
	return nil
}

// ReadFrame reads and decodes one frame in the version-0 layout.
func ReadFrame(r io.Reader) (Frame, error) {
	return ReadFrameV(r, Version0)
}

// ReadFrameV reads and decodes one frame in the given protocol version's
// layout.
func ReadFrameV(r io.Reader, version int) (Frame, error) {
	hs := headerSizeFor(version)
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("wire: read frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrameSize {
		return Frame{}, ErrFrameTooLarge
	}
	if n < uint32(hs) {
		return Frame{}, ErrShortPayload
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, fmt.Errorf("wire: read frame body: %w", err)
	}
	f := Frame{
		Type: Type(body[0]),
		ID:   binary.BigEndian.Uint64(body[1:9]),
	}
	if version >= Version1 {
		f.Timeout = time.Duration(binary.BigEndian.Uint64(body[9:17]))
	}
	if version >= Version5 {
		f.Stream = binary.BigEndian.Uint32(body[17:21])
	}
	f.Payload = body[hs:]
	return f, nil
}

// headerSizeFor returns the frame header size (beyond the length prefix)
// for the given protocol version's layout.
func headerSizeFor(version int) int {
	switch {
	case version >= Version5:
		return headerSizeV5
	case version >= Version1:
		return headerSizeV1
	default:
		return headerSize
	}
}

// EncodeHello encodes a Hello or HelloAck payload: the sender's highest
// supported (or the negotiated) protocol version.
func EncodeHello(version int) []byte {
	return AppendHello(make([]byte, 0, 4), version)
}

// DecodeHello decodes a Hello or HelloAck payload. Both the original
// 4-byte (version only) and the extended 8-byte (version + advertised
// window, protocol >= 5) layouts are accepted.
func DecodeHello(b []byte) (int, error) {
	if len(b) != 4 && len(b) != 8 {
		return 0, fmt.Errorf("wire: hello payload: want 4 or 8 bytes, got %d: %w", len(b), ErrShortPayload)
	}
	return int(binary.BigEndian.Uint32(b)), nil
}

// HelloWindow extracts the advertised per-stream flow-control window from
// an extended Hello/HelloAck payload. Returns 0 — "not advertised, grant
// immediately" — for the original 4-byte layout.
func HelloWindow(b []byte) uint32 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint32(b[4:8])
}

// PairPayload holds one fingerprint plus the value to assign on insert.
type PairPayload struct {
	FP  fingerprint.Fingerprint
	Val uint64
}

// EncodePair encodes a single fingerprint+value payload.
func EncodePair(p PairPayload) []byte {
	return AppendPair(make([]byte, 0, pairSize), p)
}

// DecodePair decodes a single fingerprint+value payload.
func DecodePair(b []byte) (PairPayload, error) {
	if len(b) != pairSize {
		return PairPayload{}, fmt.Errorf("wire: pair payload: want %d bytes, got %d: %w", pairSize, len(b), ErrShortPayload)
	}
	var p PairPayload
	copy(p.FP[:], b[:fingerprint.Size])
	p.Val = binary.BigEndian.Uint64(b[fingerprint.Size:])
	return p, nil
}

// EncodeFP encodes a bare fingerprint payload (TypeLookup).
func EncodeFP(fp fingerprint.Fingerprint) []byte {
	return AppendFP(make([]byte, 0, fingerprint.Size), fp)
}

// DecodeFP decodes a bare fingerprint payload.
func DecodeFP(b []byte) (fingerprint.Fingerprint, error) {
	var fp fingerprint.Fingerprint
	if len(b) != fingerprint.Size {
		return fp, fmt.Errorf("wire: fingerprint payload: want %d bytes, got %d: %w", fingerprint.Size, len(b), ErrShortPayload)
	}
	copy(fp[:], b)
	return fp, nil
}

// EncodeBatch encodes a batch of pairs (TypeBatch).
func EncodeBatch(pairs []PairPayload) []byte {
	return AppendBatch(make([]byte, 0, 4+len(pairs)*pairSize), pairs)
}

// DecodeBatch decodes a batch of pairs.
func DecodeBatch(b []byte) ([]PairPayload, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wire: batch payload: missing count: %w", ErrShortPayload)
	}
	count := binary.BigEndian.Uint32(b[0:4])
	want := 4 + int(count)*pairSize
	if len(b) != want {
		return nil, fmt.Errorf("wire: batch payload: want %d bytes for %d pairs, got %d: %w", want, count, len(b), ErrShortPayload)
	}
	pairs := make([]PairPayload, count)
	off := 4
	for i := range pairs {
		copy(pairs[i].FP[:], b[off:off+fingerprint.Size])
		pairs[i].Val = binary.BigEndian.Uint64(b[off+fingerprint.Size:])
		off += pairSize
	}
	return pairs, nil
}

// ResultPayload is one lookup answer on the wire.
type ResultPayload struct {
	Exists bool
	Source uint8
	Val    uint64
}

func encodeResultInto(buf []byte, r ResultPayload) {
	if r.Exists {
		buf[0] = 1
	} else {
		buf[0] = 0
	}
	buf[1] = r.Source
	binary.BigEndian.PutUint64(buf[2:10], r.Val)
}

func decodeResultFrom(buf []byte) ResultPayload {
	return ResultPayload{
		Exists: buf[0] == 1,
		Source: buf[1],
		Val:    binary.BigEndian.Uint64(buf[2:10]),
	}
}

// EncodeResult encodes a single lookup answer (TypeResult).
func EncodeResult(r ResultPayload) []byte {
	return AppendResult(make([]byte, 0, resultSize), r)
}

// DecodeResult decodes a single lookup answer.
func DecodeResult(b []byte) (ResultPayload, error) {
	if len(b) != resultSize {
		return ResultPayload{}, fmt.Errorf("wire: result payload: want %d bytes, got %d: %w", resultSize, len(b), ErrShortPayload)
	}
	return decodeResultFrom(b), nil
}

// EncodeBatchResult encodes a batch of answers (TypeBatchResult).
func EncodeBatchResult(rs []ResultPayload) []byte {
	return AppendBatchResult(make([]byte, 0, 4+len(rs)*resultSize), rs)
}

// DecodeBatchResult decodes a batch of answers.
func DecodeBatchResult(b []byte) ([]ResultPayload, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wire: batch result: missing count: %w", ErrShortPayload)
	}
	count := binary.BigEndian.Uint32(b[0:4])
	want := 4 + int(count)*resultSize
	if len(b) != want {
		return nil, fmt.Errorf("wire: batch result: want %d bytes for %d results, got %d: %w", want, count, len(b), ErrShortPayload)
	}
	rs := make([]ResultPayload, count)
	off := 4
	for i := range rs {
		rs[i] = decodeResultFrom(b[off : off+resultSize])
		off += resultSize
	}
	return rs, nil
}

// EncodeError encodes a server error message (TypeError).
func EncodeError(msg string) []byte {
	return AppendError(make([]byte, 0, 2+len(msg)), msg)
}

// DecodeError decodes a server error message.
func DecodeError(b []byte) (string, error) {
	if len(b) < 2 {
		return "", fmt.Errorf("wire: error payload: missing length: %w", ErrShortPayload)
	}
	n := binary.BigEndian.Uint16(b[0:2])
	if len(b) != 2+int(n) {
		return "", fmt.Errorf("wire: error payload: want %d bytes, got %d: %w", 2+n, len(b), ErrShortPayload)
	}
	return string(b[2:]), nil
}

// SummaryPayload is one latency-histogram digest on the wire. All
// durations travel as nanoseconds.
type SummaryPayload struct {
	Count  uint64
	SumNS  uint64
	MinNS  uint64
	MaxNS  uint64
	MeanNS uint64
	P50NS  uint64
	P90NS  uint64
	P99NS  uint64
}

// summaryFields is the number of uint64 fields in a SummaryPayload.
const summaryFields = 8

// StatsPayload mirrors core.NodeStats for transport without importing core
// (core depends on nothing above it; wire stays at the bottom layer).
// PhaseCache/PhaseBloom/PhaseSSD digest the per-tier latency of the node's
// two-phase lookup pipeline; the Destage* counters and DestageWaveSizes
// describe the write-back group-commit pipeline (DestageWaveSizes carries
// plain entry counts in its nanosecond fields).
type StatsPayload struct {
	ID               string
	Lookups          uint64
	Inserts          uint64
	CacheHits        uint64
	BloomShort       uint64
	StoreHits        uint64
	StoreMisses      uint64
	BloomFalse       uint64
	Coalesced        uint64
	StoreEntries     uint64
	CacheHitsLRU     uint64
	CacheMisses      uint64
	CacheEvicts      uint64
	CacheLen         uint64
	CacheCap         uint64
	DestageQueue     uint64
	DestageEntries   uint64
	DestagePages     uint64
	DestageWaves     uint64
	DestageCoalesced uint64
	DestageHits      uint64
	// Recovery counters (protocol >= 3): what the node repaired at open.
	// RecoveryJournalReplayed/TornBytes describe destage-journal replay;
	// the RecoveryStore* fields mirror the hash table's own open-time
	// recovery pass (hashdb.RecoveryStats).
	RecoveryJournalReplayed  uint64
	RecoveryJournalTornBytes uint64
	RecoveryStoreRuns        uint64
	RecoveryStorePagesScan   uint64
	RecoveryStoreTornPages   uint64
	RecoveryStoreTailBytes   uint64
	RecoveryStoreLinks       uint64
	RecoveryStoreOrphans     uint64
	RecoveryStoreSalvaged    uint64
	// Replication counters (protocol >= 4): repair/backfill traffic this
	// node absorbed as a replica target (batches applied, pairs examined,
	// entries actually created because they were missing).
	ReplRepairBatches uint64
	ReplRepairPairs   uint64
	ReplRepairCreated uint64
	// Transport counters (protocol >= 5): the multiplexed wire as the
	// node sees it — logical streams currently open across all conns,
	// times a response had to wait for stream credit, response bytes
	// queued but not yet flushed, WINDOW_UPDATE grants sent, and
	// NOT_OWNER redirects issued to stale-ring clients.
	TransportStreamsOpen     uint64
	TransportCreditStalls    uint64
	TransportBytesInFlight   uint64
	TransportWindowUpdates   uint64
	TransportRedirectsIssued uint64
	// Bloom counters (protocol >= 6): the scalable filter's shape and
	// accuracy. The two rates are fixed-point parts-per-billion (a rate
	// of 0.01 travels as 10_000_000); BloomSaturated is 0 or 1.
	BloomEntries     uint64
	BloomSizeBytes   uint64
	BloomSlices      uint64
	BloomFillPPB     uint64
	BloomFPRatePPB   uint64
	BloomSaturated   uint64
	PhaseCache       SummaryPayload
	PhaseBloom       SummaryPayload
	PhaseSSD         SummaryPayload
	DestageWaveSizes SummaryPayload
}

// statsCounterFields is the number of plain uint64 counters in a
// StatsPayload (everything after the ID, before the phase summaries);
// statsSummaryCount is the number of SummaryPayload digests that follow.
// Older layouts carry prefixes of the counter list: protocol < 2 stops
// before the destage fields, protocol 2 before the recovery fields,
// protocol 3 before the replication fields, protocol 4 before the
// transport fields, protocol 5 before the Bloom fields.
const (
	statsCounterFields       = 43
	statsSummaryCount        = 4
	v5StatsCounterFields     = 37
	v4StatsCounterFields     = 32
	v3StatsCounterFields     = 29
	v2StatsCounterFields     = 20
	legacyStatsCounterFields = 14
	legacyStatsSummaryCount  = 3
)

func (s *StatsPayload) counters() []*uint64 {
	return []*uint64{
		&s.Lookups, &s.Inserts, &s.CacheHits, &s.BloomShort, &s.StoreHits,
		&s.StoreMisses, &s.BloomFalse, &s.Coalesced, &s.StoreEntries,
		&s.CacheHitsLRU, &s.CacheMisses, &s.CacheEvicts, &s.CacheLen, &s.CacheCap,
		&s.DestageQueue, &s.DestageEntries, &s.DestagePages, &s.DestageWaves,
		&s.DestageCoalesced, &s.DestageHits,
		&s.RecoveryJournalReplayed, &s.RecoveryJournalTornBytes,
		&s.RecoveryStoreRuns, &s.RecoveryStorePagesScan, &s.RecoveryStoreTornPages,
		&s.RecoveryStoreTailBytes, &s.RecoveryStoreLinks, &s.RecoveryStoreOrphans,
		&s.RecoveryStoreSalvaged,
		&s.ReplRepairBatches, &s.ReplRepairPairs, &s.ReplRepairCreated,
		&s.TransportStreamsOpen, &s.TransportCreditStalls, &s.TransportBytesInFlight,
		&s.TransportWindowUpdates, &s.TransportRedirectsIssued,
		&s.BloomEntries, &s.BloomSizeBytes, &s.BloomSlices,
		&s.BloomFillPPB, &s.BloomFPRatePPB, &s.BloomSaturated,
	}
}

func (s *StatsPayload) summaries() []*SummaryPayload {
	return []*SummaryPayload{&s.PhaseCache, &s.PhaseBloom, &s.PhaseSSD, &s.DestageWaveSizes}
}

func (p *SummaryPayload) fields() []*uint64 {
	return []*uint64{&p.Count, &p.SumNS, &p.MinNS, &p.MaxNS, &p.MeanNS, &p.P50NS, &p.P90NS, &p.P99NS}
}

// statsLayout returns how many counters and summaries the given protocol
// version carries in a stats payload.
func statsLayout(version int) (counters, summaries int) {
	switch {
	case version >= Version6:
		return statsCounterFields, statsSummaryCount
	case version == Version5:
		return v5StatsCounterFields, statsSummaryCount
	case version == Version4:
		return v4StatsCounterFields, statsSummaryCount
	case version == Version3:
		return v3StatsCounterFields, statsSummaryCount
	case version == Version2:
		return v2StatsCounterFields, statsSummaryCount
	default:
		return legacyStatsCounterFields, legacyStatsSummaryCount
	}
}

// EncodeStats encodes node statistics (TypeStatsResult) in the newest
// layout.
func EncodeStats(s StatsPayload) []byte {
	return EncodeStatsV(s, MaxVersion)
}

// EncodeStatsV encodes node statistics in the given protocol version's
// layout: peers that negotiated below Version2 receive the legacy payload
// (without the destage fields), so stats interop survives version skew.
func EncodeStatsV(s StatsPayload, version int) []byte {
	nc, ns := statsLayout(version)
	return AppendStatsV(make([]byte, 0, 2+len(s.ID)+(nc+ns*summaryFields)*8), s, version)
}

// DecodeStats decodes node statistics. Every historical layout (the
// Version6 Bloom-extended one, the Version5 transport-extended one, the
// Version4 replication-extended one, the Version3 recovery-extended one,
// the Version2 destage-extended one, and the original) is accepted — the
// payload length distinguishes them, and absent fields decode as zero —
// so a new client can read an old server's stats regardless of what
// version the connection negotiated.
func DecodeStats(b []byte) (StatsPayload, error) {
	var s StatsPayload
	if len(b) < 2 {
		return s, fmt.Errorf("wire: stats payload: missing id length: %w", ErrShortPayload)
	}
	idLen := int(binary.BigEndian.Uint16(b[0:2]))
	nc, ns := statsLayout(MaxVersion)
	legacy := 2 + idLen + (legacyStatsCounterFields+legacyStatsSummaryCount*summaryFields)*8
	v2 := 2 + idLen + (v2StatsCounterFields+statsSummaryCount*summaryFields)*8
	v3 := 2 + idLen + (v3StatsCounterFields+statsSummaryCount*summaryFields)*8
	v4 := 2 + idLen + (v4StatsCounterFields+statsSummaryCount*summaryFields)*8
	v5 := 2 + idLen + (v5StatsCounterFields+statsSummaryCount*summaryFields)*8
	switch len(b) {
	case legacy:
		nc, ns = legacyStatsCounterFields, legacyStatsSummaryCount
	case v2:
		nc, ns = v2StatsCounterFields, statsSummaryCount
	case v3:
		nc, ns = v3StatsCounterFields, statsSummaryCount
	case v4:
		nc, ns = v4StatsCounterFields, statsSummaryCount
	case v5:
		nc, ns = v5StatsCounterFields, statsSummaryCount
	default:
		if want := 2 + idLen + (nc+ns*summaryFields)*8; len(b) != want {
			return s, fmt.Errorf("wire: stats payload: want %d (or %d / %d / %d / %d / legacy %d) bytes, got %d: %w", want, v5, v4, v3, v2, legacy, len(b), ErrShortPayload)
		}
	}
	s.ID = string(b[2 : 2+idLen])
	off := 2 + idLen
	for _, f := range s.counters()[:nc] {
		*f = binary.BigEndian.Uint64(b[off:])
		off += 8
	}
	for _, sum := range s.summaries()[:ns] {
		for _, f := range sum.fields() {
			*f = binary.BigEndian.Uint64(b[off:])
			off += 8
		}
	}
	return s, nil
}
