package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// This file is the zero-copy / zero-alloc layer of the wire protocol:
//
//   - Append* encoder variants that write into a caller-supplied slice
//     (amortized zero allocations when the caller reuses a buffer); the
//     classic Encode* functions are thin allocate-and-append wrappers.
//   - A pool of payload buffers (GetBuf/PutBuf). The pool stores *[]byte,
//     never bare []byte: a sync.Pool of slices boxes the slice header into
//     an interface on every Put, which is itself an allocation on the path
//     the pool exists to de-allocate.
//   - FrameWriter, which emits a frame as header+payload vectored I/O
//     (net.Buffers → one writev syscall on a TCP conn) with a reused
//     header, so writing a frame copies nothing and allocates nothing.
//   - ReadFrameVInto, which reads a frame's body into a pooled buffer and
//     hands the buffer back for explicit release, replacing the per-frame
//     make of ReadFrameV.
//
// Buffer ownership rule used by package rpc: whoever holds the *[]byte
// returned by GetBuf or ReadFrameVInto releases it with PutBuf exactly
// once, after the last use of any slice aliasing it (Frame.Payload aliases
// the read buffer; decoded values — pairs, results, stats, error strings —
// are copies and remain valid after release).

// maxPooledBuf bounds what PutBuf keeps: one giant frame (up to
// MaxFrameSize) must not pin 64 MiB in the pool forever.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// GetBuf returns a pooled buffer with length 0 and capacity at least n.
// Release it with PutBuf.
//
//shhc:returns-buf
func GetBuf(n int) *[]byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, 0, n)
	}
	*bp = (*bp)[:0]
	return bp
}

// PutBuf returns a buffer to the pool. nil is a no-op, so callers on paths
// that may or may not hold a buffer can release unconditionally. Oversized
// buffers are dropped for the GC instead of pinned in the pool.
//
//shhc:takes-buf bp
//lint:ignore bufown dropping an oversized buffer for the GC here IS the release; re-pooling it would pin maxPooledBuf-busting allocations forever.
func PutBuf(bp *[]byte) {
	if bp == nil || cap(*bp) > maxPooledBuf {
		return
	}
	bufPool.Put(bp)
}

// AppendHello appends a Hello/HelloAck payload to dst.
func AppendHello(dst []byte, version int) []byte {
	return binary.BigEndian.AppendUint32(dst, uint32(version))
}

// AppendHelloWindow appends a Hello/HelloAck payload that additionally
// advertises the sender's per-stream flow-control window (protocol >= 5).
// The peer uses the advertisement to coalesce its credit grants: it may
// withhold WINDOW_UPDATE frames until a quarter-window of credit is
// pending, which is only safe when it knows how big the window is.
func AppendHelloWindow(dst []byte, version int, window uint32) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(version))
	return binary.BigEndian.AppendUint32(dst, window)
}

// AppendFP appends a bare fingerprint payload (TypeLookup) to dst.
func AppendFP(dst []byte, fp [20]byte) []byte {
	return append(dst, fp[:]...)
}

// AppendPair appends a fingerprint+value payload to dst.
func AppendPair(dst []byte, p PairPayload) []byte {
	dst = append(dst, p.FP[:]...)
	return binary.BigEndian.AppendUint64(dst, p.Val)
}

// AppendBatch appends a batch of pairs (TypeBatch) to dst.
func AppendBatch(dst []byte, pairs []PairPayload) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(pairs)))
	for i := range pairs {
		dst = AppendPair(dst, pairs[i])
	}
	return dst
}

// AppendResult appends a single lookup answer (TypeResult) to dst.
func AppendResult(dst []byte, r ResultPayload) []byte {
	var exists byte
	if r.Exists {
		exists = 1
	}
	dst = append(dst, exists, r.Source)
	return binary.BigEndian.AppendUint64(dst, r.Val)
}

// AppendBatchResult appends a batch of answers (TypeBatchResult) to dst.
func AppendBatchResult(dst []byte, rs []ResultPayload) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(rs)))
	for i := range rs {
		dst = AppendResult(dst, rs[i])
	}
	return dst
}

// AppendError appends a server error message (TypeError) to dst.
func AppendError(dst []byte, msg string) []byte {
	if len(msg) > 65535 {
		msg = msg[:65535]
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(msg)))
	return append(dst, msg...)
}

// AppendStatsV appends node statistics in the given protocol version's
// layout to dst.
func AppendStatsV(dst []byte, s StatsPayload, version int) []byte {
	nc, ns := statsLayout(version)
	id := s.ID
	if len(id) > 65535 {
		id = id[:65535]
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(id)))
	dst = append(dst, id...)
	for _, v := range s.counters()[:nc] {
		dst = binary.BigEndian.AppendUint64(dst, *v)
	}
	for _, sum := range s.summaries()[:ns] {
		for _, v := range sum.fields() {
			dst = binary.BigEndian.AppendUint64(dst, *v)
		}
	}
	return dst
}

// FrameWriter writes frames to one underlying writer as vectored I/O: the
// header lives in a reused field and header+payload go out together via
// net.Buffers, which a TCP connection turns into a single writev syscall —
// one syscall per frame, zero copies, zero allocations (the net poller
// caches its iovecs per-FD). Not safe for concurrent use; callers
// serialize writes (rpc holds its per-connection write mutex).
type FrameWriter struct {
	w   io.Writer
	hdr [4 + headerSizeV5]byte
	// arr is the permanent backing array for the vectored write and bufs
	// the net.Buffers view over it. WriteTo consumes the view in place, so
	// it is rebuilt from arr each call — reusing the consumed slice would
	// reallocate its backing array every frame.
	arr  [2][]byte
	bufs net.Buffers
}

// NewFrameWriter wraps w. For peak effect w should be a net.Conn that
// supports vectored writes (TCP does); any other writer degrades to two
// sequential Writes per frame, still copy-free.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: w}
}

// WriteFrame writes one frame in the given protocol version's layout.
// f.Payload is only read during the call; the caller may release or reuse
// it as soon as WriteFrame returns.
func (fw *FrameWriter) WriteFrame(f Frame, version int) error {
	hs := headerSizeFor(version)
	n := hs + len(f.Payload)
	if n > MaxFrameSize {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(fw.hdr[0:4], uint32(n))
	fw.hdr[4] = byte(f.Type)
	binary.BigEndian.PutUint64(fw.hdr[5:13], f.ID)
	if version >= Version1 {
		binary.BigEndian.PutUint64(fw.hdr[13:21], uint64(f.Timeout))
	}
	if version >= Version5 {
		binary.BigEndian.PutUint32(fw.hdr[21:25], f.Stream)
	}
	if len(f.Payload) == 0 {
		if _, err := fw.w.Write(fw.hdr[:4+hs]); err != nil {
			return fmt.Errorf("wire: write frame header: %w", err)
		}
		return nil
	}
	fw.arr[0], fw.arr[1] = fw.hdr[:4+hs], f.Payload
	fw.bufs = net.Buffers(fw.arr[:])
	_, err := fw.bufs.WriteTo(fw.w)
	// Drop the payload reference either way: a retained element would pin
	// the caller's pooled buffer past its release.
	fw.arr[1] = nil
	if err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// ReadFrameVInto reads one frame in the given protocol version's layout,
// placing its body in a pooled buffer. Frame.Payload aliases the returned
// buffer; the caller must PutBuf it after the payload's last use (the
// buffer is non-nil exactly when the error is nil).
//
//shhc:returns-buf
func ReadFrameVInto(r io.Reader, version int) (Frame, *[]byte, error) {
	hs := headerSizeFor(version)
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Frame{}, nil, io.EOF
		}
		return Frame{}, nil, fmt.Errorf("wire: read frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrameSize {
		return Frame{}, nil, ErrFrameTooLarge
	}
	if n < uint32(hs) {
		return Frame{}, nil, ErrShortPayload
	}
	bp := GetBuf(int(n))
	body := (*bp)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		PutBuf(bp)
		return Frame{}, nil, fmt.Errorf("wire: read frame body: %w", err)
	}
	*bp = body
	f := Frame{
		Type: Type(body[0]),
		ID:   binary.BigEndian.Uint64(body[1:9]),
	}
	if version >= Version1 {
		f.Timeout = time.Duration(binary.BigEndian.Uint64(body[9:17]))
	}
	if version >= Version5 {
		f.Stream = binary.BigEndian.Uint32(body[17:21])
	}
	f.Payload = body[hs:]
	return f, bp, nil
}

// AppendWindowUpdate appends a WINDOW_UPDATE payload to dst: the number of
// bytes of credit the receiver grants back to the sender's window for the
// stream named in the frame header.
func AppendWindowUpdate(dst []byte, credit uint32) []byte {
	return binary.BigEndian.AppendUint32(dst, credit)
}

// DecodeWindowUpdate decodes a WINDOW_UPDATE payload.
func DecodeWindowUpdate(b []byte) (uint32, error) {
	if len(b) != 4 {
		return 0, fmt.Errorf("wire: window update payload: want 4 bytes, got %d: %w", len(b), ErrShortPayload)
	}
	return binary.BigEndian.Uint32(b), nil
}
