package wire

import (
	"bytes"
	"testing"
	"time"
)

func TestCancelFrameV1RoundTripCarriesTimeout(t *testing.T) {
	budget := 5 * time.Second
	in := Frame{Type: TypeLookup, ID: 42, Timeout: budget, Payload: []byte{1, 2, 3}}
	var buf bytes.Buffer
	if err := WriteFrameV(&buf, in, Version1); err != nil {
		t.Fatalf("WriteFrameV: %v", err)
	}
	out, err := ReadFrameV(&buf, Version1)
	if err != nil {
		t.Fatalf("ReadFrameV: %v", err)
	}
	if out.Type != in.Type || out.ID != in.ID || out.Timeout != budget || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}

func TestCancelFrameV0LayoutUnchanged(t *testing.T) {
	// A timeout set on a version-0 frame must not leak onto the wire:
	// old peers parse the original layout.
	in := Frame{Type: TypeLookupOrInsert, ID: 7, Timeout: 999, Payload: []byte{9}}
	var buf bytes.Buffer
	if err := WriteFrameV(&buf, in, Version0); err != nil {
		t.Fatalf("WriteFrameV: %v", err)
	}
	if got, want := buf.Len(), 4+1+8+1; got != want {
		t.Fatalf("v0 frame is %d bytes, want %d (no deadline field)", got, want)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if out.Timeout != 0 {
		t.Fatalf("v0 read produced timeout %d, want 0", out.Timeout)
	}
	if out.Type != in.Type || out.ID != in.ID || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip = %+v, want type/id/payload of %+v", out, in)
	}
}

func TestCancelHelloRoundTrip(t *testing.T) {
	b := EncodeHello(MaxVersion)
	v, err := DecodeHello(b)
	if err != nil {
		t.Fatalf("DecodeHello: %v", err)
	}
	if v != MaxVersion {
		t.Fatalf("DecodeHello = %d, want %d", v, MaxVersion)
	}
	if _, err := DecodeHello([]byte{1, 2}); err == nil {
		t.Fatal("short hello payload decoded without error")
	}
}
