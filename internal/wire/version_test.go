package wire

import (
	"bytes"
	"testing"
	"time"
)

func TestCancelFrameV1RoundTripCarriesTimeout(t *testing.T) {
	budget := 5 * time.Second
	in := Frame{Type: TypeLookup, ID: 42, Timeout: budget, Payload: []byte{1, 2, 3}}
	var buf bytes.Buffer
	if err := WriteFrameV(&buf, in, Version1); err != nil {
		t.Fatalf("WriteFrameV: %v", err)
	}
	out, err := ReadFrameV(&buf, Version1)
	if err != nil {
		t.Fatalf("ReadFrameV: %v", err)
	}
	if out.Type != in.Type || out.ID != in.ID || out.Timeout != budget || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}

func TestCancelFrameV0LayoutUnchanged(t *testing.T) {
	// A timeout set on a version-0 frame must not leak onto the wire:
	// old peers parse the original layout.
	in := Frame{Type: TypeLookupOrInsert, ID: 7, Timeout: 999, Payload: []byte{9}}
	var buf bytes.Buffer
	if err := WriteFrameV(&buf, in, Version0); err != nil {
		t.Fatalf("WriteFrameV: %v", err)
	}
	if got, want := buf.Len(), 4+1+8+1; got != want {
		t.Fatalf("v0 frame is %d bytes, want %d (no deadline field)", got, want)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if out.Timeout != 0 {
		t.Fatalf("v0 read produced timeout %d, want 0", out.Timeout)
	}
	if out.Type != in.Type || out.ID != in.ID || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip = %+v, want type/id/payload of %+v", out, in)
	}
}

// TestReplStatsVersionSkewInterop pins the Version4 stats contract: the
// Version3 encoding (no replication counters) decodes with the
// replication fields zero, and the Version4 encoding carries them
// through — alongside everything the older layouts already held.
func TestReplStatsVersionSkewInterop(t *testing.T) {
	s := StatsPayload{
		ID:                      "repl-skew",
		Lookups:                 11,
		DestageEntries:          22,
		RecoveryJournalReplayed: 33,
		ReplRepairBatches:       44,
		ReplRepairPairs:         55,
		ReplRepairCreated:       66,
	}
	dec3, err := DecodeStats(EncodeStatsV(s, Version3))
	if err != nil {
		t.Fatalf("decode v3: %v", err)
	}
	if dec3.Lookups != 11 || dec3.DestageEntries != 22 || dec3.RecoveryJournalReplayed != 33 {
		t.Fatalf("v3 lost pre-replication fields: %+v", dec3)
	}
	if dec3.ReplRepairBatches != 0 || dec3.ReplRepairPairs != 0 || dec3.ReplRepairCreated != 0 {
		t.Fatalf("v3 encoding carried replication fields it should not have: %+v", dec3)
	}
	dec4, err := DecodeStats(EncodeStatsV(s, Version4))
	if err != nil {
		t.Fatalf("decode v4: %v", err)
	}
	if dec4 != s {
		t.Fatalf("v4 round trip = %+v, want %+v", dec4, s)
	}
	if v4, v3 := EncodeStatsV(s, Version4), EncodeStatsV(s, Version3); len(v4) <= len(v3) {
		t.Fatalf("v4 payload (%d bytes) not larger than v3 payload (%d bytes)", len(v4), len(v3))
	}
}

func TestRepairTypeString(t *testing.T) {
	if got := TypeRepair.String(); got != "repair" {
		t.Fatalf("TypeRepair.String() = %q, want repair", got)
	}
}

func TestCancelHelloRoundTrip(t *testing.T) {
	b := EncodeHello(MaxVersion)
	v, err := DecodeHello(b)
	if err != nil {
		t.Fatalf("DecodeHello: %v", err)
	}
	if v != MaxVersion {
		t.Fatalf("DecodeHello = %d, want %d", v, MaxVersion)
	}
	if _, err := DecodeHello([]byte{1, 2}); err == nil {
		t.Fatal("short hello payload decoded without error")
	}
}
