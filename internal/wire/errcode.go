package wire

import (
	"encoding/binary"
	"fmt"
)

// Compact error codes (protocol >= 5). Pre-5 TypeError payloads carry only
// a string; the v5 layout prefixes a one-byte code plus, for CodeNotOwner,
// the true owner's identity, so a client with a stale ring view can re-dial
// the correct node instead of parsing prose.
//
// The v5 coded layout is distinguishable from the legacy one by a sentinel:
// it opens with 0xFFFF where the legacy layout carries the message length
// (a legacy message is capped at 65535 bytes but the whole frame at 64 MiB,
// so a length of exactly 0xFFFF never names a valid legacy payload of
// different shape — DecodeErrorPayload still accepts both and falls back).
type Code uint8

// Error codes.
const (
	// CodeInternal is a server-side failure with no routing significance.
	CodeInternal Code = iota
	// CodeBadRequest marks a malformed or unsupported request.
	CodeBadRequest
	// CodeCancelled reports that the request's context was cancelled.
	CodeCancelled
	// CodeDeadline reports that the request's deadline expired.
	CodeDeadline
	// CodeNotOwner tells a stale-ring client this node does not own the
	// requested key; the payload carries the current owner's id and
	// address so the client can re-dial it directly (one extra RTT
	// instead of proxying through the wrong node).
	CodeNotOwner
)

func (c Code) String() string {
	switch c {
	case CodeInternal:
		return "INTERNAL"
	case CodeBadRequest:
		return "BAD_REQUEST"
	case CodeCancelled:
		return "CANCELLED"
	case CodeDeadline:
		return "DEADLINE"
	case CodeNotOwner:
		return "NOT_OWNER"
	}
	return fmt.Sprintf("code(%d)", uint8(c))
}

// codedErrorSentinel opens every v5 coded TypeError payload where the
// legacy layout carries its message length.
const codedErrorSentinel = 0xFFFF

// ErrorPayload is a decoded TypeError payload: the legacy layouts populate
// only Msg (Code stays CodeInternal); the v5 coded layout adds the code
// and, for CodeNotOwner, the owner fields.
type ErrorPayload struct {
	Code      Code
	Msg       string
	OwnerID   string
	OwnerAddr string
}

// AppendErrorCoded appends a v5 coded TypeError payload to dst:
//
//	uint16  0xFFFF sentinel
//	uint8   code
//	uint16  message length | message bytes
//	uint16  owner id length | id bytes      (CodeNotOwner, else 0)
//	uint16  owner addr length | addr bytes  (CodeNotOwner, else 0)
func AppendErrorCoded(dst []byte, e ErrorPayload) []byte {
	dst = binary.BigEndian.AppendUint16(dst, codedErrorSentinel)
	dst = append(dst, byte(e.Code))
	dst = appendLenPrefixed(dst, e.Msg)
	dst = appendLenPrefixed(dst, e.OwnerID)
	return appendLenPrefixed(dst, e.OwnerAddr)
}

func appendLenPrefixed(dst []byte, s string) []byte {
	if len(s) > 65534 {
		s = s[:65534]
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// EncodeErrorCoded encodes a v5 coded TypeError payload.
func EncodeErrorCoded(e ErrorPayload) []byte {
	return AppendErrorCoded(make([]byte, 0, 9+len(e.Msg)+len(e.OwnerID)+len(e.OwnerAddr)), e)
}

// DecodeErrorPayload decodes a TypeError payload in either layout: the v5
// coded one (0xFFFF sentinel) or the legacy bare string, which decodes
// with CodeInternal. Use this instead of DecodeError wherever the code or
// owner identity matters; DecodeError remains for legacy callers and
// returns only the message.
func DecodeErrorPayload(b []byte) (ErrorPayload, error) {
	if len(b) >= 3 && binary.BigEndian.Uint16(b[0:2]) == codedErrorSentinel {
		e := ErrorPayload{Code: Code(b[2])}
		rest := b[3:]
		var err error
		if e.Msg, rest, err = cutLenPrefixed(rest); err != nil {
			return ErrorPayload{}, fmt.Errorf("wire: coded error message: %w", err)
		}
		if e.OwnerID, rest, err = cutLenPrefixed(rest); err != nil {
			return ErrorPayload{}, fmt.Errorf("wire: coded error owner id: %w", err)
		}
		if e.OwnerAddr, rest, err = cutLenPrefixed(rest); err != nil {
			return ErrorPayload{}, fmt.Errorf("wire: coded error owner addr: %w", err)
		}
		if len(rest) != 0 {
			return ErrorPayload{}, fmt.Errorf("wire: coded error payload: %d trailing bytes: %w", len(rest), ErrShortPayload)
		}
		return e, nil
	}
	msg, err := DecodeError(b)
	if err != nil {
		return ErrorPayload{}, err
	}
	return ErrorPayload{Code: CodeInternal, Msg: msg}, nil
}

func cutLenPrefixed(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("wire: missing length prefix: %w", ErrShortPayload)
	}
	n := int(binary.BigEndian.Uint16(b[0:2]))
	if len(b) < 2+n {
		return "", nil, fmt.Errorf("wire: truncated string (want %d bytes, have %d): %w", n, len(b)-2, ErrShortPayload)
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}
