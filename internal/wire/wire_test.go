package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"shhc/internal/fingerprint"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{Type: TypeBatch, ID: 42, Payload: []byte("hello")}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if out.Type != in.Type || out.ID != in.ID || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: TypePing, ID: 7}); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if f.Type != TypePing || f.ID != 7 || len(f.Payload) != 0 {
		t.Fatalf("frame = %+v", f)
	}
}

func TestFramePipelining(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(0); i < 10; i++ {
		WriteFrame(&buf, Frame{Type: TypeLookup, ID: i, Payload: EncodeFP(fingerprint.FromUint64(i))})
	}
	for i := uint64(0); i < 10; i++ {
		f, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if f.ID != i {
			t.Fatalf("frame %d has ID %d", i, f.ID)
		}
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("after drain: %v, want EOF", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	if err := WriteFrame(io.Discard, Frame{Payload: make([]byte, MaxFrameSize)}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("WriteFrame oversized = %v, want ErrFrameTooLarge", err)
	}
	// A length prefix claiming an oversized frame is rejected on read.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("ReadFrame oversized = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameShortHeader(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 3) // below headerSize
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrShortPayload) {
		t.Fatalf("ReadFrame short = %v, want ErrShortPayload", err)
	}
}

func TestFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, Frame{Type: TypeLookup, ID: 1, Payload: []byte("abcdef")})
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("ReadFrame of truncated body succeeded")
	}
}

func TestPairRoundTrip(t *testing.T) {
	in := PairPayload{FP: fingerprint.FromUint64(5), Val: 12345}
	out, err := DecodePair(EncodePair(in))
	if err != nil {
		t.Fatalf("DecodePair: %v", err)
	}
	if out != in {
		t.Fatalf("pair mismatch: %+v vs %+v", out, in)
	}
	if _, err := DecodePair([]byte("short")); err == nil {
		t.Fatal("DecodePair(short) succeeded")
	}
}

func TestFPRoundTrip(t *testing.T) {
	fp := fingerprint.FromUint64(9)
	out, err := DecodeFP(EncodeFP(fp))
	if err != nil || out != fp {
		t.Fatalf("fp round trip = (%v, %v)", out, err)
	}
	if _, err := DecodeFP(nil); err == nil {
		t.Fatal("DecodeFP(nil) succeeded")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	pairs := make([]PairPayload, 100)
	for i := range pairs {
		pairs[i] = PairPayload{FP: fingerprint.FromUint64(uint64(i)), Val: uint64(i * 3)}
	}
	out, err := DecodeBatch(EncodeBatch(pairs))
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(out) != len(pairs) {
		t.Fatalf("len = %d, want %d", len(out), len(pairs))
	}
	for i := range pairs {
		if out[i] != pairs[i] {
			t.Fatalf("pair %d mismatch", i)
		}
	}
}

func TestBatchEmptyAndErrors(t *testing.T) {
	out, err := DecodeBatch(EncodeBatch(nil))
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch = (%v, %v)", out, err)
	}
	if _, err := DecodeBatch([]byte{1}); err == nil {
		t.Fatal("DecodeBatch(truncated count) succeeded")
	}
	bad := EncodeBatch([]PairPayload{{FP: fingerprint.FromUint64(1)}})
	if _, err := DecodeBatch(bad[:len(bad)-2]); err == nil {
		t.Fatal("DecodeBatch(truncated pairs) succeeded")
	}
}

func TestResultRoundTrip(t *testing.T) {
	tests := []ResultPayload{
		{Exists: true, Source: 1, Val: 77},
		{Exists: false, Source: 4, Val: 0},
	}
	for _, in := range tests {
		out, err := DecodeResult(EncodeResult(in))
		if err != nil || out != in {
			t.Fatalf("result round trip: %+v vs %+v (%v)", out, in, err)
		}
	}
	if _, err := DecodeResult([]byte{1}); err == nil {
		t.Fatal("DecodeResult(short) succeeded")
	}
}

func TestBatchResultRoundTrip(t *testing.T) {
	rs := []ResultPayload{
		{Exists: true, Source: 1, Val: 1},
		{Exists: false, Source: 2, Val: 2},
		{Exists: true, Source: 3, Val: 3},
	}
	out, err := DecodeBatchResult(EncodeBatchResult(rs))
	if err != nil {
		t.Fatalf("DecodeBatchResult: %v", err)
	}
	for i := range rs {
		if out[i] != rs[i] {
			t.Fatalf("result %d mismatch", i)
		}
	}
	if _, err := DecodeBatchResult([]byte{0, 0}); err == nil {
		t.Fatal("DecodeBatchResult(short) succeeded")
	}
}

func TestErrorRoundTrip(t *testing.T) {
	msg, err := DecodeError(EncodeError("boom"))
	if err != nil || msg != "boom" {
		t.Fatalf("error round trip = (%q, %v)", msg, err)
	}
	if _, err := DecodeError([]byte{9}); err == nil {
		t.Fatal("DecodeError(short) succeeded")
	}
	long := make([]byte, 70000)
	for i := range long {
		long[i] = 'x'
	}
	msg, err = DecodeError(EncodeError(string(long)))
	if err != nil || len(msg) != 65535 {
		t.Fatalf("oversized error message handled badly: len=%d err=%v", len(msg), err)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	in := StatsPayload{
		ID: "node-3", Lookups: 1, Inserts: 2, CacheHits: 3, BloomShort: 4,
		StoreHits: 5, StoreMisses: 6, BloomFalse: 7, Coalesced: 14, StoreEntries: 8,
		CacheHitsLRU: 9, CacheMisses: 10, CacheEvicts: 11, CacheLen: 12, CacheCap: 13,
		DestageQueue: 50, DestageEntries: 51, DestagePages: 52, DestageWaves: 53,
		DestageCoalesced: 54, DestageHits: 55,
		BloomEntries: 70, BloomSizeBytes: 71, BloomSlices: 3,
		BloomFillPPB: 420_000_000, BloomFPRatePPB: 9_500_000, BloomSaturated: 1,
		PhaseCache:       SummaryPayload{Count: 20, SumNS: 21, MinNS: 22, MaxNS: 23, MeanNS: 24, P50NS: 25, P90NS: 26, P99NS: 27},
		PhaseBloom:       SummaryPayload{Count: 30, SumNS: 31, MinNS: 32, MaxNS: 33, MeanNS: 34, P50NS: 35, P90NS: 36, P99NS: 37},
		PhaseSSD:         SummaryPayload{Count: 40, SumNS: 41, MinNS: 42, MaxNS: 43, MeanNS: 44, P50NS: 45, P90NS: 46, P99NS: 47},
		DestageWaveSizes: SummaryPayload{Count: 60, SumNS: 61, MinNS: 62, MaxNS: 63, MeanNS: 64, P50NS: 65, P90NS: 66, P99NS: 67},
	}
	out, err := DecodeStats(EncodeStats(in))
	if err != nil {
		t.Fatalf("DecodeStats: %v", err)
	}
	if out != in {
		t.Fatalf("stats mismatch:\n got %+v\nwant %+v", out, in)
	}
	if _, err := DecodeStats([]byte{0}); err == nil {
		t.Fatal("DecodeStats(short) succeeded")
	}
}

func TestStatsLegacyLayoutInterop(t *testing.T) {
	// A peer that negotiated below Version2 sends and expects the
	// pre-destage stats layout; DecodeStats must accept it with the
	// destage fields zeroed, so stats interop survives version skew.
	in := StatsPayload{
		ID: "old-peer", Lookups: 1, Inserts: 2, CacheHits: 3, BloomShort: 4,
		StoreHits: 5, StoreMisses: 6, BloomFalse: 7, Coalesced: 8, StoreEntries: 9,
		CacheHitsLRU: 10, CacheMisses: 11, CacheEvicts: 12, CacheLen: 13, CacheCap: 14,
		// Destage fields set on purpose: the legacy encoding must drop
		// them, not smuggle them into the payload.
		DestageQueue: 99, DestageEntries: 98,
		PhaseCache:       SummaryPayload{Count: 20, MaxNS: 23},
		PhaseBloom:       SummaryPayload{Count: 30, MaxNS: 33},
		PhaseSSD:         SummaryPayload{Count: 40, MaxNS: 43},
		DestageWaveSizes: SummaryPayload{Count: 50, MaxNS: 53},
	}
	legacy := EncodeStatsV(in, Version1)
	if full := EncodeStatsV(in, Version2); len(legacy) >= len(full) {
		t.Fatalf("legacy payload (%d bytes) not smaller than v2 payload (%d bytes)", len(legacy), len(full))
	}
	out, err := DecodeStats(legacy)
	if err != nil {
		t.Fatalf("DecodeStats(legacy): %v", err)
	}
	if out.ID != in.ID || out.Lookups != in.Lookups || out.CacheCap != in.CacheCap ||
		out.PhaseSSD != in.PhaseSSD {
		t.Fatalf("legacy decode lost counters: %+v", out)
	}
	if out.DestageQueue != 0 || out.DestageEntries != 0 || out.DestageWaveSizes != (SummaryPayload{}) {
		t.Fatalf("legacy decode produced destage fields: %+v", out)
	}
}

func TestStatsV5LayoutInterop(t *testing.T) {
	// A Version5 peer's stats payload stops before the Bloom counters;
	// DecodeStats must accept it with those fields zeroed, and the v5
	// encoding must not smuggle Bloom fields onto the wire.
	in := StatsPayload{
		ID: "v5-peer", Lookups: 1, Inserts: 2, StoreEntries: 9,
		TransportStreamsOpen: 61, TransportRedirectsIssued: 65,
		BloomEntries: 70, BloomSizeBytes: 71, BloomSlices: 3,
		BloomFillPPB: 420_000_000, BloomFPRatePPB: 9_500_000, BloomSaturated: 1,
		PhaseSSD: SummaryPayload{Count: 40, MaxNS: 43},
	}
	v5 := EncodeStatsV(in, Version5)
	if v6 := EncodeStatsV(in, Version6); len(v5) >= len(v6) {
		t.Fatalf("v5 payload (%d bytes) not smaller than v6 payload (%d bytes)", len(v5), len(v6))
	}
	out, err := DecodeStats(v5)
	if err != nil {
		t.Fatalf("DecodeStats(v5): %v", err)
	}
	if out.ID != in.ID || out.Lookups != in.Lookups ||
		out.TransportStreamsOpen != in.TransportStreamsOpen ||
		out.TransportRedirectsIssued != in.TransportRedirectsIssued ||
		out.PhaseSSD != in.PhaseSSD {
		t.Fatalf("v5 decode lost counters: %+v", out)
	}
	if out.BloomEntries != 0 || out.BloomSlices != 0 || out.BloomFPRatePPB != 0 || out.BloomSaturated != 0 {
		t.Fatalf("v5 decode produced Bloom fields: %+v", out)
	}
}

func TestTypeStrings(t *testing.T) {
	for ty := TypeLookup; ty <= TypeError; ty++ {
		if s := ty.String(); s == "" || s[0] == 't' && s != "type(0)" && len(s) > 20 {
			t.Fatalf("Type(%d).String() = %q", ty, s)
		}
	}
	if Type(200).String() != "type(200)" {
		t.Fatalf("unknown type string = %q", Type(200).String())
	}
}

// Property: batch encode/decode round-trips arbitrary pair sets.
func TestQuickBatchRoundTrip(t *testing.T) {
	f := func(seeds []uint64) bool {
		pairs := make([]PairPayload, len(seeds))
		for i, s := range seeds {
			pairs[i] = PairPayload{FP: fingerprint.FromUint64(s), Val: s * 31}
		}
		out, err := DecodeBatch(EncodeBatch(pairs))
		if err != nil || len(out) != len(pairs) {
			return false
		}
		for i := range pairs {
			if out[i] != pairs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: frames round-trip arbitrary payloads through a stream.
func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(ty uint8, id uint64, payload []byte) bool {
		var buf bytes.Buffer
		in := Frame{Type: Type(ty), ID: id, Payload: payload}
		if err := WriteFrame(&buf, in); err != nil {
			return len(payload) > MaxFrameSize-headerSize
		}
		out, err := ReadFrame(&buf)
		return err == nil && out.Type == in.Type && out.ID == in.ID && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
