package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestMuxFrameV5RoundTripCarriesStream(t *testing.T) {
	in := Frame{Type: TypeBatch, ID: 42, Timeout: time.Second, Stream: 7, Payload: []byte{1, 2, 3}}
	var buf bytes.Buffer
	if err := WriteFrameV(&buf, in, Version5); err != nil {
		t.Fatalf("WriteFrameV: %v", err)
	}
	if got, want := buf.Len(), 4+headerSizeV5+3; got != want {
		t.Fatalf("v5 frame is %d bytes, want %d", got, want)
	}
	out, err := ReadFrameV(&buf, Version5)
	if err != nil {
		t.Fatalf("ReadFrameV: %v", err)
	}
	if out.Type != in.Type || out.ID != in.ID || out.Timeout != in.Timeout || out.Stream != in.Stream || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}

func TestMuxFrameV4LayoutHasNoStreamField(t *testing.T) {
	// A stream id set on a pre-5 frame must not leak onto the wire: old
	// peers parse the v1 layout.
	in := Frame{Type: TypeLookup, ID: 9, Stream: 99, Payload: []byte{5}}
	var buf bytes.Buffer
	if err := WriteFrameV(&buf, in, Version4); err != nil {
		t.Fatalf("WriteFrameV: %v", err)
	}
	if got, want := buf.Len(), 4+headerSizeV1+1; got != want {
		t.Fatalf("v4 frame is %d bytes, want %d (no stream field)", got, want)
	}
	out, err := ReadFrameV(&buf, Version4)
	if err != nil {
		t.Fatalf("ReadFrameV: %v", err)
	}
	if out.Stream != 0 {
		t.Fatalf("v4 read produced stream %d, want 0", out.Stream)
	}
}

func TestMuxFrameWriterV5(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	in := Frame{Type: TypeResult, ID: 3, Stream: 11, Payload: []byte{9, 8}}
	if err := fw.WriteFrame(in, Version5); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	out, bp, err := ReadFrameVInto(&buf, Version5)
	if err != nil {
		t.Fatalf("ReadFrameVInto: %v", err)
	}
	defer PutBuf(bp)
	if out.Stream != 11 || out.ID != 3 || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}

func TestMuxWindowUpdateRoundTrip(t *testing.T) {
	b := AppendWindowUpdate(nil, 123456)
	n, err := DecodeWindowUpdate(b)
	if err != nil {
		t.Fatalf("DecodeWindowUpdate: %v", err)
	}
	if n != 123456 {
		t.Fatalf("credit = %d, want 123456", n)
	}
}

func TestRedirectErrorCodeRoundTrip(t *testing.T) {
	in := ErrorPayload{Code: CodeNotOwner, Msg: "key moved", OwnerID: "node-b", OwnerAddr: "10.0.0.2:7000"}
	out, err := DecodeErrorPayload(EncodeErrorCoded(in))
	if err != nil {
		t.Fatalf("DecodeErrorPayload: %v", err)
	}
	if out != in {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
	// The legacy layout still decodes, as CodeInternal.
	legacy, err := DecodeErrorPayload(EncodeError("plain failure"))
	if err != nil {
		t.Fatalf("DecodeErrorPayload(legacy): %v", err)
	}
	if legacy.Code != CodeInternal || legacy.Msg != "plain failure" {
		t.Fatalf("legacy decode = %+v", legacy)
	}
	if got := CodeNotOwner.String(); got != "NOT_OWNER" {
		t.Fatalf("CodeNotOwner.String() = %q", got)
	}
}

// muxConn collects flushed frames for inspection. Writes may split a
// frame across calls (net.Buffers degrades to one Write per vector on a
// plain io.Writer), so it buffers and parses complete frames greedily.
type muxConn struct {
	mu      sync.Mutex
	pending []byte
	frames  []Frame
	writes  int
}

func (c *muxConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writes++
	c.pending = append(c.pending, p...)
	for {
		if len(c.pending) < 4 {
			return len(p), nil
		}
		n := int(binary.BigEndian.Uint32(c.pending[:4]))
		if len(c.pending) < 4+n {
			return len(p), nil
		}
		f, err := ReadFrameV(bytes.NewReader(c.pending[:4+n]), Version5)
		if err != nil {
			return 0, fmt.Errorf("muxConn: bad frame in flush: %w", err)
		}
		f.Payload = append([]byte(nil), f.Payload...)
		c.frames = append(c.frames, f)
		c.pending = c.pending[4+n:]
	}
}

func (c *muxConn) snapshot() []Frame {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Frame(nil), c.frames...)
}

func waitFrames(t *testing.T, c *muxConn, n int) []Frame {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		fs := c.snapshot()
		if len(fs) >= n {
			return fs
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d frames, have %d", n, len(fs))
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMuxCreditStallIsolation is the unit-level pin of the tentpole
// property: a stream whose window is exhausted stops flushing, while
// another stream on the same writer keeps flowing.
func TestMuxCreditStallIsolation(t *testing.T) {
	conn := &muxConn{}
	m := NewMuxWriter(conn, Version5, 100) // tiny window: one 60-byte frame fits, two don't
	defer m.Close()

	payload := func() *[]byte {
		bp := GetBuf(60)
		*bp = (*bp)[:60]
		return bp
	}
	// Stream 1 enqueues three frames: the first flushes (window 100->40),
	// the rest stall at win<=0 after the second charges it negative...
	// window goes 100 -> 40 after first; 40>0 so second flushes too
	// (40-60 = -20); the third must stall.
	for i := uint64(0); i < 3; i++ {
		bp := payload()
		if err := m.Enqueue(Frame{Type: TypeResult, ID: i, Stream: 1, Payload: *bp}, bp, nil); err != nil {
			t.Fatalf("enqueue stream 1: %v", err)
		}
	}
	// Stream 2 keeps flowing: its window is its own.
	for i := uint64(10); i < 13; i++ {
		bp := GetBuf(8)
		*bp = (*bp)[:8]
		if err := m.Enqueue(Frame{Type: TypeResult, ID: i, Stream: 2, Payload: *bp}, bp, nil); err != nil {
			t.Fatalf("enqueue stream 2: %v", err)
		}
	}
	fs := waitFrames(t, conn, 5)
	count := map[uint32]int{}
	for _, f := range fs {
		count[f.Stream]++
	}
	if count[1] != 2 {
		t.Fatalf("stalled stream flushed %d frames, want 2 (credit-blocked after going negative)", count[1])
	}
	if count[2] != 3 {
		t.Fatalf("healthy stream flushed %d frames, want all 3", count[2])
	}
	st := m.Stats()
	if st.CreditStalls == 0 {
		t.Fatal("expected a recorded credit stall")
	}
	// Granting credit releases the blocked frame.
	m.Grant(1, 100)
	fs = waitFrames(t, conn, 6)
	count = map[uint32]int{}
	for _, f := range fs {
		count[f.Stream]++
	}
	if count[1] != 3 {
		t.Fatalf("after grant, stalled stream flushed %d frames, want 3", count[1])
	}
}

// TestMuxStreamOnFlushRunsAfterWrite pins the request-credit hook: the
// callback fires only once the frame's bytes hit the socket.
func TestMuxStreamOnFlushRunsAfterWrite(t *testing.T) {
	conn := &muxConn{}
	m := NewMuxWriter(conn, Version5, 0)
	defer m.Close()
	done := make(chan struct{})
	bp := GetBuf(4)
	*bp = (*bp)[:4]
	if err := m.Enqueue(Frame{Type: TypeResult, ID: 1, Stream: 3, Payload: *bp}, bp, func() { close(done) }); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("onFlush never ran")
	}
	if len(conn.snapshot()) != 1 {
		t.Fatal("onFlush ran but frame not on the wire")
	}
}

// TestMuxStreamControlBypassesCredit pins that control frames flush even
// when every data stream is credit-blocked.
func TestMuxStreamControlBypassesCredit(t *testing.T) {
	conn := &muxConn{}
	m := NewMuxWriter(conn, Version5, 10)
	defer m.Close()
	big := GetBuf(64)
	*big = (*big)[:64]
	if err := m.Enqueue(Frame{Type: TypeResult, ID: 1, Stream: 1, Payload: *big}, big, nil); err != nil {
		t.Fatal(err)
	}
	blocked := GetBuf(64)
	*blocked = (*blocked)[:64]
	if err := m.Enqueue(Frame{Type: TypeResult, ID: 2, Stream: 1, Payload: *blocked}, blocked, nil); err != nil {
		t.Fatal(err)
	}
	wu := GetBuf(4)
	*wu = AppendWindowUpdate((*wu)[:0], 1024)
	if err := m.EnqueueControl(Frame{Type: TypeWindowUpdate, ID: 0, Stream: 1, Payload: *wu}, wu); err != nil {
		t.Fatal(err)
	}
	fs := waitFrames(t, conn, 2)
	var sawControl bool
	for _, f := range fs {
		if f.Type == TypeWindowUpdate {
			sawControl = true
		}
		if f.ID == 2 {
			t.Fatal("credit-blocked data frame flushed without a grant")
		}
	}
	if !sawControl {
		t.Fatal("control frame did not bypass the blocked stream")
	}
}

// TestMuxStreamInterleavingStorm is the -race storm: many streams, many
// producers, random credit grants and a consumer granting as it reads,
// all racing Close. Every frame that flushes must be well-formed and
// in-order within its stream.
func TestMuxStreamInterleavingStorm(t *testing.T) {
	conn := &muxConn{}
	m := NewMuxWriter(conn, Version5, 512)
	const (
		streams   = 32
		perStream = 50
	)
	var wg sync.WaitGroup
	for s := 1; s <= streams; s++ {
		wg.Add(1)
		go func(stream uint32) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(stream)))
			for i := 0; i < perStream; i++ {
				n := 1 + rng.Intn(100)
				bp := GetBuf(n)
				*bp = (*bp)[:n]
				(*bp)[0] = byte(i) // sequence marker for order checking
				f := Frame{Type: TypeResult, ID: uint64(i), Stream: stream, Payload: *bp}
				if err := m.Enqueue(f, bp, nil); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
				if rng.Intn(4) == 0 {
					time.Sleep(time.Microsecond)
				}
			}
		}(uint32(s))
	}
	// Granter: keep all streams alive with random credit so the storm
	// terminates; grants for unknown/evicted streams must be harmless.
	stop := make(chan struct{})
	var granters sync.WaitGroup
	for g := 0; g < 4; g++ {
		granters.Add(1)
		go func(seed int64) {
			defer granters.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.Grant(uint32(1+rng.Intn(streams+4)), 1+rng.Intn(256))
			}
		}(int64(g))
	}
	wg.Wait()
	want := streams * perStream
	deadline := time.Now().Add(10 * time.Second)
	for len(conn.snapshot()) < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	granters.Wait()
	m.Close()

	fs := conn.snapshot()
	if len(fs) != want {
		t.Fatalf("flushed %d frames, want %d", len(fs), want)
	}
	next := map[uint32]uint64{}
	for _, f := range fs {
		if f.ID != next[f.Stream] {
			t.Fatalf("stream %d: frame %d arrived, want %d (reordering within a stream)", f.Stream, f.ID, next[f.Stream])
		}
		if f.Payload[0] != byte(f.ID) {
			t.Fatalf("stream %d frame %d: payload marker %d", f.Stream, f.ID, f.Payload[0])
		}
		next[f.Stream]++
	}
	if st := m.Stats(); st.StreamsOpen != 0 {
		t.Fatalf("streams open after close = %d, want 0", st.StreamsOpen)
	}
}

// TestMuxStreamCloseReleasesQueued pins the ownership contract's shutdown
// arm: Close drains queued frames (releasing their pooled buffers) and
// later enqueues fail cleanly.
func TestMuxStreamCloseReleasesQueued(t *testing.T) {
	m := NewMuxWriter(io.Discard, Version5, 10)
	big := GetBuf(64)
	*big = (*big)[:64]
	_ = m.Enqueue(Frame{Type: TypeResult, ID: 1, Stream: 1, Payload: *big}, big, nil)
	blocked := GetBuf(64)
	*blocked = (*blocked)[:64]
	_ = m.Enqueue(Frame{Type: TypeResult, ID: 2, Stream: 1, Payload: *blocked}, blocked, nil)
	m.Close()
	bp := GetBuf(4)
	*bp = (*bp)[:4]
	if err := m.Enqueue(Frame{Type: TypeResult, ID: 3, Stream: 1, Payload: *bp}, bp, nil); err == nil {
		t.Fatal("enqueue after close succeeded")
	}
	if st := m.Stats(); st.BytesQueued != 0 || st.StreamsOpen != 0 {
		t.Fatalf("after close: %+v, want empty", st)
	}
}

// TestStreamStatsVersionSkewInterop pins the Version5 stats contract: the
// Version4 encoding (no transport counters) decodes with the transport
// fields zero, and the Version5 encoding carries them through.
func TestStreamStatsVersionSkewInterop(t *testing.T) {
	s := StatsPayload{
		ID:                       "mux-skew",
		Lookups:                  11,
		ReplRepairBatches:        22,
		TransportStreamsOpen:     33,
		TransportCreditStalls:    44,
		TransportBytesInFlight:   55,
		TransportWindowUpdates:   66,
		TransportRedirectsIssued: 77,
	}
	dec4, err := DecodeStats(EncodeStatsV(s, Version4))
	if err != nil {
		t.Fatalf("decode v4: %v", err)
	}
	if dec4.Lookups != 11 || dec4.ReplRepairBatches != 22 {
		t.Fatalf("v4 lost pre-transport fields: %+v", dec4)
	}
	if dec4.TransportStreamsOpen != 0 || dec4.TransportCreditStalls != 0 || dec4.TransportRedirectsIssued != 0 {
		t.Fatalf("v4 encoding carried transport fields it should not have: %+v", dec4)
	}
	dec5, err := DecodeStats(EncodeStatsV(s, Version5))
	if err != nil {
		t.Fatalf("decode v5: %v", err)
	}
	if dec5 != s {
		t.Fatalf("v5 round trip = %+v, want %+v", dec5, s)
	}
	if v5, v4 := EncodeStatsV(s, Version5), EncodeStatsV(s, Version4); len(v5) <= len(v4) {
		t.Fatalf("v5 payload (%d bytes) not larger than v4 payload (%d bytes)", len(v5), len(v4))
	}
}
