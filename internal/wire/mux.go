package wire

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
)

// This file is the stream-multiplexing layer of the wire protocol
// (protocol >= 5): many logical streams share one connection, each with
// an independent credit window, so a slow consumer exhausts only its own
// stream's credit while every other stream keeps flowing.
//
// MuxWriter is the sending half. Frames enqueue without blocking —
// callers (the server's read loop and handler goroutines) must never
// wait on a peer's consumption rate — and a dedicated flusher goroutine
// coalesces the head frames of every flushable stream, round-robin,
// into a single net.Buffers writev. A stream is flushable while its
// send window is positive; the window is charged the full payload size
// at flush (one oversized frame may drive it negative, blocking the
// stream until WINDOW_UPDATE grants restore it). Stream 0 is the
// control/legacy stream and is never credit-charged.
//
// Buffer ownership across the mux boundary: Enqueue and EnqueueControl
// take ownership of the frame's pooled payload buffer — the mux releases
// it with PutBuf after the frame reaches the socket (or when the writer
// shuts down). The caller must not touch the buffer after enqueueing,
// exactly as with PutBuf itself.

const (
	// DefaultWindow is the initial per-stream send-credit window. Large
	// enough that a stream consuming promptly never stalls (a full
	// 64-entry batch response is ~640 B; a window holds hundreds of
	// them), small enough that a stalled consumer pins at most 256 KiB
	// of queued responses.
	DefaultWindow = 256 << 10

	// maxCoalesce bounds how many frames one flush gathers into a single
	// writev (each frame contributes a header vector and a payload
	// vector; 64 frames stays well under the 1024-iovec syscall limit).
	maxCoalesce = 64
)

// ErrMuxClosed reports an enqueue on a closed MuxWriter.
var ErrMuxClosed = errors.New("wire: mux writer closed")

// muxFrame is one queued frame plus its pooled payload buffer and an
// optional after-flush hook.
type muxFrame struct {
	f       Frame
	bp      *[]byte
	onFlush func()
}

// muxStream is the sender-side state of one logical stream.
type muxStream struct {
	win     int64 // send credit remaining; may go negative
	q       []muxFrame
	inReady bool
}

// MuxWriter multiplexes frames from many logical streams onto one
// writer. Enqueue never blocks on peer consumption; a background flusher
// writes ready frames. Safe for concurrent use.
type MuxWriter struct {
	w       io.Writer
	version int
	window  int64

	mu      sync.Mutex
	cond    *sync.Cond
	streams map[uint32]*muxStream
	ready   []uint32 // stream ids with a flushable head, FIFO round-robin
	ctrl    []muxFrame
	closed  bool
	err     error
	done    chan struct{}

	queuedBytes  int64
	creditStalls uint64
	framesSent   uint64
	flushes      uint64

	// Flusher-only scratch: per-frame headers and the iovec list, reused
	// across flushes so a flush allocates nothing.
	hdrs [maxCoalesce][4 + headerSizeV5]byte
	vecs net.Buffers
}

// NewMuxWriter wraps w (for peak effect a net.Conn, so the coalesced
// flush becomes one writev). window is the initial per-stream send
// credit; 0 means DefaultWindow. The returned writer owns a background
// flusher goroutine until Close.
func NewMuxWriter(w io.Writer, version int, window int) *MuxWriter {
	if window <= 0 {
		window = DefaultWindow
	}
	m := &MuxWriter{
		w:       w,
		version: version,
		window:  int64(window),
		streams: make(map[uint32]*muxStream),
		done:    make(chan struct{}),
		vecs:    make(net.Buffers, 0, 2*maxCoalesce),
	}
	m.cond = sync.NewCond(&m.mu)
	go m.flushLoop()
	return m
}

// Window returns the initial per-stream send credit.
func (m *MuxWriter) Window() int { return int(m.window) }

func (s *muxStream) flushable(id uint32) bool {
	return len(s.q) > 0 && (id == 0 || s.win > 0)
}

// Enqueue queues a data frame on its stream (f.Stream) and takes
// ownership of bp, the pooled buffer backing f.Payload (nil when the
// payload is empty or unpooled) — the mux releases it after the flush.
// The frame is charged against the stream's send window when it flushes;
// if the window is exhausted the frame waits, without blocking the
// caller, until Grant restores credit. onFlush, if non-nil, runs after
// the frame's bytes reach the socket (used by the server to return
// request credit once the response has actually shipped).
//
//shhc:takes-buf bp
func (m *MuxWriter) Enqueue(f Frame, bp *[]byte, onFlush func()) error {
	//lint:ignore poolescape the muxFrame literal IS the takes-buf transfer this method declares: the flush loop (or the enqueue/Close error paths) releases bp exactly once.
	return m.enqueue(muxFrame{f: f, bp: bp, onFlush: onFlush}, false)
}

// EnqueueControl queues a control frame (WindowUpdate, HelloAck, Pong…):
// never credit-charged and flushed ahead of data frames. Takes ownership
// of bp exactly as Enqueue does.
//
//shhc:takes-buf bp
func (m *MuxWriter) EnqueueControl(f Frame, bp *[]byte) error {
	//lint:ignore poolescape the muxFrame literal IS the takes-buf transfer this method declares: the flush loop (or the enqueue/Close error paths) releases bp exactly once.
	return m.enqueue(muxFrame{f: f, bp: bp}, true)
}

func (m *MuxWriter) enqueue(fr muxFrame, control bool) error {
	m.mu.Lock()
	if m.closed || m.err != nil {
		err := m.err
		m.mu.Unlock()
		PutBuf(fr.bp)
		if err == nil {
			err = ErrMuxClosed
		}
		return err
	}
	if control {
		m.ctrl = append(m.ctrl, fr)
	} else {
		id := fr.f.Stream
		st := m.streams[id]
		if st == nil {
			st = &muxStream{win: m.window}
			m.streams[id] = st
		}
		st.q = append(st.q, fr)
		m.queuedBytes += int64(len(fr.f.Payload))
		if st.flushable(id) {
			if !st.inReady {
				st.inReady = true
				m.ready = append(m.ready, id)
			}
		} else if len(st.q) == 1 {
			// The head frame arrived into an exhausted window: the slow
			// consumer stalls itself, nobody else.
			m.creditStalls++
		}
	}
	m.cond.Signal()
	m.mu.Unlock()
	return nil
}

// Grant adds send credit to a stream (the receiving side consumed n
// bytes and returned them via WINDOW_UPDATE). Unblocks the stream's
// queued frames if the window turns positive.
func (m *MuxWriter) Grant(stream uint32, n int) {
	m.mu.Lock()
	st := m.streams[stream]
	if st == nil {
		// A grant for a stream with nothing queued just (re)creates its
		// state; keep the window capped at initial so a peer cannot
		// inflate its credit beyond what we ever charged.
		m.mu.Unlock()
		return
	}
	st.win += int64(n)
	if st.win > m.window {
		st.win = m.window
	}
	if st.flushable(stream) && !st.inReady {
		st.inReady = true
		m.ready = append(m.ready, stream)
		m.cond.Signal()
	}
	m.mu.Unlock()
}

// MuxStats is a point-in-time snapshot of the mux's transport counters.
type MuxStats struct {
	StreamsOpen  int    // streams with queued frames or charged credit
	CreditStalls uint64 // enqueues that found the stream's window exhausted
	BytesQueued  int64  // payload bytes enqueued but not yet flushed
	FramesSent   uint64
	Flushes      uint64
}

// Stats snapshots the transport counters.
func (m *MuxWriter) Stats() MuxStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MuxStats{
		StreamsOpen:  len(m.streams),
		CreditStalls: m.creditStalls,
		BytesQueued:  m.queuedBytes,
		FramesSent:   m.framesSent,
		Flushes:      m.flushes,
	}
}

// Close shuts the flusher down and releases every queued buffer. Pending
// onFlush hooks do not run (the connection is going away with them).
func (m *MuxWriter) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.drainLocked()
	m.cond.Broadcast()
	m.mu.Unlock()
	<-m.done
	return nil
}

// drainLocked releases every queued frame's buffer. Caller holds mu.
func (m *MuxWriter) drainLocked() {
	for _, fr := range m.ctrl {
		PutBuf(fr.bp)
	}
	m.ctrl = nil
	for id, st := range m.streams {
		for _, fr := range st.q {
			m.queuedBytes -= int64(len(fr.f.Payload))
			PutBuf(fr.bp)
		}
		st.q = nil
		delete(m.streams, id)
	}
	m.ready = nil
}

// flushLoop is the single flusher goroutine: gather the control queue
// plus one frame per ready stream (round-robin), emit them as one
// vectored write, release the buffers, run the after-flush hooks.
func (m *MuxWriter) flushLoop() {
	defer close(m.done)
	var batch [maxCoalesce]muxFrame
	for {
		m.mu.Lock()
		for !m.closed && m.err == nil && len(m.ctrl) == 0 && len(m.ready) == 0 {
			m.cond.Wait()
		}
		if m.closed || m.err != nil {
			m.drainLocked()
			m.mu.Unlock()
			return
		}
		n := 0
		for n < maxCoalesce && len(m.ctrl) > 0 {
			batch[n] = m.ctrl[0]
			m.ctrl = m.ctrl[1:]
			n++
		}
		for n < maxCoalesce && len(m.ready) > 0 {
			id := m.ready[0]
			m.ready = m.ready[1:]
			st := m.streams[id]
			st.inReady = false
			if !st.flushable(id) {
				continue
			}
			fr := st.q[0]
			st.q = st.q[1:]
			m.queuedBytes -= int64(len(fr.f.Payload))
			if id != 0 {
				st.win -= int64(len(fr.f.Payload))
			}
			batch[n] = fr
			n++
			if st.flushable(id) {
				st.inReady = true
				m.ready = append(m.ready, id)
			} else if len(st.q) > 0 {
				// Charging this frame exhausted the window with data
				// still queued: the stream just stalled on credit.
				m.creditStalls++
			} else if st.win >= m.window {
				// Fully granted back and empty: the stream is idle;
				// evict its state so long-lived conns don't accrete
				// dead streams.
				delete(m.streams, id)
			}
		}
		m.mu.Unlock()
		if n == 0 {
			continue
		}
		err := m.writeBatch(batch[:n])
		for i := range batch[:n] {
			PutBuf(batch[i].bp)
			batch[i].bp = nil
		}
		if err != nil {
			m.mu.Lock()
			m.err = err
			m.drainLocked()
			m.mu.Unlock()
			return
		}
		for i := range batch[:n] {
			if batch[i].onFlush != nil {
				batch[i].onFlush()
			}
			batch[i] = muxFrame{}
		}
		m.mu.Lock()
		m.framesSent += uint64(n)
		m.flushes++
		m.mu.Unlock()
	}
}

// writeBatch emits the frames as one vectored write: per-frame headers
// from the reused scratch array interleaved with the payloads. Runs only
// on the flusher goroutine.
func (m *MuxWriter) writeBatch(batch []muxFrame) error {
	hs := headerSizeFor(m.version)
	m.vecs = m.vecs[:0]
	for i := range batch {
		f := &batch[i].f
		n := hs + len(f.Payload)
		if n > MaxFrameSize {
			return ErrFrameTooLarge
		}
		hdr := &m.hdrs[i]
		binary.BigEndian.PutUint32(hdr[0:4], uint32(n))
		hdr[4] = byte(f.Type)
		binary.BigEndian.PutUint64(hdr[5:13], f.ID)
		if m.version >= Version1 {
			binary.BigEndian.PutUint64(hdr[13:21], uint64(f.Timeout))
		}
		if m.version >= Version5 {
			binary.BigEndian.PutUint32(hdr[21:25], f.Stream)
		}
		m.vecs = append(m.vecs, hdr[:4+hs])
		if len(f.Payload) > 0 {
			m.vecs = append(m.vecs, f.Payload)
		}
	}
	_, err := m.vecs.WriteTo(m.w)
	// Drop payload references either way: a retained element would pin
	// pooled buffers past their release.
	for i := range m.vecs {
		m.vecs[i] = nil
	}
	m.vecs = m.vecs[:0]
	return err
}
