package backup

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"shhc/internal/fingerprint"
	"shhc/internal/webfront"
)

// misbehavingFront is a fake front-end whose behavior each test controls.
type misbehavingFront struct {
	planFn  func(w http.ResponseWriter, req webfront.PlanRequest)
	chunkFn func(w http.ResponseWriter, hexFP string)
}

func (m *misbehavingFront) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/plan", func(w http.ResponseWriter, r *http.Request) {
		var req webfront.PlanRequest
		json.NewDecoder(r.Body).Decode(&req)
		if m.planFn != nil {
			m.planFn(w, req)
			return
		}
		json.NewEncoder(w).Encode(webfront.PlanResponse{Missing: []int{}})
	})
	mux.HandleFunc("/v1/upload", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("/v1/chunk/", func(w http.ResponseWriter, r *http.Request) {
		if m.chunkFn != nil {
			m.chunkFn(w, r.URL.Path[len("/v1/chunk/"):])
			return
		}
		http.NotFound(w, r)
	})
	return mux
}

func newMisbehavingClient(t *testing.T, m *misbehavingFront) *Client {
	t.Helper()
	ts := httptest.NewServer(m.handler())
	t.Cleanup(ts.Close)
	c, err := New(Config{FrontURL: ts.URL, ChunkSize: 1024, PlanBatch: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestBackupRejectsOutOfRangePlanIndices(t *testing.T) {
	m := &misbehavingFront{
		planFn: func(w http.ResponseWriter, req webfront.PlanRequest) {
			json.NewEncoder(w).Encode(webfront.PlanResponse{Missing: []int{999}})
		},
	}
	c := newMisbehavingClient(t, m)
	if _, err := c.Backup(context.Background(), "x", bytes.NewReader(make([]byte, 4096))); err == nil {
		t.Fatal("out-of-range plan index accepted")
	}
}

func TestBackupSurfacesPlanHTTPError(t *testing.T) {
	m := &misbehavingFront{
		planFn: func(w http.ResponseWriter, _ webfront.PlanRequest) {
			http.Error(w, "cluster on fire", http.StatusBadGateway)
		},
	}
	c := newMisbehavingClient(t, m)
	if _, err := c.Backup(context.Background(), "x", bytes.NewReader(make([]byte, 4096))); err == nil {
		t.Fatal("plan HTTP error not surfaced")
	}
}

func TestRestoreDetectsCorruptChunk(t *testing.T) {
	// The server returns bytes that do not hash to the manifest's
	// fingerprint: Restore must fail rather than write corrupt data.
	m := &misbehavingFront{
		chunkFn: func(w http.ResponseWriter, _ string) {
			w.Write([]byte("definitely not the original chunk"))
		},
	}
	c := newMisbehavingClient(t, m)
	manifest := Manifest{
		Name:   "corrupt",
		Chunks: []string{fingerprint.FromData([]byte("original")).String()},
	}
	var out bytes.Buffer
	if err := c.Restore(context.Background(), manifest, &out); err == nil {
		t.Fatal("corrupt chunk accepted during restore")
	}
}

func TestRestoreSurfacesMissingChunk(t *testing.T) {
	c := newMisbehavingClient(t, &misbehavingFront{}) // chunk handler 404s
	manifest := Manifest{
		Name:   "missing",
		Chunks: []string{fingerprint.FromData([]byte("gone")).String()},
	}
	var out bytes.Buffer
	if err := c.Restore(context.Background(), manifest, &out); err == nil {
		t.Fatal("missing chunk not surfaced")
	}
}

func TestRestoreRejectsBadManifestEntry(t *testing.T) {
	c := newMisbehavingClient(t, &misbehavingFront{})
	var out bytes.Buffer
	if err := c.Restore(context.Background(), Manifest{Chunks: []string{"zz"}}, &out); err == nil {
		t.Fatal("malformed manifest entry accepted")
	}
}

func TestLoadManifestErrors(t *testing.T) {
	if _, err := LoadManifest("/nonexistent/manifest.json"); err == nil {
		t.Fatal("missing manifest file accepted")
	}
}
