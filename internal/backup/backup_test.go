// Package backup's tests double as the full-pipeline integration suite:
// client -> web front-end -> hash cluster -> cloud storage, all in-process.
package backup

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"shhc/internal/cloudsim"
	"shhc/internal/core"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
	"shhc/internal/webfront"
)

// pipeline wires up a complete in-process backup service.
type pipeline struct {
	ts     *httptest.Server
	chunks *cloudsim.Store
}

func newPipeline(t *testing.T, nodes int) *pipeline {
	t.Helper()
	backends := make([]core.Backend, nodes)
	for i := range backends {
		node, err := core.NewNode(core.NodeConfig{
			ID:            ring.NodeID(fmt.Sprintf("n%d", i)),
			Store:         hashdb.NewMemStore(nil),
			CacheSize:     512,
			BloomExpected: 100000,
		})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		backends[i] = node
	}
	cluster, err := core.NewCluster(core.ClusterConfig{}, backends...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	chunks := cloudsim.New(cloudsim.Config{})
	front, err := webfront.New(webfront.Config{Index: cluster, Chunks: chunks})
	if err != nil {
		t.Fatalf("webfront.New: %v", err)
	}
	ts := httptest.NewServer(front.Handler())
	t.Cleanup(func() {
		ts.Close()
		cluster.Close()
		chunks.Close()
	})
	return &pipeline{ts: ts, chunks: chunks}
}

func newClient(t *testing.T, p *pipeline, chunkSize int) *Client {
	t.Helper()
	c, err := New(Config{FrontURL: p.ts.URL, ChunkSize: chunkSize, PlanBatch: 64})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func randomBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, n)
	rng.Read(buf)
	return buf
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without FrontURL accepted")
	}
}

func TestFirstBackupUploadsEverything(t *testing.T) {
	p := newPipeline(t, 2)
	client := newClient(t, p, 4096)
	data := randomBytes(100*4096, 1)

	report, err := client.Backup(context.Background(), "first", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Backup: %v", err)
	}
	if report.Chunks != 100 || report.NewChunks != 100 || report.DupChunks != 0 {
		t.Fatalf("report = %+v, want 100 all-new chunks", report)
	}
	if report.BytesUploaded != int64(len(data)) {
		t.Fatalf("BytesUploaded = %d, want %d", report.BytesUploaded, len(data))
	}
	if st := p.chunks.Stats(); st.Objects != 100 || st.RedundantPuts != 0 {
		t.Fatalf("store stats = %+v, want 100 objects, 0 redundant", st)
	}
}

func TestRepeatBackupUploadsNothing(t *testing.T) {
	// The cloud-backup money shot: a full re-backup of unchanged data
	// moves zero chunk bytes over the WAN.
	p := newPipeline(t, 3)
	client := newClient(t, p, 4096)
	data := randomBytes(64*4096, 2)

	if _, err := client.Backup(context.Background(), "gen-1", bytes.NewReader(data)); err != nil {
		t.Fatalf("first Backup: %v", err)
	}
	report, err := client.Backup(context.Background(), "gen-2", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("second Backup: %v", err)
	}
	if report.NewChunks != 0 || report.BytesUploaded != 0 {
		t.Fatalf("re-backup uploaded %d chunks / %d bytes, want 0/0", report.NewChunks, report.BytesUploaded)
	}
	if got := report.DedupRatio(); got != 1.0 {
		t.Fatalf("DedupRatio = %v, want 1.0", got)
	}
	if st := p.chunks.Stats(); st.RedundantPuts != 0 {
		t.Fatalf("store saw %d redundant uploads; dedup failed upstream", st.RedundantPuts)
	}
}

func TestIncrementalBackup(t *testing.T) {
	p := newPipeline(t, 2)
	client := newClient(t, p, 4096)
	gen1 := randomBytes(50*4096, 3)

	if _, err := client.Backup(context.Background(), "gen-1", bytes.NewReader(gen1)); err != nil {
		t.Fatalf("Backup gen-1: %v", err)
	}
	// Change 5 chunks, keep 45.
	gen2 := append([]byte(nil), gen1...)
	copy(gen2[10*4096:15*4096], randomBytes(5*4096, 4))

	report, err := client.Backup(context.Background(), "gen-2", bytes.NewReader(gen2))
	if err != nil {
		t.Fatalf("Backup gen-2: %v", err)
	}
	if report.NewChunks != 5 || report.DupChunks != 45 {
		t.Fatalf("report = %+v, want 5 new / 45 dup", report)
	}
}

func TestRestoreRoundTrip(t *testing.T) {
	p := newPipeline(t, 2)
	client := newClient(t, p, 4096)
	data := randomBytes(37*4096+123, 5) // non-aligned tail chunk

	report, err := client.Backup(context.Background(), "restore-me", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Backup: %v", err)
	}
	var out bytes.Buffer
	if err := client.Restore(context.Background(), report.Manifest, &out); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("restored bytes differ from original")
	}
}

func TestRestoreWithContentDefinedChunking(t *testing.T) {
	p := newPipeline(t, 2)
	client := newClient(t, p, 0) // gear chunking
	data := randomBytes(300000, 6)

	report, err := client.Backup(context.Background(), "gear", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Backup: %v", err)
	}
	var out bytes.Buffer
	if err := client.Restore(context.Background(), report.Manifest, &out); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("restored bytes differ from original")
	}
}

func TestCrossClientDedup(t *testing.T) {
	// Two clients with identical data: the second client's backup is
	// fully deduplicated against the first's — the data-center-wide
	// dedup the paper targets.
	p := newPipeline(t, 4)
	data := randomBytes(40*4096, 7)

	c1 := newClient(t, p, 4096)
	if _, err := c1.Backup(context.Background(), "client-1", bytes.NewReader(data)); err != nil {
		t.Fatalf("client-1 Backup: %v", err)
	}
	c2 := newClient(t, p, 4096)
	report, err := c2.Backup(context.Background(), "client-2", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("client-2 Backup: %v", err)
	}
	if report.NewChunks != 0 {
		t.Fatalf("client-2 uploaded %d chunks, want 0 (cross-client dedup)", report.NewChunks)
	}
}

func TestManifestSaveLoad(t *testing.T) {
	m := Manifest{Name: "x", Chunks: []string{"aa", "bb"}, Bytes: 42}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := SaveManifest(m, path); err != nil {
		t.Fatalf("SaveManifest: %v", err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatalf("LoadManifest: %v", err)
	}
	if got.Name != m.Name || got.Bytes != m.Bytes || len(got.Chunks) != 2 {
		t.Fatalf("loaded manifest = %+v, want %+v", got, m)
	}
}

func TestBackupFile(t *testing.T) {
	p := newPipeline(t, 2)
	client := newClient(t, p, 4096)
	path := filepath.Join(t.TempDir(), "data.bin")
	data := randomBytes(10*4096, 8)
	if err := osWriteFile(path, data); err != nil {
		t.Fatal(err)
	}
	report, err := client.BackupFile(context.Background(), path)
	if err != nil {
		t.Fatalf("BackupFile: %v", err)
	}
	if report.Chunks != 10 {
		t.Fatalf("Chunks = %d, want 10", report.Chunks)
	}
}

func TestEmptyStream(t *testing.T) {
	p := newPipeline(t, 1)
	client := newClient(t, p, 4096)
	report, err := client.Backup(context.Background(), "empty", bytes.NewReader(nil))
	if err != nil {
		t.Fatalf("Backup of empty stream: %v", err)
	}
	if report.Chunks != 0 || report.BytesUploaded != 0 {
		t.Fatalf("report = %+v, want zero work", report)
	}
}
