package backup

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"shhc/internal/cloudsim"
	"shhc/internal/core"
	"shhc/internal/hashdb"
	"shhc/internal/lb"
	"shhc/internal/ring"
	"shhc/internal/webfront"
)

// TestFullFigure2Topology stands up the paper's complete architecture:
// backup clients -> HTTP load balancer -> two web front-ends -> one shared
// hash cluster -> one shared cloud store, and verifies data-center-wide
// dedup works through every tier.
func TestFullFigure2Topology(t *testing.T) {
	// Shared hash cluster.
	backends := make([]core.Backend, 3)
	for i := range backends {
		node, err := core.NewNode(core.NodeConfig{
			ID:            ring.NodeID(fmt.Sprintf("n%d", i)),
			Store:         hashdb.NewMemStore(nil),
			CacheSize:     1 << 12,
			BloomExpected: 1 << 16,
		})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		backends[i] = node
	}
	cluster, err := core.NewCluster(core.ClusterConfig{}, backends...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()

	// Shared cloud store.
	chunks := cloudsim.New(cloudsim.Config{})
	defer chunks.Close()

	// Two web front-ends (the "Web Server" boxes in Figure 2).
	var frontURLs []string
	for i := 0; i < 2; i++ {
		front, err := webfront.New(webfront.Config{Index: cluster, Chunks: chunks})
		if err != nil {
			t.Fatalf("webfront.New: %v", err)
		}
		ts := httptest.NewServer(front.Handler())
		defer ts.Close()
		frontURLs = append(frontURLs, ts.URL)
	}

	// The load balancer (the "HAProxy" box).
	balancer, err := lb.New(lb.Config{
		Backends:       frontURLs,
		HealthInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("lb.New: %v", err)
	}
	defer balancer.Close()
	if !balancer.WaitHealthy(context.Background(), 2*time.Second) {
		t.Fatal("no front-end became healthy")
	}
	lbServer := httptest.NewServer(balancer)
	defer lbServer.Close()

	// Two clients with identical data, hitting the LB concurrently.
	data := make([]byte, 64*4096)
	rand.New(rand.NewSource(5)).Read(data)

	var wg sync.WaitGroup
	reports := make([]Report, 2)
	errs := make([]error, 2)
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client, err := New(Config{FrontURL: lbServer.URL, ChunkSize: 4096, PlanBatch: 32})
			if err != nil {
				errs[c] = err
				return
			}
			reports[c], errs[c] = client.Backup(context.Background(), fmt.Sprintf("client-%d", c), bytes.NewReader(data))
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}

	// Data-center-wide dedup: 64 unique chunks stored once, regardless
	// of which front-end each batch hit.
	st := chunks.Stats()
	if st.Objects != 64 {
		t.Fatalf("cloud store holds %d objects, want 64", st.Objects)
	}
	if st.RedundantPuts != 0 {
		t.Fatalf("%d redundant uploads reached the cloud store", st.RedundantPuts)
	}
	totalNew := reports[0].NewChunks + reports[1].NewChunks
	if totalNew != 64 {
		t.Fatalf("clients uploaded %d chunks total, want exactly 64", totalNew)
	}

	// Both front-ends served traffic.
	served := 0
	for _, bst := range balancer.Stats() {
		if bst.Served > 0 {
			served++
		}
	}
	if served != 2 {
		t.Fatalf("only %d/2 front-ends served traffic", served)
	}

	// Restore through the load balancer too.
	client, err := New(Config{FrontURL: lbServer.URL, ChunkSize: 4096})
	if err != nil {
		t.Fatalf("backup.New: %v", err)
	}
	var out bytes.Buffer
	if err := client.Restore(context.Background(), reports[0].Manifest, &out); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("restored bytes differ")
	}
}
