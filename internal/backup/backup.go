// Package backup implements the paper's Client Application tier: the
// program on user machines that chunks local data, fingerprints it, asks
// the cloud back-up service which chunks are new, and uploads only those
// ("selectively upload new data that has not yet been backed up", §III.A).
package backup

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"shhc/internal/chunk"
	"shhc/internal/fingerprint"
	"shhc/internal/webfront"
)

// Config configures a backup client.
type Config struct {
	// FrontURL is the web front-end base URL, e.g. "http://10.0.0.1:8080".
	FrontURL string
	// ChunkSize selects fixed-size chunking when > 0 (paper default 4 KiB
	// or 8 KiB); 0 selects content-defined chunking.
	ChunkSize int
	// Gear tunes content-defined chunking when ChunkSize == 0.
	Gear chunk.GearConfig
	// PlanBatch is the number of fingerprints sent per plan request —
	// the client-side buffer of §IV ("each client holds a buffer to
	// aggregate hash queries and send them as a batch"). Default 2048.
	PlanBatch int
	// HTTPClient overrides the default client (testing).
	HTTPClient *http.Client
}

func (c *Config) fill() error {
	if c.FrontURL == "" {
		return fmt.Errorf("backup: Config.FrontURL is required")
	}
	if c.PlanBatch <= 0 {
		c.PlanBatch = 2048
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 60 * time.Second}
	}
	return nil
}

// Manifest records the ordered chunk fingerprints of one backup, enough to
// restore the stream later.
type Manifest struct {
	Name   string   `json:"name"`
	Chunks []string `json:"chunks"` // hex fingerprints in stream order
	Bytes  int64    `json:"bytes"`
}

// Report summarizes one backup run: how much deduplication saved.
type Report struct {
	Chunks        int
	NewChunks     int
	DupChunks     int
	BytesTotal    int64
	BytesUploaded int64
	Manifest      Manifest
}

// DedupRatio is the fraction of chunks that were already stored.
func (r Report) DedupRatio() float64 {
	if r.Chunks == 0 {
		return 0
	}
	return float64(r.DupChunks) / float64(r.Chunks)
}

func (r Report) String() string {
	return fmt.Sprintf("chunks=%d new=%d dup=%d (%.1f%% dedup) bytes=%d uploaded=%d",
		r.Chunks, r.NewChunks, r.DupChunks, r.DedupRatio()*100, r.BytesTotal, r.BytesUploaded)
}

// Client talks to the web front-end.
type Client struct {
	cfg Config
}

// New creates a backup client.
func New(cfg Config) (*Client, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Client{cfg: cfg}, nil
}

func (c *Client) newChunker(r io.Reader) (chunk.Chunker, error) {
	if c.cfg.ChunkSize > 0 {
		return chunk.NewFixed(r, c.cfg.ChunkSize)
	}
	return chunk.NewGear(r, c.cfg.Gear)
}

// Backup deduplicates and uploads one stream under the given name.
// Cancelling ctx abandons the run between chunks and aborts in-flight
// plan and upload requests; the partial upload is harmless (chunks are
// content-addressed and idempotent; a re-run skips what already landed).
func (c *Client) Backup(ctx context.Context, name string, r io.Reader) (Report, error) {
	chunker, err := c.newChunker(r)
	if err != nil {
		return Report{}, err
	}
	report := Report{Manifest: Manifest{Name: name}}

	batch := make([]chunk.Chunk, 0, c.cfg.PlanBatch)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := c.processBatch(ctx, batch, &report); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return Report{}, fmt.Errorf("backup %s: %w", name, err)
		}
		ch, err := chunker.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Report{}, fmt.Errorf("backup %s: %w", name, err)
		}
		report.Chunks++
		report.BytesTotal += int64(len(ch.Data))
		report.Manifest.Chunks = append(report.Manifest.Chunks, ch.FP.String())
		batch = append(batch, ch)
		if len(batch) >= c.cfg.PlanBatch {
			if err := flush(); err != nil {
				return Report{}, err
			}
		}
	}
	if err := flush(); err != nil {
		return Report{}, err
	}
	report.Manifest.Bytes = report.BytesTotal
	return report, nil
}

// BackupFile backs up one file by path.
func (c *Client) BackupFile(ctx context.Context, path string) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, fmt.Errorf("backup: open %s: %w", path, err)
	}
	defer f.Close()
	return c.Backup(ctx, path, f)
}

// processBatch asks for an upload plan and uploads the missing chunks.
func (c *Client) processBatch(ctx context.Context, batch []chunk.Chunk, report *Report) error {
	req := webfront.PlanRequest{Fingerprints: make([]string, len(batch))}
	for i, ch := range batch {
		req.Fingerprints[i] = ch.FP.String()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("backup: marshal plan: %w", err)
	}
	planReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.FrontURL+"/v1/plan", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("backup: build plan request: %w", err)
	}
	planReq.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.HTTPClient.Do(planReq)
	if err != nil {
		return fmt.Errorf("backup: plan request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("backup: plan request: %s", httpError(resp))
	}
	var plan webfront.PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
		return fmt.Errorf("backup: decode plan: %w", err)
	}

	missing := make(map[int]bool, len(plan.Missing))
	for _, idx := range plan.Missing {
		if idx < 0 || idx >= len(batch) {
			return fmt.Errorf("backup: plan references chunk %d outside batch of %d", idx, len(batch))
		}
		missing[idx] = true
	}
	for idx := range batch {
		if !missing[idx] {
			report.DupChunks++
			continue
		}
		if err := c.upload(ctx, batch[idx]); err != nil {
			return err
		}
		report.NewChunks++
		report.BytesUploaded += int64(len(batch[idx].Data))
	}
	return nil
}

func (c *Client) upload(ctx context.Context, ch chunk.Chunk) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.FrontURL+"/v1/upload", bytes.NewReader(ch.Data))
	if err != nil {
		return fmt.Errorf("backup: build upload: %w", err)
	}
	req.Header.Set(webfront.FingerprintHeader, ch.FP.String())
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("backup: upload %s: %w", ch.FP.Short(), err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("backup: upload %s: %s", ch.FP.Short(), httpError(resp))
	}
	return nil
}

// Restore streams a manifest's chunks from the service into w.
// Cancelling ctx stops the restore between chunks and aborts the
// in-flight fetch.
func (c *Client) Restore(ctx context.Context, m Manifest, w io.Writer) error {
	for i, hexFP := range m.Chunks {
		fp, err := fingerprint.Parse(hexFP)
		if err != nil {
			return fmt.Errorf("backup: manifest chunk %d: %w", i, err)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.FrontURL+"/v1/chunk/"+fp.String(), nil)
		if err != nil {
			return fmt.Errorf("backup: build fetch chunk %d: %w", i, err)
		}
		resp, err := c.cfg.HTTPClient.Do(req)
		if err != nil {
			return fmt.Errorf("backup: fetch chunk %d: %w", i, err)
		}
		if resp.StatusCode != http.StatusOK {
			msg := httpError(resp)
			resp.Body.Close()
			return fmt.Errorf("backup: fetch chunk %d (%s): %s", i, fp.Short(), msg)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("backup: read chunk %d: %w", i, err)
		}
		// Verify integrity end to end.
		if fingerprint.FromData(data) != fp {
			return fmt.Errorf("backup: chunk %d content does not match fingerprint %s", i, fp.Short())
		}
		if _, err := w.Write(data); err != nil {
			return fmt.Errorf("backup: write restored data: %w", err)
		}
	}
	return nil
}

// SaveManifest writes a manifest as JSON.
func SaveManifest(m Manifest, path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("backup: marshal manifest: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("backup: write manifest: %w", err)
	}
	return nil
}

// LoadManifest reads a manifest written by SaveManifest.
func LoadManifest(path string) (Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, fmt.Errorf("backup: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("backup: parse manifest: %w", err)
	}
	return m, nil
}

func httpError(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Sprintf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}
