// Package pow2 holds the one-line power-of-two arithmetic the striped
// structures (node stripes, LRU stripes, hashdb lock stripes, batcher
// queues) all share, so their stripe-count normalization cannot drift
// apart.
package pow2

// Floor rounds n down to the nearest power of two, with a floor of 1.
// Striped structures use it so stripe selection is a bit mask.
func Floor(n int) int {
	if n < 1 {
		return 1
	}
	for n&(n-1) != 0 {
		n &= n - 1
	}
	return n
}
