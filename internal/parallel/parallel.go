// Package parallel provides the bounded worker pool the storage layers use
// to overlap independent I/O operations.
package parallel

import (
	"context"
	"sync"
)

// IODepth is the default bound on how many storage operations one batch
// overlaps. Modeled after SATA NCQ / flash-channel queue depth: enough to
// expose a device's internal parallelism, small enough not to flood the
// runtime with goroutines.
const IODepth = 16

// Do runs fn(0..count-1) across at most `workers` goroutines, returning
// the first error. Remaining work is abandoned after an error (workers
// finish their current item and stop pulling). A cancelled ctx likewise
// stops workers from pulling new items — an operation already issued runs
// to completion (device I/O cannot be revoked), but no further items start
// — and Do returns ctx.Err() if cancellation left work undone.
func Do(ctx context.Context, count, workers int, fn func(int) error) error {
	if workers > count {
		workers = count
	}
	done := ctx.Done()
	if workers <= 1 {
		for i := 0; i < count; i++ {
			if done != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     int
		nextMu   sync.Mutex
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if done != nil {
					if err := ctx.Err(); err != nil {
						fail(err)
						return
					}
				}
				nextMu.Lock()
				if next >= count {
					nextMu.Unlock()
					return
				}
				i := next
				next++
				nextMu.Unlock()
				if failed() {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
