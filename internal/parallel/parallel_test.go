package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestDoRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 4, 16, 100} {
		const count = 500
		var seen [count]atomic.Int32
		if err := Do(context.Background(), count, workers, func(i int) error {
			seen[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestDoReturnsFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := Do(context.Background(), 1000, 8, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran.Load() >= 1000 {
		t.Fatal("no work was abandoned after the error")
	}
}

func TestDoZeroCount(t *testing.T) {
	if err := Do(context.Background(), 0, 8, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("Do(0): %v", err)
	}
}
