package rpc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shhc/internal/core"
	"shhc/internal/fingerprint"
	"shhc/internal/ring"
	"shhc/internal/wire"
)

func ringNodeID(s string) ring.NodeID { return ring.NodeID(s) }

// ErrClientClosed is returned by operations on a closed client.
var ErrClientClosed = errors.New("rpc: client is closed")

// ServerError is a failure reported by the remote node (as opposed to a
// transport failure). When the remote failure was a context cancellation
// or deadline on the server side, Unwrap exposes the matching context
// error so errors.Is(err, context.DeadlineExceeded) holds across the wire.
type ServerError struct {
	Msg   string
	cause error
}

func (e *ServerError) Error() string { return "rpc: server: " + e.Msg }

// Unwrap exposes the underlying context error, if the server's failure
// was one.
func (e *ServerError) Unwrap() error { return e.cause }

// newServerError classifies a server-reported message, recovering context
// errors from their canonical strings (stable since Go 1.0, and the only
// representation a version-0 peer can send).
func newServerError(msg string) *ServerError {
	e := &ServerError{Msg: msg}
	switch {
	case strings.Contains(msg, context.DeadlineExceeded.Error()):
		e.cause = context.DeadlineExceeded
	case strings.Contains(msg, context.Canceled.Error()):
		e.cause = context.Canceled
	}
	return e
}

// ClientConfig configures a Client.
type ClientConfig struct {
	// Conns is the connection pool size; requests round-robin across it.
	// Default 2 (one per direction of the paper's two client machines).
	Conns int
	// DialTimeout bounds connection establishment (including the version
	// handshake). Default 5s.
	DialTimeout time.Duration
	// Timeout bounds each request round-trip when the caller's context
	// carries no earlier deadline. Default 30s.
	Timeout time.Duration
}

func (c *ClientConfig) fill() {
	if c.Conns <= 0 {
		c.Conns = 2
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
}

// Client is a connection-pooled, pipelining client for one hash node.
// It implements core.Backend so a core.Cluster can route to remote nodes
// exactly as it routes to in-process ones.
//
// Every operation takes a context: its deadline travels to the server in
// the request frame (protocol version 1), and cancelling it both returns
// promptly on the client and sends a CANCEL frame so the server stops
// working on the abandoned request. Against a version-0 server the
// deadline and cancellation are still enforced client-side; only the
// server keeps working until its own timeout.
type Client struct {
	id   ring.NodeID
	addr string
	cfg  ClientConfig

	mu     sync.Mutex
	conns  []*clientConn
	next   uint64
	closed bool
}

var _ core.Backend = (*Client)(nil)

// Dial connects to a hash node server and negotiates the protocol
// version.
func Dial(id ring.NodeID, addr string, cfg ClientConfig) (*Client, error) {
	cfg.fill()
	c := &Client{id: id, addr: addr, cfg: cfg, conns: make([]*clientConn, cfg.Conns)}
	// Establish the first connection eagerly so configuration errors
	// surface at startup; the rest dial lazily.
	cc, err := c.dialConn()
	if err != nil {
		return nil, err
	}
	c.conns[0] = cc
	return c, nil
}

// ID returns the remote node's ring identity.
func (c *Client) ID() ring.NodeID { return c.id }

// Addr returns the remote address.
func (c *Client) Addr() string { return c.addr }

// Version reports the protocol version negotiated with the server
// (the first pooled connection's; all connections negotiate alike).
func (c *Client) Version() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cc := range c.conns {
		if cc != nil {
			return cc.version
		}
	}
	return wire.Version0
}

func (c *Client) dialConn() (*clientConn, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", c.addr, err)
	}
	if tcp, ok := conn.(*net.TCPConn); ok {
		_ = tcp.SetNoDelay(true)
	}
	cc := &clientConn{
		conn:    conn,
		fw:      wire.NewFrameWriter(conn),
		pending: make(map[uint64]*pendingCall),
	}
	version, err := negotiate(conn, cc.fw, c.cfg.DialTimeout)
	if err != nil {
		conn.Close()
		return nil, err
	}
	cc.version = version
	go cc.readLoop()
	return cc, nil
}

// negotiate performs the client side of the version handshake on a fresh
// connection, before the read loop starts: send Hello (version-0 layout),
// read one frame back. HelloAck carries the negotiated version; TypeError
// means the peer is a version-0 server that rejected the unknown frame
// type — fully supported, just no deadlines or cancels on the wire.
func negotiate(conn net.Conn, fw *wire.FrameWriter, timeout time.Duration) (int, error) {
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return 0, fmt.Errorf("rpc: handshake: %w", err)
	}
	defer conn.SetDeadline(time.Time{})
	var hello [4]byte
	err := fw.WriteFrame(wire.Frame{Type: wire.TypeHello, Payload: wire.AppendHello(hello[:0], wire.MaxVersion)}, wire.Version0)
	if err != nil {
		return 0, fmt.Errorf("rpc: handshake send: %w", err)
	}
	// Read straight off the conn: a buffered reader here could slurp
	// bytes that belong to the read loop's own reader.
	resp, err := wire.ReadFrame(conn)
	if err != nil {
		return 0, fmt.Errorf("rpc: handshake read: %w", err)
	}
	switch resp.Type {
	case wire.TypeHelloAck:
		v, err := wire.DecodeHello(resp.Payload)
		if err != nil {
			return 0, fmt.Errorf("rpc: handshake: %w", err)
		}
		if v > wire.MaxVersion {
			return 0, fmt.Errorf("rpc: handshake: server negotiated unsupported version %d", v)
		}
		return v, nil
	case wire.TypeError:
		// A version-0 server rejects the Hello frame type; fall back.
		return wire.Version0, nil
	default:
		return 0, fmt.Errorf("rpc: handshake: unexpected %v response", resp.Type)
	}
}

// pick returns a live pooled connection, redialing dead slots lazily.
// The dial (TCP connect + version handshake, up to DialTimeout) runs
// OUTSIDE c.mu: one dead slot must not stall callers that round-robin
// onto healthy connections.
func (c *Client) pick() (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	idx := int(c.next % uint64(len(c.conns)))
	c.next++
	cc := c.conns[idx]
	c.mu.Unlock()
	if cc != nil && !cc.isDead() {
		return cc, nil
	}

	fresh, err := c.dialConn()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		fresh.shutdown(ErrClientClosed)
		return nil, ErrClientClosed
	}
	if cur := c.conns[idx]; cur != nil && cur != cc && !cur.isDead() {
		// Another caller already repaired this slot while we dialed; use
		// the established connection and drop ours.
		c.mu.Unlock()
		fresh.shutdown(errors.New("rpc: redundant redial"))
		return cur, nil
	} else if cur != nil {
		cur.shutdown(errors.New("rpc: connection replaced"))
	}
	c.conns[idx] = fresh
	c.mu.Unlock()
	return fresh, nil
}

// timeoutFor merges the context deadline with the configured per-request
// timeout, returning the relative time budget to put on the wire: the
// smaller of the context's remaining time and cfg.Timeout. Relative, not
// absolute, so clock skew between client and server cannot distort it.
// An already-expired context yields a negative budget, which the server
// treats as expired — callers short-circuit on ctx.Err() first anyway.
func (c *Client) timeoutFor(ctx context.Context) time.Duration {
	t := c.cfg.Timeout
	if dl, ok := ctx.Deadline(); ok {
		if remaining := time.Until(dl); remaining < t {
			t = remaining
		}
	}
	return t
}

// call performs one round-trip under ctx. It takes ownership of reqBuf
// (the pooled buffer holding the request payload; nil for empty payloads)
// and releases it once the frame is on the wire. On success the returned
// pooled buffer holds the response payload; the caller releases it with
// wire.PutBuf after decoding.
//
//shhc:takes-buf reqBuf
//shhc:returns-buf
func (c *Client) call(ctx context.Context, reqType wire.Type, reqBuf *[]byte) (wire.Frame, *[]byte, error) {
	if err := ctx.Err(); err != nil {
		wire.PutBuf(reqBuf)
		return wire.Frame{}, nil, err
	}
	cc, err := c.pick()
	if err != nil {
		wire.PutBuf(reqBuf)
		return wire.Frame{}, nil, err
	}
	var payload []byte
	if reqBuf != nil {
		payload = *reqBuf
	}
	pc, err := cc.start(reqType, payload, c.timeoutFor(ctx))
	wire.PutBuf(reqBuf) // start wrote (or failed to write) the frame; the payload's last use is behind us
	if err != nil {
		return wire.Frame{}, nil, err
	}
	resp, body, err := pc.wait(ctx, c.cfg.Timeout)
	if err != nil {
		return wire.Frame{}, nil, err
	}
	if resp.Type == wire.TypeError {
		msg, derr := wire.DecodeError(resp.Payload)
		wire.PutBuf(body)
		if derr != nil {
			msg = "undecodable server error"
		}
		return wire.Frame{}, nil, newServerError(msg)
	}
	return resp, body, nil
}

// Ping checks liveness of the remote node.
func (c *Client) Ping(ctx context.Context) error {
	resp, body, err := c.call(ctx, wire.TypePing, nil)
	if err != nil {
		return err
	}
	wire.PutBuf(body)
	if resp.Type != wire.TypePong {
		return fmt.Errorf("rpc: ping got %v", resp.Type)
	}
	return nil
}

// Lookup asks the remote node whether fp exists, without inserting.
func (c *Client) Lookup(ctx context.Context, fp fingerprint.Fingerprint) (core.LookupResult, error) {
	buf := wire.GetBuf(fingerprint.Size)
	*buf = wire.AppendFP((*buf)[:0], fp)
	resp, body, err := c.call(ctx, wire.TypeLookup, buf)
	if err != nil {
		return core.LookupResult{}, err
	}
	r, err := wire.DecodeResult(resp.Payload)
	wire.PutBuf(body)
	if err != nil {
		return core.LookupResult{}, err
	}
	return fromWireResult(r), nil
}

// LookupOrInsert runs the Figure 4 flow on the remote node.
func (c *Client) LookupOrInsert(ctx context.Context, fp fingerprint.Fingerprint, val core.Value) (core.LookupResult, error) {
	buf := wire.GetBuf(0)
	*buf = wire.AppendPair((*buf)[:0], wire.PairPayload{FP: fp, Val: uint64(val)})
	resp, body, err := c.call(ctx, wire.TypeLookupOrInsert, buf)
	if err != nil {
		return core.LookupResult{}, err
	}
	r, err := wire.DecodeResult(resp.Payload)
	wire.PutBuf(body)
	if err != nil {
		return core.LookupResult{}, err
	}
	return fromWireResult(r), nil
}

// Insert unconditionally records fp -> val on the remote node.
func (c *Client) Insert(ctx context.Context, fp fingerprint.Fingerprint, val core.Value) error {
	buf := wire.GetBuf(0)
	*buf = wire.AppendPair((*buf)[:0], wire.PairPayload{FP: fp, Val: uint64(val)})
	_, body, err := c.call(ctx, wire.TypeInsert, buf)
	wire.PutBuf(body)
	return err
}

// BatchLookupOrInsert sends one batch frame and decodes the ordered
// results — the unit of the paper's batch-mode experiments.
func (c *Client) BatchLookupOrInsert(ctx context.Context, pairs []core.Pair) ([]core.LookupResult, error) {
	return c.GoBatchLookupOrInsert(ctx, pairs).Results()
}

// ApplyRepair sends a replication repair batch to the remote node. On a
// protocol >= 4 connection it uses the REPAIR verb so the server can
// account the traffic separately from client load; against an older peer
// it degrades to a plain BATCH frame, which has identical lookup-or-insert
// semantics — the repair still lands, it just isn't counted as one.
func (c *Client) ApplyRepair(ctx context.Context, pairs []core.Pair) ([]core.LookupResult, error) {
	reqType := wire.TypeRepair
	if c.Version() < wire.Version4 {
		reqType = wire.TypeBatch
	}
	resp, body, err := c.call(ctx, reqType, appendCorePairBatch(pairs))
	if err != nil {
		return nil, err
	}
	rs, err := wire.DecodeBatchResult(resp.Payload)
	wire.PutBuf(body)
	if err != nil {
		return nil, err
	}
	if len(rs) != len(pairs) {
		return nil, fmt.Errorf("rpc: repair answered %d results for %d pairs", len(rs), len(pairs))
	}
	out := make([]core.LookupResult, len(rs))
	for i, r := range rs {
		out[i] = fromWireResult(r)
	}
	return out, nil
}

var _ core.RepairApplier = (*Client)(nil)

// BatchCall is an in-flight batch request: a future for the pipelined
// protocol. Results blocks until the response frame arrives (or the
// request's context is cancelled or it times out); Done exposes
// completion for select loops.
type BatchCall struct {
	n int
	//lint:ignore ctxfirst a BatchCall is itself call-scoped (one request's future); the field carries the caller's ctx to the deferred Results wait, not past the call.
	ctx     context.Context
	pc      *pendingCall
	timeout time.Duration
	err     error // pre-flight failure (dial, encode, send)

	once    sync.Once
	results []core.LookupResult
	resErr  error
}

// GoBatchLookupOrInsert writes one batch frame and returns immediately
// with a future. Because connections are pipelined (requests carry ids and
// responses return as they complete), a caller can keep many batches in
// flight on one connection and a batch stalled on a remote node's SSD
// phase does not block the batches behind it — the wire analogue of the
// node's asynchronous lookup pipeline. The context governs the whole
// call: its deadline rides in the request frame and cancelling it
// abandons the future (a CANCEL frame tells the server to stop).
func (c *Client) GoBatchLookupOrInsert(ctx context.Context, pairs []core.Pair) *BatchCall {
	call := &BatchCall{n: len(pairs), ctx: ctx, timeout: c.cfg.Timeout}
	if err := ctx.Err(); err != nil {
		call.err = err
		return call
	}
	cc, err := c.pick()
	if err != nil {
		call.err = err
		return call
	}
	buf := appendCorePairBatch(pairs)
	pc, err := cc.start(wire.TypeBatch, *buf, c.timeoutFor(ctx))
	wire.PutBuf(buf)
	if err != nil {
		call.err = err
		return call
	}
	call.pc = pc
	return call
}

// appendCorePairBatch encodes a batch payload straight from core pairs into
// a pooled buffer, skipping the []wire.PairPayload copy EncodeBatch would
// cost. The caller (or c.call) releases the buffer after the frame is
// written.
//
//shhc:returns-buf
func appendCorePairBatch(pairs []core.Pair) *[]byte {
	buf := wire.GetBuf(4 + len(pairs)*(fingerprint.Size+8))
	b := appendUint32((*buf)[:0], uint32(len(pairs)))
	for i := range pairs {
		b = wire.AppendPair(b, wire.PairPayload{FP: pairs[i].FP, Val: uint64(pairs[i].Val)})
	}
	*buf = b
	return buf
}

// Done returns a channel closed when the response (or a connection
// failure) is available; Results will not block after it is closed. A
// call that failed before sending returns an already-closed channel.
// Cancellation of the call's context is not reflected here — select on
// ctx.Done() alongside Done when waiting for either.
func (b *BatchCall) Done() <-chan struct{} {
	if b.pc == nil {
		closed := make(chan struct{})
		close(closed)
		return closed
	}
	return b.pc.settled
}

// Results blocks for the response and decodes the ordered results. It is
// safe to call more than once; every call returns the same outcome.
func (b *BatchCall) Results() ([]core.LookupResult, error) {
	b.once.Do(b.wait)
	return b.results, b.resErr
}

func (b *BatchCall) wait() {
	if b.err != nil {
		b.resErr = b.err
		return
	}
	resp, body, err := b.pc.wait(b.ctx, b.timeout)
	if err != nil {
		b.resErr = err
		return
	}
	defer wire.PutBuf(body)
	if resp.Type == wire.TypeError {
		msg, derr := wire.DecodeError(resp.Payload)
		if derr != nil {
			msg = "undecodable server error"
		}
		b.resErr = newServerError(msg)
		return
	}
	rs, err := wire.DecodeBatchResult(resp.Payload)
	if err != nil {
		b.resErr = err
		return
	}
	if len(rs) != b.n {
		b.resErr = fmt.Errorf("rpc: batch answered %d results for %d pairs", len(rs), b.n)
		return
	}
	out := make([]core.LookupResult, len(rs))
	for i, r := range rs {
		out[i] = fromWireResult(r)
	}
	b.results = out
}

// Stats fetches the remote node's counters.
func (c *Client) Stats(ctx context.Context) (core.NodeStats, error) {
	resp, body, err := c.call(ctx, wire.TypeStats, nil)
	if err != nil {
		return core.NodeStats{}, err
	}
	s, err := wire.DecodeStats(resp.Payload)
	wire.PutBuf(body)
	if err != nil {
		return core.NodeStats{}, err
	}
	return fromWireStats(s), nil
}

// Close tears down all pooled connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	c.closed = true
	for _, cc := range c.conns {
		if cc != nil {
			cc.shutdown(ErrClientClosed)
		}
	}
	return nil
}

// clientConn is one pipelined connection with an id-keyed pending table.
type clientConn struct {
	conn    net.Conn
	version int // negotiated protocol version, fixed after the handshake

	writeMu sync.Mutex
	fw      *wire.FrameWriter

	mu      sync.Mutex
	pending map[uint64]*pendingCall
	nextID  uint64
	dead    bool
	deadErr error

	closeOnce sync.Once
}

// response is a received frame plus the pooled buffer its payload aliases.
// Whoever consumes the response releases body with wire.PutBuf after the
// payload's last use.
type response struct {
	f    wire.Frame
	body *[]byte
}

// pendingCall is one request awaiting its response frame. Ownership
// discipline: whichever party removes the call from the connection's
// pending table — the read loop (response arrived), shutdown (connection
// died), or the caller's timeout/cancellation — settles it, exactly once.
type pendingCall struct {
	cc      *clientConn
	reqType wire.Type
	id      uint64
	ch      chan response // buffered 1; receives the response
	settled chan struct{} // closed once ch holds the response or the call failed
}

func (cc *clientConn) isDead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.dead
}

// shutdown marks the connection dead and fails every pending call.
func (cc *clientConn) shutdown(err error) {
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return
	}
	cc.dead = true
	cc.deadErr = err
	waiters := cc.pending
	cc.pending = map[uint64]*pendingCall{}
	cc.mu.Unlock()

	cc.closeOnce.Do(func() { cc.conn.Close() })
	for _, pc := range waiters {
		close(pc.ch)
		close(pc.settled)
	}
}

func (cc *clientConn) readLoop() {
	br := bufio.NewReaderSize(cc.conn, 64<<10)
	for {
		frame, body, err := wire.ReadFrameVInto(br, cc.version)
		if err != nil {
			cc.shutdown(fmt.Errorf("rpc: connection lost: %w", err))
			return
		}
		cc.mu.Lock()
		pc, ok := cc.pending[frame.ID]
		if ok {
			delete(cc.pending, frame.ID)
		}
		cc.mu.Unlock()
		if ok {
			//lint:ignore poolescape intentional ownership hand-off: pc.ch is buffered 1 and the waiter (or discardSettled on an abandon race) releases body exactly once.
			pc.ch <- response{f: frame, body: body}
			close(pc.settled)
		} else {
			// Nobody is waiting (abandoned by timeout or cancel) — the
			// payload dies here.
			wire.PutBuf(body)
		}
	}
}

// start registers a call and writes its request frame, returning without
// waiting for the response — this is what pipelines multiple requests onto
// one connection. timeout (relative, 0 = none) rides in the frame on
// version >= 1 connections.
func (cc *clientConn) start(reqType wire.Type, payload []byte, timeout time.Duration) (*pendingCall, error) {
	cc.mu.Lock()
	if cc.dead {
		err := cc.deadErr
		cc.mu.Unlock()
		return nil, err
	}
	id := atomic.AddUint64(&cc.nextID, 1)
	pc := &pendingCall{
		cc:      cc,
		reqType: reqType,
		id:      id,
		ch:      make(chan response, 1),
		settled: make(chan struct{}),
	}
	cc.pending[id] = pc
	cc.mu.Unlock()

	cc.writeMu.Lock()
	err := cc.fw.WriteFrame(wire.Frame{Type: reqType, ID: id, Timeout: timeout, Payload: payload}, cc.version)
	cc.writeMu.Unlock()
	if err != nil {
		cc.shutdown(fmt.Errorf("rpc: send: %w", err))
		return nil, err
	}
	return pc, nil
}

// sendCancel tells the server to abandon the request (protocol >= 1;
// best-effort — a failure only means the server works a little longer).
func (cc *clientConn) sendCancel(id uint64) {
	if cc.version < wire.Version1 || cc.isDead() {
		return
	}
	cc.writeMu.Lock()
	err := cc.fw.WriteFrame(wire.Frame{Type: wire.TypeCancel, ID: id}, cc.version)
	cc.writeMu.Unlock()
	if err != nil {
		cc.shutdown(fmt.Errorf("rpc: send cancel: %w", err))
	}
}

// abandon removes the call from the pending table (if still owned) and
// settles it. Returns true when this caller won the removal race.
func (pc *pendingCall) abandon() bool {
	pc.cc.mu.Lock()
	_, owned := pc.cc.pending[pc.id]
	if owned {
		delete(pc.cc.pending, pc.id)
	}
	pc.cc.mu.Unlock()
	if owned {
		close(pc.settled)
	}
	return owned
}

// wait blocks for the call's response, the context's cancellation, or the
// transport timeout, whichever lands first. On success the returned pooled
// buffer (which the frame's payload aliases) belongs to the caller, who
// releases it with wire.PutBuf after decoding.
//
//shhc:returns-buf
func (pc *pendingCall) wait(ctx context.Context, timeout time.Duration) (wire.Frame, *[]byte, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp, ok := <-pc.ch:
		if !ok {
			pc.cc.mu.Lock()
			err := pc.cc.deadErr
			pc.cc.mu.Unlock()
			if err == nil {
				err = errors.New("rpc: connection closed")
			}
			return wire.Frame{}, nil, err
		}
		return resp.f, resp.body, nil
	case <-ctx.Done():
		if pc.abandon() {
			pc.cc.sendCancel(pc.id)
		} else {
			pc.discardSettled()
		}
		return wire.Frame{}, nil, ctx.Err()
	case <-timer.C:
		if pc.abandon() {
			pc.cc.sendCancel(pc.id)
		} else {
			pc.discardSettled()
		}
		return wire.Frame{}, nil, fmt.Errorf("rpc: %v: request timed out after %v", pc.reqType, timeout)
	}
}

// discardSettled releases the response an abandon race lost to. When
// abandon returns false, another party removed the call from the pending
// table first: the read loop, which then deposits the response — with its
// pooled body — into pc.ch before closing settled, or shutdown, which
// closes ch empty. This waiter is the only receiver, so without a drain
// here that body would be stranded in the buffered channel forever (a
// pool leak on every lost cancellation/timeout race). Settlement is
// already imminent when abandon loses, so the wait is bounded.
func (pc *pendingCall) discardSettled() {
	<-pc.settled
	select {
	case resp, ok := <-pc.ch:
		if ok {
			wire.PutBuf(resp.body)
		}
	default:
	}
}
