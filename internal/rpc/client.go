package rpc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shhc/internal/core"
	"shhc/internal/fingerprint"
	"shhc/internal/ring"
	"shhc/internal/wire"
)

func ringNodeID(s string) ring.NodeID { return ring.NodeID(s) }

// ErrClientClosed is returned by operations on a closed client.
var ErrClientClosed = errors.New("rpc: client is closed")

// ServerError is a failure reported by the remote node (as opposed to a
// transport failure). When the remote failure was a context cancellation
// or deadline on the server side, Unwrap exposes the matching context
// error so errors.Is(err, context.DeadlineExceeded) holds across the wire.
// On protocol >= 5 connections Code carries the server's compact error
// code; CodeNotOwner additionally populates the true owner's identity.
type ServerError struct {
	Msg       string
	Code      wire.Code
	OwnerID   string
	OwnerAddr string
	cause     error
}

func (e *ServerError) Error() string { return "rpc: server: " + e.Msg }

// Unwrap exposes the underlying context error, if the server's failure
// was one.
func (e *ServerError) Unwrap() error { return e.cause }

// newServerError classifies a server-reported message, recovering context
// errors from their canonical strings (stable since Go 1.0, and the only
// representation a version-0 peer can send).
func newServerError(msg string) *ServerError {
	e := &ServerError{Msg: msg}
	switch {
	case strings.Contains(msg, context.DeadlineExceeded.Error()):
		e.cause = context.DeadlineExceeded
	case strings.Contains(msg, context.Canceled.Error()):
		e.cause = context.Canceled
	}
	return e
}

// decodeServerError turns a TypeError payload (either layout) into a
// *ServerError, preferring the v5 code over string sniffing when present.
func decodeServerError(payload []byte) *ServerError {
	ep, err := wire.DecodeErrorPayload(payload)
	if err != nil {
		return &ServerError{Msg: "undecodable server error"}
	}
	e := newServerError(ep.Msg)
	e.Code = ep.Code
	e.OwnerID = ep.OwnerID
	e.OwnerAddr = ep.OwnerAddr
	switch ep.Code {
	case wire.CodeCancelled:
		e.cause = context.Canceled
	case wire.CodeDeadline:
		e.cause = context.DeadlineExceeded
	}
	return e
}

// ClientConfig configures a Client.
type ClientConfig struct {
	// Conns is the connection pool size; requests round-robin across it.
	// Default 2 (one per direction of the paper's two client machines).
	Conns int
	// DialTimeout bounds connection establishment (including the version
	// handshake). Default 5s.
	DialTimeout time.Duration
	// Timeout bounds each request round-trip when the caller's context
	// carries no earlier deadline. Default 30s.
	Timeout time.Duration
	// MaxVersion caps the protocol version offered in the handshake
	// (0 = wire.MaxVersion). For version-skew tests and staged rollouts.
	MaxVersion int
	// StreamsPerConn is how many logical streams the client's default
	// (non-OpenStream) traffic round-robins across on each connection.
	// Default 4. Protocol >= 5 connections only; below that there is one
	// implicit stream.
	StreamsPerConn int
	// Window is the initial per-stream send-credit window in bytes
	// (0 = wire.DefaultWindow). Must match nothing on the server — each
	// side declares the window it grants for traffic flowing toward it.
	Window int
	// RedialAttempts bounds how many times an operation redials a dead
	// connection slot before giving up (default 3). With RedialBackoff
	// this makes a briefly-restarted node invisible to in-flight-free
	// callers instead of an instant error.
	RedialAttempts int
	// RedialBackoff is the initial sleep between redial attempts,
	// doubling each attempt (default 50ms).
	RedialBackoff time.Duration
	// NoRedirects disables following NOT_OWNER redirects (protocol >= 5).
	// Redirected-to clients set it internally so a bouncing ring view
	// cannot chain redirects.
	NoRedirects bool
}

func (c *ClientConfig) fill() {
	if c.Conns <= 0 {
		c.Conns = 2
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxVersion <= 0 || c.MaxVersion > wire.MaxVersion {
		c.MaxVersion = wire.MaxVersion
	}
	if c.StreamsPerConn <= 0 {
		c.StreamsPerConn = 4
	}
	if c.Window <= 0 {
		c.Window = wire.DefaultWindow
	}
	if c.RedialAttempts <= 0 {
		c.RedialAttempts = 3
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 50 * time.Millisecond
	}
}

// Client is a connection-pooled, pipelining client for one hash node.
// It implements core.Backend so a core.Cluster can route to remote nodes
// exactly as it routes to in-process ones.
//
// Every operation takes a context: its deadline travels to the server in
// the request frame (protocol version 1), and cancelling it both returns
// promptly on the client and sends a CANCEL frame so the server stops
// working on the abandoned request. Against a version-0 server the
// deadline and cancellation are still enforced client-side; only the
// server keeps working until its own timeout.
type Client struct {
	id   ring.NodeID
	addr string
	cfg  ClientConfig

	mu     sync.Mutex
	conns  []*clientConn
	next   uint64
	closed bool

	// nextStreamID hands out logical stream ids: 1..StreamsPerConn are
	// the default round-robin pool, the repair stream and OpenStream
	// handles take ids above that. Stream 0 is the control/legacy stream.
	nextStreamID uint32
	repairStream uint32
	streamNext   uint64 // atomic; round-robins default traffic over the pool

	// redirects caches one child client per NOT_OWNER target so a stale
	// ring view costs one extra dial, not one per request. Child clients
	// never follow redirects themselves (no chains).
	redirectMu        sync.Mutex
	redirects         map[string]*Client
	redirectsFollowed uint64
	creditStalls      uint64
}

var _ core.Backend = (*Client)(nil)

// Dial connects to a hash node server and negotiates the protocol
// version.
func Dial(id ring.NodeID, addr string, cfg ClientConfig) (*Client, error) {
	cfg.fill()
	c := &Client{
		id:    id,
		addr:  addr,
		cfg:   cfg,
		conns: make([]*clientConn, cfg.Conns),
		// Default traffic rotates streams 1..StreamsPerConn; the repair
		// stream is the first id after the pool (already allocated here,
		// hence +2), so replication backfill never shares a window with
		// foreground lookups.
		nextStreamID: uint32(cfg.StreamsPerConn) + 2,
		repairStream: uint32(cfg.StreamsPerConn) + 1,
		redirects:    make(map[string]*Client),
	}
	// Establish the first connection eagerly so configuration errors
	// surface at startup; the rest dial lazily.
	cc, err := c.dialConn()
	if err != nil {
		return nil, err
	}
	c.conns[0] = cc
	return c, nil
}

// nextStream picks a default-pool stream for one call. Round-robin over
// the pool spreads independent callers across windows so one slow batch
// consumer cannot starve every caller sharing the client.
func (c *Client) nextStream() uint32 {
	n := atomic.AddUint64(&c.streamNext, 1)
	return 1 + uint32(n%uint64(c.cfg.StreamsPerConn))
}

// RedirectsFollowed reports how many NOT_OWNER redirects this client has
// followed to the true owner.
func (c *Client) RedirectsFollowed() uint64 {
	return atomic.LoadUint64(&c.redirectsFollowed)
}

// CreditStalls reports how many times a caller had to wait for stream
// send credit before its request could be written.
func (c *Client) CreditStalls() uint64 {
	return atomic.LoadUint64(&c.creditStalls)
}

// ID returns the remote node's ring identity.
func (c *Client) ID() ring.NodeID { return c.id }

// Addr returns the remote address.
func (c *Client) Addr() string { return c.addr }

// Version reports the protocol version negotiated with the server
// (the first pooled connection's; all connections negotiate alike).
func (c *Client) Version() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cc := range c.conns {
		if cc != nil {
			return cc.version
		}
	}
	return wire.Version0
}

func (c *Client) dialConn() (*clientConn, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", c.addr, err)
	}
	if tcp, ok := conn.(*net.TCPConn); ok {
		_ = tcp.SetNoDelay(true)
	}
	cc := &clientConn{
		conn:    conn,
		fw:      wire.NewFrameWriter(conn),
		pending: make(map[uint64]*pendingCall),
		windows: make(map[uint32]*sendWindow),
		window:  int64(c.cfg.Window),
		deadCh:  make(chan struct{}),
		stalls:  &c.creditStalls,
	}
	version, srvWindow, err := negotiate(conn, cc.fw, c.cfg.DialTimeout, c.cfg.MaxVersion, uint32(c.cfg.Window))
	if err != nil {
		conn.Close()
		return nil, err
	}
	cc.version = version
	// The server advertised its per-stream response window in the
	// HelloAck (0 on pre-advertisement peers). Knowing it lets us
	// coalesce consumption grants: withhold WINDOW_UPDATE frames until a
	// quarter-window is pending, cutting per-op frame count without ever
	// letting the server's window run dry.
	cc.grantEvery = int64(srvWindow / 4)
	go cc.readLoop()
	return cc, nil
}

// negotiate performs the client side of the version handshake on a fresh
// connection, before the read loop starts: send Hello (version-0 layout),
// read one frame back. HelloAck carries the negotiated version; TypeError
// means the peer is a version-0 server that rejected the unknown frame
// type — fully supported, just no deadlines or cancels on the wire.
// It also returns the server's advertised per-stream response window (0
// when the peer predates window advertisement).
func negotiate(conn net.Conn, fw *wire.FrameWriter, timeout time.Duration, maxVersion int, sendWindow uint32) (int, uint32, error) {
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return 0, 0, fmt.Errorf("rpc: handshake: %w", err)
	}
	defer conn.SetDeadline(time.Time{})
	var hello [8]byte
	payload := wire.AppendHello(hello[:0], maxVersion)
	if maxVersion >= wire.Version5 {
		// Offering the multiplexed protocol: extend the Hello with our
		// per-stream send window so the server can coalesce the credit
		// grants it returns for flushed requests.
		payload = wire.AppendHelloWindow(hello[:0], maxVersion, sendWindow)
	}
	err := fw.WriteFrame(wire.Frame{Type: wire.TypeHello, Payload: payload}, wire.Version0)
	if err != nil {
		return 0, 0, fmt.Errorf("rpc: handshake send: %w", err)
	}
	// Read straight off the conn: a buffered reader here could slurp
	// bytes that belong to the read loop's own reader.
	resp, err := wire.ReadFrame(conn)
	if err != nil {
		return 0, 0, fmt.Errorf("rpc: handshake read: %w", err)
	}
	switch resp.Type {
	case wire.TypeHelloAck:
		v, err := wire.DecodeHello(resp.Payload)
		if err != nil {
			return 0, 0, fmt.Errorf("rpc: handshake: %w", err)
		}
		if v > maxVersion {
			return 0, 0, fmt.Errorf("rpc: handshake: server negotiated unsupported version %d", v)
		}
		return v, wire.HelloWindow(resp.Payload), nil
	case wire.TypeError:
		// A version-0 server rejects the Hello frame type; fall back.
		return wire.Version0, 0, nil
	default:
		return 0, 0, fmt.Errorf("rpc: handshake: unexpected %v response", resp.Type)
	}
}

// pick returns a live pooled connection, redialing dead slots lazily.
// The dial (TCP connect + version handshake, up to DialTimeout) runs
// OUTSIDE c.mu: one dead slot must not stall callers that round-robin
// onto healthy connections. A dial failure is retried RedialAttempts
// times with doubling backoff (under ctx), so a briefly-restarted node
// costs in-flight-free callers a short wait instead of an error.
func (c *Client) pick(ctx context.Context) (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	idx := int(c.next % uint64(len(c.conns)))
	c.next++
	cc := c.conns[idx]
	c.mu.Unlock()
	if cc != nil && !cc.isDead() {
		return cc, nil
	}

	fresh, err := c.redial(ctx)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		fresh.shutdown(ErrClientClosed)
		return nil, ErrClientClosed
	}
	if cur := c.conns[idx]; cur != nil && cur != cc && !cur.isDead() {
		// Another caller already repaired this slot while we dialed; use
		// the established connection and drop ours.
		c.mu.Unlock()
		fresh.shutdown(errors.New("rpc: redundant redial"))
		return cur, nil
	} else if cur != nil {
		cur.shutdown(errors.New("rpc: connection replaced"))
	}
	c.conns[idx] = fresh
	c.mu.Unlock()
	return fresh, nil
}

// redial dials with bounded retry: RedialAttempts attempts separated by
// RedialBackoff, doubling, cut short by ctx. The last error wins.
func (c *Client) redial(ctx context.Context) (*clientConn, error) {
	backoff := c.cfg.RedialBackoff
	var err error
	for attempt := 0; attempt < c.cfg.RedialAttempts; attempt++ {
		if attempt > 0 {
			timer := time.NewTimer(backoff)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return nil, ctx.Err()
			}
			backoff *= 2
		}
		var cc *clientConn
		if cc, err = c.dialConn(); err == nil {
			return cc, nil
		}
	}
	return nil, err
}

// timeoutFor merges the context deadline with the configured per-request
// timeout, returning the relative time budget to put on the wire: the
// smaller of the context's remaining time and cfg.Timeout. Relative, not
// absolute, so clock skew between client and server cannot distort it.
// An already-expired context yields a negative budget, which the server
// treats as expired — callers short-circuit on ctx.Err() first anyway.
func (c *Client) timeoutFor(ctx context.Context) time.Duration {
	t := c.cfg.Timeout
	if dl, ok := ctx.Deadline(); ok {
		if remaining := time.Until(dl); remaining < t {
			t = remaining
		}
	}
	return t
}

// call performs one round-trip under ctx on the given logical stream. It
// takes ownership of reqBuf (the pooled buffer holding the request
// payload; nil for empty payloads) and releases it once the frame is on
// the wire — except on redirectable single-key verbs, where it is held
// until the response so a NOT_OWNER answer can be retried against the
// true owner without re-encoding from scratch. On success the returned
// pooled buffer holds the response payload; the caller releases it with
// wire.PutBuf after decoding.
//
//shhc:takes-buf reqBuf
//shhc:returns-buf
func (c *Client) call(ctx context.Context, stream uint32, reqType wire.Type, reqBuf *[]byte) (wire.Frame, *[]byte, error) {
	if err := ctx.Err(); err != nil {
		wire.PutBuf(reqBuf)
		return wire.Frame{}, nil, err
	}
	cc, err := c.pick(ctx)
	if err != nil {
		wire.PutBuf(reqBuf)
		return wire.Frame{}, nil, err
	}
	var payload []byte
	if reqBuf != nil {
		payload = *reqBuf
	}
	holdReq := c.redirectable(reqType, cc.version) && reqBuf != nil
	pc, err := cc.start(ctx, stream, reqType, payload, c.timeoutFor(ctx))
	if !holdReq {
		// start wrote (or failed to write) the frame; the payload's last
		// use is behind us.
		wire.PutBuf(reqBuf)
		reqBuf = nil
	}
	if err != nil {
		wire.PutBuf(reqBuf)
		return wire.Frame{}, nil, err
	}
	resp, body, err := pc.wait(ctx, c.cfg.Timeout)
	if err != nil {
		wire.PutBuf(reqBuf)
		return wire.Frame{}, nil, err
	}
	if resp.Type == wire.TypeError {
		se := decodeServerError(resp.Payload)
		n := len(resp.Payload)
		wire.PutBuf(body)
		cc.grantConsumed(resp.Stream, n)
		if se.Code == wire.CodeNotOwner && reqBuf != nil && se.OwnerAddr != "" {
			return c.redirectCall(ctx, stream, reqType, reqBuf, se)
		}
		wire.PutBuf(reqBuf)
		return wire.Frame{}, nil, se
	}
	wire.PutBuf(reqBuf)
	// The synchronous caller decodes the payload immediately after this
	// returns; count it consumed now so the stream's response window
	// reopens without another wire round.
	cc.grantConsumed(resp.Stream, len(resp.Payload))
	return resp, body, nil
}

// redirectable reports whether a verb can follow a NOT_OWNER redirect:
// single-key verbs on a protocol >= 5 connection, unless disabled.
func (c *Client) redirectable(t wire.Type, version int) bool {
	if c.cfg.NoRedirects || version < wire.Version5 {
		return false
	}
	return t == wire.TypeLookup || t == wire.TypeLookupOrInsert || t == wire.TypeInsert
}

// redirectCall retries a NOT_OWNER-rejected request against the owner the
// server named, through a cached child client — one extra RTT instead of
// proxying every future request through the wrong node. Takes ownership
// of reqBuf.
//
//shhc:takes-buf reqBuf
//shhc:returns-buf
func (c *Client) redirectCall(ctx context.Context, stream uint32, reqType wire.Type, reqBuf *[]byte, se *ServerError) (wire.Frame, *[]byte, error) {
	rc, err := c.redirectTo(se.OwnerID, se.OwnerAddr)
	if err != nil {
		// The named owner is unreachable; surface the original redirect
		// error (it carries the owner identity for the caller to act on).
		wire.PutBuf(reqBuf)
		return wire.Frame{}, nil, se
	}
	atomic.AddUint64(&c.redirectsFollowed, 1)
	return rc.call(ctx, stream, reqType, reqBuf)
}

// redirectTo returns (dialing and caching on first use) the child client
// for a redirect target. Child clients are single-conn and never follow
// redirects themselves, so a bouncing ring view cannot chain.
func (c *Client) redirectTo(id, addr string) (*Client, error) {
	c.redirectMu.Lock()
	rc := c.redirects[addr]
	c.redirectMu.Unlock()
	if rc != nil {
		return rc, nil
	}
	cfg := c.cfg
	cfg.Conns = 1
	cfg.NoRedirects = true
	fresh, err := Dial(ringNodeID(id), addr, cfg)
	if err != nil {
		return nil, err
	}
	c.redirectMu.Lock()
	if cur := c.redirects[addr]; cur != nil {
		c.redirectMu.Unlock()
		fresh.Close()
		return cur, nil
	}
	c.redirects[addr] = fresh
	c.redirectMu.Unlock()
	return fresh, nil
}

// Ping checks liveness of the remote node.
func (c *Client) Ping(ctx context.Context) error {
	resp, body, err := c.call(ctx, 0, wire.TypePing, nil)
	if err != nil {
		return err
	}
	wire.PutBuf(body)
	if resp.Type != wire.TypePong {
		return fmt.Errorf("rpc: ping got %v", resp.Type)
	}
	return nil
}

// Lookup asks the remote node whether fp exists, without inserting.
func (c *Client) Lookup(ctx context.Context, fp fingerprint.Fingerprint) (core.LookupResult, error) {
	return c.lookupOn(ctx, c.nextStream(), fp)
}

func (c *Client) lookupOn(ctx context.Context, stream uint32, fp fingerprint.Fingerprint) (core.LookupResult, error) {
	buf := wire.GetBuf(fingerprint.Size)
	*buf = wire.AppendFP((*buf)[:0], fp)
	resp, body, err := c.call(ctx, stream, wire.TypeLookup, buf)
	if err != nil {
		return core.LookupResult{}, err
	}
	r, err := wire.DecodeResult(resp.Payload)
	wire.PutBuf(body)
	if err != nil {
		return core.LookupResult{}, err
	}
	return fromWireResult(r), nil
}

// LookupOrInsert runs the Figure 4 flow on the remote node.
func (c *Client) LookupOrInsert(ctx context.Context, fp fingerprint.Fingerprint, val core.Value) (core.LookupResult, error) {
	return c.lookupOrInsertOn(ctx, c.nextStream(), fp, val)
}

func (c *Client) lookupOrInsertOn(ctx context.Context, stream uint32, fp fingerprint.Fingerprint, val core.Value) (core.LookupResult, error) {
	buf := wire.GetBuf(0)
	*buf = wire.AppendPair((*buf)[:0], wire.PairPayload{FP: fp, Val: uint64(val)})
	resp, body, err := c.call(ctx, stream, wire.TypeLookupOrInsert, buf)
	if err != nil {
		return core.LookupResult{}, err
	}
	r, err := wire.DecodeResult(resp.Payload)
	wire.PutBuf(body)
	if err != nil {
		return core.LookupResult{}, err
	}
	return fromWireResult(r), nil
}

// Insert unconditionally records fp -> val on the remote node.
func (c *Client) Insert(ctx context.Context, fp fingerprint.Fingerprint, val core.Value) error {
	return c.insertOn(ctx, c.nextStream(), fp, val)
}

func (c *Client) insertOn(ctx context.Context, stream uint32, fp fingerprint.Fingerprint, val core.Value) error {
	buf := wire.GetBuf(0)
	*buf = wire.AppendPair((*buf)[:0], wire.PairPayload{FP: fp, Val: uint64(val)})
	_, body, err := c.call(ctx, stream, wire.TypeInsert, buf)
	wire.PutBuf(body)
	return err
}

// BatchLookupOrInsert sends one batch frame and decodes the ordered
// results — the unit of the paper's batch-mode experiments.
func (c *Client) BatchLookupOrInsert(ctx context.Context, pairs []core.Pair) ([]core.LookupResult, error) {
	return c.GoBatchLookupOrInsert(ctx, pairs).Results()
}

// ApplyRepair sends a replication repair batch to the remote node. On a
// protocol >= 4 connection it uses the REPAIR verb so the server can
// account the traffic separately from client load; against an older peer
// it degrades to a plain BATCH frame, which has identical lookup-or-insert
// semantics — the repair still lands, it just isn't counted as one.
func (c *Client) ApplyRepair(ctx context.Context, pairs []core.Pair) ([]core.LookupResult, error) {
	reqType := wire.TypeRepair
	if c.Version() < wire.Version4 {
		reqType = wire.TypeBatch
	}
	// Repair rides its own dedicated stream: backfill bursts share wire
	// bytes with foreground lookups but never a credit window, so a big
	// repair batch cannot head-of-line-block client traffic (or vice
	// versa) on a multiplexed connection.
	resp, body, err := c.call(ctx, c.repairStream, reqType, appendCorePairBatch(pairs))
	if err != nil {
		return nil, err
	}
	rs, err := wire.DecodeBatchResult(resp.Payload)
	wire.PutBuf(body)
	if err != nil {
		return nil, err
	}
	if len(rs) != len(pairs) {
		return nil, fmt.Errorf("rpc: repair answered %d results for %d pairs", len(rs), len(pairs))
	}
	out := make([]core.LookupResult, len(rs))
	for i, r := range rs {
		out[i] = fromWireResult(r)
	}
	return out, nil
}

var _ core.RepairApplier = (*Client)(nil)

// BatchCall is an in-flight batch request: a future for the pipelined
// protocol. Results blocks until the response frame arrives (or the
// request's context is cancelled or it times out); Done exposes
// completion for select loops.
type BatchCall struct {
	n int
	//lint:ignore ctxfirst a BatchCall is itself call-scoped (one request's future); the field carries the caller's ctx to the deferred Results wait, not past the call.
	ctx     context.Context
	pc      *pendingCall
	timeout time.Duration
	err     error // pre-flight failure (dial, encode, send)

	once    sync.Once
	results []core.LookupResult
	resErr  error
}

// GoBatchLookupOrInsert writes one batch frame and returns immediately
// with a future. Because connections are pipelined (requests carry ids and
// responses return as they complete), a caller can keep many batches in
// flight on one connection and a batch stalled on a remote node's SSD
// phase does not block the batches behind it — the wire analogue of the
// node's asynchronous lookup pipeline. The context governs the whole
// call: its deadline rides in the request frame and cancelling it
// abandons the future (a CANCEL frame tells the server to stop).
func (c *Client) GoBatchLookupOrInsert(ctx context.Context, pairs []core.Pair) *BatchCall {
	return c.goBatchOn(ctx, c.nextStream(), pairs)
}

func (c *Client) goBatchOn(ctx context.Context, stream uint32, pairs []core.Pair) *BatchCall {
	call := &BatchCall{n: len(pairs), ctx: ctx, timeout: c.cfg.Timeout}
	if err := ctx.Err(); err != nil {
		call.err = err
		return call
	}
	cc, err := c.pick(ctx)
	if err != nil {
		call.err = err
		return call
	}
	buf := appendCorePairBatch(pairs)
	pc, err := cc.start(ctx, stream, wire.TypeBatch, *buf, c.timeoutFor(ctx))
	wire.PutBuf(buf)
	if err != nil {
		call.err = err
		return call
	}
	call.pc = pc
	return call
}

// appendCorePairBatch encodes a batch payload straight from core pairs into
// a pooled buffer, skipping the []wire.PairPayload copy EncodeBatch would
// cost. The caller (or c.call) releases the buffer after the frame is
// written.
//
//shhc:returns-buf
func appendCorePairBatch(pairs []core.Pair) *[]byte {
	buf := wire.GetBuf(4 + len(pairs)*(fingerprint.Size+8))
	b := appendUint32((*buf)[:0], uint32(len(pairs)))
	for i := range pairs {
		b = wire.AppendPair(b, wire.PairPayload{FP: pairs[i].FP, Val: uint64(pairs[i].Val)})
	}
	*buf = b
	return buf
}

// Done returns a channel closed when the response (or a connection
// failure) is available; Results will not block after it is closed. A
// call that failed before sending returns an already-closed channel.
// Cancellation of the call's context is not reflected here — select on
// ctx.Done() alongside Done when waiting for either.
func (b *BatchCall) Done() <-chan struct{} {
	if b.pc == nil {
		closed := make(chan struct{})
		close(closed)
		return closed
	}
	return b.pc.settled
}

// Results blocks for the response and decodes the ordered results. It is
// safe to call more than once; every call returns the same outcome.
func (b *BatchCall) Results() ([]core.LookupResult, error) {
	b.once.Do(b.wait)
	return b.results, b.resErr
}

func (b *BatchCall) wait() {
	if b.err != nil {
		b.resErr = b.err
		return
	}
	resp, body, err := b.pc.wait(b.ctx, b.timeout)
	if err != nil {
		b.resErr = err
		return
	}
	defer wire.PutBuf(body)
	// Results() IS the consumption point of the pipelined protocol:
	// only now do the response bytes return to the stream's window. A
	// future nobody collects keeps its own stream credit-blocked — and
	// no one else's.
	b.pc.cc.grantConsumed(resp.Stream, len(resp.Payload))
	if resp.Type == wire.TypeError {
		b.resErr = decodeServerError(resp.Payload)
		return
	}
	rs, err := wire.DecodeBatchResult(resp.Payload)
	if err != nil {
		b.resErr = err
		return
	}
	if len(rs) != b.n {
		b.resErr = fmt.Errorf("rpc: batch answered %d results for %d pairs", len(rs), b.n)
		return
	}
	out := make([]core.LookupResult, len(rs))
	for i, r := range rs {
		out[i] = fromWireResult(r)
	}
	b.results = out
}

// Stats fetches the remote node's counters.
func (c *Client) Stats(ctx context.Context) (core.NodeStats, error) {
	resp, body, err := c.call(ctx, 0, wire.TypeStats, nil)
	if err != nil {
		return core.NodeStats{}, err
	}
	s, err := wire.DecodeStats(resp.Payload)
	wire.PutBuf(body)
	if err != nil {
		return core.NodeStats{}, err
	}
	return fromWireStats(s), nil
}

// Close tears down all pooled connections and any cached redirect
// clients.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	c.closed = true
	for _, cc := range c.conns {
		if cc != nil {
			cc.shutdown(ErrClientClosed)
		}
	}
	c.mu.Unlock()

	c.redirectMu.Lock()
	children := c.redirects
	c.redirects = make(map[string]*Client)
	c.redirectMu.Unlock()
	for _, rc := range children {
		rc.Close()
	}
	return nil
}

// OpenStream allocates a dedicated logical stream on the client and
// returns a handle whose operations all ride that stream: its own credit
// window, its own place in the server's round-robin scheduler. Cheap —
// no wire traffic, just an id — so each subsystem (webfront, batcher,
// replication) can own one. On pre-5 connections the handle still works;
// it simply shares the single implicit stream with everything else.
func (c *Client) OpenStream() *ClientStream {
	id := atomic.AddUint32(&c.nextStreamID, 1) - 1
	return &ClientStream{c: c, id: id}
}

// ClientStream is a stream-pinned view of a Client. It implements
// core.Backend, so anything that routes through a Backend can be handed
// its own stream transparently.
type ClientStream struct {
	c  *Client
	id uint32
}

var _ core.Backend = (*ClientStream)(nil)

// ID returns the remote node's ring identity.
func (s *ClientStream) ID() ring.NodeID { return s.c.ID() }

// Stream returns the handle's logical stream id.
func (s *ClientStream) Stream() uint32 { return s.id }

// Ping checks liveness (control stream; never credit-charged).
func (s *ClientStream) Ping(ctx context.Context) error { return s.c.Ping(ctx) }

// Lookup runs a lookup on this handle's stream.
func (s *ClientStream) Lookup(ctx context.Context, fp fingerprint.Fingerprint) (core.LookupResult, error) {
	return s.c.lookupOn(ctx, s.id, fp)
}

// LookupOrInsert runs the Figure 4 flow on this handle's stream.
func (s *ClientStream) LookupOrInsert(ctx context.Context, fp fingerprint.Fingerprint, val core.Value) (core.LookupResult, error) {
	return s.c.lookupOrInsertOn(ctx, s.id, fp, val)
}

// Insert unconditionally records fp -> val on this handle's stream.
func (s *ClientStream) Insert(ctx context.Context, fp fingerprint.Fingerprint, val core.Value) error {
	return s.c.insertOn(ctx, s.id, fp, val)
}

// BatchLookupOrInsert sends one batch frame on this handle's stream.
func (s *ClientStream) BatchLookupOrInsert(ctx context.Context, pairs []core.Pair) ([]core.LookupResult, error) {
	return s.GoBatchLookupOrInsert(ctx, pairs).Results()
}

// GoBatchLookupOrInsert pipelines one batch on this handle's stream and
// returns a future. Uncollected futures exhaust only this stream's
// credit; every other stream keeps flowing.
func (s *ClientStream) GoBatchLookupOrInsert(ctx context.Context, pairs []core.Pair) *BatchCall {
	return s.c.goBatchOn(ctx, s.id, pairs)
}

// Stats fetches the remote node's counters (control stream).
func (s *ClientStream) Stats(ctx context.Context) (core.NodeStats, error) {
	return s.c.Stats(ctx)
}

// Close releases nothing: the stream is just an id, and the underlying
// Client (whose lifetime the owner manages) stays open.
func (s *ClientStream) Close() error { return nil }

// clientConn is one pipelined connection with an id-keyed pending table.
// On protocol >= 5 connections it additionally tracks one send-credit
// window per logical stream: a caller writing on a stream whose window is
// exhausted blocks (in start) until the server grants credit back — that
// per-caller blocking IS the isolation, because callers on other streams
// never touch the exhausted window.
type clientConn struct {
	conn    net.Conn
	version int // negotiated protocol version, fixed after the handshake

	writeMu sync.Mutex
	fw      *wire.FrameWriter

	mu      sync.Mutex
	pending map[uint64]*pendingCall
	nextID  uint64
	dead    bool
	deadErr error

	// window is the initial per-stream send credit; windows holds each
	// stream's live balance. deadCh wakes credit-waiters on shutdown.
	window  int64
	winMu   sync.Mutex
	windows map[uint32]*sendWindow
	deadCh  chan struct{}
	stalls  *uint64 // the owning Client's credit-stall counter (atomic)

	// grantEvery coalesces consumption grants: withhold WINDOW_UPDATE
	// frames for a stream until this many consumed bytes are pending
	// (a quarter of the server's advertised response window; 0 — peer
	// did not advertise — grants immediately). Withholding less than
	// the full window can never wedge the stream: the server always
	// retains at least three quarters of its credit.
	grantEvery int64

	closeOnce sync.Once
}

// sendWindow is one stream's send-credit balance. wake is closed and
// replaced on every grant, broadcasting to all waiters. pendGrant rides
// along as the stream's withheld consumption grants for the opposite
// (response) direction — bytes consumed but not yet granted back to the
// server, flushed once they reach clientConn.grantEvery.
type sendWindow struct {
	mu        sync.Mutex
	win       int64
	wake      chan struct{}
	pendGrant int64
}

// windowFor returns (creating if needed) the stream's send window.
func (cc *clientConn) windowFor(stream uint32) *sendWindow {
	cc.winMu.Lock()
	w := cc.windows[stream]
	if w == nil {
		w = &sendWindow{win: cc.window, wake: make(chan struct{})}
		cc.windows[stream] = w
	}
	cc.winMu.Unlock()
	return w
}

// acquire charges n bytes against the stream's send window, blocking
// while the balance is empty. The window may go negative (one oversized
// frame), which blocks the stream until grants restore it.
func (cc *clientConn) acquire(ctx context.Context, stream uint32, n int) error {
	if cc.version < wire.Version5 || stream == 0 || n == 0 {
		return nil
	}
	w := cc.windowFor(stream)
	w.mu.Lock()
	stalled := false
	for w.win <= 0 {
		if !stalled {
			stalled = true
			atomic.AddUint64(cc.stalls, 1)
		}
		ch := w.wake
		w.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		case <-cc.deadCh:
			cc.mu.Lock()
			err := cc.deadErr
			cc.mu.Unlock()
			if err == nil {
				err = errors.New("rpc: connection closed")
			}
			return err
		}
		w.mu.Lock()
	}
	w.win -= int64(n)
	w.mu.Unlock()
	return nil
}

// grantSend credits the stream's send window (a WINDOW_UPDATE arrived:
// the server flushed responses and returned the request bytes).
func (cc *clientConn) grantSend(stream uint32, n int) {
	w := cc.windowFor(stream)
	w.mu.Lock()
	w.win += int64(n)
	if w.win > cc.window {
		w.win = cc.window
	}
	close(w.wake)
	w.wake = make(chan struct{})
	w.mu.Unlock()
}

// grantConsumed tells the server we consumed n bytes of response payload
// on the stream, reopening its response window (protocol >= 5). Sent on
// consumption — not delivery — so an unconsumed future keeps its stream's
// server-side window shut, which is exactly the back-pressure the mux
// design wants.
func (cc *clientConn) grantConsumed(stream uint32, n int) {
	if cc.version < wire.Version5 || stream == 0 || n == 0 || cc.isDead() {
		return
	}
	credit := int64(n)
	if cc.grantEvery > 0 {
		// Coalesce: accumulate until a quarter of the server's window is
		// pending, then grant the whole batch in one frame.
		w := cc.windowFor(stream)
		w.mu.Lock()
		w.pendGrant += credit
		if w.pendGrant < cc.grantEvery {
			w.mu.Unlock()
			return
		}
		credit = w.pendGrant
		w.pendGrant = 0
		w.mu.Unlock()
	}
	var payload [4]byte
	cc.writeMu.Lock()
	err := cc.fw.WriteFrame(wire.Frame{
		Type:    wire.TypeWindowUpdate,
		Stream:  stream,
		Payload: wire.AppendWindowUpdate(payload[:0], uint32(credit)),
	}, cc.version)
	cc.writeMu.Unlock()
	if err != nil {
		cc.shutdown(fmt.Errorf("rpc: send window update: %w", err))
	}
}

// response is a received frame plus the pooled buffer its payload aliases.
// Whoever consumes the response releases body with wire.PutBuf after the
// payload's last use.
type response struct {
	f    wire.Frame
	body *[]byte
}

// pendingCall is one request awaiting its response frame. Ownership
// discipline: whichever party removes the call from the connection's
// pending table — the read loop (response arrived), shutdown (connection
// died), or the caller's timeout/cancellation — settles it, exactly once.
type pendingCall struct {
	cc      *clientConn
	reqType wire.Type
	id      uint64
	ch      chan response // buffered 1; receives the response
	settled chan struct{} // closed once ch holds the response or the call failed
}

func (cc *clientConn) isDead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.dead
}

// shutdown marks the connection dead and fails every pending call.
func (cc *clientConn) shutdown(err error) {
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return
	}
	cc.dead = true
	cc.deadErr = err
	waiters := cc.pending
	cc.pending = map[uint64]*pendingCall{}
	cc.mu.Unlock()

	close(cc.deadCh) // wake credit-waiters; their windows die with the conn
	cc.closeOnce.Do(func() { cc.conn.Close() })
	for _, pc := range waiters {
		close(pc.ch)
		close(pc.settled)
	}
}

func (cc *clientConn) readLoop() {
	br := bufio.NewReaderSize(cc.conn, 64<<10)
	for {
		frame, body, err := wire.ReadFrameVInto(br, cc.version)
		if err != nil {
			cc.shutdown(fmt.Errorf("rpc: connection lost: %w", err))
			return
		}
		if frame.Type == wire.TypeWindowUpdate {
			// Credit grant from the server: the responses we asked for
			// flushed, so our request window on that stream reopens.
			n, derr := wire.DecodeWindowUpdate(frame.Payload)
			wire.PutBuf(body)
			if derr != nil {
				cc.shutdown(fmt.Errorf("rpc: bad window update: %w", derr))
				return
			}
			cc.grantSend(frame.Stream, int(n))
			continue
		}
		cc.mu.Lock()
		pc, ok := cc.pending[frame.ID]
		if ok {
			delete(cc.pending, frame.ID)
		}
		cc.mu.Unlock()
		if ok {
			//lint:ignore poolescape intentional ownership hand-off: pc.ch is buffered 1 and the waiter (or discardSettled on an abandon race) releases body exactly once.
			pc.ch <- response{f: frame, body: body}
			close(pc.settled)
		} else {
			// Nobody is waiting (abandoned by timeout or cancel) — the
			// payload dies here, and its bytes still count as consumed so
			// the stream's response window is not leaked shut.
			n := len(frame.Payload)
			wire.PutBuf(body)
			cc.grantConsumed(frame.Stream, n)
		}
	}
}

// start registers a call and writes its request frame, returning without
// waiting for the response — this is what pipelines multiple requests onto
// one connection. timeout (relative, 0 = none) rides in the frame on
// version >= 1 connections. On protocol >= 5 connections the payload is
// first charged against the stream's send window; a caller on an
// exhausted stream blocks here (under ctx) until the server grants
// credit, while callers on other streams sail past.
func (cc *clientConn) start(ctx context.Context, stream uint32, reqType wire.Type, payload []byte, timeout time.Duration) (*pendingCall, error) {
	if err := cc.acquire(ctx, stream, len(payload)); err != nil {
		return nil, err
	}
	cc.mu.Lock()
	if cc.dead {
		err := cc.deadErr
		cc.mu.Unlock()
		return nil, err
	}
	id := atomic.AddUint64(&cc.nextID, 1)
	pc := &pendingCall{
		cc:      cc,
		reqType: reqType,
		id:      id,
		ch:      make(chan response, 1),
		settled: make(chan struct{}),
	}
	cc.pending[id] = pc
	cc.mu.Unlock()

	cc.writeMu.Lock()
	err := cc.fw.WriteFrame(wire.Frame{Type: reqType, ID: id, Timeout: timeout, Stream: stream, Payload: payload}, cc.version)
	cc.writeMu.Unlock()
	if err != nil {
		cc.shutdown(fmt.Errorf("rpc: send: %w", err))
		return nil, err
	}
	return pc, nil
}

// sendCancel tells the server to abandon the request (protocol >= 1;
// best-effort — a failure only means the server works a little longer).
func (cc *clientConn) sendCancel(id uint64) {
	if cc.version < wire.Version1 || cc.isDead() {
		return
	}
	cc.writeMu.Lock()
	err := cc.fw.WriteFrame(wire.Frame{Type: wire.TypeCancel, ID: id}, cc.version)
	cc.writeMu.Unlock()
	if err != nil {
		cc.shutdown(fmt.Errorf("rpc: send cancel: %w", err))
	}
}

// abandon removes the call from the pending table (if still owned) and
// settles it. Returns true when this caller won the removal race.
func (pc *pendingCall) abandon() bool {
	pc.cc.mu.Lock()
	_, owned := pc.cc.pending[pc.id]
	if owned {
		delete(pc.cc.pending, pc.id)
	}
	pc.cc.mu.Unlock()
	if owned {
		close(pc.settled)
	}
	return owned
}

// wait blocks for the call's response, the context's cancellation, or the
// transport timeout, whichever lands first. On success the returned pooled
// buffer (which the frame's payload aliases) belongs to the caller, who
// releases it with wire.PutBuf after decoding.
//
//shhc:returns-buf
func (pc *pendingCall) wait(ctx context.Context, timeout time.Duration) (wire.Frame, *[]byte, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp, ok := <-pc.ch:
		if !ok {
			pc.cc.mu.Lock()
			err := pc.cc.deadErr
			pc.cc.mu.Unlock()
			if err == nil {
				err = errors.New("rpc: connection closed")
			}
			return wire.Frame{}, nil, err
		}
		return resp.f, resp.body, nil
	case <-ctx.Done():
		if pc.abandon() {
			pc.cc.sendCancel(pc.id)
		} else {
			pc.discardSettled()
		}
		return wire.Frame{}, nil, ctx.Err()
	case <-timer.C:
		if pc.abandon() {
			pc.cc.sendCancel(pc.id)
		} else {
			pc.discardSettled()
		}
		return wire.Frame{}, nil, fmt.Errorf("rpc: %v: request timed out after %v", pc.reqType, timeout)
	}
}

// discardSettled releases the response an abandon race lost to. When
// abandon returns false, another party removed the call from the pending
// table first: the read loop, which then deposits the response — with its
// pooled body — into pc.ch before closing settled, or shutdown, which
// closes ch empty. This waiter is the only receiver, so without a drain
// here that body would be stranded in the buffered channel forever (a
// pool leak on every lost cancellation/timeout race). Settlement is
// already imminent when abandon loses, so the wait is bounded.
func (pc *pendingCall) discardSettled() {
	<-pc.settled
	select {
	case resp, ok := <-pc.ch:
		if ok {
			n := len(resp.f.Payload)
			wire.PutBuf(resp.body)
			pc.cc.grantConsumed(resp.f.Stream, n)
		}
	default:
	}
}
