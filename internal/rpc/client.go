package rpc

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"shhc/internal/core"
	"shhc/internal/fingerprint"
	"shhc/internal/ring"
	"shhc/internal/wire"
)

func ringNodeID(s string) ring.NodeID { return ring.NodeID(s) }

// ErrClientClosed is returned by operations on a closed client.
var ErrClientClosed = errors.New("rpc: client is closed")

// ServerError is a failure reported by the remote node (as opposed to a
// transport failure).
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "rpc: server: " + e.Msg }

// ClientConfig configures a Client.
type ClientConfig struct {
	// Conns is the connection pool size; requests round-robin across it.
	// Default 2 (one per direction of the paper's two client machines).
	Conns int
	// DialTimeout bounds connection establishment. Default 5s.
	DialTimeout time.Duration
	// Timeout bounds each request round-trip. Default 30s.
	Timeout time.Duration
}

func (c *ClientConfig) fill() {
	if c.Conns <= 0 {
		c.Conns = 2
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
}

// Client is a connection-pooled, pipelining client for one hash node.
// It implements core.Backend so a core.Cluster can route to remote nodes
// exactly as it routes to in-process ones.
type Client struct {
	id   ring.NodeID
	addr string
	cfg  ClientConfig

	mu     sync.Mutex
	conns  []*clientConn
	next   uint64
	closed bool
}

var _ core.Backend = (*Client)(nil)

// Dial connects to a hash node server.
func Dial(id ring.NodeID, addr string, cfg ClientConfig) (*Client, error) {
	cfg.fill()
	c := &Client{id: id, addr: addr, cfg: cfg, conns: make([]*clientConn, cfg.Conns)}
	// Establish the first connection eagerly so configuration errors
	// surface at startup; the rest dial lazily.
	cc, err := c.dialConn()
	if err != nil {
		return nil, err
	}
	c.conns[0] = cc
	return c, nil
}

// ID returns the remote node's ring identity.
func (c *Client) ID() ring.NodeID { return c.id }

// Addr returns the remote address.
func (c *Client) Addr() string { return c.addr }

func (c *Client) dialConn() (*clientConn, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", c.addr, err)
	}
	if tcp, ok := conn.(*net.TCPConn); ok {
		_ = tcp.SetNoDelay(true)
	}
	cc := &clientConn{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 64<<10),
		pending: make(map[uint64]*pendingCall),
	}
	go cc.readLoop()
	return cc, nil
}

// pick returns a live pooled connection, redialing dead slots lazily.
func (c *Client) pick() (*clientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClientClosed
	}
	idx := int(c.next % uint64(len(c.conns)))
	c.next++
	cc := c.conns[idx]
	if cc == nil || cc.isDead() {
		fresh, err := c.dialConn()
		if err != nil {
			return nil, err
		}
		if cc != nil {
			cc.shutdown(errors.New("rpc: connection replaced"))
		}
		c.conns[idx] = fresh
		cc = fresh
	}
	return cc, nil
}

// call performs one round-trip.
func (c *Client) call(reqType wire.Type, payload []byte) (wire.Frame, error) {
	cc, err := c.pick()
	if err != nil {
		return wire.Frame{}, err
	}
	resp, err := cc.roundTrip(reqType, payload, c.cfg.Timeout)
	if err != nil {
		return wire.Frame{}, err
	}
	if resp.Type == wire.TypeError {
		msg, derr := wire.DecodeError(resp.Payload)
		if derr != nil {
			msg = "undecodable server error"
		}
		return wire.Frame{}, &ServerError{Msg: msg}
	}
	return resp, nil
}

// Ping checks liveness of the remote node.
func (c *Client) Ping() error {
	resp, err := c.call(wire.TypePing, nil)
	if err != nil {
		return err
	}
	if resp.Type != wire.TypePong {
		return fmt.Errorf("rpc: ping got %v", resp.Type)
	}
	return nil
}

// Lookup asks the remote node whether fp exists, without inserting.
func (c *Client) Lookup(fp fingerprint.Fingerprint) (core.LookupResult, error) {
	resp, err := c.call(wire.TypeLookup, wire.EncodeFP(fp))
	if err != nil {
		return core.LookupResult{}, err
	}
	r, err := wire.DecodeResult(resp.Payload)
	if err != nil {
		return core.LookupResult{}, err
	}
	return fromWireResult(r), nil
}

// LookupOrInsert runs the Figure 4 flow on the remote node.
func (c *Client) LookupOrInsert(fp fingerprint.Fingerprint, val core.Value) (core.LookupResult, error) {
	resp, err := c.call(wire.TypeLookupOrInsert, wire.EncodePair(wire.PairPayload{FP: fp, Val: uint64(val)}))
	if err != nil {
		return core.LookupResult{}, err
	}
	r, err := wire.DecodeResult(resp.Payload)
	if err != nil {
		return core.LookupResult{}, err
	}
	return fromWireResult(r), nil
}

// Insert unconditionally records fp -> val on the remote node.
func (c *Client) Insert(fp fingerprint.Fingerprint, val core.Value) error {
	_, err := c.call(wire.TypeInsert, wire.EncodePair(wire.PairPayload{FP: fp, Val: uint64(val)}))
	return err
}

// BatchLookupOrInsert sends one batch frame and decodes the ordered
// results — the unit of the paper's batch-mode experiments.
func (c *Client) BatchLookupOrInsert(pairs []core.Pair) ([]core.LookupResult, error) {
	return c.GoBatchLookupOrInsert(pairs).Results()
}

// BatchCall is an in-flight batch request: a future for the pipelined
// protocol. Results blocks until the response frame arrives (or the
// request times out); Done exposes completion for select loops.
type BatchCall struct {
	n       int
	pc      *pendingCall
	timeout time.Duration
	err     error // pre-flight failure (dial, encode, send)

	once    sync.Once
	results []core.LookupResult
	resErr  error
}

// GoBatchLookupOrInsert writes one batch frame and returns immediately
// with a future. Because connections are pipelined (requests carry ids and
// responses return as they complete), a caller can keep many batches in
// flight on one connection and a batch stalled on a remote node's SSD
// phase does not block the batches behind it — the wire analogue of the
// node's asynchronous lookup pipeline.
func (c *Client) GoBatchLookupOrInsert(pairs []core.Pair) *BatchCall {
	wirePairs := make([]wire.PairPayload, len(pairs))
	for i, p := range pairs {
		wirePairs[i] = wire.PairPayload{FP: p.FP, Val: uint64(p.Val)}
	}
	call := &BatchCall{n: len(pairs), timeout: c.cfg.Timeout}
	cc, err := c.pick()
	if err != nil {
		call.err = err
		return call
	}
	pc, err := cc.start(wire.TypeBatch, wire.EncodeBatch(wirePairs))
	if err != nil {
		call.err = err
		return call
	}
	call.pc = pc
	return call
}

// Done returns a channel closed when the response (or a connection
// failure) is available; Results will not block after it is closed. A
// call that failed before sending returns an already-closed channel.
func (b *BatchCall) Done() <-chan struct{} {
	if b.pc == nil {
		closed := make(chan struct{})
		close(closed)
		return closed
	}
	return b.pc.settled
}

// Results blocks for the response and decodes the ordered results. It is
// safe to call more than once; every call returns the same outcome.
func (b *BatchCall) Results() ([]core.LookupResult, error) {
	b.once.Do(b.wait)
	return b.results, b.resErr
}

func (b *BatchCall) wait() {
	if b.err != nil {
		b.resErr = b.err
		return
	}
	resp, err := b.pc.wait(b.timeout)
	if err != nil {
		b.resErr = err
		return
	}
	if resp.Type == wire.TypeError {
		msg, derr := wire.DecodeError(resp.Payload)
		if derr != nil {
			msg = "undecodable server error"
		}
		b.resErr = &ServerError{Msg: msg}
		return
	}
	rs, err := wire.DecodeBatchResult(resp.Payload)
	if err != nil {
		b.resErr = err
		return
	}
	if len(rs) != b.n {
		b.resErr = fmt.Errorf("rpc: batch answered %d results for %d pairs", len(rs), b.n)
		return
	}
	out := make([]core.LookupResult, len(rs))
	for i, r := range rs {
		out[i] = fromWireResult(r)
	}
	b.results = out
}

// Stats fetches the remote node's counters.
func (c *Client) Stats() (core.NodeStats, error) {
	resp, err := c.call(wire.TypeStats, nil)
	if err != nil {
		return core.NodeStats{}, err
	}
	s, err := wire.DecodeStats(resp.Payload)
	if err != nil {
		return core.NodeStats{}, err
	}
	return fromWireStats(s), nil
}

// Close tears down all pooled connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	c.closed = true
	for _, cc := range c.conns {
		if cc != nil {
			cc.shutdown(ErrClientClosed)
		}
	}
	return nil
}

// clientConn is one pipelined connection with an id-keyed pending table.
type clientConn struct {
	conn net.Conn

	writeMu sync.Mutex
	bw      *bufio.Writer

	mu      sync.Mutex
	pending map[uint64]*pendingCall
	nextID  uint64
	dead    bool
	deadErr error

	closeOnce sync.Once
}

// pendingCall is one request awaiting its response frame. Ownership
// discipline: whichever party removes the call from the connection's
// pending table — the read loop (response arrived), shutdown (connection
// died), or the caller's timeout — settles it, exactly once.
type pendingCall struct {
	cc      *clientConn
	reqType wire.Type
	id      uint64
	ch      chan wire.Frame // buffered 1; receives the response
	settled chan struct{}   // closed once ch holds the response or the call failed
}

func (cc *clientConn) isDead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.dead
}

// shutdown marks the connection dead and fails every pending call.
func (cc *clientConn) shutdown(err error) {
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return
	}
	cc.dead = true
	cc.deadErr = err
	waiters := cc.pending
	cc.pending = map[uint64]*pendingCall{}
	cc.mu.Unlock()

	cc.closeOnce.Do(func() { cc.conn.Close() })
	for _, pc := range waiters {
		close(pc.ch)
		close(pc.settled)
	}
}

func (cc *clientConn) readLoop() {
	br := bufio.NewReaderSize(cc.conn, 64<<10)
	for {
		frame, err := wire.ReadFrame(br)
		if err != nil {
			cc.shutdown(fmt.Errorf("rpc: connection lost: %w", err))
			return
		}
		cc.mu.Lock()
		pc, ok := cc.pending[frame.ID]
		if ok {
			delete(cc.pending, frame.ID)
		}
		cc.mu.Unlock()
		if ok {
			pc.ch <- frame
			close(pc.settled)
		}
	}
}

// start registers a call and writes its request frame, returning without
// waiting for the response — this is what pipelines multiple requests onto
// one connection.
func (cc *clientConn) start(reqType wire.Type, payload []byte) (*pendingCall, error) {
	cc.mu.Lock()
	if cc.dead {
		err := cc.deadErr
		cc.mu.Unlock()
		return nil, err
	}
	id := atomic.AddUint64(&cc.nextID, 1)
	pc := &pendingCall{
		cc:      cc,
		reqType: reqType,
		id:      id,
		ch:      make(chan wire.Frame, 1),
		settled: make(chan struct{}),
	}
	cc.pending[id] = pc
	cc.mu.Unlock()

	cc.writeMu.Lock()
	err := wire.WriteFrame(cc.bw, wire.Frame{Type: reqType, ID: id, Payload: payload})
	if err == nil {
		err = cc.bw.Flush()
	}
	cc.writeMu.Unlock()
	if err != nil {
		cc.shutdown(fmt.Errorf("rpc: send: %w", err))
		return nil, err
	}
	return pc, nil
}

// wait blocks for the call's response.
func (pc *pendingCall) wait(timeout time.Duration) (wire.Frame, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case frame, ok := <-pc.ch:
		if !ok {
			pc.cc.mu.Lock()
			err := pc.cc.deadErr
			pc.cc.mu.Unlock()
			if err == nil {
				err = errors.New("rpc: connection closed")
			}
			return wire.Frame{}, err
		}
		return frame, nil
	case <-timer.C:
		pc.cc.mu.Lock()
		_, owned := pc.cc.pending[pc.id]
		if owned {
			delete(pc.cc.pending, pc.id)
		}
		pc.cc.mu.Unlock()
		if owned {
			close(pc.settled)
		}
		return wire.Frame{}, fmt.Errorf("rpc: %v: request timed out after %v", pc.reqType, timeout)
	}
}

func (cc *clientConn) roundTrip(reqType wire.Type, payload []byte, timeout time.Duration) (wire.Frame, error) {
	pc, err := cc.start(reqType, payload)
	if err != nil {
		return wire.Frame{}, err
	}
	return pc.wait(timeout)
}
