package rpc

import (
	"context"
	"fmt"
	"testing"
	"time"

	"shhc/internal/core"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

func benchClient(b *testing.B) *Client {
	b.Helper()
	node, err := core.NewNode(core.NodeConfig{
		ID:            "bench",
		Store:         hashdb.NewMemStore(nil),
		CacheSize:     1 << 14,
		BloomExpected: 1 << 21,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(node, ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	client, err := Dial(ring.NodeID("bench"), addr.String(), ClientConfig{Conns: 2, Timeout: 10 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		client.Close()
		srv.Close()
		node.Close()
	})
	return client
}

func BenchmarkRPCSingleLookup(b *testing.B) {
	client := benchClient(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.LookupOrInsert(context.Background(), fp(uint64(i)), core.Value(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPCBatch(b *testing.B) {
	for _, size := range []int{128, 2048} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			client := benchClient(b)
			pairs := make([]core.Pair, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range pairs {
					pairs[j] = core.Pair{FP: fp(uint64(i*size + j)), Val: core.Value(j)}
				}
				if _, err := client.BatchLookupOrInsert(context.Background(), pairs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
		})
	}
}

func BenchmarkRPCPipelinedClients(b *testing.B) {
	client := benchClient(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := client.LookupOrInsert(context.Background(), fp(uint64(i)), 1); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
