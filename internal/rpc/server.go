// Package rpc provides SHHC's cluster networking: a TCP server exposing a
// hash node, and a client implementing core.Backend over the wire protocol.
//
// Connections are pipelined — a client may have many requests in flight and
// responses return as they complete, tagged with the request id. This is
// what lets two client machines saturate a 4-node cluster in the paper's
// Figure 5 experiment.
//
//shhc:ctxapi
package rpc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"shhc/internal/core"
	"shhc/internal/metrics"
	"shhc/internal/wire"
)

// Server exposes a core.Backend (usually a *core.Node) over TCP.
//
// Every request runs under its own derived context: the server's root
// context (cancelled on Close), narrowed by the connection (cancelled
// when the peer goes away) and by the request's wire deadline, and
// individually cancellable by a CANCEL frame from the client. A request
// whose context expires answers with the context error, which the client
// maps back to context.DeadlineExceeded / context.Canceled.
type Server struct {
	backend core.Backend
	logger  *log.Logger

	//lint:ignore ctxfirst rootCtx is the server's lifetime context (parent of every per-conn ctx), cancelled by Close; it is process-scoped by design, not a smuggled call ctx.
	rootCtx    context.Context
	rootCancel context.CancelFunc

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServerConfig configures a Server.
type ServerConfig struct {
	// Logger receives connection-level errors; nil discards them.
	Logger *log.Logger
}

// NewServer creates a server for the given backend.
func NewServer(backend core.Backend, cfg ServerConfig) *Server {
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	rootCtx, rootCancel := context.WithCancel(context.Background())
	return &Server{
		backend:    backend,
		logger:     logger,
		rootCtx:    rootCtx,
		rootCancel: rootCancel,
		conns:      make(map[net.Conn]struct{}),
	}
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts serving in the
// background. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("rpc: server is closed")
	}
	s.ln = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if tcp, ok := conn.(*net.TCPConn); ok {
			// Lookup responses are tiny; batching at the Nagle level only
			// adds latency the paper's batch mode already amortizes.
			_ = tcp.SetNoDelay(true)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// maxInflightPerConn bounds per-connection request goroutines so a client
// cannot exhaust server memory by pipelining unboundedly.
const maxInflightPerConn = 256

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	// connCtx parents every request on this connection: it dies with the
	// connection (peer gone — nobody is left to read the answers) and
	// with the server's root context (Close). Cancelled below, ahead of
	// reqWG.Wait.
	connCtx, connCancel := context.WithCancel(s.rootCtx)

	var (
		br      = bufio.NewReaderSize(conn, 64<<10)
		fw      = wire.NewFrameWriter(conn)
		version = wire.Version0 // until a Hello negotiates higher
		writeMu sync.Mutex
		reqWG   sync.WaitGroup
		sem     = make(chan struct{}, maxInflightPerConn)

		// inflight maps request id -> cancel for CANCEL frames.
		inflightMu sync.Mutex
		inflight   = make(map[uint64]context.CancelFunc)
	)
	// Cancel the connection context BEFORE waiting for handlers: when the
	// peer goes away, nobody is left to read the answers, so in-flight
	// handlers must be unwound, not waited out (a deadline-less v0
	// request on a slow device would otherwise pin this goroutine, its
	// semaphore slot, and the conn indefinitely).
	defer func() {
		connCancel()
		reqWG.Wait()
	}()

	// respond writes one frame under the write mutex via vectored I/O —
	// header+payload leave in a single writev syscall with no intermediate
	// buffer — then releases the pooled payload buffer (nil for payloads
	// that are not pooled, e.g. Pong's empty one).
	respond := func(f wire.Frame, buf *[]byte, v int) {
		writeMu.Lock()
		err := fw.WriteFrame(f, v)
		writeMu.Unlock()
		wire.PutBuf(buf)
		if err != nil {
			s.logger.Printf("rpc: write to %s: %v", conn.RemoteAddr(), err)
		}
	}

	for {
		frame, body, err := wire.ReadFrameVInto(br, version)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logger.Printf("rpc: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		switch frame.Type {
		case wire.TypeHello:
			// Handled inline, before any other frame: the ack travels in
			// the version-0 layout and every later frame in the
			// negotiated one.
			theirs, err := wire.DecodeHello(frame.Payload)
			wire.PutBuf(body)
			if err != nil {
				respond(wire.Frame{Type: wire.TypeError, ID: frame.ID, Payload: wire.EncodeError(err.Error())}, nil, wire.Version0)
				continue
			}
			v := wire.MaxVersion
			if theirs < v {
				v = theirs
			}
			respond(wire.Frame{Type: wire.TypeHelloAck, ID: frame.ID, Payload: wire.EncodeHello(v)}, nil, wire.Version0)
			version = v
			continue
		case wire.TypeCancel:
			// Also inline: a cancel queued behind the semaphore would
			// defeat its purpose. (When the semaphore is full the read
			// loop itself is blocked below, so cancels stall with it —
			// the per-request timeout still bounds those requests.)
			wire.PutBuf(body)
			inflightMu.Lock()
			cancel := inflight[frame.ID]
			inflightMu.Unlock()
			if cancel != nil {
				cancel()
			}
			continue
		}
		// Derive and REGISTER the request context here in the read loop,
		// before the handler goroutine is spawned: a CANCEL frame for
		// this id can arrive on the very next read, and registering
		// inside the goroutine would race it (the cancel would find
		// nothing and be lost).
		var (
			rctx    context.Context
			rcancel context.CancelFunc
		)
		if frame.Timeout != 0 {
			// Relative on the wire: immune to clock skew. A negative
			// budget (client sent an already-expired context) derives an
			// already-expired context here too.
			rctx, rcancel = context.WithTimeout(connCtx, frame.Timeout)
		} else {
			rctx, rcancel = context.WithCancel(connCtx)
		}
		inflightMu.Lock()
		inflight[frame.ID] = rcancel
		inflightMu.Unlock()

		sem <- struct{}{}
		reqWG.Add(1)
		go func(ctx context.Context, cancel context.CancelFunc, f wire.Frame, reqBody *[]byte, v int) {
			defer reqWG.Done()
			defer func() { <-sem }()
			defer func() {
				inflightMu.Lock()
				delete(inflight, f.ID)
				inflightMu.Unlock()
				cancel()
			}()

			// handle decodes the request payload before touching the
			// backend, so the request buffer can be released as soon as it
			// returns; the response payload rides in its own pooled buffer,
			// released by respond after the write.
			resp, respBuf := s.handle(ctx, f, v)
			wire.PutBuf(reqBody)
			respond(resp, respBuf, v)
		}(rctx, rcancel, frame, body, version)
	}
}

// handle executes one request frame under ctx and builds the response
// frame. version is the connection's negotiated protocol version, which
// selects the stats payload layout (old peers get the legacy one).
//
// The returned *[]byte is the pooled buffer the response payload lives in
// (nil when the payload is empty or not pooled); the caller releases it
// after the frame is written. f.Payload is not referenced after handle
// returns — every arm decodes it into owned values up front.
//
//shhc:returns-buf
func (s *Server) handle(ctx context.Context, f wire.Frame, version int) (wire.Frame, *[]byte) {
	fail := func(err error) (wire.Frame, *[]byte) {
		buf := wire.GetBuf(0)
		*buf = wire.AppendError((*buf)[:0], err.Error())
		return wire.Frame{Type: wire.TypeError, ID: f.ID, Payload: *buf}, buf
	}
	result := func(t wire.Type, r wire.ResultPayload) (wire.Frame, *[]byte) {
		buf := wire.GetBuf(0)
		*buf = wire.AppendResult((*buf)[:0], r)
		return wire.Frame{Type: t, ID: f.ID, Payload: *buf}, buf
	}
	batchResult := func(rs []core.LookupResult) (wire.Frame, *[]byte) {
		buf := wire.GetBuf(4 + len(rs)*10)
		b := (*buf)[:0]
		b = appendUint32(b, uint32(len(rs)))
		for _, r := range rs {
			b = wire.AppendResult(b, toWireResult(r))
		}
		*buf = b
		return wire.Frame{Type: wire.TypeBatchResult, ID: f.ID, Payload: b}, buf
	}
	// A request that arrives already expired (or whose connection is
	// tearing down) is not worth starting.
	if err := ctx.Err(); err != nil {
		return fail(err)
	}
	switch f.Type {
	case wire.TypePing:
		return wire.Frame{Type: wire.TypePong, ID: f.ID}, nil

	case wire.TypeLookup:
		fp, err := wire.DecodeFP(f.Payload)
		if err != nil {
			return fail(err)
		}
		r, err := s.backend.Lookup(ctx, fp)
		if err != nil {
			return fail(err)
		}
		return result(wire.TypeResult, toWireResult(r))

	case wire.TypeLookupOrInsert:
		p, err := wire.DecodePair(f.Payload)
		if err != nil {
			return fail(err)
		}
		r, err := s.backend.LookupOrInsert(ctx, p.FP, core.Value(p.Val))
		if err != nil {
			return fail(err)
		}
		return result(wire.TypeResult, toWireResult(r))

	case wire.TypeInsert:
		p, err := wire.DecodePair(f.Payload)
		if err != nil {
			return fail(err)
		}
		if err := s.backend.Insert(ctx, p.FP, core.Value(p.Val)); err != nil {
			return fail(err)
		}
		return result(wire.TypeResult, wire.ResultPayload{})

	case wire.TypeBatch:
		pairs, err := decodeCorePairs(f.Payload)
		if err != nil {
			return fail(err)
		}
		rs, err := s.backend.BatchLookupOrInsert(ctx, pairs)
		if err != nil {
			return fail(err)
		}
		return batchResult(rs)

	case wire.TypeRepair:
		// The replication backfill verb (protocol >= 4): same pair batch
		// as TypeBatch, same keep-existing semantics, but routed through
		// the backend's repair path so the node accounts it as replication
		// traffic. Backends without the repair path (e.g. a chained RPC
		// client to a pre-4 peer) fall back to a plain batch — the
		// presence semantics are identical.
		pairs, err := decodeCorePairs(f.Payload)
		if err != nil {
			return fail(err)
		}
		var rs []core.LookupResult
		if ra, ok := s.backend.(core.RepairApplier); ok {
			rs, err = ra.ApplyRepair(ctx, pairs)
		} else {
			rs, err = s.backend.BatchLookupOrInsert(ctx, pairs)
		}
		if err != nil {
			return fail(err)
		}
		return batchResult(rs)

	case wire.TypeStats:
		st, err := s.backend.Stats(ctx)
		if err != nil {
			return fail(err)
		}
		buf := wire.GetBuf(0)
		*buf = wire.AppendStatsV((*buf)[:0], toWireStats(st), version)
		return wire.Frame{Type: wire.TypeStatsResult, ID: f.ID, Payload: *buf}, buf
	}
	return fail(fmt.Errorf("rpc: unsupported request type %v", f.Type))
}

// appendUint32 appends a big-endian uint32 (the batch-result count prefix).
func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// decodeCorePairs decodes a wire pair batch straight into core.Pair values,
// skipping the intermediate []wire.PairPayload copy DecodeBatch would cost.
func decodeCorePairs(payload []byte) ([]core.Pair, error) {
	wirePairs, err := wire.DecodeBatch(payload)
	if err != nil {
		return nil, err
	}
	pairs := make([]core.Pair, len(wirePairs))
	for i, p := range wirePairs {
		pairs[i] = core.Pair{FP: p.FP, Val: core.Value(p.Val)}
	}
	return pairs, nil
}

func toWireResult(r core.LookupResult) wire.ResultPayload {
	return wire.ResultPayload{Exists: r.Exists, Source: uint8(r.Source), Val: uint64(r.Value)}
}

func fromWireResult(r wire.ResultPayload) core.LookupResult {
	return core.LookupResult{Exists: r.Exists, Source: core.Source(r.Source), Value: core.Value(r.Val)}
}

func toWireSummary(s metrics.Summary) wire.SummaryPayload {
	return wire.SummaryPayload{
		Count:  uint64(s.Count),
		SumNS:  uint64(s.Sum),
		MinNS:  uint64(s.Min),
		MaxNS:  uint64(s.Max),
		MeanNS: uint64(s.Mean),
		P50NS:  uint64(s.P50),
		P90NS:  uint64(s.P90),
		P99NS:  uint64(s.P99),
	}
}

func fromWireSummary(p wire.SummaryPayload) metrics.Summary {
	return metrics.Summary{
		Count: int64(p.Count),
		Sum:   time.Duration(p.SumNS),
		Min:   time.Duration(p.MinNS),
		Max:   time.Duration(p.MaxNS),
		Mean:  time.Duration(p.MeanNS),
		P50:   time.Duration(p.P50NS),
		P90:   time.Duration(p.P90NS),
		P99:   time.Duration(p.P99NS),
	}
}

func toWireStats(st core.NodeStats) wire.StatsPayload {
	return wire.StatsPayload{
		ID:               string(st.ID),
		Lookups:          st.Lookups,
		Inserts:          st.Inserts,
		CacheHits:        st.CacheHits,
		BloomShort:       st.BloomShort,
		StoreHits:        st.StoreHits,
		StoreMisses:      st.StoreMisses,
		BloomFalse:       st.BloomFalse,
		Coalesced:        st.Coalesced,
		StoreEntries:     uint64(st.StoreEntries),
		CacheHitsLRU:     st.Cache.Hits,
		CacheMisses:      st.Cache.Misses,
		CacheEvicts:      st.Cache.Evictions,
		CacheLen:         uint64(st.Cache.Len),
		CacheCap:         uint64(st.Cache.Capacity),
		DestageQueue:     st.Destage.QueueDepth,
		DestageEntries:   st.Destage.Entries,
		DestagePages:     st.Destage.Pages,
		DestageWaves:     st.Destage.Waves,
		DestageCoalesced: st.Destage.Coalesced,
		DestageHits:      st.Destage.BufferHits,

		RecoveryJournalReplayed:  st.Recovery.JournalReplayed,
		RecoveryJournalTornBytes: st.Recovery.JournalTornBytes,
		RecoveryStoreRuns:        st.Recovery.Store.Runs,
		RecoveryStorePagesScan:   st.Recovery.Store.PagesScanned,
		RecoveryStoreTornPages:   st.Recovery.Store.TornPages,
		RecoveryStoreTailBytes:   st.Recovery.Store.TailBytes,
		RecoveryStoreLinks:       st.Recovery.Store.RepairedLinks,
		RecoveryStoreOrphans:     st.Recovery.Store.OrphanPages,
		RecoveryStoreSalvaged:    st.Recovery.Store.SalvagedEntries,

		ReplRepairBatches: st.Replica.RepairBatches,
		ReplRepairPairs:   st.Replica.RepairPairs,
		ReplRepairCreated: st.Replica.RepairCreated,

		PhaseCache:       toWireSummary(st.Phases.Cache),
		PhaseBloom:       toWireSummary(st.Phases.Bloom),
		PhaseSSD:         toWireSummary(st.Phases.SSD),
		DestageWaveSizes: toWireSummary(st.Destage.WaveSizes),
	}
}

func fromWireStats(s wire.StatsPayload) core.NodeStats {
	st := core.NodeStats{
		ID:           ringNodeID(s.ID),
		Lookups:      s.Lookups,
		Inserts:      s.Inserts,
		CacheHits:    s.CacheHits,
		BloomShort:   s.BloomShort,
		StoreHits:    s.StoreHits,
		StoreMisses:  s.StoreMisses,
		BloomFalse:   s.BloomFalse,
		Coalesced:    s.Coalesced,
		StoreEntries: int(s.StoreEntries),
	}
	st.Cache.Hits = s.CacheHitsLRU
	st.Cache.Misses = s.CacheMisses
	st.Cache.Evictions = s.CacheEvicts
	st.Cache.Len = int(s.CacheLen)
	st.Cache.Capacity = int(s.CacheCap)
	st.Destage.QueueDepth = s.DestageQueue
	st.Destage.Entries = s.DestageEntries
	st.Destage.Pages = s.DestagePages
	st.Destage.Waves = s.DestageWaves
	st.Destage.Coalesced = s.DestageCoalesced
	st.Destage.BufferHits = s.DestageHits
	st.Recovery.JournalReplayed = s.RecoveryJournalReplayed
	st.Recovery.JournalTornBytes = s.RecoveryJournalTornBytes
	st.Recovery.Store.Runs = s.RecoveryStoreRuns
	st.Recovery.Store.PagesScanned = s.RecoveryStorePagesScan
	st.Recovery.Store.TornPages = s.RecoveryStoreTornPages
	st.Recovery.Store.TailBytes = s.RecoveryStoreTailBytes
	st.Recovery.Store.RepairedLinks = s.RecoveryStoreLinks
	st.Recovery.Store.OrphanPages = s.RecoveryStoreOrphans
	st.Recovery.Store.SalvagedEntries = s.RecoveryStoreSalvaged
	st.Replica.RepairBatches = s.ReplRepairBatches
	st.Replica.RepairPairs = s.ReplRepairPairs
	st.Replica.RepairCreated = s.ReplRepairCreated
	st.Phases.Cache = fromWireSummary(s.PhaseCache)
	st.Phases.Bloom = fromWireSummary(s.PhaseBloom)
	st.Phases.SSD = fromWireSummary(s.PhaseSSD)
	st.Destage.WaveSizes = fromWireSummary(s.DestageWaveSizes)
	return st
}

// Close stops accepting, cancels the root context (so in-flight request
// handlers unwind promptly), closes all connections, and waits for
// handlers. The wrapped backend is NOT closed; its owner closes it.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("rpc: server already closed")
	}
	s.closed = true
	s.rootCancel()
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}
