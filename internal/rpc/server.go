// Package rpc provides SHHC's cluster networking: a TCP server exposing a
// hash node, and a client implementing core.Backend over the wire protocol.
//
// Connections are pipelined — a client may have many requests in flight and
// responses return as they complete, tagged with the request id. This is
// what lets two client machines saturate a 4-node cluster in the paper's
// Figure 5 experiment.
//
//shhc:ctxapi
package rpc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"shhc/internal/core"
	"shhc/internal/fingerprint"
	"shhc/internal/metrics"
	"shhc/internal/wire"
)

// Server exposes a core.Backend (usually a *core.Node) over TCP.
//
// Every request runs under its own derived context: the server's root
// context (cancelled on Close), narrowed by the connection (cancelled
// when the peer goes away) and by the request's wire deadline, and
// individually cancellable by a CANCEL frame from the client. A request
// whose context expires answers with the context error, which the client
// maps back to context.DeadlineExceeded / context.Canceled.
type Server struct {
	backend core.Backend
	logger  *log.Logger
	window  int
	owner   func(fp fingerprint.Fingerprint) (ownerID, ownerAddr string, owned bool)

	//lint:ignore ctxfirst rootCtx is the server's lifetime context (parent of every per-conn ctx), cancelled by Close; it is process-scoped by design, not a smuggled call ctx.
	rootCtx    context.Context
	rootCancel context.CancelFunc

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Transport accounting: the live mux writers (one per protocol >= 5
	// connection) plus counters carried over from retired connections, so
	// a stats snapshot covers the server's whole lifetime.
	muxMu               sync.Mutex
	muxes               map[*wire.MuxWriter]struct{}
	retiredCreditStalls uint64
	retiredFramesSent   uint64

	windowUpdates   uint64 // atomic: WINDOW_UPDATE grants sent
	redirectsIssued uint64 // atomic: NOT_OWNER answers sent
}

// ServerConfig configures a Server.
type ServerConfig struct {
	// Logger receives connection-level errors; nil discards them.
	Logger *log.Logger
	// Window is the initial per-stream send-credit window, in bytes, for
	// responses on protocol >= 5 connections (0 = wire.DefaultWindow).
	Window int
	// Owner, when set, is consulted for every single-key verb on a
	// protocol >= 5 connection: if it reports the fingerprint belongs to
	// another node, the server answers NOT_OWNER carrying that node's
	// identity instead of serving the request, and the client re-routes.
	// Nil means the server answers everything it is asked (pre-5
	// behaviour, and the right choice for single-node deployments).
	Owner func(fp fingerprint.Fingerprint) (ownerID, ownerAddr string, owned bool)
}

// NewServer creates a server for the given backend.
func NewServer(backend core.Backend, cfg ServerConfig) *Server {
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	rootCtx, rootCancel := context.WithCancel(context.Background())
	window := cfg.Window
	if window <= 0 {
		// Resolve the default here, not just inside the mux: the resolved
		// value is advertised to clients in the HelloAck so they can
		// coalesce consumption grants against it.
		window = wire.DefaultWindow
	}
	return &Server{
		backend:    backend,
		logger:     logger,
		window:     window,
		owner:      cfg.Owner,
		rootCtx:    rootCtx,
		rootCancel: rootCancel,
		conns:      make(map[net.Conn]struct{}),
		muxes:      make(map[*wire.MuxWriter]struct{}),
	}
}

// registerMux adds a live mux writer to the transport accounting set.
func (s *Server) registerMux(m *wire.MuxWriter) {
	s.muxMu.Lock()
	s.muxes[m] = struct{}{}
	s.muxMu.Unlock()
}

// retireMux folds a closed connection's final counters into the retired
// totals so they survive the connection.
func (s *Server) retireMux(m *wire.MuxWriter) {
	st := m.Stats()
	s.muxMu.Lock()
	delete(s.muxes, m)
	s.retiredCreditStalls += st.CreditStalls
	s.retiredFramesSent += st.FramesSent
	s.muxMu.Unlock()
}

// transportStats aggregates the mux layer across live and retired
// connections: gauges (streams open, bytes in flight) from live muxes
// only, counters from both.
func (s *Server) transportStats() core.TransportStats {
	ts := core.TransportStats{
		WindowUpdates:   atomic.LoadUint64(&s.windowUpdates),
		RedirectsIssued: atomic.LoadUint64(&s.redirectsIssued),
	}
	s.muxMu.Lock()
	ts.CreditStalls = s.retiredCreditStalls
	for m := range s.muxes {
		st := m.Stats()
		ts.StreamsOpen += uint64(st.StreamsOpen)
		ts.CreditStalls += st.CreditStalls
		ts.BytesInFlight += uint64(st.BytesQueued)
	}
	s.muxMu.Unlock()
	return ts
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts serving in the
// background. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("rpc: server is closed")
	}
	s.ln = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if tcp, ok := conn.(*net.TCPConn); ok {
			// Lookup responses are tiny; batching at the Nagle level only
			// adds latency the paper's batch mode already amortizes.
			_ = tcp.SetNoDelay(true)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// maxInflightPerConn bounds per-connection request goroutines so a client
// cannot exhaust server memory by pipelining unboundedly.
const maxInflightPerConn = 256

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	// connCtx parents every request on this connection: it dies with the
	// connection (peer gone — nobody is left to read the answers) and
	// with the server's root context (Close). Cancelled below, ahead of
	// reqWG.Wait.
	connCtx, connCancel := context.WithCancel(s.rootCtx)

	var (
		br      = bufio.NewReaderSize(conn, 64<<10)
		fw      = wire.NewFrameWriter(conn)
		version = wire.Version0 // until a Hello negotiates higher
		writeMu sync.Mutex
		reqWG   sync.WaitGroup
		sem     = make(chan struct{}, maxInflightPerConn)

		// mux is non-nil once a Hello negotiates protocol >= 5; from then
		// on every response leaves through it (the flusher owns the
		// socket's write side). Written only by this read loop; handler
		// goroutines read it under writeMu.
		mux *wire.MuxWriter

		// grantPend accumulates per-stream send credit owed to the client
		// for flushed requests, granted in one WINDOW_UPDATE once it
		// reaches grantEvery (a quarter of the client's advertised send
		// window). Both are set before mux and, like the onFlush hooks
		// that touch grantPend, only ever run on the mux flush goroutine —
		// no lock needed.
		grantEvery uint32
		grantPend  map[uint32]uint32

		// inflight maps request id -> cancel for CANCEL frames.
		inflightMu sync.Mutex
		inflight   = make(map[uint64]context.CancelFunc)
	)
	// Cancel the connection context BEFORE waiting for handlers: when the
	// peer goes away, nobody is left to read the answers, so in-flight
	// handlers must be unwound, not waited out (a deadline-less v0
	// request on a slow device would otherwise pin this goroutine, its
	// semaphore slot, and the conn indefinitely).
	defer func() {
		connCancel()
		reqWG.Wait()
		if mux != nil {
			// Unblock a flusher stuck mid-write to a gone peer before
			// waiting for it; the outer defer's conn.Close is then a no-op.
			conn.Close()
			mux.Close()
			s.retireMux(mux)
		}
	}()

	// respond writes one frame under the write mutex via vectored I/O —
	// header+payload leave in a single writev syscall with no intermediate
	// buffer — then releases the pooled payload buffer (nil for payloads
	// that are not pooled, e.g. Pong's empty one).
	respond := func(f wire.Frame, buf *[]byte, v int) {
		writeMu.Lock()
		err := fw.WriteFrame(f, v)
		writeMu.Unlock()
		wire.PutBuf(buf)
		if err != nil {
			s.logger.Printf("rpc: write to %s: %v", conn.RemoteAddr(), err)
		}
	}

	for {
		frame, body, err := wire.ReadFrameVInto(br, version)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logger.Printf("rpc: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		switch frame.Type {
		case wire.TypeHello:
			// Handled inline, before any other frame: the ack travels in
			// the version-0 layout and every later frame in the
			// negotiated one.
			theirs, err := wire.DecodeHello(frame.Payload)
			clientWin := wire.HelloWindow(frame.Payload)
			wire.PutBuf(body)
			if err != nil {
				respond(wire.Frame{Type: wire.TypeError, ID: frame.ID, Payload: wire.EncodeError(err.Error())}, nil, wire.Version0)
				continue
			}
			if mux != nil {
				// Renegotiating after the mux owns the write side would
				// interleave a raw HelloAck with the flusher's writev.
				s.logger.Printf("rpc: %s sent a second Hello on a multiplexed connection", conn.RemoteAddr())
				return
			}
			v := wire.MaxVersion
			if theirs < v {
				v = theirs
			}
			ackPayload := wire.EncodeHello(v)
			if v >= wire.Version5 {
				// Advertise our per-stream response window so the client
				// can coalesce its consumption grants.
				ackPayload = wire.AppendHelloWindow(make([]byte, 0, 8), v, uint32(s.window))
			}
			respond(wire.Frame{Type: wire.TypeHelloAck, ID: frame.ID, Payload: ackPayload}, nil, wire.Version0)
			if v >= wire.Version5 {
				// Coalesce the send-credit grants we return for flushed
				// requests: withhold until a quarter of the client's
				// advertised send window is pending per stream (0 — no
				// advertisement — grants after every response).
				grantEvery = clientWin / 4
				grantPend = make(map[uint32]uint32)
				m := wire.NewMuxWriter(conn, v, s.window)
				s.registerMux(m)
				writeMu.Lock()
				mux = m
				writeMu.Unlock()
			}
			version = v
			continue
		case wire.TypeWindowUpdate:
			// Credit grant from the client: it consumed response bytes on
			// this stream, so the stream's queued responses may flow again.
			n, derr := wire.DecodeWindowUpdate(frame.Payload)
			wire.PutBuf(body)
			if derr != nil || mux == nil {
				s.logger.Printf("rpc: bad window update from %s", conn.RemoteAddr())
				return
			}
			mux.Grant(frame.Stream, int(n))
			continue
		case wire.TypeCancel:
			// Also inline: a cancel queued behind the semaphore would
			// defeat its purpose. (When the semaphore is full the read
			// loop itself is blocked below, so cancels stall with it —
			// the per-request timeout still bounds those requests.)
			wire.PutBuf(body)
			inflightMu.Lock()
			cancel := inflight[frame.ID]
			inflightMu.Unlock()
			if cancel != nil {
				cancel()
			}
			continue
		}
		// Derive and REGISTER the request context here in the read loop,
		// before the handler goroutine is spawned: a CANCEL frame for
		// this id can arrive on the very next read, and registering
		// inside the goroutine would race it (the cancel would find
		// nothing and be lost).
		var (
			rctx    context.Context
			rcancel context.CancelFunc
		)
		if frame.Timeout != 0 {
			// Relative on the wire: immune to clock skew. A negative
			// budget (client sent an already-expired context) derives an
			// already-expired context here too.
			rctx, rcancel = context.WithTimeout(connCtx, frame.Timeout)
		} else {
			rctx, rcancel = context.WithCancel(connCtx)
		}
		inflightMu.Lock()
		inflight[frame.ID] = rcancel
		inflightMu.Unlock()

		sem <- struct{}{}
		reqWG.Add(1)
		go func(ctx context.Context, cancel context.CancelFunc, f wire.Frame, reqBody *[]byte, v int) {
			defer reqWG.Done()
			defer func() { <-sem }()
			defer func() {
				inflightMu.Lock()
				delete(inflight, f.ID)
				inflightMu.Unlock()
				cancel()
			}()

			// handle decodes the request payload before touching the
			// backend, so the request buffer can be released as soon as it
			// returns; the response payload rides in its own pooled buffer,
			// released after the write (by respond, or by the mux when the
			// coalesced flush completes).
			reqSize := len(f.Payload)
			resp, respBuf := s.handle(ctx, f, v)
			wire.PutBuf(reqBody)
			resp.Stream = f.Stream
			writeMu.Lock()
			m := mux
			writeMu.Unlock()
			if m == nil {
				respond(resp, respBuf, v)
				return
			}
			// Multiplexed path: the response queues on its request's
			// stream and the flusher interleaves it with other streams'
			// traffic, round-robin. Once its bytes reach the socket the
			// onFlush hook returns the REQUEST's size as send credit —
			// the client charged its own window to send the request, and
			// this grant is what reopens it.
			var onFlush func()
			if stream, credit := f.Stream, uint32(reqSize); stream != 0 && credit != 0 {
				onFlush = func() {
					// Flush-goroutine only: grantPend is unlocked by design.
					pend := grantPend[stream] + credit
					if pend < grantEvery {
						grantPend[stream] = pend
						return
					}
					delete(grantPend, stream)
					gb := wire.GetBuf(4)
					*gb = wire.AppendWindowUpdate((*gb)[:0], pend)
					gf := wire.Frame{Type: wire.TypeWindowUpdate, Stream: stream, Payload: *gb}
					if err := m.EnqueueControl(gf, gb); err == nil {
						atomic.AddUint64(&s.windowUpdates, 1)
					}
				}
			}
			if err := m.Enqueue(resp, respBuf, onFlush); err != nil {
				s.logger.Printf("rpc: write to %s: %v", conn.RemoteAddr(), err)
			}
		}(rctx, rcancel, frame, body, version)
	}
}

// handle executes one request frame under ctx and builds the response
// frame. version is the connection's negotiated protocol version, which
// selects the stats payload layout (old peers get the legacy one).
//
// The returned *[]byte is the pooled buffer the response payload lives in
// (nil when the payload is empty or not pooled); the caller releases it
// after the frame is written. f.Payload is not referenced after handle
// returns — every arm decodes it into owned values up front.
//
//shhc:returns-buf
func (s *Server) handle(ctx context.Context, f wire.Frame, version int) (wire.Frame, *[]byte) {
	// failCode builds an error response. On protocol >= 5 it carries a
	// compact code the client can dispatch on without string matching;
	// older peers get the legacy length-prefixed message.
	failCode := func(code wire.Code, err error) (wire.Frame, *[]byte) {
		buf := wire.GetBuf(0)
		if version >= wire.Version5 {
			*buf = wire.AppendErrorCoded((*buf)[:0], wire.ErrorPayload{Code: code, Msg: err.Error()})
		} else {
			*buf = wire.AppendError((*buf)[:0], err.Error())
		}
		return wire.Frame{Type: wire.TypeError, ID: f.ID, Payload: *buf}, buf
	}
	fail := func(err error) (wire.Frame, *[]byte) {
		code := wire.CodeInternal
		switch {
		case errors.Is(err, context.Canceled):
			code = wire.CodeCancelled
		case errors.Is(err, context.DeadlineExceeded):
			code = wire.CodeDeadline
		}
		return failCode(code, err)
	}
	badReq := func(err error) (wire.Frame, *[]byte) {
		return failCode(wire.CodeBadRequest, err)
	}
	// notOwner consults the ownership hook for single-key verbs: a
	// fingerprint the ring assigns elsewhere answers NOT_OWNER with the
	// true owner's identity, and the client re-dials it — one extra RTT
	// for a stale ring view instead of a wrong answer or a proxy hop.
	notOwner := func(fp fingerprint.Fingerprint) (wire.Frame, *[]byte, bool) {
		if s.owner == nil || version < wire.Version5 {
			return wire.Frame{}, nil, false
		}
		id, addr, owned := s.owner(fp)
		if owned {
			return wire.Frame{}, nil, false
		}
		atomic.AddUint64(&s.redirectsIssued, 1)
		buf := wire.GetBuf(0)
		*buf = wire.AppendErrorCoded((*buf)[:0], wire.ErrorPayload{
			Code:      wire.CodeNotOwner,
			Msg:       "fingerprint is owned by " + id,
			OwnerID:   id,
			OwnerAddr: addr,
		})
		return wire.Frame{Type: wire.TypeError, ID: f.ID, Payload: *buf}, buf, true
	}
	result := func(t wire.Type, r wire.ResultPayload) (wire.Frame, *[]byte) {
		buf := wire.GetBuf(0)
		*buf = wire.AppendResult((*buf)[:0], r)
		return wire.Frame{Type: t, ID: f.ID, Payload: *buf}, buf
	}
	batchResult := func(rs []core.LookupResult) (wire.Frame, *[]byte) {
		buf := wire.GetBuf(4 + len(rs)*10)
		b := (*buf)[:0]
		b = appendUint32(b, uint32(len(rs)))
		for _, r := range rs {
			b = wire.AppendResult(b, toWireResult(r))
		}
		*buf = b
		return wire.Frame{Type: wire.TypeBatchResult, ID: f.ID, Payload: b}, buf
	}
	// A request that arrives already expired (or whose connection is
	// tearing down) is not worth starting.
	if err := ctx.Err(); err != nil {
		return fail(err)
	}
	switch f.Type {
	case wire.TypePing:
		return wire.Frame{Type: wire.TypePong, ID: f.ID}, nil

	case wire.TypeLookup:
		fp, err := wire.DecodeFP(f.Payload)
		if err != nil {
			return badReq(err)
		}
		if resp, buf, redirected := notOwner(fp); redirected {
			return resp, buf
		}
		r, err := s.backend.Lookup(ctx, fp)
		if err != nil {
			return fail(err)
		}
		return result(wire.TypeResult, toWireResult(r))

	case wire.TypeLookupOrInsert:
		p, err := wire.DecodePair(f.Payload)
		if err != nil {
			return badReq(err)
		}
		if resp, buf, redirected := notOwner(p.FP); redirected {
			return resp, buf
		}
		r, err := s.backend.LookupOrInsert(ctx, p.FP, core.Value(p.Val))
		if err != nil {
			return fail(err)
		}
		return result(wire.TypeResult, toWireResult(r))

	case wire.TypeInsert:
		p, err := wire.DecodePair(f.Payload)
		if err != nil {
			return badReq(err)
		}
		if resp, buf, redirected := notOwner(p.FP); redirected {
			return resp, buf
		}
		if err := s.backend.Insert(ctx, p.FP, core.Value(p.Val)); err != nil {
			return fail(err)
		}
		return result(wire.TypeResult, wire.ResultPayload{})

	case wire.TypeBatch:
		pairs, err := decodeCorePairs(f.Payload)
		if err != nil {
			return badReq(err)
		}
		rs, err := s.backend.BatchLookupOrInsert(ctx, pairs)
		if err != nil {
			return fail(err)
		}
		return batchResult(rs)

	case wire.TypeRepair:
		// The replication backfill verb (protocol >= 4): same pair batch
		// as TypeBatch, same keep-existing semantics, but routed through
		// the backend's repair path so the node accounts it as replication
		// traffic. Backends without the repair path (e.g. a chained RPC
		// client to a pre-4 peer) fall back to a plain batch — the
		// presence semantics are identical.
		pairs, err := decodeCorePairs(f.Payload)
		if err != nil {
			return badReq(err)
		}
		var rs []core.LookupResult
		if ra, ok := s.backend.(core.RepairApplier); ok {
			rs, err = ra.ApplyRepair(ctx, pairs)
		} else {
			rs, err = s.backend.BatchLookupOrInsert(ctx, pairs)
		}
		if err != nil {
			return fail(err)
		}
		return batchResult(rs)

	case wire.TypeStats:
		st, err := s.backend.Stats(ctx)
		if err != nil {
			return fail(err)
		}
		// The transport layer belongs to the server, not the backend:
		// overlay its live aggregate here so remote stats readers see it.
		st.Transport = s.transportStats()
		buf := wire.GetBuf(0)
		*buf = wire.AppendStatsV((*buf)[:0], toWireStats(st), version)
		return wire.Frame{Type: wire.TypeStatsResult, ID: f.ID, Payload: *buf}, buf
	}
	return fail(fmt.Errorf("rpc: unsupported request type %v", f.Type))
}

// appendUint32 appends a big-endian uint32 (the batch-result count prefix).
func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// decodeCorePairs decodes a wire pair batch straight into core.Pair values,
// skipping the intermediate []wire.PairPayload copy DecodeBatch would cost.
func decodeCorePairs(payload []byte) ([]core.Pair, error) {
	wirePairs, err := wire.DecodeBatch(payload)
	if err != nil {
		return nil, err
	}
	pairs := make([]core.Pair, len(wirePairs))
	for i, p := range wirePairs {
		pairs[i] = core.Pair{FP: p.FP, Val: core.Value(p.Val)}
	}
	return pairs, nil
}

func toWireResult(r core.LookupResult) wire.ResultPayload {
	return wire.ResultPayload{Exists: r.Exists, Source: uint8(r.Source), Val: uint64(r.Value)}
}

func fromWireResult(r wire.ResultPayload) core.LookupResult {
	return core.LookupResult{Exists: r.Exists, Source: core.Source(r.Source), Value: core.Value(r.Val)}
}

func toWireSummary(s metrics.Summary) wire.SummaryPayload {
	return wire.SummaryPayload{
		Count:  uint64(s.Count),
		SumNS:  uint64(s.Sum),
		MinNS:  uint64(s.Min),
		MaxNS:  uint64(s.Max),
		MeanNS: uint64(s.Mean),
		P50NS:  uint64(s.P50),
		P90NS:  uint64(s.P90),
		P99NS:  uint64(s.P99),
	}
}

func fromWireSummary(p wire.SummaryPayload) metrics.Summary {
	return metrics.Summary{
		Count: int64(p.Count),
		Sum:   time.Duration(p.SumNS),
		Min:   time.Duration(p.MinNS),
		Max:   time.Duration(p.MaxNS),
		Mean:  time.Duration(p.MeanNS),
		P50:   time.Duration(p.P50NS),
		P90:   time.Duration(p.P90NS),
		P99:   time.Duration(p.P99NS),
	}
}

// rateToPPB / ppbToRate convert a probability in [0, 1] to and from the
// fixed-point parts-per-billion encoding the wire's Bloom counters use
// (floats never travel raw on this protocol).
func rateToPPB(r float64) uint64 {
	if r <= 0 {
		return 0
	}
	if r >= 1 {
		return 1_000_000_000
	}
	return uint64(r * 1e9)
}

func ppbToRate(p uint64) float64 { return float64(p) / 1e9 }

func boolToUint64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func toWireStats(st core.NodeStats) wire.StatsPayload {
	return wire.StatsPayload{
		ID:               string(st.ID),
		Lookups:          st.Lookups,
		Inserts:          st.Inserts,
		CacheHits:        st.CacheHits,
		BloomShort:       st.BloomShort,
		StoreHits:        st.StoreHits,
		StoreMisses:      st.StoreMisses,
		BloomFalse:       st.BloomFalse,
		Coalesced:        st.Coalesced,
		StoreEntries:     uint64(st.StoreEntries),
		CacheHitsLRU:     st.Cache.Hits,
		CacheMisses:      st.Cache.Misses,
		CacheEvicts:      st.Cache.Evictions,
		CacheLen:         uint64(st.Cache.Len),
		CacheCap:         uint64(st.Cache.Capacity),
		DestageQueue:     st.Destage.QueueDepth,
		DestageEntries:   st.Destage.Entries,
		DestagePages:     st.Destage.Pages,
		DestageWaves:     st.Destage.Waves,
		DestageCoalesced: st.Destage.Coalesced,
		DestageHits:      st.Destage.BufferHits,

		RecoveryJournalReplayed:  st.Recovery.JournalReplayed,
		RecoveryJournalTornBytes: st.Recovery.JournalTornBytes,
		RecoveryStoreRuns:        st.Recovery.Store.Runs,
		RecoveryStorePagesScan:   st.Recovery.Store.PagesScanned,
		RecoveryStoreTornPages:   st.Recovery.Store.TornPages,
		RecoveryStoreTailBytes:   st.Recovery.Store.TailBytes,
		RecoveryStoreLinks:       st.Recovery.Store.RepairedLinks,
		RecoveryStoreOrphans:     st.Recovery.Store.OrphanPages,
		RecoveryStoreSalvaged:    st.Recovery.Store.SalvagedEntries,

		ReplRepairBatches: st.Replica.RepairBatches,
		ReplRepairPairs:   st.Replica.RepairPairs,
		ReplRepairCreated: st.Replica.RepairCreated,

		TransportStreamsOpen:     st.Transport.StreamsOpen,
		TransportCreditStalls:    st.Transport.CreditStalls,
		TransportBytesInFlight:   st.Transport.BytesInFlight,
		TransportWindowUpdates:   st.Transport.WindowUpdates,
		TransportRedirectsIssued: st.Transport.RedirectsIssued,

		BloomEntries:   st.Bloom.Entries,
		BloomSizeBytes: st.Bloom.SizeBytes,
		BloomSlices:    uint64(st.Bloom.Slices),
		BloomFillPPB:   rateToPPB(st.Bloom.FillRatio),
		BloomFPRatePPB: rateToPPB(st.Bloom.EstimatedFPRate),
		BloomSaturated: boolToUint64(st.Bloom.Saturated),

		PhaseCache:       toWireSummary(st.Phases.Cache),
		PhaseBloom:       toWireSummary(st.Phases.Bloom),
		PhaseSSD:         toWireSummary(st.Phases.SSD),
		DestageWaveSizes: toWireSummary(st.Destage.WaveSizes),
	}
}

func fromWireStats(s wire.StatsPayload) core.NodeStats {
	st := core.NodeStats{
		ID:           ringNodeID(s.ID),
		Lookups:      s.Lookups,
		Inserts:      s.Inserts,
		CacheHits:    s.CacheHits,
		BloomShort:   s.BloomShort,
		StoreHits:    s.StoreHits,
		StoreMisses:  s.StoreMisses,
		BloomFalse:   s.BloomFalse,
		Coalesced:    s.Coalesced,
		StoreEntries: int(s.StoreEntries),
	}
	st.Cache.Hits = s.CacheHitsLRU
	st.Cache.Misses = s.CacheMisses
	st.Cache.Evictions = s.CacheEvicts
	st.Cache.Len = int(s.CacheLen)
	st.Cache.Capacity = int(s.CacheCap)
	st.Destage.QueueDepth = s.DestageQueue
	st.Destage.Entries = s.DestageEntries
	st.Destage.Pages = s.DestagePages
	st.Destage.Waves = s.DestageWaves
	st.Destage.Coalesced = s.DestageCoalesced
	st.Destage.BufferHits = s.DestageHits
	st.Recovery.JournalReplayed = s.RecoveryJournalReplayed
	st.Recovery.JournalTornBytes = s.RecoveryJournalTornBytes
	st.Recovery.Store.Runs = s.RecoveryStoreRuns
	st.Recovery.Store.PagesScanned = s.RecoveryStorePagesScan
	st.Recovery.Store.TornPages = s.RecoveryStoreTornPages
	st.Recovery.Store.TailBytes = s.RecoveryStoreTailBytes
	st.Recovery.Store.RepairedLinks = s.RecoveryStoreLinks
	st.Recovery.Store.OrphanPages = s.RecoveryStoreOrphans
	st.Recovery.Store.SalvagedEntries = s.RecoveryStoreSalvaged
	st.Replica.RepairBatches = s.ReplRepairBatches
	st.Replica.RepairPairs = s.ReplRepairPairs
	st.Replica.RepairCreated = s.ReplRepairCreated
	st.Transport.StreamsOpen = s.TransportStreamsOpen
	st.Transport.CreditStalls = s.TransportCreditStalls
	st.Transport.BytesInFlight = s.TransportBytesInFlight
	st.Transport.WindowUpdates = s.TransportWindowUpdates
	st.Transport.RedirectsIssued = s.TransportRedirectsIssued
	st.Bloom.Entries = s.BloomEntries
	st.Bloom.SizeBytes = s.BloomSizeBytes
	st.Bloom.Slices = uint32(s.BloomSlices)
	st.Bloom.FillRatio = ppbToRate(s.BloomFillPPB)
	st.Bloom.EstimatedFPRate = ppbToRate(s.BloomFPRatePPB)
	st.Bloom.Saturated = s.BloomSaturated != 0
	st.Phases.Cache = fromWireSummary(s.PhaseCache)
	st.Phases.Bloom = fromWireSummary(s.PhaseBloom)
	st.Phases.SSD = fromWireSummary(s.PhaseSSD)
	st.Destage.WaveSizes = fromWireSummary(s.DestageWaveSizes)
	return st
}

// Close stops accepting, cancels the root context (so in-flight request
// handlers unwind promptly), closes all connections, and waits for
// handlers. The wrapped backend is NOT closed; its owner closes it.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("rpc: server already closed")
	}
	s.closed = true
	s.rootCancel()
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}
