package rpc

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"shhc/internal/core"
	"shhc/internal/device"
	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
	"shhc/internal/wire"
)

// startSleepyNode serves a node whose store sleeps readBase per probe —
// a modeled slow device with real (wall-clock) latency.
func startSleepyNode(t *testing.T, id ring.NodeID, readBase time.Duration, cfg ClientConfig) (*core.Node, *Client) {
	t.Helper()
	dev := device.New(device.Model{Name: "sleepy", ReadBase: readBase, WriteBase: readBase}, device.Sleep)
	node, err := core.NewNode(core.NodeConfig{
		ID:           id,
		Store:        hashdb.NewMemStore(dev),
		CacheSize:    0,
		DisableBloom: true,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	srv := NewServer(node, ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	client, err := Dial(id, addr.String(), cfg)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		node.Close()
	})
	return node, client
}

// TestDeadlineBoundsSleepingRemoteLookup is the acceptance check: a
// context deadline on the client demonstrably bounds a remote lookup that
// is stuck behind a sleeping device, and the failure is
// context.DeadlineExceeded — not a generic wire error.
func TestDeadlineBoundsSleepingRemoteLookup(t *testing.T) {
	_, client := startSleepyNode(t, "sleepy", 300*time.Millisecond, ClientConfig{Timeout: 30 * time.Second})

	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.Lookup(ctx, fp(1))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadlined remote lookup = %v, want context.DeadlineExceeded", err)
	}
	if elapsed >= 300*time.Millisecond {
		t.Fatalf("deadlined lookup took %v — the 25ms deadline did not bound the 300ms device", elapsed)
	}
}

// TestDeadlineExpiredBeforeSendShortCircuits: a context already expired
// never touches the wire.
func TestDeadlineExpiredBeforeSendShortCircuits(t *testing.T) {
	_, client := startNode(t, "n1")
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := client.Lookup(ctx, fp(1)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-context lookup = %v, want context.DeadlineExceeded", err)
	}
}

// blockingBackend blocks Lookup until its context is done, recording that
// the server-side cancellation actually reached the handler.
type blockingBackend struct {
	core.Backend
	cancelled atomic.Int64
}

func (b *blockingBackend) Lookup(ctx context.Context, p fingerprint.Fingerprint) (core.LookupResult, error) {
	<-ctx.Done()
	b.cancelled.Add(1)
	return core.LookupResult{}, ctx.Err()
}

// TestCancelFrameStopsServerWork: cancelling the client context makes the
// client return immediately AND propagates a CANCEL frame that unblocks
// the server-side handler.
func TestCancelFrameStopsServerWork(t *testing.T) {
	node, err := core.NewNode(core.NodeConfig{ID: "n1", Store: hashdb.NewMemStore(nil)})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	bb := &blockingBackend{Backend: node}
	srv := NewServer(bb, ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	client, err := Dial("n1", addr.String(), ClientConfig{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() {
		client.Close()
		srv.Close()
		node.Close()
	}()
	if v := client.Version(); v < wire.Version1 {
		t.Fatalf("negotiated version %d, want >= 1", v)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := client.Lookup(ctx, fp(9))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the request reach the blocked handler
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled remote lookup = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled client call did not return")
	}
	// The CANCEL frame must unblock the server handler.
	deadline := time.Now().Add(2 * time.Second)
	for bb.cancelled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server handler never observed the cancellation")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDeadlineRidesWireToServer: the server derives its handler context
// from the frame's deadline — even with no client-side waiting involved,
// a request whose deadline lapses server-side answers with the context
// error. Uses a raw version-1 conn so the client-side select cannot be
// the one enforcing the deadline.
func TestDeadlineRidesWireToServer(t *testing.T) {
	node, err := core.NewNode(core.NodeConfig{ID: "n1", Store: hashdb.NewMemStore(nil)})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	bb := &blockingBackend{Backend: node}
	srv := NewServer(bb, ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer func() {
		srv.Close()
		node.Close()
	}()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	br := bufio.NewReader(conn)

	// Handshake.
	// Pin protocol 1: this test speaks raw v1 frames on the socket (the
	// deadline field is what it exercises), so it must not negotiate the
	// multiplexed v5 layout.
	if err := wire.WriteFrame(bw, wire.Frame{Type: wire.TypeHello, ID: 1, Payload: wire.EncodeHello(wire.Version1)}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	bw.Flush()
	ack, err := wire.ReadFrame(br)
	if err != nil || ack.Type != wire.TypeHelloAck {
		t.Fatalf("hello ack = %+v, %v", ack, err)
	}

	// A lookup with a 30ms budget; the blocked handler can only be
	// released by that server-side derived deadline.
	if err := wire.WriteFrameV(bw, wire.Frame{Type: wire.TypeLookup, ID: 2, Timeout: 30 * time.Millisecond, Payload: wire.EncodeFP(fp(3))}, wire.Version1); err != nil {
		t.Fatalf("lookup frame: %v", err)
	}
	bw.Flush()
	resp, err := wire.ReadFrameV(br, wire.Version1)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	if resp.Type != wire.TypeError {
		t.Fatalf("response type = %v, want error", resp.Type)
	}
	msg, err := wire.DecodeError(resp.Payload)
	if err != nil {
		t.Fatalf("decode error payload: %v", err)
	}
	if want := context.DeadlineExceeded.Error(); !strings.Contains(msg, want) {
		t.Fatalf("server error %q does not carry %q", msg, want)
	}
	if bb.cancelled.Load() != 1 {
		t.Fatalf("handler cancelled %d times, want 1", bb.cancelled.Load())
	}
}

// TestDeadlineErrorMapsAcrossWire: a ServerError carrying the canonical
// deadline string unwraps to context.DeadlineExceeded on the client.
func TestDeadlineErrorMapsAcrossWire(t *testing.T) {
	err := newServerError("core: node n1: lookup: context deadline exceeded")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mapped server error %v does not unwrap to DeadlineExceeded", err)
	}
	err = newServerError("context canceled")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mapped server error %v does not unwrap to Canceled", err)
	}
	err = newServerError("disk on fire")
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("generic server error %v wrongly unwraps to a context error", err)
	}
}

// TestCancelVersion0PeerInterop: a version-0 peer — speaking the original
// frame layout with no Hello — still works against the new server, and
// the new client falls back to version 0 against a server that rejects
// Hello the way the old implementation did.
func TestCancelVersion0PeerInterop(t *testing.T) {
	// Old client, new server: raw v0 frames straight onto the socket.
	node, client := startNode(t, "n1")
	addrClient, err := net.Dial("tcp", client.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer addrClient.Close()
	bw := bufio.NewWriter(addrClient)
	br := bufio.NewReader(addrClient)
	if err := wire.WriteFrame(bw, wire.Frame{Type: wire.TypeLookupOrInsert, ID: 7, Payload: wire.EncodePair(wire.PairPayload{FP: fp(77), Val: 5})}); err != nil {
		t.Fatalf("v0 frame: %v", err)
	}
	bw.Flush()
	resp, err := wire.ReadFrame(br)
	if err != nil {
		t.Fatalf("v0 read: %v", err)
	}
	if resp.Type != wire.TypeResult || resp.ID != 7 {
		t.Fatalf("v0 response = %+v, want result id=7", resp)
	}
	r, err := wire.DecodeResult(resp.Payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if r.Exists {
		t.Fatal("first insert of fp(77) reported duplicate")
	}
	if _, err := node.Lookup(context.Background(), fp(77)); err != nil {
		t.Fatalf("node lookup after v0 insert: %v", err)
	}

	// New client, old server: a fake listener that answers Hello with
	// TypeError (exactly what the old handle() did for unknown types),
	// then serves one v0 ping.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		cbr := bufio.NewReader(conn)
		cbw := bufio.NewWriter(conn)
		for {
			f, err := wire.ReadFrame(cbr)
			if err != nil {
				return
			}
			var out wire.Frame
			switch f.Type {
			case wire.TypePing:
				out = wire.Frame{Type: wire.TypePong, ID: f.ID}
			default:
				out = wire.Frame{Type: wire.TypeError, ID: f.ID, Payload: wire.EncodeError("rpc: unsupported request type " + f.Type.String())}
			}
			if err := wire.WriteFrame(cbw, out); err != nil {
				return
			}
			cbw.Flush()
		}
	}()
	oldPeer, err := Dial("old", ln.Addr().String(), ClientConfig{Conns: 1, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("Dial old peer: %v", err)
	}
	defer oldPeer.Close()
	if v := oldPeer.Version(); v != wire.Version0 {
		t.Fatalf("negotiated version with old peer = %d, want 0", v)
	}
	if err := oldPeer.Ping(context.Background()); err != nil {
		t.Fatalf("Ping old peer: %v", err)
	}
}
