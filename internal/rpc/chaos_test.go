package rpc

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shhc/internal/core"
	"shhc/internal/hashdb"
)

// TestServerDeathMidFlight kills the server while many requests are in
// flight: every outstanding call must return an error (not hang), and the
// client must be reusable once a server is back.
func TestServerDeathMidFlight(t *testing.T) {
	node, err := core.NewNode(core.NodeConfig{
		ID:            "chaos",
		Store:         hashdb.NewMemStore(nil),
		CacheSize:     256,
		BloomExpected: 1 << 16,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer node.Close()

	srv := NewServer(node, ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	client, err := Dial("chaos", addr.String(), ClientConfig{Conns: 2, Timeout: 3 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	var (
		wg       sync.WaitGroup
		returned atomic.Int64
	)
	const inflight = 64
	start := make(chan struct{})
	for g := 0; g < inflight; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 100; i++ {
				_, err := client.LookupOrInsert(context.Background(), fp(uint64(g*1000+i)), 1)
				if err != nil {
					returned.Add(1)
					return
				}
			}
			returned.Add(1)
		}(g)
	}
	close(start)
	time.Sleep(5 * time.Millisecond) // let traffic build
	srv.Close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d/%d goroutines returned; calls hung after server death", returned.Load(), inflight)
	}

	// Bring a server back on the same port; the pool must recover.
	srv2 := NewServer(node, ServerConfig{})
	if _, err := srv2.Listen(addr.String()); err != nil {
		t.Fatalf("relisten: %v", err)
	}
	defer srv2.Close()
	var pingErr error
	for attempt := 0; attempt < 10; attempt++ {
		if pingErr = client.Ping(context.Background()); pingErr == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if pingErr != nil {
		t.Fatalf("client did not recover: %v", pingErr)
	}
}

// TestPipelinedResponsesInterleave verifies a slow batch does not stall a
// later fast request on the same connection pool.
func TestPipelinedResponsesInterleave(t *testing.T) {
	node, err := core.NewNode(core.NodeConfig{
		ID:            "pipeline",
		Store:         hashdb.NewMemStore(nil),
		CacheSize:     16,
		BloomExpected: 1 << 20,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer node.Close()
	srv := NewServer(node, ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	client, err := Dial("pipeline", addr.String(), ClientConfig{Conns: 1, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	// Launch a large batch (slow) and immediately a ping (fast).
	bigDone := make(chan error, 1)
	go func() {
		pairs := make([]core.Pair, 100000)
		for i := range pairs {
			pairs[i] = core.Pair{FP: fp(uint64(i)), Val: 1}
		}
		_, err := client.BatchLookupOrInsert(context.Background(), pairs)
		bigDone <- err
	}()
	time.Sleep(time.Millisecond)

	pingStart := time.Now()
	if err := client.Ping(context.Background()); err != nil {
		t.Fatalf("Ping during batch: %v", err)
	}
	pingLatency := time.Since(pingStart)

	if err := <-bigDone; err != nil {
		t.Fatalf("batch: %v", err)
	}
	// The ping must not have waited for the entire 100k batch. Allow
	// generous slack for CI noise; the regression mode is seconds.
	if pingLatency > 2*time.Second {
		t.Fatalf("ping latency %v; pipelining is head-of-line blocked", pingLatency)
	}
}
