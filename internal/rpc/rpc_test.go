package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"shhc/internal/core"
	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

func fp(i uint64) fingerprint.Fingerprint { return fingerprint.FromUint64(i) }

// startNode spins up a node + server and returns a connected client.
func startNode(t *testing.T, id ring.NodeID) (*core.Node, *Client) {
	t.Helper()
	node, err := core.NewNode(core.NodeConfig{
		ID:            id,
		Store:         hashdb.NewMemStore(nil),
		CacheSize:     256,
		BloomExpected: 100000,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	srv := NewServer(node, ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	client, err := Dial(id, addr.String(), ClientConfig{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		node.Close()
	})
	return node, client
}

func TestPing(t *testing.T) {
	_, client := startNode(t, "n1")
	if err := client.Ping(context.Background()); err != nil {
		t.Fatalf("Ping: %v", err)
	}
}

func TestRemoteLookupOrInsert(t *testing.T) {
	_, client := startNode(t, "n1")

	r, err := client.LookupOrInsert(context.Background(), fp(1), 11)
	if err != nil {
		t.Fatalf("LookupOrInsert: %v", err)
	}
	if r.Exists {
		t.Fatal("fresh fingerprint reported existing")
	}

	r, err = client.LookupOrInsert(context.Background(), fp(1), 0)
	if err != nil {
		t.Fatalf("LookupOrInsert: %v", err)
	}
	if !r.Exists || r.Value != 11 {
		t.Fatalf("duplicate = %+v, want exists value 11", r)
	}
	if r.Source != core.SourceCache {
		t.Fatalf("source = %v, want cache", r.Source)
	}
}

func TestRemoteReadOnlyLookupAndInsert(t *testing.T) {
	_, client := startNode(t, "n1")
	r, err := client.Lookup(context.Background(), fp(5))
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if r.Exists {
		t.Fatal("absent fingerprint reported existing")
	}
	if err := client.Insert(context.Background(), fp(5), 50); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	r, _ = client.Lookup(context.Background(), fp(5))
	if !r.Exists || r.Value != 50 {
		t.Fatalf("after Insert: %+v, want exists 50", r)
	}
}

func TestRemoteBatch(t *testing.T) {
	_, client := startNode(t, "n1")
	pairs := make([]core.Pair, 300)
	for i := range pairs {
		pairs[i] = core.Pair{FP: fp(uint64(i % 100)), Val: core.Value(i % 100)}
	}
	rs, err := client.BatchLookupOrInsert(context.Background(), pairs)
	if err != nil {
		t.Fatalf("BatchLookupOrInsert: %v", err)
	}
	if len(rs) != len(pairs) {
		t.Fatalf("got %d results, want %d", len(rs), len(pairs))
	}
	for i, r := range rs {
		wantExists := i >= 100
		if r.Exists != wantExists {
			t.Fatalf("result[%d].Exists = %v, want %v", i, r.Exists, wantExists)
		}
	}
}

func TestRemoteStats(t *testing.T) {
	_, client := startNode(t, "stats-node")
	client.LookupOrInsert(context.Background(), fp(1), 1)
	client.LookupOrInsert(context.Background(), fp(1), 1)

	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.ID != "stats-node" {
		t.Fatalf("ID = %q, want stats-node", st.ID)
	}
	if st.Lookups != 2 || st.Inserts != 1 || st.StoreEntries != 1 {
		t.Fatalf("stats = %+v, want 2 lookups / 1 insert / 1 entry", st)
	}
	if st.CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1", st.CacheHits)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, client := startNode(t, "n1")
	const goroutines, each = 16, 200

	var wg sync.WaitGroup
	news := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r, err := client.LookupOrInsert(context.Background(), fp(uint64(i)), core.Value(i))
				if err != nil {
					t.Errorf("LookupOrInsert: %v", err)
					return
				}
				if !r.Exists {
					news[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range news {
		total += n
	}
	if total != each {
		t.Fatalf("total new fingerprints = %d, want %d (each unique seen once)", total, each)
	}
}

func TestClusterOverRPC(t *testing.T) {
	// Full distributed assembly: a core.Cluster routing to 3 remote nodes
	// over real TCP connections.
	backends := make([]core.Backend, 3)
	for i := range backends {
		_, client := startNode(t, ring.NodeID(fmt.Sprintf("remote-%d", i)))
		backends[i] = client
	}
	cluster, err := core.NewCluster(core.ClusterConfig{}, backends...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	// Cluster.Close would close the clients; they are cleaned up by
	// startNode, so detach instead of double-closing.

	const n = 1000
	pairs := make([]core.Pair, n)
	for i := range pairs {
		pairs[i] = core.Pair{FP: fp(uint64(i)), Val: core.Value(i)}
	}
	rs, err := cluster.BatchLookupOrInsert(context.Background(), pairs)
	if err != nil {
		t.Fatalf("BatchLookupOrInsert: %v", err)
	}
	for i, r := range rs {
		if r.Exists {
			t.Fatalf("fresh fingerprint %d reported existing", i)
		}
	}
	rs, err = cluster.BatchLookupOrInsert(context.Background(), pairs)
	if err != nil {
		t.Fatalf("second batch: %v", err)
	}
	for i, r := range rs {
		if !r.Exists || r.Value != core.Value(i) {
			t.Fatalf("duplicate %d = %+v", i, r)
		}
	}

	// Entries spread across all nodes.
	stats, err := cluster.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	for _, st := range stats {
		if st.StoreEntries == 0 {
			t.Fatalf("node %s holds no entries; routing is degenerate", st.ID)
		}
	}
}

func TestServerSurvivesGarbageConnection(t *testing.T) {
	node, err := core.NewNode(core.NodeConfig{ID: "g", Store: hashdb.NewMemStore(nil), CacheSize: 8})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer node.Close()
	srv := NewServer(node, ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	// Throw garbage at the server.
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	conn.Write([]byte("GET / HTTP/1.1\r\n\r\nnot the shhc protocol at all"))
	conn.Close()

	// Server must still answer a well-formed client.
	client, err := Dial("g", addr.String(), ClientConfig{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	if err := client.Ping(context.Background()); err != nil {
		t.Fatalf("Ping after garbage: %v", err)
	}
}

func TestClientReconnectsAfterServerRestart(t *testing.T) {
	node, err := core.NewNode(core.NodeConfig{ID: "r", Store: hashdb.NewMemStore(nil), CacheSize: 8})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer node.Close()

	srv := NewServer(node, ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	client, err := Dial("r", addr.String(), ClientConfig{Conns: 1, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	if err := client.Ping(context.Background()); err != nil {
		t.Fatalf("Ping: %v", err)
	}

	// Restart the server on the same port.
	srv.Close()
	srv2 := NewServer(node, ServerConfig{})
	if _, err := srv2.Listen(addr.String()); err != nil {
		t.Fatalf("relisten: %v", err)
	}
	defer srv2.Close()

	// First call may fail as the dead conn is detected; the pool must
	// redial transparently within a few attempts.
	var pingErr error
	for attempt := 0; attempt < 5; attempt++ {
		if pingErr = client.Ping(context.Background()); pingErr == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if pingErr != nil {
		t.Fatalf("client did not recover after server restart: %v", pingErr)
	}
}

func TestClientClosedErrors(t *testing.T) {
	_, client := startNode(t, "n1")
	client.Close()
	if _, err := client.Lookup(context.Background(), fp(1)); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Lookup after close = %v, want ErrClientClosed", err)
	}
	if err := client.Close(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("double Close = %v, want ErrClientClosed", err)
	}
}

func TestServerErrorPropagation(t *testing.T) {
	// A closed node makes the server return TypeError frames.
	node, err := core.NewNode(core.NodeConfig{ID: "dead", Store: hashdb.NewMemStore(nil), CacheSize: 8})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	srv := NewServer(node, ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	client, err := Dial("dead", addr.String(), ClientConfig{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	node.Close()
	_, err = client.LookupOrInsert(context.Background(), fp(1), 1)
	var serverErr *ServerError
	if !errors.As(err, &serverErr) {
		t.Fatalf("err = %v, want *ServerError", err)
	}
}
