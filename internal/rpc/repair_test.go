package rpc

import (
	"bufio"
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"shhc/internal/core"
	"shhc/internal/wire"
)

// TestRepairVerbRoundTrip drives the REPAIR verb end to end: the remote
// node applies the batch with lookup-or-insert semantics, accounts it in
// the replication stats block, and those counters survive the version-4
// stats payload back to the client.
func TestRepairVerbRoundTrip(t *testing.T) {
	node, client := startNode(t, "n1")
	if v := client.Version(); v < wire.Version4 {
		t.Fatalf("negotiated version = %d, want >= %d", v, wire.Version4)
	}

	pairs := []core.Pair{
		{FP: fp(1), Val: 11},
		{FP: fp(2), Val: 22},
		{FP: fp(3), Val: 33},
	}
	rs, err := client.ApplyRepair(context.Background(), pairs)
	if err != nil {
		t.Fatalf("ApplyRepair: %v", err)
	}
	for i, r := range rs {
		if r.Exists {
			t.Fatalf("fresh repair pair %d reported existing", i)
		}
	}
	// A second wave is pure confirmation: nothing new is created, and the
	// values already present win (keep-existing semantics).
	rs, err = client.ApplyRepair(context.Background(), []core.Pair{{FP: fp(1), Val: 99}})
	if err != nil {
		t.Fatalf("ApplyRepair again: %v", err)
	}
	if !rs[0].Exists || rs[0].Value != 11 {
		t.Fatalf("repeat repair = %+v, want exists value 11", rs[0])
	}

	st, err := node.Stats(context.Background())
	if err != nil {
		t.Fatalf("node Stats: %v", err)
	}
	if st.Replica.RepairBatches != 2 || st.Replica.RepairPairs != 4 || st.Replica.RepairCreated != 3 {
		t.Fatalf("node replica stats = %+v, want 2 batches / 4 pairs / 3 created", st.Replica)
	}
	remote, err := client.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if remote.Replica != st.Replica {
		t.Fatalf("replica stats over the wire = %+v, want %+v", remote.Replica, st.Replica)
	}
}

// fakeVersionedServer is a hand-rolled peer pinned at an old protocol
// version. It negotiates (or, for version 0, rejects) the Hello, then
// answers batch frames with all-new results and anything else with an
// error — exactly the surface an old node exposes to repair traffic. It
// records every request type it sees.
func fakeVersionedServer(t *testing.T, version int) (addr string, sawType func() []wire.Type) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })

	var mu sync.Mutex
	var seen []wire.Type
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				br := bufio.NewReader(conn)
				bw := bufio.NewWriter(conn)
				// Handshake frames always use the version-0 layout.
				f, err := wire.ReadFrame(br)
				if err != nil {
					return
				}
				if f.Type != wire.TypeHello {
					return
				}
				if version == wire.Version0 {
					// The pre-handshake implementation rejected the
					// unknown Hello type with an error frame.
					wire.WriteFrame(bw, wire.Frame{Type: wire.TypeError, ID: f.ID, Payload: wire.EncodeError("rpc: unsupported request type")})
				} else {
					wire.WriteFrame(bw, wire.Frame{Type: wire.TypeHelloAck, ID: f.ID, Payload: wire.EncodeHello(version)})
				}
				bw.Flush()
				for {
					f, err := wire.ReadFrameV(br, version)
					if err != nil {
						return
					}
					mu.Lock()
					seen = append(seen, f.Type)
					mu.Unlock()
					var out wire.Frame
					switch f.Type {
					case wire.TypeBatch:
						pairs, err := wire.DecodeBatch(f.Payload)
						if err != nil {
							out = wire.Frame{Type: wire.TypeError, ID: f.ID, Payload: wire.EncodeError(err.Error())}
							break
						}
						rs := make([]wire.ResultPayload, len(pairs))
						out = wire.Frame{Type: wire.TypeBatchResult, ID: f.ID, Payload: wire.EncodeBatchResult(rs)}
					default:
						out = wire.Frame{Type: wire.TypeError, ID: f.ID, Payload: wire.EncodeError("rpc: unsupported request type " + f.Type.String())}
					}
					if err := wire.WriteFrameV(bw, out, version); err != nil {
						return
					}
					bw.Flush()
				}
			}()
		}
	}()
	return ln.Addr().String(), func() []wire.Type {
		mu.Lock()
		defer mu.Unlock()
		return append([]wire.Type(nil), seen...)
	}
}

// TestRepairFallsBackToBatchOnOldPeers: against every pre-4 protocol
// version the client must deliver the repair as a plain BATCH frame —
// identical semantics, just not accounted as repair traffic — and never
// put a REPAIR frame on the wire.
func TestRepairFallsBackToBatchOnOldPeers(t *testing.T) {
	for _, version := range []int{wire.Version0, wire.Version1, wire.Version2, wire.Version3} {
		addr, sawType := fakeVersionedServer(t, version)
		client, err := Dial("old", addr, ClientConfig{Conns: 1, Timeout: 2 * time.Second})
		if err != nil {
			t.Fatalf("v%d: Dial: %v", version, err)
		}
		if got := client.Version(); got != version {
			t.Fatalf("negotiated version = %d, want %d", got, version)
		}
		rs, err := client.ApplyRepair(context.Background(), []core.Pair{{FP: fp(1), Val: 1}, {FP: fp(2), Val: 2}})
		if err != nil {
			t.Fatalf("v%d: ApplyRepair: %v", version, err)
		}
		if len(rs) != 2 {
			t.Fatalf("v%d: got %d results, want 2", version, len(rs))
		}
		for _, typ := range sawType() {
			if typ == wire.TypeRepair {
				t.Fatalf("v%d: REPAIR frame sent to a pre-4 peer", version)
			}
		}
		saw := sawType()
		if len(saw) == 0 || saw[len(saw)-1] != wire.TypeBatch {
			t.Fatalf("v%d: request types %v, want trailing BATCH", version, saw)
		}
		client.Close()
	}
}

// TestStatsVersionSkew negotiates each pre-4 version against the real
// server and checks the stats payload comes back in that version's
// layout — decodable, with the replication counters absent (zero) on
// layouts that predate them.
func TestStatsVersionSkew(t *testing.T) {
	node, client := startNode(t, "skew")
	// Put something in the replication counters so a leak into an old
	// layout would be visible.
	if _, err := node.ApplyRepair(context.Background(), []core.Pair{{FP: fp(9), Val: 9}}); err != nil {
		t.Fatalf("ApplyRepair: %v", err)
	}

	for _, version := range []int{wire.Version1, wire.Version2, wire.Version3} {
		conn, err := net.Dial("tcp", client.Addr())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		bw := bufio.NewWriter(conn)
		br := bufio.NewReader(conn)
		if err := wire.WriteFrame(bw, wire.Frame{Type: wire.TypeHello, ID: 1, Payload: wire.EncodeHello(version)}); err != nil {
			t.Fatalf("hello: %v", err)
		}
		bw.Flush()
		ack, err := wire.ReadFrame(br)
		if err != nil || ack.Type != wire.TypeHelloAck {
			t.Fatalf("hello ack = %+v, %v", ack, err)
		}
		if v, _ := wire.DecodeHello(ack.Payload); v != version {
			t.Fatalf("server negotiated %d, want %d", v, version)
		}
		if err := wire.WriteFrameV(bw, wire.Frame{Type: wire.TypeStats, ID: 2}, version); err != nil {
			t.Fatalf("stats req: %v", err)
		}
		bw.Flush()
		resp, err := wire.ReadFrameV(br, version)
		if err != nil {
			t.Fatalf("v%d stats read: %v", version, err)
		}
		if resp.Type != wire.TypeStatsResult {
			t.Fatalf("v%d stats response = %v", version, resp.Type)
		}
		s, err := wire.DecodeStats(resp.Payload)
		if err != nil {
			t.Fatalf("v%d stats decode: %v", version, err)
		}
		if s.ReplRepairBatches != 0 || s.ReplRepairPairs != 0 || s.ReplRepairCreated != 0 {
			t.Fatalf("v%d layout carried replication counters: %+v", version, s)
		}
		conn.Close()
	}

	// The v4 connection does carry them.
	remote, err := client.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if remote.Replica.RepairBatches != 1 || remote.Replica.RepairPairs != 1 {
		t.Fatalf("v4 replica stats = %+v, want 1 batch / 1 pair", remote.Replica)
	}
}
