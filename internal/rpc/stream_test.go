package rpc

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shhc/internal/core"
	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/wire"
)

// TestMuxStreamInterleavingStormRPC hammers one multiplexed connection
// with many stream handles doing a mix of synchronous single-key calls
// and pipelined batches, all concurrently. Run under -race in CI, it is
// the end-to-end proof that per-stream credit accounting, the coalesced
// flusher, and response demultiplexing hold up under interleaving.
func TestMuxStreamInterleavingStormRPC(t *testing.T) {
	node, err := core.NewNode(core.NodeConfig{ID: "storm", Store: hashdb.NewMemStore(nil), CacheSize: 1024})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	srv := NewServer(node, ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	// One TCP connection: every stream below shares it.
	client, err := Dial("storm", addr.String(), ClientConfig{Conns: 1, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() {
		client.Close()
		srv.Close()
		node.Close()
	}()
	if v := client.Version(); v < wire.Version5 {
		t.Fatalf("negotiated version %d, want >= 5", v)
	}

	const (
		streams = 24
		rounds  = 30
	)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := client.OpenStream()
			base := uint64(i) << 32
			for r := 0; r < rounds; r++ {
				// Synchronous single-key op: value is derived from the
				// key, so any cross-stream response mixup is detected.
				want := core.Value(base + uint64(r) + 1)
				res, err := st.LookupOrInsert(ctx, fp(base+uint64(r)), want)
				if err != nil {
					errs <- fmt.Errorf("stream %d round %d: %v", i, r, err)
					return
				}
				if res.Exists {
					errs <- fmt.Errorf("stream %d round %d: fresh key reported duplicate", i, r)
					return
				}
				// Pipelined batch on the same stream, collected
				// out-of-order with the single-key traffic.
				pairs := make([]core.Pair, 8)
				for j := range pairs {
					pairs[j] = core.Pair{FP: fp(base + uint64(r)<<8 + uint64(j) + 1<<20), Val: want}
				}
				bc := st.GoBatchLookupOrInsert(ctx, pairs)
				if _, err := bc.Results(); err != nil {
					errs <- fmt.Errorf("stream %d round %d batch: %v", i, r, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The storm ran on real streams: the server's transport gauges must
	// have seen them.
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Transport.StreamsOpen == 0 {
		t.Error("server reports zero open streams after a multiplexed storm")
	}
}

// TestStreamVersionSkewV4Client pins the legacy path: a client capped at
// protocol 4 against the current server negotiates 4, speaks the
// unmultiplexed layout (no stream ids, no credit), and still gets every
// verb — with the stats reply carrying no transport counters, because the
// version-4 stats layout predates them.
func TestStreamVersionSkewV4Client(t *testing.T) {
	node, err := core.NewNode(core.NodeConfig{ID: "skew", Store: hashdb.NewMemStore(nil), CacheSize: 64})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	srv := NewServer(node, ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	client, err := Dial("skew", addr.String(), ClientConfig{Conns: 1, MaxVersion: wire.Version4, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() {
		client.Close()
		srv.Close()
		node.Close()
	}()
	if v := client.Version(); v != wire.Version4 {
		t.Fatalf("negotiated version %d, want exactly 4", v)
	}

	ctx := context.Background()
	if res, err := client.LookupOrInsert(ctx, fp(1), 7); err != nil || res.Exists {
		t.Fatalf("v4 LookupOrInsert = %+v, %v", res, err)
	}
	if res, err := client.Lookup(ctx, fp(1)); err != nil || !res.Exists || res.Value != 7 {
		t.Fatalf("v4 Lookup = %+v, %v", res, err)
	}
	if _, err := client.BatchLookupOrInsert(ctx, []core.Pair{{FP: fp(2), Val: 9}}); err != nil {
		t.Fatalf("v4 batch: %v", err)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatalf("v4 Stats: %v", err)
	}
	if st.Transport != (core.TransportStats{}) {
		t.Fatalf("v4 stats reply carries transport counters %+v — the v4 layout has no room for them", st.Transport)
	}

	// Stream handles still work over the legacy path (the stream id is
	// simply never serialized below protocol 5).
	s := client.OpenStream()
	if res, err := s.Lookup(ctx, fp(1)); err != nil || res.Value != 7 {
		t.Fatalf("v4 stream-handle lookup = %+v, %v", res, err)
	}
}

// TestStreamVersionSkewV4Server pins the other direction: the current
// client against a version-4 peer (simulated by fakeVersionedServer)
// downgrades cleanly and never emits protocol-5 frame types on the wire.
func TestStreamVersionSkewV4Server(t *testing.T) {
	addr, sawType := fakeVersionedServer(t, wire.Version4)
	client, err := Dial("old", addr, ClientConfig{Conns: 1, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	if v := client.Version(); v != wire.Version4 {
		t.Fatalf("negotiated version %d with v4 peer, want 4", v)
	}
	if _, err := client.BatchLookupOrInsert(context.Background(), []core.Pair{{FP: fp(3), Val: 1}}); err != nil {
		t.Fatalf("batch against v4 peer: %v", err)
	}
	// Stream handles degrade to the shared pipeline: still no v5 frames.
	if _, err := client.OpenStream().BatchLookupOrInsert(context.Background(), []core.Pair{{FP: fp(4), Val: 1}}); err != nil {
		t.Fatalf("stream batch against v4 peer: %v", err)
	}
	for _, typ := range sawType() {
		if typ == wire.TypeWindowUpdate {
			t.Fatal("client sent WINDOW_UPDATE to a version-4 peer")
		}
	}
}

// TestStreamHandshakeWindowAdvertisement pins the extended hello: a
// protocol-5 handshake carries the server's per-stream response window in
// the HelloAck (so the client can coalesce consumption grants), while a
// version-4 handshake keeps the original 4-byte payload.
func TestStreamHandshakeWindowAdvertisement(t *testing.T) {
	node, err := core.NewNode(core.NodeConfig{ID: "hello", Store: hashdb.NewMemStore(nil)})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	srv := NewServer(node, ServerConfig{Window: 128 << 10})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer func() {
		srv.Close()
		node.Close()
	}()

	ack := func(hello []byte) wire.Frame {
		t.Helper()
		conn, err := net.Dial("tcp", addr.String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer conn.Close()
		bw := bufio.NewWriter(conn)
		if err := wire.WriteFrame(bw, wire.Frame{Type: wire.TypeHello, ID: 1, Payload: hello}); err != nil {
			t.Fatalf("hello: %v", err)
		}
		bw.Flush()
		resp, err := wire.ReadFrame(bufio.NewReader(conn))
		if err != nil || resp.Type != wire.TypeHelloAck {
			t.Fatalf("hello ack = %+v, %v", resp, err)
		}
		return resp
	}

	resp := ack(wire.AppendHelloWindow(nil, wire.Version5, 64<<10))
	if got := wire.HelloWindow(resp.Payload); got != 128<<10 {
		t.Fatalf("v5 HelloAck advertises window %d, want the server's configured %d", got, 128<<10)
	}
	resp = ack(wire.EncodeHello(wire.Version4))
	if len(resp.Payload) != 4 {
		t.Fatalf("v4 HelloAck payload is %d bytes, want the original 4", len(resp.Payload))
	}
}

// countingBackend counts single-key lookups that actually reach the
// backend — a NOT_OWNER answer must short-circuit before this.
type countingBackend struct {
	core.Backend
	lookups atomic.Int64
}

func (b *countingBackend) Lookup(ctx context.Context, p fingerprint.Fingerprint) (core.LookupResult, error) {
	b.lookups.Add(1)
	return b.Backend.Lookup(ctx, p)
}

func (b *countingBackend) LookupOrInsert(ctx context.Context, p fingerprint.Fingerprint, v core.Value) (core.LookupResult, error) {
	b.lookups.Add(1)
	return b.Backend.LookupOrInsert(ctx, p, v)
}

// TestNotOwnerRedirectOneHop pins the redirect loop end to end: a client
// holding a stale ring dials the wrong node, gets a typed NOT_OWNER
// answer carrying the true owner's identity, re-issues the request there
// transparently, and the wrong node's backend never runs the verb.
func TestNotOwnerRedirectOneHop(t *testing.T) {
	// The true owner.
	ownerNode, err := core.NewNode(core.NodeConfig{ID: "owner", Store: hashdb.NewMemStore(nil), CacheSize: 64})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	ownerSrv := NewServer(ownerNode, ServerConfig{})
	ownerAddr, err := ownerSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen owner: %v", err)
	}

	// The wrong node: its Owner hook disclaims every fingerprint.
	wrongNode, err := core.NewNode(core.NodeConfig{ID: "wrong", Store: hashdb.NewMemStore(nil), CacheSize: 64})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	wrongBackend := &countingBackend{Backend: wrongNode}
	wrongSrv := NewServer(wrongBackend, ServerConfig{
		Owner: func(fp fingerprint.Fingerprint) (string, string, bool) {
			return "owner", ownerAddr.String(), false
		},
	})
	wrongAddr, err := wrongSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen wrong: %v", err)
	}

	client, err := Dial("wrong", wrongAddr.String(), ClientConfig{Conns: 1, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() {
		client.Close()
		wrongSrv.Close()
		ownerSrv.Close()
		wrongNode.Close()
		ownerNode.Close()
	}()

	ctx := context.Background()
	res, err := client.LookupOrInsert(ctx, fp(42), 99)
	if err != nil {
		t.Fatalf("redirected LookupOrInsert: %v", err)
	}
	if res.Exists {
		t.Fatal("fresh key reported duplicate after redirect")
	}

	// The write landed on the true owner, not the dialed node.
	if got, err := ownerNode.Lookup(ctx, fp(42)); err != nil || got.Value != 99 {
		t.Fatalf("owner node lookup after redirect = %+v, %v — the redirected write missed the owner", got, err)
	}
	if n := wrongBackend.lookups.Load(); n != 0 {
		t.Fatalf("wrong node's backend ran %d lookups — NOT_OWNER must short-circuit before the backend", n)
	}
	if n := client.RedirectsFollowed(); n != 1 {
		t.Fatalf("client followed %d redirects, want exactly 1 (one hop, no chain)", n)
	}

	// The wrong node accounts for the redirect it issued.
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Transport.RedirectsIssued != 1 {
		t.Fatalf("wrong node reports %d redirects issued, want 1", st.Transport.RedirectsIssued)
	}

	// A second op on the same key reuses the cached redirect client and
	// reads the owner's copy.
	res, err = client.Lookup(ctx, fp(42))
	if err != nil || !res.Exists || res.Value != 99 {
		t.Fatalf("second redirected lookup = %+v, %v", res, err)
	}
	if n := client.RedirectsFollowed(); n != 2 {
		t.Fatalf("client followed %d redirects after two ops, want 2", n)
	}
}

// TestRedirectDisabled pins the opt-out: with NoRedirects set the typed
// NOT_OWNER error surfaces to the caller, owner coordinates intact — the
// mode the cluster router itself uses to avoid redirect chains.
func TestRedirectDisabled(t *testing.T) {
	node, err := core.NewNode(core.NodeConfig{ID: "wrong", Store: hashdb.NewMemStore(nil)})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	srv := NewServer(node, ServerConfig{
		Owner: func(fp fingerprint.Fingerprint) (string, string, bool) {
			return "elsewhere", "198.51.100.7:9999", false
		},
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	client, err := Dial("wrong", addr.String(), ClientConfig{Conns: 1, NoRedirects: true, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() {
		client.Close()
		srv.Close()
		node.Close()
	}()

	_, err = client.Lookup(context.Background(), fp(5))
	if err == nil {
		t.Fatal("lookup on a disclaimed key succeeded with redirects disabled")
	}
	se, ok := err.(*ServerError)
	if !ok {
		t.Fatalf("error type %T, want *ServerError", err)
	}
	if se.Code != wire.CodeNotOwner || se.OwnerID != "elsewhere" || se.OwnerAddr != "198.51.100.7:9999" {
		t.Fatalf("NOT_OWNER error = %+v, want code %d with owner identity intact", se, wire.CodeNotOwner)
	}
}

// TestRedialBrieflyRestartedNode is the regression test for the bounded
// redial: the server dies and comes back on the same address while the
// caller is between requests; the caller's next (single) call must ride
// the client's own redial-with-backoff to success — no caller-side retry
// loop.
func TestRedialBrieflyRestartedNode(t *testing.T) {
	node, err := core.NewNode(core.NodeConfig{ID: "flap", Store: hashdb.NewMemStore(nil), CacheSize: 8})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer node.Close()

	srv := NewServer(node, ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	client, err := Dial("flap", addr.String(), ClientConfig{
		Conns:          1,
		Timeout:        5 * time.Second,
		RedialAttempts: 8,
		RedialBackoff:  25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	if _, err := client.LookupOrInsert(context.Background(), fp(1), 3); err != nil {
		t.Fatalf("warmup: %v", err)
	}

	// Kill the server; give the read loop a beat to mark the conn dead.
	srv.Close()
	time.Sleep(50 * time.Millisecond)

	// Restart on the same port shortly — while the client's redial
	// backoff is in flight.
	restarted := make(chan *Server, 1)
	go func() {
		time.Sleep(75 * time.Millisecond)
		srv2 := NewServer(node, ServerConfig{})
		if _, err := srv2.Listen(addr.String()); err != nil {
			t.Errorf("relisten: %v", err)
		}
		restarted <- srv2
	}()
	defer func() {
		if srv2 := <-restarted; srv2 != nil {
			srv2.Close()
		}
	}()

	// ONE call, no retry loop: the redial backoff must absorb the outage.
	res, err := client.Lookup(context.Background(), fp(1))
	if err != nil {
		t.Fatalf("single call across brief restart failed: %v", err)
	}
	if !res.Exists || res.Value != 3 {
		t.Fatalf("lookup after restart = %+v, want the pre-restart insert", res)
	}
}
