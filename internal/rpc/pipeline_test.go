package rpc

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shhc/internal/core"
	"shhc/internal/ring"
)

// gatedBackend wraps a core.Backend, blocking BatchLookupOrInsert calls
// whose first fingerprint is in the slow set until the gate opens — a
// stand-in for a batch stalled on a remote node's SSD phase.
type gatedBackend struct {
	core.Backend
	gate    chan struct{}
	slowFP  uint64
	stalled atomic.Int64
}

func (g *gatedBackend) BatchLookupOrInsert(ctx context.Context, pairs []core.Pair) ([]core.LookupResult, error) {
	if len(pairs) > 0 && pairs[0].Val == core.Value(g.slowFP) {
		g.stalled.Add(1)
		<-g.gate
	}
	return g.Backend.BatchLookupOrInsert(context.Background(), pairs)
}

func startGatedNode(t *testing.T, id ring.NodeID, slowVal uint64) (*gatedBackend, *Client) {
	t.Helper()
	node, _ := startNode(t, id+"-inner")
	gb := &gatedBackend{Backend: node, gate: make(chan struct{}), slowFP: slowVal}
	srv := NewServer(gb, ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	client, err := Dial(id, addr.String(), ClientConfig{Conns: 1, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
	})
	return gb, client
}

// TestPipelinedBatchesOverlapOnOneConnection sends a slow batch followed
// by fast batches on a single pooled connection: the fast batches must
// complete while the slow one is still stalled server-side. This is the
// property that keeps one SSD-bound batch from blocking a whole
// connection.
func TestPipelinedBatchesOverlapOnOneConnection(t *testing.T) {
	const slowVal = 999999
	gb, client := startGatedNode(t, "pipeline-overlap", slowVal)

	slow := client.GoBatchLookupOrInsert(context.Background(), []core.Pair{{FP: fp(1), Val: slowVal}})
	// Wait until the slow batch is provably stalled inside the server.
	deadline := time.Now().Add(5 * time.Second)
	for gb.stalled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow batch never reached the server")
		}
		time.Sleep(time.Millisecond)
	}

	const fastBatches = 8
	for b := 0; b < fastBatches; b++ {
		pairs := make([]core.Pair, 4)
		for j := range pairs {
			pairs[j] = core.Pair{FP: fp(uint64(100 + b*4 + j)), Val: core.Value(b*4 + j + 1)}
		}
		rs, err := client.GoBatchLookupOrInsert(context.Background(), pairs).Results()
		if err != nil {
			t.Fatalf("fast batch %d (behind a stalled batch on the same connection): %v", b, err)
		}
		if len(rs) != len(pairs) {
			t.Fatalf("fast batch %d: %d results for %d pairs", b, len(rs), len(pairs))
		}
	}

	select {
	case <-slow.Done():
		t.Fatal("slow batch completed before the gate opened")
	default:
	}
	close(gb.gate)
	rs, err := slow.Results()
	if err != nil {
		t.Fatalf("slow batch: %v", err)
	}
	if len(rs) != 1 || rs[0].Exists {
		t.Fatalf("slow batch results = %+v, want one \"new\"", rs)
	}
}

// TestPipeliningManyInFlightBatches keeps dozens of batch futures in
// flight on one connection from many goroutines and checks every response
// lands on the right request (the ids can't cross wires). Run under -race
// in CI.
func TestPipeliningManyInFlightBatches(t *testing.T) {
	node, client := startNode(t, "pipeline-many")
	_ = node

	single, err := Dial("pipeline-many-single", client.Addr(), ClientConfig{Conns: 1, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer single.Close()

	const (
		goroutines = 8
		rounds     = 25
		batchSize  = 16
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			calls := make([]*BatchCall, 0, rounds)
			expect := make([][]core.Pair, 0, rounds)
			for r := 0; r < rounds; r++ {
				pairs := make([]core.Pair, batchSize)
				for j := range pairs {
					key := uint64(g*1000000 + r*batchSize + j)
					pairs[j] = core.Pair{FP: fp(key), Val: core.Value(key + 1)}
				}
				calls = append(calls, single.GoBatchLookupOrInsert(context.Background(), pairs))
				expect = append(expect, pairs)
			}
			for r, call := range calls {
				rs, err := call.Results()
				if err != nil {
					t.Errorf("goroutine %d round %d: %v", g, r, err)
					return
				}
				for j, res := range rs {
					// Every fingerprint is unique to (g, r, j): the first
					// answer must be "new". A crossed response id would
					// surface as a duplicate or a wrong value here.
					if res.Exists {
						t.Errorf("goroutine %d round %d item %d: unexpected duplicate %+v", g, r, j, res)
						return
					}
					_ = expect[r][j]
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPipelinedBatchDoneChannel: Done must not fire before the response
// and must fire after it.
func TestPipelinedBatchDoneChannel(t *testing.T) {
	const slowVal = 888888
	gb, client := startGatedNode(t, "pipeline-done", slowVal)

	call := client.GoBatchLookupOrInsert(context.Background(), []core.Pair{{FP: fp(2), Val: slowVal}})
	deadline := time.Now().Add(5 * time.Second)
	for gb.stalled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch never reached the server")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-call.Done():
		t.Fatal("Done fired while the batch was stalled server-side")
	case <-time.After(20 * time.Millisecond):
	}
	close(gb.gate)
	select {
	case <-call.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Done never fired after the response")
	}
	if _, err := call.Results(); err != nil {
		t.Fatalf("Results after Done: %v", err)
	}
}
