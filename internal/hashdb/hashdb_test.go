package hashdb

import (
	"errors"
	"path/filepath"
	"testing"
	"testing/quick"

	"shhc/internal/device"
	"shhc/internal/fingerprint"
)

func fp(i uint64) fingerprint.Fingerprint { return fingerprint.FromUint64(i) }

func newTestDB(t *testing.T, opts Options) *DB {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.shdb")
	db, err := Create(path, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	t.Cleanup(func() {
		if err := db.Close(); err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("Close: %v", err)
		}
	})
	return db
}

func TestPutGetRoundTrip(t *testing.T) {
	db := newTestDB(t, Options{ExpectedItems: 1000})
	const n = 1000
	for i := uint64(0); i < n; i++ {
		created, err := db.Put(fp(i), Value(i*7))
		if err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
		if !created {
			t.Fatalf("Put(%d) reported update, want create", i)
		}
	}
	if db.Len() != n {
		t.Fatalf("Len = %d, want %d", db.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		v, ok, err := db.Get(fp(i))
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if !ok || v != Value(i*7) {
			t.Fatalf("Get(%d) = (%v, %v), want (%v, true)", i, v, ok, i*7)
		}
	}
	if _, ok, _ := db.Get(fp(n + 1)); ok {
		t.Fatal("Get of absent key reported present")
	}
}

func TestPutOverwrite(t *testing.T) {
	db := newTestDB(t, Options{ExpectedItems: 10})
	db.Put(fp(1), 10)
	created, err := db.Put(fp(1), 20)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if created {
		t.Fatal("overwrite reported create")
	}
	if v, _, _ := db.Get(fp(1)); v != 20 {
		t.Fatalf("value = %v, want 20", v)
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d, want 1", db.Len())
	}
}

func TestOverflowChains(t *testing.T) {
	// One bucket forces every insert into the same chain.
	db := newTestDB(t, Options{Buckets: 1})
	n := SlotsPerPage*3 + 7 // several overflow pages
	for i := 0; i < n; i++ {
		if _, err := db.Put(fp(uint64(i)), Value(i)); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	if db.Len() != n {
		t.Fatalf("Len = %d, want %d", db.Len(), n)
	}
	st := db.Stats()
	if st.OverflowPages < 3 {
		t.Fatalf("OverflowPages = %d, want >= 3", st.OverflowPages)
	}
	for i := 0; i < n; i++ {
		v, ok, err := db.Get(fp(uint64(i)))
		if err != nil || !ok || v != Value(i) {
			t.Fatalf("Get(%d) = (%v, %v, %v)", i, v, ok, err)
		}
	}
}

func TestDelete(t *testing.T) {
	db := newTestDB(t, Options{Buckets: 1})
	for i := 0; i < 10; i++ {
		db.Put(fp(uint64(i)), Value(i))
	}
	ok, err := db.Delete(fp(4))
	if err != nil || !ok {
		t.Fatalf("Delete = (%v, %v), want (true, nil)", ok, err)
	}
	if ok, _ := db.Delete(fp(4)); ok {
		t.Fatal("second Delete reported present")
	}
	if db.Len() != 9 {
		t.Fatalf("Len = %d, want 9", db.Len())
	}
	// All others still present (hole was back-filled).
	for i := 0; i < 10; i++ {
		if i == 4 {
			continue
		}
		if _, ok, _ := db.Get(fp(uint64(i))); !ok {
			t.Fatalf("entry %d lost after delete", i)
		}
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.shdb")
	db, err := Create(path, Options{ExpectedItems: 100})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := uint64(0); i < 500; i++ {
		db.Put(fp(i), Value(i))
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2, err := Open(path, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db2.Close()
	if db2.Len() != 500 {
		t.Fatalf("reopened Len = %d, want 500", db2.Len())
	}
	for i := uint64(0); i < 500; i++ {
		v, ok, err := db2.Get(fp(i))
		if err != nil || !ok || v != Value(i) {
			t.Fatalf("reopened Get(%d) = (%v, %v, %v)", i, v, ok, err)
		}
	}
}

func TestCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.shdb")
	db, err := Create(path, Options{ExpectedItems: 100})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := uint64(0); i < 300; i++ {
		db.Put(fp(i), Value(i))
	}
	// Simulate a crash: pages were written, header still says dirty.
	if err := db.CloseWithoutSync(); err != nil {
		t.Fatalf("CloseWithoutSync: %v", err)
	}

	db2, err := Open(path, nil)
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	defer db2.Close()
	if db2.Len() != 300 {
		t.Fatalf("recovered Len = %d, want 300", db2.Len())
	}
	for i := uint64(0); i < 300; i++ {
		if _, ok, _ := db2.Get(fp(i)); !ok {
			t.Fatalf("entry %d lost in recovery", i)
		}
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.shdb")
	db, err := Create(path, Options{Buckets: 1})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := uint64(0); i < 50; i++ {
		db.Put(fp(i), Value(i))
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Flip one byte inside the single bucket page (page 1).
	f, err := openRW(path)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	off := int64(PageSize) + 100 // inside page 1's entry area
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2, err := Open(path, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db2.Close()
	_, _, err = db2.Get(fp(1))
	var corrupt *CorruptionError
	if !errors.As(err, &corrupt) {
		t.Fatalf("Get on corrupted page = %v, want CorruptionError", err)
	}
}

func TestEmptyBucketPagesReadCleanly(t *testing.T) {
	// Fresh bucket pages are zero-filled (no CRC ever written); reads of
	// absent keys must not report corruption.
	db := newTestDB(t, Options{ExpectedItems: 10000})
	for i := uint64(0); i < 100; i++ {
		if _, ok, err := db.Get(fp(i)); err != nil || ok {
			t.Fatalf("Get on fresh db = (%v, %v)", ok, err)
		}
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.shdb")
	if err := writeFile(path, make([]byte, PageSize)); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path, nil)
	var corrupt *CorruptionError
	if !errors.As(err, &corrupt) {
		t.Fatalf("Open of zero file = %v, want CorruptionError", err)
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dup.shdb")
	db, err := Create(path, Options{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer db.Close()
	if _, err := Create(path, Options{}); err == nil {
		t.Fatal("second Create succeeded, want error")
	}
}

func TestClosedErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.shdb")
	db, err := Create(path, Options{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	db.Close()
	if _, _, err := db.Get(fp(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close = %v, want ErrClosed", err)
	}
	if _, err := db.Put(fp(1), 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close = %v, want ErrClosed", err)
	}
	if err := db.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after close = %v, want ErrClosed", err)
	}
	if err := db.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close = %v, want ErrClosed", err)
	}
}

func TestRange(t *testing.T) {
	db := newTestDB(t, Options{Buckets: 4})
	want := map[fingerprint.Fingerprint]Value{}
	for i := uint64(0); i < 200; i++ {
		want[fp(i)] = Value(i)
		db.Put(fp(i), Value(i))
	}
	got := map[fingerprint.Fingerprint]Value{}
	err := db.Range(func(f fingerprint.Fingerprint, v Value) bool {
		got[f] = v
		return true
	})
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for f, v := range want {
		if got[f] != v {
			t.Fatalf("Range value mismatch for %s", f.Short())
		}
	}

	// Early termination.
	visited := 0
	db.Range(func(fingerprint.Fingerprint, Value) bool {
		visited++
		return visited < 5
	})
	if visited != 5 {
		t.Fatalf("early-terminated Range visited %d, want 5", visited)
	}
}

func TestDeviceAccountingChargesPages(t *testing.T) {
	dev := device.New(device.SSD, device.Account)
	path := filepath.Join(t.TempDir(), "dev.shdb")
	db, err := Create(path, Options{ExpectedItems: 100, Device: dev})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer db.Close()

	before := dev.Stats()
	db.Get(fp(1))
	after := dev.Stats()
	if after.Reads <= before.Reads {
		t.Fatal("Get did not charge a device read")
	}

	before = after
	db.Put(fp(1), 1)
	after = dev.Stats()
	if after.Writes <= before.Writes {
		t.Fatal("Put did not charge a device write")
	}
}

func TestStatsShape(t *testing.T) {
	db := newTestDB(t, Options{ExpectedItems: 1000})
	for i := uint64(0); i < 500; i++ {
		db.Put(fp(i), Value(i))
	}
	st := db.Stats()
	if st.Entries != 500 {
		t.Fatalf("Entries = %d, want 500", st.Entries)
	}
	if st.LoadFactor <= 0 || st.LoadFactor > 1.5 {
		t.Fatalf("LoadFactor = %v, out of sane range", st.LoadFactor)
	}
	if st.Pages < st.Buckets+1 {
		t.Fatalf("Pages = %d < Buckets+1 = %d", st.Pages, st.Buckets+1)
	}
}

// Property: get-after-put coherence under random keys/values, including
// duplicate keys, with a tiny bucket region to exercise overflow paths.
func TestQuickGetAfterPut(t *testing.T) {
	db := newTestDB(t, Options{Buckets: 2})
	shadow := map[fingerprint.Fingerprint]Value{}
	f := func(key uint16, val uint32) bool {
		k := fp(uint64(key % 512))
		v := Value(val)
		if _, err := db.Put(k, v); err != nil {
			return false
		}
		shadow[k] = v
		got, ok, err := db.Get(k)
		if err != nil || !ok || got != v {
			return false
		}
		return db.Len() == len(shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
	// Final full verification against the shadow map.
	for k, v := range shadow {
		got, ok, err := db.Get(k)
		if err != nil || !ok || got != v {
			t.Fatalf("final Get(%s) = (%v,%v,%v), want %v", k.Short(), got, ok, err, v)
		}
	}
}

func writeFile(path string, data []byte) error {
	return osWriteFile(path, data)
}
