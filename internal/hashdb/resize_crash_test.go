package hashdb

// The kill-at-every-write harness from crash_test.go, pointed at the
// growth machinery: the schedule here drives the table through linear-
// hashing splits, a compaction pass, and free-list reuse, so every kill
// point lands inside a split's multi-page write sequence, a compaction
// repack, or a free-list manipulation. The assertions are the same three
// crash_test.go proves — recovery always converges, no corrupt value is
// ever served, and acknowledged state survives (with the torn-page
// carve-out; atomic kills may lose nothing) — plus the delete guarantee:
// a split rollback or compaction replay must never resurrect an
// acknowledged delete.
//
// The template is seeded below the split threshold and closed cleanly, so
// its header is still v3: every run also exercises the v3→v4 header
// upgrade happening under fire.

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// resizeCrashOpen opens a crash-run file with growth forced on and a split
// threshold low enough that the schedule's ~60 keys split the 2-bucket
// template several times.
func resizeCrashOpen(f File, path string) (*DB, error) {
	return OpenFileWithOptions(f, path, OpenOptions{
		Resize:          ResizeOn,
		SplitLoadFactor: 0.05,
	})
}

// resizeCrashSchedule drives creates, updates, deletes, a Compact, and a
// refill that reuses compaction's freed pages, updating the model as
// operations settle. Splits fire throughout (the probe run asserts so).
func resizeCrashSchedule(db *DB, m *crashModel) error {
	ctx := context.Background()
	putBatch := func(keys []uint64, gen uint64) error {
		pairs := make([]Pair, len(keys))
		for i, k := range keys {
			pairs[i] = Pair{FP: fp(k), Val: Value(k*1000 + gen)}
			m.attemptPut(k, pairs[i].Val)
		}
		if _, _, err := db.PutBatch(ctx, pairs); err != nil {
			return err
		}
		for i, k := range keys {
			m.ackPut(k, pairs[i].Val)
		}
		return nil
	}
	put := func(k, gen uint64) error {
		v := Value(k*1000 + gen)
		m.attemptPut(k, v)
		if _, err := db.Put(fp(k), v); err != nil {
			return err
		}
		m.ackPut(k, v)
		return nil
	}
	del := func(k uint64) error {
		m.attemptDel(k)
		if _, err := db.Delete(fp(k)); err != nil {
			return err
		}
		m.ackDel(k)
		return nil
	}

	// 1: a batched create wave large enough to push load past the split
	// threshold — the v3 header upgrades to v4 on the first split.
	batchA := make([]uint64, 30)
	for i := range batchA {
		batchA[i] = 100 + uint64(i)
	}
	if err := putBatch(batchA, 1); err != nil {
		return err
	}
	// 2: per-key creates, splitting further one put at a time.
	for k := uint64(130); k < 140; k++ {
		if err := put(k, 1); err != nil {
			return err
		}
	}
	// 3: updates of seeded entries that splits have since redistributed.
	for k := uint64(0); k < 4; k++ {
		if err := put(k, 2); err != nil {
			return err
		}
	}
	// 4: deletes (never touched again) sparsifying the split chains.
	for k := uint64(100); k < 115; k++ {
		if err := del(k); err != nil {
			return err
		}
	}
	// 5: compaction repacks the sparse chains and frees pages; kills land
	// inside its repack writes and free-list pushes.
	if _, err := db.Compact(); err != nil {
		return err
	}
	// 6: a refill that drains compaction's free list.
	batchB := make([]uint64, 10)
	for i := range batchB {
		batchB[i] = 140 + uint64(i)
	}
	if err := putBatch(batchB, 1); err != nil {
		return err
	}
	// 7: updates and deletes on top of the reused pages.
	for k := uint64(115); k < 118; k++ {
		if err := put(k, 3); err != nil {
			return err
		}
	}
	for k := uint64(118); k < 120; k++ {
		if err := del(k); err != nil {
			return err
		}
	}
	// 8: an explicit durability barrier.
	return db.Sync()
}

// seedResizeCrashTemplate builds the pre-crash image: a 2-bucket resizable
// table holding keys 0..9 — below the split threshold, so the header is
// still v3 — closed cleanly.
func seedResizeCrashTemplate(t *testing.T, path string, m *crashModel) {
	t.Helper()
	db, err := Create(path, Options{Buckets: 2, Resize: ResizeOn, SplitLoadFactor: 0.05})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for k := uint64(0); k < 10; k++ {
		v := Value(k * 1000)
		m.attemptPut(k, v)
		if _, err := db.Put(fp(k), v); err != nil {
			t.Fatalf("seed Put: %v", err)
		}
		m.ackPut(k, v)
	}
	if st := db.Stats(); st.Splits != 0 {
		t.Fatalf("template split during seeding (%d splits); template must stay v3", st.Splits)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("seed Close: %v", err)
	}
}

func TestResizeCrashInjectionEveryWritePoint(t *testing.T) {
	dir := t.TempDir()
	tmpl := filepath.Join(dir, "tmpl.shdb")
	seedResizeCrashTemplate(t, tmpl, newCrashModel())
	tmplBytes, err := os.ReadFile(tmpl)
	if err != nil {
		t.Fatal(err)
	}

	// Probe the schedule's write count — and that it actually grows the
	// table — with an unreachable kill point.
	probePath := filepath.Join(dir, "probe.shdb")
	if err := os.WriteFile(probePath, tmplBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	pf, err := openRW(probePath)
	if err != nil {
		t.Fatal(err)
	}
	probe := NewFailFile(pf, math.MaxInt64, 0)
	pdb, err := resizeCrashOpen(probe, probePath)
	if err != nil {
		t.Fatalf("probe open: %v", err)
	}
	if err := resizeCrashSchedule(pdb, newCrashModel()); err != nil {
		t.Fatalf("probe schedule: %v", err)
	}
	if st := pdb.Stats(); st.Splits == 0 {
		t.Fatalf("probe schedule made no splits; the harness is not exercising growth (stats %+v)", st)
	}
	totalWrites := probe.Writes()
	pdb.Close()
	if totalWrites < 50 {
		t.Fatalf("schedule issued only %d writes; too small to cover split/compact sequences", totalWrites)
	}

	for _, partial := range []int{-1, 7, PageSize / 2, PageSize - 1} {
		for k := int64(1); k <= totalWrites; k++ {
			runGrowthCrashPoint(t, tmplBytes, dir, k, partial, resizeCrashOpen, resizeCrashSchedule)
		}
	}
}

// minedKeys returns the first n keys (from 1000 up) whose hash prefix has
// the given parity — under the template's 2-bucket mapping they all land
// in one bucket, which is how the compaction schedule builds a long chain
// despite uniform hashing.
func minedKeys(n int, parity uint64) []uint64 {
	keys := make([]uint64, 0, n)
	for k := uint64(1000); len(keys) < n; k++ {
		if fp(k).Prefix64()%2 == parity {
			keys = append(keys, k)
		}
	}
	return keys
}

// compactCrashOpen disables load-factor splits (threshold no real load
// reaches) so growth comes only from the chain-length trigger — exactly
// one split fires, and the sparse chains survive for Compact to repack.
func compactCrashOpen(f File, path string) (*DB, error) {
	return OpenFileWithOptions(f, path, OpenOptions{
		Resize:          ResizeOn,
		SplitLoadFactor: 2.0,
	})
}

// compactCrashSchedule builds a three-page chain in one bucket, lets the
// chain trigger split it once, deletes enough entries to leave both halves
// sparse, and compacts — so kill points land inside a compaction that has
// real repacking and page-freeing to do. cs receives Compact's stats for
// the probe run to assert the work happened.
func compactCrashSchedule(db *DB, m *crashModel, cs *CompactStats) error {
	ctx := context.Background()
	putBatch := func(keys []uint64, gen uint64) error {
		pairs := make([]Pair, len(keys))
		for i, k := range keys {
			pairs[i] = Pair{FP: fp(k), Val: Value(k*1000 + gen)}
			m.attemptPut(k, pairs[i].Val)
		}
		if _, _, err := db.PutBatch(ctx, pairs); err != nil {
			return err
		}
		for i, k := range keys {
			m.ackPut(k, pairs[i].Val)
		}
		return nil
	}

	// 1: a mined wave overflows one bucket into a three-page chain.
	mined := minedKeys(2*SlotsPerPage+25, 0)
	if err := putBatch(mined[:len(mined)-1], 1); err != nil {
		return err
	}
	// 2: one more put walks the long chain, arming the chain-length
	// trigger; its maybeSplit splits the overloaded bucket in two.
	last := mined[len(mined)-1]
	m.attemptPut(last, Value(last*1000+1))
	if _, err := db.Put(fp(last), Value(last*1000+1)); err != nil {
		return err
	}
	m.ackPut(last, Value(last*1000+1))
	// 3: deletes sparsify both halves of the split chain without emptying
	// any page (Delete back-fills within a page).
	for _, k := range mined[:90] {
		m.attemptDel(k)
		if _, err := db.Delete(fp(k)); err != nil {
			return err
		}
		m.ackDel(k)
	}
	// 4: compaction repacks the sparse chains and frees their tails.
	c, err := db.Compact()
	if err != nil {
		return err
	}
	*cs = c
	// 5: a refill writing over the reshaped table, then a barrier.
	refill := make([]uint64, 10)
	for i := range refill {
		refill[i] = 140 + uint64(i)
	}
	if err := putBatch(refill, 1); err != nil {
		return err
	}
	return db.Sync()
}

func TestCompactCrashInjectionEveryWritePoint(t *testing.T) {
	dir := t.TempDir()
	tmpl := filepath.Join(dir, "tmpl.shdb")
	seedResizeCrashTemplate(t, tmpl, newCrashModel())
	tmplBytes, err := os.ReadFile(tmpl)
	if err != nil {
		t.Fatal(err)
	}

	// Probe: the schedule must actually split once and give Compact real
	// work, or the kill sweep proves nothing about those code paths.
	probePath := filepath.Join(dir, "probe.shdb")
	if err := os.WriteFile(probePath, tmplBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	pf, err := openRW(probePath)
	if err != nil {
		t.Fatal(err)
	}
	probe := NewFailFile(pf, math.MaxInt64, 0)
	pdb, err := compactCrashOpen(probe, probePath)
	if err != nil {
		t.Fatalf("probe open: %v", err)
	}
	var cs CompactStats
	if err := compactCrashSchedule(pdb, newCrashModel(), &cs); err != nil {
		t.Fatalf("probe schedule: %v", err)
	}
	if st := pdb.Stats(); st.Splits == 0 {
		t.Fatalf("probe schedule made no splits (stats %+v)", st)
	}
	if cs.PagesFreed == 0 || cs.ChainsPacked == 0 {
		t.Fatalf("probe Compact did no work (%+v); the kill sweep would not cover compaction", cs)
	}
	totalWrites := probe.Writes()
	pdb.Close()

	schedule := func(db *DB, m *crashModel) error {
		var cs CompactStats
		return compactCrashSchedule(db, m, &cs)
	}
	for _, partial := range []int{-1, 7, PageSize / 2, PageSize - 1} {
		for k := int64(1); k <= totalWrites; k++ {
			runGrowthCrashPoint(t, tmplBytes, dir, k, partial, compactCrashOpen, schedule)
		}
	}
}

// runGrowthCrashPoint is runCrashPoint with a pluggable open and schedule;
// the post-crash assertions are identical.
func runGrowthCrashPoint(t *testing.T, tmplBytes []byte, dir string, killAt int64, partial int,
	open func(File, string) (*DB, error), schedule func(*DB, *crashModel) error) {
	t.Helper()
	path := filepath.Join(dir, "run.shdb")
	if err := os.WriteFile(path, tmplBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	m := newCrashModel()
	seedModel(m)

	f, err := openRW(path)
	if err != nil {
		t.Fatal(err)
	}
	p := partial
	if p < 0 {
		p = 0
	}
	ff := NewFailFile(f, killAt, p)
	db, err := open(ff, path)
	if err != nil {
		t.Fatalf("kill=%d partial=%d: open on clean seed: %v", killAt, partial, err)
	}
	serr := schedule(db, m)
	if serr == nil {
		if err := db.Close(); err != nil {
			t.Fatalf("kill=%d partial=%d: clean Close: %v", killAt, partial, err)
		}
	} else if !errors.Is(serr, ErrKilled) {
		t.Fatalf("kill=%d partial=%d: schedule failed with non-kill error: %v", killAt, partial, serr)
	} else {
		f.Close()
	}

	// Reopen: recovery must converge whatever split or compaction the kill
	// interrupted — rolled-back splits re-hash their chains, duplicate
	// copies left mid-repack dedupe, the free list rebuilds.
	db2, err := Open(path, nil)
	if err != nil {
		t.Fatalf("kill=%d partial=%d: Open after crash: %v", killAt, partial, err)
	}
	defer db2.Close()
	if err := db2.Check(); err != nil {
		t.Fatalf("kill=%d partial=%d: Check after recovery: %v", killAt, partial, err)
	}
	rs := db2.Recovery()
	if partial < 0 && (rs.TornPages != 0 || rs.TailBytes != 0) {
		t.Fatalf("kill=%d atomic: recovery reports torn state %+v from whole-write kills", killAt, rs)
	}

	for k, vals := range m.attempted {
		v, ok, gerr := db2.Get(fp(k))
		if gerr != nil {
			t.Fatalf("kill=%d partial=%d: Get(%d) after recovery: %v", killAt, partial, k, gerr)
		}
		if ok && !vals[v] {
			t.Fatalf("kill=%d partial=%d: Get(%d) = %d, a value never written for it (corrupt data served)", killAt, partial, k, v)
		}
		if !m.clean[k] {
			continue
		}
		if m.settledDel[k] {
			if ok {
				t.Fatalf("kill=%d partial=%d: key %d resurrected after acknowledged delete", killAt, partial, k)
			}
			continue
		}
		want := m.settledVal[k]
		if ok && v != want {
			t.Fatalf("kill=%d partial=%d: settled key %d = %d, want %d", killAt, partial, k, v, want)
		}
		if !ok {
			if partial < 0 {
				t.Fatalf("kill=%d atomic: settled key %d lost with no torn page", killAt, k)
			}
			if rs.TornPages == 0 {
				t.Fatalf("kill=%d partial=%d: settled key %d lost but recovery reports no torn pages", killAt, partial, k)
			}
		}
	}

	// A second reopen must be clean: recovery converged and committed.
	db2.Close()
	db3, err := Open(path, nil)
	if err != nil {
		t.Fatalf("kill=%d partial=%d: second Open: %v", killAt, partial, err)
	}
	if rs := db3.Recovery(); rs.Runs != 0 {
		t.Fatalf("kill=%d partial=%d: second open ran recovery again: %+v", killAt, partial, rs)
	}
	db3.Close()
}
