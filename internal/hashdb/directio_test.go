package hashdb

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"shhc/internal/directio"
	"shhc/internal/fingerprint"
)

func openDirect(t *testing.T, path string, flag int) *directio.File {
	t.Helper()
	f, err := directio.Open(path, flag, 0o644, directio.Options{})
	if err != nil {
		t.Fatalf("directio.Open(%s): %v", path, err)
	}
	return f
}

// TestDirectIOBackendServes runs a hash table end to end over the direct-I/O
// backend: create, fill past the bucket region (forcing overflow chains and
// the unaligned header RMW path), clean close, reopen, verify.
func TestDirectIOBackendServes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "direct.shdb")
	f := openDirect(t, path, os.O_RDWR|os.O_CREATE|os.O_EXCL)
	db, err := CreateFile(f, path, Options{Buckets: 4})
	if err != nil {
		t.Fatalf("CreateFile: %v", err)
	}
	t.Logf("direct=%v", f.Direct())
	const keys = 2000 // ~4 buckets × many pages of overflow
	for k := uint64(0); k < keys; k++ {
		if _, err := db.Put(fp(k), Value(k)); err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
	}
	if err := db.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	f2 := openDirect(t, path, os.O_RDWR)
	db2, err := OpenFile(f2, path, nil)
	if err != nil {
		t.Fatalf("OpenFile over directio: %v", err)
	}
	defer db2.Close()
	for k := uint64(0); k < keys; k++ {
		v, ok, err := db2.Get(fp(k))
		if err != nil || !ok || v != Value(k) {
			t.Fatalf("Get(%d) = %d, %v, %v; want %d", k, v, ok, err, k)
		}
	}
	if _, ok, _ := db2.Get(fp(keys + 1)); ok {
		t.Fatal("phantom key present")
	}
}

// TestDirectIOBackendBatch drives the batched read and write paths (the
// parallel.Do fan-out) through the backend's queue-depth semaphore.
func TestDirectIOBackendBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.shdb")
	f, err := directio.Open(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644, directio.Options{QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	db, err := CreateFile(f, path, Options{Buckets: 8})
	if err != nil {
		t.Fatalf("CreateFile: %v", err)
	}
	defer db.Close()
	const n = 1024
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = Pair{FP: fp(uint64(i)), Val: Value(i + 1)}
	}
	created, _, err := db.PutBatch(t.Context(), pairs)
	if err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	for i, c := range created {
		if !c {
			t.Fatalf("pair %d not created", i)
		}
	}
	fps := make([]fingerprint.Fingerprint, n)
	for i := range fps {
		fps[i] = pairs[i].FP
	}
	vals, found, err := db.GetBatch(t.Context(), fps)
	if err != nil {
		t.Fatalf("GetBatch: %v", err)
	}
	for i := range fps {
		if !found[i] || vals[i] != Value(i+1) {
			t.Fatalf("GetBatch[%d] = %d, %v; want %d", i, vals[i], found[i], i+1)
		}
	}
}

// TestDirectIOCrashEveryWrite is the kill-at-every-write crash harness run
// through the direct-I/O backend: the same schedule, model, and invariants
// as TestCrashInjectionEveryWritePoint, with the FailFile layered over a
// directio.File instead of a bare os.File, and recovery reopening through
// the backend as well. Proves the RMW bounce path cannot turn a torn write
// into silent corruption.
func TestDirectIOCrashEveryWrite(t *testing.T) {
	dir := t.TempDir()
	tmpl := filepath.Join(dir, "tmpl.shdb")
	seedCrashTemplate(t, tmpl, newCrashModel())
	tmplBytes, err := os.ReadFile(tmpl)
	if err != nil {
		t.Fatal(err)
	}

	// Probe the schedule's write count with an unreachable kill point.
	probePath := filepath.Join(dir, "probe.shdb")
	if err := os.WriteFile(probePath, tmplBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	probe := NewFailFile(openDirect(t, probePath, os.O_RDWR), math.MaxInt64, 0)
	pdb, err := OpenFile(probe, probePath, nil)
	if err != nil {
		t.Fatalf("probe OpenFile: %v", err)
	}
	if err := crashSchedule(pdb, newCrashModel()); err != nil {
		t.Fatalf("probe schedule: %v", err)
	}
	totalWrites := probe.Writes()
	pdb.Close()

	// Atomic kills plus one torn shape keep the sweep fast enough to ride
	// along in -race CI; the full four-shape sweep lives in the os.File
	// harness, which shares every layer above the backend.
	for _, partial := range []int{-1, 7} {
		for k := int64(1); k <= totalWrites; k++ {
			runDirectIOCrashPoint(t, tmplBytes, dir, k, partial)
		}
	}
}

func runDirectIOCrashPoint(t *testing.T, tmplBytes []byte, dir string, killAt int64, partial int) {
	t.Helper()
	path := filepath.Join(dir, "run.shdb")
	if err := os.WriteFile(path, tmplBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	m := newCrashModel()
	seedModel(m)

	f := openDirect(t, path, os.O_RDWR)
	p := partial
	if p < 0 {
		p = 0
	}
	ff := NewFailFile(f, killAt, p)
	db, err := OpenFile(ff, path, nil)
	if err != nil {
		t.Fatalf("kill=%d partial=%d: OpenFile on clean seed: %v", killAt, partial, err)
	}
	serr := crashSchedule(db, m)
	if serr == nil {
		if err := db.Close(); err != nil {
			t.Fatalf("kill=%d partial=%d: clean Close: %v", killAt, partial, err)
		}
	} else if !errors.Is(serr, ErrKilled) {
		t.Fatalf("kill=%d partial=%d: schedule failed with non-kill error: %v", killAt, partial, serr)
	} else {
		f.Close()
	}

	// Recovery must reopen and serve — again through the backend.
	f2 := openDirect(t, path, os.O_RDWR)
	db2, err := OpenFile(f2, path, nil)
	if err != nil {
		t.Fatalf("kill=%d partial=%d: reopen after crash: %v", killAt, partial, err)
	}
	defer db2.Close()
	if err := db2.Check(); err != nil {
		t.Fatalf("kill=%d partial=%d: Check after recovery: %v", killAt, partial, err)
	}
	for k, vals := range m.attempted {
		v, ok, gerr := db2.Get(fp(k))
		if gerr != nil {
			t.Fatalf("kill=%d partial=%d: Get(%d): %v", killAt, partial, k, gerr)
		}
		if ok && !vals[v] {
			t.Fatalf("kill=%d partial=%d: Get(%d) = %d, never-written value", killAt, partial, k, v)
		}
		if !m.clean[k] {
			continue
		}
		if m.settledDel[k] {
			if ok {
				t.Fatalf("kill=%d partial=%d: key %d resurrected after acked delete", killAt, partial, k)
			}
			continue
		}
		if ok && v != m.settledVal[k] {
			t.Fatalf("kill=%d partial=%d: settled key %d = %d, want %d", killAt, partial, k, v, m.settledVal[k])
		}
		if !ok && partial < 0 {
			t.Fatalf("kill=%d atomic: settled key %d lost", killAt, k)
		}
		if !ok && db2.Recovery().TornPages == 0 {
			t.Fatalf("kill=%d partial=%d: settled key %d lost with no torn page reported", killAt, partial, k)
		}
	}
}
