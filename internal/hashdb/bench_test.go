package hashdb

import (
	"path/filepath"
	"testing"

	"shhc/internal/device"
)

func benchDB(b *testing.B, expected int) *DB {
	b.Helper()
	// Null device: measure the store's own CPU+filesystem cost.
	db, err := Create(filepath.Join(b.TempDir(), "bench.shdb"), Options{
		ExpectedItems: expected,
		Device:        device.New(device.Null, device.Account),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

func BenchmarkDBPut(b *testing.B) {
	db := benchDB(b, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Put(fp(uint64(i)), Value(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDBGetHit(b *testing.B) {
	db := benchDB(b, 1<<18)
	const n = 1 << 16
	for i := 0; i < n; i++ {
		db.Put(fp(uint64(i)), Value(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := db.Get(fp(uint64(i % n))); err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}

func BenchmarkDBGetMiss(b *testing.B) {
	db := benchDB(b, 1<<18)
	for i := 0; i < 1<<14; i++ {
		db.Put(fp(uint64(i)), Value(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := db.Get(fp(uint64(1<<32 + i))); err != nil || ok {
			b.Fatal(ok, err)
		}
	}
}

func BenchmarkMemStorePut(b *testing.B) {
	s := NewMemStore(device.New(device.Null, device.Account))
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Put(fp(uint64(i)), Value(i)); err != nil {
			b.Fatal(err)
		}
	}
}
