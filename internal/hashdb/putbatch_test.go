package hashdb

import (
	"context"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"shhc/internal/device"
	"shhc/internal/fingerprint"
)

func testDB(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Create(filepath.Join(t.TempDir(), "putbatch.shdb"), opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestPutBatchBasic(t *testing.T) {
	db := testDB(t, Options{ExpectedItems: 1000})
	pairs := make([]Pair, 100)
	for i := range pairs {
		pairs[i] = Pair{FP: fp(uint64(i)), Val: Value(i + 1)}
	}
	created, pages, err := db.PutBatch(context.Background(), pairs)
	if err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	if pages == 0 || pages >= len(pairs) {
		t.Fatalf("pagesWritten = %d, want coalesced (0 < pages < %d)", pages, len(pairs))
	}
	for i, c := range created {
		if !c {
			t.Fatalf("created[%d] = false for a fresh fingerprint", i)
		}
	}
	if db.Len() != len(pairs) {
		t.Fatalf("Len = %d, want %d", db.Len(), len(pairs))
	}
	for i := range pairs {
		v, ok, err := db.Get(pairs[i].FP)
		if err != nil || !ok || v != pairs[i].Val {
			t.Fatalf("Get(%d) = (%v,%v,%v), want (%v,true,nil)", i, v, ok, err, pairs[i].Val)
		}
	}

	// Second batch: half updates (new values), half fresh.
	second := make([]Pair, 100)
	for i := range second {
		second[i] = Pair{FP: fp(uint64(i + 50)), Val: Value(1000 + i)}
	}
	created, _, err = db.PutBatch(context.Background(), second)
	if err != nil {
		t.Fatalf("PutBatch(second): %v", err)
	}
	for i, c := range created {
		want := i >= 50 // first 50 overlap the initial batch
		if c != want {
			t.Fatalf("created[%d] = %v, want %v", i, c, want)
		}
	}
	if db.Len() != 150 {
		t.Fatalf("Len = %d, want 150", db.Len())
	}
	for i := range second {
		v, ok, _ := db.Get(second[i].FP)
		if !ok || v != second[i].Val {
			t.Fatalf("updated Get(%d) = (%v,%v), want (%v,true)", i, v, ok, second[i].Val)
		}
	}
}

func TestPutBatchDuplicateInBatch(t *testing.T) {
	db := testDB(t, Options{ExpectedItems: 100})
	pairs := []Pair{
		{FP: fp(7), Val: 1},
		{FP: fp(8), Val: 2},
		{FP: fp(7), Val: 3}, // same fingerprint again: an update, last value wins
	}
	created, _, err := db.PutBatch(context.Background(), pairs)
	if err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	if !created[0] || !created[1] || created[2] {
		t.Fatalf("created = %v, want [true true false]", created)
	}
	if v, ok, _ := db.Get(fp(7)); !ok || v != 3 {
		t.Fatalf("Get(dup) = (%v,%v), want (3,true)", v, ok)
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d, want 2", db.Len())
	}
}

func TestPutBatchOverflowChains(t *testing.T) {
	// One bucket: everything chains off a single page, forcing overflow
	// allocation inside the batch.
	db := testDB(t, Options{Buckets: 1})
	n := SlotsPerPage*3 + 5
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = Pair{FP: fp(uint64(i)), Val: Value(i + 1)}
	}
	created, pages, err := db.PutBatch(context.Background(), pairs)
	if err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	for i, c := range created {
		if !c {
			t.Fatalf("created[%d] = false", i)
		}
	}
	if wantPages := 4; pages != wantPages {
		t.Fatalf("pagesWritten = %d, want %d (bucket page + 3 overflow)", pages, wantPages)
	}
	if db.Len() != n {
		t.Fatalf("Len = %d, want %d", db.Len(), n)
	}
	st := db.Stats()
	if st.OverflowPages != 3 {
		t.Fatalf("OverflowPages = %d, want 3", st.OverflowPages)
	}
	for i := range pairs {
		v, ok, _ := db.Get(pairs[i].FP)
		if !ok || v != pairs[i].Val {
			t.Fatalf("Get(%d) = (%v,%v), want (%v,true)", i, v, ok, pairs[i].Val)
		}
	}

	// A later per-key Put walks the 4-page chain: chain telemetry must
	// see it.
	if _, err := db.Put(fp(uint64(n)), Value(n+1)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	st = db.Stats()
	if st.MaxChain < 4 {
		t.Fatalf("MaxChain = %d, want >= 4", st.MaxChain)
	}
	var hist uint64
	for _, c := range st.ChainHist {
		hist += c
	}
	if hist == 0 {
		t.Fatal("ChainHist recorded no walks")
	}
}

func TestPutUpdateStopsAtHitPage(t *testing.T) {
	// An in-place update found on an early chain page must not pay reads
	// for the rest of the chain (the old per-key Put's early return,
	// preserved by the streaming update in putChain).
	dev := device.New(device.Null, device.Account)
	db, err := Create(filepath.Join(t.TempDir(), "early.shdb"), Options{Buckets: 1, Device: dev})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer db.Close()
	n := SlotsPerPage*2 + 4 // three-page chain
	for i := 0; i < n; i++ {
		if _, err := db.Put(fp(uint64(i)), Value(i+1)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	readsBefore := dev.Stats().Reads
	// fp(0) was inserted first, so it lives on the bucket page itself.
	if created, err := db.Put(fp(0), 999); err != nil || created {
		t.Fatalf("update Put = (%v,%v), want (false,nil)", created, err)
	}
	if reads := dev.Stats().Reads - readsBefore; reads != 1 {
		t.Fatalf("update on the bucket page cost %d page reads, want 1", reads)
	}
	if v, ok, _ := db.Get(fp(0)); !ok || v != 999 {
		t.Fatalf("updated value = (%v,%v), want (999,true)", v, ok)
	}
}

func TestPutBatchMatchesPut(t *testing.T) {
	// The batched path and the per-key path must produce identical
	// logical contents on the same (duplicate-heavy) input.
	rng := rand.New(rand.NewSource(42))
	pairs := make([]Pair, 500)
	for i := range pairs {
		pairs[i] = Pair{FP: fp(uint64(rng.Intn(120))), Val: Value(rng.Intn(1 << 20))}
	}

	sequential := testDB(t, Options{Buckets: 3})
	batched := testDB(t, Options{Buckets: 3})
	for _, p := range pairs {
		if _, err := sequential.Put(p.FP, p.Val); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if _, _, err := batched.PutBatch(context.Background(), pairs); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	if sequential.Len() != batched.Len() {
		t.Fatalf("Len mismatch: sequential %d, batched %d", sequential.Len(), batched.Len())
	}
	if err := sequential.Range(func(f fingerprint.Fingerprint, v Value) bool {
		bv, ok, err := batched.Get(f)
		if err != nil || !ok || bv != v {
			t.Fatalf("batched Get(%s) = (%v,%v,%v), want (%v,true,nil)", f.Short(), bv, ok, err, v)
		}
		return true
	}); err != nil {
		t.Fatalf("Range: %v", err)
	}
}

func TestPutBatchCancelled(t *testing.T) {
	db := testDB(t, Options{ExpectedItems: 1000})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pairs := make([]Pair, 64)
	for i := range pairs {
		pairs[i] = Pair{FP: fp(uint64(i)), Val: Value(i + 1)}
	}
	if _, _, err := db.PutBatch(ctx, pairs); err != context.Canceled {
		t.Fatalf("PutBatch(cancelled) err = %v, want context.Canceled", err)
	}
	// The database must stay fully usable: a cancelled batch may have
	// written some chains and skipped others, never torn one.
	if _, _, err := db.PutBatch(context.Background(), pairs); err != nil {
		t.Fatalf("PutBatch after cancel: %v", err)
	}
	for i := range pairs {
		if v, ok, err := db.Get(pairs[i].FP); err != nil || !ok || v != pairs[i].Val {
			t.Fatalf("Get(%d) after cancelled batch = (%v,%v,%v)", i, v, ok, err)
		}
	}
}

// TestPutBatchConcurrentWithReads race-stresses batched writes against
// point and batched reads all landing on one bucket page (Buckets: 1), the
// worst case for the read-modify-write exclusion.
func TestPutBatchConcurrentWithReads(t *testing.T) {
	db, err := Create(filepath.Join(t.TempDir(), "race.shdb"), Options{
		Buckets: 1,
		Device:  device.New(device.Null, device.Account),
	})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer db.Close()

	const keys = 96
	fps := make([]fingerprint.Fingerprint, keys)
	for i := range fps {
		fps[i] = fp(uint64(i))
	}
	val := func(i int) Value { return Value(i*7 + 1) } // fixed mapping: readers can verify

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Writers: batched inserts of random slices, values fixed per key.
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				lo := rng.Intn(keys)
				hi := lo + 1 + rng.Intn(keys-lo)
				pairs := make([]Pair, 0, hi-lo)
				for k := lo; k < hi; k++ {
					pairs = append(pairs, Pair{FP: fps[k], Val: val(k)})
				}
				if _, _, err := db.PutBatch(context.Background(), pairs); err != nil {
					t.Errorf("PutBatch: %v", err)
					return
				}
			}
		}(int64(w))
	}
	// Point readers.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(keys)
				v, ok, err := db.Get(fps[k])
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if ok && v != val(k) {
					t.Errorf("Get(%d) = %v, want %v", k, v, val(k))
					return
				}
			}
		}(int64(r + 2))
	}
	// Batched reader.
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			vals, found, err := db.GetBatch(context.Background(), fps)
			if err != nil {
				t.Errorf("GetBatch: %v", err)
				return
			}
			for k := range fps {
				if found[k] && vals[k] != val(k) {
					t.Errorf("GetBatch(%d) = %v, want %v", k, vals[k], val(k))
					return
				}
			}
		}
	}()

	writers.Wait()
	close(stop)
	readers.Wait()
	// Final state: every key the writers covered holds its fixed value.
	for k := range fps {
		if v, ok, _ := db.Get(fps[k]); ok && v != val(k) {
			t.Fatalf("final Get(%d) = %v, want %v", k, v, val(k))
		}
	}
}

func BenchmarkDBPutBatch(b *testing.B) {
	db := benchDB(b, 1<<20)
	const batch = 512
	pairs := make([]Pair, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range pairs {
			pairs[k] = Pair{FP: fp(uint64(i*batch + k)), Val: Value(k + 1)}
		}
		if _, _, err := db.PutBatch(context.Background(), pairs); err != nil {
			b.Fatal(err)
		}
	}
}
